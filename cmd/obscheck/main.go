// Command obscheck validates the machine-readable observability artifacts
// the other CLIs export, so CI can assert that a benchmark run produced
// well-formed, non-empty telemetry instead of just "a file exists".
//
// Usage:
//
//	obscheck -metrics m.prom -events e.jsonl -trace t.json
//	obscheck -metrics m.prom -require simd_instructions_total -require guard_actions_total
//
// Every given file is checked; any malformed content exits non-zero.
package main

import (
	"bufio"
	"encoding/json"
	"flag"
	"fmt"
	"os"
	"strconv"
	"strings"
)

// requireList collects repeated -require flags.
type requireList []string

func (r *requireList) String() string     { return strings.Join(*r, ",") }
func (r *requireList) Set(v string) error { *r = append(*r, v); return nil }

func main() {
	metrics := flag.String("metrics", "", "Prometheus text exposition file to validate")
	events := flag.String("events", "", "JSONL event stream file to validate")
	trace := flag.String("trace", "", "Chrome trace_event JSON file to validate")
	var require requireList
	flag.Var(&require, "require", "metric family that must appear with a non-zero sample (repeatable; implies -metrics)")
	flag.Parse()

	ok := true
	if *metrics != "" {
		ok = checkMetrics(*metrics, require) && ok
	} else if len(require) > 0 {
		fmt.Fprintln(os.Stderr, "obscheck: -require needs -metrics")
		ok = false
	}
	if *events != "" {
		ok = checkEvents(*events) && ok
	}
	if *trace != "" {
		ok = checkTrace(*trace) && ok
	}
	if *metrics == "" && *events == "" && *trace == "" {
		flag.Usage()
		os.Exit(2)
	}
	if !ok {
		os.Exit(1)
	}
}

func complain(path, format string, args ...any) bool {
	fmt.Fprintf(os.Stderr, "obscheck: %s: %s\n", path, fmt.Sprintf(format, args...))
	return false
}

// checkMetrics parses the Prometheus 0.0.4 text format: every non-comment
// line must be `series value`, and each required family must have at least
// one non-zero sample.
func checkMetrics(path string, require []string) bool {
	f, err := os.Open(path)
	if err != nil {
		return complain(path, "%v", err)
	}
	defer f.Close()
	nonzero := map[string]bool{}
	samples := 0
	sc := bufio.NewScanner(f)
	sc.Buffer(make([]byte, 1024*1024), 1024*1024)
	line := 0
	for sc.Scan() {
		line++
		text := strings.TrimSpace(sc.Text())
		if text == "" || strings.HasPrefix(text, "#") {
			continue
		}
		sp := strings.LastIndexByte(text, ' ')
		if sp < 1 {
			return complain(path, "line %d: no value field: %q", line, text)
		}
		series, valStr := text[:sp], text[sp+1:]
		val, err := parseValue(valStr)
		if err != nil {
			return complain(path, "line %d: bad value %q: %v", line, valStr, err)
		}
		family := series
		if i := strings.IndexByte(series, '{'); i >= 0 {
			if !strings.HasSuffix(series, "}") {
				return complain(path, "line %d: unterminated label set: %q", line, series)
			}
			family = series[:i]
		}
		samples++
		if val != 0 {
			nonzero[family] = true
		}
	}
	if err := sc.Err(); err != nil {
		return complain(path, "%v", err)
	}
	if samples == 0 {
		return complain(path, "no samples")
	}
	ok := true
	for _, fam := range require {
		if !nonzero[fam] {
			ok = complain(path, "required family %q has no non-zero sample", fam)
		}
	}
	if ok {
		fmt.Printf("obscheck: %s: %d samples, %d non-zero families ok\n", path, samples, len(nonzero))
	}
	return ok
}

// parseValue accepts the exposition format's float spellings.
func parseValue(s string) (float64, error) {
	switch s {
	case "+Inf", "-Inf", "NaN":
		return 0, nil // legal, but never counts as a non-zero sample
	}
	return strconv.ParseFloat(s, 64)
}

// checkEvents requires every line to be one JSON object with ts and event.
func checkEvents(path string) bool {
	f, err := os.Open(path)
	if err != nil {
		return complain(path, "%v", err)
	}
	defer f.Close()
	sc := bufio.NewScanner(f)
	sc.Buffer(make([]byte, 1024*1024), 1024*1024)
	line := 0
	for sc.Scan() {
		line++
		var ev struct {
			TS    string `json:"ts"`
			Event string `json:"event"`
		}
		if err := json.Unmarshal(sc.Bytes(), &ev); err != nil {
			return complain(path, "line %d: %v", line, err)
		}
		if ev.TS == "" || ev.Event == "" {
			return complain(path, "line %d: missing ts or event: %s", line, sc.Text())
		}
	}
	if err := sc.Err(); err != nil {
		return complain(path, "%v", err)
	}
	if line == 0 {
		return complain(path, "no events")
	}
	fmt.Printf("obscheck: %s: %d events ok\n", path, line)
	return true
}

// checkTrace requires a traceEvents array whose complete events carry the
// fields Perfetto needs (name, ph, ts; dur for ph "X").
func checkTrace(path string) bool {
	raw, err := os.ReadFile(path)
	if err != nil {
		return complain(path, "%v", err)
	}
	var doc struct {
		TraceEvents []struct {
			Name string   `json:"name"`
			Ph   string   `json:"ph"`
			TS   *float64 `json:"ts"`
			Dur  *float64 `json:"dur"`
		} `json:"traceEvents"`
	}
	if err := json.Unmarshal(raw, &doc); err != nil {
		return complain(path, "%v", err)
	}
	if len(doc.TraceEvents) == 0 {
		return complain(path, "no traceEvents")
	}
	for i, ev := range doc.TraceEvents {
		if ev.Name == "" || ev.Ph == "" || ev.TS == nil {
			return complain(path, "traceEvents[%d]: missing name, ph or ts", i)
		}
		if ev.Ph == "X" && ev.Dur == nil {
			return complain(path, "traceEvents[%d]: complete event without dur", i)
		}
	}
	fmt.Printf("obscheck: %s: %d trace events ok\n", path, len(doc.TraceEvents))
	return true
}
