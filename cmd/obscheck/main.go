// Command obscheck validates the machine-readable observability artifacts
// the other CLIs export, so CI can assert that a benchmark run produced
// well-formed, non-empty telemetry instead of just "a file exists".
//
// Usage:
//
//	obscheck -metrics m.prom -events e.jsonl -trace t.json
//	obscheck -metrics m.prom -require simd_instructions_total -require guard_actions_total
//	obscheck -metrics later.prom -monotonic earlier.prom
//	obscheck -metrics m.prom -integrity
//	obscheck -openmetrics m.om -require-exemplar request_seconds
//
// -monotonic cross-checks two scrapes of the same process: every counter
// series (_total/_count/_sum/_bucket) present in the earlier scrape must
// still be present, no smaller, in the later one — the invariant Prometheus
// rate() depends on. -openmetrics validates the OpenMetrics rendering:
// exemplar syntax on histogram buckets and the mandatory # EOF terminator;
// -require-exemplar additionally demands at least one bucket of the named
// family carries a trace_id exemplar. -integrity cross-checks the
// corruption-audit families against each other: per (kernel, ISA) pair,
// corruption_detected_total must equal audit_total{outcome="mismatch"} and
// audit_seconds_count must equal audit_total summed across outcomes —
// every audit lands exactly one histogram sample and every mismatch
// exactly one detection.
//
// Every given file is checked; any malformed content exits non-zero.
package main

import (
	"bufio"
	"encoding/json"
	"flag"
	"fmt"
	"os"
	"strconv"
	"strings"
)

// requireList collects repeated -require flags.
type requireList []string

func (r *requireList) String() string     { return strings.Join(*r, ",") }
func (r *requireList) Set(v string) error { *r = append(*r, v); return nil }

func main() {
	metrics := flag.String("metrics", "", "Prometheus text exposition file to validate")
	events := flag.String("events", "", "JSONL event stream file to validate")
	trace := flag.String("trace", "", "Chrome trace_event JSON file to validate")
	openmetrics := flag.String("openmetrics", "", "OpenMetrics exposition file to validate (exemplar syntax, # EOF)")
	monotonic := flag.String("monotonic", "", "earlier scrape of the same process; counters in -metrics must not have decreased (implies -metrics)")
	integrity := flag.Bool("integrity", false, "cross-check the corruption-audit metric families in -metrics for internal consistency (implies -metrics)")
	var require requireList
	flag.Var(&require, "require", "metric family that must appear with a non-zero sample (repeatable; implies -metrics)")
	var requireExemplar requireList
	flag.Var(&requireExemplar, "require-exemplar", "histogram family that must carry a trace_id exemplar (repeatable; implies -openmetrics)")
	flag.Parse()

	ok := true
	if *metrics != "" {
		ok = checkMetrics(*metrics, require) && ok
	} else if len(require) > 0 {
		fmt.Fprintln(os.Stderr, "obscheck: -require needs -metrics")
		ok = false
	}
	if *monotonic != "" {
		if *metrics == "" {
			fmt.Fprintln(os.Stderr, "obscheck: -monotonic needs -metrics")
			ok = false
		} else {
			ok = checkMonotonic(*metrics, *monotonic) && ok
		}
	}
	if *integrity {
		if *metrics == "" {
			fmt.Fprintln(os.Stderr, "obscheck: -integrity needs -metrics")
			ok = false
		} else {
			ok = checkIntegrity(*metrics) && ok
		}
	}
	if *openmetrics != "" {
		ok = checkOpenMetrics(*openmetrics, requireExemplar) && ok
	} else if len(requireExemplar) > 0 {
		fmt.Fprintln(os.Stderr, "obscheck: -require-exemplar needs -openmetrics")
		ok = false
	}
	if *events != "" {
		ok = checkEvents(*events) && ok
	}
	if *trace != "" {
		ok = checkTrace(*trace) && ok
	}
	if *metrics == "" && *events == "" && *trace == "" && *openmetrics == "" {
		flag.Usage()
		os.Exit(2)
	}
	if !ok {
		os.Exit(1)
	}
}

func complain(path, format string, args ...any) bool {
	fmt.Fprintf(os.Stderr, "obscheck: %s: %s\n", path, fmt.Sprintf(format, args...))
	return false
}

// checkMetrics parses the Prometheus 0.0.4 text format: every non-comment
// line must be `series value`, and each required family must have at least
// one non-zero sample.
func checkMetrics(path string, require []string) bool {
	f, err := os.Open(path)
	if err != nil {
		return complain(path, "%v", err)
	}
	defer f.Close()
	nonzero := map[string]bool{}
	samples := 0
	sc := bufio.NewScanner(f)
	sc.Buffer(make([]byte, 1024*1024), 1024*1024)
	line := 0
	for sc.Scan() {
		line++
		text := strings.TrimSpace(sc.Text())
		if text == "" || strings.HasPrefix(text, "#") {
			continue
		}
		sp := strings.LastIndexByte(text, ' ')
		if sp < 1 {
			return complain(path, "line %d: no value field: %q", line, text)
		}
		series, valStr := text[:sp], text[sp+1:]
		val, err := parseValue(valStr)
		if err != nil {
			return complain(path, "line %d: bad value %q: %v", line, valStr, err)
		}
		family := series
		if i := strings.IndexByte(series, '{'); i >= 0 {
			if !strings.HasSuffix(series, "}") {
				return complain(path, "line %d: unterminated label set: %q", line, series)
			}
			family = series[:i]
		}
		samples++
		if val != 0 {
			nonzero[family] = true
		}
	}
	if err := sc.Err(); err != nil {
		return complain(path, "%v", err)
	}
	if samples == 0 {
		return complain(path, "no samples")
	}
	ok := true
	for _, fam := range require {
		if !nonzero[fam] {
			ok = complain(path, "required family %q has no non-zero sample", fam)
		}
	}
	if ok {
		fmt.Printf("obscheck: %s: %d samples, %d non-zero families ok\n", path, samples, len(nonzero))
	}
	return ok
}

// parseProm loads a classic exposition file into series -> value.
func parseProm(path string) (map[string]float64, error) {
	f, err := os.Open(path)
	if err != nil {
		return nil, err
	}
	defer f.Close()
	out := map[string]float64{}
	sc := bufio.NewScanner(f)
	sc.Buffer(make([]byte, 1024*1024), 1024*1024)
	line := 0
	for sc.Scan() {
		line++
		text := strings.TrimSpace(sc.Text())
		if text == "" || strings.HasPrefix(text, "#") {
			continue
		}
		sp := strings.LastIndexByte(text, ' ')
		if sp < 1 {
			return nil, fmt.Errorf("line %d: no value field: %q", line, text)
		}
		val, err := parseValue(text[sp+1:])
		if err != nil {
			return nil, fmt.Errorf("line %d: %v", line, err)
		}
		out[text[:sp]] = val
	}
	return out, sc.Err()
}

// monotoneSeries reports whether a series is a counter by exposition
// convention: its family name ends in _total, _count, _sum or _bucket.
func monotoneSeries(series string) bool {
	family := series
	if i := strings.IndexByte(series, '{'); i >= 0 {
		family = series[:i]
	}
	for _, suf := range []string{"_total", "_count", "_sum", "_bucket"} {
		if strings.HasSuffix(family, suf) {
			return true
		}
	}
	return false
}

// checkMonotonic asserts the counter invariant between two scrapes of one
// process: every monotone series in the earlier scrape is present in the
// later one with a value no smaller. A violated invariant means either a
// counter went backward (a bug) or the process restarted mid-run (a CI
// harness bug); both should fail the check.
func checkMonotonic(curPath, priorPath string) bool {
	cur, err := parseProm(curPath)
	if err != nil {
		return complain(curPath, "%v", err)
	}
	prior, err := parseProm(priorPath)
	if err != nil {
		return complain(priorPath, "%v", err)
	}
	ok := true
	checked := 0
	for series, pv := range prior {
		if !monotoneSeries(series) {
			continue
		}
		checked++
		cv, present := cur[series]
		if !present {
			ok = complain(curPath, "counter series %q vanished since %s", series, priorPath)
			continue
		}
		if cv < pv {
			ok = complain(curPath, "counter %q went backward: %g -> %g", series, pv, cv)
		}
	}
	if checked == 0 {
		return complain(priorPath, "no counter series to compare")
	}
	if ok {
		fmt.Printf("obscheck: %s vs %s: %d counter series monotone ok\n", curPath, priorPath, checked)
	}
	return ok
}

// splitSeries breaks a rendered series key (`name{k="v",k2="v2"}`) into
// its family name and label map. Registry label values (kernel names, ISA
// names, outcomes) never contain quotes or commas, so a plain split is
// exact; a malformed label set yields an empty map.
func splitSeries(series string) (string, map[string]string) {
	i := strings.IndexByte(series, '{')
	if i < 0 {
		return series, nil
	}
	family := series[:i]
	labels := map[string]string{}
	body := strings.TrimSuffix(series[i+1:], "}")
	for _, kv := range strings.Split(body, ",") {
		eq := strings.Index(kv, `="`)
		if eq < 0 || !strings.HasSuffix(kv, `"`) {
			continue
		}
		labels[kv[:eq]] = kv[eq+2 : len(kv)-1]
	}
	return family, labels
}

// checkIntegrity cross-checks the corruption-audit families within one
// scrape. The auditor's contract is one histogram sample per audit and one
// detection per mismatch, so for every (kernel, ISA) pair:
//
//	corruption_detected_total == audit_total{outcome="mismatch"}
//	audit_seconds_count       == sum of audit_total across outcomes
//
// A scrape with no audit_total series at all fails — the point of the
// check is to prove the instrumentation ran, not to vacuously pass.
func checkIntegrity(path string) bool {
	series, err := parseProm(path)
	if err != nil {
		return complain(path, "%v", err)
	}
	type pair struct{ kernel, isa string }
	audits := map[pair]float64{}   // audit_total, all outcomes
	mismatch := map[pair]float64{} // audit_total{outcome="mismatch"}
	detected := map[pair]float64{} // corruption_detected_total
	secCount := map[pair]float64{} // audit_seconds_count
	for key, val := range series {
		family, labels := splitSeries(key)
		p := pair{labels["kernel"], labels["isa"]}
		switch family {
		case "audit_total":
			audits[p] += val
			if labels["outcome"] == "mismatch" {
				mismatch[p] += val
			}
		case "corruption_detected_total":
			detected[p] += val
		case "audit_seconds_count":
			secCount[p] += val
		}
	}
	if len(audits) == 0 {
		return complain(path, "no audit_total series: integrity instrumentation absent")
	}
	ok := true
	for p, n := range audits {
		if detected[p] != mismatch[p] {
			ok = complain(path, "pair %s/%s: corruption_detected_total %g != audit_total{outcome=\"mismatch\"} %g",
				p.kernel, p.isa, detected[p], mismatch[p])
		}
		if secCount[p] != n {
			ok = complain(path, "pair %s/%s: audit_seconds_count %g != audit_total across outcomes %g",
				p.kernel, p.isa, secCount[p], n)
		}
	}
	// A detection on a pair that was never audited is equally inconsistent.
	for p, d := range detected {
		if _, audited := audits[p]; !audited && d != 0 {
			ok = complain(path, "pair %s/%s: corruption_detected_total %g without any audit_total",
				p.kernel, p.isa, d)
		}
	}
	if ok {
		fmt.Printf("obscheck: %s: %d audited (kernel, isa) pairs consistent ok\n", path, len(audits))
	}
	return ok
}

// checkOpenMetrics validates the OpenMetrics rendering: data lines are
// `series value` optionally followed by ` # {labels} value [timestamp]`
// (an exemplar), and the last line must be the mandatory `# EOF`.
func checkOpenMetrics(path string, requireExemplar []string) bool {
	f, err := os.Open(path)
	if err != nil {
		return complain(path, "%v", err)
	}
	defer f.Close()
	exemplars := map[string]bool{} // family (without _bucket) -> has trace_id exemplar
	samples, nExemplars := 0, 0
	sawEOF := false
	sc := bufio.NewScanner(f)
	sc.Buffer(make([]byte, 1024*1024), 1024*1024)
	line := 0
	for sc.Scan() {
		line++
		text := strings.TrimSpace(sc.Text())
		if text == "" {
			continue
		}
		if sawEOF {
			return complain(path, "line %d: content after # EOF", line)
		}
		if strings.HasPrefix(text, "#") {
			if text == "# EOF" {
				sawEOF = true
			}
			continue
		}
		body, exemplar := text, ""
		if i := strings.Index(text, " # "); i >= 0 {
			body, exemplar = text[:i], text[i+3:]
		}
		sp := strings.LastIndexByte(body, ' ')
		if sp < 1 {
			return complain(path, "line %d: no value field: %q", line, body)
		}
		series := body[:sp]
		if _, err := parseValue(body[sp+1:]); err != nil {
			return complain(path, "line %d: bad value: %v", line, err)
		}
		samples++
		if exemplar == "" {
			continue
		}
		// Exemplar grammar: {label="value",...} value [timestamp]
		if !strings.HasPrefix(exemplar, "{") {
			return complain(path, "line %d: exemplar without label set: %q", line, exemplar)
		}
		close := strings.IndexByte(exemplar, '}')
		if close < 0 {
			return complain(path, "line %d: unterminated exemplar labels: %q", line, exemplar)
		}
		fields := strings.Fields(exemplar[close+1:])
		if len(fields) < 1 || len(fields) > 2 {
			return complain(path, "line %d: exemplar needs value [timestamp]: %q", line, exemplar)
		}
		for _, fv := range fields {
			if _, err := strconv.ParseFloat(fv, 64); err != nil {
				return complain(path, "line %d: bad exemplar number %q", line, fv)
			}
		}
		nExemplars++
		if strings.Contains(exemplar[:close], `trace_id="`) {
			family := series
			if i := strings.IndexByte(series, '{'); i >= 0 {
				family = series[:i]
			}
			exemplars[strings.TrimSuffix(family, "_bucket")] = true
		}
	}
	if err := sc.Err(); err != nil {
		return complain(path, "%v", err)
	}
	if !sawEOF {
		return complain(path, "missing # EOF terminator")
	}
	if samples == 0 {
		return complain(path, "no samples")
	}
	ok := true
	for _, fam := range requireExemplar {
		if !exemplars[fam] {
			ok = complain(path, "family %q has no trace_id exemplar", fam)
		}
	}
	if ok {
		fmt.Printf("obscheck: %s: %d samples, %d exemplars, # EOF ok\n", path, samples, nExemplars)
	}
	return ok
}

// parseValue accepts the exposition format's float spellings.
func parseValue(s string) (float64, error) {
	switch s {
	case "+Inf", "-Inf", "NaN":
		return 0, nil // legal, but never counts as a non-zero sample
	}
	return strconv.ParseFloat(s, 64)
}

// checkEvents requires every line to be one JSON object with ts and event.
func checkEvents(path string) bool {
	f, err := os.Open(path)
	if err != nil {
		return complain(path, "%v", err)
	}
	defer f.Close()
	sc := bufio.NewScanner(f)
	sc.Buffer(make([]byte, 1024*1024), 1024*1024)
	line := 0
	for sc.Scan() {
		line++
		var ev struct {
			TS    string `json:"ts"`
			Event string `json:"event"`
		}
		if err := json.Unmarshal(sc.Bytes(), &ev); err != nil {
			return complain(path, "line %d: %v", line, err)
		}
		if ev.TS == "" || ev.Event == "" {
			return complain(path, "line %d: missing ts or event: %s", line, sc.Text())
		}
	}
	if err := sc.Err(); err != nil {
		return complain(path, "%v", err)
	}
	if line == 0 {
		return complain(path, "no events")
	}
	fmt.Printf("obscheck: %s: %d events ok\n", path, line)
	return true
}

// checkTrace requires a traceEvents array whose complete events carry the
// fields Perfetto needs (name, ph, ts; dur for ph "X").
func checkTrace(path string) bool {
	raw, err := os.ReadFile(path)
	if err != nil {
		return complain(path, "%v", err)
	}
	var doc struct {
		TraceEvents []struct {
			Name string   `json:"name"`
			Ph   string   `json:"ph"`
			TS   *float64 `json:"ts"`
			Dur  *float64 `json:"dur"`
		} `json:"traceEvents"`
	}
	if err := json.Unmarshal(raw, &doc); err != nil {
		return complain(path, "%v", err)
	}
	if len(doc.TraceEvents) == 0 {
		return complain(path, "no traceEvents")
	}
	for i, ev := range doc.TraceEvents {
		if ev.Name == "" || ev.Ph == "" || ev.TS == nil {
			return complain(path, "traceEvents[%d]: missing name, ph or ts", i)
		}
		if ev.Ph == "X" && ev.Dur == nil {
			return complain(path, "traceEvents[%d]: complete event without dur", i)
		}
	}
	fmt.Printf("obscheck: %s: %d trace events ok\n", path, len(doc.TraceEvents))
	return true
}
