package main

import (
	"os"
	"path/filepath"
	"regexp"
	"strings"
	"testing"
)

const sample = `goos: linux
goarch: amd64
pkg: simdstudy
cpu: Intel(R) Xeon(R) Processor @ 2.10GHz
BenchmarkHostConvertScalar   	      20	   3597104 ns/op	 341.61 MB/s	       0 B/op	       0 allocs/op
BenchmarkHostConvertNEONEmu  	      20	   8275715 ns/op	 148.48 MB/s	       0 B/op	       0 allocs/op
BenchmarkHostParallel/Gaussian/workers=4-8         	       2	 135796402 ns/op	  15.27 MB/s	    3524 B/op	      33 allocs/op
BenchmarkNoMemColumns 	     100	     12345 ns/op
PASS
ok  	simdstudy	6.610s
`

func TestParse(t *testing.T) {
	doc, err := parse(strings.NewReader(sample))
	if err != nil {
		t.Fatal(err)
	}
	if doc.GOOS != "linux" || doc.GOARCH != "amd64" || doc.Pkg != "simdstudy" {
		t.Fatalf("header: %+v", doc)
	}
	if len(doc.Benchmarks) != 4 {
		t.Fatalf("parsed %d benchmarks, want 4", len(doc.Benchmarks))
	}
	b := doc.Benchmarks[0]
	if b.Name != "BenchmarkHostConvertScalar" || b.Iterations != 20 ||
		b.NsPerOp != 3597104 || b.MBPerS != 341.61 || b.AllocsPerOp != 0 || !b.HasMem {
		t.Fatalf("first benchmark: %+v", b)
	}
	par := doc.Benchmarks[2]
	if par.Name != "BenchmarkHostParallel/Gaussian/workers=4-8" || par.AllocsPerOp != 33 {
		t.Fatalf("sub-benchmark: %+v", par)
	}
	if doc.Benchmarks[3].HasMem {
		t.Fatal("line without -benchmem columns must not claim memory data")
	}
}

func TestCheckAllocs(t *testing.T) {
	doc, err := parse(strings.NewReader(sample))
	if err != nil {
		t.Fatal(err)
	}
	if bad := checkAllocs(doc, regexp.MustCompile(`^BenchmarkHostConvert`)); len(bad) != 0 {
		t.Fatalf("zero-alloc benchmarks failed the gate: %v", bad)
	}
	if bad := checkAllocs(doc, regexp.MustCompile(`^BenchmarkHostParallel`)); len(bad) != 1 {
		t.Fatalf("allocating benchmark passed the gate: %v", bad)
	}
	if bad := checkAllocs(doc, regexp.MustCompile(`^BenchmarkNoMem`)); len(bad) != 1 {
		t.Fatalf("missing -benchmem columns must fail the gate: %v", bad)
	}
	if bad := checkAllocs(doc, regexp.MustCompile(`^BenchmarkNothingMatches`)); len(bad) != 1 {
		t.Fatalf("an unmatched pattern must fail the gate: %v", bad)
	}
}

// TestCheckRegressionSkipsUnreadableHistory: an empty or corrupt history
// document (interrupted cache save, zero-byte placeholder) must not fail
// the gate — it is skipped and this run seeds the baseline. Readable
// history alongside it still gates.
func TestCheckRegressionSkipsUnreadableHistory(t *testing.T) {
	dir := t.TempDir()
	writeFile := func(name, content string) {
		t.Helper()
		if err := os.WriteFile(filepath.Join(dir, name), []byte(content), 0o644); err != nil {
			t.Fatal(err)
		}
	}
	writeFile("BENCH_1.json", "") // zero-byte placeholder
	writeFile("BENCH_2.json", "{not json")
	doc := &Document{Benchmarks: []Result{{Name: "BenchmarkX", NsPerOp: 100}}}

	bad, compared, err := checkRegression(doc, filepath.Join(dir, "BENCH_*.json"), 0.10)
	if err != nil {
		t.Fatalf("unreadable-only history errored: %v", err)
	}
	if len(bad) != 0 || compared != 0 {
		t.Fatalf("bad=%v compared=%d, want clean no-history pass", bad, compared)
	}

	// A readable document beside the corrupt ones still gates.
	writeFile("BENCH_3.json", `{"benchmarks":[{"name":"BenchmarkX","ns_per_op":50}]}`)
	bad, compared, err = checkRegression(doc, filepath.Join(dir, "BENCH_*.json"), 0.10)
	if err != nil {
		t.Fatal(err)
	}
	if compared != 1 || len(bad) != 1 {
		t.Fatalf("bad=%v compared=%d, want the 2x regression flagged against the readable doc", bad, compared)
	}
}
