package main

import (
	"regexp"
	"strings"
	"testing"
)

const sample = `goos: linux
goarch: amd64
pkg: simdstudy
cpu: Intel(R) Xeon(R) Processor @ 2.10GHz
BenchmarkHostConvertScalar   	      20	   3597104 ns/op	 341.61 MB/s	       0 B/op	       0 allocs/op
BenchmarkHostConvertNEONEmu  	      20	   8275715 ns/op	 148.48 MB/s	       0 B/op	       0 allocs/op
BenchmarkHostParallel/Gaussian/workers=4-8         	       2	 135796402 ns/op	  15.27 MB/s	    3524 B/op	      33 allocs/op
BenchmarkNoMemColumns 	     100	     12345 ns/op
PASS
ok  	simdstudy	6.610s
`

func TestParse(t *testing.T) {
	doc, err := parse(strings.NewReader(sample))
	if err != nil {
		t.Fatal(err)
	}
	if doc.GOOS != "linux" || doc.GOARCH != "amd64" || doc.Pkg != "simdstudy" {
		t.Fatalf("header: %+v", doc)
	}
	if len(doc.Benchmarks) != 4 {
		t.Fatalf("parsed %d benchmarks, want 4", len(doc.Benchmarks))
	}
	b := doc.Benchmarks[0]
	if b.Name != "BenchmarkHostConvertScalar" || b.Iterations != 20 ||
		b.NsPerOp != 3597104 || b.MBPerS != 341.61 || b.AllocsPerOp != 0 || !b.HasMem {
		t.Fatalf("first benchmark: %+v", b)
	}
	par := doc.Benchmarks[2]
	if par.Name != "BenchmarkHostParallel/Gaussian/workers=4-8" || par.AllocsPerOp != 33 {
		t.Fatalf("sub-benchmark: %+v", par)
	}
	if doc.Benchmarks[3].HasMem {
		t.Fatal("line without -benchmem columns must not claim memory data")
	}
}

func TestCheckAllocs(t *testing.T) {
	doc, err := parse(strings.NewReader(sample))
	if err != nil {
		t.Fatal(err)
	}
	if bad := checkAllocs(doc, regexp.MustCompile(`^BenchmarkHostConvert`)); len(bad) != 0 {
		t.Fatalf("zero-alloc benchmarks failed the gate: %v", bad)
	}
	if bad := checkAllocs(doc, regexp.MustCompile(`^BenchmarkHostParallel`)); len(bad) != 1 {
		t.Fatalf("allocating benchmark passed the gate: %v", bad)
	}
	if bad := checkAllocs(doc, regexp.MustCompile(`^BenchmarkNoMem`)); len(bad) != 1 {
		t.Fatalf("missing -benchmem columns must fail the gate: %v", bad)
	}
	if bad := checkAllocs(doc, regexp.MustCompile(`^BenchmarkNothingMatches`)); len(bad) != 1 {
		t.Fatalf("an unmatched pattern must fail the gate: %v", bad)
	}
}
