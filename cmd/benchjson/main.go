// Command benchjson converts `go test -bench` text output into a stable
// JSON document, so CI can archive benchmark runs as machine-readable
// artifacts and gate on them. It also enforces the zero-allocation
// contract for the hot kernel paths: with -fail-allocs, any matching
// benchmark that reports a non-zero allocs/op fails the run.
//
// With -compare it additionally gates on performance history: for every
// benchmark present both in this run and in prior BENCH_*.json documents,
// the new ns/op must not exceed the best (lowest) prior ns/op by more than
// -max-regression (default 10%). Benchmarks new to this run pass trivially;
// a prior benchmark that vanished is reported but does not fail (suites
// grow and get renamed).
//
// Usage:
//
//	go test -run '^$' -bench Host -benchmem . | benchjson -out BENCH.json
//	benchjson -in bench.txt -out BENCH.json -fail-allocs '^BenchmarkHostConvert'
//	benchjson -in bench.txt -out BENCH_7.json -compare 'bench-history/BENCH_*.json'
package main

import (
	"bufio"
	"encoding/json"
	"flag"
	"fmt"
	"io"
	"os"
	"path/filepath"
	"regexp"
	"sort"
	"strconv"
	"strings"
)

// Result is one parsed benchmark line.
type Result struct {
	Name        string  `json:"name"`
	Iterations  int64   `json:"iterations"`
	NsPerOp     float64 `json:"ns_per_op"`
	MBPerS      float64 `json:"mb_per_s,omitempty"`
	BytesPerOp  int64   `json:"bytes_per_op"`
	AllocsPerOp int64   `json:"allocs_per_op"`
	// HasMem records whether the line carried -benchmem columns, so a
	// zero AllocsPerOp from a run without -benchmem is not mistaken for
	// a verified zero-allocation result.
	HasMem bool `json:"has_mem"`
}

// Document is the whole run: the go test environment header plus every
// benchmark line, in input order.
type Document struct {
	GOOS       string   `json:"goos,omitempty"`
	GOARCH     string   `json:"goarch,omitempty"`
	Pkg        string   `json:"pkg,omitempty"`
	CPU        string   `json:"cpu,omitempty"`
	Benchmarks []Result `json:"benchmarks"`
}

// benchLine matches "BenchmarkName-8   	 100	 123 ns/op	..." including
// sub-benchmark names with slashes and the optional -GOMAXPROCS suffix.
var benchLine = regexp.MustCompile(`^(Benchmark\S*)\s+(\d+)\s+(.*)$`)

func parse(r io.Reader) (*Document, error) {
	doc := &Document{Benchmarks: []Result{}}
	sc := bufio.NewScanner(r)
	for sc.Scan() {
		line := strings.TrimSpace(sc.Text())
		switch {
		case strings.HasPrefix(line, "goos: "):
			doc.GOOS = strings.TrimPrefix(line, "goos: ")
			continue
		case strings.HasPrefix(line, "goarch: "):
			doc.GOARCH = strings.TrimPrefix(line, "goarch: ")
			continue
		case strings.HasPrefix(line, "pkg: "):
			doc.Pkg = strings.TrimPrefix(line, "pkg: ")
			continue
		case strings.HasPrefix(line, "cpu: "):
			doc.CPU = strings.TrimPrefix(line, "cpu: ")
			continue
		}
		m := benchLine.FindStringSubmatch(line)
		if m == nil {
			continue
		}
		iters, err := strconv.ParseInt(m[2], 10, 64)
		if err != nil {
			return nil, fmt.Errorf("benchjson: %q: bad iteration count: %v", line, err)
		}
		res := Result{Name: m[1], Iterations: iters}
		fields := strings.Fields(m[3])
		for i := 0; i+1 < len(fields); i += 2 {
			val, err := strconv.ParseFloat(fields[i], 64)
			if err != nil {
				return nil, fmt.Errorf("benchjson: %q: bad value %q: %v", line, fields[i], err)
			}
			switch fields[i+1] {
			case "ns/op":
				res.NsPerOp = val
			case "MB/s":
				res.MBPerS = val
			case "B/op":
				res.BytesPerOp = int64(val)
				res.HasMem = true
			case "allocs/op":
				res.AllocsPerOp = int64(val)
				res.HasMem = true
			}
		}
		doc.Benchmarks = append(doc.Benchmarks, res)
	}
	if err := sc.Err(); err != nil {
		return nil, err
	}
	return doc, nil
}

// checkAllocs returns the names of benchmarks matching pat that either
// allocate or were run without -benchmem (unverifiable counts as failure:
// the gate must not silently pass because the columns were missing).
func checkAllocs(doc *Document, pat *regexp.Regexp) []string {
	var bad []string
	matched := false
	for _, b := range doc.Benchmarks {
		if !pat.MatchString(b.Name) {
			continue
		}
		matched = true
		if !b.HasMem {
			bad = append(bad, b.Name+" (no -benchmem columns)")
		} else if b.AllocsPerOp > 0 {
			bad = append(bad, fmt.Sprintf("%s (%d allocs/op)", b.Name, b.AllocsPerOp))
		}
	}
	if !matched {
		bad = append(bad, fmt.Sprintf("no benchmark matched %q", pat))
	}
	return bad
}

// loadDoc reads one previously emitted benchjson document.
func loadDoc(path string) (*Document, error) {
	raw, err := os.ReadFile(path)
	if err != nil {
		return nil, err
	}
	var doc Document
	if err := json.Unmarshal(raw, &doc); err != nil {
		return nil, fmt.Errorf("%s: %v", path, err)
	}
	return &doc, nil
}

// checkRegression compares doc against every document matching the glob:
// the baseline per benchmark is the best (lowest) prior ns/op — comparing
// against the best rather than the latest stops a slow creep where each
// run regresses just under the threshold against its predecessor. Returns
// failures and a count of benchmarks actually compared.
func checkRegression(doc *Document, glob string, maxRegression float64) (bad []string, compared int, err error) {
	paths, err := filepath.Glob(glob)
	if err != nil {
		return nil, 0, fmt.Errorf("bad -compare pattern: %v", err)
	}
	sort.Strings(paths)
	best := map[string]struct {
		ns   float64
		path string
	}{}
	for _, p := range paths {
		prior, err := loadDoc(p)
		if err != nil {
			// An empty or truncated history document (an interrupted cache
			// save, a cold cache seeded with a zero-byte placeholder) is not
			// a regression — this run becomes the baseline that replaces it.
			// Only gate-worthy history gates.
			fmt.Fprintf(os.Stderr, "benchjson: note: skipping unreadable history %s: %v\n", p, err)
			continue
		}
		for _, b := range prior.Benchmarks {
			if b.NsPerOp <= 0 {
				continue
			}
			if cur, ok := best[b.Name]; !ok || b.NsPerOp < cur.ns {
				best[b.Name] = struct {
					ns   float64
					path string
				}{b.NsPerOp, p}
			}
		}
	}
	if len(best) == 0 {
		// No history yet (first run populating the cache) — nothing to gate.
		return nil, 0, nil
	}
	seen := map[string]bool{}
	for _, b := range doc.Benchmarks {
		seen[b.Name] = true
		base, ok := best[b.Name]
		if !ok || b.NsPerOp <= 0 {
			continue
		}
		compared++
		if b.NsPerOp > base.ns*(1+maxRegression) {
			bad = append(bad, fmt.Sprintf("%s: %.1f ns/op vs best %.1f ns/op in %s (+%.1f%%, limit %.0f%%)",
				b.Name, b.NsPerOp, base.ns, base.path,
				100*(b.NsPerOp/base.ns-1), 100*maxRegression))
		}
	}
	for name := range best {
		if !seen[name] {
			fmt.Fprintf(os.Stderr, "benchjson: note: benchmark %s in history but not in this run\n", name)
		}
	}
	return bad, compared, nil
}

func main() {
	in := flag.String("in", "-", "benchmark text input file (- for stdin)")
	out := flag.String("out", "-", "JSON output file (- for stdout)")
	failAllocs := flag.String("fail-allocs", "", "regexp of benchmark names that must report 0 allocs/op")
	compare := flag.String("compare", "", "glob of prior BENCH_*.json documents; fail if ns/op regresses past -max-regression vs the best prior run")
	maxRegression := flag.Float64("max-regression", 0.10, "allowed fractional ns/op slowdown vs the best prior run")
	flag.Parse()

	var src io.Reader = os.Stdin
	if *in != "-" {
		f, err := os.Open(*in)
		if err != nil {
			fmt.Fprintln(os.Stderr, "benchjson:", err)
			os.Exit(1)
		}
		defer f.Close()
		src = f
	}
	doc, err := parse(src)
	if err != nil {
		fmt.Fprintln(os.Stderr, err)
		os.Exit(1)
	}
	if len(doc.Benchmarks) == 0 {
		fmt.Fprintln(os.Stderr, "benchjson: no benchmark lines in input")
		os.Exit(1)
	}

	enc, err := json.MarshalIndent(doc, "", "  ")
	if err != nil {
		fmt.Fprintln(os.Stderr, "benchjson:", err)
		os.Exit(1)
	}
	enc = append(enc, '\n')
	if *out == "-" {
		os.Stdout.Write(enc)
	} else if err := os.WriteFile(*out, enc, 0o644); err != nil {
		fmt.Fprintln(os.Stderr, "benchjson:", err)
		os.Exit(1)
	}

	if *failAllocs != "" {
		pat, err := regexp.Compile(*failAllocs)
		if err != nil {
			fmt.Fprintln(os.Stderr, "benchjson: bad -fail-allocs:", err)
			os.Exit(1)
		}
		if bad := checkAllocs(doc, pat); len(bad) > 0 {
			for _, b := range bad {
				fmt.Fprintln(os.Stderr, "benchjson: allocation gate failed:", b)
			}
			os.Exit(1)
		}
		fmt.Fprintf(os.Stderr, "benchjson: allocation gate passed for %s\n", *failAllocs)
	}

	if *compare != "" {
		bad, compared, err := checkRegression(doc, *compare, *maxRegression)
		if err != nil {
			fmt.Fprintln(os.Stderr, "benchjson:", err)
			os.Exit(1)
		}
		if len(bad) > 0 {
			for _, b := range bad {
				fmt.Fprintln(os.Stderr, "benchjson: regression gate failed:", b)
			}
			os.Exit(1)
		}
		if compared == 0 {
			fmt.Fprintln(os.Stderr, "benchjson: regression gate: no prior history, nothing to compare")
		} else {
			fmt.Fprintf(os.Stderr, "benchjson: regression gate passed (%d benchmarks vs %s)\n",
				compared, *compare)
		}
	}
}
