// Command simdload is the load generator for simdserved soak runs: a
// fixed worker pool hammers /process across kernels and ISAs with
// aggressive per-request deadlines for a set duration, then reports the
// status breakdown. Exit status is non-zero if any response falls outside
// the resilience contract — 200 (served, possibly by scalar fallback) or
// 429 (deliberately shed) — or if the transport fails, so CI can use it
// as a pass/fail oracle.
//
// Usage:
//
//	simdload -url http://127.0.0.1:8080 -duration 30s -concurrency 8 -deadline-ms 100
package main

import (
	"flag"
	"fmt"
	"io"
	"net/http"
	"os"
	"strings"
	"sync"
	"time"
)

func main() {
	base := flag.String("url", "http://127.0.0.1:8080", "simdserved base URL")
	duration := flag.Duration("duration", 30*time.Second, "how long to generate load")
	concurrency := flag.Int("concurrency", 8, "concurrent request workers")
	deadlineMS := flag.Int("deadline-ms", 100, "per-request deadline sent to the server")
	size := flag.String("size", "640x480", "image size as WxH")
	kernelList := flag.String("kernels", "gaussian,sobel,edges,median,resize,threshold,convert",
		"comma-separated kernels to exercise")
	isaList := flag.String("isas", "neon,sse2,scalar", "comma-separated ISAs to exercise")
	flag.Parse()

	var w, h int
	if _, err := fmt.Sscanf(*size, "%dx%d", &w, &h); err != nil || w < 1 || h < 1 {
		fmt.Fprintf(os.Stderr, "simdload: bad -size %q\n", *size)
		os.Exit(2)
	}
	kernels := strings.Split(*kernelList, ",")
	isas := strings.Split(*isaList, ",")

	client := &http.Client{
		// Transport timeout well above the server deadline: the server is
		// responsible for shedding; the client only guards against hangs.
		Timeout: time.Duration(*deadlineMS)*time.Millisecond + 10*time.Second,
	}

	var (
		mu       sync.Mutex
		byStatus = map[int]int{}
		errs     int
		firstErr string
	)
	stop := time.Now().Add(*duration)
	var wg sync.WaitGroup
	for wkr := 0; wkr < *concurrency; wkr++ {
		wkr := wkr
		wg.Add(1)
		go func() {
			defer wg.Done()
			for i := wkr; time.Now().Before(stop); i++ {
				url := fmt.Sprintf("%s/process?kernel=%s&isa=%s&width=%d&height=%d&seed=%d&deadline_ms=%d",
					*base, kernels[i%len(kernels)], isas[i%len(isas)], w, h, i%16+1, *deadlineMS)
				resp, err := client.Get(url)
				mu.Lock()
				if err != nil {
					errs++
					if firstErr == "" {
						firstErr = err.Error()
					}
				} else {
					byStatus[resp.StatusCode]++
				}
				mu.Unlock()
				if err == nil {
					io.Copy(io.Discard, resp.Body)
					resp.Body.Close()
				}
			}
		}()
	}
	wg.Wait()

	total, bad := 0, 0
	for code, n := range byStatus {
		total += n
		if code != http.StatusOK && code != http.StatusTooManyRequests {
			bad += n
		}
	}
	fmt.Printf("simdload: %d requests in %v: 200=%d 429=%d other=%d transport-errors=%d\n",
		total+errs, *duration, byStatus[http.StatusOK], byStatus[http.StatusTooManyRequests], bad, errs)
	for code, n := range byStatus {
		if code != http.StatusOK && code != http.StatusTooManyRequests {
			fmt.Printf("simdload: unexpected status %d x%d\n", code, n)
		}
	}
	if firstErr != "" {
		fmt.Printf("simdload: first transport error: %s\n", firstErr)
	}
	if total == 0 {
		fmt.Println("simdload: no requests completed")
		os.Exit(1)
	}
	if bad > 0 || errs > 0 {
		os.Exit(1)
	}
}
