// Command simdload is the load generator for simdserved soak runs: a
// fixed worker pool hammers /process across kernels and ISAs with
// aggressive per-request deadlines for a set duration, then reports the
// status breakdown. Exit status is non-zero if any response falls outside
// the resilience contract — 200 (served, possibly by scalar fallback) or
// 429 (deliberately shed) — or if the transport fails, so CI can use it
// as a pass/fail oracle.
//
// Duplicate-traffic mode (-dup-keys N) exercises the server's result
// cache: instead of a rotating unique mix, requests draw from a fixed
// population of N distinct (kernel, ISA, seed) tuples under a Zipf
// popularity law (-zipf), the deterministic shape of real repeated
// traffic. The report then includes the memo outcome breakdown from the
// X-Memo response headers, and -dup-hit-floor F fails the run (exit 1)
// when the hit+coalesce rate over memoized responses falls below F.
//
// Usage:
//
//	simdload -url http://127.0.0.1:8080 -duration 30s -concurrency 8 -deadline-ms 100
//	simdload -dup-keys 40 -zipf 1.3 -dup-seed 11 -dup-hit-floor 0.5
package main

import (
	"flag"
	"fmt"
	"io"
	"math/rand"
	"net/http"
	"os"
	"strings"
	"sync"
	"time"
)

func main() {
	base := flag.String("url", "http://127.0.0.1:8080", "simdserved base URL")
	duration := flag.Duration("duration", 30*time.Second, "how long to generate load")
	concurrency := flag.Int("concurrency", 8, "concurrent request workers")
	deadlineMS := flag.Int("deadline-ms", 100, "per-request deadline sent to the server")
	size := flag.String("size", "640x480", "image size as WxH")
	kernelList := flag.String("kernels", "gaussian,sobel,edges,median,resize,threshold,convert",
		"comma-separated kernels to exercise")
	isaList := flag.String("isas", "neon,sse2,scalar", "comma-separated ISAs to exercise")
	dupKeys := flag.Int("dup-keys", 0, "duplicate-traffic mode: draw requests from this many distinct (kernel, isa, seed) tuples (0 = unique rotating mix)")
	zipfS := flag.Float64("zipf", 1.2, "Zipf exponent for -dup-keys popularity (must be > 1; larger = more skewed)")
	dupSeed := flag.Uint64("dup-seed", 1, "deterministic seed for the -dup-keys draw")
	dupHitFloor := flag.Float64("dup-hit-floor", 0, "fail (exit 1) when the memo hit+coalesce rate falls below this fraction (0 = no floor)")
	flag.Parse()

	if *dupKeys > 0 && *zipfS <= 1 {
		fmt.Fprintf(os.Stderr, "simdload: -zipf %g: want > 1\n", *zipfS)
		os.Exit(2)
	}

	var w, h int
	if _, err := fmt.Sscanf(*size, "%dx%d", &w, &h); err != nil || w < 1 || h < 1 {
		fmt.Fprintf(os.Stderr, "simdload: bad -size %q\n", *size)
		os.Exit(2)
	}
	kernels := strings.Split(*kernelList, ",")
	isas := strings.Split(*isaList, ",")

	client := &http.Client{
		// Transport timeout well above the server deadline: the server is
		// responsible for shedding; the client only guards against hangs.
		Timeout: time.Duration(*deadlineMS)*time.Millisecond + 10*time.Second,
	}

	var (
		mu       sync.Mutex
		byStatus = map[int]int{}
		byMemo   = map[string]int{}
		errs     int
		firstErr string
	)
	stop := time.Now().Add(*duration)
	var wg sync.WaitGroup
	for wkr := 0; wkr < *concurrency; wkr++ {
		wkr := wkr
		wg.Add(1)
		go func() {
			defer wg.Done()
			// Per-worker generator: the draw sequence is deterministic for a
			// given (-dup-seed, worker) pair, independent of scheduling.
			var zipf *rand.Zipf
			if *dupKeys > 0 {
				rng := rand.New(rand.NewSource(int64(*dupSeed) + int64(wkr)))
				zipf = rand.NewZipf(rng, *zipfS, 1, uint64(*dupKeys-1))
			}
			for i := wkr; time.Now().Before(stop); i++ {
				kernel, isa, seed := kernels[i%len(kernels)], isas[i%len(isas)], uint64(i%16+1)
				if zipf != nil {
					// Map the drawn tuple index to (kernel, isa, seed). The
					// seed alone makes each index a distinct content key, so
					// the population is exactly -dup-keys keys.
					idx := zipf.Uint64()
					kernel = kernels[idx%uint64(len(kernels))]
					isa = isas[idx%uint64(len(isas))]
					seed = idx + 1
				}
				url := fmt.Sprintf("%s/process?kernel=%s&isa=%s&width=%d&height=%d&seed=%d&deadline_ms=%d",
					*base, kernel, isa, w, h, seed, *deadlineMS)
				resp, err := client.Get(url)
				mu.Lock()
				if err != nil {
					errs++
					if firstErr == "" {
						firstErr = err.Error()
					}
				} else {
					byStatus[resp.StatusCode]++
					if m := resp.Header.Get("X-Memo"); m != "" {
						byMemo[m]++
					}
				}
				mu.Unlock()
				if err == nil {
					io.Copy(io.Discard, resp.Body)
					resp.Body.Close()
				}
			}
		}()
	}
	wg.Wait()

	total, bad := 0, 0
	for code, n := range byStatus {
		total += n
		if code != http.StatusOK && code != http.StatusTooManyRequests {
			bad += n
		}
	}
	fmt.Printf("simdload: %d requests in %v: 200=%d 429=%d other=%d transport-errors=%d\n",
		total+errs, *duration, byStatus[http.StatusOK], byStatus[http.StatusTooManyRequests], bad, errs)
	for code, n := range byStatus {
		if code != http.StatusOK && code != http.StatusTooManyRequests {
			fmt.Printf("simdload: unexpected status %d x%d\n", code, n)
		}
	}
	if firstErr != "" {
		fmt.Printf("simdload: first transport error: %s\n", firstErr)
	}
	belowFloor := false
	if *dupKeys > 0 {
		served := byMemo["hit"] + byMemo["coalesced"] + byMemo["miss"]
		rate := 0.0
		if served > 0 {
			rate = float64(byMemo["hit"]+byMemo["coalesced"]) / float64(served)
		}
		fmt.Printf("simdload: memo traffic: keys=%d zipf=%g hit=%d coalesced=%d miss=%d hit-rate=%.1f%%\n",
			*dupKeys, *zipfS, byMemo["hit"], byMemo["coalesced"], byMemo["miss"], 100*rate)
		if served == 0 {
			fmt.Println("simdload: no memoized responses (is the server running with -memo-bytes?)")
			belowFloor = *dupHitFloor > 0
		} else if rate < *dupHitFloor {
			fmt.Printf("simdload: hit rate %.3f below floor %.3f\n", rate, *dupHitFloor)
			belowFloor = true
		}
	}
	if total == 0 {
		fmt.Println("simdload: no requests completed")
		os.Exit(1)
	}
	if bad > 0 || errs > 0 || belowFloor {
		os.Exit(1)
	}
}
