// Command simdtop is a terminal dashboard over a running simdserved: it
// consumes the /metrics/stream Server-Sent Events feed and renders one
// screen per frame — per-kernel QPS and latency quantiles over the rollup
// window, SLO burn rates per window, breaker states, quarantined pairs,
// in-flight count and process health. When the server audits for silent
// corruption (-audit-rate) an INTEGRITY line shows the load-scaled
// sampling rate, audit tallies, and pairs the corruption scoreboard has
// quarantined. When the server memoizes results (-memo-bytes) a MEMO line
// shows cache occupancy against budget, the windowed hit rate, and the
// coalescing and eviction tallies.
//
// Usage:
//
//	simdtop -url http://localhost:8080            # live, ^C to quit
//	simdtop -url http://localhost:8080 -frames 3  # capture 3 frames, exit
//	simdtop -plain                                # no ANSI (logs, CI)
//
// With -frames N the exit status is 0 only if all N frames arrived —
// which makes a short -frames -plain session a usable smoke test of the
// whole telemetry path in CI.
package main

import (
	"bufio"
	"encoding/json"
	"flag"
	"fmt"
	"net/http"
	"os"
	"sort"
	"strings"
	"time"
)

// frame mirrors serve.StreamFrame; decoded structurally so simdtop stays
// a pure HTTP client of the documented protocol.
type frame struct {
	Time      string  `json:"time"`
	UptimeSec float64 `json:"uptime_sec"`
	WindowSec float64 `json:"window_sec"`
	Kernels   []struct {
		Kernel string  `json:"kernel"`
		QPS    float64 `json:"qps"`
		P50Ms  float64 `json:"p50_ms"`
		P95Ms  float64 `json:"p95_ms"`
		P99Ms  float64 `json:"p99_ms"`
	} `json:"kernels"`
	SLO []struct {
		Window           string  `json:"window"`
		LatencyBurn      float64 `json:"latency_burn"`
		AvailabilityBurn float64 `json:"availability_burn"`
		Requests         uint64  `json:"requests"`
	} `json:"slo"`
	Breakers       map[string]string `json:"breakers"`
	Quarantined    []string          `json:"quarantined"`
	InFlight       int               `json:"in_flight"`
	Goroutines     int               `json:"goroutines"`
	HeapAllocBytes float64           `json:"heap_alloc_bytes"`
	ShedPerSec     float64           `json:"shed_per_sec"`
	Audit          *struct {
		EffectiveRate float64  `json:"effective_rate"`
		Sampled       uint64   `json:"sampled"`
		Mismatches    uint64   `json:"mismatches"`
		Quarantined   []string `json:"quarantined"`
	} `json:"audit"`
	Memo *struct {
		Entries      int     `json:"entries"`
		Bytes        int64   `json:"bytes"`
		BudgetBytes  int64   `json:"budget_bytes"`
		Hits         uint64  `json:"hits"`
		Misses       uint64  `json:"misses"`
		Coalesced    uint64  `json:"coalesced"`
		Evictions    uint64  `json:"evictions"`
		HitsPerSec   float64 `json:"hits_per_sec"`
		MissesPerSec float64 `json:"misses_per_sec"`
		HitRatePct   float64 `json:"hit_rate_pct"`
	} `json:"memo"`
}

func main() {
	url := flag.String("url", "http://localhost:8080", "simdserved base URL")
	frames := flag.Int("frames", 0, "exit after this many frames (0 = run until interrupted)")
	intervalMS := flag.Int("interval", 1000, "frame cadence in milliseconds")
	windowMS := flag.Int("window", 60000, "rollup window in milliseconds")
	plain := flag.Bool("plain", false, "plain text, one block per frame (no ANSI clear)")
	flag.Parse()

	stream := fmt.Sprintf("%s/metrics/stream?interval_ms=%d&window_ms=%d",
		strings.TrimRight(*url, "/"), *intervalMS, *windowMS)
	if *frames > 0 {
		stream += fmt.Sprintf("&frames=%d", *frames)
	}

	resp, err := http.Get(stream)
	if err != nil {
		fmt.Fprintf(os.Stderr, "simdtop: %v\n", err)
		os.Exit(1)
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		fmt.Fprintf(os.Stderr, "simdtop: %s: HTTP %d\n", stream, resp.StatusCode)
		os.Exit(1)
	}

	got := 0
	sc := bufio.NewScanner(resp.Body)
	sc.Buffer(make([]byte, 0, 64<<10), 1<<20)
	for sc.Scan() {
		line := sc.Text()
		if !strings.HasPrefix(line, "data: ") {
			continue
		}
		var f frame
		if err := json.Unmarshal([]byte(line[len("data: "):]), &f); err != nil {
			fmt.Fprintf(os.Stderr, "simdtop: bad frame: %v\n", err)
			continue
		}
		got++
		render(os.Stdout, f, *plain)
		if *frames > 0 && got >= *frames {
			break
		}
	}
	if err := sc.Err(); err != nil {
		fmt.Fprintf(os.Stderr, "simdtop: stream: %v\n", err)
	}
	if *frames > 0 && got < *frames {
		fmt.Fprintf(os.Stderr, "simdtop: wanted %d frames, got %d\n", *frames, got)
		os.Exit(1)
	}
	if got == 0 {
		fmt.Fprintln(os.Stderr, "simdtop: no frames received")
		os.Exit(1)
	}
}

func render(w *os.File, f frame, plain bool) {
	var b strings.Builder
	if !plain {
		b.WriteString("\x1b[H\x1b[2J") // home + clear
	}
	ts, _ := time.Parse(time.RFC3339Nano, f.Time)
	fmt.Fprintf(&b, "simdtop  %s  up %s  window %.0fs  in-flight %d  goroutines %d  heap %.1f MiB\n",
		ts.Format("15:04:05"), (time.Duration(f.UptimeSec) * time.Second).String(),
		f.WindowSec, f.InFlight, f.Goroutines, f.HeapAllocBytes/(1<<20))
	fmt.Fprintf(&b, "%-12s %9s %9s %9s %9s\n", "KERNEL", "QPS", "P50ms", "P95ms", "P99ms")
	if len(f.Kernels) == 0 {
		b.WriteString("  (no traffic in window)\n")
	}
	for _, k := range f.Kernels {
		fmt.Fprintf(&b, "%-12s %9.1f %9.2f %9.2f %9.2f\n",
			k.Kernel, k.QPS, k.P50Ms, k.P95Ms, k.P99Ms)
	}
	if f.ShedPerSec > 0 {
		fmt.Fprintf(&b, "shedding %.1f req/s\n", f.ShedPerSec)
	}
	if len(f.SLO) > 0 {
		fmt.Fprintf(&b, "%-8s %12s %12s %10s\n", "SLO", "latency-burn", "avail-burn", "requests")
		for _, s := range f.SLO {
			mark := ""
			if s.LatencyBurn >= 1 || s.AvailabilityBurn >= 1 {
				mark = "  ** BURNING **"
			}
			fmt.Fprintf(&b, "%-8s %12.2f %12.2f %10d%s\n",
				s.Window, s.LatencyBurn, s.AvailabilityBurn, s.Requests, mark)
		}
	}
	if len(f.Breakers) > 0 {
		keys := make([]string, 0, len(f.Breakers))
		for k := range f.Breakers {
			keys = append(keys, k)
		}
		sort.Strings(keys)
		b.WriteString("breakers:")
		for _, k := range keys {
			st := f.Breakers[k]
			if st == "closed" {
				continue
			}
			fmt.Fprintf(&b, "  %s=%s", k, st)
		}
		open := false
		for _, st := range f.Breakers {
			if st != "closed" {
				open = true
			}
		}
		if !open {
			fmt.Fprintf(&b, "  all %d closed", len(f.Breakers))
		}
		b.WriteString("\n")
	}
	if len(f.Quarantined) > 0 {
		fmt.Fprintf(&b, "quarantined: %s\n", strings.Join(f.Quarantined, ", "))
	}
	if a := f.Audit; a != nil {
		fmt.Fprintf(&b, "INTEGRITY  audit-rate %.3f  sampled %d  mismatches %d",
			a.EffectiveRate, a.Sampled, a.Mismatches)
		if len(a.Quarantined) > 0 {
			fmt.Fprintf(&b, "  ** CORRUPT: %s **", strings.Join(a.Quarantined, ", "))
		}
		b.WriteString("\n")
	}
	if m := f.Memo; m != nil {
		fmt.Fprintf(&b, "MEMO  %d entries  %.1f/%.1f MiB  hit-rate %.1f%%  hit %.1f/s miss %.1f/s  coalesced %d  evictions %d\n",
			m.Entries, float64(m.Bytes)/(1<<20), float64(m.BudgetBytes)/(1<<20),
			m.HitRatePct, m.HitsPerSec, m.MissesPerSec, m.Coalesced, m.Evictions)
	}
	if plain {
		b.WriteString("---\n")
	}
	w.WriteString(b.String())
}
