// Package cliobs is the shared observability flag surface of the study's
// CLIs: both simdbench and imgtool register their export flags here so the
// flag names, help strings and file-writing behavior cannot drift apart.
package cliobs

import (
	"flag"
	"fmt"
	"net/http"
	_ "net/http/pprof" // registers /debug/pprof on the default mux
	"os"

	"simdstudy/internal/obs"
)

// Flags holds the parsed observability destinations of one CLI.
type Flags struct {
	MetricsOut  string // Prometheus text exposition
	EventsOut   string // JSONL event stream
	ChromeTrace string // Chrome trace_event JSON (Perfetto)
	PprofAddr   string // net/http/pprof listen address
}

// Register installs the shared flags on fs. full also registers
// -chrome-trace and -pprof (simdbench); imgtool keeps just the two export
// flags.
func Register(fs *flag.FlagSet, full bool) *Flags {
	f := &Flags{}
	fs.StringVar(&f.MetricsOut, "metrics-out", "",
		"write Prometheus text metrics to this file at exit")
	fs.StringVar(&f.EventsOut, "events-out", "",
		"write the JSONL event stream to this file at exit")
	if full {
		fs.StringVar(&f.ChromeTrace, "chrome-trace", "",
			"write Chrome trace_event JSON (load in Perfetto or chrome://tracing) to this file at exit")
		fs.StringVar(&f.PprofAddr, "pprof", "",
			"serve net/http/pprof on this address (e.g. localhost:6060)")
	}
	return f
}

// Enabled reports whether any export destination was requested.
func (f *Flags) Enabled() bool {
	return f.MetricsOut != "" || f.EventsOut != "" || f.ChromeTrace != ""
}

// NewRegistry returns a fresh registry when any export is enabled, nil
// otherwise — every obs call site is nil-safe, so a nil registry makes the
// whole instrumentation layer a no-op.
func (f *Flags) NewRegistry() *obs.Registry {
	if !f.Enabled() {
		return nil
	}
	return obs.NewRegistry()
}

// StartPprof serves the default mux (with /debug/pprof registered) on the
// configured address from a background goroutine. No-op without -pprof.
func (f *Flags) StartPprof() {
	if f.PprofAddr == "" {
		return
	}
	go func() {
		if err := http.ListenAndServe(f.PprofAddr, nil); err != nil {
			fmt.Fprintln(os.Stderr, "pprof:", err)
		}
	}()
}

// Export writes every requested format from reg. A nil registry (exports
// disabled) writes nothing.
func (f *Flags) Export(reg *obs.Registry) error {
	if reg == nil {
		return nil
	}
	writes := []struct {
		path  string
		write func(*os.File) error
	}{
		{f.MetricsOut, func(w *os.File) error { return reg.WritePrometheus(w) }},
		{f.EventsOut, func(w *os.File) error { return reg.WriteJSONL(w) }},
		{f.ChromeTrace, func(w *os.File) error { return reg.WriteChromeTrace(w) }},
	}
	for _, wr := range writes {
		if wr.path == "" {
			continue
		}
		file, err := os.Create(wr.path)
		if err != nil {
			return err
		}
		if err := wr.write(file); err != nil {
			file.Close()
			return fmt.Errorf("cliobs: writing %s: %w", wr.path, err)
		}
		if err := file.Close(); err != nil {
			return err
		}
	}
	return nil
}
