// Command figuregen regenerates the paper's speed-up figures.
//
// Usage:
//
//	figuregen -figure 2        # Figure 2: convert float to short speedups
//	figuregen -figure 0        # all figures (2-6)
//	figuregen -figure 4 -csv   # machine-readable series
package main

import (
	"flag"
	"fmt"
	"os"
	"sort"

	"simdstudy/internal/harness"
	"simdstudy/internal/image"
	"simdstudy/internal/platform"
)

func main() {
	figure := flag.Int("figure", 0, "figure number (2-6), 0 for all")
	csv := flag.Bool("csv", false, "emit CSV instead of the ASCII chart")
	extended := flag.Bool("extended", false, "include extrapolated platforms (Cortex-A15)")
	flag.Parse()

	platforms := platform.Paper()
	if *extended {
		platforms = platform.All()
	}

	var numbers []int
	if *figure == 0 {
		for n := range harness.FigureForBench {
			numbers = append(numbers, n)
		}
		sort.Ints(numbers)
	} else {
		if _, ok := harness.FigureForBench[*figure]; !ok {
			fmt.Fprintf(os.Stderr, "figuregen: no figure %d (the speed-up figures are 2-6)\n", *figure)
			os.Exit(1)
		}
		numbers = []int{*figure}
	}

	var grids []*harness.Grid
	for _, n := range numbers {
		g, err := harness.RunGrid(harness.FigureForBench[n], platforms, image.Resolutions)
		if err != nil {
			fmt.Fprintln(os.Stderr, "figuregen:", err)
			os.Exit(1)
		}
		grids = append(grids, g)
		if *csv {
			g.RenderCSV(os.Stdout)
		} else {
			g.RenderFigure(os.Stdout, n)
			fmt.Println()
		}
	}
	if !*csv && len(numbers) > 1 {
		// The abstract's summary sentence, with measured numbers.
		harness.RenderAbstractSummary(os.Stdout, grids)
	}
}
