// Command tablegen regenerates the paper's tables.
//
// Usage:
//
//	tablegen -table 1          # Table I: platform catalogue
//	tablegen -table 2          # Table II: float-to-short conversion times
//	tablegen -table 3          # Table III: benchmarks 2-5 at 8 Mpx
//	tablegen -table 4          # extension: energy per image (future work)
//	tablegen -table 2 -csv     # machine-readable output
//	tablegen -table 2 -verify  # also execute the emulated kernels and
//	                           # cross-check HAND vs scalar outputs
package main

import (
	"flag"
	"fmt"
	"os"

	"simdstudy/internal/harness"
	"simdstudy/internal/image"
	"simdstudy/internal/platform"
	"simdstudy/internal/timing"
)

func main() {
	table := flag.Int("table", 2, "table number to regenerate (1, 2 or 3)")
	csv := flag.Bool("csv", false, "emit CSV instead of the paper layout")
	verify := flag.Bool("verify", false, "execute emulated kernels and cross-check outputs")
	extended := flag.Bool("extended", false, "include extrapolated platforms (Cortex-A15)")
	flag.Parse()

	platforms := platform.Paper()
	if *extended {
		platforms = platform.All()
	}

	switch *table {
	case 1:
		harness.RenderTable1(os.Stdout, platforms)
	case 2:
		if *verify {
			runVerify("ConvertFloatShort")
		}
		g, err := harness.RunGrid("ConvertFloatShort", platforms, image.Resolutions)
		fail(err)
		if *csv {
			g.RenderCSV(os.Stdout)
		} else {
			g.RenderTable2(os.Stdout)
		}
	case 3:
		sizes := []image.Resolution{image.Res8MP}
		var grids []*harness.Grid
		for _, bench := range []string{"BinThr", "GauBlu", "SobFil", "EdgDet"} {
			if *verify {
				runVerify(bench)
			}
			g, err := harness.RunGrid(bench, platforms, sizes)
			fail(err)
			grids = append(grids, g)
		}
		if *csv {
			for _, g := range grids {
				g.RenderCSV(os.Stdout)
			}
		} else {
			harness.RenderTable3(os.Stdout, grids)
		}
	case 4:
		// Extension (paper Section VI future work): performance per watt.
		for _, bench := range []string{"ConvertFloatShort", "EdgDet"} {
			rows, err := timing.EnergyTable(bench, platforms, image.Res8MP)
			fail(err)
			timing.RenderEnergyTable(os.Stdout, bench, image.Res8MP, rows)
			fmt.Println()
		}
	default:
		fail(fmt.Errorf("unknown table %d (paper tables 1-3, extension table 4)", *table))
	}
}

func runVerify(bench string) {
	// A reduced resolution keeps emulated verification quick while still
	// exercising SIMD bodies and scalar tails.
	res := image.Resolution{Width: 322, Height: 242, Name: "322x242"}
	n, err := harness.Verify(bench, res)
	fail(err)
	fmt.Fprintf(os.Stderr, "verified %s: hand-SIMD output matches scalar on %d images\n", bench, n)
}

func fail(err error) {
	if err != nil {
		fmt.Fprintln(os.Stderr, "tablegen:", err)
		os.Exit(1)
	}
}
