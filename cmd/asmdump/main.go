// Command asmdump regenerates the paper's Section V assembly analysis:
// the hand-optimized intrinsic loop versus the auto-vectorized build of
// the float-to-short conversion benchmark, with per-pixel instruction
// accounting.
//
// Usage:
//
//	asmdump            # NEON comparison (the paper's listing)
//	asmdump -isa sse2  # the equivalent x86 analysis
package main

import (
	"flag"
	"fmt"
	"os"

	"simdstudy/internal/asmgen"
	"simdstudy/internal/cv"
)

func main() {
	isaName := flag.String("isa", "neon", "instruction set to analyze: neon or sse2")
	flag.Parse()

	var isa cv.ISA
	switch *isaName {
	case "neon":
		isa = cv.ISANEON
	case "sse2":
		isa = cv.ISASSE2
	default:
		fmt.Fprintf(os.Stderr, "asmdump: unknown ISA %q (want neon or sse2)\n", *isaName)
		os.Exit(1)
	}
	out, err := asmgen.Comparison(isa)
	if err != nil {
		fmt.Fprintln(os.Stderr, "asmdump:", err)
		os.Exit(1)
	}
	fmt.Print(out)
}
