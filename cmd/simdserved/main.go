// Command simdserved is the hardened HTTP front-end over the guarded
// kernel pipeline: bounded admission with load shedding, per-request
// deadlines, per-(kernel, ISA) circuit breakers that demote flaky SIMD
// units to scalar and re-arm them via half-open probes, and the standard
// operational endpoints (/healthz, /readyz, /metrics).
//
// Usage:
//
//	simdserved -addr :8080
//	simdserved -addr :8080 -max-concurrent 2 -queue 4 -deadline-ms 500
//	simdserved -fault-rate 1e-4 -fault-isa neon   # soak: sabotage one ISA
//
// Endpoints:
//
//	GET /process?kernel=gaussian&width=640&height=480&isa=neon&deadline_ms=100
//	GET /healthz   liveness
//	GET /readyz    readiness + per-(kernel, ISA) breaker states
//	GET /livez     supervision view: in-flight requests, stalls, quarantines
//	GET /integrity corruption-defense view: audit sampler rates and tallies,
//	               per-(kernel, ISA) corruption scores, quarantined pairs
//	GET /memo      result-cache view: occupancy, hit/miss/coalesce tallies,
//	               per-(kernel, ISA) entry breakdown, in-flight coalescing
//	GET /metrics   Prometheus text exposition (?format=openmetrics adds
//	               trace-ID exemplars on histogram buckets and # EOF)
//	GET /metrics/stream   live telemetry frames over Server-Sent Events
//	                      (per-kernel QPS and latency quantiles, SLO burn
//	                      rates, breaker and quarantine state) — the feed
//	                      cmd/simdtop renders
//	GET /debug/pprof/...  runtime profiles; CPU samples carry
//	                      (kernel, isa, band) labels from kernel dispatch
//
// Supervision: -stall-deadline arms a watchdog that cancels a request whose
// kernel band goes silent; -quarantine-after N demotes a (kernel, ISA) pair
// whose SIMD path panics N times to scalar permanently; -quarantine-journal
// persists those demotions so a restarted process does not re-probe them.
//
// Integrity: -audit-rate R re-runs a deterministic sample of SIMD dispatches
// on the scalar reference path and byte-compares the outputs. The sampling
// rate adapts to load — it is scaled by admission-queue headroom, so a
// filling queue sheds audits before it delays requests, down to zero at a
// full queue — and a pair whose decayed mismatch rate crosses the scoreboard
// threshold is quarantined to scalar via its breaker. -fault-rate plus
// -audit-rate is the self-soak: injected corruption should surface on
// /integrity and in corruption_detected_total.
//
// Memoization: -memo-bytes B caches kernel results keyed by the content of
// (kernel, ISA, parameters, input plane), serving repeated identical
// requests from a checksum-verified copy (X-Memo: hit) and coalescing
// concurrent identical misses into one execution (X-Memo: coalesced).
// Quarantining a (kernel, ISA) pair drops its cached entries, so a cache
// never replays results from a unit later judged corrupt. -memo-kernels
// restricts memoization to a comma-separated kernel subset.
//
// SIGINT/SIGTERM starts a graceful drain: /readyz flips to 503, in-flight
// requests finish, then the listener closes.
package main

import (
	"context"
	"errors"
	"flag"
	"fmt"
	"net/http"
	"os"
	"os/signal"
	"strings"
	"syscall"
	"time"

	"simdstudy/internal/cv"
	"simdstudy/internal/faults"
	"simdstudy/internal/memo"
	"simdstudy/internal/resilience"
	"simdstudy/internal/serve"
	"simdstudy/internal/super"
)

func main() {
	addr := flag.String("addr", ":8080", "listen address")
	maxConcurrent := flag.Int("max-concurrent", 0, "kernel dispatches running at once (0 = auto: 4, or GOMAXPROCS/workers with -workers > 1)")
	queue := flag.Int("queue", 16, "requests allowed to wait for a slot before shedding")
	workers := flag.Int("workers", 1, "row-band workers per kernel dispatch (1 = serial, -1 = one per core)")
	deadlineMS := flag.Int("deadline-ms", 2000, "default per-request deadline")
	maxDeadlineMS := flag.Int("max-deadline-ms", 10000, "ceiling on client-requested deadlines")
	maxPixels := flag.Int("max-pixels", 1<<22, "ceiling on width*height per request")
	faultRate := flag.Float64("fault-rate", 0, "per-opportunity fault probability (0 = no injection)")
	faultISA := flag.String("fault-isa", "", "restrict fault injection to one ISA: neon or sse2 (empty = all SIMD)")
	faultSeed := flag.Uint64("fault-seed", 7, "deterministic seed for the fault plan")
	breakerWindow := flag.Int("breaker-window", 16, "breaker sliding-window size")
	breakerMinSamples := flag.Int("breaker-min-samples", 4, "verdicts required before a breaker may trip")
	breakerRate := flag.Float64("breaker-rate", 0.5, "failure rate that opens a breaker")
	breakerOpenFor := flag.Duration("breaker-open-for", 5*time.Second, "cooldown before an open breaker half-opens")
	breakerGiveUp := flag.Int("breaker-give-up", 0, "failed re-arm cycles before a breaker latches stuck-open (0 = never)")
	stallDeadline := flag.Duration("stall-deadline", 0, "cancel a request whose kernel band is silent this long (0 = no watchdog)")
	quarantineAfter := flag.Int("quarantine-after", 0, "panics before a (kernel, ISA) pair is demoted to scalar permanently (0 = default 3)")
	quarantineJournal := flag.String("quarantine-journal", "", "persist quarantine decisions here and replay them at startup")
	auditRate := flag.Float64("audit-rate", 0, "fraction of SIMD dispatches re-run on the scalar reference and byte-compared for silent corruption (0 = off); the effective rate scales down with admission-queue fill — a full queue suspends auditing — and persistent mismatches quarantine the (kernel, ISA) pair to scalar")
	auditSeed := flag.Uint64("audit-seed", 1, "deterministic seed for the audit sampler")
	sampleInterval := flag.Duration("sample-interval", time.Second, "time-series sampler cadence for /metrics/stream rollups (0 = sample only per stream frame)")
	telemetryRing := flag.Int("telemetry-ring", 300, "samples held in the time-series ring")
	sloLatencyMS := flag.Int("slo-latency-ms", 250, "latency objective per request, queue wait included")
	sloLatencyTarget := flag.Float64("slo-latency-target", 0.99, "fraction of requests that must meet the latency objective")
	sloAvailTarget := flag.Float64("slo-availability-target", 0.999, "fraction of requests that must not be shed or fail")
	sloDisabled := flag.Bool("slo-disabled", false, "turn off SLO burn-rate tracking")
	memoBytes := flag.Int64("memo-bytes", 0, "result-cache byte budget (0 = memoization off)")
	memoKernels := flag.String("memo-kernels", "", "comma-separated kernels to memoize (empty = all, with -memo-bytes > 0)")
	fuseOn := flag.Bool("fuse", false, "run multi-stage kernels (canny, edges) as cache-blocked fused sweeps")
	stripRows := flag.Int("strip-rows", 0, "strip height for -fuse (0 = automatic, sized to a 256 KiB window budget)")
	drainTimeout := flag.Duration("drain-timeout", 15*time.Second, "graceful shutdown budget after SIGTERM")
	flag.Parse()

	if *faultISA != "" && *faultISA != "neon" && *faultISA != "sse2" {
		fmt.Fprintf(os.Stderr, "simdserved: -fault-isa %q: want neon or sse2\n", *faultISA)
		os.Exit(2)
	}

	memoCfg := memo.Config{MaxBytes: *memoBytes}
	if *memoKernels != "" {
		memoCfg.Kernels = strings.Split(*memoKernels, ",")
	}

	s := serve.NewServer(serve.Config{
		Memo:            memoCfg,
		MaxConcurrent:   *maxConcurrent,
		QueueDepth:      *queue,
		DefaultDeadline: time.Duration(*deadlineMS) * time.Millisecond,
		MaxDeadline:     time.Duration(*maxDeadlineMS) * time.Millisecond,
		MaxPixels:       *maxPixels,
		FaultISA:        *faultISA,
		Parallel:        cv.ParallelConfig{Workers: *workers},
		Fuse:            cv.FuseConfig{Enabled: *fuseOn, StripRows: *stripRows},
		Breaker: resilience.BreakerConfig{
			Window:      *breakerWindow,
			MinSamples:  *breakerMinSamples,
			FailureRate: *breakerRate,
			OpenFor:     *breakerOpenFor,
			GiveUpAfter: *breakerGiveUp,
		},
		StallDeadline:     *stallDeadline,
		Quarantine:        super.QuarantinePolicy{MaxPanics: *quarantineAfter},
		QuarantineJournal: *quarantineJournal,
		AuditRate:         *auditRate,
		AuditSeed:         *auditSeed,
		SampleInterval:    *sampleInterval,
		TelemetryRing:     *telemetryRing,
		SLO: serve.SLOConfig{
			Disabled:           *sloDisabled,
			LatencyObjective:   time.Duration(*sloLatencyMS) * time.Millisecond,
			LatencyTarget:      *sloLatencyTarget,
			AvailabilityTarget: *sloAvailTarget,
		},
	})
	defer s.Close()
	if *faultRate > 0 {
		plan := faults.NewPlan(faults.Config{Rate: *faultRate, Seed: *faultSeed})
		s.SetFaultInjector(serve.LockInjector(plan))
		fmt.Fprintf(os.Stderr, "simdserved: injecting faults at rate %g (isa %q, seed %d)\n",
			*faultRate, *faultISA, *faultSeed)
	}

	srv := &http.Server{
		Addr:              *addr,
		Handler:           s.Handler(),
		ReadHeaderTimeout: 5 * time.Second,
	}

	ctx, stop := signal.NotifyContext(context.Background(),
		os.Interrupt, syscall.SIGTERM)
	defer stop()

	errc := make(chan error, 1)
	go func() { errc <- srv.ListenAndServe() }()
	fmt.Fprintf(os.Stderr, "simdserved: listening on %s (kernels: %s)\n",
		*addr, strings.Join(serve.KernelNames(), ", "))

	select {
	case err := <-errc:
		fmt.Fprintf(os.Stderr, "simdserved: %v\n", err)
		os.Exit(1)
	case <-ctx.Done():
	}

	fmt.Fprintln(os.Stderr, "simdserved: draining")
	s.StartDrain()
	shutCtx, cancel := context.WithTimeout(context.Background(), *drainTimeout)
	defer cancel()
	if err := srv.Shutdown(shutCtx); err != nil && !errors.Is(err, http.ErrServerClosed) {
		fmt.Fprintf(os.Stderr, "simdserved: drain: %v\n", err)
		os.Exit(1)
	}
	fmt.Fprintln(os.Stderr, "simdserved: drained cleanly")
}
