// Command simdbench runs a single benchmark configuration through the
// study: it models AUTO and HAND execution on a chosen platform and size,
// optionally verifying the emulated kernels' outputs, and prints the full
// breakdown (instructions/pixel, DRAM bytes/pixel, compute vs memory
// cycles) behind the headline numbers.
//
// Usage:
//
//	simdbench -platform atom -bench ConvertFloatShort -size 3264x2448
//	simdbench -platform tegra -bench GauBlu -size 640x480 -verify
//	simdbench -bench GauBlu -verify -faults -fault-rate 1e-5 -fault-seed 7
//	simdbench -faults -metrics-out m.prom -events-out e.jsonl -chrome-trace t.json
//	simdbench -bench GauBlu -faults -resume /var/tmp/ckpt     # crash-safe campaign
//	simdbench -bench GauBlu -grid -resume /var/tmp/ckpt       # crash-safe CSV grid
//	simdbench -bench ConvertFloatShort -memo -size 2592x1920  # cache hit vs compute
//	simdbench -list
//
// With -resume DIR, the fault campaign and the grid journal every completed
// unit of work to DIR (internal/checkpoint format); a killed run re-invoked
// with the same flags replays the journal and recomputes only the remainder,
// producing byte-identical stdout. -chaos-kill-after N kills the process
// (SIGKILL, no cleanup) after N journal records — the hook the chaos CI job
// uses to prove that.
package main

import (
	"context"
	"flag"
	"fmt"
	"os"
	"path/filepath"
	"strings"

	"simdstudy/cmd/internal/cliobs"
	"simdstudy/internal/cv"
	"simdstudy/internal/harness"
	"simdstudy/internal/image"
	"simdstudy/internal/obs"
	"simdstudy/internal/platform"
	"simdstudy/internal/timing"
	"simdstudy/internal/vectorizer"
)

func main() {
	platName := flag.String("platform", "", "platform name or substring (empty = all)")
	benchName := flag.String("bench", "ConvertFloatShort", "benchmark: "+strings.Join(timing.BenchNames, ", "))
	sizeName := flag.String("size", "3264x2448", "image size: 640x480, 1280x960, 2592x1920, 3264x2448, or WxH")
	verify := flag.Bool("verify", false, "execute the emulated kernels and cross-check outputs")
	faultsOn := flag.Bool("faults", false, "run a fault-injection campaign through the guarded kernels")
	faultRate := flag.Float64("fault-rate", 1e-5, "per-opportunity fault probability for -faults")
	faultSeed := flag.Uint64("fault-seed", 7, "deterministic seed for the -faults plan")
	auditRate := flag.Float64("audit-rate", 0, "fraction of campaign kernel calls re-run on the scalar reference and byte-compared (0 = off)")
	auditSeed := flag.Uint64("audit-seed", 3, "deterministic seed for the -audit-rate sampler")
	auditFloor := flag.Float64("audit-floor", -1, "measure the audit detection rate against a guard-free rate-1.0 reference campaign and exit 1 below this fraction; requires -faults and -audit-rate > 0 (negative = no gate)")
	fuseOn := flag.Bool("fuse", false, "run multi-stage kernels (Canny, EdgDet) as cache-blocked fused sweeps; also prints the fused DRAM bytes/pixel model")
	stripRows := flag.Int("strip-rows", 0, "strip height for -fuse (0 = size from the platform's modeled caches)")
	memoOn := flag.Bool("memo", false, "measure the result cache: verified-hit latency vs direct kernel execution at -size")
	energy := flag.Bool("energy", false, "also print the energy-per-image extension")
	grid := flag.Bool("grid", false, "emit the full platforms x sizes grid as CSV instead of the single-size table")
	resumeDir := flag.String("resume", "", "journal completed work to this directory and resume from it after a crash")
	stallDeadline := flag.Duration("stall-deadline", 0, "fail a campaign whose kernel band is silent this long (0 = no watchdog)")
	chaosKillAfter := flag.Int("chaos-kill-after", 0, "SIGKILL this process after N checkpoint records (chaos testing; 0 = off)")
	list := flag.Bool("list", false, "list platforms and benchmarks, then exit")
	obsFlags := cliobs.Register(flag.CommandLine, true)
	flag.Parse()
	obsFlags.StartPprof()

	if *list {
		fmt.Println("Platforms:")
		for _, p := range platform.All() {
			note := ""
			if p.Extrapolated {
				note = "  (extrapolated, beyond Table I)"
			}
			fmt.Printf("  %-28s %s%s\n", p.Name, p.Codename, note)
		}
		fmt.Println("Benchmarks:")
		for _, b := range timing.BenchNames {
			fmt.Printf("  %s\n", b)
		}
		return
	}

	res, err := image.ParseResolution(*sizeName)
	fail(err)
	if *resumeDir != "" {
		fail(os.MkdirAll(*resumeDir, 0o755))
	}
	// Canny is the fusion demonstration pipeline: it has hand profiles and
	// the traffic models but no auto-vectorization model (it is not one of
	// the paper's five benchmarks), so the AUTO column and the vectorizer
	// decisions are skipped for it.
	hasAuto := *benchName != "Canny"
	ok := !hasAuto
	for _, b := range timing.BenchNames {
		if b == *benchName {
			ok = true
		}
	}
	if !ok {
		fail(fmt.Errorf("unknown benchmark %q", *benchName))
	}

	var plats []platform.Platform
	if *platName == "" {
		plats = platform.Paper()
	} else {
		p, err := platform.ByName(*platName)
		fail(err)
		plats = []platform.Platform{p}
	}

	reg := obsFlags.NewRegistry()
	reg.Emit("run.start", map[string]any{
		"bench": *benchName, "size": res.Name, "platforms": len(plats),
	})

	vres := image.Resolution{Width: 322, Height: 242, Name: "322x242"}
	if *verify {
		vSpan := reg.StartSpan("verify."+*benchName, obs.L("size", vres.Name))
		n, err := harness.Verify(*benchName, vres)
		vSpan.SetAttr("images", n)
		vSpan.End()
		fail(err)
		fmt.Printf("verified: hand-SIMD output matches scalar on %d images\n\n", n)
	}

	if *faultsOn {
		if *auditFloor >= 0 && *auditRate <= 0 {
			fail(fmt.Errorf("-audit-floor requires -audit-rate > 0"))
		}
		ccfg := harness.CampaignConfig{
			Rate: *faultRate, Seed: *faultSeed, Obs: reg,
			StallDeadline: *stallDeadline,
			Fuse:          fuseConfig(*fuseOn, *stripRows, plats),
			AuditRate:     *auditRate, AuditSeed: *auditSeed,
			// Detection-rate measurement needs corruption to actually reach
			// outputs, so the gate runs guard-free.
			GuardDisabled: *auditFloor >= 0,
		}
		if *resumeDir != "" {
			ccfg.CheckpointPath = filepath.Join(*resumeDir,
				fmt.Sprintf("campaign-%s-%s.journal", *benchName, vres.Name))
			ccfg.CheckpointHook = chaosHook(*chaosKillAfter)
			fmt.Fprintf(os.Stderr, "simdbench: campaign journal %s\n", ccfg.CheckpointPath)
		}
		rep, err := harness.RunFaultCampaign(context.Background(), *benchName, vres, ccfg)
		fail(err)
		rep.Render(os.Stdout)
		if *auditFloor >= 0 {
			fail(gateDetectionRate(reg, rep, *benchName, vres, ccfg, *auditFloor))
		}
		fmt.Println()
	}

	if *memoOn {
		mSpan := reg.StartSpan("memo."+*benchName, obs.L("size", res.Name))
		r, err := harness.RunMemoBench(*benchName, res)
		mSpan.End()
		fail(err)
		fmt.Printf("Result cache, %s at %s (NEON, best-of-N):\n", *benchName, res.Name)
		fmt.Printf("  %-18s %10.3f ms\n", "compute (cold)", r.ColdSeconds*1e3)
		fmt.Printf("  %-18s %10.3f ms  (checksum-verified copy)\n", "cache hit", r.HitSeconds*1e3)
		fmt.Printf("  %-18s %9.1fx\n", "speedup", r.Speedup)
		fmt.Println()
		if !r.Identical {
			fail(fmt.Errorf("memo: cache hit served a plane that differs from direct computation"))
		}
	}

	if *grid {
		gopt := harness.GridOptions{Obs: reg}
		if *resumeDir != "" {
			gopt.CheckpointPath = filepath.Join(*resumeDir,
				fmt.Sprintf("grid-%s.journal", *benchName))
			gopt.CheckpointHook = chaosHook(*chaosKillAfter)
			fmt.Fprintf(os.Stderr, "simdbench: grid journal %s\n", gopt.CheckpointPath)
		}
		g, err := harness.RunGridCtx(context.Background(), *benchName, plats,
			image.Resolutions, gopt)
		fail(err)
		g.RenderCSV(os.Stdout)
		reg.Emit("run.finish", map[string]any{"bench": *benchName})
		fail(obsFlags.Export(reg))
		return
	}

	fmt.Printf("%s on %s (%d runs averaged in the paper's protocol)\n\n", *benchName, res.Name, harness.Runs)
	fmt.Printf("%-26s %-6s %10s %9s %9s %9s %8s\n",
		"Platform", "build", "seconds", "insns/px", "B/px", "cyc/px", "speedup")
	for _, p := range plats {
		eSpan := reg.StartSpan("estimate."+*benchName,
			obs.L("platform", p.Name), obs.L("size", res.Name))
		hand, err := timing.EstimateRun(p, *benchName, res, timing.Hand)
		fail(err)
		eSpan.SetAttr("hand_seconds", hand.Seconds)
		eSpan.SetCycles(hand.CyclesPerPixel * float64(res.Width) * float64(res.Height))
		if hasAuto {
			auto, err := timing.EstimateRun(p, *benchName, res, timing.Auto)
			fail(err)
			eSpan.SetAttr("auto_seconds", auto.Seconds)
			reg.Gauge("estimate_speedup",
				obs.L("bench", *benchName), obs.L("platform", p.Name),
				obs.L("size", res.Name)).Set(auto.Seconds / hand.Seconds)
			fmt.Printf("%-26s %-6s %10.5f %9.2f %9.2f %9.2f %8s\n",
				p.Name, "AUTO", auto.Seconds, auto.InstrPerPixel, auto.BytesPerPixel, auto.CyclesPerPixel, "")
			fmt.Printf("%-26s %-6s %10.5f %9.2f %9.2f %9.2f %7.2fx\n",
				"", "HAND", hand.Seconds, hand.InstrPerPixel, hand.BytesPerPixel, hand.CyclesPerPixel,
				auto.Seconds/hand.Seconds)
		} else {
			fmt.Printf("%-26s %-6s %10.5f %9.2f %9.2f %9.2f %8s\n",
				p.Name, "HAND", hand.Seconds, hand.InstrPerPixel, hand.BytesPerPixel, hand.CyclesPerPixel, "")
		}
		eSpan.End()
	}

	if *fuseOn {
		fmt.Println("\nFused-sweep DRAM traffic model (staged vs strip-streamed):")
		for _, p := range plats {
			staged, err := timing.TrafficPerPixel(*benchName, p, res.Width)
			fail(err)
			fused, err := timing.FusedTrafficPerPixel(*benchName, p, res.Width, *stripRows)
			if err != nil {
				fail(fmt.Errorf("%v (use -bench Canny or EdgDet with -fuse)", err))
			}
			fmt.Printf("  %-26s staged %6.2f B/px   fused %6.2f B/px   (%.0f%% less)\n",
				p.Name, staged, fused, 100*(1-fused/staged))
		}
	}

	if *energy {
		fmt.Println("\nEnergy per image (extension: the paper's future work):")
		rows, err := timing.EnergyTable(*benchName, plats, res)
		fail(err)
		timing.RenderEnergyTable(os.Stdout, *benchName, res, rows)
	}

	if hasAuto {
		// Per-pass vectorizer decisions for the chosen benchmark.
		fmt.Println("\nAuto-vectorizer decisions (gcc 4.6 model):")
		for _, target := range []vectorizer.Target{vectorizer.TargetNEON, vectorizer.TargetSSE2} {
			ds, err := timing.Decisions(*benchName, target)
			fail(err)
			for _, d := range ds {
				fmt.Print("  " + d.Explain())
			}
		}
	}

	reg.Emit("run.finish", map[string]any{"bench": *benchName})
	fail(obsFlags.Export(reg))
}

// fuseConfig builds the campaign fusion config. Strips are sized from the
// first selected platform's modeled caches so the campaign exercises the
// same geometry the traffic model reports for it.
func fuseConfig(on bool, stripRows int, plats []platform.Platform) cv.FuseConfig {
	if !on {
		return cv.FuseConfig{}
	}
	cfg := cv.FuseConfig{Enabled: true, StripRows: stripRows}
	if len(plats) > 0 {
		cfg.Caches = plats[0].M.Caches
	}
	return cfg
}

// gateDetectionRate measures the audited campaign against ground truth: a
// guard-free reference campaign with the same fault plan audited at rate
// 1.0 catches every corrupted output (the injection schedule is independent
// of the audit rate), so measured/reference is the detection rate. It
// returns an error when that rate falls below floor.
func gateDetectionRate(reg *obs.Registry, rep *harness.FaultReport,
	bench string, res image.Resolution, cfg harness.CampaignConfig, floor float64) error {
	refCfg := harness.CampaignConfig{
		Rate: cfg.Rate, Seed: cfg.Seed, Obs: reg,
		StallDeadline: cfg.StallDeadline,
		AuditRate:     1.0, AuditSeed: cfg.AuditSeed,
		GuardDisabled: true,
	}
	ref, err := harness.RunFaultCampaign(context.Background(), bench, res, refCfg)
	if err != nil {
		return fmt.Errorf("detection-rate reference campaign: %w", err)
	}
	var caught, corrupted uint64
	for _, ir := range rep.PerISA {
		caught += ir.AuditCaught
	}
	for _, ir := range ref.PerISA {
		corrupted += ir.AuditCaught
	}
	if corrupted == 0 {
		fmt.Printf("audit detection rate: no corrupted outputs at fault rate %g — gate not applicable\n", cfg.Rate)
		return nil
	}
	rate := float64(caught) / float64(corrupted)
	fmt.Printf("audit detection rate: %d/%d corrupted outputs caught (%.1f%% at sampling rate %g)\n",
		caught, corrupted, 100*rate, cfg.AuditRate)
	if rate < floor {
		return fmt.Errorf("audit detection rate %.3f below floor %.3f", rate, floor)
	}
	return nil
}

// chaosHook returns a CheckpointHook that SIGKILLs this process once the
// journal holds killAfter records — a crash with no cleanup, deferred writes
// or flushes, which is exactly what the resume path must survive. killAfter
// <= 0 disables it.
func chaosHook(killAfter int) func(int) {
	if killAfter <= 0 {
		return nil
	}
	return func(records int) {
		if records >= killAfter {
			fmt.Fprintf(os.Stderr, "simdbench: chaos kill at %d records\n", records)
			p, err := os.FindProcess(os.Getpid())
			if err == nil {
				p.Kill()
			}
			select {} // never resume past the kill
		}
	}
}

func fail(err error) {
	if err != nil {
		fmt.Fprintln(os.Stderr, "simdbench:", err)
		os.Exit(1)
	}
}
