// Command imgtool generates and inspects the synthetic benchmark images
// that stand in for the paper's camera photographs.
//
// Usage:
//
//	imgtool -gen -size 640x480 -seed 1 -out frame.pgm
//	imgtool -info frame.pgm
//	imgtool -gen -burst 5 -size 1280x960 -out frames   # frames-1.pgm ...
//	imgtool -gen -burst 5 -out frames -metrics-out m.prom -events-out e.jsonl
package main

import (
	"flag"
	"fmt"
	"os"

	"simdstudy/cmd/internal/cliobs"
	"simdstudy/internal/image"
	"simdstudy/internal/obs"
)

func main() {
	gen := flag.Bool("gen", false, "generate a synthetic image")
	info := flag.String("info", "", "print statistics for a PGM file")
	sizeName := flag.String("size", "640x480", "image size (paper name or WxH)")
	seed := flag.Uint64("seed", 1, "generator seed (distinct seeds give the burst images)")
	burst := flag.Int("burst", 1, "number of burst frames to generate")
	out := flag.String("out", "frame.pgm", "output file (or prefix when -burst > 1)")
	obsFlags := cliobs.Register(flag.CommandLine, false)
	flag.Parse()
	reg := obsFlags.NewRegistry()

	switch {
	case *info != "":
		sp := reg.StartSpan("imgtool.info", obs.L("file", *info))
		f, err := os.Open(*info)
		fail(err)
		defer f.Close()
		m, err := image.ReadPGM(f)
		fail(err)
		var min, max uint8 = 255, 0
		var sum int
		for _, v := range m.U8Pix {
			if v < min {
				min = v
			}
			if v > max {
				max = v
			}
			sum += int(v)
		}
		reg.Counter("imgtool_images_read_total").Inc()
		reg.Counter("imgtool_bytes_read_total").Add(uint64(m.Bytes()))
		sp.End()
		fmt.Printf("%s: %dx%d %v, %d pixels, min %d max %d mean %.1f\n",
			*info, m.Width, m.Height, m.Kind, m.Pixels(), min, max,
			float64(sum)/float64(m.Pixels()))
	case *gen:
		res, err := image.ParseResolution(*sizeName)
		fail(err)
		if *burst == 1 {
			writeOne(reg, res, *seed, *out)
		} else {
			for i := 0; i < *burst; i++ {
				writeOne(reg, res, uint64(i+1), fmt.Sprintf("%s-%d.pgm", *out, i+1))
			}
		}
	default:
		flag.Usage()
		os.Exit(2)
	}
	fail(obsFlags.Export(reg))
}

func writeOne(reg *obs.Registry, res image.Resolution, seed uint64, path string) {
	sp := reg.StartSpan("imgtool.gen",
		obs.L("size", res.Name), obs.L("file", path))
	m := image.Synthetic(res, seed)
	f, err := os.Create(path)
	fail(err)
	defer f.Close()
	fail(image.WritePGM(f, m))
	reg.Counter("imgtool_images_written_total", obs.L("size", res.Name)).Inc()
	reg.Counter("imgtool_bytes_written_total").Add(uint64(m.Bytes()))
	sp.End()
	fmt.Printf("wrote %s (%dx%d, %d bytes raw)\n", path, m.Width, m.Height, m.Bytes())
}

func fail(err error) {
	if err != nil {
		fmt.Fprintln(os.Stderr, "imgtool:", err)
		os.Exit(1)
	}
}
