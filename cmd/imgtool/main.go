// Command imgtool generates and inspects the synthetic benchmark images
// that stand in for the paper's camera photographs.
//
// Usage:
//
//	imgtool -gen -size 640x480 -seed 1 -out frame.pgm
//	imgtool -info frame.pgm
//	imgtool -gen -burst 5 -size 1280x960 -out frames   # frames-1.pgm ...
package main

import (
	"flag"
	"fmt"
	"os"

	"simdstudy/internal/image"
)

func main() {
	gen := flag.Bool("gen", false, "generate a synthetic image")
	info := flag.String("info", "", "print statistics for a PGM file")
	sizeName := flag.String("size", "640x480", "image size (paper name or WxH)")
	seed := flag.Uint64("seed", 1, "generator seed (distinct seeds give the burst images)")
	burst := flag.Int("burst", 1, "number of burst frames to generate")
	out := flag.String("out", "frame.pgm", "output file (or prefix when -burst > 1)")
	flag.Parse()

	switch {
	case *info != "":
		f, err := os.Open(*info)
		fail(err)
		defer f.Close()
		m, err := image.ReadPGM(f)
		fail(err)
		var min, max uint8 = 255, 0
		var sum int
		for _, v := range m.U8Pix {
			if v < min {
				min = v
			}
			if v > max {
				max = v
			}
			sum += int(v)
		}
		fmt.Printf("%s: %dx%d %v, %d pixels, min %d max %d mean %.1f\n",
			*info, m.Width, m.Height, m.Kind, m.Pixels(), min, max,
			float64(sum)/float64(m.Pixels()))
	case *gen:
		res, err := image.ParseResolution(*sizeName)
		fail(err)
		if *burst == 1 {
			writeOne(res, *seed, *out)
			return
		}
		for i := 0; i < *burst; i++ {
			writeOne(res, uint64(i+1), fmt.Sprintf("%s-%d.pgm", *out, i+1))
		}
	default:
		flag.Usage()
		os.Exit(2)
	}
}

func writeOne(res image.Resolution, seed uint64, path string) {
	m := image.Synthetic(res, seed)
	f, err := os.Create(path)
	fail(err)
	defer f.Close()
	fail(image.WritePGM(f, m))
	fmt.Printf("wrote %s (%dx%d, %d bytes raw)\n", path, m.Width, m.Height, m.Bytes())
}

func fail(err error) {
	if err != nil {
		fmt.Fprintln(os.Stderr, "imgtool:", err)
		os.Exit(1)
	}
}
