// Custom-kernel: write a new SIMD kernel directly against the public
// NEON and SSE2 intrinsic APIs — here, image alpha blending
// (dst = (a*alpha + b*(256-alpha)) >> 8) — validate both against a scalar
// reference, and compare their dynamic instruction mixes, exactly the
// methodology the paper applies to the OpenCV kernels.
package main

import (
	"fmt"
	"log"

	"simdstudy"
)

// blendScalar is the reference implementation.
func blendScalar(a, b []uint8, alpha uint16, dst []uint8) {
	inv := 256 - alpha
	for i := range dst {
		dst[i] = uint8((uint16(a[i])*alpha + uint16(b[i])*inv) >> 8)
	}
}

// blendNEON blends 8 pixels per iteration with widening multiply-
// accumulate, the same shape as the study's Gaussian row filter.
func blendNEON(u *simdstudy.NEONUnit, a, b []uint8, alpha uint16, dst []uint8) {
	wa := u.VdupNU8(uint8(alpha))
	wb := u.VdupNU8(uint8(256 - alpha))
	i := 0
	for ; i+8 <= len(dst); i += 8 {
		acc := u.VmullU8(u.Vld1U8(a[i:]), wa)
		acc = u.VmlalU8(acc, u.Vld1U8(b[i:]), wb)
		u.Vst1U8(dst[i:], u.VrshrnNU16(acc, 8))
		u.Overhead(2, 1, 0)
	}
	for ; i < len(dst); i++ {
		dst[i] = uint8((uint16(a[i])*alpha + uint16(b[i])*(256-alpha)) >> 8)
	}
}

// blendSSE2 blends 8 pixels per iteration via unpack + pmullw.
func blendSSE2(u *simdstudy.SSE2Unit, a, b []uint8, alpha uint16, dst []uint8) {
	zero := u.SetzeroSi128()
	wa := u.Set1Epi16(int16(alpha))
	wb := u.Set1Epi16(int16(256 - alpha))
	half := u.Set1Epi16(1 << 7)
	i := 0
	for ; i+8 <= len(dst); i += 8 {
		va := u.UnpackloEpi8(u.LoadlEpi64U8(a[i:]), zero)
		vb := u.UnpackloEpi8(u.LoadlEpi64U8(b[i:]), zero)
		acc := u.AddEpi16(u.MulloEpi16(va, wa), u.MulloEpi16(vb, wb))
		acc = u.SrliEpi16(u.AddEpi16(acc, half), 8)
		u.StorelEpi64U8(dst[i:], u.PackusEpi16(acc, acc))
		u.Overhead(2, 1, 0)
	}
	for ; i < len(dst); i++ {
		dst[i] = uint8((uint16(a[i])*alpha + uint16(b[i])*(256-alpha)) >> 8)
	}
}

func main() {
	res := simdstudy.Resolution{Width: 512, Height: 384, Name: "512x384"}
	imgA := simdstudy.Synthetic(res, 1)
	imgB := simdstudy.Synthetic(res, 2)
	const alpha = 96 // 37.5% of A

	want := make([]uint8, res.Pixels())
	blendScalar(imgA.U8Pix, imgB.U8Pix, alpha, want)

	// NEON.
	trN := simdstudy.NewTrace()
	neonOut := make([]uint8, res.Pixels())
	blendNEON(simdstudy.NewNEON(trN), imgA.U8Pix, imgB.U8Pix, alpha, neonOut)

	// SSE2.
	trS := simdstudy.NewTrace()
	sseOut := make([]uint8, res.Pixels())
	blendSSE2(simdstudy.NewSSE2(trS), imgA.U8Pix, imgB.U8Pix, alpha, sseOut)

	// Validate: NEON's vrshrn rounds where the scalar shift truncates, so
	// allow 1 LSB there; SSE2's explicit +half matches NEON.
	check := func(name string, got []uint8, tol int) {
		worst := 0
		for i := range want {
			d := int(want[i]) - int(got[i])
			if d < 0 {
				d = -d
			}
			if d > worst {
				worst = d
			}
		}
		if worst > tol {
			log.Fatalf("%s: differs from scalar by up to %d LSB", name, worst)
		}
		fmt.Printf("%-5s matches the scalar reference within %d LSB\n", name, worst)
	}
	check("NEON", neonOut, 1)
	check("SSE2", sseOut, 1)

	px := float64(res.Pixels())
	fmt.Printf("\ninstruction mix per pixel (%d pixels):\n", res.Pixels())
	fmt.Printf("  scalar : ~7 ops/px (2 loads, 2 muls, add, shift, store)\n")
	fmt.Printf("  NEON   : %.2f instrs/px (%.2f on the vector pipe)\n",
		float64(trN.Total())/px, float64(trN.SIMDTotal())/px)
	fmt.Printf("  SSE2   : %.2f instrs/px (%.2f on the vector pipe)\n",
		float64(trS.Total())/px, float64(trS.SIMDTotal())/px)
	fmt.Printf("\nNEON needs fewer instructions than SSE2 here because vmlal fuses the\n")
	fmt.Printf("widening multiply-accumulate that SSE2 spells as unpack+pmullw+paddw —\n")
	fmt.Printf("one of the ISA asymmetries the paper's Section II-C catalogues.\n")
}
