// Vectorize-report: the paper's Section V analysis, programmatically.
// For every benchmark inner loop and both compiler targets, print the
// gcc-4.6-model's vectorization decision and diagnostic, then render the
// side-by-side assembly comparison for the convert benchmark.
package main

import (
	"fmt"
	"log"

	"simdstudy"
)

func main() {
	fmt.Println("Auto-vectorization decisions (gcc 4.6 -O3 -ftree-vectorize model)")
	fmt.Println("==================================================================")
	for _, bench := range simdstudy.BenchNames() {
		fmt.Printf("\n%s:\n", bench)
		for _, target := range []simdstudy.VectorizeTarget{simdstudy.TargetNEON, simdstudy.TargetSSE2} {
			decisions, err := simdstudy.VectorizeDecisions(bench, target)
			if err != nil {
				log.Fatal(err)
			}
			for _, d := range decisions {
				fmt.Print("  " + d.Explain())
			}
		}
	}

	fmt.Println("\nSection V: hand intrinsics vs auto-vectorized assembly (convert)")
	fmt.Println("=================================================================")
	for _, isa := range []simdstudy.ISA{simdstudy.ISANEON, simdstudy.ISASSE2} {
		out, err := simdstudy.SectionVComparison(isa)
		if err != nil {
			log.Fatal(err)
		}
		fmt.Println(out)
	}

	fmt.Println("Summary: across the five benchmarks the compiler model hits every")
	fmt.Println("blocker class the paper cites — libcalls (cvRound/lrint), missing")
	fmt.Println("integer vcond patterns (threshold), unknown mutual alignment")
	fmt.Println("(horizontal filter taps), and saturating-arithmetic idioms (edge")
	fmt.Println("magnitude) — which is why hand-written intrinsics still won in 2013.")
}
