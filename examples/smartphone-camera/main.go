// Smartphone camera pipeline: the workload the paper's introduction
// motivates. A burst of 8 Mpx frames flows through the full mobile
// imaging chain — denoise (Gaussian blur), gradient extraction (Sobel),
// edge map (threshold) — and the study's timing model compares how the
// in-order Intel Atom D510 and the Samsung Galaxy S3's Exynos 4412 handle
// it with and without hand-written SIMD, including the energy framing
// (GFLOPS/Watt tiers) from the paper's motivation section.
package main

import (
	"fmt"
	"log"

	"simdstudy"
)

// pipeline is the per-frame camera chain in paper benchmarks.
var pipeline = []string{"GauBlu", "SobFil", "EdgDet"}

func main() {
	const frames = 5 // one camera burst, as in the paper's protocol
	res := simdstudy.Res8MP

	// Functional pass: actually run one frame through the emulated NEON
	// pipeline at reduced size to show the kernels compose.
	small := simdstudy.Resolution{Width: 640, Height: 480, Name: "640x480"}
	frame := simdstudy.Synthetic(small, 1)
	o := simdstudy.NewOps(simdstudy.ISANEON, nil)
	blurred := simdstudy.NewMat(small.Width, small.Height, simdstudy.U8)
	grad := simdstudy.NewMat(small.Width, small.Height, simdstudy.S16)
	edges := simdstudy.NewMat(small.Width, small.Height, simdstudy.U8)
	if err := o.GaussianBlur(frame, blurred); err != nil {
		log.Fatal(err)
	}
	if err := o.SobelFilter(blurred, grad, 1, 0); err != nil {
		log.Fatal(err)
	}
	if err := o.DetectEdges(blurred, edges, 100); err != nil {
		log.Fatal(err)
	}
	lit := 0
	for _, v := range edges.U8Pix {
		if v != 0 {
			lit++
		}
	}
	fmt.Printf("functional check: %dx%d frame -> blur -> sobel -> edges (%d edge pixels)\n\n",
		small.Width, small.Height, lit)

	// Modeled burst timing on the two contrasted platforms.
	atom, err := simdstudy.PlatformByName("Atom")
	if err != nil {
		log.Fatal(err)
	}
	s3, err := simdstudy.PlatformByName("Samsung Exynos 4412")
	if err != nil {
		log.Fatal(err)
	}

	for _, p := range []simdstudy.Platform{atom, s3} {
		var autoTotal, handTotal float64
		for _, stage := range pipeline {
			a, err := simdstudy.EstimateRun(p, stage, res, simdstudy.Auto)
			if err != nil {
				log.Fatal(err)
			}
			h, err := simdstudy.EstimateRun(p, stage, res, simdstudy.Hand)
			if err != nil {
				log.Fatal(err)
			}
			autoTotal += a.Seconds
			handTotal += h.Seconds
		}
		autoBurst := autoTotal * frames
		handBurst := handTotal * frames
		fmt.Printf("%s (%.2f GHz, %s):\n", p.Name, p.ClockGHz, p.Memory)
		fmt.Printf("  %d-frame 8 Mpx burst, AUTO build: %6.2f s (%.1f fps)\n",
			frames, autoBurst, frames/autoBurst)
		fmt.Printf("  %d-frame 8 Mpx burst, HAND build: %6.2f s (%.1f fps)\n",
			frames, handBurst, frames/handBurst)
		fmt.Printf("  hand-written SIMD is worth %.2fx — the same silicon, %.0f%% less time\n\n",
			autoBurst/handBurst, 100*(1-handBurst/autoBurst))
	}

	fmt.Println("The paper's motivation: SIMD cuts instruction count and data movement,")
	fmt.Println("so on power-constrained mobile parts the HAND build finishes the burst")
	fmt.Println("sooner at similar power, directly improving energy per frame.")
}
