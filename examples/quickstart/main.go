// Quickstart: run the paper's edge-detection pipeline with and without
// hand-optimized SIMD, check the outputs agree, and ask the timing model
// what the difference would be worth on real 2013-era silicon.
package main

import (
	"fmt"
	"log"
	"os"

	"simdstudy"
)

func main() {
	// 1. Generate a synthetic 0.3 Mpx photograph (the study replaces the
	//    paper's camera bitmaps with deterministic synthetic images).
	res := simdstudy.Res03MP
	src := simdstudy.Synthetic(res, 1)

	// 2. Detect edges twice: once through the scalar reference path and
	//    once through the hand-written NEON intrinsic path (emulated
	//    bit-exactly, with every SIMD instruction accounted).
	scalarOut := simdstudy.NewMat(res.Width, res.Height, simdstudy.U8)
	simdOut := simdstudy.NewMat(res.Width, res.Height, simdstudy.U8)

	scalar := simdstudy.NewOps(simdstudy.ISANEON, nil)
	scalar.SetUseOptimized(false) // cv::setUseOptimized(false)
	if err := scalar.DetectEdges(src, scalarOut, 100); err != nil {
		log.Fatal(err)
	}

	tr := simdstudy.NewTrace()
	simd := simdstudy.NewOps(simdstudy.ISANEON, tr)
	if err := simd.DetectEdges(src, simdOut, 100); err != nil {
		log.Fatal(err)
	}

	if !scalarOut.EqualTo(simdOut) {
		log.Fatalf("outputs differ in %d pixels", scalarOut.DiffCount(simdOut, 0))
	}
	fmt.Printf("edge maps identical; NEON path retired %d instructions (%d on the vector pipe)\n",
		tr.Total(), tr.SIMDTotal())

	// 3. Ask the timing model what the hand-tuned kernels buy on each of
	//    the paper's ten platforms.
	fmt.Printf("\n%-26s %10s %10s %8s\n", "Platform", "AUTO (s)", "HAND (s)", "speedup")
	for _, p := range simdstudy.Platforms() {
		auto, err := simdstudy.EstimateRun(p, "EdgDet", res, simdstudy.Auto)
		if err != nil {
			log.Fatal(err)
		}
		hand, err := simdstudy.EstimateRun(p, "EdgDet", res, simdstudy.Hand)
		if err != nil {
			log.Fatal(err)
		}
		fmt.Printf("%-26s %10.5f %10.5f %7.2fx\n",
			p.Name, auto.Seconds, hand.Seconds, auto.Seconds/hand.Seconds)
	}

	// 4. Save the edge map for inspection.
	f, err := os.Create("edges.pgm")
	if err != nil {
		log.Fatal(err)
	}
	defer f.Close()
	if err := simdstudy.WritePGM(f, simdOut); err != nil {
		log.Fatal(err)
	}
	fmt.Println("\nwrote edges.pgm")
}
