package simdstudy

import (
	"bytes"
	"strings"
	"testing"
)

// TestFacadeEndToEnd drives the whole study through the public API only,
// the way the examples do.
func TestFacadeEndToEnd(t *testing.T) {
	if len(Platforms()) != 10 {
		t.Fatal("ten Table I platforms")
	}
	if len(AllPlatforms()) != 11 {
		t.Fatal("plus the extrapolated A15")
	}
	if len(BenchNames()) != 5 {
		t.Fatal("five benchmarks")
	}
	if len(Resolutions()) != 4 {
		t.Fatal("four sizes")
	}

	res := Resolution{Width: 160, Height: 120, Name: "160x120"}
	src := Synthetic(res, 1)
	dst := NewMat(res.Width, res.Height, U8)
	want := NewMat(res.Width, res.Height, U8)

	tr := NewTrace()
	ops := NewOps(ISANEON, tr)
	if err := ops.GaussianBlur(src, dst); err != nil {
		t.Fatal(err)
	}
	if tr.SIMDTotal() == 0 {
		t.Fatal("NEON path should use the vector pipe")
	}
	scalar := NewOps(ISAScalar, nil)
	if err := scalar.GaussianBlur(src, want); err != nil {
		t.Fatal(err)
	}
	if !want.EqualTo(dst) {
		t.Fatal("facade kernels disagree with scalar")
	}

	p, err := PlatformByName("Galaxy") // no match
	if err == nil {
		t.Fatalf("unexpected platform %v", p)
	}
	p, err = PlatformByName("odroid")
	if err != nil {
		t.Fatal(err)
	}
	est, err := EstimateRun(p, "GauBlu", Res03MP, Hand)
	if err != nil {
		t.Fatal(err)
	}
	if est.Seconds <= 0 {
		t.Fatal("estimate must be positive")
	}
	s, err := Speedup(p, "GauBlu", Res03MP)
	if err != nil || s <= 1 {
		t.Fatalf("speedup %v %v", s, err)
	}
}

func TestFacadeCustomKernelSurface(t *testing.T) {
	// The custom-kernel example's surface: raw intrinsic units over V64/V128.
	tr := NewTrace()
	n := NewNEON(tr)
	a := n.VdupNU8(10)
	b := n.VdupNU8(32)
	acc := n.VmullU8(a, b)
	if acc.U16(0) != 320 {
		t.Fatal("NEON unit arithmetic")
	}
	s := NewSSE2(tr)
	v := s.Set1Epi16(7)
	if s.MulloEpi16(v, v).I16(3) != 49 {
		t.Fatal("SSE2 unit arithmetic")
	}
	if tr.Total() == 0 {
		t.Fatal("units must record")
	}
	var v128 V128
	v128.SetF32(2, 1.5)
	if v128.F32(2) != 1.5 {
		t.Fatal("V128 alias")
	}
	var v64 V64
	v64.SetI16(1, -3)
	if v64.I16(1) != -3 {
		t.Fatal("V64 alias")
	}
}

func TestFacadeGridAndVerify(t *testing.T) {
	g, err := RunGrid("BinThr", Platforms()[:2], []Resolution{Res03MP})
	if err != nil {
		t.Fatal(err)
	}
	var buf bytes.Buffer
	g.RenderCSV(&buf)
	if !strings.Contains(buf.String(), "BinThr") {
		t.Fatal("grid CSV")
	}
	n, err := VerifyBenchmark("BinThr", Resolution{Width: 64, Height: 48})
	if err != nil || n != 5 {
		t.Fatalf("verify: %d %v", n, err)
	}
}

func TestFacadeReportingSurface(t *testing.T) {
	var buf bytes.Buffer
	RenderTable1(&buf, Platforms())
	if !strings.Contains(buf.String(), "Pineview") {
		t.Fatal("Table I render")
	}
	ds, err := VectorizeDecisions("EdgDet", TargetNEON)
	if err != nil || len(ds) != 5 {
		t.Fatalf("decisions: %d %v", len(ds), err)
	}
	out, err := SectionVComparison(ISASSE2)
	if err != nil || !strings.Contains(out, "packssdw") {
		t.Fatalf("Section V: %v", err)
	}
}

func TestFacadePGMRoundTrip(t *testing.T) {
	src := Synthetic(Resolution{Width: 17, Height: 9}, 4)
	var buf bytes.Buffer
	if err := WritePGM(&buf, src); err != nil {
		t.Fatal(err)
	}
	back, err := ReadPGM(&buf)
	if err != nil || !src.EqualTo(back) {
		t.Fatalf("PGM roundtrip: %v", err)
	}
}

func TestFacadeThresholdConstants(t *testing.T) {
	src := NewMat(4, 1, U8)
	copy(src.U8Pix, []uint8{0, 50, 150, 250})
	dst := NewMat(4, 1, U8)
	o := NewOps(ISASSE2, nil)
	for _, typ := range []ThreshType{ThreshBinary, ThreshBinaryInv, ThreshTrunc, ThreshToZero, ThreshToZeroInv} {
		if err := o.Threshold(src, dst, 100, 255, typ); err != nil {
			t.Fatalf("%v: %v", typ, err)
		}
	}
	f := SyntheticF32(Resolution{Width: 8, Height: 8}, 1)
	out := NewMat(8, 8, S16)
	if err := o.ConvertF32ToS16(f, out); err != nil {
		t.Fatal(err)
	}
}
