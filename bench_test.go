// Benchmark harness: one testing.B benchmark per paper table and figure.
//
// Each BenchmarkTableN/BenchmarkFigureN regenerates the corresponding
// artifact; run with -v (or see cmd/tablegen, cmd/figuregen) to print the
// rendered output. The Host* benchmarks measure this library's own
// emulation-layer throughput on the host machine, and the Ablation*
// benchmarks exercise the design-choice studies listed in DESIGN.md.
package simdstudy

import (
	"bytes"
	"context"
	"fmt"
	"sync"
	"testing"

	"simdstudy/internal/harness"
	"simdstudy/internal/image"
	"simdstudy/internal/platform"
	"simdstudy/internal/sse2"
	"simdstudy/internal/timing"
	"simdstudy/internal/vectorizer"
)

var renderMu sync.Mutex

// BenchmarkTable1_Platforms regenerates Table I (platform catalogue).
func BenchmarkTable1_Platforms(b *testing.B) {
	for i := 0; i < b.N; i++ {
		var buf bytes.Buffer
		RenderTable1(&buf, Platforms())
		if buf.Len() == 0 {
			b.Fatal("empty table")
		}
	}
}

// BenchmarkTable2_ConvertFloatShort regenerates Table II: float-to-short
// conversion times for 10 platforms x 4 sizes x AUTO/HAND.
func BenchmarkTable2_ConvertFloatShort(b *testing.B) {
	for i := 0; i < b.N; i++ {
		g, err := RunGrid("ConvertFloatShort", Platforms(), Resolutions())
		if err != nil {
			b.Fatal(err)
		}
		renderMu.Lock()
		var buf bytes.Buffer
		g.RenderTable2(&buf)
		renderMu.Unlock()
		if i == 0 {
			b.Log("\n" + buf.String())
		}
	}
}

// benchTable3 regenerates one Table III row group (a benchmark at 8 Mpx).
func benchTable3(b *testing.B, bench string) {
	sizes := []image.Resolution{image.Res8MP}
	for i := 0; i < b.N; i++ {
		g, err := RunGrid(bench, Platforms(), sizes)
		if err != nil {
			b.Fatal(err)
		}
		if i == 0 {
			var buf bytes.Buffer
			harness.RenderTable3(&buf, []*harness.Grid{g})
			b.Log("\n" + buf.String())
		}
	}
}

// BenchmarkTable3_BinThr regenerates Table III's binary thresholding rows.
func BenchmarkTable3_BinThr(b *testing.B) { benchTable3(b, "BinThr") }

// BenchmarkTable3_GauBlu regenerates Table III's Gaussian blur rows.
func BenchmarkTable3_GauBlu(b *testing.B) { benchTable3(b, "GauBlu") }

// BenchmarkTable3_SobFil regenerates Table III's Sobel filter rows.
func BenchmarkTable3_SobFil(b *testing.B) { benchTable3(b, "SobFil") }

// BenchmarkTable3_EdgDet regenerates Table III's edge detection rows.
func BenchmarkTable3_EdgDet(b *testing.B) { benchTable3(b, "EdgDet") }

// benchFigure regenerates one speedup figure (speedups across all sizes
// and platforms for a benchmark).
func benchFigure(b *testing.B, number int) {
	bench := harness.FigureForBench[number]
	for i := 0; i < b.N; i++ {
		g, err := RunGrid(bench, Platforms(), Resolutions())
		if err != nil {
			b.Fatal(err)
		}
		if i == 0 {
			var buf bytes.Buffer
			g.RenderFigure(&buf, number)
			b.Log("\n" + buf.String())
		}
	}
}

// BenchmarkFigure2_ConvertSpeedups regenerates Figure 2.
func BenchmarkFigure2_ConvertSpeedups(b *testing.B) { benchFigure(b, 2) }

// BenchmarkFigure3_ThresholdSpeedups regenerates Figure 3.
func BenchmarkFigure3_ThresholdSpeedups(b *testing.B) { benchFigure(b, 3) }

// BenchmarkFigure4_GaussianSpeedups regenerates Figure 4.
func BenchmarkFigure4_GaussianSpeedups(b *testing.B) { benchFigure(b, 4) }

// BenchmarkFigure5_SobelSpeedups regenerates Figure 5.
func BenchmarkFigure5_SobelSpeedups(b *testing.B) { benchFigure(b, 5) }

// BenchmarkFigure6_EdgeSpeedups regenerates Figure 6.
func BenchmarkFigure6_EdgeSpeedups(b *testing.B) { benchFigure(b, 6) }

// BenchmarkFigure1_ScalarVsSIMDAdd reproduces Figure 1's point: adding two
// 4-element vectors takes 16 scalar instructions but 4 SIMD instructions.
func BenchmarkFigure1_ScalarVsSIMDAdd(b *testing.B) {
	a := []float32{1, 2, 3, 4}
	c := []float32{10, 20, 30, 40}
	out := make([]float32, 4)
	b.Run("scalar16instrs", func(b *testing.B) {
		tr := NewTrace()
		for i := 0; i < b.N; i++ {
			for j := 0; j < 4; j++ {
				out[j] = a[j] + c[j]
			}
		}
		_ = tr
	})
	b.Run("simd4instrs", func(b *testing.B) {
		u := NewNEON(nil)
		for i := 0; i < b.N; i++ {
			va := u.Vld1qF32(a)
			vc := u.Vld1qF32(c)
			u.Vst1qF32(out, u.VaddqF32(va, vc))
		}
	})
}

// --- Host microbenchmarks of the emulation layers ---

func hostKernelSrc() (*Mat, *Mat) {
	res := Resolution{Width: 640, Height: 480}
	return SyntheticF32(res, 1), NewMat(640, 480, S16)
}

// BenchmarkHostConvertScalar measures the scalar reference on the host.
func BenchmarkHostConvertScalar(b *testing.B) {
	src, dst := hostKernelSrc()
	o := NewOps(ISAScalar, nil)
	b.SetBytes(int64(src.Bytes()))
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if err := o.ConvertF32ToS16(src, dst); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkHostConvertNEONEmu measures the emulated NEON kernel on the
// host (this is emulation cost, not modeled device time).
func BenchmarkHostConvertNEONEmu(b *testing.B) {
	src, dst := hostKernelSrc()
	o := NewOps(ISANEON, nil)
	b.SetBytes(int64(src.Bytes()))
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if err := o.ConvertF32ToS16(src, dst); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkHostConvertSSE2Emu measures the emulated SSE2 kernel.
func BenchmarkHostConvertSSE2Emu(b *testing.B) {
	src, dst := hostKernelSrc()
	o := NewOps(ISASSE2, nil)
	b.SetBytes(int64(src.Bytes()))
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if err := o.ConvertF32ToS16(src, dst); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkHostConvertAuditedOff measures the emulated NEON kernel with a
// redundant-execution auditor attached but sampling nothing (rate 0) — the
// configuration production code pays when auditing is compiled in and
// switched off. The CI alloc gate (benchjson -fail-allocs
// '^BenchmarkHostConvert') holds this at 0 allocs/op: the skip path of the
// audit chokepoint must not allocate.
func BenchmarkHostConvertAuditedOff(b *testing.B) {
	src, dst := hostKernelSrc()
	o := NewOps(ISANEON, nil)
	o.SetAuditor(NewAuditor(AuditConfig{Rate: 0, Seed: 1}))
	b.SetBytes(int64(src.Bytes()))
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if err := o.ConvertF32ToS16(src, dst); err != nil {
			b.Fatal(err)
		}
	}
}

// benchMemoConvert builds the 5 Mpx conversion workload the memoization
// benchmarks share: the acceptance floor is a verified cache hit at least
// 5x faster than recomputing this kernel at 2592x1920.
func benchMemoConvert() (src, dst *Mat, o *Ops) {
	src = SyntheticF32(Res5MP, 1)
	dst = NewMat(Res5MP.Width, Res5MP.Height, S16)
	o = NewOps(ISANEON, nil)
	return src, dst, o
}

// BenchmarkHostConvertMemoCompute is the memoization baseline: direct
// kernel execution of the 5 Mpx conversion, the cost a cache miss pays.
func BenchmarkHostConvertMemoCompute(b *testing.B) {
	src, dst, o := benchMemoConvert()
	b.SetBytes(int64(src.Bytes()))
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if err := o.ConvertF32ToS16(src, dst); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkHostConvertMemoHit measures a verified cache hit on the same
// workload: checksum the stored plane, copy it into dst. The CI alloc
// gate (benchjson -fail-allocs '^BenchmarkHostConvert') holds this at
// 0 allocs/op — the hit path must not allocate.
func BenchmarkHostConvertMemoHit(b *testing.B) {
	src, dst, o := benchMemoConvert()
	cache := NewMemoCache(MemoConfig{MaxBytes: 256 << 20, Shards: 1})
	key := MemoKeyFor("ConvertF32ToS16", "neon", "f32s16", src)
	ctx := context.Background()
	compute := func(context.Context) error { return o.ConvertF32ToS16(src, dst) }
	if _, err := cache.Do(ctx, key, dst, compute); err != nil {
		b.Fatal(err)
	}
	b.SetBytes(int64(dst.Bytes()))
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		outcome, err := cache.Do(ctx, key, dst, compute)
		if err != nil {
			b.Fatal(err)
		}
		if outcome != MemoHit {
			b.Fatalf("outcome = %v; want hit", outcome)
		}
	}
}

// BenchmarkHostGaussianNEONEmu measures the heaviest kernel end to end.
func BenchmarkHostGaussianNEONEmu(b *testing.B) {
	res := Resolution{Width: 640, Height: 480}
	src := Synthetic(res, 1)
	dst := NewMat(640, 480, U8)
	o := NewOps(ISANEON, nil)
	b.SetBytes(int64(src.Bytes()))
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if err := o.GaussianBlur(src, dst); err != nil {
			b.Fatal(err)
		}
	}
}

// benchHostPipeline measures a multi-stage kernel end to end, staged or
// fused, at 0.3 Mpx and at the paper's 5 Mpx class. One warmup call per
// size outside the timer fills the strip-window pools and the cached strip
// geometry, so the timed loop exposes the steady-state allocation behavior
// the CI gate holds at zero.
func benchHostPipeline(b *testing.B, fuse bool, run func(o *Ops, src, dst *Mat) error) {
	for _, res := range []Resolution{
		{Width: 640, Height: 480},
		{Width: 2592, Height: 1920},
	} {
		b.Run(fmt.Sprintf("%dx%d", res.Width, res.Height), func(b *testing.B) {
			src := Synthetic(res, 1)
			dst := NewMat(res.Width, res.Height, U8)
			o := NewOps(ISANEON, nil)
			if fuse {
				o.SetFuse(FuseConfig{Enabled: true})
			}
			if err := run(o, src, dst); err != nil {
				b.Fatal(err)
			}
			b.SetBytes(int64(src.Bytes()))
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				if err := run(o, src, dst); err != nil {
					b.Fatal(err)
				}
			}
		})
	}
}

func hostCanny(o *Ops, src, dst *Mat) error { return o.Canny(src, dst, 60, 200) }
func hostEdges(o *Ops, src, dst *Mat) error { return o.DetectEdges(src, dst, 100) }

// BenchmarkHostCannyStaged / BenchmarkHostCannyFused compare the staged
// and cache-blocked fused execution of the 6-stage Canny pipeline on the
// emulated NEON path. Outputs are byte-identical (TestFusedMatchesStaged);
// the fused sweep trades full intermediate planes for pooled strip
// windows, so both must hold 0 allocs/op under the CI gate.
func BenchmarkHostCannyStaged(b *testing.B) { benchHostPipeline(b, false, hostCanny) }

func BenchmarkHostCannyFused(b *testing.B) { benchHostPipeline(b, true, hostCanny) }

// BenchmarkHostDetectEdgesStaged / Fused do the same for the 5-stage
// Sobel-magnitude-threshold pipeline.
func BenchmarkHostDetectEdgesStaged(b *testing.B) { benchHostPipeline(b, false, hostEdges) }

func BenchmarkHostDetectEdgesFused(b *testing.B) { benchHostPipeline(b, true, hostEdges) }

// BenchmarkHostTraceOverhead quantifies instruction-accounting cost by
// running the same kernel with and without a trace attached.
func BenchmarkHostTraceOverhead(b *testing.B) {
	res := Resolution{Width: 640, Height: 480}
	src := Synthetic(res, 1)
	dst := NewMat(640, 480, U8)
	b.Run("untraced", func(b *testing.B) {
		o := NewOps(ISANEON, nil)
		for i := 0; i < b.N; i++ {
			if err := o.Threshold(src, dst, 128, 255, ThreshTrunc); err != nil {
				b.Fatal(err)
			}
		}
	})
	b.Run("traced", func(b *testing.B) {
		tr := NewTrace()
		o := NewOps(ISANEON, tr)
		for i := 0; i < b.N; i++ {
			if err := o.Threshold(src, dst, 128, 255, ThreshTrunc); err != nil {
				b.Fatal(err)
			}
		}
	})
}

// --- Ablations (DESIGN.md design-choice studies) ---

// BenchmarkAblationAVXvsSSE2 compares the 8-wide AVX convert path against
// the paper's 4-wide SSE2 path on instruction count, reproducing the
// paper's related-work observation that AVX delivers 1.58-1.88x over SSE
// on compute-bound kernels.
func BenchmarkAblationAVXvsSSE2(b *testing.B) {
	src := make([]float32, 1024)
	dst := make([]int16, 1024)
	for i := range src {
		src[i] = float32(i) - 512.5
	}
	b.Run("sse2", func(b *testing.B) {
		for i := 0; i < b.N; i++ {
			u := sse2.New(nil)
			for x := 0; x+8 <= len(src); x += 8 {
				lo := u.CvtpsEpi32(u.LoaduPs(src[x:]))
				hi := u.CvtpsEpi32(u.LoaduPs(src[x+4:]))
				u.StoreuSi128S16(dst[x:], u.PacksEpi32(lo, hi))
			}
		}
	})
	b.Run("avx", func(b *testing.B) {
		for i := 0; i < b.N; i++ {
			u := sse2.New(nil)
			for x := 0; x+16 <= len(src); x += 16 {
				lo := u.Cvt256PsEpi32(u.Loadu256Ps(src[x:]))
				hi := u.Cvt256PsEpi32(u.Loadu256Ps(src[x+8:]))
				u.Storeu256Si256S16(dst[x:], u.Packs256Epi32(lo, hi))
			}
		}
	})
}

// BenchmarkAblationSerializationModel sweeps the timing model's
// compute/memory serialization factor to show it is what separates the
// in-order Atom's convert speedup from the out-of-order Core 2's.
func BenchmarkAblationSerializationModel(b *testing.B) {
	for i := 0; i < b.N; i++ {
		atom := platform.AtomD510()
		for _, s := range []float64{0.0, 0.4, 0.8} {
			p := atom
			p.M.Serialization = s
			if _, err := timing.Speedup(p, "ConvertFloatShort", image.Res8MP); err != nil {
				b.Fatal(err)
			}
		}
	}
}

// BenchmarkAblationVectorizerBlockers measures the compiler-model analysis
// itself and exercises every blocker path.
func BenchmarkAblationVectorizerBlockers(b *testing.B) {
	for i := 0; i < b.N; i++ {
		for _, bench := range timing.BenchNames {
			for _, target := range []vectorizer.Target{vectorizer.TargetNEON, vectorizer.TargetSSE2} {
				if _, err := timing.Decisions(bench, target); err != nil {
					b.Fatal(err)
				}
			}
		}
	}
}

// BenchmarkCacheTraffic measures the cache-replay traffic estimator.
func BenchmarkCacheTraffic(b *testing.B) {
	p := platform.Exynos4412()
	for i := 0; i < b.N; i++ {
		// Vary width so memoization does not short-circuit the measurement.
		w := 640 + (i%4)*16
		if _, err := timing.TrafficPerPixel("GauBlu", p, w); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkHostRGBToGrayNEONEmu measures the structured-load color
// conversion (the related-work Tegra study's showcase kernel).
func BenchmarkHostRGBToGrayNEONEmu(b *testing.B) {
	res := Resolution{Width: 640, Height: 480}
	src := SyntheticRGB(res, 1)
	dst := NewMat(res.Width, res.Height, U8)
	b.Run("scalar", func(b *testing.B) {
		o := NewOps(ISAScalar, nil)
		b.SetBytes(int64(len(src.Pix)))
		for i := 0; i < b.N; i++ {
			if err := o.RGBToGray(src, dst); err != nil {
				b.Fatal(err)
			}
		}
	})
	b.Run("neon", func(b *testing.B) {
		o := NewOps(ISANEON, nil)
		b.SetBytes(int64(len(src.Pix)))
		for i := 0; i < b.N; i++ {
			if err := o.RGBToGray(src, dst); err != nil {
				b.Fatal(err)
			}
		}
	})
}

// BenchmarkHostParallel measures row-banded multi-core execution of the
// heaviest kernels at several worker counts on a 1080p frame; workers=1 is
// the serial baseline, so the sub-benchmark ratios are the intra-kernel
// scaling curve (compare with benchstat).
func BenchmarkHostParallel(b *testing.B) {
	res := Resolution{Width: 1920, Height: 1080}
	gsrc := Synthetic(res, 1)
	gdst := NewMat(res.Width, res.Height, U8)
	csrc := SyntheticF32(res, 1)
	cdst := NewMat(res.Width, res.Height, S16)

	type bench struct {
		name string
		run  func(o *Ops) error
	}
	benches := []bench{
		{"Gaussian", func(o *Ops) error { return o.GaussianBlur(gsrc, gdst) }},
		{"Convert", func(o *Ops) error { return o.ConvertF32ToS16(csrc, cdst) }},
		{"Median", func(o *Ops) error { return o.MedianBlur3x3(gsrc, gdst) }},
	}
	for _, k := range benches {
		for _, workers := range []int{1, 2, 4} {
			b.Run(fmt.Sprintf("%s/workers=%d", k.name, workers), func(b *testing.B) {
				o := NewOps(ISANEON, nil)
				o.SetParallel(ParallelConfig{Workers: workers})
				b.SetBytes(int64(res.Width * res.Height))
				b.ResetTimer()
				for i := 0; i < b.N; i++ {
					if err := k.run(o); err != nil {
						b.Fatal(err)
					}
				}
			})
		}
	}
}

// BenchmarkExtensionEnergyTable regenerates the performance-per-watt
// extension table (the paper's stated future work).
func BenchmarkExtensionEnergyTable(b *testing.B) {
	for i := 0; i < b.N; i++ {
		rows, err := timing.EnergyTable("EdgDet", platform.Paper(), image.Res8MP)
		if err != nil {
			b.Fatal(err)
		}
		if i == 0 {
			var buf bytes.Buffer
			timing.RenderEnergyTable(&buf, "EdgDet", image.Res8MP, rows)
			b.Log("\n" + buf.String())
		}
	}
}

// BenchmarkExtensionRelatedWorkKernels measures instruction-count ratios
// (scalar vs NEON) for the three related-work kernels the paper cites from
// the Tegra OpenCV study: median blur (23x), color conversion (9.5x) and
// image resizing (7.6x). Instruction ratio is the first-order driver of
// those observed speedups on the in-order-issue NEON pipeline.
func BenchmarkExtensionRelatedWorkKernels(b *testing.B) {
	res := Resolution{Width: 320, Height: 240}
	src := Synthetic(res, 1)
	rgb := SyntheticRGB(res, 1)
	dst := NewMat(res.Width, res.Height, U8)
	half := NewMat(res.Width/2, res.Height/2, U8)

	type kernel struct {
		name string
		run  func(o *Ops) error
	}
	kernels := []kernel{
		{"median23x", func(o *Ops) error { return o.MedianBlur3x3(src, dst) }},
		{"gray9.5x", func(o *Ops) error { return o.RGBToGray(rgb, dst) }},
		{"resize7.6x", func(o *Ops) error { return o.ResizeHalf(src, half) }},
	}
	for i := 0; i < b.N; i++ {
		for _, k := range kernels {
			scalarTr, neonTr := NewTrace(), NewTrace()
			os := NewOps(ISAScalar, scalarTr)
			if err := k.run(os); err != nil {
				b.Fatal(err)
			}
			on := NewOps(ISANEON, neonTr)
			if err := k.run(on); err != nil {
				b.Fatal(err)
			}
			ratio := float64(scalarTr.Total()) / float64(neonTr.Total())
			if ratio <= 1 {
				b.Fatalf("%s: NEON must retire fewer instructions (ratio %.2f)", k.name, ratio)
			}
			if i == 0 {
				b.Logf("%s: scalar/NEON instruction ratio %.1fx", k.name, ratio)
			}
		}
	}
}
