// Package simdstudy is a full reproduction, in pure Go, of "Use of SIMD
// Vector Operations to Accelerate Application Code Performance on
// Low-Powered ARM and Intel Platforms" (IPDPS Workshops / IPPS 2013).
//
// The paper compares hand-written NEON and SSE2 intrinsic kernels against
// gcc auto-vectorization across ten ARM and Intel platforms using five
// OpenCV image processing benchmarks. Go has no SIMD intrinsics, so this
// library substitutes bit-exact software emulation of both intrinsic sets
// (with dynamic instruction accounting), a gcc-4.6-style auto-vectorization
// model over a loop IR, and a calibrated timing model of the ten platforms
// (pipeline + cache hierarchy + memory bandwidth). See DESIGN.md for the
// full system inventory and EXPERIMENTS.md for paper-vs-measured results.
//
// This package is the public facade: it re-exports the image substrate, the
// OpenCV-like kernel library, the intrinsic emulation layers, the platform
// catalogue, the timing model and the experiment harness used by the
// examples and the benchmark suite.
package simdstudy

import (
	"context"
	"io"

	"simdstudy/internal/asmgen"
	"simdstudy/internal/checkpoint"
	"simdstudy/internal/cv"
	"simdstudy/internal/faults"
	"simdstudy/internal/harness"
	"simdstudy/internal/image"
	"simdstudy/internal/integrity"
	"simdstudy/internal/memo"
	"simdstudy/internal/neon"
	"simdstudy/internal/obs"
	"simdstudy/internal/obs/tsdb"
	"simdstudy/internal/platform"
	"simdstudy/internal/resilience"
	"simdstudy/internal/serve"
	"simdstudy/internal/sse2"
	"simdstudy/internal/super"
	"simdstudy/internal/timing"
	"simdstudy/internal/trace"
	"simdstudy/internal/vec"
	"simdstudy/internal/vectorizer"
)

// --- Image substrate ---

// Mat is a single-channel image (see internal/image).
type Mat = image.Mat

// Resolution is an image size; the paper uses four (0.3 to 8 Mpx).
type Resolution = image.Resolution

// Image element types.
const (
	U8  = image.U8
	S16 = image.S16
	F32 = image.F32
)

// The paper's four camera resolutions.
var (
	Res03MP = image.Res03MP
	Res1MP  = image.Res1MP
	Res5MP  = image.Res5MP
	Res8MP  = image.Res8MP
)

// Resolutions lists the paper's image sizes smallest first.
func Resolutions() []Resolution { return image.Resolutions }

// NewMat allocates a zeroed image, panicking on invalid arguments.
func NewMat(width, height int, kind image.Type) *Mat { return image.NewMat(width, height, kind) }

// TryNewMat allocates a zeroed image, returning an error for invalid
// dimensions or element types; use it for externally-sourced sizes.
func TryNewMat(width, height int, kind image.Type) (*Mat, error) {
	return image.TryNewMat(width, height, kind)
}

// ParseResolution parses a paper size name or a "WxH" string.
func ParseResolution(s string) (Resolution, error) { return image.ParseResolution(s) }

// Synthetic generates the deterministic synthetic photograph used in place
// of the paper's camera images.
func Synthetic(res Resolution, seed uint64) *Mat { return image.Synthetic(res, seed) }

// SyntheticF32 generates a float image for the conversion benchmark.
func SyntheticF32(res Resolution, seed uint64) *Mat { return image.SyntheticF32(res, seed) }

// Burst generates the paper's 5-image workload for one resolution.
func Burst(res Resolution, n int) []*Mat { return image.Burst(res, n) }

// WritePGM / ReadPGM encode and decode the uncompressed image format used
// by the tooling.
var (
	WritePGM = image.WritePGM
	ReadPGM  = image.ReadPGM
)

// RGBImage is a 3-channel interleaved color image, the input to the
// RGB-to-gray kernel (which exercises NEON's structured vld3 loads).
type RGBImage = image.RGB

// NewRGB allocates a zeroed color image, panicking on invalid dimensions.
func NewRGB(width, height int) *RGBImage { return image.NewRGB(width, height) }

// TryNewRGB allocates a zeroed color image, returning an error for invalid
// dimensions.
func TryNewRGB(width, height int) (*RGBImage, error) { return image.TryNewRGB(width, height) }

// SyntheticRGB generates a deterministic synthetic color image.
func SyntheticRGB(res Resolution, seed uint64) *RGBImage { return image.SyntheticRGB(res, seed) }

// WritePPM / ReadPPM encode and decode interleaved color images.
var (
	WritePPM = image.WritePPM
	ReadPPM  = image.ReadPPM
)

// --- Kernel library (the OpenCV core/imgproc analogue) ---

// Ops is the kernel library configured for one ISA; see internal/cv.
type Ops = cv.Ops

// ISA selects the intrinsic family of the hand-optimized paths.
type ISA = cv.ISA

// Supported ISAs.
const (
	ISAScalar = cv.ISAScalar
	ISANEON   = cv.ISANEON
	ISASSE2   = cv.ISASSE2
)

// ThreshType selects the thresholding rule (OpenCV THRESH_*).
type ThreshType = cv.ThreshType

// Threshold types; the paper's benchmark 2 uses ThreshTrunc.
const (
	ThreshBinary    = cv.ThreshBinary
	ThreshBinaryInv = cv.ThreshBinaryInv
	ThreshTrunc     = cv.ThreshTrunc
	ThreshToZero    = cv.ThreshToZero
	ThreshToZeroInv = cv.ThreshToZeroInv
)

// ParallelConfig sizes intra-kernel row-banded parallelism; attach it with
// Ops.SetParallel, ServeConfig.Parallel or CampaignConfig.Parallel. The
// zero value runs serially; Workers > 1 splits each kernel pass into that
// many row (or element-block) bands executed on a shared worker pool, with
// bit-identical outputs, merged instruction counts and fault-injection
// schedules for every worker count.
type ParallelConfig = cv.ParallelConfig

// FuseConfig enables cache-blocked stage fusion for multi-stage kernels
// (Canny, DetectEdges); attach it with Ops.SetFuse, ServeConfig.Fuse or
// CampaignConfig.Fuse. Fused sweeps stream every stage through strip-sized
// rolling windows instead of materializing full intermediate planes, with
// byte-identical outputs and count-identical instruction traces. StripRows
// forces a strip height; zero sizes strips from Caches (or a 256 KiB
// budget when Caches is empty).
type FuseConfig = cv.FuseConfig

// NewOps returns the kernel library for an ISA, recording dynamic
// instructions into t (which may be nil).
func NewOps(isa ISA, t *trace.Counter) *Ops { return cv.NewOps(isa, t) }

// NewTrace returns an empty dynamic instruction counter.
func NewTrace() *trace.Counter { return &trace.Counter{} }

// Trace is a dynamic instruction counter.
type Trace = trace.Counter

// --- Intrinsic emulation layers (for writing custom kernels) ---

// V128 is a 128-bit SIMD register value (XMM / NEON Q).
type V128 = vec.V128

// V64 is a 64-bit SIMD register value (MMX / NEON D).
type V64 = vec.V64

// NEONUnit is the emulated NEON execution unit.
type NEONUnit = neon.Unit

// SSE2Unit is the emulated SSE2 execution unit.
type SSE2Unit = sse2.Unit

// NewNEON returns a NEON unit recording into t (may be nil).
func NewNEON(t *trace.Counter) *NEONUnit { return neon.New(t) }

// NewSSE2 returns an SSE2 unit recording into t (may be nil).
func NewSSE2(t *trace.Counter) *SSE2Unit { return sse2.New(t) }

// --- Platforms and timing ---

// Platform is one Table I platform plus its model calibration.
type Platform = platform.Platform

// Platforms returns the paper's ten Table I platforms.
func Platforms() []Platform { return platform.Paper() }

// AllPlatforms additionally includes the extrapolated Cortex-A15.
func AllPlatforms() []Platform { return platform.All() }

// PlatformByName finds a platform by (sub)string match.
func PlatformByName(name string) (Platform, error) { return platform.ByName(name) }

// Impl selects AUTO (compiler) or HAND (intrinsics) builds.
type Impl = timing.Impl

// Build implementations compared by the paper.
const (
	Auto = timing.Auto
	Hand = timing.Hand
)

// Estimate is a modeled execution of one benchmark run.
type Estimate = timing.Estimate

// BenchNames lists the five paper benchmarks.
func BenchNames() []string { return timing.BenchNames }

// EstimateRun models one benchmark execution on a platform.
func EstimateRun(p Platform, bench string, res Resolution, impl Impl) (Estimate, error) {
	return timing.EstimateRun(p, bench, res, impl)
}

// Speedup returns the HAND-over-AUTO factor (the paper's figures).
func Speedup(p Platform, bench string, res Resolution) (float64, error) {
	return timing.Speedup(p, bench, res)
}

// EnergyEstimate is a modeled energy cost (the paper's future-work
// extension: performance per watt).
type EnergyEstimate = timing.EnergyEstimate

// EstimateEnergy models the energy of one benchmark run.
func EstimateEnergy(p Platform, bench string, res Resolution, impl Impl) (EnergyEstimate, error) {
	return timing.EstimateEnergy(p, bench, res, impl)
}

// --- Vectorizer reporting ---

// VectorizeTarget selects the code generation ISA for the compiler model.
type VectorizeTarget = vectorizer.Target

// Compiler model targets.
const (
	TargetNEON = vectorizer.TargetNEON
	TargetSSE2 = vectorizer.TargetSSE2
)

// VectorizeDecision is one loop's auto-vectorization outcome.
type VectorizeDecision = vectorizer.Decision

// VectorizeDecisions reports the compiler model's per-pass decisions for a
// benchmark.
func VectorizeDecisions(bench string, target VectorizeTarget) ([]VectorizeDecision, error) {
	return timing.Decisions(bench, target)
}

// --- Fault injection and graceful degradation ---

// FaultInjector corrupts values flowing through the emulated SIMD units;
// implementations decide when and how. The built-in implementation is
// FaultPlan.
type FaultInjector = faults.Injector

// FaultPlan is a deterministic, seedable fault plan: it flips lane bits,
// poisons floats with NaN, perturbs saturation boundaries, or skews
// load/store slices at a configured per-opportunity rate.
type FaultPlan = faults.Plan

// FaultConfig configures a FaultPlan (rate, seed, site and kind filters).
type FaultConfig = faults.Config

// FaultSite identifies where in an intrinsic a fault strikes.
type FaultSite = faults.Site

// FaultKind identifies the corruption applied at a fault site.
type FaultKind = faults.Kind

// Fault sites and kinds.
const (
	FaultSiteLoad    = faults.SiteLoad
	FaultSiteStore   = faults.SiteStore
	FaultSiteALU     = faults.SiteALU
	FaultSiteConvert = faults.SiteConvert
	FaultKindBitFlip = faults.KindBitFlip
	FaultKindNaN     = faults.KindNaN
	FaultKindSat     = faults.KindSatBoundary
	FaultKindIdxSkew = faults.KindIndexSkew
)

// NewFaultPlan builds a deterministic fault plan from a config.
func NewFaultPlan(cfg FaultConfig) *FaultPlan { return faults.NewPlan(cfg) }

// KernelFault records one guarded-kernel fault event (detection, retry
// recovery, scalar fallback, or kill-switch).
type KernelFault = cv.KernelFault

// FaultAction classifies a KernelFault.
type FaultAction = cv.FaultAction

// Guarded-kernel fault actions.
const (
	FaultDetected       = cv.ActionDetected
	FaultRetryRecovered = cv.ActionRetryRecovered
	FaultFallback       = cv.ActionFallback
	FaultKillSwitch     = cv.ActionKillSwitch
)

// GuardPolicy tunes the guarded-execution mode of Ops (spot-check rows,
// retry budget, kill-switch threshold).
type GuardPolicy = cv.GuardPolicy

// DefaultGuardPolicy returns the policy used when none is set.
func DefaultGuardPolicy() GuardPolicy { return cv.DefaultGuardPolicy() }

// --- Experiments ---

// Grid holds AUTO/HAND results for one benchmark over sizes x platforms.
type Grid = harness.Grid

// GridOptions adds per-cell retry/backoff behavior to grid runs.
type GridOptions = harness.GridOptions

// RunGrid evaluates a benchmark across platforms and sizes.
func RunGrid(bench string, platforms []Platform, sizes []Resolution) (*Grid, error) {
	return harness.RunGrid(bench, platforms, sizes)
}

// RunGridCtx is RunGrid with deadline/cancellation support and per-cell
// retry with backoff.
func RunGridCtx(ctx context.Context, bench string, platforms []Platform, sizes []Resolution, opt GridOptions) (*Grid, error) {
	return harness.RunGridCtx(ctx, bench, platforms, sizes, opt)
}

// VerifyBenchmark executes the real emulated kernels over the 5-image
// burst, cross-checking hand-SIMD output against scalar output.
func VerifyBenchmark(bench string, res Resolution) (int, error) {
	return harness.Verify(bench, res)
}

// VerifyBenchmarkCtx is VerifyBenchmark with deadline/cancellation support.
func VerifyBenchmarkCtx(ctx context.Context, bench string, res Resolution) (int, error) {
	return harness.VerifyCtx(ctx, bench, res)
}

// CampaignConfig configures a fault-injection campaign.
type CampaignConfig = harness.CampaignConfig

// FaultReport summarizes a fault campaign: injected vs detected vs masked
// per ISA.
type FaultReport = harness.FaultReport

// ISAFaultReport is the per-ISA row of a FaultReport.
type ISAFaultReport = harness.ISAFaultReport

// RunFaultCampaign runs a benchmark's guarded kernels under deterministic
// fault injection and reports how the degradation ladder responded.
func RunFaultCampaign(ctx context.Context, bench string, res Resolution, cfg CampaignConfig) (*FaultReport, error) {
	return harness.RunFaultCampaign(ctx, bench, res, cfg)
}

// RenderTable1 prints the Table I platform catalogue.
func RenderTable1(w io.Writer, platforms []Platform) { harness.RenderTable1(w, platforms) }

// --- Observability ---

// MetricsRegistry collects counters, gauges, histograms, events and spans
// from an instrumented run, and exports them as Prometheus text, a JSONL
// event stream, or Chrome trace_event JSON. Safe for concurrent use; all
// methods are nil-safe, so an unset registry costs nothing.
type MetricsRegistry = obs.Registry

// Span is a hierarchical interval of observed work (grid cell, kernel,
// guard action) carrying wall-clock time, modeled cycles and a dynamic
// instruction delta.
type Span = obs.Span

// SpanRecord is one completed span as stored in a MetricsRegistry.
type SpanRecord = obs.SpanRecord

// MetricsSnapshot is a point-in-time map of series name to value.
type MetricsSnapshot = obs.Snapshot

// MetricLabel is one name=value dimension of a metric series.
type MetricLabel = obs.Label

// NewMetricsRegistry returns an empty registry. Attach it with
// Ops.SetObserver, GridOptions.Obs or CampaignConfig.Obs.
func NewMetricsRegistry() *MetricsRegistry { return obs.NewRegistry() }

// Label constructs a metric label.
func Label(key, value string) MetricLabel { return obs.L(key, value) }

// MetricExemplar ties one histogram observation to the trace that produced
// it, exported in the OpenMetrics rendering
// (MetricsRegistry.WriteOpenMetrics).
type MetricExemplar = obs.Exemplar

// WithTrace binds a request trace ID to a context; the Ctx kernel entry
// points pick it up and stamp their spans and latency-histogram exemplars
// with it. An empty ID returns ctx unchanged.
func WithTrace(ctx context.Context, id string) context.Context {
	return obs.WithTrace(ctx, id)
}

// TraceID returns the trace ID bound with WithTrace, or "". Nil-safe.
func TraceID(ctx context.Context) string { return obs.TraceID(ctx) }

// TimeSeriesStore is an in-process ring of registry samples serving
// windowed rollups: per-series rates and histogram-derived latency
// quantiles. See NewTimeSeriesStore.
type TimeSeriesStore = tsdb.Store

// TimeSeriesConfig sizes a TimeSeriesStore (sampling cadence, ring
// capacity, optional Go-runtime health collection).
type TimeSeriesConfig = tsdb.Config

// TimeSeriesRollup is the windowed view between two samples: rates,
// deltas, quantiles and the newest gauge values.
type TimeSeriesRollup = tsdb.Rollup

// NewTimeSeriesStore builds a time-series store over a registry. Call
// Start for background sampling or Sample to drive it explicitly.
func NewTimeSeriesStore(reg *MetricsRegistry, cfg TimeSeriesConfig) *TimeSeriesStore {
	return tsdb.New(reg, cfg)
}

// SectionVComparison renders the paper's Section V assembly analysis for
// an ISA.
func SectionVComparison(isa ISA) (string, error) { return asmgen.Comparison(isa) }

// --- Resilience ---

// BreakerState is a circuit breaker's position: BreakerClosed,
// BreakerOpen, BreakerHalfOpen or BreakerStuckOpen.
type BreakerState = resilience.State

// Breaker states.
const (
	BreakerClosed    = resilience.StateClosed
	BreakerOpen      = resilience.StateOpen
	BreakerHalfOpen  = resilience.StateHalfOpen
	BreakerStuckOpen = resilience.StateStuckOpen
)

// BreakerConfig tunes the per-(kernel, ISA) circuit breakers: failure-rate
// window, cooldown, half-open probe budget, and the give-up threshold that
// maps onto the kill-switch.
type BreakerConfig = resilience.BreakerConfig

// BreakerSet is a family of per-(kernel, ISA) circuit breakers. Attach it
// with Ops.SetBreakers so guard verdicts drive it and open breakers demote
// calls to the scalar path.
type BreakerSet = resilience.BreakerSet

// Backoff is an exponential backoff schedule with deterministic jitter,
// used by GuardPolicy.Backoff to space SIMD retries.
type Backoff = resilience.Backoff

// DeadlineError is the typed cancellation error returned by the Ctx entry
// points, carrying partial-progress accounting (rows, trips, cells or
// images completed).
type DeadlineError = resilience.DeadlineError

// NewBreakerSet builds an empty breaker family reporting into reg (which
// may be nil).
func NewBreakerSet(cfg BreakerConfig, reg *MetricsRegistry) *BreakerSet {
	return resilience.NewBreakerSet(cfg, reg)
}

// --- Crash safety and supervision ---

// CheckpointJournal is a versioned, checksummed, atomically-replaced record
// journal (see internal/checkpoint). The harness entry points write one per
// run when GridOptions.CheckpointPath / CampaignConfig.CheckpointPath is
// set, and resume from it after a crash; the serving front-end persists
// quarantine decisions in the same format.
type CheckpointJournal = checkpoint.Journal

// CheckpointRecord is one journaled entry: a sequence number, an opaque
// JSON payload, and a CRC over both.
type CheckpointRecord = checkpoint.Record

// CorruptJournalError reports a journal that failed decoding — truncated,
// bit-flipped, reordered, or otherwise not bit-exact. Resume paths treat it
// as "no journal" (cold start with a warning), never as data.
type CorruptJournalError = checkpoint.CorruptJournalError

// CheckpointMismatchError reports a structurally valid journal written by a
// different kind of run or a different configuration fingerprint. Resume
// refuses it outright: silently recomputing under new parameters while
// keeping old cells would corrupt results.
type CheckpointMismatchError = checkpoint.MismatchError

// CreateCheckpoint creates (truncating) a journal for a run kind and
// configuration fingerprint.
func CreateCheckpoint(path, kind, fingerprint string) (*CheckpointJournal, error) {
	return checkpoint.Create(path, kind, fingerprint)
}

// OpenCheckpoint opens an existing journal, verifying its checksums and
// that it was written for the same run kind and configuration fingerprint.
func OpenCheckpoint(path, kind, fingerprint string) (*CheckpointJournal, error) {
	return checkpoint.Open(path, kind, fingerprint)
}

// OpenOrCreateCheckpoint implements the standard resume policy: open a
// matching journal (resumed=true), create a fresh one when the file is
// missing or corrupt (warn non-nil in the corrupt case), and fail with a
// *CheckpointMismatchError when the journal belongs to a different run.
func OpenOrCreateCheckpoint(path, kind, fingerprint string) (j *CheckpointJournal, resumed bool, warn, err error) {
	return checkpoint.OpenOrCreate(path, kind, fingerprint)
}

// StallError is the typed error returned when a stall watchdog declares a
// kernel band wedged: it names the kernel, ISA and band, the last heartbeat
// seen, and the deadline that expired.
type StallError = super.StallError

// PanicError wraps a recovered kernel panic with its stack, as recorded by
// the supervisor.
type PanicError = super.PanicError

// QuarantinePolicy tunes panic quarantine: how many panics a (kernel, ISA)
// pair may suffer before it is demoted to the scalar, serial path
// permanently (its breaker latches stuck-open).
type QuarantinePolicy = super.QuarantinePolicy

// QuarantineRecord is one quarantine decision, as reported by
// Supervisor.Quarantines and persisted to the quarantine journal.
type QuarantineRecord = super.QuarantineRecord

// Supervisor counts kernel panics and quarantines repeat offenders. Attach
// it with Ops.SetSupervisor; the serving front-end wires one automatically.
type Supervisor = super.Supervisor

// Watchdog monitors per-band heartbeats and cancels kernel passes whose
// bands go silent past the deadline. Attach it with Ops.SetWatchdog.
type Watchdog = super.Watchdog

// WatchdogConfig tunes a Watchdog (deadline, poll interval).
type WatchdogConfig = super.WatchdogConfig

// NewSupervisor builds a panic supervisor reporting into reg (may be nil).
func NewSupervisor(policy QuarantinePolicy, reg *MetricsRegistry) *Supervisor {
	return super.NewSupervisor(policy, reg)
}

// NewWatchdog builds a stall watchdog reporting into reg (may be nil).
// Call Stop when done to release its monitor goroutine.
func NewWatchdog(cfg WatchdogConfig, reg *MetricsRegistry) *Watchdog {
	return super.NewWatchdog(cfg, reg)
}

// --- Integrity (silent-data-corruption defense) ---

// AuditConfig configures the redundant-execution auditor: the fraction of
// SIMD kernel calls re-run on the scalar reference path and byte-compared,
// and the deterministic sampler seed.
type AuditConfig = integrity.AuditConfig

// Auditor is the sampled redundant-execution audit engine. Attach it with
// Ops.SetAuditor (or ServeConfig.AuditRate for the serving front-end); a
// sampled call is re-executed on the scalar reference and any byte
// divergence becomes a CorruptionError, a corruption_detected_total
// increment, and a scoreboard verdict.
type Auditor = integrity.Auditor

// CorruptionError describes one silent corruption caught by an audit: the
// kernel and ISA, the audited row window, and the first diverging element.
type CorruptionError = integrity.CorruptionError

// AuditRegion is the row window of an audit re-execution.
type AuditRegion = integrity.Region

// AuditResume is an Auditor's checkpointable sampler position, used by the
// campaign journal so a resumed run replays the identical audit schedule.
type AuditResume = integrity.AuditResume

// IntegrityScoreboard tracks a decayed mismatch rate per (kernel, ISA)
// pair; a pair whose rate crosses the configured threshold trips once,
// invoking the OnTrip callback (the serving front-end latches the pair's
// breaker stuck-open, demoting its traffic to scalar).
type IntegrityScoreboard = integrity.Scoreboard

// IntegrityScoreboardConfig tunes the scoreboard's decay, trip threshold
// and minimum sample count; the zero value uses the documented defaults.
type IntegrityScoreboardConfig = integrity.ScoreboardConfig

// IntegrityPairScore is one (kernel, ISA) row of a scoreboard snapshot.
type IntegrityPairScore = integrity.PairScore

// PlaneChecksum is a blockwise FNV-1a fingerprint of an image plane; the
// pipeline executor stamps and re-verifies these at stage boundaries, and
// the plane pool's scrubber uses them to catch corruption of parked planes.
type PlaneChecksum = integrity.PlaneSum

// ChecksumError reports a plane whose bytes no longer match their
// fingerprint, naming the damaged block and its element range.
type ChecksumError = integrity.ChecksumError

// NewAuditor builds an auditor from cfg.
func NewAuditor(cfg AuditConfig) *Auditor { return integrity.NewAuditor(cfg) }

// NewIntegrityScoreboard builds a corruption scoreboard reporting into reg
// (which may be nil).
func NewIntegrityScoreboard(cfg IntegrityScoreboardConfig, reg *MetricsRegistry) *IntegrityScoreboard {
	return integrity.NewScoreboard(cfg, reg)
}

// ChecksumMat fingerprints an image in blocks of blockRows rows (0 uses
// the default block size); verify later with PlaneChecksum.VerifyMat.
func ChecksumMat(m *Mat, blockRows int) PlaneChecksum { return integrity.SumMat(m, blockRows) }

// --- Result memoization ---

// MemoConfig sizes the content-addressed result cache: the total byte
// budget (MaxBytes <= 0 disables memoization), the shard count, an
// optional kernel enable-list, and the metrics registry the cache reports
// into. Attach it with ServeConfig.Memo, or build a standalone cache with
// NewMemoCache for CampaignConfig.Memo.
type MemoConfig = memo.Config

// MemoCache is a sharded, byte-budgeted LRU over kernel results, keyed by
// the content of (kernel, ISA, parameters, input plane). Lookups verify
// the stored plane's checksum before serving it — a corrupt entry is
// evicted and recomputed, never served — and concurrent identical misses
// coalesce into a single execution.
type MemoCache = memo.Cache

// MemoStats is a point-in-time cache summary: occupancy against budget
// and the lifetime hit/miss/coalesce/eviction tallies.
type MemoStats = memo.Stats

// MemoKey identifies one cacheable result by content, not by request
// identity; derive it with MemoKeyFor.
type MemoKey = memo.Key

// MemoOutcome classifies one MemoCache.Do call.
type MemoOutcome = memo.Outcome

// Memoization outcomes.
const (
	MemoBypass    = memo.Bypass
	MemoHit       = memo.Hit
	MemoMiss      = memo.Miss
	MemoCoalesced = memo.Coalesced
)

// NewMemoCache builds a result cache from cfg; it returns nil (a valid,
// always-miss cache) when cfg disables memoization.
func NewMemoCache(cfg MemoConfig) *MemoCache { return memo.New(cfg) }

// MemoKeyFor derives the content key for one kernel execution: the kernel
// and ISA names (the ISA is part of the key because hand-SIMD rounding may
// legitimately differ from scalar), the fixed-parameter signature, and a
// fingerprint of the input plane.
func MemoKeyFor(kernel, isa, params string, src *Mat) MemoKey {
	return memo.KeyFor(kernel, isa, params, src)
}

// MemoBenchResult compares verified-cache-hit latency against direct
// kernel execution for one benchmark and size.
type MemoBenchResult = harness.MemoBenchResult

// RunMemoBench measures a benchmark's hit-versus-compute latency on the
// NEON path (see cmd/simdbench -memo).
func RunMemoBench(bench string, res Resolution) (MemoBenchResult, error) {
	return harness.RunMemoBench(bench, res)
}

// --- Serving ---

// ServeConfig tunes the HTTP serving front-end: admission bounds,
// deadlines, guard policy, breaker policy, stall deadline and quarantine
// policy, and result memoization (ServeConfig.Memo).
type ServeConfig = serve.Config

// Server is the hardened HTTP front-end over the kernel pipeline; see
// cmd/simdserved for the standalone binary.
type Server = serve.Server

// NewServer builds a serving front-end from cfg.
func NewServer(cfg ServeConfig) *Server { return serve.NewServer(cfg) }
