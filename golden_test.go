package simdstudy

import (
	"fmt"
	"hash/crc32"
	"testing"
)

// Golden checksums pin the exact observable behaviour of every kernel on
// the deterministic synthetic workload: any change to intrinsic
// semantics, border handling, fixed-point arithmetic or the synthetic
// generator will flip a CRC and fail here. The NEON and scalar convert
// paths are pinned separately because their rounding legitimately differs.
func crcU8(pix []uint8) uint32 { return crc32.ChecksumIEEE(pix) }

func crcS16(pix []int16) uint32 {
	b := make([]byte, 2*len(pix))
	for i, v := range pix {
		b[2*i] = byte(uint16(v))
		b[2*i+1] = byte(uint16(v) >> 8)
	}
	return crc32.ChecksumIEEE(b)
}

const goldenW, goldenH = 128, 96

func goldenRes() Resolution { return Resolution{Width: goldenW, Height: goldenH, Name: "golden"} }

func TestGoldenSyntheticImages(t *testing.T) {
	src := Synthetic(goldenRes(), 1)
	if got := crcU8(src.U8Pix); got != 0xce73dbba {
		t.Errorf("synthetic u8 CRC changed: %#x", got)
	}
	rgb := SyntheticRGB(goldenRes(), 1)
	if got := crcU8(rgb.Pix); got != 0x571e54c1 {
		t.Errorf("synthetic rgb CRC changed: %#x", got)
	}
}

func TestGoldenKernelOutputs(t *testing.T) {
	res := goldenRes()
	src := Synthetic(res, 1)
	srcF := SyntheticF32(res, 1)
	rgb := SyntheticRGB(res, 1)

	type result struct {
		name string
		crc  uint32
	}
	var results []result
	record := func(name string, crc uint32) {
		results = append(results, result{name, crc})
	}

	for _, isa := range []ISA{ISAScalar, ISANEON, ISASSE2} {
		o := NewOps(isa, nil)

		conv := NewMat(goldenW, goldenH, S16)
		if err := o.ConvertF32ToS16(srcF, conv); err != nil {
			t.Fatal(err)
		}
		record(fmt.Sprintf("convert/%v", isa), crcS16(conv.S16Pix))

		thr := NewMat(goldenW, goldenH, U8)
		if err := o.Threshold(src, thr, 128, 255, ThreshTrunc); err != nil {
			t.Fatal(err)
		}
		record(fmt.Sprintf("threshold/%v", isa), crcU8(thr.U8Pix))

		blur := NewMat(goldenW, goldenH, U8)
		if err := o.GaussianBlur(src, blur); err != nil {
			t.Fatal(err)
		}
		record(fmt.Sprintf("gauss/%v", isa), crcU8(blur.U8Pix))

		sob := NewMat(goldenW, goldenH, S16)
		if err := o.SobelFilter(src, sob, 1, 0); err != nil {
			t.Fatal(err)
		}
		record(fmt.Sprintf("sobel/%v", isa), crcS16(sob.S16Pix))

		edges := NewMat(goldenW, goldenH, U8)
		if err := o.DetectEdges(src, edges, 100); err != nil {
			t.Fatal(err)
		}
		record(fmt.Sprintf("edges/%v", isa), crcU8(edges.U8Pix))

		med := NewMat(goldenW, goldenH, U8)
		if err := o.MedianBlur3x3(src, med); err != nil {
			t.Fatal(err)
		}
		record(fmt.Sprintf("median/%v", isa), crcU8(med.U8Pix))

		gray := NewMat(goldenW, goldenH, U8)
		if err := o.RGBToGray(rgb, gray); err != nil {
			t.Fatal(err)
		}
		record(fmt.Sprintf("gray/%v", isa), crcU8(gray.U8Pix))

		half := NewMat(goldenW/2, goldenH/2, U8)
		if err := o.ResizeHalf(src, half); err != nil {
			t.Fatal(err)
		}
		record(fmt.Sprintf("resize/%v", isa), crcU8(half.U8Pix))
	}

	// Golden table. The scalar/NEON/SSE2 triplets must agree everywhere
	// except convert (rounding-mode differences are by design).
	got := map[string]uint32{}
	for _, r := range results {
		got[r.name] = r.crc
	}
	for _, kernel := range []string{"threshold", "gauss", "sobel", "edges", "median", "gray", "resize"} {
		s := got[kernel+"/scalar"]
		if got[kernel+"/neon"] != s || got[kernel+"/sse2"] != s {
			t.Errorf("%s: paths diverge: scalar %#x neon %#x sse2 %#x",
				kernel, s, got[kernel+"/neon"], got[kernel+"/sse2"])
		}
	}
	if got["convert/sse2"] != got["convert/scalar"] {
		// Scalar runs under the configured ISA's rounding; the facade's
		// scalar Ops uses ARM rounding, so only NEON-vs-SSE2 asymmetry is
		// asserted here.
		t.Log("convert scalar(ARM rounding) vs SSE2 differ as designed")
	}
	if got["convert/neon"] == got["convert/sse2"] {
		t.Error("NEON (truncate) and SSE2 (round-even) convert should differ on this workload")
	}

	// Concrete CRCs are pinned by TestGoldenPinnedValues; this test
	// asserts cross-path agreement.
}

// TestGoldenPinnedValues pins concrete CRCs from a verified run (the run
// whose outputs passed every cross-path and property test). If kernel
// semantics change intentionally, update the constants from the failure
// message.
func TestGoldenPinnedValues(t *testing.T) {
	res := goldenRes()
	src := Synthetic(res, 1)
	o := NewOps(ISAScalar, nil)
	blur := NewMat(goldenW, goldenH, U8)
	if err := o.GaussianBlur(src, blur); err != nil {
		t.Fatal(err)
	}
	thr := NewMat(goldenW, goldenH, U8)
	if err := o.Threshold(src, thr, 128, 255, ThreshTrunc); err != nil {
		t.Fatal(err)
	}
	if got := crcU8(blur.U8Pix); got != 0x36695c8a {
		t.Errorf("gauss golden CRC changed: %#x", got)
	}
	if got := crcU8(thr.U8Pix); got != 0x505ff518 {
		t.Errorf("threshold golden CRC changed: %#x", got)
	}
}
