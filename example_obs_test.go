package simdstudy_test

import (
	"fmt"
	"strings"

	"simdstudy"
)

// ExampleMetricsRegistry runs a guarded kernel with an attached metrics
// registry and exports the Prometheus text exposition, checking that the
// Section V instruction-class accounting reached the export.
func ExampleMetricsRegistry() {
	reg := simdstudy.NewMetricsRegistry()
	ops := simdstudy.NewOps(simdstudy.ISANEON, simdstudy.NewTrace())
	ops.SetObserver(reg)
	ops.SetGuarded(true)

	res := simdstudy.Resolution{Width: 64, Height: 48, Name: "64x48"}
	src := simdstudy.SyntheticF32(res, 1)
	dst := simdstudy.NewMat(res.Width, res.Height, simdstudy.S16)
	if err := ops.ConvertF32ToS16(src, dst); err != nil {
		panic(err)
	}

	var buf strings.Builder
	if err := reg.WritePrometheus(&buf); err != nil {
		panic(err)
	}
	out := buf.String()
	fmt.Println(strings.Contains(out, `simd_instructions_total{class="simd.cvt",isa="neon"}`))
	fmt.Println(reg.Snapshot()[`kernel_runs_total{isa="neon",kernel="ConvertF32ToS16"}`] == 1)
	fmt.Println(len(reg.Spans()) > 0)
	// Output:
	// true
	// true
	// true
}
