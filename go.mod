module simdstudy

go 1.22
