package simdstudy_test

import (
	"fmt"

	"simdstudy"
)

// ExampleAuditConfig demonstrates the silent-data-corruption defense: a
// SIMD unit that silently flips bits (injected here with a deterministic
// fault plan) produces wrong bytes with no error — until a sampled
// redundant-execution audit re-runs the call on the scalar reference,
// catches the divergence, and repairs the output in place.
func ExampleAuditConfig() {
	res := simdstudy.Resolution{Width: 64, Height: 48}
	src := simdstudy.Synthetic(res, 1)

	// The scalar reference output every audited call is compared against.
	ref := simdstudy.NewOps(simdstudy.ISAScalar, nil)
	want := simdstudy.NewMat(res.Width, res.Height, simdstudy.U8)
	if err := ref.Threshold(src, want, 100, 255, simdstudy.ThreshTrunc); err != nil {
		panic(err)
	}

	// A NEON unit with silent bit flips: no guard, no error returns — the
	// only defense is the auditor, here at rate 1.0 so every call is checked.
	aud := simdstudy.NewAuditor(simdstudy.AuditConfig{Rate: 1, Seed: 1})
	o := simdstudy.NewOps(simdstudy.ISANEON, nil)
	o.SetAuditor(aud)
	o.SetFaultInjector(simdstudy.NewFaultPlan(simdstudy.FaultConfig{
		Rate: 5e-4, Seed: 11, Kinds: []simdstudy.FaultKind{simdstudy.FaultKindBitFlip},
	}))

	const calls = 20
	repaired := true
	dst := simdstudy.NewMat(res.Width, res.Height, simdstudy.U8)
	for i := 0; i < calls; i++ {
		if err := o.Threshold(src, dst, 100, 255, simdstudy.ThreshTrunc); err != nil {
			panic(err)
		}
		repaired = repaired && want.EqualTo(dst)
	}

	fmt.Println("every call audited:", aud.Sampled() == calls)
	fmt.Println("corruption caught:", aud.Mismatches() > 0)
	fmt.Println("every output repaired:", repaired)
	// Output:
	// every call audited: true
	// corruption caught: true
	// every output repaired: true
}
