package simdstudy_test

import (
	"context"
	"fmt"

	"simdstudy"
)

// ExampleMemoConfig demonstrates content-addressed result memoization:
// the first execution of a (kernel, ISA, parameters, input) combination
// computes and stores the output plane; every identical repeat is served
// a checksum-verified copy without running the kernel again. The key is
// derived from the input's content, so two different source images never
// share an entry even if the request parameters match.
func ExampleMemoConfig() {
	cache := simdstudy.NewMemoCache(simdstudy.MemoConfig{MaxBytes: 8 << 20})
	o := simdstudy.NewOps(simdstudy.ISANEON, nil)

	res := simdstudy.Resolution{Width: 96, Height: 64}
	src := simdstudy.Synthetic(res, 1)
	key := simdstudy.MemoKeyFor("GaussianBlur", "neon", "g5x5", src)

	executions := 0
	for i := 0; i < 3; i++ {
		dst := simdstudy.NewMat(res.Width, res.Height, simdstudy.U8)
		outcome, err := cache.Do(context.Background(), key, dst,
			func(context.Context) error {
				executions++
				return o.GaussianBlur(src, dst)
			})
		if err != nil {
			panic(err)
		}
		fmt.Println(outcome)
	}

	// A different input is a different content key: no false sharing.
	other := simdstudy.Synthetic(res, 2)
	fmt.Println("same key for different input:",
		key == simdstudy.MemoKeyFor("GaussianBlur", "neon", "g5x5", other))
	fmt.Println("kernel executions:", executions)
	// Output:
	// miss
	// hit
	// hit
	// same key for different input: false
	// kernel executions: 1
}
