package simdstudy_test

import (
	"context"
	"fmt"
	"os"
	"path/filepath"
	"reflect"

	"simdstudy"
)

// ExampleRunGridCtx_resume demonstrates checkpointed crash recovery: a grid
// run is killed (here: cancelled) after its first cells are journaled, then
// a second invocation with the same configuration resumes from the journal
// and produces a result identical to an uninterrupted run.
func ExampleRunGridCtx_resume() {
	dir, err := os.MkdirTemp("", "simdstudy-resume")
	if err != nil {
		panic(err)
	}
	defer os.RemoveAll(dir)
	journal := filepath.Join(dir, "grid.journal")

	plats := simdstudy.Platforms()[:3]
	sizes := simdstudy.Resolutions()[:2]

	// The reference: one uninterrupted run, no journal.
	ref, err := simdstudy.RunGrid("GauBlu", plats, sizes)
	if err != nil {
		panic(err)
	}

	// The "crash": cancel the run after two cells have been journaled.
	// A real crash (SIGKILL mid-run) leaves the same journal behind —
	// every record is durable before the next cell may complete.
	ctx, cancel := context.WithCancel(context.Background())
	_, err = simdstudy.RunGridCtx(ctx, "GauBlu", plats, sizes, simdstudy.GridOptions{
		CheckpointPath: journal,
		CheckpointHook: func(records int) {
			if records >= 2 {
				cancel()
			}
		},
	})
	fmt.Println("interrupted:", err != nil)

	// The resume: same configuration, same journal. Completed cells are
	// replayed from the journal; only the remainder is recomputed.
	resumed, err := simdstudy.RunGridCtx(context.Background(), "GauBlu", plats, sizes,
		simdstudy.GridOptions{CheckpointPath: journal})
	if err != nil {
		panic(err)
	}
	fmt.Println("identical to uninterrupted run:", reflect.DeepEqual(ref.Cells, resumed.Cells))
	// Output:
	// interrupted: true
	// identical to uninterrupted run: true
}
