package simdstudy

import (
	"testing"
	"testing/quick"

	"simdstudy/internal/vec"
)

// Cross-ISA equivalence: where NEON and SSE2 define the same lane
// operation, the two emulation layers must agree bit-for-bit. These
// properties catch semantic drift in either layer against the other.

func TestQuickCrossISAByteOps(t *testing.T) {
	n := NewNEON(nil)
	s := NewSSE2(nil)
	f := func(ab, bb [16]byte) bool {
		a, b := vec.V128(ab), vec.V128(bb)
		if n.VminqU8(a, b) != s.MinEpu8(a, b) {
			return false
		}
		if n.VmaxqU8(a, b) != s.MaxEpu8(a, b) {
			return false
		}
		if n.VqaddqU8(a, b) != s.AddsEpu8(a, b) {
			return false
		}
		if n.VqsubqU8(a, b) != s.SubsEpu8(a, b) {
			return false
		}
		if n.VaddqU8(a, b) != s.AddEpi8(a, b) {
			return false
		}
		// Rounded average: vrhadd == pavgb.
		if n.VrhaddqU8(a, b) != s.AvgEpu8(a, b) {
			return false
		}
		if n.VceqqU8(a, b) != s.CmpeqEpi8(a, b) {
			return false
		}
		return true
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

func TestQuickCrossISAWordOps(t *testing.T) {
	n := NewNEON(nil)
	s := NewSSE2(nil)
	f := func(ar, br [8]int16) bool {
		a, b := vec.FromI16x8(ar), vec.FromI16x8(br)
		if n.VaddqS16(a, b) != s.AddEpi16(a, b) {
			return false
		}
		if n.VsubqS16(a, b) != s.SubEpi16(a, b) {
			return false
		}
		if n.VqaddqS16(a, b) != s.AddsEpi16(a, b) {
			return false
		}
		if n.VqsubqS16(a, b) != s.SubsEpi16(a, b) {
			return false
		}
		if n.VmulqS16(a, b) != s.MulloEpi16(a, b) {
			return false
		}
		if n.VminqS16(a, b) != s.MinEpi16(a, b) {
			return false
		}
		if n.VmaxqS16(a, b) != s.MaxEpi16(a, b) {
			return false
		}
		if n.VcgtqS16(a, b) != s.CmpgtEpi16(a, b) {
			return false
		}
		if n.VceqqS16(a, b) != s.CmpeqEpi16(a, b) {
			return false
		}
		return true
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

func TestQuickCrossISABitwise(t *testing.T) {
	n := NewNEON(nil)
	s := NewSSE2(nil)
	f := func(ab, bb [16]byte) bool {
		a, b := vec.V128(ab), vec.V128(bb)
		if n.VandqU8(a, b) != s.AndSi128(a, b) {
			return false
		}
		if n.VorrqU8(a, b) != s.OrSi128(a, b) {
			return false
		}
		if n.VeorqU8(a, b) != s.XorSi128(a, b) {
			return false
		}
		// vbic a,b == pandn with swapped operands: a & ^b.
		if n.VbicqU8(a, b) != s.AndnotSi128(b, a) {
			return false
		}
		return true
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

func TestQuickCrossISAFloatOps(t *testing.T) {
	n := NewNEON(nil)
	s := NewSSE2(nil)
	f := func(ar, br [4]float32) bool {
		a, b := vec.FromF32x4(ar), vec.FromF32x4(br)
		if n.VaddqF32(a, b) != s.AddPs(a, b) {
			return false
		}
		if n.VsubqF32(a, b) != s.SubPs(a, b) {
			return false
		}
		if n.VmulqF32(a, b) != s.MulPs(a, b) {
			return false
		}
		if n.VcgtqF32(a, b) != s.CmpgtPs(a, b) {
			return false
		}
		if n.VceqqF32(a, b) != s.CmpeqPs(a, b) {
			return false
		}
		return true
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

// The narrowing packs: two vqmovn + vcombine must equal one packssdw —
// the exact instruction-count asymmetry the paper's convert listings show.
func TestQuickCrossISAPackEquivalence(t *testing.T) {
	n := NewNEON(nil)
	s := NewSSE2(nil)
	f := func(ar, br [4]int32) bool {
		a, b := vec.FromI32x4(ar), vec.FromI32x4(br)
		neonPacked := n.VcombineS16(n.VqmovnS32(a), n.VqmovnS32(b))
		ssePacked := s.PacksEpi32(a, b)
		return neonPacked == ssePacked
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

// Widening multiply-accumulate: NEON's fused vmlal must equal SSE2's
// unpack+pmullw+paddw spelling.
func TestQuickCrossISAWideningMAC(t *testing.T) {
	n := NewNEON(nil)
	s := NewSSE2(nil)
	f := func(accRaw [8]uint16, aRaw, bRaw [8]uint8) bool {
		acc := vec.FromU16x8(accRaw)
		da := vec.FromU8x8(aRaw)
		db := vec.FromU8x8(bRaw)
		neonOut := n.VmlalU8(acc, da, db)

		zero := s.SetzeroSi128()
		wa := s.UnpackloEpi8(vec.Combine(da, vec.V64{}), zero)
		wb := s.UnpackloEpi8(vec.Combine(db, vec.V64{}), zero)
		sseOut := s.AddEpi16(acc, s.MulloEpi16(wa, wb))
		return neonOut == sseOut
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}
