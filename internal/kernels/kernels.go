// Package kernels defines the IR form of every benchmark inner loop, as the
// gcc auto-vectorizer would see it after inlining OpenCV's templates. The
// vectorizer model analyzes these loops; the exec interpreter validates
// them against the cv package's scalar implementations.
package kernels

import (
	"simdstudy/internal/cv"
	"simdstudy/internal/ir"
)

// Convert32f16s is benchmark 1's loop:
//
//	dst[x] = saturate_cast<short>(cvRound(src[x]))
//
// The cvRound is call-like (lrint on ARM softfp, an opaque SSE2 builtin on
// x86), which is what blocks gcc's vectorizer — the paper's Section V
// finding.
func Convert32f16s() *ir.Loop {
	b := ir.NewBuilder("cvt_32f16s")
	v := b.Load(ir.F32, "src", 1, 0)
	r := b.Un(ir.OpCvtF2I, ir.I32, v)
	s := b.Un(ir.OpSatCast, ir.I16, r)
	b.Store(ir.I16, "dst", 1, 0, s)
	return b.Done()
}

// ThresholdTrunc is benchmark 2's loop (paper Algorithm 1):
//
//	dst[x] = src[x] > thresh ? thresh : src[x]
//
// OpenCV's templated functor presents this to the compiler as a compare
// plus conditional expression, not a recognizable MIN_EXPR, so the
// vectorizer must if-convert it.
func ThresholdTrunc(thresh uint8) *ir.Loop {
	b := ir.NewBuilder("thresh_trunc")
	v := b.Load(ir.U8, "src", 1, 0)
	t := b.ConstInt(ir.U8, int64(thresh))
	c := b.Bin(ir.OpCmpGT, ir.U8, v, t)
	r := b.Select(ir.U8, c, t, v)
	b.Store(ir.U8, "dst", 1, 0, r)
	return b.Done()
}

// GaussRow7 is benchmark 3's horizontal pass over one row interior:
// a 7-tap fixed-point weighted sum, widened to u16, rounded back to u8.
// The loop index runs over the interior; array "src" is pre-offset so tap k
// reads src[i+k].
func GaussRow7() *ir.Loop {
	b := ir.NewBuilder("gauss_row7")
	half := b.ConstInt(ir.U16, 128)
	var acc ir.Value
	for k := 0; k < 7; k++ {
		v := b.Load(ir.U8, "src", 1, k)
		w := b.Un(ir.OpWiden, ir.U16, v)
		wk := b.ConstInt(ir.U16, int64(cv.GaussKernel7[k]))
		p := b.Bin(ir.OpMul, ir.U16, w, wk)
		if k == 0 {
			acc = p
		} else {
			acc = b.Bin(ir.OpAdd, ir.U16, acc, p)
		}
	}
	acc = b.Bin(ir.OpAdd, ir.U16, acc, half)
	acc = b.Shift(ir.OpShr, ir.U16, acc, 8)
	n := b.Un(ir.OpNarrow, ir.U8, acc)
	b.Store(ir.U8, "dst", 1, 0, n)
	b.SetRuntimeKernelTaps(7)
	return b.Done()
}

// GaussCol7 is benchmark 3's vertical pass: same arithmetic with the taps
// coming from seven distinct row arrays r0..r6 at unit stride.
func GaussCol7() *ir.Loop {
	b := ir.NewBuilder("gauss_col7")
	half := b.ConstInt(ir.U16, 128)
	names := []string{"r0", "r1", "r2", "r3", "r4", "r5", "r6"}
	var acc ir.Value
	for k := 0; k < 7; k++ {
		v := b.Load(ir.U8, names[k], 1, 0)
		w := b.Un(ir.OpWiden, ir.U16, v)
		wk := b.ConstInt(ir.U16, int64(cv.GaussKernel7[k]))
		p := b.Bin(ir.OpMul, ir.U16, w, wk)
		if k == 0 {
			acc = p
		} else {
			acc = b.Bin(ir.OpAdd, ir.U16, acc, p)
		}
	}
	acc = b.Bin(ir.OpAdd, ir.U16, acc, half)
	acc = b.Shift(ir.OpShr, ir.U16, acc, 8)
	n := b.Un(ir.OpNarrow, ir.U8, acc)
	b.Store(ir.U8, "dst", 1, 0, n)
	b.SetRuntimeKernelTaps(7)
	return b.Done()
}

// SobelDiffH is benchmark 4's horizontal differentiator over a row
// interior: dst[i] = src[i+2] - src[i] (the source pre-offset by -1, so
// taps are x-1 and x+1), widened to i16.
func SobelDiffH() *ir.Loop {
	b := ir.NewBuilder("sobel_diff_h")
	r := b.Load(ir.U8, "src", 1, 2)
	l := b.Load(ir.U8, "src", 1, 0)
	wr := b.Un(ir.OpWiden, ir.I16, r)
	wl := b.Un(ir.OpWiden, ir.I16, l)
	d := b.Bin(ir.OpSub, ir.I16, wr, wl)
	b.Store(ir.I16, "dst", 1, 0, d)
	b.SetRuntimeKernelTaps(2)
	return b.Done()
}

// SobelSmoothH is the horizontal [1 2 1] smoother used by the dy=1 variant.
func SobelSmoothH() *ir.Loop {
	b := ir.NewBuilder("sobel_smooth_h")
	l := b.Load(ir.U8, "src", 1, 0)
	c := b.Load(ir.U8, "src", 1, 1)
	r := b.Load(ir.U8, "src", 1, 2)
	wl := b.Un(ir.OpWiden, ir.I16, l)
	wc := b.Un(ir.OpWiden, ir.I16, c)
	wr := b.Un(ir.OpWiden, ir.I16, r)
	two := b.Shift(ir.OpShl, ir.I16, wc, 1)
	s := b.Bin(ir.OpAdd, ir.I16, wl, wr)
	s = b.Bin(ir.OpAdd, ir.I16, s, two)
	b.Store(ir.I16, "dst", 1, 0, s)
	b.SetRuntimeKernelTaps(3)
	return b.Done()
}

// SobelSmoothV is the vertical [1 2 1] smoother over three S16 row arrays.
func SobelSmoothV() *ir.Loop {
	b := ir.NewBuilder("sobel_smooth_v")
	r0 := b.Load(ir.I16, "r0", 1, 0)
	r1 := b.Load(ir.I16, "r1", 1, 0)
	r2 := b.Load(ir.I16, "r2", 1, 0)
	two := b.Shift(ir.OpShl, ir.I16, r1, 1)
	s := b.Bin(ir.OpAdd, ir.I16, r0, r2)
	s = b.Bin(ir.OpAdd, ir.I16, s, two)
	b.Store(ir.I16, "dst", 1, 0, s)
	b.SetRuntimeKernelTaps(3)
	return b.Done()
}

// SobelDiffV is the vertical differentiator over two S16 row arrays.
func SobelDiffV() *ir.Loop {
	b := ir.NewBuilder("sobel_diff_v")
	r0 := b.Load(ir.I16, "r0", 1, 0)
	r2 := b.Load(ir.I16, "r2", 1, 0)
	d := b.Bin(ir.OpSub, ir.I16, r2, r0)
	b.Store(ir.I16, "dst", 1, 0, d)
	b.SetRuntimeKernelTaps(2)
	return b.Done()
}

// MagThresh is benchmark 5's combine loop: saturating |gx|+|gy| against a
// threshold, binarized. The saturating absolute and add have no gcc GIMPLE
// idiom, which keeps this loop scalar in the AUTO build.
func MagThresh(thresh int16) *ir.Loop {
	b := ir.NewBuilder("mag_thresh")
	gx := b.Load(ir.I16, "gx", 1, 0)
	gy := b.Load(ir.I16, "gy", 1, 0)
	ax := b.Un(ir.OpAbsSat, ir.I16, gx)
	ay := b.Un(ir.OpAbsSat, ir.I16, gy)
	m := b.Bin(ir.OpAddSat, ir.I16, ax, ay)
	t := b.ConstInt(ir.I16, int64(thresh))
	c := b.Bin(ir.OpCmpGT, ir.I16, m, t)
	hi := b.ConstInt(ir.U8, 255)
	lo := b.ConstInt(ir.U8, 0)
	r := b.Select(ir.U8, c, hi, lo)
	b.Store(ir.U8, "dst", 1, 0, r)
	return b.Done()
}

// Pass describes one IR loop's contribution to a benchmark on a WxH image:
// the loop runs Invocations times with Trips iterations each.
type Pass struct {
	Loop *ir.Loop
	// Trips returns (iterations per invocation, invocations) for an image
	// of w x h pixels.
	Trips func(w, h int) (trips, invocations int)
}

// Benchmark is a named set of passes, one entry per paper benchmark.
type Benchmark struct {
	Name   string
	Passes []Pass
}

func perRow(loop *ir.Loop) Pass {
	return Pass{Loop: loop, Trips: func(w, h int) (int, int) { return w, h }}
}

// Benchmarks returns the paper's five benchmarks in IR form.
// Threshold and edge parameters match the harness defaults.
func Benchmarks() []Benchmark {
	return []Benchmark{
		{Name: "ConvertFloatShort", Passes: []Pass{perRow(Convert32f16s())}},
		{Name: "BinThr", Passes: []Pass{perRow(ThresholdTrunc(128))}},
		{Name: "GauBlu", Passes: []Pass{perRow(GaussRow7()), perRow(GaussCol7())}},
		{Name: "SobFil", Passes: []Pass{perRow(SobelDiffH()), perRow(SobelSmoothV())}},
		{Name: "EdgDet", Passes: []Pass{
			perRow(SobelDiffH()), perRow(SobelSmoothV()),
			perRow(SobelSmoothH()), perRow(SobelDiffV()),
			perRow(MagThresh(100)),
		}},
	}
}
