// Tests here are the semantic bridge: each IR kernel, interpreted by
// internal/exec, must reproduce the cv package's scalar implementation
// exactly. This guarantees the auto-vectorization model reasons about
// loops that mean what the benchmarks compute.
package kernels

import (
	"testing"

	"simdstudy/internal/cv"
	"simdstudy/internal/exec"
	"simdstudy/internal/image"
	"simdstudy/internal/ir"
)

const testW, testH = 53, 21

func TestAllLoopsValidate(t *testing.T) {
	for _, b := range Benchmarks() {
		for _, p := range b.Passes {
			if err := p.Loop.Validate(); err != nil {
				t.Errorf("%s/%s: %v", b.Name, p.Loop.Name, err)
			}
			trips, inv := p.Trips(testW, testH)
			if trips != testW || inv != testH {
				t.Errorf("%s/%s: trips=%d inv=%d", b.Name, p.Loop.Name, trips, inv)
			}
		}
	}
	if len(Benchmarks()) != 5 {
		t.Fatal("the paper has five benchmarks")
	}
}

func TestConvertIRMatchesCVScalar(t *testing.T) {
	res := image.Resolution{Width: testW, Height: testH}
	src := image.SyntheticF32(res, 11)

	for _, tc := range []struct {
		isa  cv.ISA
		mode exec.RoundMode
	}{
		{cv.ISANEON, exec.RoundARM},
		{cv.ISASSE2, exec.RoundX86},
	} {
		want := image.NewMat(testW, testH, image.S16)
		o := cv.NewOps(tc.isa, nil)
		o.SetUseOptimized(false)
		if err := o.ConvertF32ToS16(src, want); err != nil {
			t.Fatal(err)
		}
		env := exec.NewEnv()
		env.F32["src"] = src.F32Pix
		got := make([]int16, testW*testH)
		env.S16["dst"] = got
		if err := exec.Run(Convert32f16s(), env, testW*testH, tc.mode); err != nil {
			t.Fatal(err)
		}
		for i := range got {
			if got[i] != want.S16Pix[i] {
				t.Fatalf("%v pixel %d: IR %d, cv %d (src %v)", tc.isa, i, got[i], want.S16Pix[i], src.F32Pix[i])
			}
		}
	}
}

func TestThresholdIRMatchesCVScalar(t *testing.T) {
	res := image.Resolution{Width: testW, Height: testH}
	src := image.Synthetic(res, 12)
	want := image.NewMat(testW, testH, image.U8)
	o := cv.NewOps(cv.ISAScalar, nil)
	if err := o.Threshold(src, want, 99, 255, cv.ThreshTrunc); err != nil {
		t.Fatal(err)
	}
	env := exec.NewEnv()
	env.U8["src"] = src.U8Pix
	got := make([]uint8, testW*testH)
	env.U8["dst"] = got
	if err := exec.Run(ThresholdTrunc(99), env, testW*testH, exec.RoundARM); err != nil {
		t.Fatal(err)
	}
	for i := range got {
		if got[i] != want.U8Pix[i] {
			t.Fatalf("pixel %d: IR %d, cv %d", i, got[i], want.U8Pix[i])
		}
	}
}

func TestGaussRowIRMatchesCVScalarInterior(t *testing.T) {
	res := image.Resolution{Width: testW, Height: 1}
	src := image.Synthetic(res, 13)
	blurred := image.NewMat(testW, 1, image.U8)
	o := cv.NewOps(cv.ISAScalar, nil)
	// The horizontal pass alone is not exposed; GaussianBlur on a 1-row
	// image applies vertical over identical rows (replicate border), so
	// the vertical pass is the identity (kernel sums to 256) up to
	// rounding. Instead reproduce the row filter via the known scalar
	// helper values: run the full blur and compare only against the IR
	// row pass composed with the IR column pass on a constant column.
	_ = o
	env := exec.NewEnv()
	env.U8["src"] = src.U8Pix
	trips := testW - 6
	got := make([]uint8, trips)
	env.U8["dst"] = got
	if err := exec.Run(GaussRow7(), env, trips, exec.RoundARM); err != nil {
		t.Fatal(err)
	}
	// Reference: direct fixed-point sum at x = i+3.
	for i := 0; i < trips; i++ {
		var acc uint32
		for k := 0; k < 7; k++ {
			acc += uint32(cv.GaussKernel7[k]) * uint32(src.U8Pix[i+k])
		}
		want := uint8((acc + 128) >> 8)
		if got[i] != want {
			t.Fatalf("pixel %d: IR %d want %d", i, got[i], want)
		}
	}
	_ = blurred
}

func TestGaussColIRMatchesRowOnTransposedData(t *testing.T) {
	// The column loop reads 7 distinct arrays; feed it rows of a column
	// and compare with the same fixed-point sum.
	n := 31
	env := exec.NewEnv()
	rows := make([][]uint8, 7)
	for k := range rows {
		rows[k] = make([]uint8, n)
		for i := range rows[k] {
			rows[k][i] = uint8(i*7 + k*13)
		}
		env.U8[[]string{"r0", "r1", "r2", "r3", "r4", "r5", "r6"}[k]] = rows[k]
	}
	got := make([]uint8, n)
	env.U8["dst"] = got
	if err := exec.Run(GaussCol7(), env, n, exec.RoundARM); err != nil {
		t.Fatal(err)
	}
	for i := 0; i < n; i++ {
		var acc uint32
		for k := 0; k < 7; k++ {
			acc += uint32(cv.GaussKernel7[k]) * uint32(rows[k][i])
		}
		want := uint8((acc + 128) >> 8)
		if got[i] != want {
			t.Fatalf("pixel %d: IR %d want %d", i, got[i], want)
		}
	}
}

func TestSobelIRPieces(t *testing.T) {
	n := 40
	src := make([]uint8, n+2)
	for i := range src {
		src[i] = uint8(i * i % 251)
	}
	env := exec.NewEnv()
	env.U8["src"] = src
	diff := make([]int16, n)
	env.S16["dst"] = diff
	if err := exec.Run(SobelDiffH(), env, n, exec.RoundARM); err != nil {
		t.Fatal(err)
	}
	for i := 0; i < n; i++ {
		want := int16(src[i+2]) - int16(src[i])
		if diff[i] != want {
			t.Fatalf("diffH %d: got %d want %d", i, diff[i], want)
		}
	}

	env2 := exec.NewEnv()
	env2.U8["src"] = src
	smooth := make([]int16, n)
	env2.S16["dst"] = smooth
	if err := exec.Run(SobelSmoothH(), env2, n, exec.RoundARM); err != nil {
		t.Fatal(err)
	}
	for i := 0; i < n; i++ {
		want := int16(src[i]) + 2*int16(src[i+1]) + int16(src[i+2])
		if smooth[i] != want {
			t.Fatalf("smoothH %d: got %d want %d", i, smooth[i], want)
		}
	}

	r0 := make([]int16, n)
	r1 := make([]int16, n)
	r2 := make([]int16, n)
	for i := 0; i < n; i++ {
		r0[i] = int16(i - 5)
		r1[i] = int16(3 * i)
		r2[i] = int16(100 - i)
	}
	env3 := exec.NewEnv()
	env3.S16["r0"], env3.S16["r1"], env3.S16["r2"] = r0, r1, r2
	sv := make([]int16, n)
	env3.S16["dst"] = sv
	if err := exec.Run(SobelSmoothV(), env3, n, exec.RoundARM); err != nil {
		t.Fatal(err)
	}
	for i := 0; i < n; i++ {
		if sv[i] != r0[i]+2*r1[i]+r2[i] {
			t.Fatalf("smoothV %d", i)
		}
	}

	env4 := exec.NewEnv()
	env4.S16["r0"], env4.S16["r2"] = r0, r2
	dv := make([]int16, n)
	env4.S16["dst"] = dv
	if err := exec.Run(SobelDiffV(), env4, n, exec.RoundARM); err != nil {
		t.Fatal(err)
	}
	for i := 0; i < n; i++ {
		if dv[i] != r2[i]-r0[i] {
			t.Fatalf("diffV %d", i)
		}
	}
}

func TestMagThreshIRMatchesCVScalar(t *testing.T) {
	n := 64
	gx := make([]int16, n)
	gy := make([]int16, n)
	for i := 0; i < n; i++ {
		gx[i] = int16((i*37)%400 - 200)
		gy[i] = int16((i*53)%600 - 300)
	}
	gx[0], gy[0] = -32768, -32768 // saturation corner
	env := exec.NewEnv()
	env.S16["gx"], env.S16["gy"] = gx, gy
	got := make([]uint8, n)
	env.U8["dst"] = got
	if err := exec.Run(MagThresh(100), env, n, exec.RoundARM); err != nil {
		t.Fatal(err)
	}
	gxm := image.NewMat(n, 1, image.S16)
	gym := image.NewMat(n, 1, image.S16)
	copy(gxm.S16Pix, gx)
	copy(gym.S16Pix, gy)
	mag := image.NewMat(n, 1, image.S16)
	o := cv.NewOps(cv.ISAScalar, nil)
	if err := o.GradientMagnitude(gxm, gym, mag); err != nil {
		t.Fatal(err)
	}
	for i := 0; i < n; i++ {
		want := uint8(0)
		if mag.S16Pix[i] > 100 {
			want = 255
		}
		if got[i] != want {
			t.Fatalf("pixel %d: IR %d want %d", i, got[i], want)
		}
	}
}

func TestLoopShapesForVectorizer(t *testing.T) {
	// The properties the vectorizer keys on must hold structurally.
	if !hasOp(Convert32f16s(), ir.OpCvtF2I) {
		t.Error("convert must contain the call-like cvRound")
	}
	if !hasOp(ThresholdTrunc(1), ir.OpSelect) {
		t.Error("threshold must contain a select (if-conversion candidate)")
	}
	if hasOp(GaussRow7(), ir.OpSelect) || hasOp(GaussRow7(), ir.OpCvtF2I) {
		t.Error("gauss row must be a pure widening MAC loop")
	}
	if !hasOp(MagThresh(1), ir.OpAbsSat) || !hasOp(MagThresh(1), ir.OpAddSat) {
		t.Error("mag loop must use saturating ops")
	}
	if GaussRow7().WidestType() != ir.U16 {
		t.Error("gauss row widest type")
	}
	if SobelDiffH().WidestType() != ir.I16 {
		t.Error("sobel diff widest type")
	}
}

func hasOp(l *ir.Loop, op ir.Op) bool {
	for _, ins := range l.Body {
		if ins.Op == op {
			return true
		}
	}
	return false
}
