package cv

import (
	"simdstudy/internal/image"
	"simdstudy/internal/par"
	"simdstudy/internal/trace"
	"simdstudy/internal/vec"
)

// GaussKernel7 is the 7-tap Gaussian kernel for sigma=1 in 8.8 fixed point
// (weights sum to exactly 256), the discretization OpenCV's 8-bit filters
// use. The paper's benchmark 3 convolves with an anisotropic Gaussian of
// standard deviation 1; for 8U images OpenCV derives a 7-tap kernel.
var GaussKernel7 = [7]uint16{1, 14, 62, 102, 62, 14, 1}

const gaussShift = 8 // fixed-point fractional bits; kernel sums to 1<<8

// GaussianBlur convolves a U8 image with the separable 7x7 Gaussian
// (sigma=1), replicating borders, the paper's benchmark 3.
//
// Both separable passes are row-banded when parallelism is configured
// (SetParallel): rows are independent within a pass — the vertical pass
// reads up to three rows above and below its own from the intermediate
// plane, but that plane was fully written before the pass started, so the
// halo is plain shared-read data — and the pass boundary is a barrier.
func (o *Ops) GaussianBlur(src, dst *image.Mat) (err error) {
	o.beginKernel("GaussianBlur")
	defer o.endKernelP("GaussianBlur", &err)
	if err := requireKind(src, image.U8, "GaussianBlur src"); err != nil {
		return err
	}
	if err := requireKind(dst, image.U8, "GaussianBlur dst"); err != nil {
		return err
	}
	if err := sameShape(src, dst); err != nil {
		return err
	}
	run := func(op *Ops, d *image.Mat) error {
		tmp := par.GetMat(src.Width, src.Height, image.U8)
		defer par.PutMat(tmp)
		if op.UseOptimized() {
			switch op.isa {
			case ISANEON:
				op.gaussHorizNEON(src, tmp)
				op.gaussVertNEON(tmp, d)
				return nil
			case ISASSE2:
				op.gaussHorizSSE2(src, tmp)
				op.gaussVertSSE2(tmp, d)
				return nil
			}
		}
		op.gaussHorizScalar(src, tmp)
		op.gaussVertScalar(tmp, d)
		return nil
	}
	if o.UseOptimized() {
		return o.guardedRun("GaussianBlur", dst, 0,
			func() error { return run(o, dst) }, run)
	}
	return run(o, dst)
}

func clampIdx(i, n int) int {
	if i < 0 {
		return 0
	}
	if i >= n {
		return n - 1
	}
	return i
}

// gaussPixelH computes one horizontally filtered pixel with replicated
// borders. Both the scalar path and the SIMD prologue/epilogue use this so
// all paths are bit-exact.
func gaussPixelH(row []uint8, w, x int) uint8 {
	var acc uint32
	for k := 0; k < 7; k++ {
		acc += uint32(GaussKernel7[k]) * uint32(row[clampIdx(x+k-3, w)])
	}
	return uint8((acc + 1<<(gaussShift-1)) >> gaussShift)
}

// gaussPixelV computes one vertically filtered pixel with replicated
// borders; pix is the full image plane.
func gaussPixelV(pix []uint8, w, h, x, y int) uint8 {
	var acc uint32
	for k := 0; k < 7; k++ {
		acc += uint32(GaussKernel7[k]) * uint32(pix[clampIdx(y+k-3, h)*w+x])
	}
	return uint8((acc + 1<<(gaussShift-1)) >> gaussShift)
}

func (o *Ops) gaussScalarRowCost(pixels uint64, bytesPerLoad int) {
	if o.T == nil {
		return
	}
	// Per pixel: 7 loads, 7 multiplies, 7 adds (one folded), shift, store.
	o.T.RecordN("ldrb(tap)", trace.ScalarLoad, 7*pixels, bytesPerLoad)
	o.T.RecordN("mul(tap)", trace.ScalarALU, 7*pixels, 0)
	o.T.RecordN("add(acc)", trace.ScalarALU, 7*pixels, 0)
	o.T.RecordN("shr+strb", trace.ScalarStore, pixels, 1)
	o.scalarOverhead(pixels)
}

// gaussArgs bundles one Gaussian pass for the banded row bodies: the source
// and destination planes plus the vector weights, broadcast (and their setup
// instructions recorded) once per pass on the parent Ops.
type gaussArgs struct {
	src, dst   []uint8
	w, h       int
	wd         [7]vec.V64  // NEON weight bytes
	wv         [7]vec.V128 // SSE2 weight words
	zero, half vec.V128
}

func (o *Ops) gaussHorizScalar(src, dst *image.Mat) {
	a := gaussArgs{src: src.U8Pix, dst: dst.U8Pix, w: src.Width, h: src.Height}
	parRows(o, src.Height, a, gaussHorizScalarRow)
}

func gaussHorizScalarRow(b *Ops, a gaussArgs, y int) {
	w := a.w
	row := a.src[y*w : (y+1)*w]
	out := a.dst[y*w : (y+1)*w]
	for x := 0; x < w; x++ {
		out[x] = gaussPixelH(row, w, x)
	}
	b.gaussScalarRowCost(uint64(w), 1)
}

func (o *Ops) gaussVertScalar(src, dst *image.Mat) {
	a := gaussArgs{src: src.U8Pix, dst: dst.U8Pix, w: src.Width, h: src.Height}
	parRows(o, src.Height, a, gaussVertScalarRow)
}

func gaussVertScalarRow(b *Ops, a gaussArgs, y int) {
	w, h := a.w, a.h
	for x := 0; x < w; x++ {
		a.dst[y*w+x] = gaussPixelV(a.src, w, h, x, y)
	}
	b.gaussScalarRowCost(uint64(w), 1)
}

// scalarEdgeCost records the cost of SIMD-path border pixels computed in
// scalar code.
func (o *Ops) scalarEdgeCost(pixels uint64) {
	if o.T == nil || pixels == 0 {
		return
	}
	o.T.RecordN("gauss(tail)", trace.ScalarALU, 15*pixels, 0)
	o.scalarOverhead(pixels)
}

// gaussHorizNEON filters rows, 8 pixels per iteration: one widening
// multiply plus six widening multiply-accumulates against dup'd weights,
// then a rounding shift-narrow.
func (o *Ops) gaussHorizNEON(src, dst *image.Mat) {
	defer o.n.Session("gauss.horiz", o.curSpan()).End()
	a := gaussArgs{src: src.U8Pix, dst: dst.U8Pix, w: src.Width, h: src.Height}
	// Weight bytes broadcast once per image, hoisted out of the loops.
	for k := range a.wd {
		a.wd[k] = o.n.VdupNU8(uint8(GaussKernel7[k]))
	}
	parRows(o, src.Height, a, gaussHorizNEONRow)
}

func gaussHorizNEONRow(b *Ops, a gaussArgs, y int) {
	w := a.w
	u := b.n
	row := a.src[y*w : (y+1)*w]
	out := a.dst[y*w : (y+1)*w]
	edge := 0
	x := 0
	// Left border and narrow images: scalar.
	for ; x < 3 && x < w; x++ {
		out[x] = gaussPixelH(row, w, x)
		edge++
	}
	// Vector body needs source bytes x-3 .. x+4+7.
	for ; x+8 <= w-4; x += 8 {
		acc := u.VmullU8(u.Vld1U8(row[x-3:]), a.wd[0])
		for k := 1; k < 7; k++ {
			acc = u.VmlalU8(acc, u.Vld1U8(row[x+k-3:]), a.wd[k])
		}
		u.Vst1U8(out[x:], u.VrshrnNU16(acc, gaussShift))
		u.Overhead(2, 1, 0)
	}
	for ; x < w; x++ {
		out[x] = gaussPixelH(row, w, x)
		edge++
	}
	b.scalarEdgeCost(uint64(edge))
}

// gaussVertNEON filters columns, 8 pixels per iteration across each row;
// all columns vectorize because the taps come from neighbouring rows.
func (o *Ops) gaussVertNEON(src, dst *image.Mat) {
	defer o.n.Session("gauss.vert", o.curSpan()).End()
	a := gaussArgs{src: src.U8Pix, dst: dst.U8Pix, w: src.Width, h: src.Height}
	for k := range a.wd {
		a.wd[k] = o.n.VdupNU8(uint8(GaussKernel7[k]))
	}
	parRows(o, src.Height, a, gaussVertNEONRow)
}

func gaussVertNEONRow(b *Ops, a gaussArgs, y int) {
	w, h := a.w, a.h
	u := b.n
	r := [7][]uint8{}
	for k := 0; k < 7; k++ {
		ry := clampIdx(y+k-3, h)
		r[k] = a.src[ry*w : (ry+1)*w]
	}
	out := a.dst[y*w : (y+1)*w]
	edge := 0
	x := 0
	for ; x+8 <= w; x += 8 {
		acc := u.VmullU8(u.Vld1U8(r[0][x:]), a.wd[0])
		for k := 1; k < 7; k++ {
			acc = u.VmlalU8(acc, u.Vld1U8(r[k][x:]), a.wd[k])
		}
		u.Vst1U8(out[x:], u.VrshrnNU16(acc, gaussShift))
		u.Overhead(2, 1, 0)
	}
	for ; x < w; x++ {
		out[x] = gaussPixelV(a.src, w, h, x, y)
		edge++
	}
	b.scalarEdgeCost(uint64(edge))
}

// gaussHorizSSE2 filters rows, 8 pixels per iteration: bytes are unpacked
// against zero to words, multiplied with pmullw and accumulated with paddw.
func (o *Ops) gaussHorizSSE2(src, dst *image.Mat) {
	defer o.s.Session("gauss.horiz", o.curSpan()).End()
	a := gaussArgs{src: src.U8Pix, dst: dst.U8Pix, w: src.Width, h: src.Height}
	a.zero = o.s.SetzeroSi128()
	for k := range a.wv {
		a.wv[k] = o.s.Set1Epi16(int16(GaussKernel7[k]))
	}
	a.half = o.s.Set1Epi16(1 << (gaussShift - 1))
	parRows(o, src.Height, a, gaussHorizSSE2Row)
}

func gaussHorizSSE2Row(b *Ops, a gaussArgs, y int) {
	w := a.w
	u := b.s
	row := a.src[y*w : (y+1)*w]
	out := a.dst[y*w : (y+1)*w]
	edge := 0
	x := 0
	for ; x < 3 && x < w; x++ {
		out[x] = gaussPixelH(row, w, x)
		edge++
	}
	for ; x+8 <= w-4; x += 8 {
		v := u.UnpackloEpi8(u.LoadlEpi64U8(row[x-3:]), a.zero)
		acc := u.MulloEpi16(v, a.wv[0])
		for k := 1; k < 7; k++ {
			v = u.UnpackloEpi8(u.LoadlEpi64U8(row[x+k-3:]), a.zero)
			acc = u.AddEpi16(acc, u.MulloEpi16(v, a.wv[k]))
		}
		r := u.SrliEpi16(u.AddEpi16(acc, a.half), gaussShift)
		u.StorelEpi64U8(out[x:], u.PackusEpi16(r, r))
		u.Overhead(2, 1, 0)
	}
	for ; x < w; x++ {
		out[x] = gaussPixelH(row, w, x)
		edge++
	}
	b.scalarEdgeCost(uint64(edge))
}

// gaussVertSSE2 filters columns, 8 pixels per iteration.
func (o *Ops) gaussVertSSE2(src, dst *image.Mat) {
	defer o.s.Session("gauss.vert", o.curSpan()).End()
	a := gaussArgs{src: src.U8Pix, dst: dst.U8Pix, w: src.Width, h: src.Height}
	a.zero = o.s.SetzeroSi128()
	for k := range a.wv {
		a.wv[k] = o.s.Set1Epi16(int16(GaussKernel7[k]))
	}
	a.half = o.s.Set1Epi16(1 << (gaussShift - 1))
	parRows(o, src.Height, a, gaussVertSSE2Row)
}

func gaussVertSSE2Row(b *Ops, a gaussArgs, y int) {
	w, h := a.w, a.h
	u := b.s
	var r [7][]uint8
	for k := 0; k < 7; k++ {
		ry := clampIdx(y+k-3, h)
		r[k] = a.src[ry*w : (ry+1)*w]
	}
	out := a.dst[y*w : (y+1)*w]
	edge := 0
	x := 0
	for ; x+8 <= w; x += 8 {
		v := u.UnpackloEpi8(u.LoadlEpi64U8(r[0][x:]), a.zero)
		acc := u.MulloEpi16(v, a.wv[0])
		for k := 1; k < 7; k++ {
			v = u.UnpackloEpi8(u.LoadlEpi64U8(r[k][x:]), a.zero)
			acc = u.AddEpi16(acc, u.MulloEpi16(v, a.wv[k]))
		}
		res := u.SrliEpi16(u.AddEpi16(acc, a.half), gaussShift)
		u.StorelEpi64U8(out[x:], u.PackusEpi16(res, res))
		u.Overhead(2, 1, 0)
	}
	for ; x < w; x++ {
		out[x] = gaussPixelV(a.src, w, h, x, y)
		edge++
	}
	b.scalarEdgeCost(uint64(edge))
}
