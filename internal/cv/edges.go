package cv

import (
	"simdstudy/internal/image"
	"simdstudy/internal/par"
	"simdstudy/internal/sat"
	"simdstudy/internal/trace"
	"simdstudy/internal/vec"
)

// DetectEdges is the paper's benchmark 5: apply the 2-D Sobel operator
// (horizontal and vertical passes), combine gradient magnitudes with the
// saturating L1 norm |gx|+|gy|, then binarize — pixels whose gradient
// intensity exceeds thresh become 255, the rest 0.
func (o *Ops) DetectEdges(src, dst *image.Mat, thresh int16) (err error) {
	o.beginKernel("DetectEdges")
	defer o.endKernelP("DetectEdges", &err)
	if err := requireKind(src, image.U8, "DetectEdges src"); err != nil {
		return err
	}
	if err := requireKind(dst, image.U8, "DetectEdges dst"); err != nil {
		return err
	}
	if err := sameShape(src, dst); err != nil {
		return err
	}
	if o.fuse.Enabled {
		if o.UseOptimized() && o.guarded {
			// The guard referee is the staged scalar reference: a fresh
			// scalar Ops re-runs the unfused pipeline and the fused output
			// is spot-checked against it.
			return o.guardedRun("DetectEdges", dst, 0,
				func() error { return o.edgesFused(src, dst, thresh) },
				func(ref *Ops, d *image.Mat) error { return ref.edgesStaged(src, d, thresh) })
		}
		return o.edgesFused(src, dst, thresh)
	}
	if o.UseOptimized() {
		// One guard covers the whole pipeline; the nested SobelFilter
		// calls see inGuard and skip their own referees.
		return o.guardedRun("DetectEdges", dst, 0,
			func() error { return o.edgesStaged(src, dst, thresh) },
			func(ref *Ops, d *image.Mat) error { return ref.edgesStaged(src, d, thresh) })
	}
	return o.edgesStaged(src, dst, thresh)
}

// edgesStaged is the unfused pipeline: full gradient planes, then the
// combine pass over the whole plane.
func (o *Ops) edgesStaged(src, dst *image.Mat, thresh int16) error {
	gx := par.GetMat(src.Width, src.Height, image.S16)
	defer par.PutMat(gx)
	gy := par.GetMat(src.Width, src.Height, image.S16)
	defer par.PutMat(gy)
	if err := o.SobelFilter(src, gx, 1, 0); err != nil {
		return err
	}
	if err := o.SobelFilter(src, gy, 0, 1); err != nil {
		return err
	}
	if o.UseOptimized() {
		switch o.isa {
		case ISANEON:
			o.magThreshNEON(gx, gy, dst, thresh)
			return nil
		case ISASSE2:
			o.magThreshSSE2(gx, gy, dst, thresh)
			return nil
		}
	}
	o.magThreshScalar(gx, gy, dst, thresh)
	return nil
}

// magThreshPixel is the scalar combine: saturating |gx|+|gy| compared with
// the threshold.
func magThreshPixel(gx, gy, thresh int16) uint8 {
	m := sat.AddInt16(sat.AbsInt16(gx), sat.AbsInt16(gy))
	if m > thresh {
		return 255
	}
	return 0
}

// magThreshArgs bundles the combine stage for the banded chunk bodies, with
// the threshold vector hoisted once on the parent unit.
type magThreshArgs struct {
	gx, gy  []int16
	d       []uint8
	thresh  int16
	vthresh vec.V128
}

func (o *Ops) magThreshScalar(gx, gy, dst *image.Mat, thresh int16) {
	a := magThreshArgs{gx: gx.S16Pix, gy: gy.S16Pix, d: dst.U8Pix, thresh: thresh}
	parFlat(o, dst.Pixels(), a, magThreshScalarChunk)
}

func magThreshScalarChunk(b *Ops, a magThreshArgs, lo, hi int) {
	for i := lo; i < hi; i++ {
		a.d[i] = magThreshPixel(a.gx[i], a.gy[i], a.thresh)
	}
	if b.T != nil {
		n := uint64(hi - lo)
		b.T.RecordN("ldr(gx,gy)", trace.ScalarLoad, 2*n, 2)
		b.T.RecordN("abs/add/cmp", trace.ScalarALU, 4*n, 0)
		b.T.RecordN("strb", trace.ScalarStore, n, 1)
		b.scalarOverhead(n)
	}
}

// magThreshNEON combines 8 pixels per iteration: two saturating absolutes,
// a saturating add, a compare and a narrowing store of the mask.
func (o *Ops) magThreshNEON(gx, gy, dst *image.Mat, thresh int16) {
	defer o.n.Session("magthresh", o.curSpan()).End()
	a := magThreshArgs{gx: gx.S16Pix, gy: gy.S16Pix, d: dst.U8Pix, thresh: thresh}
	a.vthresh = o.n.VdupqNS16(thresh)
	parFlat(o, dst.Pixels(), a, magThreshNEONChunk)
}

func magThreshNEONChunk(b *Ops, a magThreshArgs, lo, hi int) {
	u := b.n
	i := lo
	for ; i+8 <= hi; i += 8 {
		ax := u.VqabsqS16(u.Vld1qS16(a.gx[i:]))
		ay := u.VqabsqS16(u.Vld1qS16(a.gy[i:]))
		m := u.VqaddqS16(ax, ay)
		mask := u.VcgtqS16(m, a.vthresh) // 0xFFFF where edge
		u.Vst1U8(a.d[i:], u.VmovnU16(u.VreinterpretqU16S16(mask)))
		u.Overhead(3, 1, 0)
	}
	for ; i < hi; i++ {
		a.d[i] = magThreshPixel(a.gx[i], a.gy[i], a.thresh)
		if b.T != nil {
			b.T.RecordN("mag(tail)", trace.ScalarALU, 5, 0)
			b.scalarOverhead(1)
		}
	}
}

// magThreshSSE2 combines 8 pixels per iteration. SSE2 has no packed
// absolute value (pabsw is SSSE3), so |x| is computed with the classic
// three-instruction sign-mask idiom — an asymmetry versus NEON's single
// vqabs that shows up in the instruction counts.
func (o *Ops) magThreshSSE2(gx, gy, dst *image.Mat, thresh int16) {
	defer o.s.Session("magthresh", o.curSpan()).End()
	a := magThreshArgs{gx: gx.S16Pix, gy: gy.S16Pix, d: dst.U8Pix, thresh: thresh}
	a.vthresh = o.s.Set1Epi16(thresh)
	parFlat(o, dst.Pixels(), a, magThreshSSE2Chunk)
}

func magThreshSSE2Chunk(b *Ops, a magThreshArgs, lo, hi int) {
	u := b.s
	abs16 := func(v vec.V128) vec.V128 {
		sign := u.SraiEpi16(v, 15)
		return u.SubsEpi16(u.XorSi128(v, sign), sign)
	}
	i := lo
	for ; i+8 <= hi; i += 8 {
		ax := abs16(u.LoaduSi128S16(a.gx[i:]))
		ay := abs16(u.LoaduSi128S16(a.gy[i:]))
		m := u.AddsEpi16(ax, ay)
		mask := u.CmpgtEpi16(m, a.vthresh)
		packed := u.PacksEpi16(mask, mask) // 0xFFFF -> 0xFF lanes
		u.StorelEpi64U8(a.d[i:], packed)
		u.Overhead(3, 1, 0)
	}
	for ; i < hi; i++ {
		a.d[i] = magThreshPixel(a.gx[i], a.gy[i], a.thresh)
		if b.T != nil {
			b.T.RecordN("mag(tail)", trace.ScalarALU, 5, 0)
			b.scalarOverhead(1)
		}
	}
}

// GradientMagnitude exposes the |gx|+|gy| combine on its own for callers
// composing custom pipelines (used by examples).
func (o *Ops) GradientMagnitude(gx, gy, dst *image.Mat) (err error) {
	o.beginKernel("GradientMagnitude")
	defer o.endKernelP("GradientMagnitude", &err)
	if err := requireKind(gx, image.S16, "GradientMagnitude gx"); err != nil {
		return err
	}
	if err := requireKind(gy, image.S16, "GradientMagnitude gy"); err != nil {
		return err
	}
	if err := requireKind(dst, image.S16, "GradientMagnitude dst"); err != nil {
		return err
	}
	if err := sameShape(gx, dst); err != nil {
		return err
	}
	if err := sameShape(gy, dst); err != nil {
		return err
	}
	parFlat(o, dst.Pixels(), cannyMagArgs{gx.S16Pix, gy.S16Pix, dst.S16Pix}, cannyMagChunk)
	return nil
}
