package cv

import (
	"simdstudy/internal/image"
	"simdstudy/internal/sat"
	"simdstudy/internal/trace"
	"simdstudy/internal/vec"
)

// DetectEdges is the paper's benchmark 5: apply the 2-D Sobel operator
// (horizontal and vertical passes), combine gradient magnitudes with the
// saturating L1 norm |gx|+|gy|, then binarize — pixels whose gradient
// intensity exceeds thresh become 255, the rest 0.
func (o *Ops) DetectEdges(src, dst *image.Mat, thresh int16) (err error) {
	o.beginKernel("DetectEdges")
	defer func() { o.endKernel("DetectEdges", err) }()
	if err := requireKind(src, image.U8, "DetectEdges src"); err != nil {
		return err
	}
	if err := requireKind(dst, image.U8, "DetectEdges dst"); err != nil {
		return err
	}
	if err := sameShape(src, dst); err != nil {
		return err
	}
	run := func(op *Ops, d *image.Mat) error {
		gx := image.NewMat(src.Width, src.Height, image.S16)
		gy := image.NewMat(src.Width, src.Height, image.S16)
		if err := op.SobelFilter(src, gx, 1, 0); err != nil {
			return err
		}
		if err := op.SobelFilter(src, gy, 0, 1); err != nil {
			return err
		}
		if op.UseOptimized() {
			switch op.isa {
			case ISANEON:
				op.magThreshNEON(gx, gy, d, thresh)
				return nil
			case ISASSE2:
				op.magThreshSSE2(gx, gy, d, thresh)
				return nil
			}
		}
		op.magThreshScalar(gx, gy, d, thresh)
		return nil
	}
	if o.UseOptimized() {
		// One guard covers the whole pipeline; the nested SobelFilter
		// calls see inGuard and skip their own referees.
		return o.guardedRun("DetectEdges", dst, 0,
			func() error { return run(o, dst) }, run)
	}
	return run(o, dst)
}

// magThreshPixel is the scalar combine: saturating |gx|+|gy| compared with
// the threshold.
func magThreshPixel(gx, gy, thresh int16) uint8 {
	m := sat.AddInt16(sat.AbsInt16(gx), sat.AbsInt16(gy))
	if m > thresh {
		return 255
	}
	return 0
}

func (o *Ops) magThreshScalar(gx, gy, dst *image.Mat, thresh int16) {
	n := dst.Pixels()
	for i := 0; i < n; i++ {
		dst.U8Pix[i] = magThreshPixel(gx.S16Pix[i], gy.S16Pix[i], thresh)
	}
	if o.T != nil {
		o.T.RecordN("ldr(gx,gy)", trace.ScalarLoad, uint64(2*n), 2)
		o.T.RecordN("abs/add/cmp", trace.ScalarALU, uint64(4*n), 0)
		o.T.RecordN("strb", trace.ScalarStore, uint64(n), 1)
		o.scalarOverhead(uint64(n))
	}
}

// magThreshNEON combines 8 pixels per iteration: two saturating absolutes,
// a saturating add, a compare and a narrowing store of the mask.
func (o *Ops) magThreshNEON(gx, gy, dst *image.Mat, thresh int16) {
	defer o.n.Session("magthresh", o.curSpan()).End()
	n := dst.Pixels()
	u := o.n
	vthresh := u.VdupqNS16(thresh)
	i := 0
	for ; i+8 <= n; i += 8 {
		ax := u.VqabsqS16(u.Vld1qS16(gx.S16Pix[i:]))
		ay := u.VqabsqS16(u.Vld1qS16(gy.S16Pix[i:]))
		m := u.VqaddqS16(ax, ay)
		mask := u.VcgtqS16(m, vthresh) // 0xFFFF where edge
		u.Vst1U8(dst.U8Pix[i:], u.VmovnU16(u.VreinterpretqU16S16(mask)))
		u.Overhead(3, 1, 0)
	}
	for ; i < n; i++ {
		dst.U8Pix[i] = magThreshPixel(gx.S16Pix[i], gy.S16Pix[i], thresh)
		if o.T != nil {
			o.T.RecordN("mag(tail)", trace.ScalarALU, 5, 0)
			o.scalarOverhead(1)
		}
	}
}

// magThreshSSE2 combines 8 pixels per iteration. SSE2 has no packed
// absolute value (pabsw is SSSE3), so |x| is computed with the classic
// three-instruction sign-mask idiom — an asymmetry versus NEON's single
// vqabs that shows up in the instruction counts.
func (o *Ops) magThreshSSE2(gx, gy, dst *image.Mat, thresh int16) {
	defer o.s.Session("magthresh", o.curSpan()).End()
	n := dst.Pixels()
	u := o.s
	vthresh := u.Set1Epi16(thresh)
	abs16 := func(v vec.V128) vec.V128 {
		sign := u.SraiEpi16(v, 15)
		return u.SubsEpi16(u.XorSi128(v, sign), sign)
	}
	i := 0
	for ; i+8 <= n; i += 8 {
		ax := abs16(u.LoaduSi128S16(gx.S16Pix[i:]))
		ay := abs16(u.LoaduSi128S16(gy.S16Pix[i:]))
		m := u.AddsEpi16(ax, ay)
		mask := u.CmpgtEpi16(m, vthresh)
		packed := u.PacksEpi16(mask, mask) // 0xFFFF -> 0xFF lanes
		u.StorelEpi64U8(dst.U8Pix[i:], packed)
		u.Overhead(3, 1, 0)
	}
	for ; i < n; i++ {
		dst.U8Pix[i] = magThreshPixel(gx.S16Pix[i], gy.S16Pix[i], thresh)
		if o.T != nil {
			o.T.RecordN("mag(tail)", trace.ScalarALU, 5, 0)
			o.scalarOverhead(1)
		}
	}
}

// GradientMagnitude exposes the |gx|+|gy| combine on its own for callers
// composing custom pipelines (used by examples).
func (o *Ops) GradientMagnitude(gx, gy, dst *image.Mat) (err error) {
	o.beginKernel("GradientMagnitude")
	defer func() { o.endKernel("GradientMagnitude", err) }()
	if err := requireKind(gx, image.S16, "GradientMagnitude gx"); err != nil {
		return err
	}
	if err := requireKind(gy, image.S16, "GradientMagnitude gy"); err != nil {
		return err
	}
	if err := requireKind(dst, image.S16, "GradientMagnitude dst"); err != nil {
		return err
	}
	if err := sameShape(gx, dst); err != nil {
		return err
	}
	if err := sameShape(gy, dst); err != nil {
		return err
	}
	n := dst.Pixels()
	for i := 0; i < n; i++ {
		dst.S16Pix[i] = sat.AddInt16(sat.AbsInt16(gx.S16Pix[i]), sat.AbsInt16(gy.S16Pix[i]))
	}
	if o.T != nil {
		o.T.RecordN("mag", trace.ScalarALU, uint64(3*n), 0)
		o.scalarOverhead(uint64(n))
	}
	return nil
}
