package cv

import (
	"testing"
	"testing/quick"

	"simdstudy/internal/image"
	"simdstudy/internal/trace"
)

func TestRGBToGrayNEONMatchesScalar(t *testing.T) {
	res := image.Resolution{Width: 67, Height: 23} // odd width exercises the tail
	src := image.SyntheticRGB(res, 1)
	want := image.NewMat(res.Width, res.Height, image.U8)
	got := image.NewMat(res.Width, res.Height, image.U8)
	if err := NewOps(ISAScalar, nil).RGBToGray(src, want); err != nil {
		t.Fatal(err)
	}
	if err := NewOps(ISANEON, nil).RGBToGray(src, got); err != nil {
		t.Fatal(err)
	}
	if !want.EqualTo(got) {
		t.Fatalf("NEON gray differs in %d pixels", want.DiffCount(got, 0))
	}
	// SSE2 has no hand path (no structured loads); it must fall back to
	// the scalar result exactly.
	sse := image.NewMat(res.Width, res.Height, image.U8)
	if err := NewOps(ISASSE2, nil).RGBToGray(src, sse); err != nil {
		t.Fatal(err)
	}
	if !want.EqualTo(sse) {
		t.Fatal("SSE2 fallback differs from scalar")
	}
}

func TestRGBToGraySemantics(t *testing.T) {
	src := image.NewRGB(4, 1)
	src.Set(0, 0, 255, 255, 255) // white -> 255 (weights sum to 256)
	src.Set(1, 0, 0, 0, 0)       // black -> 0
	src.Set(2, 0, 255, 0, 0)     // pure red -> round(255*77/256 + .5)
	src.Set(3, 0, 0, 255, 0)     // pure green
	dst := image.NewMat(4, 1, image.U8)
	if err := NewOps(ISAScalar, nil).RGBToGray(src, dst); err != nil {
		t.Fatal(err)
	}
	if dst.U8Pix[0] != 255 || dst.U8Pix[1] != 0 {
		t.Errorf("white/black: %d %d", dst.U8Pix[0], dst.U8Pix[1])
	}
	if dst.U8Pix[2] != uint8((255*77+128)>>8) {
		t.Errorf("red luma: %d", dst.U8Pix[2])
	}
	if dst.U8Pix[3] != uint8((255*150+128)>>8) {
		t.Errorf("green luma: %d", dst.U8Pix[3])
	}
	// Green dominates luma, per BT.601.
	if dst.U8Pix[3] <= dst.U8Pix[2] {
		t.Error("green must contribute more luma than red")
	}
}

func TestRGBToGrayErrors(t *testing.T) {
	o := NewOps(ISAScalar, nil)
	src := image.NewRGB(4, 4)
	if err := o.RGBToGray(src, image.NewMat(4, 4, image.S16)); err == nil {
		t.Error("S16 dst should fail")
	}
	if err := o.RGBToGray(src, image.NewMat(2, 2, image.U8)); err == nil {
		t.Error("shape mismatch should fail")
	}
}

func TestRGBToGrayInstructionCounts(t *testing.T) {
	res := image.Resolution{Width: 64, Height: 16}
	src := image.SyntheticRGB(res, 2)
	dst := image.NewMat(res.Width, res.Height, image.U8)

	var hand trace.Counter
	if err := NewOps(ISANEON, &hand).RGBToGray(src, dst); err != nil {
		t.Fatal(err)
	}
	// 8 pixels/iter: vld3 + vmull + 2 vmlal + vrshrn + vst1 + 3 overhead,
	// plus the three hoisted weight broadcasts.
	iters := uint64(res.Width * res.Height / 8)
	if got := hand.Total(); got != 9*iters+3 {
		t.Errorf("NEON gray: %d instrs, want %d (9 per 8 px + 3 dups)", got, 9*iters+3)
	}
	if hand.Opcode("vld3.8") != iters {
		t.Error("one structured load per iteration")
	}

	var scalar trace.Counter
	o := NewOps(ISANEON, &scalar)
	o.SetUseOptimized(false)
	if err := o.RGBToGray(src, dst); err != nil {
		t.Fatal(err)
	}
	if scalar.Total() <= hand.Total() {
		t.Error("scalar must retire more instructions than NEON")
	}
}

// Property: gray output is bounded by the channel-wise min and max, for
// every path (convexity of the normalized weights).
func TestQuickGrayConvexity(t *testing.T) {
	f := func(seed uint64) bool {
		res := image.Resolution{Width: 23, Height: 7}
		src := image.SyntheticRGB(res, seed)
		for _, isa := range []ISA{ISAScalar, ISANEON} {
			dst := image.NewMat(res.Width, res.Height, image.U8)
			if err := NewOps(isa, nil).RGBToGray(src, dst); err != nil {
				return false
			}
			for i := 0; i < dst.Pixels(); i++ {
				r, g, b := src.Pix[3*i], src.Pix[3*i+1], src.Pix[3*i+2]
				lo, hi := min(r, min(g, b)), max(r, max(g, b))
				v := dst.U8Pix[i]
				if int(v) < int(lo)-1 || int(v) > int(hi)+1 {
					return false
				}
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 20}); err != nil {
		t.Error(err)
	}
}
