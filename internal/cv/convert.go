package cv

import (
	"simdstudy/internal/image"
	"simdstudy/internal/sat"
	"simdstudy/internal/trace"
)

// ConvertF32ToS16 is the paper's first benchmark: OpenCV's cvt_32f16s,
// converting float pixels to signed shorts with saturation
// (saturate_cast<short>(float)).
//
// Rounding follows the platform conventions of OpenCV 2.4:
//
//   - the SSE2 scalar and vector paths round to nearest-even (cvtsd2si /
//     cvtps2dq under default MXCSR), so scalar and hand-SIMD agree exactly;
//   - the ARM scalar path uses the (int)(v +- 0.5) fallback (half away from
//     zero), while the hand NEON path uses vcvt.s32.f32 which truncates —
//     a genuine, documented divergence of the real NEON port that shows up
//     as off-by-one results on fractional pixels.
func (o *Ops) ConvertF32ToS16(src, dst *image.Mat) (err error) {
	o.beginKernel("ConvertF32ToS16")
	defer o.endKernelP("ConvertF32ToS16", &err)
	if err := requireKind(src, image.F32, "ConvertF32ToS16 src"); err != nil {
		return err
	}
	if err := requireKind(dst, image.S16, "ConvertF32ToS16 dst"); err != nil {
		return err
	}
	if err := sameShape(src, dst); err != nil {
		return err
	}
	run := func(op *Ops, d *image.Mat) error {
		if op.UseOptimized() {
			switch op.isa {
			case ISANEON:
				op.convertNEON(src, d)
				return nil
			case ISASSE2:
				op.convertSSE2(src, d)
				return nil
			}
		}
		op.convertScalar(src, d)
		return nil
	}
	if o.UseOptimized() {
		// The NEON vector path truncates (vcvt) while the ARM scalar
		// referee rounds half away from zero, a documented divergence of
		// the real port — the guard must allow one count of slack there.
		tol := 0
		if o.isa == ISANEON {
			tol = 1
		}
		return o.guardedRun("ConvertF32ToS16", dst, tol,
			func() error { return run(o, dst) }, run)
	}
	return run(o, dst)
}

// convArgs bundles the convert pass planes for the banded chunk bodies.
// Bodies are package-level functions so dispatching them allocates nothing.
type convArgs struct {
	s []float32
	d []int16
}

// convertScalar is the unoptimized OpenCV loop:
//
//	for (; x < size.width; x++) dst[x] = saturate_cast<short>(src[x]);
func (o *Ops) convertScalar(src, dst *image.Mat) {
	parFlat(o, len(src.F32Pix), convArgs{src.F32Pix, dst.S16Pix}, convScalarChunk)
}

func convScalarChunk(b *Ops, a convArgs, lo, hi int) {
	s, d := a.s, a.d
	for i := lo; i < hi; i++ {
		d[i] = sat.NarrowInt32ToInt16(b.cvRound(s[i]))
	}
	if b.T != nil {
		// Per-pixel cost of the scalar loop as compiled at -O3 without
		// vectorization: load, round+convert (a scalar FP op plus a
		// conversion; on ARM the cvRound inlines to VFP ops), two-branch
		// clamp folded to ALU ops, store.
		n := uint64(hi - lo)
		b.T.RecordN("ldr(f32)", trace.ScalarLoad, n, 4)
		b.T.RecordN("round", trace.ScalarFP, n, 0)
		b.T.RecordN("cvt(f2i)", trace.ScalarCvt, n, 0)
		b.T.RecordN("clamp", trace.ScalarALU, 2*n, 0)
		b.T.RecordN("strh(s16)", trace.ScalarStore, n, 2)
		b.scalarOverhead(n)
	}
}

// cvRound mirrors OpenCV's cvRound for the configured platform family.
func (o *Ops) cvRound(v float32) int32 {
	if o.isa == ISASSE2 {
		return sat.RoundHalfToEvenIndefinite(float64(v))
	}
	return sat.RoundHalfAwayFromZero(float64(v))
}

// convertNEON is the paper's hand-optimized NEON loop, transcribed from its
// Section III-A listing: 8 pixels per iteration, 8 NEON instructions plus 6
// bookkeeping instructions.
func (o *Ops) convertNEON(src, dst *image.Mat) {
	defer o.n.Session("convert", o.curSpan()).End()
	parFlat(o, len(src.F32Pix), convArgs{src.F32Pix, dst.S16Pix}, convNEONChunk)
}

func convNEONChunk(b *Ops, a convArgs, lo, hi int) {
	s, d := a.s, a.d
	u := b.n
	x := lo
	for ; x <= hi-8; x += 8 {
		src128 := u.Vld1qF32(s[x:])
		srcInt128 := u.VcvtqS32F32(src128)
		src0Int64 := u.VqmovnS32(srcInt128)
		src128 = u.Vld1qF32(s[x+4:])
		srcInt128 = u.VcvtqS32F32(src128)
		src1Int64 := u.VqmovnS32(srcInt128)
		resInt128 := u.VcombineS16(src0Int64, src1Int64)
		u.Vst1qS16(d[x:], resInt128)
		// Section V counts 6 non-SIMD instructions per iteration: two
		// address adds, a register move, a compare and branch, and the
		// base-pointer update.
		u.Overhead(3, 1, 2)
	}
	// Scalar epilogue for the remainder (final chunk only: chunk bounds are
	// vector-width aligned), truncating like vcvt so the whole image is
	// consistent with the vector path.
	for ; x < hi; x++ {
		d[x] = sat.NarrowInt32ToInt16(sat.Float32ToInt32Truncate(s[x]))
		if b.T != nil {
			b.T.RecordN("vldr/vcvt/strh(tail)", trace.ScalarCvt, 1, 0)
			b.scalarOverhead(1)
		}
	}
}

// convertSSE2 is the paper's hand-optimized SSE2 loop, transcribed from its
// Section III-A listing: 8 pixels per iteration, 6 SSE2 instructions.
func (o *Ops) convertSSE2(src, dst *image.Mat) {
	defer o.s.Session("convert", o.curSpan()).End()
	parFlat(o, len(src.F32Pix), convArgs{src.F32Pix, dst.S16Pix}, convSSE2Chunk)
}

func convSSE2Chunk(b *Ops, a convArgs, lo, hi int) {
	s, d := a.s, a.d
	u := b.s
	x := lo
	for ; x <= hi-8; x += 8 {
		src128 := u.LoaduPs(s[x:])
		srcInt128 := u.CvtpsEpi32(src128)
		src128 = u.LoaduPs(s[x+4:])
		src1Int128 := u.CvtpsEpi32(src128)
		src1Int128 = u.PacksEpi32(srcInt128, src1Int128)
		u.StoreuSi128S16(d[x:], src1Int128)
		u.Overhead(3, 1, 2)
	}
	for ; x < hi; x++ {
		d[x] = sat.NarrowInt32ToInt16(sat.RoundHalfToEvenIndefinite(float64(s[x])))
		if b.T != nil {
			b.T.RecordN("cvtss2si/clamp(tail)", trace.ScalarCvt, 1, 0)
			b.scalarOverhead(1)
		}
	}
}
