package cv

import (
	"errors"
	"fmt"
	"sync/atomic"
	"testing"
	"time"

	"simdstudy/internal/faults"
	"simdstudy/internal/image"
	"simdstudy/internal/obs"
	"simdstudy/internal/resilience"
	"simdstudy/internal/super"
	"simdstudy/internal/trace"
	"simdstudy/internal/vec"
)

// wedgeInjector is a fault injector whose first intrinsic call blocks for
// stallFor — simulating a band wedged mid-row — and passes values through
// untouched otherwise.
type wedgeInjector struct {
	stallFor time.Duration
	fired    atomic.Bool
	stalls   atomic.Int64
}

func (w *wedgeInjector) maybeWedge() {
	if w.fired.CompareAndSwap(false, true) {
		w.stalls.Add(1)
		time.Sleep(w.stallFor)
	}
}

func (w *wedgeInjector) V128(_ faults.Site, v vec.V128) vec.V128 { w.maybeWedge(); return v }
func (w *wedgeInjector) V64(_ faults.Site, v vec.V64) vec.V64    { w.maybeWedge(); return v }
func (w *wedgeInjector) Skew(faults.Site, int) int               { w.maybeWedge(); return 0 }

// panicInjector panics at every instrumented intrinsic — a poisoned SIMD
// path whose bands crash instead of computing.
type panicInjector struct{}

func (panicInjector) V128(faults.Site, vec.V128) vec.V128 { panic("poisoned lane") }
func (panicInjector) V64(faults.Site, vec.V64) vec.V64    { panic("poisoned lane") }
func (panicInjector) Skew(faults.Site, int) int           { panic("poisoned lane") }

// TestStallDetected proves the tentpole stall path at both worker counts:
// a wedged band is detected within the watchdog deadline, its siblings are
// cancelled through the stop flag, the entry point returns a typed
// *super.StallError, and the verdict reaches the kernel's breaker as a
// failure.
func TestStallDetected(t *testing.T) {
	for _, workers := range []int{1, 4} {
		t.Run(fmt.Sprintf("workers=%d", workers), func(t *testing.T) {
			const deadline = 25 * time.Millisecond
			reg := obs.NewRegistry()
			wd := super.NewWatchdog(super.WatchdogConfig{Deadline: deadline}, reg)
			defer wd.Stop()
			brk := resilience.NewBreakerSet(resilience.BreakerConfig{
				MinSamples: 1, FailureRate: 1,
			}, nil)

			o := NewOps(ISANEON, &trace.Counter{})
			o.SetParallel(ParallelConfig{Workers: workers, MinRowsPerBand: 1})
			o.SetWatchdog(wd)
			o.SetBreakers(brk)
			inj := &wedgeInjector{stallFor: 20 * deadline}
			o.SetFaultInjector(inj)

			src := image.Synthetic(image.Resolution{Name: "t", Width: 128, Height: 64}, 1)
			dst := image.NewMat(128, 64, image.U8)
			start := time.Now()
			err := o.GaussianBlur(src, dst)
			elapsed := time.Since(start)

			var se *super.StallError
			if !errors.As(err, &se) {
				t.Fatalf("GaussianBlur = %v, want *super.StallError", err)
			}
			if se.Op != "GaussianBlur" || se.ISA != "neon" || se.Deadline != deadline {
				t.Errorf("StallError = %+v", se)
			}
			// The wedged band sleeps 20x the deadline; returning well before it
			// would have finished proves detection happened at the deadline and
			// the siblings did not run the pass to completion behind it... the
			// call can only return once the wedged band wakes, so the bound is
			// sleep + scheduling slack, not sleep x rows.
			if elapsed > 5*inj.stallFor {
				t.Errorf("stall surfaced after %v; watchdog deadline %v", elapsed, deadline)
			}
			if wd.Stalls() == 0 {
				t.Error("watchdog recorded no stall")
			}
			// The stall was fed to the breaker as a failure (MinSamples 1,
			// FailureRate 1: a single failure opens it).
			if st := brk.State("GaussianBlur", "neon"); st != resilience.StateOpen {
				t.Errorf("breaker state = %v, want open", st)
			}
			snap := reg.Snapshot()
			if got := snap[`stall_total{isa="neon",kernel="GaussianBlur"}`]; got != 1 {
				t.Errorf("stall_total = %v, want 1", got)
			}
		})
	}
}

// TestStallAfterRecoveryBeatsKeepPassing: a watchdog-attached Ops whose
// bands keep beating never stalls, and output matches an unwatched run.
func TestWatchedRunMatchesUnwatched(t *testing.T) {
	for _, workers := range []int{1, 4} {
		wd := super.NewWatchdog(super.WatchdogConfig{Deadline: time.Hour}, nil)
		defer wd.Stop()

		res := image.Resolution{Name: "t", Width: 128, Height: 64}
		src := image.Synthetic(res, 2)

		plain := NewOps(ISANEON, &trace.Counter{})
		plain.SetParallel(ParallelConfig{Workers: workers, MinRowsPerBand: 1})
		want := image.NewMat(128, 64, image.U8)
		if err := plain.GaussianBlur(src, want); err != nil {
			t.Fatal(err)
		}

		o := NewOps(ISANEON, &trace.Counter{})
		o.SetParallel(ParallelConfig{Workers: workers, MinRowsPerBand: 1})
		o.SetWatchdog(wd)
		got := image.NewMat(128, 64, image.U8)
		if err := o.GaussianBlur(src, got); err != nil {
			t.Fatalf("workers=%d: %v", workers, err)
		}
		if d := want.DiffCount(got, 0); d != 0 {
			t.Fatalf("workers=%d: watched output differs in %d pixels", workers, d)
		}
		if wd.Stalls() != 0 {
			t.Fatalf("workers=%d: spurious stall", workers)
		}
	}
}

// TestPanicQuarantine proves the tentpole quarantine path: a (kernel, ISA)
// pair whose SIMD path panics repeatedly is quarantined by the supervisor —
// its breaker latches terminally stuck-open, and subsequent calls run the
// scalar, serial path and succeed.
func TestPanicQuarantine(t *testing.T) {
	for _, workers := range []int{1, 4} {
		t.Run(fmt.Sprintf("workers=%d", workers), func(t *testing.T) {
			reg := obs.NewRegistry()
			sup := super.NewSupervisor(super.QuarantinePolicy{MaxPanics: 2}, reg)
			brk := resilience.NewBreakerSet(resilience.BreakerConfig{}, nil)

			o := NewOps(ISANEON, &trace.Counter{})
			o.SetParallel(ParallelConfig{Workers: workers, MinRowsPerBand: 1})
			o.SetSupervisor(sup)
			o.SetBreakers(brk)
			o.SetFaultInjector(panicInjector{})

			src := image.Synthetic(image.Resolution{Name: "t", Width: 128, Height: 64}, 3)
			dst := image.NewMat(128, 64, image.U8)

			crash := func() (recovered any) {
				defer func() { recovered = recover() }()
				if err := o.GaussianBlur(src, dst); err != nil {
					t.Errorf("GaussianBlur returned error instead of panicking: %v", err)
				}
				return nil
			}

			// Panics below the policy threshold propagate (the caller still
			// sees the crash) but are counted.
			if r := crash(); r == nil {
				t.Fatal("first poisoned call did not panic")
			}
			if sup.Quarantined("GaussianBlur", "neon") {
				t.Fatal("quarantined below MaxPanics")
			}
			// The second panic crosses MaxPanics=2: quarantine + stuck-open.
			if r := crash(); r == nil {
				t.Fatal("second poisoned call did not panic")
			}
			if !sup.Quarantined("GaussianBlur", "neon") {
				t.Fatal("pair not quarantined after MaxPanics")
			}
			if st := brk.State("GaussianBlur", "neon"); st != resilience.StateStuckOpen {
				t.Errorf("breaker state = %v, want stuck-open", st)
			}

			// Quarantined: the call is routed scalar+serial before the injector
			// can fire, so it now succeeds — graceful demotion, not an outage.
			if err := o.GaussianBlur(src, dst); err != nil {
				t.Fatalf("quarantined call failed: %v", err)
			}
			// And its output matches a plain scalar run.
			ref := NewOps(ISANEON, nil)
			ref.SetUseOptimized(false)
			want := image.NewMat(128, 64, image.U8)
			if err := ref.GaussianBlur(src, want); err != nil {
				t.Fatal(err)
			}
			if d := want.DiffCount(dst, 0); d != 0 {
				t.Errorf("quarantined output differs from scalar in %d pixels", d)
			}

			snap := reg.Snapshot()
			if got := snap[`quarantine_total{isa="neon",kernel="GaussianBlur"}`]; got != 1 {
				t.Errorf("quarantine_total = %v, want 1", got)
			}
			if got := snap[`worker_panics_total{isa="neon",kernel="GaussianBlur"}`]; got != 2 {
				t.Errorf("worker_panics_total = %v, want 2", got)
			}

			// Other kernels of the same Ops are not quarantined.
			o.SetFaultInjector(nil)
			dst2 := image.NewMat(128, 64, image.U8)
			if err := o.Threshold(src, dst2, 128, 255, ThreshBinary); err != nil {
				t.Fatalf("unrelated kernel failed: %v", err)
			}
			if sup.Quarantined("Threshold", "neon") {
				t.Error("quarantine leaked to Threshold")
			}
		})
	}
}

// TestHalfOpenProbePanicReleasesBudget is the regression test for the probe
// accounting hole: a half-open breaker admits one probe call; if that call's
// goroutine panics, the probe slot must be handed back — otherwise the
// breaker wedges half-open with its budget consumed and the pair can never
// re-arm.
func TestHalfOpenProbePanicReleasesBudget(t *testing.T) {
	now := time.Unix(1000, 0)
	clock := func() time.Time { return now }
	brk := resilience.NewBreakerSet(resilience.BreakerConfig{
		MinSamples: 1, FailureRate: 1, OpenFor: time.Second,
		ProbeBudget: 1, Clock: clock,
	}, nil)

	o := NewOps(ISANEON, &trace.Counter{})
	o.SetGuarded(true)
	o.SetBreakers(brk)

	// Trip the breaker open, then lapse the cooldown to half-open.
	brk.Record("GaussianBlur", "neon", false)
	now = now.Add(2 * time.Second)
	if st := brk.State("GaussianBlur", "neon"); st != resilience.StateHalfOpen {
		t.Fatalf("breaker state = %v, want half-open", st)
	}

	// The probe call's SIMD path panics mid-kernel.
	o.SetFaultInjector(panicInjector{})
	src := image.Synthetic(image.Resolution{Name: "t", Width: 64, Height: 32}, 4)
	dst := image.NewMat(64, 32, image.U8)
	func() {
		defer func() {
			if recover() == nil {
				t.Fatal("probe call did not panic")
			}
		}()
		_ = o.GaussianBlur(src, dst)
	}()

	// Still half-open (the panic produced no verdict), and — the regression —
	// the probe budget is whole again: the next call is admitted.
	if st := brk.State("GaussianBlur", "neon"); st != resilience.StateHalfOpen {
		t.Fatalf("breaker state after panic = %v, want half-open", st)
	}
	if !brk.Allow("GaussianBlur", "neon") {
		t.Fatal("probe slot leaked: half-open breaker refuses the next probe")
	}
	brk.Release("GaussianBlur", "neon")

	// And a clean probe call closes the breaker end to end.
	o.SetFaultInjector(nil)
	if err := o.GaussianBlur(src, dst); err != nil {
		t.Fatalf("clean probe: %v", err)
	}
	if st := brk.State("GaussianBlur", "neon"); st != resilience.StateClosed {
		t.Fatalf("breaker state after clean probe = %v, want closed", st)
	}
}
