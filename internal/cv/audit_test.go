package cv

import (
	"strings"
	"testing"
	"time"

	"simdstudy/internal/faults"
	"simdstudy/internal/image"
	"simdstudy/internal/integrity"
	"simdstudy/internal/obs"
	"simdstudy/internal/resilience"
	"simdstudy/internal/vec"
)

func scalarThreshold(t *testing.T, isa ISA, src *image.Mat) *image.Mat {
	t.Helper()
	ref := NewOps(isa, nil)
	ref.SetUseOptimized(false)
	want := image.NewMat(src.Width, src.Height, image.U8)
	if err := ref.Threshold(src, want, 100, 255, ThreshTrunc); err != nil {
		t.Fatal(err)
	}
	return want
}

// TestAuditRateZeroNoEffect: an attached auditor at rate 0 must neither
// sample nor perturb output.
func TestAuditRateZeroNoEffect(t *testing.T) {
	src := image.Synthetic(image.Resolution{Width: 64, Height: 48}, 1)
	for _, isa := range []ISA{ISANEON, ISASSE2} {
		plain := NewOps(isa, nil)
		want := image.NewMat(64, 48, image.U8)
		if err := plain.Threshold(src, want, 100, 255, ThreshTrunc); err != nil {
			t.Fatal(err)
		}

		aud := integrity.NewAuditor(integrity.AuditConfig{Rate: 0})
		o := NewOps(isa, nil)
		o.SetAuditor(aud)
		got := image.NewMat(64, 48, image.U8)
		if err := o.Threshold(src, got, 100, 255, ThreshTrunc); err != nil {
			t.Fatal(err)
		}
		if !want.EqualTo(got) {
			t.Fatalf("%v: rate-0 audit changed output", isa)
		}
		if aud.Sampled() != 0 || aud.Skipped() != 0 {
			t.Fatalf("%v: rate-0 auditor drew samples", isa)
		}
	}
}

// TestAuditRateOneDetectsAllCorruptedOutputs is the acceptance-criterion
// core: with silent bit flips injected into the SIMD units and no guard,
// auditing at rate 1.0 must flag exactly the calls whose output actually
// diverged from the scalar reference — 100% of corrupted outputs, zero
// false positives — and must repair every one of them.
func TestAuditRateOneDetectsAllCorruptedOutputs(t *testing.T) {
	const calls = 40
	res := image.Resolution{Width: 64, Height: 48}
	for _, isa := range []ISA{ISANEON, ISASSE2} {
		srcs := make([]*image.Mat, calls)
		refs := make([]*image.Mat, calls)
		for i := range srcs {
			srcs[i] = image.Synthetic(res, uint64(i+1))
			refs[i] = scalarThreshold(t, isa, srcs[i])
		}
		planCfg := faults.Config{Rate: 5e-4, Seed: 11, Kinds: []faults.Kind{faults.KindBitFlip}}

		// Ground truth: the same call sequence, same injection plan, no
		// auditor. Which outputs actually came out corrupted?
		truth := NewOps(isa, nil)
		truth.SetFaultInjector(faults.NewPlan(planCfg))
		corrupted := map[int]bool{}
		for i, src := range srcs {
			dst := image.NewMat(res.Width, res.Height, image.U8)
			if err := truth.Threshold(src, dst, 100, 255, ThreshTrunc); err != nil {
				t.Fatal(err)
			}
			if !refs[i].EqualTo(dst) {
				corrupted[i] = true
			}
		}
		if len(corrupted) == 0 {
			t.Fatalf("%v: injection produced no corrupted outputs; test is vacuous", isa)
		}

		// Audited run: identical sequence, fresh identical plan, rate 1.
		aud := integrity.NewAuditor(integrity.AuditConfig{Rate: 1})
		o := NewOps(isa, nil)
		o.SetAuditor(aud)
		o.SetFaultInjector(faults.NewPlan(planCfg))
		for i, src := range srcs {
			dst := image.NewMat(res.Width, res.Height, image.U8)
			before := aud.Mismatches()
			if err := o.Threshold(src, dst, 100, 255, ThreshTrunc); err != nil {
				t.Fatal(err)
			}
			caught := aud.Mismatches() > before
			if caught != corrupted[i] {
				t.Fatalf("%v call %d: corrupted=%v but audit caught=%v",
					isa, i, corrupted[i], caught)
			}
			if !refs[i].EqualTo(dst) {
				t.Fatalf("%v call %d: output not repaired (%d diff pixels)",
					isa, i, refs[i].DiffCount(dst, 0))
			}
		}
		if got := int(aud.Mismatches()); got != len(corrupted) {
			t.Fatalf("%v: audit caught %d, ground truth has %d corrupted outputs",
				isa, got, len(corrupted))
		}
		if aud.Sampled() != calls {
			t.Fatalf("%v: sampled %d of %d calls at rate 1", isa, aud.Sampled(), calls)
		}
	}
}

// persistentCorruptor corrupts every V128 at one site. Unlike corruptor it
// holds no mutable state, so it is safe to share across band workers.
type persistentCorruptor struct{ site faults.Site }

func (c persistentCorruptor) V128(site faults.Site, v vec.V128) vec.V128 {
	if site == c.site {
		v[0] ^= 0x40
	}
	return v
}
func (c persistentCorruptor) V64(site faults.Site, v vec.V64) vec.V64 { return v }
func (c persistentCorruptor) Skew(site faults.Site, slack int) int    { return 0 }

// TestAuditParallelBandPath: audits must also cover the pooled row-banded
// dispatch — the simd closure runs banded, the referee serial.
func TestAuditParallelBandPath(t *testing.T) {
	src := image.Synthetic(image.Resolution{Width: 128, Height: 96}, 9)
	want := scalarThreshold(t, ISANEON, src)

	aud := integrity.NewAuditor(integrity.AuditConfig{Rate: 1})
	o := NewOps(ISANEON, nil)
	o.SetParallel(ParallelConfig{Workers: 4, MinRowsPerBand: 8})
	o.SetAuditor(aud)
	o.SetFaultInjector(persistentCorruptor{site: faults.SiteALU})
	dst := image.NewMat(128, 96, image.U8)
	if err := o.Threshold(src, dst, 100, 255, ThreshTrunc); err != nil {
		t.Fatal(err)
	}
	if aud.Mismatches() == 0 {
		t.Fatal("persistent corruption on the banded path not caught")
	}
	if !want.EqualTo(dst) {
		t.Fatalf("banded output not repaired (%d diff pixels)", want.DiffCount(dst, 0))
	}
}

// TestAuditGuardedPiggybackRepairsSpotCheckMiss: in guarded mode the audit
// rides the guard's referee, and a divergence confined to rows the
// spot-check never samples must still be caught and repaired by the
// full-window audit compare.
func TestAuditGuardedPiggybackRepairsSpotCheckMiss(t *testing.T) {
	src := image.Synthetic(image.Resolution{Width: 64, Height: 48}, 6)
	want := scalarThreshold(t, ISANEON, src)

	// One transient corruption around the 100th ALU vector — far past row 0,
	// the only row a SampleRows=1 spot-check examines.
	mkCorr := func() *corruptor { return &corruptor{site: faults.SiteALU, every: 100, remaining: 1} }

	// Ground truth: the same corruption, unguarded and unaudited, must
	// actually corrupt the output somewhere outside row 0.
	truth := NewOps(ISANEON, nil)
	truth.SetFaultInjector(mkCorr())
	raw := image.NewMat(64, 48, image.U8)
	if err := truth.Threshold(src, raw, 100, 255, ThreshTrunc); err != nil {
		t.Fatal(err)
	}
	if want.EqualTo(raw) {
		t.Skip("injected flip was masked by this kernel; nothing to detect")
	}
	for i := 0; i < 64; i++ {
		if raw.U8Pix[i] != want.U8Pix[i] {
			t.Fatal("corruption landed in row 0; pick a later site for this test")
		}
	}

	aud := integrity.NewAuditor(integrity.AuditConfig{Rate: 1})
	g := NewOps(ISANEON, nil)
	g.SetGuardPolicy(GuardPolicy{SampleRows: 1, MaxRetries: 0, KillAfter: -1})
	g.SetAuditor(aud)
	g.SetFaultInjector(mkCorr())
	dst := image.NewMat(64, 48, image.U8)
	if err := g.Threshold(src, dst, 100, 255, ThreshTrunc); err != nil {
		t.Fatal(err)
	}
	if len(g.Faults()) != 0 {
		t.Fatalf("spot-check should have missed this divergence, got %v", g.Faults())
	}
	if aud.Mismatches() != 1 {
		t.Fatalf("piggyback audit mismatches = %d, want 1", aud.Mismatches())
	}
	if !want.EqualTo(dst) {
		t.Fatalf("guard-clean path did not repair the audited divergence (%d diff pixels)",
			want.DiffCount(dst, 0))
	}
}

// TestAuditScoreboardTripsQuarantine: a burst of audit mismatches on one
// (kernel, ISA) pair must trip the scoreboard, which forces that pair's
// breaker stuck-open — while sibling kernels on the same unit keep closed
// breakers and full SIMD service — and subsequent traffic transparently
// serves scalar results.
func TestAuditScoreboardTripsQuarantine(t *testing.T) {
	src := image.Synthetic(image.Resolution{Width: 64, Height: 48}, 7)
	want := scalarThreshold(t, ISANEON, src)

	// Breaker tuned so it cannot open naturally before the scoreboard's
	// MinSamples=8 trip: the trip path under test is scoreboard →
	// ForceStuckOpen, not the ordinary failure window.
	brk := resilience.NewBreakerSet(resilience.BreakerConfig{
		Window: 64, MinSamples: 64, FailureRate: 1.0,
	}, nil)
	sb := integrity.NewScoreboard(integrity.ScoreboardConfig{}, nil)
	sb.OnTrip(func(k, isa string) { brk.ForceStuckOpen(k, isa) })
	aud := integrity.NewAuditor(integrity.AuditConfig{Rate: 1})
	aud.SetScoreboard(sb)

	o := NewOps(ISANEON, nil)
	o.SetBreakers(brk)
	o.SetAuditor(aud)
	o.SetFaultInjector(&corruptor{site: faults.SiteALU, remaining: -1})

	dst := image.NewMat(64, 48, image.U8)
	for i := 0; i < 10; i++ {
		if err := o.Threshold(src, dst, 100, 255, ThreshTrunc); err != nil {
			t.Fatal(err)
		}
		// Mirror the serving layer: the per-Ops useOptimized latch is
		// re-armed between requests; per-pair demotion is the breaker's job.
		o.ResetFaults()
	}

	if !sb.Tripped("Threshold", "neon") {
		t.Fatalf("mismatch burst did not trip the scoreboard (score %v)", sb.Score("Threshold", "neon"))
	}
	if st := brk.State("Threshold", "neon"); st != resilience.StateStuckOpen {
		t.Fatalf("tripped pair's breaker is %v, want stuck-open", st)
	}
	if st := brk.State("GaussianBlur", "neon"); st != resilience.StateClosed {
		t.Fatalf("sibling kernel's breaker is %v, want closed", st)
	}

	// The poisonous unit keeps corrupting, but the quarantined pair now runs
	// scalar: correct bytes, no audits drawn, injector never consulted.
	sampledBefore := aud.Sampled()
	got := image.NewMat(64, 48, image.U8)
	if err := o.Threshold(src, got, 100, 255, ThreshTrunc); err != nil {
		t.Fatal(err)
	}
	if !want.EqualTo(got) {
		t.Fatalf("quarantined pair served corrupt bytes (%d diff pixels)", want.DiffCount(got, 0))
	}
	if aud.Sampled() != sampledBefore {
		t.Fatal("scalar-demoted call was audited")
	}

	// A sibling kernel with a healthy path still runs SIMD under audit on
	// the same Ops (drop the injector: the defect under test is
	// kernel-specific, not unit-wide).
	o.SetFaultInjector(nil)
	blurDst := image.NewMat(64, 48, image.U8)
	if err := o.GaussianBlur(src, blurDst); err != nil {
		t.Fatal(err)
	}
	if st := brk.State("GaussianBlur", "neon"); st != resilience.StateClosed {
		t.Fatalf("clean sibling opened: %v", st)
	}
	blurRef := NewOps(ISANEON, nil)
	blurRef.SetUseOptimized(false)
	blurWant := image.NewMat(64, 48, image.U8)
	if err := blurRef.GaussianBlur(src, blurWant); err != nil {
		t.Fatal(err)
	}
	if !blurWant.EqualTo(blurDst) {
		t.Fatal("sibling SIMD output wrong")
	}
}

// TestAuditNaturalBreakerRecovery: sub-scoreboard corruption opens the
// breaker through the ordinary failure window, and clean audits on
// half-open probes close it again — the existing recovery protocol, driven
// by audit verdicts instead of guard verdicts.
func TestAuditNaturalBreakerRecovery(t *testing.T) {
	src := image.Synthetic(image.Resolution{Width: 64, Height: 48}, 8)
	now := time.Unix(0, 0)
	clock := func() time.Time { return now }
	brk := resilience.NewBreakerSet(resilience.BreakerConfig{
		MinSamples: 4, FailureRate: 0.5, OpenFor: 5 * time.Second, Clock: clock,
	}, nil)
	aud := integrity.NewAuditor(integrity.AuditConfig{Rate: 1})

	o := NewOps(ISASSE2, nil)
	o.SetBreakers(brk)
	o.SetAuditor(aud)
	o.SetFaultInjector(&corruptor{site: faults.SiteALU, remaining: -1})

	dst := image.NewMat(64, 48, image.U8)
	for i := 0; i < 4; i++ {
		if err := o.Threshold(src, dst, 100, 255, ThreshTrunc); err != nil {
			t.Fatal(err)
		}
		o.ResetFaults()
	}
	if st := brk.State("Threshold", "sse2"); st != resilience.StateOpen {
		t.Fatalf("breaker is %v after 4 audit failures, want open", st)
	}

	// Open: calls run scalar, no audits drawn.
	sampled := aud.Sampled()
	if err := o.Threshold(src, dst, 100, 255, ThreshTrunc); err != nil {
		t.Fatal(err)
	}
	if aud.Sampled() != sampled {
		t.Fatal("open breaker still admitted an audited SIMD call")
	}

	// The fault clears; after the cooldown a half-open probe runs under
	// audit, comes back clean, and closes the breaker.
	o.SetFaultInjector(nil)
	now = now.Add(6 * time.Second)
	if err := o.Threshold(src, dst, 100, 255, ThreshTrunc); err != nil {
		t.Fatal(err)
	}
	if st := brk.State("Threshold", "sse2"); st != resilience.StateClosed {
		t.Fatalf("clean audited probe left breaker %v, want closed", st)
	}
	if aud.Mismatches() != 4 {
		t.Fatalf("mismatches = %d, want the 4 pre-recovery failures", aud.Mismatches())
	}
}

// TestAuditRateZeroMetricsByteIdentical pins the zero-cost-off contract on
// the metrics side: a workload run with a rate-0 auditor attached renders a
// WritePrometheus output whose pre-existing families are byte-identical to
// the same workload without the auditor, and no audit families appear.
// Wall-clock histogram observations (kernel_wall_seconds buckets and sum)
// are inherently timing-dependent and excluded; their sample counts are not.
func TestAuditRateZeroMetricsByteIdentical(t *testing.T) {
	run := func(withAuditor bool) string {
		reg := obs.NewRegistry()
		o := NewOps(ISANEON, nil)
		o.SetObserver(reg)
		o.SetGuarded(true)
		if withAuditor {
			o.SetAuditor(integrity.NewAuditor(integrity.AuditConfig{Rate: 0, Seed: 1}))
		}
		src := image.Synthetic(image.Resolution{Width: 64, Height: 48}, 1)
		dst := image.NewMat(64, 48, image.U8)
		for i := 0; i < 5; i++ {
			if err := o.Threshold(src, dst, 100, 255, ThreshTrunc); err != nil {
				t.Fatal(err)
			}
		}
		var buf strings.Builder
		if err := reg.WritePrometheus(&buf); err != nil {
			t.Fatal(err)
		}
		return buf.String()
	}
	deterministic := func(out string) string {
		var keep []string
		for _, line := range strings.Split(out, "\n") {
			if strings.Contains(line, "wall_seconds_bucket") ||
				strings.Contains(line, "wall_seconds_sum") {
				continue
			}
			keep = append(keep, line)
		}
		return strings.Join(keep, "\n")
	}
	without, with := run(false), run(true)
	if deterministic(without) != deterministic(with) {
		t.Errorf("rate-0 auditor changed pre-existing metric families:\nwithout:\n%s\nwith:\n%s",
			deterministic(without), deterministic(with))
	}
	for _, family := range []string{"audit_", "corruption_", "integrity_", "plane_"} {
		if strings.Contains(with, family) {
			t.Errorf("rate-0 auditor emitted %s* series:\n%s", family, with)
		}
	}
}
