package cv

import (
	"testing"

	"simdstudy/internal/faults"
	"simdstudy/internal/image"
	"simdstudy/internal/integrity"
	"simdstudy/internal/obs"
	"simdstudy/internal/trace"
)

// TestFusedMatchesStaged is the fusion acceptance core: for both fused
// pipelines, across strip heights (including one-row strips and a strip
// covering the whole image), band counts and all three ISAs, the fused
// sweep must produce byte-identical output planes AND a bit-identical
// merged instruction trace (classes, bytes, per-opcode counts) versus the
// staged path. Odd widths exercise the vector/tail splits.
func TestFusedMatchesStaged(t *testing.T) {
	type kernelCase struct {
		name string
		run  func(o *Ops, src, dst *image.Mat) error
	}
	kernels := []kernelCase{
		{"Canny", func(o *Ops, src, dst *image.Mat) error { return o.Canny(src, dst, 60, 200) }},
		{"DetectEdges", func(o *Ops, src, dst *image.Mat) error { return o.DetectEdges(src, dst, 90) }},
	}
	sizes := []image.Resolution{{Width: 61, Height: 53}, {Width: 130, Height: 47}, {Width: 64, Height: 64}}
	for _, kc := range kernels {
		for _, res := range sizes {
			src := image.Synthetic(res, 7)
			for _, isa := range []ISA{ISAScalar, ISANEON, ISASSE2} {
				for _, workers := range []int{1, 2, 4, 7} {
					staged := NewOps(isa, &trace.Counter{})
					staged.SetParallel(ParallelConfig{Workers: workers, MinRowsPerBand: 1})
					want := image.NewMat(res.Width, res.Height, image.U8)
					if err := kc.run(staged, src, want); err != nil {
						t.Fatal(err)
					}
					wantSum := staged.T.Summary()
					for _, strip := range []int{3, 8, 17, res.Height} {
						fused := NewOps(isa, &trace.Counter{})
						fused.SetParallel(ParallelConfig{Workers: workers, MinRowsPerBand: 1})
						fused.SetFuse(FuseConfig{Enabled: true, StripRows: strip})
						got := image.NewMat(res.Width, res.Height, image.U8)
						if err := kc.run(fused, src, got); err != nil {
							t.Fatal(err)
						}
						if !want.EqualTo(got) {
							t.Fatalf("%s %dx%d %v workers=%d strip=%d: fused output diverges from staged",
								kc.name, res.Width, res.Height, isa, workers, strip)
						}
						if gotSum := fused.T.Summary(); gotSum != wantSum {
							t.Fatalf("%s %dx%d %v workers=%d strip=%d: trace counts diverge\nstaged:\n%s\nfused:\n%s",
								kc.name, res.Width, res.Height, isa, workers, strip, wantSum, gotSum)
						}
					}
				}
			}
		}
	}
}

// TestFusedAutoStripRows: with StripRows 0 the geometry is sized from the
// configured cache model and the output must still match staged.
func TestFusedAutoStripRows(t *testing.T) {
	res := image.Resolution{Width: 320, Height: 240}
	src := image.Synthetic(res, 3)
	staged := NewOps(ISANEON, nil)
	want := image.NewMat(res.Width, res.Height, image.U8)
	if err := staged.Canny(src, want, 60, 200); err != nil {
		t.Fatal(err)
	}
	fused := NewOps(ISANEON, nil)
	fused.SetFuse(FuseConfig{Enabled: true})
	got := image.NewMat(res.Width, res.Height, image.U8)
	if err := fused.Canny(src, got, 60, 200); err != nil {
		t.Fatal(err)
	}
	if !want.EqualTo(got) {
		t.Fatal("auto-sized fused Canny diverges from staged")
	}
	g, err := fused.fusedGeometry("Canny", res.Width, res.Height)
	if err != nil {
		t.Fatal(err)
	}
	if g.Strips < 2 {
		t.Fatalf("auto sizing chose %d strips for %dx%d; expected a real sweep", g.Strips, res.Width, res.Height)
	}
}

// TestFusedGuarded: guarded fused dispatch spot-checks the fused output
// against the staged scalar referee and stays correct.
func TestFusedGuarded(t *testing.T) {
	res := image.Resolution{Width: 96, Height: 72}
	src := image.Synthetic(res, 5)
	for _, isa := range []ISA{ISANEON, ISASSE2} {
		staged := NewOps(isa, nil)
		want := image.NewMat(res.Width, res.Height, image.U8)
		if err := staged.Canny(src, want, 60, 200); err != nil {
			t.Fatal(err)
		}
		o := NewOps(isa, nil)
		o.SetGuarded(true)
		o.SetFuse(FuseConfig{Enabled: true, StripRows: 8})
		got := image.NewMat(res.Width, res.Height, image.U8)
		if err := o.Canny(src, got, 60, 200); err != nil {
			t.Fatal(err)
		}
		if !want.EqualTo(got) {
			t.Fatalf("%v: guarded fused Canny diverges", isa)
		}
		if err := o.DetectEdges(src, got, 90); err != nil {
			t.Fatal(err)
		}
		if err := staged.DetectEdges(src, want, 90); err != nil {
			t.Fatal(err)
		}
		if !want.EqualTo(got) {
			t.Fatalf("%v: guarded fused DetectEdges diverges", isa)
		}
	}
}

// TestFusedAuditRepairsCorruption: with SIMD bit flips injected and the
// auditor sampling every call, the per-strip audits must detect the
// corrupted sweeps, repair the output from the staged scalar reference,
// and report the corruption to the scoreboard.
func TestFusedAuditRepairsCorruption(t *testing.T) {
	const calls = 30
	res := image.Resolution{Width: 64, Height: 48}
	for _, isa := range []ISA{ISANEON, ISASSE2} {
		srcs := make([]*image.Mat, calls)
		refs := make([]*image.Mat, calls)
		refOps := NewOps(isa, nil)
		refOps.SetUseOptimized(false)
		for i := range srcs {
			srcs[i] = image.Synthetic(res, uint64(i+1))
			refs[i] = image.NewMat(res.Width, res.Height, image.U8)
			if err := refOps.Canny(srcs[i], refs[i], 60, 200); err != nil {
				t.Fatal(err)
			}
		}
		planCfg := faults.Config{Rate: 5e-4, Seed: 11, Kinds: []faults.Kind{faults.KindBitFlip}}

		// Ground truth: same sequence, same plan, no auditor — which
		// fused outputs actually come out corrupted?
		truth := NewOps(isa, nil)
		truth.SetFaultInjector(faults.NewPlan(planCfg))
		truth.SetFuse(FuseConfig{Enabled: true, StripRows: 8})
		corrupted := 0
		for i, src := range srcs {
			dst := image.NewMat(res.Width, res.Height, image.U8)
			if err := truth.Canny(src, dst, 60, 200); err != nil {
				t.Fatal(err)
			}
			if !refs[i].EqualTo(dst) {
				corrupted++
			}
		}
		if corrupted == 0 {
			t.Fatalf("%v: injection produced no corrupted fused outputs; test is vacuous", isa)
		}

		aud := integrity.NewAuditor(integrity.AuditConfig{Rate: 1})
		reg := obs.NewRegistry()
		o := NewOps(isa, nil)
		o.Obs = reg
		o.SetAuditor(aud)
		o.SetFaultInjector(faults.NewPlan(planCfg))
		o.SetFuse(FuseConfig{Enabled: true, StripRows: 8})
		for i, src := range srcs {
			dst := image.NewMat(res.Width, res.Height, image.U8)
			if err := o.Canny(src, dst, 60, 200); err != nil {
				t.Fatal(err)
			}
			if !refs[i].EqualTo(dst) {
				t.Fatalf("%v call %d: audited fused output not repaired", isa, i)
			}
		}
		if aud.Mismatches() == 0 {
			t.Fatalf("%v: auditor observed no mismatches despite %d corrupted sweeps", isa, corrupted)
		}
	}
}

// TestFusedBytesSavedMetric: the fused path must report intermediate-plane
// bytes saved, and the counter must be monotonic across calls.
func TestFusedBytesSavedMetric(t *testing.T) {
	res := image.Resolution{Width: 320, Height: 240}
	src := image.Synthetic(res, 3)
	reg := obs.NewRegistry()
	o := NewOps(ISANEON, nil)
	o.Obs = reg
	o.SetFuse(FuseConfig{Enabled: true, StripRows: 16})
	dst := image.NewMat(res.Width, res.Height, image.U8)
	if err := o.Canny(src, dst, 60, 200); err != nil {
		t.Fatal(err)
	}
	c := reg.Counter("fused_plane_bytes_saved_total", obs.L("kernel", "Canny"), obs.L("isa", "neon"))
	after1 := c.Value()
	if after1 == 0 {
		t.Fatal("fused Canny saved no intermediate-plane bytes")
	}
	// Well over half the staged planes' 10*w*h bytes must be saved with
	// 16-row strips on a 240-row image.
	if min := uint64(5 * res.Width * res.Height); after1 < min {
		t.Fatalf("saved %d bytes, want at least %d", after1, min)
	}
	if err := o.DetectEdges(src, dst, 90); err != nil {
		t.Fatal(err)
	}
	if err := o.Canny(src, dst, 60, 200); err != nil {
		t.Fatal(err)
	}
	if v := c.Value(); v != 2*after1 {
		t.Fatalf("counter not monotonic per call: %d then %d", after1, v)
	}
	e := reg.Counter("fused_plane_bytes_saved_total", obs.L("kernel", "DetectEdges"), obs.L("isa", "neon"))
	if e.Value() == 0 {
		t.Fatal("fused DetectEdges saved no intermediate-plane bytes")
	}
}
