package cv

import (
	"testing"

	"simdstudy/internal/faults"
	"simdstudy/internal/image"
	"simdstudy/internal/trace"
	"simdstudy/internal/vec"
)

// corruptor is a test Injector that flips a low byte of every Nth V128 at
// one site. remaining < 0 means corrupt forever (a hard fault); otherwise
// it stops after that many corruptions (a transient fault).
type corruptor struct {
	site      faults.Site
	every     int
	seen      int
	remaining int
}

func (c *corruptor) V128(site faults.Site, v vec.V128) vec.V128 {
	if site != c.site || c.remaining == 0 {
		return v
	}
	c.seen++
	if c.every > 1 && c.seen%c.every != 0 {
		return v
	}
	if c.remaining > 0 {
		c.remaining--
	}
	v[0] ^= 0x40
	return v
}

func (c *corruptor) V64(site faults.Site, v vec.V64) vec.V64 { return v }
func (c *corruptor) Skew(site faults.Site, slack int) int    { return 0 }

func guardKernels(t *testing.T) map[string]func(o *Ops, src, dst *image.Mat) error {
	t.Helper()
	return map[string]func(o *Ops, src, dst *image.Mat) error{
		"Threshold": func(o *Ops, src, dst *image.Mat) error {
			return o.Threshold(src, dst, 100, 255, ThreshTrunc)
		},
		"GaussianBlur":  (*Ops).GaussianBlur,
		"MedianBlur3x3": (*Ops).MedianBlur3x3,
		"DetectEdges": func(o *Ops, src, dst *image.Mat) error {
			return o.DetectEdges(src, dst, 80)
		},
	}
}

// TestGuardedNoFaultIdenticalOutput: with no injector, guarded mode must
// change no pixel relative to the plain SIMD path.
func TestGuardedNoFaultIdenticalOutput(t *testing.T) {
	src := image.Synthetic(image.Resolution{Width: 64, Height: 48}, 1)
	for _, isa := range []ISA{ISANEON, ISASSE2} {
		for name, kern := range guardKernels(t) {
			plain := NewOps(isa, nil)
			want := image.NewMat(64, 48, image.U8)
			if err := kern(plain, src, want); err != nil {
				t.Fatalf("%v/%s plain: %v", isa, name, err)
			}

			g := NewOps(isa, nil)
			g.SetGuarded(true)
			got := image.NewMat(64, 48, image.U8)
			if err := kern(g, src, got); err != nil {
				t.Fatalf("%v/%s guarded: %v", isa, name, err)
			}
			if !want.EqualTo(got) {
				t.Errorf("%v/%s: guarded output differs in %d pixels",
					isa, name, want.DiffCount(got, 0))
			}
			if n := len(g.Faults()); n != 0 {
				t.Errorf("%v/%s: %d spurious fault records: %v", isa, name, n, g.Faults())
			}
		}
	}
}

// TestGuardDetectsAndFallsBack: a persistent lane corruption must be
// detected, survive the retry, and end in a scalar fallback whose output
// equals the scalar reference.
func TestGuardDetectsAndFallsBack(t *testing.T) {
	src := image.Synthetic(image.Resolution{Width: 64, Height: 48}, 2)
	for _, isa := range []ISA{ISANEON, ISASSE2} {
		ref := NewOps(isa, nil)
		ref.SetUseOptimized(false)
		want := image.NewMat(64, 48, image.U8)
		if err := ref.Threshold(src, want, 100, 255, ThreshTrunc); err != nil {
			t.Fatal(err)
		}

		tr := &trace.Counter{}
		g := NewOps(isa, tr)
		g.SetGuardPolicy(GuardPolicy{SampleRows: 48}) // check every row
		g.SetFaultInjector(&corruptor{site: faults.SiteALU, remaining: -1})
		got := image.NewMat(64, 48, image.U8)
		if err := g.Threshold(src, got, 100, 255, ThreshTrunc); err != nil {
			t.Fatalf("%v: %v", isa, err)
		}

		if !want.EqualTo(got) {
			t.Fatalf("%v: fallback output differs from scalar in %d pixels",
				isa, want.DiffCount(got, 0))
		}
		actions := map[FaultAction]int{}
		for _, f := range g.Faults() {
			if f.Kernel != "Threshold" || f.ISA != isa {
				t.Errorf("%v: fault record mislabeled: %v", isa, f)
			}
			actions[f.Action]++
		}
		if actions[ActionDetected] == 0 {
			t.Errorf("%v: corruption not detected: %v", isa, g.Faults())
		}
		if actions[ActionFallback] == 0 || g.Fallbacks() != 1 {
			t.Errorf("%v: no fallback recorded (fallbacks=%d): %v", isa, g.Fallbacks(), g.Faults())
		}
		if tr.EventCount("fault.detected") == 0 || tr.EventCount("fault.fallback") == 0 {
			t.Errorf("%v: trace events missing: %v", isa, tr.Events())
		}
	}
}

// TestGuardRetryRecovers: a transient fault (one corruption, then clean)
// must resolve via retry, with no fallback and untouched SIMD output.
func TestGuardRetryRecovers(t *testing.T) {
	src := image.Synthetic(image.Resolution{Width: 64, Height: 48}, 3)
	g := NewOps(ISASSE2, nil)
	g.SetGuardPolicy(GuardPolicy{SampleRows: 48, MaxRetries: 1})
	g.SetFaultInjector(&corruptor{site: faults.SiteALU, remaining: 1})
	dst := image.NewMat(64, 48, image.U8)
	if err := g.Threshold(src, dst, 100, 255, ThreshTrunc); err != nil {
		t.Fatal(err)
	}

	var sawDetect, sawRecover bool
	for _, f := range g.Faults() {
		switch f.Action {
		case ActionDetected:
			sawDetect = true
		case ActionRetryRecovered:
			sawRecover = true
		case ActionFallback:
			t.Errorf("transient fault should not reach fallback: %v", f)
		}
	}
	if !sawDetect || !sawRecover {
		t.Fatalf("want detect+retry-recover, got %v", g.Faults())
	}

	plain := NewOps(ISASSE2, nil)
	want := image.NewMat(64, 48, image.U8)
	if err := plain.Threshold(src, want, 100, 255, ThreshTrunc); err != nil {
		t.Fatal(err)
	}
	if !want.EqualTo(dst) {
		t.Fatal("recovered output should match the clean SIMD output")
	}
}

// TestGuardKillSwitch: repeated fallbacks must flip useOptimized off, after
// which kernels run scalar (and record no further faults).
func TestGuardKillSwitch(t *testing.T) {
	src := image.Synthetic(image.Resolution{Width: 64, Height: 48}, 4)
	g := NewOps(ISANEON, nil)
	g.SetGuardPolicy(GuardPolicy{SampleRows: 48, KillAfter: 2})
	g.SetFaultInjector(&corruptor{site: faults.SiteALU, remaining: -1})
	dst := image.NewMat(64, 48, image.U8)

	for i := 0; i < 3; i++ {
		if err := g.MedianBlur3x3(src, dst); err != nil {
			t.Fatal(err)
		}
	}
	if g.UseOptimized() {
		t.Fatal("kill-switch did not disable optimized paths after repeated fallbacks")
	}
	var tripped bool
	for _, f := range g.Faults() {
		if f.Action == ActionKillSwitch {
			tripped = true
		}
	}
	if !tripped {
		t.Fatalf("no kill-switch record: %v", g.Faults())
	}

	// Scalar-only now: the run is clean and adds no fault records.
	before := len(g.Faults())
	if err := g.MedianBlur3x3(src, dst); err != nil {
		t.Fatal(err)
	}
	if len(g.Faults()) != before {
		t.Fatalf("scalar path recorded faults: %v", g.Faults()[before:])
	}

	// ResetFaults re-arms the switch.
	g.ResetFaults()
	if !g.UseOptimized() || g.Fallbacks() != 0 || len(g.Faults()) != 0 {
		t.Fatal("ResetFaults did not re-arm the kill-switch")
	}
}

// TestGuardWithPlanInjector wires the real faults.Plan at a high rate and
// checks that detected corruption still converges to scalar-equal output —
// the end-to-end contract the harness fault campaign relies on.
func TestGuardWithPlanInjector(t *testing.T) {
	src := image.Synthetic(image.Resolution{Width: 96, Height: 64}, 5)
	for _, isa := range []ISA{ISANEON, ISASSE2} {
		ref := NewOps(isa, nil)
		ref.SetUseOptimized(false)
		want := image.NewMat(96, 64, image.U8)
		if err := ref.GaussianBlur(src, want); err != nil {
			t.Fatal(err)
		}

		g := NewOps(isa, nil)
		g.SetGuardPolicy(GuardPolicy{SampleRows: 64, MaxRetries: 0, KillAfter: -1})
		plan := faults.NewPlan(faults.Config{Rate: 1e-3, Seed: 7, Kinds: []faults.Kind{faults.KindBitFlip}})
		g.SetFaultInjector(plan)
		got := image.NewMat(96, 64, image.U8)
		if err := g.GaussianBlur(src, got); err != nil {
			t.Fatalf("%v: %v", isa, err)
		}
		if plan.Injected() == 0 {
			t.Fatalf("%v: plan injected nothing at rate 1e-3", isa)
		}
		if g.Fallbacks() == 0 {
			t.Fatalf("%v: persistent high-rate faults should have forced a fallback", isa)
		}
		if !want.EqualTo(got) {
			t.Fatalf("%v: final output differs from scalar in %d pixels",
				isa, want.DiffCount(got, 0))
		}
	}
}
