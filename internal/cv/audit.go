package cv

import (
	"fmt"
	"time"

	"simdstudy/internal/image"
	"simdstudy/internal/integrity"
	"simdstudy/internal/par"
)

// This file hooks the integrity layer's sampled redundant-execution audits
// into kernel dispatch. The audit point is guardedRun — the one chokepoint
// every SIMD entry point (serial and pooled band paths alike: banding
// happens inside the simd closure) routes through — so an attached Auditor
// sees exactly the calls whose output the SIMD path produced.
//
// Two shapes, by guard mode:
//
//   - Unguarded (plain production dispatch): a sampled call computes its
//     own scalar reference via a fresh referee Ops and compares the full
//     plane (or the Auditor's row window). The audit *is* the integrity
//     mechanism here, so its verdict also feeds the kernel's breaker — a
//     corrupting unit opens its breaker through the ordinary failure
//     window and recovers through half-open probes, while the scoreboard's
//     decayed rate escalates persistent corruption to a stuck-open latch.
//   - Guarded: the guard already computes a full scalar reference, so a
//     sampled audit piggybacks on it — a full-window compare of the first
//     SIMD output at zero extra referee cost. The guard keeps sole
//     ownership of the breaker verdict (its spot-check drives
//     retry/fallback exactly as before); the audit contributes the
//     corruption record, the scoreboard verdict, and a repair when the
//     spot-check's sampled rows missed the divergence.
//
// An unsampled call costs one atomic load (rate scaled to zero) or one
// mutexed xorshift draw — no allocation, which the Host* benchmark gate
// pins down.

// SetAuditor attaches (or, with nil, detaches) an integrity auditor
// sampling this Ops' SIMD kernel calls for scalar re-execution. The
// auditor may be shared across Ops (the serving front-end shares one per
// server); outcomes report to the Ops' observer registry and the
// auditor's scoreboard.
func (o *Ops) SetAuditor(a *integrity.Auditor) { o.aud = a }

// Auditor returns the attached auditor, or nil.
func (o *Ops) Auditor() *integrity.Auditor { return o.aud }

// auditCompare diffs the SIMD output against the scalar reference over the
// auditor's row window with the kernel's tolerance, returning nil when
// clean or a typed CorruptionError locating the divergence.
func (o *Ops) auditCompare(kernel string, got, want *image.Mat, tol int) *integrity.CorruptionError {
	r0, r1 := o.aud.Window(got.Height)
	first, diffs := diffRegion(got, want, r0, r1, tol)
	if diffs == 0 {
		return nil
	}
	return &integrity.CorruptionError{
		Kernel: kernel, ISA: o.isa.String(),
		Region:    integrity.Region{Row0: r0, Row1: r1, Width: got.Width},
		FirstDiff: first, Diffs: diffs,
	}
}

// auditedRun is the unguarded audit path: run the SIMD kernel, recompute
// the scalar reference, compare, repair on divergence, and record the
// verdict with the auditor and the breaker.
func (o *Ops) auditedRun(kernel string, dst *image.Mat, tol int,
	simd func() error, rerun func(ref *Ops, d *image.Mat) error) error {
	o.inGuard = true
	defer func() { o.inGuard = false }()

	if err := simd(); err != nil {
		return err
	}

	o.ctxCheck()
	start := time.Now()
	sp := o.curSpan().Child("integrity.audit")
	// Same referee construction as the guard: same ISA (per-platform
	// rounding conventions), optimizations off, no trace, no injector, no
	// bound context.
	ref := NewOps(o.isa, nil)
	ref.SetUseOptimized(false)
	want := par.GetMat(dst.Width, dst.Height, dst.Kind)
	defer par.PutMat(want)
	if err := rerun(ref, want); err != nil {
		sp.End()
		return fmt.Errorf("cv: %s audit referee: %w", kernel, err)
	}
	ce := o.auditCompare(kernel, dst, want, tol)
	if ce != nil {
		// The reference is the trusted result: a detected-corrupt plane
		// never reaches the caller. The referee computed the full image, so
		// the repair covers every row even under a sliced comparison.
		copyPixels(dst, want)
		sp.SetAttr("mismatch", true)
	}
	sp.End()
	o.aud.Observe(o.Obs, kernel, o.isa.String(), time.Since(start), o.traceID, ce)
	o.recordBreaker(kernel, ce == nil)
	return nil
}

// diffRegion counts elements in rows [r0, r1) where got and want differ by
// more than tol, returning the plane-linear index of the first divergence
// (-1 when none) alongside the count. NaN anywhere is a divergence, as in
// diffRows.
func diffRegion(got, want *image.Mat, r0, r1, tol int) (first, diffs int) {
	first = -1
	lo, hi := r0*got.Width, r1*got.Width
	note := func(i int) {
		if first < 0 {
			first = i
		}
		diffs++
	}
	absDiff := func(a, b int) int {
		if a > b {
			return a - b
		}
		return b - a
	}
	switch got.Kind {
	case image.U8:
		for i := lo; i < hi; i++ {
			if absDiff(int(got.U8Pix[i]), int(want.U8Pix[i])) > tol {
				note(i)
			}
		}
	case image.S16:
		for i := lo; i < hi; i++ {
			if absDiff(int(got.S16Pix[i]), int(want.S16Pix[i])) > tol {
				note(i)
			}
		}
	case image.F32:
		for i := lo; i < hi; i++ {
			a, b := got.F32Pix[i], want.F32Pix[i]
			if a != a || b != b || absDiff(int(a-b), 0) > tol {
				note(i)
			}
		}
	}
	return first, diffs
}
