package cv

import (
	"context"
	"runtime/pprof"
	"strconv"
	"sync/atomic"

	"simdstudy/internal/faults"
	"simdstudy/internal/neon"
	"simdstudy/internal/par"
	"simdstudy/internal/sse2"
	"simdstudy/internal/super"
	"simdstudy/internal/trace"
)

// This file is the kernel library's parallel dispatch layer. Every kernel
// pass — a row loop for the stencil kernels, an element loop for the flat
// ones — routes through parRows or parFlat, which split the pass into
// deterministic bands (see internal/par) and run each band on a clone of
// the Ops:
//
//   - the clone's NEON/SSE2 units record into a private trace.Counter that
//     is merged into the parent's counter when the band completes, so the
//     merged per-class instruction counts are bit-identical to a serial run
//     (band boundaries never split a vector iteration: rows are the natural
//     quantum for stencil passes, and flat passes band on flatQuantum-
//     element boundaries, a multiple of every vector width used here);
//   - the clone's fault injector is a fork of the parent's plan, reseeded at
//     every row/block boundary from (pass sequence number, row index), so
//     the injection schedule is a pure function of the workload geometry —
//     identical for any worker count — and fork counters join back into the
//     parent plan in band order;
//   - cancellation stays row-granular: each band polls the bound context
//     per row, and the first band to unwind (cancellation or any other
//     panic) flips a shared stop flag that makes sibling bands unwind at
//     their next row boundary.
//
// The serial case (Workers=1, the default) runs the same banded bodies
// inline on the parent Ops with no cloning, no goroutines and no
// allocation; parallelism is an opt-in scheduling change, never a semantic
// one.
//
// Stencil halos need no special machinery: the vertical passes read only
// the source plane of the pass (never its destination), so a band may read
// rows owned by its neighbors — including the clamped border rows — without
// ordering concerns. Pass boundaries (horizontal -> vertical) are full
// barriers because parRows returns only when every band has finished.

// ParallelConfig sizes intra-kernel parallelism; see par.Config.
type ParallelConfig = par.Config

// flatQuantum is the element-block size flat (elementwise) kernels band on.
// It is a multiple of every vector width used by the flat kernels (8 and 16
// elements), so a band boundary always falls between vector iterations and
// the vector/tail split — and with it the recorded instruction stream — is
// identical to a serial sweep for every band layout.
const flatQuantum = 4096

// SetParallel configures intra-kernel parallelism for this Ops. Workers 0
// or 1 selects pure serial execution (so the zero ParallelConfig is the
// safe default everywhere); a negative Workers means one band per
// available core; MinRowsPerBand<=0 uses par.DefaultMinRows.
func (o *Ops) SetParallel(cfg ParallelConfig) {
	if cfg.Workers == 0 || cfg.Workers == 1 {
		o.par = ParallelConfig{Workers: 1}
		return
	}
	o.par = cfg.Normalized()
}

// Parallel returns the configured parallelism (zero value: serial).
func (o *Ops) Parallel() ParallelConfig { return o.par }

// bandStopped is the private unwind token a band raises when a sibling has
// already failed; the dispatcher swallows it and rethrows the original.
type bandStopped struct{}

// stripeSalt derives the injector stream position for one row (or element
// block) of one parallel section. The section salt comes from the Ops'
// monotone pass sequence — so a guard retry of the same pass draws fresh
// streams and transient-fault recovery stays possible — and the final
// mixing happens in Plan.Reseed.
func stripeSalt(section uint64, stripe int) uint64 {
	return section<<24 + uint64(stripe)
}

// sectionReseeder returns the injector's stream-seeding interface when the
// attached injector supports it, else nil (no per-row reseeding: custom
// injectors see the historical continuous stream).
func (o *Ops) sectionReseeder() faults.Reseeder {
	if o.injector == nil {
		return nil
	}
	rs, _ := o.injector.(faults.Reseeder)
	return rs
}

// nBandsRows returns the band count for a rows-high pass. A quarantined
// outermost call (serialOnly) always runs one band: the supervisor has
// judged the pair's parallel bands poisonous.
func (o *Ops) nBandsRows(rows int) int {
	if o.par.Workers <= 1 || o.serialOnly {
		return 1
	}
	return par.NBands(rows, o.par.Workers, o.par.MinRowsPerBand)
}

// nBandsFlat returns the band count for an n-element flat pass.
func (o *Ops) nBandsFlat(n int) int {
	if o.par.Workers <= 1 || o.serialOnly {
		return 1
	}
	return par.NBands((n+flatQuantum-1)/flatQuantum, o.par.Workers, 1)
}

// getBand returns a pooled Ops clone wired for one band of a parallel
// section: private counter feeding the same units, forked injector, the
// parent's context and the section's shared stop flag.
func (o *Ops) getBand(stop *atomic.Bool) *Ops {
	b, _ := o.bandPool.Get().(*Ops)
	if b == nil {
		t := &trace.Counter{}
		b = &Ops{T: t, n: neon.New(t), s: sse2.New(t)}
	}
	b.isa = o.isa
	b.useOptimized = o.useOptimized
	b.denySIMD = o.denySIMD
	b.stop = stop
	b.ctx = o.ctx
	b.ctxRows = 0
	if o.T != nil {
		b.n.T, b.s.T = b.T, b.T
	} else {
		b.n.T, b.s.T = nil, nil
	}
	if o.injector != nil {
		inj := o.injector
		if f, ok := inj.(faults.Forker); ok {
			inj = f.Fork()
		}
		b.injector = inj
		b.n.F, b.s.F = inj, inj
		b.reseed, _ = inj.(faults.Reseeder)
	}
	return b
}

// putBand merges a band clone's results back into the parent — counter
// fan-in via trace.Merge, injector counters via Forker.Join, context row
// accounting — and recycles the clone.
func (o *Ops) putBand(b *Ops) {
	if o.T != nil {
		o.T.Merge(b.T)
	}
	b.T.Reset()
	if b.injector != nil {
		if f, ok := o.injector.(faults.Forker); ok && b.injector != o.injector {
			f.Join(b.injector)
		}
		b.injector, b.reseed = nil, nil
		b.n.F, b.s.F = nil, nil
	}
	if o.ctx != nil {
		o.ctxRows += b.ctxRows
	}
	b.ctx = nil
	b.stop = nil
	b.heart = nil
	b.ctxRows = 0
	o.bandPool.Put(b)
}

// stallUnwind is the private unwind token a dispatcher raises after the
// watchdog stalled its section; endKernelP converts it into the entry
// point's typed *super.StallError return.
type stallUnwind struct{ err *super.StallError }

// isBandStopped is the sentinel filter for par.FirstPanic.
func isBandStopped(v any) bool { _, ok := v.(bandStopped); return ok }

// bandProf runs fn with (kernel, isa, band) pprof labels on the executing
// goroutine, so CPU profiles of a loaded server attribute samples to the
// kernel and band doing the work rather than to an anonymous pool worker.
// Labels are only applied on instrumented Ops (curKernel is set exactly
// when begin/endKernel track the call tree): the plain fast path keeps its
// zero-overhead property, and the parallel path already allocates per
// section so the label set is noise there.
func (o *Ops) bandProf(band int, fn func()) {
	if o.curKernel == "" {
		fn()
		return
	}
	pprof.Do(context.Background(), pprof.Labels(
		"kernel", o.curKernel,
		"isa", o.isa.String(),
		"band", strconv.Itoa(band),
	), func(context.Context) { fn() })
}

// rethrow repanics the first real (non-sentinel) band panic, in band order,
// so cancellation unwinds and genuine bugs surface exactly as they would
// serially.
func rethrow(panics []any) {
	if p := par.FirstPanic(panics, isBandStopped); p != nil {
		panic(p)
	}
}

// finishSection closes out a watched or parallel section: real band panics
// (and cancellation) rethrow first, then a stall verdict that actually
// aborted work — some band unwound on the stop flag — is raised for
// endKernelP. A stall flagged after every band already completed is ignored:
// the output is whole, so failing the call would discard correct work.
func finishSection(sec *super.Section, panics []any) {
	stopped := false
	for _, p := range panics {
		if isBandStopped(p) {
			stopped = true
			break
		}
	}
	rethrow(panics)
	if stopped && sec != nil {
		if se := sec.Stalled(); se != nil {
			panic(stallUnwind{se})
		}
	}
}

// watchSerial runs a serial pass under a watchdog section: the parent Ops
// temporarily carries the section's single heart and stop flag, so the
// existing rowTick/flatTick plumbing provides both the heartbeat and the
// abort point, exactly as on a band clone.
func (o *Ops) watchSerial(sec *super.Section, stop *atomic.Bool, loop func()) {
	o.stop, o.heart = stop, sec.Heart(0)
	defer func() {
		o.stop, o.heart = nil, nil
		if r := recover(); r != nil {
			if isBandStopped(r) {
				if se := sec.Stalled(); se != nil {
					panic(stallUnwind{se})
				}
			}
			panic(r)
		}
	}()
	loop()
}

// parRows runs body(b, a, y) for every row y in [0, rows), banded across
// the configured workers. A is the pass's argument bundle; bodies are
// package-level functions so the serial path allocates nothing.
func parRows[A any](o *Ops, rows int, a A, body func(b *Ops, a A, y int)) {
	parRowsRange(o, 0, rows, a, body)
}

// parRowsRange is parRows over the half-open row interval [y0, y1) — the
// strip-granular form the fusion executor drives, one call per (stage,
// strip). Rows keep their absolute plane indices, so the fault injector's
// per-row reseed positions are a pure function of the row like the staged
// path's, and the watchdog heart beats once per row exactly as before.
func parRowsRange[A any](o *Ops, y0, y1 int, a A, body func(b *Ops, a A, y int)) {
	rows := y1 - y0
	if rows <= 0 {
		return
	}
	nb := o.nBandsRows(rows)
	rs := o.sectionReseeder()
	var salt uint64
	if rs != nil {
		salt = o.passSeq.Add(1)
	}
	if nb == 1 && o.wd == nil {
		for y := y0; y < y1; y++ {
			if rs != nil {
				rs.Reseed(stripeSalt(salt, y))
			}
			body(o, a, y)
			o.rowTick()
		}
		return
	}
	// Copy the args into a branch-local before the closure captures them:
	// capturing the parameter itself would move it to the heap at function
	// entry and cost the serial path an allocation per pass.
	aa := a
	var stop atomic.Bool
	var sec *super.Section
	if o.wd != nil {
		sec = o.wd.Section(o.curKernel, o.isa.String(), nb, func() { stop.Store(true) })
		defer sec.Close()
	}
	if nb == 1 {
		o.watchSerial(sec, &stop, func() {
			for y := y0; y < y1; y++ {
				if rs != nil {
					rs.Reseed(stripeSalt(salt, y))
				}
				body(o, aa, y)
				o.rowTick()
			}
		})
		return
	}
	bands := make([]*Ops, nb)
	for i := range bands {
		bands[i] = o.getBand(&stop)
		if sec != nil {
			bands[i].heart = sec.Heart(i)
		}
	}
	panics := par.Run(nb, func(i int) {
		defer func() {
			if r := recover(); r != nil {
				stop.Store(true)
				panic(r)
			}
		}()
		o.bandProf(i, func() {
			b := bands[i]
			lo, hi := par.Span(i, nb, rows)
			for y := y0 + lo; y < y0+hi; y++ {
				if b.reseed != nil {
					b.reseed.Reseed(stripeSalt(salt, y))
				}
				body(b, aa, y)
				b.rowTick()
			}
		})
	})
	for _, b := range bands {
		o.putBand(b)
	}
	finishSection(sec, panics)
}

// parFlat runs body(b, a, lo, hi) over [0, n) in flatQuantum-aligned
// blocks, banded across the configured workers. Only the final block can be
// a partial quantum, so the scalar tail lives in exactly one band.
func parFlat[A any](o *Ops, n int, a A, body func(b *Ops, a A, lo, hi int)) {
	parFlatRange(o, 0, n, a, body)
}

// parFlatRange is parFlat over the half-open element interval [e0, e1) —
// the fusion executor's per-strip form of the flat combine stages. The
// block grid is anchored at e0, so when the caller advances e0 in
// flatQuantum multiples (as the fused sweep's absolute-aligned chunk
// gating does) every block except the final one is a full quantum and the
// vector/tail split — and with it the recorded instruction stream —
// matches a single staged sweep exactly.
func parFlatRange[A any](o *Ops, e0, e1 int, a A, body func(b *Ops, a A, lo, hi int)) {
	n := e1 - e0
	if n <= 0 {
		return
	}
	nb := o.nBandsFlat(n)
	rs := o.sectionReseeder()
	var salt uint64
	if rs != nil {
		salt = o.passSeq.Add(1)
	}
	if nb == 1 && o.wd == nil {
		for c := e0; c < e1; c += flatQuantum {
			ce := min(c+flatQuantum, e1)
			if rs != nil {
				rs.Reseed(stripeSalt(salt, c/flatQuantum))
			}
			body(o, a, c, ce)
			o.flatTick()
		}
		return
	}
	aa := a // see parRows: keep the parameter off the heap on the serial path
	var stop atomic.Bool
	var sec *super.Section
	if o.wd != nil {
		sec = o.wd.Section(o.curKernel, o.isa.String(), nb, func() { stop.Store(true) })
		defer sec.Close()
	}
	if nb == 1 {
		o.watchSerial(sec, &stop, func() {
			for c := e0; c < e1; c += flatQuantum {
				ce := min(c+flatQuantum, e1)
				if rs != nil {
					rs.Reseed(stripeSalt(salt, c/flatQuantum))
				}
				body(o, aa, c, ce)
				o.flatTick()
			}
		})
		return
	}
	bands := make([]*Ops, nb)
	for i := range bands {
		bands[i] = o.getBand(&stop)
		if sec != nil {
			bands[i].heart = sec.Heart(i)
		}
	}
	panics := par.Run(nb, func(i int) {
		defer func() {
			if r := recover(); r != nil {
				stop.Store(true)
				panic(r)
			}
		}()
		o.bandProf(i, func() {
			b := bands[i]
			lo, hi := par.AlignedSpan(i, nb, n, flatQuantum)
			for c := e0 + lo; c < e0+hi; c += flatQuantum {
				ce := min(c+flatQuantum, e0+hi)
				if b.reseed != nil {
					b.reseed.Reseed(stripeSalt(salt, c/flatQuantum))
				}
				body(b, aa, c, ce)
				b.flatTick()
			}
		})
	})
	for _, b := range bands {
		o.putBand(b)
	}
	finishSection(sec, panics)
}
