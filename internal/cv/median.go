package cv

import (
	"simdstudy/internal/image"
	"simdstudy/internal/trace"
	"simdstudy/internal/vec"
)

// MedianBlur3x3 applies a 3x3 median filter with replicated borders.
// Median blur is the headline kernel of the paper's related work (Pulli et
// al. report a 23x NEON speedup on Tegra 3): the 9-element median reduces
// to a fixed network of 19 min/max operations, which vectorizes perfectly
// (vmin.u8/vmax.u8, pminub/pmaxub) while the scalar build must run the
// same network one pixel at a time — and gcc cannot auto-vectorize it
// because each pixel's network is a different data-dependent permutation
// in source form.
func (o *Ops) MedianBlur3x3(src, dst *image.Mat) (err error) {
	o.beginKernel("MedianBlur3x3")
	defer o.endKernelP("MedianBlur3x3", &err)
	if err := requireKind(src, image.U8, "MedianBlur3x3 src"); err != nil {
		return err
	}
	if err := requireKind(dst, image.U8, "MedianBlur3x3 dst"); err != nil {
		return err
	}
	if err := sameShape(src, dst); err != nil {
		return err
	}
	run := func(op *Ops, d *image.Mat) error {
		if op.UseOptimized() {
			switch op.isa {
			case ISANEON:
				op.medianNEON(src, d)
				return nil
			case ISASSE2:
				op.medianSSE2(src, d)
				return nil
			}
		}
		op.medianScalar(src, d)
		return nil
	}
	if o.UseOptimized() {
		return o.guardedRun("MedianBlur3x3", dst, 0,
			func() error { return run(o, dst) }, run)
	}
	return run(o, dst)
}

// median9 runs the canonical 19-comparator median-of-9 exchange network
// (Smith/Paeth); the SIMD paths run the identical network lane-wise, so
// every path is bit-exact.
func median9(p *[9]uint8) uint8 {
	op := func(a, b int) {
		if p[a] > p[b] {
			p[a], p[b] = p[b], p[a]
		}
	}
	op(1, 2)
	op(4, 5)
	op(7, 8)
	op(0, 1)
	op(3, 4)
	op(6, 7)
	op(1, 2)
	op(4, 5)
	op(7, 8)
	op(0, 3)
	op(5, 8)
	op(4, 7)
	op(3, 6)
	op(1, 4)
	op(2, 5)
	op(4, 7)
	op(4, 2)
	op(6, 4)
	op(4, 2)
	return p[4]
}

func medianPixel(pix []uint8, w, h, x, y int) uint8 {
	var n [9]uint8
	k := 0
	for dy := -1; dy <= 1; dy++ {
		for dx := -1; dx <= 1; dx++ {
			n[k] = pix[clampIdx(y+dy, h)*w+clampIdx(x+dx, w)]
			k++
		}
	}
	return median9(&n)
}

// medianArgs bundles the median pass for the banded row bodies. Row bodies
// read up to one halo row above and below via clamped indexing on the
// read-only source plane.
type medianArgs struct {
	src, dst []uint8
	w, h     int
}

func (o *Ops) medianScalar(src, dst *image.Mat) {
	a := medianArgs{src: src.U8Pix, dst: dst.U8Pix, w: src.Width, h: src.Height}
	parRows(o, src.Height, a, medianScalarRow)
}

func medianScalarRow(b *Ops, a medianArgs, y int) {
	w, h := a.w, a.h
	for x := 0; x < w; x++ {
		a.dst[y*w+x] = medianPixel(a.src, w, h, x, y)
	}
	if b.T != nil {
		px := uint64(w)
		b.T.RecordN("ldrb(9)", trace.ScalarLoad, 9*px, 1)
		b.T.RecordN("cmp/sel(net)", trace.ScalarALU, 19*2*px, 0)
		b.T.RecordN("strb", trace.ScalarStore, px, 1)
		b.scalarOverhead(px)
	}
}

// medianNetworkNEON applies the 19-op network on nine Q registers,
// 16 pixels at once.
func (o *Ops) medianNetworkNEON(p *[9]vec.V128) vec.V128 {
	u := o.n
	op := func(a, b int) {
		lo := u.VminqU8(p[a], p[b])
		hi := u.VmaxqU8(p[a], p[b])
		p[a], p[b] = lo, hi
	}
	op(1, 2)
	op(4, 5)
	op(7, 8)
	op(0, 1)
	op(3, 4)
	op(6, 7)
	op(1, 2)
	op(4, 5)
	op(7, 8)
	op(0, 3)
	op(5, 8)
	op(4, 7)
	op(3, 6)
	op(1, 4)
	op(2, 5)
	op(4, 7)
	op(4, 2)
	op(6, 4)
	op(4, 2)
	return p[4]
}

func (o *Ops) medianNEON(src, dst *image.Mat) {
	a := medianArgs{src: src.U8Pix, dst: dst.U8Pix, w: src.Width, h: src.Height}
	parRows(o, src.Height, a, medianNEONRow)
}

func medianNEONRow(b *Ops, a medianArgs, y int) {
	w, h := a.w, a.h
	u := b.n
	rows := [3][]uint8{
		a.src[clampIdx(y-1, h)*w:],
		a.src[y*w:],
		a.src[clampIdx(y+1, h)*w:],
	}
	out := a.dst[y*w : (y+1)*w]
	edge := 0
	x := 0
	for ; x < 1 && x < w; x++ {
		out[x] = medianPixel(a.src, w, h, x, y)
		edge++
	}
	for ; x+16 <= w-1; x += 16 {
		var p [9]vec.V128
		for r := 0; r < 3; r++ {
			p[3*r] = u.Vld1qU8(rows[r][x-1:])
			p[3*r+1] = u.Vld1qU8(rows[r][x:])
			p[3*r+2] = u.Vld1qU8(rows[r][x+1:])
		}
		u.Vst1qU8(out[x:], b.medianNetworkNEON(&p))
		u.Overhead(2, 1, 0)
	}
	for ; x < w; x++ {
		out[x] = medianPixel(a.src, w, h, x, y)
		edge++
	}
	b.medianTailCost(uint64(edge))
}

func (o *Ops) medianTailCost(pixels uint64) {
	if o.T == nil || pixels == 0 {
		return
	}
	o.T.RecordN("median(tail)", trace.ScalarALU, 47*pixels, 0)
	o.scalarOverhead(pixels)
}

// medianNetworkSSE2 is the same network on pminub/pmaxub.
func (o *Ops) medianNetworkSSE2(p *[9]vec.V128) vec.V128 {
	u := o.s
	op := func(a, b int) {
		lo := u.MinEpu8(p[a], p[b])
		hi := u.MaxEpu8(p[a], p[b])
		p[a], p[b] = lo, hi
	}
	op(1, 2)
	op(4, 5)
	op(7, 8)
	op(0, 1)
	op(3, 4)
	op(6, 7)
	op(1, 2)
	op(4, 5)
	op(7, 8)
	op(0, 3)
	op(5, 8)
	op(4, 7)
	op(3, 6)
	op(1, 4)
	op(2, 5)
	op(4, 7)
	op(4, 2)
	op(6, 4)
	op(4, 2)
	return p[4]
}

func (o *Ops) medianSSE2(src, dst *image.Mat) {
	a := medianArgs{src: src.U8Pix, dst: dst.U8Pix, w: src.Width, h: src.Height}
	parRows(o, src.Height, a, medianSSE2Row)
}

func medianSSE2Row(b *Ops, a medianArgs, y int) {
	w, h := a.w, a.h
	u := b.s
	rows := [3][]uint8{
		a.src[clampIdx(y-1, h)*w:],
		a.src[y*w:],
		a.src[clampIdx(y+1, h)*w:],
	}
	out := a.dst[y*w : (y+1)*w]
	edge := 0
	x := 0
	for ; x < 1 && x < w; x++ {
		out[x] = medianPixel(a.src, w, h, x, y)
		edge++
	}
	for ; x+16 <= w-1; x += 16 {
		var p [9]vec.V128
		for r := 0; r < 3; r++ {
			p[3*r] = u.LoaduSi128U8(rows[r][x-1:])
			p[3*r+1] = u.LoaduSi128U8(rows[r][x:])
			p[3*r+2] = u.LoaduSi128U8(rows[r][x+1:])
		}
		u.StoreuSi128U8(out[x:], b.medianNetworkSSE2(&p))
		u.Overhead(2, 1, 0)
	}
	for ; x < w; x++ {
		out[x] = medianPixel(a.src, w, h, x, y)
		edge++
	}
	b.medianTailCost(uint64(edge))
}
