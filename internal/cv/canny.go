package cv

import (
	"fmt"

	"simdstudy/internal/image"
	"simdstudy/internal/sat"
	"simdstudy/internal/trace"
)

// Canny performs Canny edge detection: Sobel gradients, L1 gradient
// magnitude, non-maximum suppression along the quantized gradient
// direction, double thresholding, and hysteresis linking (8-connected BFS
// from strong edges through weak ones).
//
// The paper's related work reports only a 1.6x NEON gain for Canny — the
// smallest of the Tegra study's kernels — and this implementation shows
// why: the gradient and magnitude stages vectorize (they reuse this
// library's SIMD Sobel and saturating-arithmetic paths), but non-maximum
// suppression is direction-dependent per pixel and hysteresis is a
// worklist traversal, both inherently serial. Amdahl's law caps the
// whole-kernel speedup regardless of how fast the vector stages run.
func (o *Ops) Canny(src, dst *image.Mat, lowThresh, highThresh int16) (err error) {
	o.beginKernel("Canny")
	defer func() { o.endKernel("Canny", err) }()
	if err := requireKind(src, image.U8, "Canny src"); err != nil {
		return err
	}
	if err := requireKind(dst, image.U8, "Canny dst"); err != nil {
		return err
	}
	if err := sameShape(src, dst); err != nil {
		return err
	}
	if lowThresh < 0 || highThresh < lowThresh {
		return fmt.Errorf("cv: Canny thresholds must satisfy 0 <= low <= high, got %d/%d",
			lowThresh, highThresh)
	}
	w, h := src.Width, src.Height

	// Stage 1: gradients (SIMD-accelerated when enabled).
	gx := image.NewMat(w, h, image.S16)
	gy := image.NewMat(w, h, image.S16)
	if err := o.SobelFilter(src, gx, 1, 0); err != nil {
		return err
	}
	if err := o.SobelFilter(src, gy, 0, 1); err != nil {
		return err
	}

	// Stage 2: L1 magnitude (saturating), scalar or SIMD-equivalent
	// arithmetic — identical across paths.
	mag := image.NewMat(w, h, image.S16)
	n := w * h
	for i := 0; i < n; i++ {
		mag.S16Pix[i] = sat.AddInt16(sat.AbsInt16(gx.S16Pix[i]), sat.AbsInt16(gy.S16Pix[i]))
	}
	if o.T != nil {
		o.T.RecordN("mag", trace.ScalarALU, uint64(3*n), 0)
		o.scalarOverhead(uint64(n))
	}

	// Stage 3: non-maximum suppression. Direction is quantized to
	// horizontal / vertical / the two diagonals using the |gy| vs |gx|
	// ratio with the classic tan(22.5 deg) ~ 13/32 fixed-point test.
	nms := image.NewMat(w, h, image.U8) // 0 none, 1 weak, 2 strong
	for y := 1; y < h-1; y++ {
		for x := 1; x < w-1; x++ {
			i := y*w + x
			m := mag.S16Pix[i]
			if m < lowThresh {
				continue
			}
			ax := int32(sat.AbsInt16(gx.S16Pix[i]))
			ay := int32(sat.AbsInt16(gy.S16Pix[i]))
			var m1, m2 int16
			switch {
			case ay*32 <= ax*13:
				// Near-horizontal gradient: compare left/right.
				m1, m2 = mag.S16Pix[i-1], mag.S16Pix[i+1]
			case ax*32 <= ay*13:
				// Near-vertical gradient: compare up/down.
				m1, m2 = mag.S16Pix[i-w], mag.S16Pix[i+w]
			case (gx.S16Pix[i] > 0) == (gy.S16Pix[i] > 0):
				// 45-degree gradient.
				m1, m2 = mag.S16Pix[i-w-1], mag.S16Pix[i+w+1]
			default:
				// 135-degree gradient.
				m1, m2 = mag.S16Pix[i-w+1], mag.S16Pix[i+w-1]
			}
			// Strict on the first neighbour, non-strict on the second
			// (OpenCV's tie-break), so plateau edges stay one pixel wide.
			if m > m1 && m >= m2 {
				if m >= highThresh {
					nms.U8Pix[i] = 2
				} else {
					nms.U8Pix[i] = 1
				}
			}
		}
	}
	if o.T != nil {
		o.T.RecordN("nms(cmp/sel)", trace.ScalarALU, uint64(8*n), 0)
		o.T.RecordN("nms(branch)", trace.Branch, uint64(2*n), 0)
	}

	// Stage 4: hysteresis. BFS from strong pixels through 8-connected
	// weak pixels.
	for i := range dst.U8Pix {
		dst.U8Pix[i] = 0
	}
	stack := make([]int, 0, n/16)
	for i, v := range nms.U8Pix {
		if v == 2 {
			stack = append(stack, i)
			dst.U8Pix[i] = 255
		}
	}
	neighbors := [8]int{-w - 1, -w, -w + 1, -1, 1, w - 1, w, w + 1}
	visits := 0
	for len(stack) > 0 {
		i := stack[len(stack)-1]
		stack = stack[:len(stack)-1]
		x := i % w
		for _, d := range neighbors {
			j := i + d
			if j < 0 || j >= n {
				continue
			}
			// Guard horizontal wraparound.
			xj := j % w
			dx := x - xj
			if dx < -1 || dx > 1 {
				continue
			}
			visits++
			if nms.U8Pix[j] == 1 && dst.U8Pix[j] == 0 {
				dst.U8Pix[j] = 255
				stack = append(stack, j)
			}
		}
	}
	if o.T != nil {
		o.T.RecordN("hysteresis", trace.ScalarALU, uint64(3*visits), 0)
		o.T.RecordN("hysteresis(br)", trace.Branch, uint64(visits), 0)
	}
	return nil
}
