package cv

import (
	"fmt"
	"sync"

	"simdstudy/internal/image"
	"simdstudy/internal/par"
	"simdstudy/internal/sat"
	"simdstudy/internal/trace"
)

// Canny performs Canny edge detection: Sobel gradients, L1 gradient
// magnitude, non-maximum suppression along the quantized gradient
// direction, double thresholding, and hysteresis linking (8-connected BFS
// from strong edges through weak ones).
//
// The paper's related work reports only a 1.6x NEON gain for Canny — the
// smallest of the Tegra study's kernels — and this implementation shows
// why: the gradient and magnitude stages vectorize (they reuse this
// library's SIMD Sobel and saturating-arithmetic paths), but non-maximum
// suppression is direction-dependent per pixel and hysteresis is a
// worklist traversal, both inherently serial. Amdahl's law caps the
// whole-kernel speedup regardless of how fast the vector stages run.
func (o *Ops) Canny(src, dst *image.Mat, lowThresh, highThresh int16) (err error) {
	o.beginKernel("Canny")
	defer o.endKernelP("Canny", &err)
	if err := requireKind(src, image.U8, "Canny src"); err != nil {
		return err
	}
	if err := requireKind(dst, image.U8, "Canny dst"); err != nil {
		return err
	}
	if err := sameShape(src, dst); err != nil {
		return err
	}
	if lowThresh < 0 || highThresh < lowThresh {
		return fmt.Errorf("cv: Canny thresholds must satisfy 0 <= low <= high, got %d/%d",
			lowThresh, highThresh)
	}
	if o.fuse.Enabled {
		if o.UseOptimized() && o.guarded {
			// The guard referee is the staged scalar reference: a fresh
			// scalar Ops re-runs the unfused pipeline and the fused output
			// is spot-checked against it.
			return o.guardedRun("Canny", dst, 0,
				func() error { return o.cannyFused(src, dst, lowThresh, highThresh) },
				func(ref *Ops, d *image.Mat) error {
					return ref.cannyStaged(src, d, lowThresh, highThresh)
				})
		}
		return o.cannyFused(src, dst, lowThresh, highThresh)
	}
	return o.cannyStaged(src, dst, lowThresh, highThresh)
}

// cannyStaged is the unfused pipeline: each stage materializes its full
// intermediate plane before the next begins.
func (o *Ops) cannyStaged(src, dst *image.Mat, lowThresh, highThresh int16) error {
	nms := par.GetMat(src.Width, src.Height, image.U8)
	defer par.PutMat(nms)
	if err := o.cannyStagedNMS(src, nms, lowThresh, highThresh); err != nil {
		return err
	}
	o.cannyHysteresis(nms.U8Pix, dst.U8Pix, src.Width, src.Height)
	return nil
}

// cannyStagedNMS runs the staged pipeline up to the NMS marker plane
// (0 none, 1 weak, 2 strong). Split out so the fused path's per-strip
// audits can compare against the staged scalar markers directly, before
// hysteresis mixes rows globally. nms must be zero-initialized.
func (o *Ops) cannyStagedNMS(src, nms *image.Mat, lowThresh, highThresh int16) error {
	w, h := src.Width, src.Height

	// Stage 1: gradients (SIMD-accelerated when enabled). The scratch
	// planes come from the shared pool; GetMat zero-fills them, which the
	// NMS marker plane below relies on.
	gx := par.GetMat(w, h, image.S16)
	defer par.PutMat(gx)
	gy := par.GetMat(w, h, image.S16)
	defer par.PutMat(gy)
	if err := o.SobelFilter(src, gx, 1, 0); err != nil {
		return err
	}
	if err := o.SobelFilter(src, gy, 0, 1); err != nil {
		return err
	}

	// Stage 2: L1 magnitude (saturating), scalar or SIMD-equivalent
	// arithmetic — identical across paths. Element-wise, so it bands
	// freely.
	mag := par.GetMat(w, h, image.S16)
	defer par.PutMat(mag)
	n := w * h
	parFlat(o, n, cannyMagArgs{gx.S16Pix, gy.S16Pix, mag.S16Pix}, cannyMagChunk)

	// Stage 3: non-maximum suppression. Direction is quantized to
	// horizontal / vertical / the two diagonals using the |gy| vs |gx|
	// ratio with the classic tan(22.5 deg) ~ 13/32 fixed-point test.
	// Each output row reads only its own and adjacent magnitude rows, all
	// read-only by now, so the stage row-bands with one halo row each way.
	parRows(o, h, cannyNMSArgs{
		gx: gx.S16Pix, gy: gy.S16Pix, mag: mag.S16Pix, nms: nms.U8Pix,
		w: w, h: h, low: lowThresh, high: highThresh,
	}, cannyNMSRow)
	return nil
}

// hystStackPool recycles the hysteresis BFS worklist across calls (staged
// and fused alike): the stack grows to the image's edge population once,
// then steady-state calls run allocation-free.
var hystStackPool = sync.Pool{New: func() any {
	s := make([]int, 0, 1024)
	return &s
}}

// cannyHysteresis is the final Canny stage, shared by the staged and fused
// paths: zero the output, seed the BFS from strong pixels, and link weak
// pixels 8-connected to a strong component. It runs on the full nms plane
// after the sweep — the traversal is global, so it is the one stage fusion
// leaves unfused.
func (o *Ops) cannyHysteresis(nms, dst []uint8, w, h int) {
	n := w * h
	for i := range dst[:n] {
		dst[i] = 0
	}
	sp := hystStackPool.Get().(*[]int)
	stack := (*sp)[:0]
	for i, v := range nms[:n] {
		if v == 2 {
			stack = append(stack, i)
			dst[i] = 255
		}
	}
	neighbors := [8]int{-w - 1, -w, -w + 1, -1, 1, w - 1, w, w + 1}
	visits := 0
	for len(stack) > 0 {
		i := stack[len(stack)-1]
		stack = stack[:len(stack)-1]
		x := i % w
		for _, d := range neighbors {
			j := i + d
			if j < 0 || j >= n {
				continue
			}
			// Guard horizontal wraparound.
			xj := j % w
			dx := x - xj
			if dx < -1 || dx > 1 {
				continue
			}
			visits++
			if nms[j] == 1 && dst[j] == 0 {
				dst[j] = 255
				stack = append(stack, j)
			}
		}
	}
	*sp = stack
	hystStackPool.Put(sp)
	if o.T != nil {
		o.T.RecordN("hysteresis", trace.ScalarALU, uint64(3*visits), 0)
		o.T.RecordN("hysteresis(br)", trace.Branch, uint64(visits), 0)
	}
}

type cannyMagArgs struct {
	gx, gy, mag []int16
}

func cannyMagChunk(b *Ops, a cannyMagArgs, lo, hi int) {
	for i := lo; i < hi; i++ {
		a.mag[i] = sat.AddInt16(sat.AbsInt16(a.gx[i]), sat.AbsInt16(a.gy[i]))
	}
	if b.T != nil {
		n := uint64(hi - lo)
		b.T.RecordN("mag", trace.ScalarALU, 3*n, 0)
		b.scalarOverhead(n)
	}
}

// cannyNMSArgs bundles the NMS stage. magLo and gLo are the plane rows at
// which the mag and gx/gy slices begin (zero on the staged path, the
// rolling windows' first live rows on the fused path); nms is always the
// full marker plane.
type cannyNMSArgs struct {
	gx, gy, mag []int16
	nms         []uint8
	w, h        int
	magLo, gLo  int
	low, high   int16
}

func cannyNMSRow(b *Ops, a cannyNMSArgs, y int) {
	w := a.w
	if y >= 1 && y < a.h-1 {
		mr := (y - a.magLo) * w
		gr := (y - a.gLo) * w
		for x := 1; x < w-1; x++ {
			i := mr + x
			m := a.mag[i]
			if m < a.low {
				continue
			}
			ax := int32(sat.AbsInt16(a.gx[gr+x]))
			ay := int32(sat.AbsInt16(a.gy[gr+x]))
			var m1, m2 int16
			switch {
			case ay*32 <= ax*13:
				// Near-horizontal gradient: compare left/right.
				m1, m2 = a.mag[i-1], a.mag[i+1]
			case ax*32 <= ay*13:
				// Near-vertical gradient: compare up/down.
				m1, m2 = a.mag[i-w], a.mag[i+w]
			case (a.gx[gr+x] > 0) == (a.gy[gr+x] > 0):
				// 45-degree gradient.
				m1, m2 = a.mag[i-w-1], a.mag[i+w+1]
			default:
				// 135-degree gradient.
				m1, m2 = a.mag[i-w+1], a.mag[i+w-1]
			}
			// Strict on the first neighbour, non-strict on the second
			// (OpenCV's tie-break), so plateau edges stay one pixel wide.
			if m > m1 && m >= m2 {
				if m >= a.high {
					a.nms[y*w+x] = 2
				} else {
					a.nms[y*w+x] = 1
				}
			}
		}
	}
	// Cost is modeled per full-width row (border rows included), matching
	// the whole-image accounting of the serial implementation.
	if b.T != nil {
		b.T.RecordN("nms(cmp/sel)", trace.ScalarALU, uint64(8*w), 0)
		b.T.RecordN("nms(branch)", trace.Branch, uint64(2*w), 0)
	}
}
