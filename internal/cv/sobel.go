package cv

import (
	"fmt"

	"simdstudy/internal/image"
	"simdstudy/internal/par"
	"simdstudy/internal/trace"
	"simdstudy/internal/vec"
)

// SobelFilter computes the first derivative of a U8 image into an S16 image
// using the separable 3x3 Sobel operator, the paper's benchmark 4. dx=1,dy=0
// selects the horizontal gradient ([-1 0 1] differentiator with [1 2 1]
// cross-smoothing); dx=0,dy=1 the vertical. Borders are replicated.
//
// Each pass is row-banded when parallelism is configured: the vertical
// passes read one halo row above and below from the intermediate plane,
// which is read-only by then, and the pass boundary is a barrier.
func (o *Ops) SobelFilter(src, dst *image.Mat, dx, dy int) (err error) {
	o.beginKernel("SobelFilter")
	defer o.endKernelP("SobelFilter", &err)
	if err := requireKind(src, image.U8, "SobelFilter src"); err != nil {
		return err
	}
	if err := requireKind(dst, image.S16, "SobelFilter dst"); err != nil {
		return err
	}
	if err := sameShape(src, dst); err != nil {
		return err
	}
	switch {
	case dx == 1 && dy == 0, dx == 0 && dy == 1:
	default:
		return fmt.Errorf("cv: SobelFilter supports (dx,dy) of (1,0) or (0,1), got (%d,%d)", dx, dy)
	}
	run := func(op *Ops, d *image.Mat) error {
		tmp := par.GetMat(src.Width, src.Height, image.S16)
		defer par.PutMat(tmp)
		if op.UseOptimized() {
			switch op.isa {
			case ISANEON:
				if dx == 1 {
					op.sobelDiffHNEON(src, tmp)
					op.sobelSmoothVNEON(tmp, d)
				} else {
					op.sobelSmoothHNEON(src, tmp)
					op.sobelDiffVNEON(tmp, d)
				}
				return nil
			case ISASSE2:
				if dx == 1 {
					op.sobelDiffHSSE2(src, tmp)
					op.sobelSmoothVSSE2(tmp, d)
				} else {
					op.sobelSmoothHSSE2(src, tmp)
					op.sobelDiffVSSE2(tmp, d)
				}
				return nil
			}
		}
		if dx == 1 {
			op.sobelDiffHScalar(src, tmp)
			op.sobelSmoothVScalar(tmp, d)
		} else {
			op.sobelSmoothHScalar(src, tmp)
			op.sobelDiffVScalar(tmp, d)
		}
		return nil
	}
	if o.UseOptimized() {
		return o.guardedRun("SobelFilter", dst, 0,
			func() error { return run(o, dst) }, run)
	}
	return run(o, dst)
}

// --- Scalar reference pieces. SIMD paths call these for borders so all
// paths agree bit-for-bit. ---

// diffHPixel is src[x+1]-src[x-1] with replicated borders.
func diffHPixel(row []uint8, w, x int) int16 {
	return int16(row[clampIdx(x+1, w)]) - int16(row[clampIdx(x-1, w)])
}

// smoothHPixel is src[x-1]+2*src[x]+src[x+1] with replicated borders.
func smoothHPixel(row []uint8, w, x int) int16 {
	return int16(row[clampIdx(x-1, w)]) + 2*int16(row[x]) + int16(row[clampIdx(x+1, w)])
}

// smoothVPixel is tmp[y-1]+2*tmp[y]+tmp[y+1] on the S16 plane.
func smoothVPixel(pix []int16, w, h, x, y int) int16 {
	return pix[clampIdx(y-1, h)*w+x] + 2*pix[y*w+x] + pix[clampIdx(y+1, h)*w+x]
}

// diffVPixel is tmp[y+1]-tmp[y-1] on the S16 plane.
func diffVPixel(pix []int16, w, h, x, y int) int16 {
	return pix[clampIdx(y+1, h)*w+x] - pix[clampIdx(y-1, h)*w+x]
}

func (o *Ops) sobelRowCost(pixels uint64, taps int) {
	if o.T == nil {
		return
	}
	o.T.RecordN("ldr(tap)", trace.ScalarLoad, uint64(taps)*pixels, 1)
	o.T.RecordN("add/sub", trace.ScalarALU, uint64(taps)*pixels, 0)
	o.T.RecordN("str(s16)", trace.ScalarStore, pixels, 2)
	o.scalarOverhead(pixels)
}

// sobelArgs bundles one Sobel pass for the banded row bodies. in8 is the
// source plane of the U8->S16 horizontal passes; in16 the S16 plane of the
// vertical passes; out is always the S16 destination of the pass.
//
// inLo and outLo are the plane rows at which in16 and out begin: zero on
// the staged path (full planes), the rolling window's first live row on
// the fused path. The bodies index through them, so the same row bodies —
// and with them the recorded instruction streams — serve both paths.
type sobelArgs struct {
	in8   []uint8
	in16  []int16
	out   []int16
	w, h  int
	inLo  int
	outLo int
	zero  vec.V128 // SSE2 unpack constant, hoisted on the parent
}

func (o *Ops) sobelDiffHScalar(src, tmp *image.Mat) {
	a := sobelArgs{in8: src.U8Pix, out: tmp.S16Pix, w: src.Width, h: src.Height}
	parRows(o, src.Height, a, sobelDiffHScalarRow)
}

func sobelDiffHScalarRow(b *Ops, a sobelArgs, y int) {
	w := a.w
	row := a.in8[y*w : (y+1)*w]
	out := a.out[(y-a.outLo)*w : (y-a.outLo+1)*w]
	for x := 0; x < w; x++ {
		out[x] = diffHPixel(row, w, x)
	}
	b.sobelRowCost(uint64(w), 2)
}

func (o *Ops) sobelSmoothHScalar(src, tmp *image.Mat) {
	a := sobelArgs{in8: src.U8Pix, out: tmp.S16Pix, w: src.Width, h: src.Height}
	parRows(o, src.Height, a, sobelSmoothHScalarRow)
}

func sobelSmoothHScalarRow(b *Ops, a sobelArgs, y int) {
	w := a.w
	row := a.in8[y*w : (y+1)*w]
	out := a.out[(y-a.outLo)*w : (y-a.outLo+1)*w]
	for x := 0; x < w; x++ {
		out[x] = smoothHPixel(row, w, x)
	}
	b.sobelRowCost(uint64(w), 3)
}

func (o *Ops) sobelSmoothVScalar(tmp, dst *image.Mat) {
	a := sobelArgs{in16: tmp.S16Pix, out: dst.S16Pix, w: tmp.Width, h: tmp.Height}
	parRows(o, tmp.Height, a, sobelSmoothVScalarRow)
}

func sobelSmoothVScalarRow(b *Ops, a sobelArgs, y int) {
	w, h := a.w, a.h
	r0 := a.in16[(clampIdx(y-1, h)-a.inLo)*w:]
	r1 := a.in16[(y-a.inLo)*w:]
	r2 := a.in16[(clampIdx(y+1, h)-a.inLo)*w:]
	out := a.out[(y-a.outLo)*w : (y-a.outLo+1)*w]
	for x := 0; x < w; x++ {
		out[x] = r0[x] + 2*r1[x] + r2[x]
	}
	b.sobelRowCost(uint64(w), 3)
}

func (o *Ops) sobelDiffVScalar(tmp, dst *image.Mat) {
	a := sobelArgs{in16: tmp.S16Pix, out: dst.S16Pix, w: tmp.Width, h: tmp.Height}
	parRows(o, tmp.Height, a, sobelDiffVScalarRow)
}

func sobelDiffVScalarRow(b *Ops, a sobelArgs, y int) {
	w, h := a.w, a.h
	r0 := a.in16[(clampIdx(y-1, h)-a.inLo)*w:]
	r2 := a.in16[(clampIdx(y+1, h)-a.inLo)*w:]
	out := a.out[(y-a.outLo)*w : (y-a.outLo+1)*w]
	for x := 0; x < w; x++ {
		out[x] = r2[x] - r0[x]
	}
	b.sobelRowCost(uint64(w), 2)
}

func (o *Ops) sobelTailCost(pixels uint64) {
	if o.T == nil || pixels == 0 {
		return
	}
	o.T.RecordN("sobel(tail)", trace.ScalarALU, 5*pixels, 0)
	o.scalarOverhead(pixels)
}

// --- NEON ---

// sobelDiffHNEON: 8 pixels/iter via one widening subtract.
func (o *Ops) sobelDiffHNEON(src, tmp *image.Mat) {
	defer o.n.Session("sobel.diffH", o.curSpan()).End()
	a := sobelArgs{in8: src.U8Pix, out: tmp.S16Pix, w: src.Width, h: src.Height}
	parRows(o, src.Height, a, sobelDiffHNEONRow)
}

func sobelDiffHNEONRow(b *Ops, a sobelArgs, y int) {
	w := a.w
	u := b.n
	row := a.in8[y*w : (y+1)*w]
	out := a.out[(y-a.outLo)*w : (y-a.outLo+1)*w]
	edge := 0
	x := 0
	for ; x < 1 && x < w; x++ {
		out[x] = diffHPixel(row, w, x)
		edge++
	}
	for ; x+8 <= w-1; x += 8 {
		d := u.VsublU8(u.Vld1U8(row[x+1:]), u.Vld1U8(row[x-1:]))
		u.Vst1qS16(out[x:], d)
		u.Overhead(2, 1, 0)
	}
	for ; x < w; x++ {
		out[x] = diffHPixel(row, w, x)
		edge++
	}
	b.sobelTailCost(uint64(edge))
}

// sobelSmoothHNEON: 8 pixels/iter: widening add of the outer taps plus two
// widening adds of the centre.
func (o *Ops) sobelSmoothHNEON(src, tmp *image.Mat) {
	defer o.n.Session("sobel.smoothH", o.curSpan()).End()
	a := sobelArgs{in8: src.U8Pix, out: tmp.S16Pix, w: src.Width, h: src.Height}
	parRows(o, src.Height, a, sobelSmoothHNEONRow)
}

func sobelSmoothHNEONRow(b *Ops, a sobelArgs, y int) {
	w := a.w
	u := b.n
	row := a.in8[y*w : (y+1)*w]
	out := a.out[(y-a.outLo)*w : (y-a.outLo+1)*w]
	edge := 0
	x := 0
	for ; x < 1 && x < w; x++ {
		out[x] = smoothHPixel(row, w, x)
		edge++
	}
	for ; x+8 <= w-1; x += 8 {
		centre := u.Vld1U8(row[x:])
		acc := u.VaddlU8(u.Vld1U8(row[x-1:]), u.Vld1U8(row[x+1:]))
		acc = u.VaddwU8(acc, centre)
		acc = u.VaddwU8(acc, centre)
		u.Vst1qS16(out[x:], acc)
		u.Overhead(2, 1, 0)
	}
	for ; x < w; x++ {
		out[x] = smoothHPixel(row, w, x)
		edge++
	}
	b.sobelTailCost(uint64(edge))
}

// sobelSmoothVNEON: 8 pixels/iter on S16 rows: add outer rows, add centre
// shifted left by one.
func (o *Ops) sobelSmoothVNEON(tmp, dst *image.Mat) {
	defer o.n.Session("sobel.smoothV", o.curSpan()).End()
	a := sobelArgs{in16: tmp.S16Pix, out: dst.S16Pix, w: tmp.Width, h: tmp.Height}
	parRows(o, tmp.Height, a, sobelSmoothVNEONRow)
}

func sobelSmoothVNEONRow(b *Ops, a sobelArgs, y int) {
	w, h := a.w, a.h
	u := b.n
	r0 := a.in16[(clampIdx(y-1, h)-a.inLo)*w:]
	r1 := a.in16[(y-a.inLo)*w:]
	r2 := a.in16[(clampIdx(y+1, h)-a.inLo)*w:]
	out := a.out[(y-a.outLo)*w : (y-a.outLo+1)*w]
	edge := 0
	x := 0
	for ; x+8 <= w; x += 8 {
		acc := u.VaddqS16(u.Vld1qS16(r0[x:]), u.Vld1qS16(r2[x:]))
		acc = u.VaddqS16(acc, u.VshlqNS16(u.Vld1qS16(r1[x:]), 1))
		u.Vst1qS16(out[x:], acc)
		u.Overhead(2, 1, 0)
	}
	for ; x < w; x++ {
		out[x] = r0[x] + 2*r1[x] + r2[x]
		edge++
	}
	b.sobelTailCost(uint64(edge))
}

// sobelDiffVNEON: 8 pixels/iter on S16 rows: one subtract.
func (o *Ops) sobelDiffVNEON(tmp, dst *image.Mat) {
	defer o.n.Session("sobel.diffV", o.curSpan()).End()
	a := sobelArgs{in16: tmp.S16Pix, out: dst.S16Pix, w: tmp.Width, h: tmp.Height}
	parRows(o, tmp.Height, a, sobelDiffVNEONRow)
}

func sobelDiffVNEONRow(b *Ops, a sobelArgs, y int) {
	w, h := a.w, a.h
	u := b.n
	r0 := a.in16[(clampIdx(y-1, h)-a.inLo)*w:]
	r2 := a.in16[(clampIdx(y+1, h)-a.inLo)*w:]
	out := a.out[(y-a.outLo)*w : (y-a.outLo+1)*w]
	edge := 0
	x := 0
	for ; x+8 <= w; x += 8 {
		d := u.VsubqS16(u.Vld1qS16(r2[x:]), u.Vld1qS16(r0[x:]))
		u.Vst1qS16(out[x:], d)
		u.Overhead(2, 1, 0)
	}
	for ; x < w; x++ {
		out[x] = r2[x] - r0[x]
		edge++
	}
	b.sobelTailCost(uint64(edge))
}

// --- SSE2 ---

// sobelDiffHSSE2: 8 pixels/iter: unpack both neighbours to words, subtract.
func (o *Ops) sobelDiffHSSE2(src, tmp *image.Mat) {
	defer o.s.Session("sobel.diffH", o.curSpan()).End()
	a := sobelArgs{in8: src.U8Pix, out: tmp.S16Pix, w: src.Width, h: src.Height}
	a.zero = o.s.SetzeroSi128()
	parRows(o, src.Height, a, sobelDiffHSSE2Row)
}

func sobelDiffHSSE2Row(b *Ops, a sobelArgs, y int) {
	w := a.w
	u := b.s
	row := a.in8[y*w : (y+1)*w]
	out := a.out[(y-a.outLo)*w : (y-a.outLo+1)*w]
	edge := 0
	x := 0
	for ; x < 1 && x < w; x++ {
		out[x] = diffHPixel(row, w, x)
		edge++
	}
	for ; x+8 <= w-1; x += 8 {
		p := u.UnpackloEpi8(u.LoadlEpi64U8(row[x+1:]), a.zero)
		q := u.UnpackloEpi8(u.LoadlEpi64U8(row[x-1:]), a.zero)
		u.StoreuSi128S16(out[x:], u.SubEpi16(p, q))
		u.Overhead(2, 1, 0)
	}
	for ; x < w; x++ {
		out[x] = diffHPixel(row, w, x)
		edge++
	}
	b.sobelTailCost(uint64(edge))
}

// sobelSmoothHSSE2: 8 pixels/iter.
func (o *Ops) sobelSmoothHSSE2(src, tmp *image.Mat) {
	defer o.s.Session("sobel.smoothH", o.curSpan()).End()
	a := sobelArgs{in8: src.U8Pix, out: tmp.S16Pix, w: src.Width, h: src.Height}
	a.zero = o.s.SetzeroSi128()
	parRows(o, src.Height, a, sobelSmoothHSSE2Row)
}

func sobelSmoothHSSE2Row(b *Ops, a sobelArgs, y int) {
	w := a.w
	u := b.s
	row := a.in8[y*w : (y+1)*w]
	out := a.out[(y-a.outLo)*w : (y-a.outLo+1)*w]
	edge := 0
	x := 0
	for ; x < 1 && x < w; x++ {
		out[x] = smoothHPixel(row, w, x)
		edge++
	}
	for ; x+8 <= w-1; x += 8 {
		l := u.UnpackloEpi8(u.LoadlEpi64U8(row[x-1:]), a.zero)
		c := u.UnpackloEpi8(u.LoadlEpi64U8(row[x:]), a.zero)
		r := u.UnpackloEpi8(u.LoadlEpi64U8(row[x+1:]), a.zero)
		acc := u.AddEpi16(u.AddEpi16(l, r), u.SlliEpi16(c, 1))
		u.StoreuSi128S16(out[x:], acc)
		u.Overhead(2, 1, 0)
	}
	for ; x < w; x++ {
		out[x] = smoothHPixel(row, w, x)
		edge++
	}
	b.sobelTailCost(uint64(edge))
}

// sobelSmoothVSSE2: 8 pixels/iter on S16 rows.
func (o *Ops) sobelSmoothVSSE2(tmp, dst *image.Mat) {
	defer o.s.Session("sobel.smoothV", o.curSpan()).End()
	a := sobelArgs{in16: tmp.S16Pix, out: dst.S16Pix, w: tmp.Width, h: tmp.Height}
	parRows(o, tmp.Height, a, sobelSmoothVSSE2Row)
}

func sobelSmoothVSSE2Row(b *Ops, a sobelArgs, y int) {
	w, h := a.w, a.h
	u := b.s
	r0 := a.in16[(clampIdx(y-1, h)-a.inLo)*w:]
	r1 := a.in16[(y-a.inLo)*w:]
	r2 := a.in16[(clampIdx(y+1, h)-a.inLo)*w:]
	out := a.out[(y-a.outLo)*w : (y-a.outLo+1)*w]
	edge := 0
	x := 0
	for ; x+8 <= w; x += 8 {
		acc := u.AddEpi16(u.LoaduSi128S16(r0[x:]), u.LoaduSi128S16(r2[x:]))
		acc = u.AddEpi16(acc, u.SlliEpi16(u.LoaduSi128S16(r1[x:]), 1))
		u.StoreuSi128S16(out[x:], acc)
		u.Overhead(2, 1, 0)
	}
	for ; x < w; x++ {
		out[x] = r0[x] + 2*r1[x] + r2[x]
		edge++
	}
	b.sobelTailCost(uint64(edge))
}

// sobelDiffVSSE2: 8 pixels/iter on S16 rows.
func (o *Ops) sobelDiffVSSE2(tmp, dst *image.Mat) {
	defer o.s.Session("sobel.diffV", o.curSpan()).End()
	a := sobelArgs{in16: tmp.S16Pix, out: dst.S16Pix, w: tmp.Width, h: tmp.Height}
	parRows(o, tmp.Height, a, sobelDiffVSSE2Row)
}

func sobelDiffVSSE2Row(b *Ops, a sobelArgs, y int) {
	w, h := a.w, a.h
	u := b.s
	r0 := a.in16[(clampIdx(y-1, h)-a.inLo)*w:]
	r2 := a.in16[(clampIdx(y+1, h)-a.inLo)*w:]
	out := a.out[(y-a.outLo)*w : (y-a.outLo+1)*w]
	edge := 0
	x := 0
	for ; x+8 <= w; x += 8 {
		u.StoreuSi128S16(out[x:], u.SubEpi16(u.LoaduSi128S16(r2[x:]), u.LoaduSi128S16(r0[x:])))
		u.Overhead(2, 1, 0)
	}
	for ; x < w; x++ {
		out[x] = r2[x] - r0[x]
		edge++
	}
	b.sobelTailCost(uint64(edge))
}
