package cv

import (
	"testing"

	"simdstudy/internal/image"
)

// Host-side microbenchmarks of each kernel per path (emulation cost).

func benchKernel(b *testing.B, isa ISA, run func(o *Ops) error) {
	o := NewOps(isa, nil)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if err := run(o); err != nil {
			b.Fatal(err)
		}
	}
}

var benchRes = image.Resolution{Width: 320, Height: 240}

func BenchmarkConvert(b *testing.B) {
	src := image.SyntheticF32(benchRes, 1)
	dst := image.NewMat(benchRes.Width, benchRes.Height, image.S16)
	run := func(o *Ops) error { return o.ConvertF32ToS16(src, dst) }
	b.Run("scalar", func(b *testing.B) { benchKernel(b, ISAScalar, run) })
	b.Run("neon", func(b *testing.B) { benchKernel(b, ISANEON, run) })
	b.Run("sse2", func(b *testing.B) { benchKernel(b, ISASSE2, run) })
}

func BenchmarkThreshold(b *testing.B) {
	src := image.Synthetic(benchRes, 1)
	dst := image.NewMat(benchRes.Width, benchRes.Height, image.U8)
	run := func(o *Ops) error { return o.Threshold(src, dst, 128, 255, ThreshTrunc) }
	b.Run("scalar", func(b *testing.B) { benchKernel(b, ISAScalar, run) })
	b.Run("neon", func(b *testing.B) { benchKernel(b, ISANEON, run) })
	b.Run("sse2", func(b *testing.B) { benchKernel(b, ISASSE2, run) })
}

func BenchmarkGaussian(b *testing.B) {
	src := image.Synthetic(benchRes, 1)
	dst := image.NewMat(benchRes.Width, benchRes.Height, image.U8)
	run := func(o *Ops) error { return o.GaussianBlur(src, dst) }
	b.Run("scalar", func(b *testing.B) { benchKernel(b, ISAScalar, run) })
	b.Run("neon", func(b *testing.B) { benchKernel(b, ISANEON, run) })
	b.Run("sse2", func(b *testing.B) { benchKernel(b, ISASSE2, run) })
}

func BenchmarkSobel(b *testing.B) {
	src := image.Synthetic(benchRes, 1)
	dst := image.NewMat(benchRes.Width, benchRes.Height, image.S16)
	run := func(o *Ops) error { return o.SobelFilter(src, dst, 1, 0) }
	b.Run("scalar", func(b *testing.B) { benchKernel(b, ISAScalar, run) })
	b.Run("neon", func(b *testing.B) { benchKernel(b, ISANEON, run) })
	b.Run("sse2", func(b *testing.B) { benchKernel(b, ISASSE2, run) })
}

func BenchmarkEdges(b *testing.B) {
	src := image.Synthetic(benchRes, 1)
	dst := image.NewMat(benchRes.Width, benchRes.Height, image.U8)
	run := func(o *Ops) error { return o.DetectEdges(src, dst, 100) }
	b.Run("scalar", func(b *testing.B) { benchKernel(b, ISAScalar, run) })
	b.Run("neon", func(b *testing.B) { benchKernel(b, ISANEON, run) })
	b.Run("sse2", func(b *testing.B) { benchKernel(b, ISASSE2, run) })
}

func BenchmarkMedian(b *testing.B) {
	src := image.Synthetic(benchRes, 1)
	dst := image.NewMat(benchRes.Width, benchRes.Height, image.U8)
	run := func(o *Ops) error { return o.MedianBlur3x3(src, dst) }
	b.Run("scalar", func(b *testing.B) { benchKernel(b, ISAScalar, run) })
	b.Run("neon", func(b *testing.B) { benchKernel(b, ISANEON, run) })
	b.Run("sse2", func(b *testing.B) { benchKernel(b, ISASSE2, run) })
}

func BenchmarkRGBToGray(b *testing.B) {
	src := image.SyntheticRGB(benchRes, 1)
	dst := image.NewMat(benchRes.Width, benchRes.Height, image.U8)
	run := func(o *Ops) error { return o.RGBToGray(src, dst) }
	b.Run("scalar", func(b *testing.B) { benchKernel(b, ISAScalar, run) })
	b.Run("neon", func(b *testing.B) { benchKernel(b, ISANEON, run) })
}

func BenchmarkResizeHalf(b *testing.B) {
	src := image.Synthetic(benchRes, 1)
	dst := image.NewMat(benchRes.Width/2, benchRes.Height/2, image.U8)
	run := func(o *Ops) error { return o.ResizeHalf(src, dst) }
	b.Run("scalar", func(b *testing.B) { benchKernel(b, ISAScalar, run) })
	b.Run("neon", func(b *testing.B) { benchKernel(b, ISANEON, run) })
	b.Run("sse2", func(b *testing.B) { benchKernel(b, ISASSE2, run) })
}

func BenchmarkCanny(b *testing.B) {
	src := image.Synthetic(benchRes, 1)
	dst := image.NewMat(benchRes.Width, benchRes.Height, image.U8)
	run := func(o *Ops) error { return o.Canny(src, dst, 100, 300) }
	b.Run("scalar", func(b *testing.B) { benchKernel(b, ISAScalar, run) })
	b.Run("neon", func(b *testing.B) { benchKernel(b, ISANEON, run) })
	b.Run("sse2", func(b *testing.B) { benchKernel(b, ISASSE2, run) })
}
