package cv

// This file implements cache-blocked stage fusion for the multi-stage
// pipelines (Canny, DetectEdges). Instead of materializing each stage's
// full intermediate plane before the next stage starts — five plane-sized
// round trips through DRAM for Canny — the fused path streams the whole
// pipeline through horizontal strips sized to the modeled cache hierarchy.
// Intermediates live in pooled rolling windows (fuse.Strip) holding only
// the strip plus each stage's vertical halo; a window's live rows are
// carried across strips by fuse.Strip.Slide, so every intermediate value
// is produced exactly once.
//
// The fused path reuses the staged kernels' row and chunk bodies
// unchanged — the sobelArgs/cannyNMSArgs offsets translate plane rows to
// window rows — so the recorded dynamic instruction streams are
// bit-identical to the staged path's: the same rows run through the same
// bodies, only grouped differently in time. The halo-carry copies in
// Slide are bookkeeping, not modeled work, and record nothing.
//
// The combine stage of DetectEdges is chunk-parallel with a vector/tail
// split at flatQuantum boundaries; to keep its instruction stream
// identical the fused sweep only releases combine work in whole
// flatQuantum-aligned spans of the plane-linear index (except the final
// partial span at the plane's end), exactly the chunk grid the staged
// parFlat walks.

import (
	"fmt"
	"time"

	"simdstudy/internal/cache"
	"simdstudy/internal/fuse"
	"simdstudy/internal/image"
	"simdstudy/internal/integrity"
	"simdstudy/internal/obs"
	"simdstudy/internal/par"
	"simdstudy/internal/vec"
)

// FuseConfig selects cache-blocked stage fusion for the multi-stage
// pipelines. Zero value: fusion off, staged execution.
type FuseConfig struct {
	// Enabled routes Canny and DetectEdges through the fused sweep.
	Enabled bool
	// StripRows fixes the strip height; 0 sizes strips automatically so
	// the rolling windows fit half the last modeled cache level.
	StripRows int
	// Caches is the modeled hierarchy used by automatic strip sizing,
	// typically a platform descriptor's Caches (Table I). nil falls back
	// to a 256 KiB budget.
	Caches []cache.Config
}

// Signature renders the configuration as a stable string for content
// keys. Fused and staged execution are byte-identical by construction
// (the fusion tests assert it), but the memoization layer still keys on
// the full parameter set — a signature mismatch costing a recompute is
// cheap; a stale assumption serving wrong bytes is not.
func (f FuseConfig) Signature() string {
	if !f.Enabled {
		return "fuse=off"
	}
	s := fmt.Sprintf("fuse=on,strip=%d", f.StripRows)
	for _, c := range f.Caches {
		s += fmt.Sprintf(",%s:%d/%d/%d", c.Name, c.SizeBytes, c.LineBytes, c.Ways)
	}
	return s
}

// SetFuse configures stage fusion and invalidates the cached strip
// geometries.
func (o *Ops) SetFuse(cfg FuseConfig) {
	o.fuse = cfg
	o.fusedGeoms = o.fusedGeoms[:0]
}

// Fuse returns the current fusion configuration.
func (o *Ops) Fuse() FuseConfig { return o.fuse }

// fusedGeom caches one planned strip geometry per (kernel, shape) so
// steady-state fused calls stay allocation-free.
type fusedGeom struct {
	kernel string
	w, h   int
	g      fuse.Geometry
}

// Stage indices of the fused pipeline plans. Canny and DetectEdges share
// the four Sobel stages; stage 4 is Canny's magnitude (feeding NMS) or
// DetectEdges' threshold combine.
const (
	fsDiffH   = 0 // src --diffH--> t1
	fsSmoothV = 1 // t1 --smoothV--> gx
	fsSmoothH = 2 // src --smoothH--> t2
	fsDiffV   = 3 // t2 --diffV--> gy
	fsMag     = 4 // |gx|+|gy| -> mag
	fsNMS     = 5 // Canny only: non-maximum suppression -> marker plane
	fsCombine = 4 // DetectEdges only: |gx|+|gy| > thresh -> dst
)

// cannyFusePlan declares Canny's stage graph up to the NMS marker plane.
// Hysteresis is a global traversal and runs unfused after the sweep.
func cannyFusePlan() fuse.Plan {
	return fuse.Plan{
		Name: "canny",
		Stages: []fuse.Stage{
			{Name: "diffH", Inputs: []fuse.Input{{Stage: fuse.External}}, Elem: 2},
			{Name: "smoothV", Inputs: []fuse.Input{{Stage: fsDiffH, Halo: 1}}, Elem: 2},
			{Name: "smoothH", Inputs: []fuse.Input{{Stage: fuse.External}}, Elem: 2},
			{Name: "diffV", Inputs: []fuse.Input{{Stage: fsSmoothH, Halo: 1}}, Elem: 2},
			{Name: "mag", Inputs: []fuse.Input{{Stage: fsSmoothV}, {Stage: fsDiffV}}, Elem: 2},
			{Name: "nms", Inputs: []fuse.Input{{Stage: fsMag, Halo: 1}, {Stage: fsSmoothV}, {Stage: fsDiffV}}, Elem: 1, Full: true},
		},
	}
}

// edgesFusePlan declares DetectEdges' stage graph. The combine stage is
// released in flatQuantum-aligned element spans, so a span's last chunk
// can read gradient rows up to ceil(flatQuantum/w)-1 past the span's
// first row — expressed here as a vertical halo on the gradient inputs.
func edgesFusePlan(w int) fuse.Plan {
	hc := (flatQuantum + w - 1) / w
	return fuse.Plan{
		Name: "edges",
		Stages: []fuse.Stage{
			{Name: "diffH", Inputs: []fuse.Input{{Stage: fuse.External}}, Elem: 2},
			{Name: "smoothV", Inputs: []fuse.Input{{Stage: fsDiffH, Halo: 1}}, Elem: 2},
			{Name: "smoothH", Inputs: []fuse.Input{{Stage: fuse.External}}, Elem: 2},
			{Name: "diffV", Inputs: []fuse.Input{{Stage: fsSmoothH, Halo: 1}}, Elem: 2},
			{Name: "combine", Inputs: []fuse.Input{{Stage: fsSmoothV, Halo: hc}, {Stage: fsDiffV, Halo: hc}}, Elem: 1, Full: true},
		},
	}
}

// CannyFusePlan exposes the fused Canny stage graph (up to the NMS marker
// plane) for cost modeling — internal/timing replays the same strip
// geometry through the cache simulator.
func CannyFusePlan() fuse.Plan { return cannyFusePlan() }

// EdgesFusePlan exposes the fused DetectEdges stage graph for width w.
func EdgesFusePlan(w int) fuse.Plan { return edgesFusePlan(w) }

// fusedGeometry returns the strip geometry for kernel at w x h, planning
// and caching it on first use. The returned pointer is valid until the
// next SetFuse or a different-shape call appends to the cache.
func (o *Ops) fusedGeometry(kernel string, w, h int) (*fuse.Geometry, error) {
	for i := range o.fusedGeoms {
		fg := &o.fusedGeoms[i]
		if fg.kernel == kernel && fg.w == w && fg.h == h {
			return &fg.g, nil
		}
	}
	var p fuse.Plan
	switch kernel {
	case "Canny":
		p = cannyFusePlan()
	default:
		p = edgesFusePlan(w)
	}
	s := o.fuse.StripRows
	if s <= 0 {
		s = p.AutoStripRows(h, w, o.fuse.Caches)
	}
	if s > h {
		s = h
	}
	if s < 1 {
		s = 1
	}
	g, err := p.Geometry(h, s)
	if err != nil {
		return nil, err
	}
	o.fusedGeoms = append(o.fusedGeoms, fusedGeom{kernel: kernel, w: w, h: h, g: g})
	return &o.fusedGeoms[len(o.fusedGeoms)-1].g, nil
}

// fusedBytesSaved records how many intermediate-plane bytes the fused
// sweep avoided: the staged path's full S16 scratch planes minus the
// rolling windows actually allocated.
func (o *Ops) fusedBytesSaved(kernel string, g *fuse.Geometry, w, h, stagedPlanes int) {
	if o.Obs == nil {
		return
	}
	winRows := 0
	for _, c := range g.Cap {
		winRows += c
	}
	saved := stagedPlanes*2*w*h - 2*w*winRows
	if saved <= 0 {
		return
	}
	o.Obs.Counter("fused_plane_bytes_saved_total",
		obs.L("kernel", kernel), obs.L("isa", o.isa.String())).Add(uint64(saved))
}

// fusedAudit is the per-strip audit state of one fused sweep: the staged
// scalar reference plane, computed up front by a referee Ops, against
// which each strip's freshly-completed output rows are compared (and, on
// divergence, repaired) as soon as the strip finishes.
type fusedAudit struct {
	want  *image.Mat
	ce    *integrity.CorruptionError
	start time.Time
	sp    *obs.Span
}

// strip compares got's rows [y0, y1) against the reference, repairing
// from it and recording the corruption on divergence.
func (fa *fusedAudit) strip(o *Ops, kernel string, k, y0, y1 int, got *image.Mat) {
	first, diffs := diffRegion(got, fa.want, y0, y1, 0)
	if diffs == 0 {
		return
	}
	if fa.ce == nil {
		fa.ce = &integrity.CorruptionError{
			Kernel: kernel, ISA: o.isa.String(),
			Region:    integrity.Region{Row0: y0, Row1: y1, Width: got.Width},
			FirstDiff: first, Diffs: diffs,
		}
	} else {
		fa.ce.Diffs += diffs
		fa.ce.Region.Row1 = y1
	}
	w := got.Width
	copy(got.U8Pix[y0*w:y1*w], fa.want.U8Pix[y0*w:y1*w])
	if o.Obs != nil {
		o.Obs.Counter("fused_strip_audit_corruption_total",
			obs.L("kernel", kernel), obs.L("isa", o.isa.String())).Inc()
		o.Obs.Emit("integrity.fused_strip_corruption", map[string]any{
			"kernel": kernel, "isa": o.isa.String(), "trace_id": o.traceID,
			"strip": k, "row0": y0, "row1": y1, "diffs": diffs,
		})
	}
}

// finish reports the sweep's audit verdict to the auditor scoreboard and
// the kernel's breaker, mirroring auditedRun.
func (fa *fusedAudit) finish(o *Ops, kernel string) {
	if fa.ce != nil {
		fa.sp.SetAttr("mismatch", true)
	}
	fa.sp.End()
	o.aud.Observe(o.Obs, kernel, o.isa.String(), time.Since(fa.start), o.traceID, fa.ce)
	o.recordBreaker(kernel, fa.ce == nil)
	par.PutMat(fa.want)
}

// beginFusedAudit decides whether this fused sweep is audited and, if so,
// computes the staged scalar reference for ref(): per-strip compares then
// run against it as the sweep produces output rows. Guarded calls return
// nil — the guard referee already covers the fused output.
func (o *Ops) beginFusedAudit(w, h int, ref func(ro *Ops, d *image.Mat) error) (*fusedAudit, error) {
	if o.aud == nil || o.inGuard || !o.UseOptimized() || !o.aud.Sample() {
		return nil, nil
	}
	fa := &fusedAudit{start: time.Now(), sp: o.curSpan().Child("integrity.fused_audit")}
	ro := NewOps(o.isa, nil)
	ro.SetUseOptimized(false)
	fa.want = par.GetMat(w, h, image.U8)
	if err := ref(ro, fa.want); err != nil {
		fa.sp.End()
		par.PutMat(fa.want)
		return nil, err
	}
	return fa, nil
}

// cannyFused runs the Canny pipeline as a single strip-streamed sweep:
// the four Sobel passes, the magnitude stage and NMS advance together one
// strip at a time, with the S16 intermediates confined to rolling
// windows. The NMS marker plane is full-size (hysteresis walks it
// globally afterwards), so the staged path's gx/gy/mag planes and the two
// Sobel scratch planes never materialize.
func (o *Ops) cannyFused(src, dst *image.Mat, lowThresh, highThresh int16) error {
	w, h := src.Width, src.Height
	g, err := o.fusedGeometry("Canny", w, h)
	if err != nil {
		return err
	}

	t1 := par.GetMat(w, g.Cap[fsDiffH], image.S16)
	defer par.PutMat(t1)
	gx := par.GetMat(w, g.Cap[fsSmoothV], image.S16)
	defer par.PutMat(gx)
	t2 := par.GetMat(w, g.Cap[fsSmoothH], image.S16)
	defer par.PutMat(t2)
	gy := par.GetMat(w, g.Cap[fsDiffV], image.S16)
	defer par.PutMat(gy)
	mag := par.GetMat(w, g.Cap[fsMag], image.S16)
	defer par.PutMat(mag)
	nms := par.GetMat(w, h, image.U8) // zero-filled: 0 none, 1 weak, 2 strong
	defer par.PutMat(nms)

	var t1W, gxW, t2W, gyW, magW fuse.Strip[int16]
	t1W.Bind(t1.S16Pix, w, g.Cap[fsDiffH])
	gxW.Bind(gx.S16Pix, w, g.Cap[fsSmoothV])
	t2W.Bind(t2.S16Pix, w, g.Cap[fsSmoothH])
	gyW.Bind(gy.S16Pix, w, g.Cap[fsDiffV])
	magW.Bind(mag.S16Pix, w, g.Cap[fsMag])

	fa, err := o.beginFusedAudit(w, h, func(ro *Ops, d *image.Mat) error {
		return ro.cannyStagedNMS(src, d, lowThresh, highThresh)
	})
	if err != nil {
		return err
	}

	// Body selection and per-sweep hoists, mirroring the staged pass
	// wrappers: the SSE2 horizontal passes each hoist one unpack constant,
	// so the fused sweep records exactly two SetzeroSi128 as well.
	diffHBody, smoothVBody, smoothHBody, diffVBody := sobelDiffHScalarRow,
		sobelSmoothVScalarRow, sobelSmoothHScalarRow, sobelDiffVScalarRow
	var zeroDiffH, zeroSmoothH vec.V128
	if o.UseOptimized() {
		switch o.isa {
		case ISANEON:
			defer o.n.Session("canny.fused", o.curSpan()).End()
			diffHBody, smoothVBody = sobelDiffHNEONRow, sobelSmoothVNEONRow
			smoothHBody, diffVBody = sobelSmoothHNEONRow, sobelDiffVNEONRow
		case ISASSE2:
			defer o.s.Session("canny.fused", o.curSpan()).End()
			diffHBody, smoothVBody = sobelDiffHSSE2Row, sobelSmoothVSSE2Row
			smoothHBody, diffVBody = sobelSmoothHSSE2Row, sobelDiffVSSE2Row
			zeroDiffH = o.s.SetzeroSi128()
			zeroSmoothH = o.s.SetzeroSi128()
		}
	}

	for k := 0; k < g.Strips; k++ {
		t1W.Slide(g.Keep(fsDiffH, k))
		if y0, y1 := g.StageRows(fsDiffH, k); y1 > y0 {
			t1W.Produce(y1 - 1)
			parRowsRange(o, y0, y1, sobelArgs{
				in8: src.U8Pix, out: t1W.Buf(), w: w, h: h,
				outLo: t1W.Lo(), zero: zeroDiffH,
			}, diffHBody)
		}
		gxW.Slide(g.Keep(fsSmoothV, k))
		if y0, y1 := g.StageRows(fsSmoothV, k); y1 > y0 {
			gxW.Produce(y1 - 1)
			parRowsRange(o, y0, y1, sobelArgs{
				in16: t1W.Buf(), out: gxW.Buf(), w: w, h: h,
				inLo: t1W.Lo(), outLo: gxW.Lo(),
			}, smoothVBody)
		}
		t2W.Slide(g.Keep(fsSmoothH, k))
		if y0, y1 := g.StageRows(fsSmoothH, k); y1 > y0 {
			t2W.Produce(y1 - 1)
			parRowsRange(o, y0, y1, sobelArgs{
				in8: src.U8Pix, out: t2W.Buf(), w: w, h: h,
				outLo: t2W.Lo(), zero: zeroSmoothH,
			}, smoothHBody)
		}
		gyW.Slide(g.Keep(fsDiffV, k))
		if y0, y1 := g.StageRows(fsDiffV, k); y1 > y0 {
			gyW.Produce(y1 - 1)
			parRowsRange(o, y0, y1, sobelArgs{
				in16: t2W.Buf(), out: gyW.Buf(), w: w, h: h,
				inLo: t2W.Lo(), outLo: gyW.Lo(),
			}, diffVBody)
		}
		magW.Slide(g.Keep(fsMag, k))
		if y0, y1 := g.StageRows(fsMag, k); y1 > y0 {
			magW.Produce(y1 - 1)
			// Element-wise with a linear cost model, so the strip-local
			// chunk grid records the same totals as the staged one.
			parFlat(o, (y1-y0)*w, cannyMagArgs{
				gx:  gxW.Buf()[(y0-gxW.Lo())*w:],
				gy:  gyW.Buf()[(y0-gyW.Lo())*w:],
				mag: magW.Buf()[(y0-magW.Lo())*w:],
			}, cannyMagChunk)
		}
		if y0, y1 := g.StageRows(fsNMS, k); y1 > y0 {
			if gxW.Lo() != gyW.Lo() {
				panic("cv: fused canny gradient windows out of step")
			}
			parRowsRange(o, y0, y1, cannyNMSArgs{
				gx: gxW.Buf(), gy: gyW.Buf(), mag: magW.Buf(), nms: nms.U8Pix,
				w: w, h: h, magLo: magW.Lo(), gLo: gxW.Lo(),
				low: lowThresh, high: highThresh,
			}, cannyNMSRow)
			if fa != nil {
				fa.strip(o, "Canny", k, y0, y1, nms)
			}
		}
	}

	o.cannyHysteresis(nms.U8Pix, dst.U8Pix, w, h)
	if fa != nil {
		fa.finish(o, "Canny")
	}
	// Staged Canny materializes five full S16 planes: the two Sobel
	// scratch planes plus gx, gy and mag.
	o.fusedBytesSaved("Canny", g, w, h, 5)
	return nil
}

// edgesFused runs the DetectEdges pipeline as a strip-streamed sweep. The
// combine stage writes dst directly; it advances in flatQuantum-aligned
// element spans so its vector/tail chunk split matches the staged
// parFlat grid exactly.
func (o *Ops) edgesFused(src, dst *image.Mat, thresh int16) error {
	w, h := src.Width, src.Height
	n := w * h
	g, err := o.fusedGeometry("DetectEdges", w, h)
	if err != nil {
		return err
	}

	t1 := par.GetMat(w, g.Cap[fsDiffH], image.S16)
	defer par.PutMat(t1)
	gx := par.GetMat(w, g.Cap[fsSmoothV], image.S16)
	defer par.PutMat(gx)
	t2 := par.GetMat(w, g.Cap[fsSmoothH], image.S16)
	defer par.PutMat(t2)
	gy := par.GetMat(w, g.Cap[fsDiffV], image.S16)
	defer par.PutMat(gy)

	var t1W, gxW, t2W, gyW fuse.Strip[int16]
	t1W.Bind(t1.S16Pix, w, g.Cap[fsDiffH])
	gxW.Bind(gx.S16Pix, w, g.Cap[fsSmoothV])
	t2W.Bind(t2.S16Pix, w, g.Cap[fsSmoothH])
	gyW.Bind(gy.S16Pix, w, g.Cap[fsDiffV])

	fa, err := o.beginFusedAudit(w, h, func(ro *Ops, d *image.Mat) error {
		return ro.edgesStaged(src, d, thresh)
	})
	if err != nil {
		return err
	}

	diffHBody, smoothVBody, smoothHBody, diffVBody := sobelDiffHScalarRow,
		sobelSmoothVScalarRow, sobelSmoothHScalarRow, sobelDiffVScalarRow
	combineBody := magThreshScalarChunk
	var zeroDiffH, zeroSmoothH, vthresh vec.V128
	if o.UseOptimized() {
		switch o.isa {
		case ISANEON:
			defer o.n.Session("edges.fused", o.curSpan()).End()
			diffHBody, smoothVBody = sobelDiffHNEONRow, sobelSmoothVNEONRow
			smoothHBody, diffVBody = sobelSmoothHNEONRow, sobelDiffVNEONRow
			combineBody = magThreshNEONChunk
			vthresh = o.n.VdupqNS16(thresh)
		case ISASSE2:
			defer o.s.Session("edges.fused", o.curSpan()).End()
			diffHBody, smoothVBody = sobelDiffHSSE2Row, sobelSmoothVSSE2Row
			smoothHBody, diffVBody = sobelSmoothHSSE2Row, sobelDiffVSSE2Row
			combineBody = magThreshSSE2Chunk
			zeroDiffH = o.s.SetzeroSi128()
			zeroSmoothH = o.s.SetzeroSi128()
			vthresh = o.s.Set1Epi16(thresh)
		}
	}

	done := 0     // combined plane-linear elements so far
	auditRow := 0 // dst rows compared so far
	for k := 0; k < g.Strips; k++ {
		t1W.Slide(g.Keep(fsDiffH, k))
		if y0, y1 := g.StageRows(fsDiffH, k); y1 > y0 {
			t1W.Produce(y1 - 1)
			parRowsRange(o, y0, y1, sobelArgs{
				in8: src.U8Pix, out: t1W.Buf(), w: w, h: h,
				outLo: t1W.Lo(), zero: zeroDiffH,
			}, diffHBody)
		}
		gxW.Slide(g.Keep(fsSmoothV, k))
		if y0, y1 := g.StageRows(fsSmoothV, k); y1 > y0 {
			gxW.Produce(y1 - 1)
			parRowsRange(o, y0, y1, sobelArgs{
				in16: t1W.Buf(), out: gxW.Buf(), w: w, h: h,
				inLo: t1W.Lo(), outLo: gxW.Lo(),
			}, smoothVBody)
		}
		t2W.Slide(g.Keep(fsSmoothH, k))
		if y0, y1 := g.StageRows(fsSmoothH, k); y1 > y0 {
			t2W.Produce(y1 - 1)
			parRowsRange(o, y0, y1, sobelArgs{
				in8: src.U8Pix, out: t2W.Buf(), w: w, h: h,
				outLo: t2W.Lo(), zero: zeroSmoothH,
			}, smoothHBody)
		}
		gyW.Slide(g.Keep(fsDiffV, k))
		if y0, y1 := g.StageRows(fsDiffV, k); y1 > y0 {
			gyW.Produce(y1 - 1)
			parRowsRange(o, y0, y1, sobelArgs{
				in16: t2W.Buf(), out: gyW.Buf(), w: w, h: h,
				inLo: t2W.Lo(), outLo: gyW.Lo(),
			}, diffVBody)
		}
		// Combine everything the gradients now cover, rounded down to the
		// staged chunk grid; the final strip takes the plane's tail too.
		avail := (g.Frontier(fsCombine, k) + 1) * w
		c1 := avail / flatQuantum * flatQuantum
		if avail == n {
			c1 = n
		}
		if c1 > done {
			if gxW.Lo() != gyW.Lo() {
				panic("cv: fused edges gradient windows out of step")
			}
			base := gxW.Lo() * w
			parFlatRange(o, done-base, c1-base, magThreshArgs{
				gx: gxW.Buf(), gy: gyW.Buf(), d: dst.U8Pix[base:],
				thresh: thresh, vthresh: vthresh,
			}, combineBody)
			done = c1
		}
		if fa != nil {
			if r := done / w; r > auditRow {
				fa.strip(o, "DetectEdges", k, auditRow, r, dst)
				auditRow = r
			}
		}
	}

	if fa != nil {
		fa.finish(o, "DetectEdges")
	}
	// Staged DetectEdges materializes four full S16 planes: the two Sobel
	// scratch planes plus gx and gy.
	o.fusedBytesSaved("DetectEdges", g, w, h, 4)
	return nil
}
