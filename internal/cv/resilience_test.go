package cv

import (
	"context"
	"errors"
	"sync"
	"testing"
	"time"

	"simdstudy/internal/faults"
	"simdstudy/internal/image"
	"simdstudy/internal/resilience"
)

// testClock is a settable time source for deterministic breaker cooldowns.
type testClock struct {
	mu sync.Mutex
	t  time.Time
}

func (c *testClock) Now() time.Time {
	c.mu.Lock()
	defer c.mu.Unlock()
	return c.t
}

func (c *testClock) Advance(d time.Duration) {
	c.mu.Lock()
	defer c.mu.Unlock()
	c.t = c.t.Add(d)
}

// breakerOps builds a guarded NEON Ops wired to a fresh breaker set with a
// manual clock: MinSamples 2 at rate 0.5 means two fallbacks open the
// breaker.
func breakerOps(clk *testClock) (*Ops, *resilience.BreakerSet) {
	set := resilience.NewBreakerSet(resilience.BreakerConfig{
		Window: 8, MinSamples: 2, FailureRate: 0.5,
		OpenFor: time.Second, Clock: clk.Now,
	}, nil)
	g := NewOps(ISANEON, nil)
	g.SetGuardPolicy(GuardPolicy{SampleRows: 48, MaxRetries: 0, KillAfter: -1})
	g.SetBreakers(set)
	return g, set
}

// TestBreakerOpensAndServesScalar: sustained guard fallbacks must open the
// kernel's breaker, after which calls run the scalar path transparently —
// correct output, no referee, no new fault records — while UseOptimized
// stays latched on (the breaker, not the kill-switch, made the call).
func TestBreakerOpensAndServesScalar(t *testing.T) {
	src := image.Synthetic(image.Resolution{Width: 64, Height: 48}, 11)
	ref := NewOps(ISANEON, nil)
	ref.SetUseOptimized(false)
	want := image.NewMat(64, 48, image.U8)
	if err := ref.GaussianBlur(src, want); err != nil {
		t.Fatal(err)
	}

	clk := &testClock{t: time.Unix(0, 0)}
	g, set := breakerOps(clk)
	g.SetFaultInjector(&corruptor{site: faults.SiteALU, remaining: -1})
	dst := image.NewMat(64, 48, image.U8)
	for i := 0; i < 2; i++ {
		if err := g.GaussianBlur(src, dst); err != nil {
			t.Fatal(err)
		}
	}
	if st := set.State("GaussianBlur", "neon"); st != resilience.StateOpen {
		t.Fatalf("after 2 fallbacks breaker = %v, want open", st)
	}

	// Open breaker: the SIMD path (and its injector) must be bypassed.
	before := len(g.Faults())
	if err := g.GaussianBlur(src, dst); err != nil {
		t.Fatal(err)
	}
	if !want.EqualTo(dst) {
		t.Fatalf("open-breaker output differs from scalar in %d pixels", want.DiffCount(dst, 0))
	}
	if len(g.Faults()) != before {
		t.Fatalf("open-breaker call recorded faults: %v", g.Faults()[before:])
	}
	if !g.UseOptimized() {
		t.Fatal("breaker demotion must not trip the useOptimized latch")
	}
}

// TestBreakerHalfOpenProbeCloses: once the faulty unit recovers, the
// half-open probe after the cooldown must re-arm the SIMD path.
func TestBreakerHalfOpenProbeCloses(t *testing.T) {
	src := image.Synthetic(image.Resolution{Width: 64, Height: 48}, 12)
	clk := &testClock{t: time.Unix(0, 0)}
	g, set := breakerOps(clk)
	g.SetFaultInjector(&corruptor{site: faults.SiteALU, remaining: -1})
	dst := image.NewMat(64, 48, image.U8)
	for i := 0; i < 2; i++ {
		if err := g.GaussianBlur(src, dst); err != nil {
			t.Fatal(err)
		}
	}

	g.SetFaultInjector(nil) // the unit recovers
	clk.Advance(time.Second)
	if err := g.GaussianBlur(src, dst); err != nil {
		t.Fatal(err)
	}
	if st := set.State("GaussianBlur", "neon"); st != resilience.StateClosed {
		t.Fatalf("clean probe left breaker %v, want closed", st)
	}

	// Closed again: a clean call must use SIMD and stay closed.
	plain := NewOps(ISANEON, nil)
	want := image.NewMat(64, 48, image.U8)
	if err := plain.GaussianBlur(src, want); err != nil {
		t.Fatal(err)
	}
	if err := g.GaussianBlur(src, dst); err != nil {
		t.Fatal(err)
	}
	if !want.EqualTo(dst) {
		t.Fatal("re-armed breaker should serve the SIMD output")
	}
}

// TestBreakerStuckOpenTripsKillSwitch: when the re-arm budget is spent the
// breaker latches stuck-open and maps onto the legacy kill-switch:
// useOptimized off plus an ActionKillSwitch fault record.
func TestBreakerStuckOpenTripsKillSwitch(t *testing.T) {
	src := image.Synthetic(image.Resolution{Width: 64, Height: 48}, 13)
	clk := &testClock{t: time.Unix(0, 0)}
	set := resilience.NewBreakerSet(resilience.BreakerConfig{
		Window: 8, MinSamples: 2, FailureRate: 0.5,
		OpenFor: time.Second, GiveUpAfter: 1, Clock: clk.Now,
	}, nil)
	g := NewOps(ISANEON, nil)
	g.SetGuardPolicy(GuardPolicy{SampleRows: 48, MaxRetries: 0, KillAfter: -1})
	g.SetBreakers(set)
	g.SetFaultInjector(&corruptor{site: faults.SiteALU, remaining: -1})
	dst := image.NewMat(64, 48, image.U8)
	for i := 0; i < 2; i++ { // open #1
		if err := g.GaussianBlur(src, dst); err != nil {
			t.Fatal(err)
		}
	}
	clk.Advance(time.Second)
	if err := g.GaussianBlur(src, dst); err != nil { // failed probe: open #2, latched
		t.Fatal(err)
	}
	if st := set.State("GaussianBlur", "neon"); st != resilience.StateStuckOpen {
		t.Fatalf("breaker = %v, want stuck-open", st)
	}
	if g.UseOptimized() {
		t.Fatal("stuck-open breaker must trip the kill-switch")
	}
	var tripped bool
	for _, f := range g.Faults() {
		if f.Action == ActionKillSwitch {
			tripped = true
		}
	}
	if !tripped {
		t.Fatalf("no kill-switch record: %v", g.Faults())
	}
}

// stepCtx is a context whose Err() trips after a fixed number of polls,
// giving deterministic mid-kernel cancellation regardless of wall time.
type stepCtx struct {
	context.Context
	mu   sync.Mutex
	left int
}

func (c *stepCtx) Err() error {
	c.mu.Lock()
	defer c.mu.Unlock()
	c.left--
	if c.left < 0 {
		return context.Canceled
	}
	return nil
}

// TestCtxCancelMidKernel: cancellation partway through the row loops must
// surface as a typed DeadlineError with partial-progress accounting, and
// the Ops must be reusable afterwards.
func TestCtxCancelMidKernel(t *testing.T) {
	src := image.Synthetic(image.Resolution{Width: 64, Height: 48}, 14)
	for _, isa := range []ISA{ISAScalar, ISANEON, ISASSE2} {
		o := NewOps(isa, nil)
		dst := image.NewMat(64, 48, image.U8)
		ctx := &stepCtx{Context: context.Background(), left: 11}
		err := o.GaussianBlurCtx(ctx, src, dst)
		var de *resilience.DeadlineError
		if !errors.As(err, &de) {
			t.Fatalf("%v: err = %v, want *resilience.DeadlineError", isa, err)
		}
		if !errors.Is(err, context.Canceled) {
			t.Fatalf("%v: DeadlineError must unwrap to context.Canceled", isa)
		}
		if de.Unit != "rows" || de.Total != 2*48 {
			t.Errorf("%v: accounting = %d/%d %s, want total %d rows", isa, de.Completed, de.Total, de.Unit, 2*48)
		}
		if de.Completed <= 0 || de.Completed >= de.Total {
			t.Errorf("%v: Completed = %d, want mid-kernel (0 < n < %d)", isa, de.Completed, de.Total)
		}

		// The unwind must leave the Ops clean for the next call.
		if err := o.GaussianBlurCtx(context.Background(), src, dst); err != nil {
			t.Fatalf("%v: Ops unusable after cancellation: %v", isa, err)
		}
	}
}

// TestCtxCancelNestedKernel: DetectEdges nests two Sobel filters; the row
// accounting must span the whole composite call.
func TestCtxCancelNestedKernel(t *testing.T) {
	src := image.Synthetic(image.Resolution{Width: 64, Height: 48}, 15)
	o := NewOps(ISASSE2, nil)
	dst := image.NewMat(64, 48, image.U8)
	ctx := &stepCtx{Context: context.Background(), left: 3 * 48} // into the second Sobel
	err := o.DetectEdgesCtx(ctx, src, dst, 80)
	var de *resilience.DeadlineError
	if !errors.As(err, &de) {
		t.Fatalf("err = %v, want *resilience.DeadlineError", err)
	}
	if de.Op != "cv.DetectEdges" || de.Total != 4*48 {
		t.Errorf("accounting op=%s total=%d, want cv.DetectEdges / %d", de.Op, de.Total, 4*48)
	}
	if de.Completed < 2*48 {
		t.Errorf("Completed = %d rows; cancellation should land inside the second Sobel", de.Completed)
	}
}

// TestCtxAlreadyExpired: a context that is already done must stop the call
// before any row is produced.
func TestCtxAlreadyExpired(t *testing.T) {
	src := image.Synthetic(image.Resolution{Width: 64, Height: 48}, 16)
	o := NewOps(ISANEON, nil)
	dst := image.NewMat(64, 48, image.U8)
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	err := o.ThresholdCtx(ctx, src, dst, 100, 255, ThreshTrunc)
	var de *resilience.DeadlineError
	if !errors.As(err, &de) || de.Completed != 0 {
		t.Fatalf("err = %v, want zero-progress DeadlineError", err)
	}
}

// TestCancelledProbeIsReleased: a half-open probe whose call is cancelled
// before the guard reaches a verdict must be handed back to the budget, or
// the breaker could never close again.
func TestCancelledProbeIsReleased(t *testing.T) {
	src := image.Synthetic(image.Resolution{Width: 64, Height: 48}, 17)
	clk := &testClock{t: time.Unix(0, 0)}
	g, set := breakerOps(clk)
	g.SetFaultInjector(&corruptor{site: faults.SiteALU, remaining: -1})
	dst := image.NewMat(64, 48, image.U8)
	for i := 0; i < 2; i++ {
		if err := g.GaussianBlur(src, dst); err != nil {
			t.Fatal(err)
		}
	}
	g.SetFaultInjector(nil)
	clk.Advance(time.Second)

	// This probe is admitted, then cancelled mid-run: no verdict.
	ctx := &stepCtx{Context: context.Background(), left: 11}
	if err := g.GaussianBlurCtx(ctx, src, dst); !errors.Is(err, context.Canceled) {
		t.Fatalf("err = %v, want cancellation", err)
	}
	if st := set.State("GaussianBlur", "neon"); st != resilience.StateHalfOpen {
		t.Fatalf("breaker = %v, want still half-open", st)
	}

	// The budget must be whole again: a clean probe closes the breaker.
	if err := g.GaussianBlur(src, dst); err != nil {
		t.Fatal(err)
	}
	if st := set.State("GaussianBlur", "neon"); st != resilience.StateClosed {
		t.Fatalf("breaker = %v, want closed — the cancelled probe leaked", st)
	}
}

// TestGuardBackoffHonorsContext: with a backoff between retries, a context
// cancelled during the wait must abort the retry loop as a DeadlineError.
func TestGuardBackoffHonorsContext(t *testing.T) {
	src := image.Synthetic(image.Resolution{Width: 64, Height: 48}, 18)
	g := NewOps(ISASSE2, nil)
	g.SetGuardPolicy(GuardPolicy{
		SampleRows: 48, MaxRetries: 3, KillAfter: -1,
		Backoff: resilience.Backoff{Base: time.Hour, Seed: 1},
	})
	g.SetFaultInjector(&corruptor{site: faults.SiteALU, remaining: -1})
	dst := image.NewMat(64, 48, image.U8)

	ctx, cancel := context.WithCancel(context.Background())
	done := make(chan error, 1)
	go func() { done <- g.ThresholdCtx(ctx, src, dst, 100, 255, ThreshTrunc) }()
	time.Sleep(20 * time.Millisecond) // reach the hour-long backoff sleep
	cancel()
	select {
	case err := <-done:
		if !errors.Is(err, context.Canceled) {
			t.Fatalf("err = %v, want cancellation through the backoff sleep", err)
		}
	case <-time.After(5 * time.Second):
		t.Fatal("cancellation did not interrupt the backoff sleep")
	}
}
