package cv

import (
	"strings"
	"testing"
	"testing/quick"

	"simdstudy/internal/image"
	"simdstudy/internal/sat"
	"simdstudy/internal/trace"
)

var testRes = image.Resolution{Width: 67, Height: 41, Name: "67x41"} // odd sizes exercise SIMD tails

func TestISAString(t *testing.T) {
	if ISAScalar.String() != "scalar" || ISANEON.String() != "neon" || ISASSE2.String() != "sse2" {
		t.Fatal("ISA names")
	}
	if !strings.Contains(ISA(9).String(), "9") {
		t.Fatal("unknown ISA")
	}
}

func TestUseOptimizedToggle(t *testing.T) {
	o := NewOps(ISANEON, nil)
	if !o.UseOptimized() {
		t.Fatal("optimizations should start enabled")
	}
	o.SetUseOptimized(false)
	if o.UseOptimized() {
		t.Fatal("toggle off failed")
	}
	o.SetUseOptimized(true)
	if !o.UseOptimized() {
		t.Fatal("toggle on failed")
	}
	s := NewOps(ISAScalar, nil)
	if s.UseOptimized() {
		t.Fatal("scalar ISA never reports optimized")
	}
	if s.ISA() != ISAScalar {
		t.Fatal("ISA accessor")
	}
}

// --- Benchmark 1: convert ---

func TestConvertSSE2MatchesScalarExactly(t *testing.T) {
	src := image.SyntheticF32(testRes, 1)
	want := image.NewMat(testRes.Width, testRes.Height, image.S16)
	got := image.NewMat(testRes.Width, testRes.Height, image.S16)

	o := NewOps(ISASSE2, nil)
	o.SetUseOptimized(false)
	if err := o.ConvertF32ToS16(src, want); err != nil {
		t.Fatal(err)
	}
	o.SetUseOptimized(true)
	if err := o.ConvertF32ToS16(src, got); err != nil {
		t.Fatal(err)
	}
	if !want.EqualTo(got) {
		t.Fatalf("SSE2 hand path differs from scalar in %d pixels", want.DiffCount(got, 0))
	}
}

func TestConvertNEONTruncatesWithinOneOfScalar(t *testing.T) {
	src := image.SyntheticF32(testRes, 2)
	scalar := image.NewMat(testRes.Width, testRes.Height, image.S16)
	hand := image.NewMat(testRes.Width, testRes.Height, image.S16)

	o := NewOps(ISANEON, nil)
	o.SetUseOptimized(false)
	if err := o.ConvertF32ToS16(src, scalar); err != nil {
		t.Fatal(err)
	}
	o.SetUseOptimized(true)
	if err := o.ConvertF32ToS16(src, hand); err != nil {
		t.Fatal(err)
	}
	// vcvt truncates, ARM scalar rounds half away from zero: off by at
	// most 1, a documented divergence of the real NEON port.
	if d := scalar.DiffCount(hand, 1); d != 0 {
		t.Fatalf("NEON hand path differs from scalar by >1 in %d pixels", d)
	}
	// And the hand path must match the truncating reference exactly.
	for i, v := range src.F32Pix {
		want := sat.NarrowInt32ToInt16(sat.Float32ToInt32Truncate(v))
		if hand.S16Pix[i] != want {
			t.Fatalf("pixel %d: hand %d want %d (src %v)", i, hand.S16Pix[i], want, v)
		}
	}
}

func TestConvertTypeChecks(t *testing.T) {
	o := NewOps(ISAScalar, nil)
	f := image.NewMat(4, 4, image.F32)
	s := image.NewMat(4, 4, image.S16)
	u := image.NewMat(4, 4, image.U8)
	small := image.NewMat(2, 2, image.S16)
	if err := o.ConvertF32ToS16(u, s); err == nil {
		t.Error("U8 src should fail")
	}
	if err := o.ConvertF32ToS16(f, u); err == nil {
		t.Error("U8 dst should fail")
	}
	if err := o.ConvertF32ToS16(f, small); err == nil {
		t.Error("shape mismatch should fail")
	}
	if err := o.ConvertF32ToS16(f, s); err != nil {
		t.Error(err)
	}
}

// TestConvertInstructionCounts verifies the Section V arithmetic: the NEON
// hand loop retires 14 instructions per 8 pixels (8 SIMD + 6 overhead),
// while the scalar loop needs many more per pixel.
func TestConvertInstructionCounts(t *testing.T) {
	res := image.Resolution{Width: 160, Height: 10, Name: ""}
	src := image.SyntheticF32(res, 1)
	dst := image.NewMat(res.Width, res.Height, image.S16)

	var hand trace.Counter
	o := NewOps(ISANEON, &hand)
	if err := o.ConvertF32ToS16(src, dst); err != nil {
		t.Fatal(err)
	}
	pixels := uint64(res.Width * res.Height)
	iters := pixels / 8
	if got := hand.Total(); got != 14*iters {
		t.Errorf("NEON hand: %d instructions, want %d (14 per 8 px)", got, 14*iters)
	}

	var scalar trace.Counter
	os := NewOps(ISANEON, &scalar)
	os.SetUseOptimized(false)
	if err := os.ConvertF32ToS16(src, dst); err != nil {
		t.Fatal(err)
	}
	perPixelScalar := float64(scalar.Total()) / float64(pixels)
	perPixelHand := float64(hand.Total()) / float64(pixels)
	if perPixelScalar <= 2*perPixelHand {
		t.Errorf("scalar (%v/px) should be far costlier than hand (%v/px)",
			perPixelScalar, perPixelHand)
	}

	var sse trace.Counter
	ox := NewOps(ISASSE2, &sse)
	if err := ox.ConvertF32ToS16(src, dst); err != nil {
		t.Fatal(err)
	}
	if got := sse.Total(); got != 12*iters { // 6 SSE2 + 6 overhead
		t.Errorf("SSE2 hand: %d instructions, want %d", got, 12*iters)
	}
}

// --- Benchmark 2: threshold ---

func TestThresholdAllPathsAgree(t *testing.T) {
	src := image.Synthetic(testRes, 3)
	for _, typ := range []ThreshType{ThreshBinary, ThreshBinaryInv, ThreshTrunc, ThreshToZero, ThreshToZeroInv} {
		want := image.NewMat(testRes.Width, testRes.Height, image.U8)
		oScalar := NewOps(ISAScalar, nil)
		if err := oScalar.Threshold(src, want, 100, 255, typ); err != nil {
			t.Fatal(err)
		}
		for _, isa := range []ISA{ISANEON, ISASSE2} {
			got := image.NewMat(testRes.Width, testRes.Height, image.U8)
			o := NewOps(isa, nil)
			if err := o.Threshold(src, got, 100, 255, typ); err != nil {
				t.Fatal(err)
			}
			if !want.EqualTo(got) {
				t.Errorf("%v/%v: %d pixels differ", isa, typ, want.DiffCount(got, 0))
			}
		}
	}
}

func TestThresholdSemantics(t *testing.T) {
	src := image.NewMat(4, 1, image.U8)
	copy(src.U8Pix, []uint8{0, 100, 101, 255})
	dst := image.NewMat(4, 1, image.U8)
	o := NewOps(ISAScalar, nil)

	check := func(typ ThreshType, want []uint8) {
		t.Helper()
		if err := o.Threshold(src, dst, 100, 200, typ); err != nil {
			t.Fatal(err)
		}
		for i := range want {
			if dst.U8Pix[i] != want[i] {
				t.Errorf("%v pixel %d: got %d want %d", typ, i, dst.U8Pix[i], want[i])
			}
		}
	}
	check(ThreshBinary, []uint8{0, 0, 200, 200})
	check(ThreshBinaryInv, []uint8{200, 200, 0, 0})
	check(ThreshTrunc, []uint8{0, 100, 100, 100})
	check(ThreshToZero, []uint8{0, 0, 101, 255})
	check(ThreshToZeroInv, []uint8{0, 100, 0, 0})
}

func TestThresholdErrors(t *testing.T) {
	o := NewOps(ISAScalar, nil)
	u := image.NewMat(4, 4, image.U8)
	f := image.NewMat(4, 4, image.F32)
	if err := o.Threshold(f, u, 1, 2, ThreshTrunc); err == nil {
		t.Error("F32 src should fail")
	}
	if err := o.Threshold(u, f, 1, 2, ThreshTrunc); err == nil {
		t.Error("F32 dst should fail")
	}
	if err := o.Threshold(u, u, 1, 2, ThreshType(99)); err == nil {
		t.Error("unknown type should fail")
	}
	if err := o.Threshold(u, image.NewMat(2, 2, image.U8), 1, 2, ThreshTrunc); err == nil {
		t.Error("shape mismatch should fail")
	}
	if ThreshTrunc.String() != "trunc" || !strings.Contains(ThreshType(42).String(), "42") {
		t.Error("ThreshType names")
	}
}

// --- Benchmark 3: Gaussian blur ---

func TestGaussianKernelNormalized(t *testing.T) {
	sum := uint16(0)
	for _, w := range GaussKernel7 {
		sum += w
	}
	if sum != 256 {
		t.Fatalf("kernel sum %d, want 256", sum)
	}
	for i := 0; i < 3; i++ {
		if GaussKernel7[i] != GaussKernel7[6-i] {
			t.Fatal("kernel must be symmetric")
		}
	}
}

func TestGaussianAllPathsAgree(t *testing.T) {
	src := image.Synthetic(testRes, 4)
	want := image.NewMat(testRes.Width, testRes.Height, image.U8)
	o := NewOps(ISAScalar, nil)
	if err := o.GaussianBlur(src, want); err != nil {
		t.Fatal(err)
	}
	for _, isa := range []ISA{ISANEON, ISASSE2} {
		got := image.NewMat(testRes.Width, testRes.Height, image.U8)
		oi := NewOps(isa, nil)
		if err := oi.GaussianBlur(src, got); err != nil {
			t.Fatal(err)
		}
		if !want.EqualTo(got) {
			t.Errorf("%v: %d pixels differ from scalar", isa, want.DiffCount(got, 0))
		}
	}
}

func TestGaussianPreservesFlatRegions(t *testing.T) {
	src := image.NewMat(32, 32, image.U8)
	for i := range src.U8Pix {
		src.U8Pix[i] = 77
	}
	dst := image.NewMat(32, 32, image.U8)
	o := NewOps(ISANEON, nil)
	if err := o.GaussianBlur(src, dst); err != nil {
		t.Fatal(err)
	}
	for i, v := range dst.U8Pix {
		if v != 77 {
			t.Fatalf("pixel %d: flat region changed to %d", i, v)
		}
	}
}

func TestGaussianSmooths(t *testing.T) {
	// An impulse must spread and shrink.
	src := image.NewMat(33, 33, image.U8)
	src.U8Pix[16*33+16] = 255
	dst := image.NewMat(33, 33, image.U8)
	o := NewOps(ISASSE2, nil)
	if err := o.GaussianBlur(src, dst); err != nil {
		t.Fatal(err)
	}
	centre := dst.U8Pix[16*33+16]
	if centre >= 255 || centre == 0 {
		t.Fatalf("impulse centre after blur: %d", centre)
	}
	if dst.U8Pix[15*33+16] == 0 || dst.U8Pix[16*33+15] == 0 {
		t.Fatal("impulse did not spread to neighbours")
	}
	// Energy approximately conserved (kernel sums to 1).
	var sum int
	for _, v := range dst.U8Pix {
		sum += int(v)
	}
	if sum < 200 || sum > 300 {
		t.Fatalf("energy after blur: %d, want ~255", sum)
	}
}

func TestGaussianNarrowImages(t *testing.T) {
	// Widths below the vector body threshold must still work on all paths.
	for _, w := range []int{1, 2, 3, 7, 8, 11, 15} {
		src := image.Synthetic(image.Resolution{Width: w, Height: 5}, 1)
		want := image.NewMat(w, 5, image.U8)
		got := image.NewMat(w, 5, image.U8)
		s := NewOps(ISAScalar, nil)
		if err := s.GaussianBlur(src, want); err != nil {
			t.Fatal(err)
		}
		for _, isa := range []ISA{ISANEON, ISASSE2} {
			o := NewOps(isa, nil)
			if err := o.GaussianBlur(src, got); err != nil {
				t.Fatal(err)
			}
			if !want.EqualTo(got) {
				t.Errorf("width %d, %v: differs from scalar", w, isa)
			}
		}
	}
}

func TestGaussianErrors(t *testing.T) {
	o := NewOps(ISAScalar, nil)
	u := image.NewMat(8, 8, image.U8)
	f := image.NewMat(8, 8, image.F32)
	if err := o.GaussianBlur(f, u); err == nil {
		t.Error("F32 src should fail")
	}
	if err := o.GaussianBlur(u, f); err == nil {
		t.Error("F32 dst should fail")
	}
}

// --- Benchmark 4: Sobel ---

func TestSobelAllPathsAgree(t *testing.T) {
	src := image.Synthetic(testRes, 5)
	for _, dir := range [][2]int{{1, 0}, {0, 1}} {
		want := image.NewMat(testRes.Width, testRes.Height, image.S16)
		s := NewOps(ISAScalar, nil)
		if err := s.SobelFilter(src, want, dir[0], dir[1]); err != nil {
			t.Fatal(err)
		}
		for _, isa := range []ISA{ISANEON, ISASSE2} {
			got := image.NewMat(testRes.Width, testRes.Height, image.S16)
			o := NewOps(isa, nil)
			if err := o.SobelFilter(src, got, dir[0], dir[1]); err != nil {
				t.Fatal(err)
			}
			if !want.EqualTo(got) {
				t.Errorf("%v dx=%d dy=%d: %d pixels differ", isa, dir[0], dir[1], want.DiffCount(got, 0))
			}
		}
	}
}

func TestSobelDetectsVerticalEdge(t *testing.T) {
	// Left half dark, right half bright: dx response strong at the seam,
	// dy response zero.
	w, h := 32, 16
	src := image.NewMat(w, h, image.U8)
	for y := 0; y < h; y++ {
		for x := w / 2; x < w; x++ {
			src.U8Pix[y*w+x] = 200
		}
	}
	gx := image.NewMat(w, h, image.S16)
	gy := image.NewMat(w, h, image.S16)
	o := NewOps(ISANEON, nil)
	if err := o.SobelFilter(src, gx, 1, 0); err != nil {
		t.Fatal(err)
	}
	if err := o.SobelFilter(src, gy, 0, 1); err != nil {
		t.Fatal(err)
	}
	seam := gx.S16Pix[8*w+w/2-1]
	if seam != 200*4 {
		t.Errorf("gx at seam: %d, want 800", seam)
	}
	for i, v := range gy.S16Pix {
		if v != 0 {
			t.Fatalf("gy should be zero everywhere, pixel %d is %d", i, v)
		}
	}
}

func TestSobelZeroOnFlat(t *testing.T) {
	src := image.NewMat(24, 24, image.U8)
	for i := range src.U8Pix {
		src.U8Pix[i] = 123
	}
	dst := image.NewMat(24, 24, image.S16)
	o := NewOps(ISASSE2, nil)
	if err := o.SobelFilter(src, dst, 1, 0); err != nil {
		t.Fatal(err)
	}
	for i, v := range dst.S16Pix {
		if v != 0 {
			t.Fatalf("flat image gradient at %d: %d", i, v)
		}
	}
}

func TestSobelErrors(t *testing.T) {
	o := NewOps(ISAScalar, nil)
	u := image.NewMat(8, 8, image.U8)
	s := image.NewMat(8, 8, image.S16)
	if err := o.SobelFilter(u, s, 1, 1); err == nil {
		t.Error("dx=dy=1 unsupported")
	}
	if err := o.SobelFilter(s, s, 1, 0); err == nil {
		t.Error("S16 src should fail")
	}
	if err := o.SobelFilter(u, u, 1, 0); err == nil {
		t.Error("U8 dst should fail")
	}
}

// --- Benchmark 5: edge detection ---

func TestEdgesAllPathsAgree(t *testing.T) {
	src := image.Synthetic(testRes, 6)
	want := image.NewMat(testRes.Width, testRes.Height, image.U8)
	s := NewOps(ISAScalar, nil)
	if err := s.DetectEdges(src, want, 200); err != nil {
		t.Fatal(err)
	}
	for _, isa := range []ISA{ISANEON, ISASSE2} {
		got := image.NewMat(testRes.Width, testRes.Height, image.U8)
		o := NewOps(isa, nil)
		if err := o.DetectEdges(src, got, 200); err != nil {
			t.Fatal(err)
		}
		if !want.EqualTo(got) {
			t.Errorf("%v: %d pixels differ", isa, want.DiffCount(got, 0))
		}
	}
}

func TestEdgesBinaryOutput(t *testing.T) {
	// Wide enough (>128 columns) to guarantee the synthetic generator's
	// hard vertical edges appear in frame.
	res := image.Resolution{Width: 200, Height: 41}
	src := image.Synthetic(res, 7)
	dst := image.NewMat(res.Width, res.Height, image.U8)
	o := NewOps(ISANEON, nil)
	if err := o.DetectEdges(src, dst, 150); err != nil {
		t.Fatal(err)
	}
	zero, full := 0, 0
	for _, v := range dst.U8Pix {
		switch v {
		case 0:
			zero++
		case 255:
			full++
		default:
			t.Fatalf("non-binary output %d", v)
		}
	}
	if zero == 0 || full == 0 {
		t.Fatalf("degenerate edge map: %d zeros, %d edges", zero, full)
	}
}

func TestEdgesFindsTheEdge(t *testing.T) {
	w, h := 48, 24
	src := image.NewMat(w, h, image.U8)
	for y := 0; y < h; y++ {
		for x := w / 2; x < w; x++ {
			src.U8Pix[y*w+x] = 255
		}
	}
	dst := image.NewMat(w, h, image.U8)
	o := NewOps(ISASSE2, nil)
	if err := o.DetectEdges(src, dst, 400); err != nil {
		t.Fatal(err)
	}
	if dst.U8Pix[10*w+w/2] != 255 || dst.U8Pix[10*w+w/2-1] != 255 {
		t.Error("seam not detected")
	}
	if dst.U8Pix[10*w+4] != 0 || dst.U8Pix[10*w+w-4] != 0 {
		t.Error("flat regions misdetected")
	}
}

func TestGradientMagnitude(t *testing.T) {
	gx := image.NewMat(4, 1, image.S16)
	gy := image.NewMat(4, 1, image.S16)
	dst := image.NewMat(4, 1, image.S16)
	copy(gx.S16Pix, []int16{-3, 30000, -32768, 0})
	copy(gy.S16Pix, []int16{4, 30000, -32768, 0})
	o := NewOps(ISAScalar, nil)
	if err := o.GradientMagnitude(gx, gy, dst); err != nil {
		t.Fatal(err)
	}
	want := []int16{7, 32767, 32767, 0}
	for i := range want {
		if dst.S16Pix[i] != want[i] {
			t.Errorf("pixel %d: got %d want %d", i, dst.S16Pix[i], want[i])
		}
	}
	if err := o.GradientMagnitude(image.NewMat(4, 1, image.U8), gy, dst); err == nil {
		t.Error("U8 gx should fail")
	}
	if err := o.GradientMagnitude(gx, image.NewMat(4, 1, image.U8), dst); err == nil {
		t.Error("U8 gy should fail")
	}
	if err := o.GradientMagnitude(gx, gy, image.NewMat(4, 1, image.U8)); err == nil {
		t.Error("U8 dst should fail")
	}
	if err := o.GradientMagnitude(gx, gy, image.NewMat(2, 1, image.S16)); err == nil {
		t.Error("shape mismatch should fail")
	}
}

func TestEdgesErrors(t *testing.T) {
	o := NewOps(ISAScalar, nil)
	u := image.NewMat(8, 8, image.U8)
	f := image.NewMat(8, 8, image.F32)
	if err := o.DetectEdges(f, u, 10); err == nil {
		t.Error("F32 src should fail")
	}
	if err := o.DetectEdges(u, f, 10); err == nil {
		t.Error("F32 dst should fail")
	}
}

// --- Properties ---

// Property: the three threshold paths agree on random images, thresholds
// and types.
func TestQuickThresholdPathsAgree(t *testing.T) {
	f := func(seed uint64, thresh, maxval uint8, typRaw uint8) bool {
		typ := ThreshType(typRaw % 5)
		res := image.Resolution{Width: 37, Height: 11}
		src := image.Synthetic(res, seed)
		want := image.NewMat(res.Width, res.Height, image.U8)
		if err := NewOps(ISAScalar, nil).Threshold(src, want, thresh, maxval, typ); err != nil {
			return false
		}
		for _, isa := range []ISA{ISANEON, ISASSE2} {
			got := image.NewMat(res.Width, res.Height, image.U8)
			if err := NewOps(isa, nil).Threshold(src, got, thresh, maxval, typ); err != nil {
				return false
			}
			if !want.EqualTo(got) {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 30}); err != nil {
		t.Error(err)
	}
}

// Property: Gaussian blur output is bounded by the input's min and max
// (convexity of the normalized kernel), on every path.
func TestQuickGaussianConvexity(t *testing.T) {
	f := func(seed uint64) bool {
		res := image.Resolution{Width: 29, Height: 13}
		src := image.Synthetic(res, seed)
		lo, hi := src.U8Pix[0], src.U8Pix[0]
		for _, v := range src.U8Pix {
			if v < lo {
				lo = v
			}
			if v > hi {
				hi = v
			}
		}
		for _, isa := range []ISA{ISAScalar, ISANEON, ISASSE2} {
			dst := image.NewMat(res.Width, res.Height, image.U8)
			if err := NewOps(isa, nil).GaussianBlur(src, dst); err != nil {
				return false
			}
			for _, v := range dst.U8Pix {
				// Fixed-point rounding can add at most 1 beyond the bound.
				if int(v) < int(lo)-1 || int(v) > int(hi)+1 {
					return false
				}
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 20}); err != nil {
		t.Error(err)
	}
}

// Property: Sobel is linear in the input for the scalar path: sobel(2*img)
// == 2*sobel(img) when no overflow occurs.
func TestQuickSobelLinearity(t *testing.T) {
	f := func(seed uint64) bool {
		res := image.Resolution{Width: 21, Height: 9}
		src := image.Synthetic(res, seed)
		half := image.NewMat(res.Width, res.Height, image.U8)
		for i, v := range src.U8Pix {
			half.U8Pix[i] = v / 2
		}
		// Build doubled = 2*half (guaranteed <= 254, no overflow).
		doubled := image.NewMat(res.Width, res.Height, image.U8)
		for i, v := range half.U8Pix {
			doubled.U8Pix[i] = 2 * v
		}
		o := NewOps(ISAScalar, nil)
		gHalf := image.NewMat(res.Width, res.Height, image.S16)
		gDouble := image.NewMat(res.Width, res.Height, image.S16)
		if err := o.SobelFilter(half, gHalf, 1, 0); err != nil {
			return false
		}
		if err := o.SobelFilter(doubled, gDouble, 1, 0); err != nil {
			return false
		}
		for i := range gHalf.S16Pix {
			if gDouble.S16Pix[i] != 2*gHalf.S16Pix[i] {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 20}); err != nil {
		t.Error(err)
	}
}

// Property: convert paths agree within 1 LSB across ISAs for arbitrary
// float images (rounding-mode differences only).
func TestQuickConvertCrossISA(t *testing.T) {
	f := func(seed uint64) bool {
		res := image.Resolution{Width: 19, Height: 7}
		src := image.SyntheticF32(res, seed)
		outs := map[ISA]*image.Mat{}
		for _, isa := range []ISA{ISAScalar, ISANEON, ISASSE2} {
			dst := image.NewMat(res.Width, res.Height, image.S16)
			if err := NewOps(isa, nil).ConvertF32ToS16(src, dst); err != nil {
				return false
			}
			outs[isa] = dst
		}
		return outs[ISAScalar].DiffCount(outs[ISANEON], 1) == 0 &&
			outs[ISAScalar].DiffCount(outs[ISASSE2], 1) == 0
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 20}); err != nil {
		t.Error(err)
	}
}

// TestSIMDReducesInstructions checks the headline claim kernel-by-kernel:
// the hand-optimized path retires fewer dynamic instructions than the
// scalar path on every benchmark and both ISAs.
func TestSIMDReducesInstructions(t *testing.T) {
	res := image.Resolution{Width: 128, Height: 64}
	src := image.Synthetic(res, 1)
	srcF := image.SyntheticF32(res, 1)

	type kernel struct {
		name string
		run  func(o *Ops) error
	}
	kernels := []kernel{
		{"convert", func(o *Ops) error {
			return o.ConvertF32ToS16(srcF, image.NewMat(res.Width, res.Height, image.S16))
		}},
		{"threshold", func(o *Ops) error {
			return o.Threshold(src, image.NewMat(res.Width, res.Height, image.U8), 128, 255, ThreshTrunc)
		}},
		{"gaussian", func(o *Ops) error {
			return o.GaussianBlur(src, image.NewMat(res.Width, res.Height, image.U8))
		}},
		{"sobel", func(o *Ops) error {
			return o.SobelFilter(src, image.NewMat(res.Width, res.Height, image.S16), 1, 0)
		}},
		{"edges", func(o *Ops) error {
			return o.DetectEdges(src, image.NewMat(res.Width, res.Height, image.U8), 100)
		}},
	}
	for _, isa := range []ISA{ISANEON, ISASSE2} {
		for _, k := range kernels {
			var hand, scalar trace.Counter
			oh := NewOps(isa, &hand)
			if err := k.run(oh); err != nil {
				t.Fatal(err)
			}
			os := NewOps(isa, &scalar)
			os.SetUseOptimized(false)
			if err := k.run(os); err != nil {
				t.Fatal(err)
			}
			if hand.Total() >= scalar.Total() {
				t.Errorf("%v/%s: hand %d >= scalar %d instructions",
					isa, k.name, hand.Total(), scalar.Total())
			}
		}
	}
}
