// Package cv is a from-scratch reimplementation of the OpenCV core and
// imgproc routines benchmarked by the paper: saturating float-to-short
// conversion, binary image thresholding, Gaussian blur, Sobel filtering and
// edge detection.
//
// Every operation has two code paths, mirroring the paper's methodology:
//
//   - a scalar path, the portable C++-equivalent source the compiler sees
//     (and the input to the auto-vectorization model in internal/vectorizer);
//   - a hand-optimized SIMD path written against the NEON or SSE2 intrinsic
//     emulation layer, transcribed from the paper's listings where given.
//
// Like OpenCV, the SIMD path is toggled with SetUseOptimized; when off (or
// when the Ops has ISA ISAScalar), operations fall back to scalar code.
// Dynamic instruction traces are recorded into the attached trace.Counter.
package cv

import (
	"context"
	"fmt"
	"sync"
	"sync/atomic"

	"simdstudy/internal/faults"
	"simdstudy/internal/image"
	"simdstudy/internal/integrity"
	"simdstudy/internal/neon"
	"simdstudy/internal/obs"
	"simdstudy/internal/resilience"
	"simdstudy/internal/sse2"
	"simdstudy/internal/super"
	"simdstudy/internal/trace"
)

// ISA selects which intrinsic family the hand-optimized paths use.
type ISA int

// Supported instruction-set families.
const (
	ISAScalar ISA = iota // no SIMD: always scalar
	ISANEON              // ARMv7 Advanced SIMD
	ISASSE2              // Intel SSE2
)

// String names the ISA.
func (i ISA) String() string {
	switch i {
	case ISAScalar:
		return "scalar"
	case ISANEON:
		return "neon"
	case ISASSE2:
		return "sse2"
	}
	return fmt.Sprintf("isa(%d)", int(i))
}

// Ops is a handle to the library configured for one ISA, analogous to an
// OpenCV build compiled for one target.
//
// A plain Ops — no breaker set, observer, guard mode, or bound context —
// is safe for concurrent use: the trace counter, the parallel band pool and
// the pass sequence are all synchronized, so independent goroutines may run
// kernels on private images through one shared Ops. The stateful extensions
// (SetGuarded, SetBreakers, SetObserver, the Ctx variants) keep per-call
// state on the Ops and remain single-caller-at-a-time, as the harness uses
// them.
type Ops struct {
	isa          ISA
	useOptimized bool

	// Parallel banding state (see par.go). par sizes intra-kernel
	// parallelism (zero: serial); passSeq numbers parallel sections so
	// fault streams are per-(pass, row) deterministic; bandPool recycles
	// per-band Ops clones; stop and reseed are set only on band clones.
	par      ParallelConfig
	passSeq  atomic.Uint64
	bandPool sync.Pool
	stop     *atomic.Bool
	reseed   faults.Reseeder

	T *trace.Counter
	n *neon.Unit
	s *sse2.Unit

	// Guarded-mode state (see guard.go).
	guarded      bool
	inGuard      bool
	policy       GuardPolicy
	injector     faults.Injector
	kernelFaults []KernelFault
	fallbacks    int

	// Integrity audit state (see audit.go). aud, when set, samples SIMD
	// kernel calls for redundant scalar re-execution; a sampled call that
	// diverges is repaired from the reference and recorded as silent
	// corruption.
	aud *integrity.Auditor

	// Resilience state (see guard.go and ctx.go). brk, when set, is
	// consulted once per outermost kernel call: an open breaker demotes
	// that call to the scalar path via denySIMD without touching the
	// useOptimized latch. depth counts nested public entry points so the
	// breaker decision is made exactly once per call tree.
	brk        *resilience.BreakerSet
	denySIMD   bool
	depth      int
	brkPending string // kernel admitted by the breaker, verdict outstanding

	// Supervision state (see par.go and observe.go). wd watches parallel
	// sections for wedged bands; sup quarantines (kernel, ISA) pairs that
	// panic repeatedly — a quarantined outermost call runs scalar AND
	// serial (serialOnly), isolating the poisonous path completely.
	// curKernel names the outermost in-flight entry point so sections can
	// be labeled; heart is set only on band clones (and, transiently, on a
	// watched serial pass).
	wd         *super.Watchdog
	sup        *super.Supervisor
	curKernel  string
	serialOnly bool
	heart      *super.Heart

	// Context plumbing for the Ctx kernel variants: the bound context, the
	// rows completed under it (partial-progress accounting), and the trace
	// ID the context carries (request tracing: kernel spans and wall-clock
	// histogram exemplars are stamped with it).
	ctx     context.Context
	ctxRows int
	traceID string

	// Observability state (see observe.go). Obs is optional; when nil all
	// span and metric instrumentation is a no-op.
	Obs       *obs.Registry
	obsParent *obs.Span
	frames    []kernelFrame

	// Fusion state (see fused.go). fuse selects cache-blocked stage fusion
	// for the multi-stage pipelines; fusedGeoms caches the planned strip
	// geometry per (kernel, shape) so steady-state fused calls stay
	// allocation-free.
	fuse       FuseConfig
	fusedGeoms []fusedGeom
}

// NewOps returns an Ops for the given ISA, recording dynamic instructions
// into t (which may be nil). SIMD optimizations start enabled, as in
// OpenCV builds with SSE2/NEON baked in.
func NewOps(isa ISA, t *trace.Counter) *Ops {
	return &Ops{
		isa:          isa,
		useOptimized: true,
		T:            t,
		n:            neon.New(t),
		s:            sse2.New(t),
	}
}

// SetUseOptimized toggles the hand-optimized SIMD code paths, the
// equivalent of cv::setUseOptimized(bool).
func (o *Ops) SetUseOptimized(on bool) { o.useOptimized = on }

// UseOptimized reports whether SIMD paths are active for the current call:
// the latch must be on, the ISA must have SIMD, and — when a breaker set is
// attached — the breaker for the running kernel must have admitted it.
func (o *Ops) UseOptimized() bool {
	return o.useOptimized && o.isa != ISAScalar && !o.denySIMD
}

// SetBreakers attaches a circuit-breaker set consulted at every outermost
// guarded kernel call: a per-(kernel, ISA) breaker that is open demotes that
// call to the scalar path, and guard verdicts feed back into it so a flaky
// unit re-arms via half-open probes instead of staying dead forever. nil
// detaches. The breaker only sees traffic in guarded or audited mode
// (SetGuarded / SetAuditor) — without a referee or sampled audit there is
// no success/failure signal to drive it.
func (o *Ops) SetBreakers(b *resilience.BreakerSet) { o.brk = b }

// Breakers returns the attached breaker set, or nil.
func (o *Ops) Breakers() *resilience.BreakerSet { return o.brk }

// SetWatchdog attaches a stall watchdog: every parallel section (and, when
// a watchdog is attached, every serial pass) registers per-band heartbeats
// that the kernel row loops beat, and a band silent past the watchdog
// deadline stalls the section — siblings are cancelled through the stop
// flag and the entry point returns a typed *super.StallError that is fed to
// the kernel's breaker as a failure. nil detaches.
func (o *Ops) SetWatchdog(w *super.Watchdog) { o.wd = w }

// Watchdog returns the attached watchdog, or nil.
func (o *Ops) Watchdog() *super.Watchdog { return o.wd }

// SetSupervisor attaches a panic supervisor: a panic escaping an outermost
// kernel call is recorded against its (kernel, ISA) pair, and a pair that
// exceeds the supervisor's quarantine policy runs scalar-and-serial from
// then on, with its breaker latched terminally open. nil detaches.
func (o *Ops) SetSupervisor(s *super.Supervisor) { o.sup = s }

// Supervisor returns the attached supervisor, or nil.
func (o *Ops) Supervisor() *super.Supervisor { return o.sup }

// ResumeState is the per-Ops execution position a checkpointed campaign
// journals with each completed image: the pass sequence that salts the
// per-row fault streams, and the guard's cumulative fallback/kill-switch
// state. Restoring it into a fresh Ops after a crash makes the remaining
// images draw exactly the streams (and guard decisions) the killed process
// would have drawn.
type ResumeState struct {
	PassSeq      uint64 `json:"pass_seq"`
	Fallbacks    int    `json:"fallbacks"`
	UseOptimized bool   `json:"use_optimized"`
}

// ResumeState snapshots the Ops' checkpointable execution position.
func (o *Ops) ResumeState() ResumeState {
	return ResumeState{
		PassSeq:      o.passSeq.Load(),
		Fallbacks:    o.fallbacks,
		UseOptimized: o.useOptimized,
	}
}

// SetResumeState restores a position snapshotted by ResumeState.
func (o *Ops) SetResumeState(st ResumeState) {
	o.passSeq.Store(st.PassSeq)
	o.fallbacks = st.Fallbacks
	o.useOptimized = st.UseOptimized
}

// ISA returns the configured instruction set.
func (o *Ops) ISA() ISA { return o.isa }

// scalarOverhead records per-iteration scalar loop bookkeeping (index
// increment, compare, branch) into the trace.
func (o *Ops) scalarOverhead(iters uint64) {
	if o.T == nil {
		return
	}
	o.T.RecordN("add(index)", trace.AddrCalc, iters, 0)
	o.T.RecordN("cmp+b(loop)", trace.Branch, iters, 0)
}

func sameShape(a, b *image.Mat) error {
	if a.Width != b.Width || a.Height != b.Height {
		return fmt.Errorf("cv: shape mismatch %dx%d vs %dx%d", a.Width, a.Height, b.Width, b.Height)
	}
	return nil
}

func requireKind(m *image.Mat, k image.Type, what string) error {
	if m.Kind != k {
		return fmt.Errorf("cv: %s requires %v image, got %v", what, k, m.Kind)
	}
	return nil
}
