package cv

import (
	"testing"

	"simdstudy/internal/image"
	"simdstudy/internal/trace"
)

func TestCannyDetectsCleanEdge(t *testing.T) {
	// A vertical step: Canny must produce a thin vertical edge line.
	w, h := 48, 24
	src := image.NewMat(w, h, image.U8)
	for y := 0; y < h; y++ {
		for x := w / 2; x < w; x++ {
			src.U8Pix[y*w+x] = 200
		}
	}
	dst := image.NewMat(w, h, image.U8)
	o := NewOps(ISANEON, nil)
	if err := o.Canny(src, dst, 100, 300); err != nil {
		t.Fatal(err)
	}
	// Interior rows: exactly one edge column (thin response), at the step.
	for y := 2; y < h-2; y++ {
		lit := 0
		for x := 0; x < w; x++ {
			if dst.U8Pix[y*w+x] == 255 {
				lit++
				if x < w/2-2 || x > w/2+1 {
					t.Fatalf("row %d: edge at column %d, step is at %d", y, x, w/2)
				}
			}
		}
		if lit != 1 {
			t.Fatalf("row %d: %d edge pixels, want thin single response", y, lit)
		}
	}
}

func TestCannyHysteresisLinksWeakEdges(t *testing.T) {
	// A ramp edge whose gradient is strong in the middle rows and weak at
	// the top/bottom: without hysteresis the weak parts vanish; with it,
	// connected weak pixels survive.
	w, h := 32, 32
	src := image.NewMat(w, h, image.U8)
	for y := 0; y < h; y++ {
		step := uint8(60) // weak gradient rows
		if y > 10 && y < 20 {
			step = 250 // strong gradient rows
		}
		for x := w / 2; x < w; x++ {
			src.U8Pix[y*w+x] = step
		}
	}
	dst := image.NewMat(w, h, image.U8)
	o := NewOps(ISAScalar, nil)
	// Weak rows produce |gx| up to 4*60=240; strong rows 4*250=1000.
	if err := o.Canny(src, dst, 200, 800); err != nil {
		t.Fatal(err)
	}
	weakRowLit := false
	for x := 0; x < w; x++ {
		if dst.U8Pix[5*w+x] == 255 {
			weakRowLit = true
		}
	}
	if !weakRowLit {
		t.Fatal("hysteresis should propagate along the connected weak edge")
	}

	// Re-run with the low threshold above the weak response: weak rows
	// must now stay dark.
	if err := o.Canny(src, dst, 500, 800); err != nil {
		t.Fatal(err)
	}
	for x := 0; x < w; x++ {
		if dst.U8Pix[5*w+x] == 255 {
			t.Fatal("weak edge below low threshold must not appear")
		}
	}
}

func TestCannyAllPathsAgree(t *testing.T) {
	res := image.Resolution{Width: 130, Height: 41}
	src := image.Synthetic(res, 12)
	want := image.NewMat(res.Width, res.Height, image.U8)
	if err := NewOps(ISAScalar, nil).Canny(src, want, 150, 400); err != nil {
		t.Fatal(err)
	}
	for _, isa := range []ISA{ISANEON, ISASSE2} {
		got := image.NewMat(res.Width, res.Height, image.U8)
		if err := NewOps(isa, nil).Canny(src, got, 150, 400); err != nil {
			t.Fatal(err)
		}
		if !want.EqualTo(got) {
			t.Errorf("%v: %d pixels differ", isa, want.DiffCount(got, 0))
		}
	}
}

func TestCannyBinaryAndQuietOnFlat(t *testing.T) {
	src := image.NewMat(40, 40, image.U8)
	for i := range src.U8Pix {
		src.U8Pix[i] = 77
	}
	dst := image.NewMat(40, 40, image.U8)
	if err := NewOps(ISANEON, nil).Canny(src, dst, 50, 150); err != nil {
		t.Fatal(err)
	}
	for i, v := range dst.U8Pix {
		if v != 0 {
			t.Fatalf("flat image produced edge at %d", i)
		}
	}
	// Binary output on a real image.
	res := image.Resolution{Width: 150, Height: 40}
	nat := image.Synthetic(res, 3)
	out := image.NewMat(res.Width, res.Height, image.U8)
	if err := NewOps(ISASSE2, nil).Canny(nat, out, 100, 300); err != nil {
		t.Fatal(err)
	}
	for i, v := range out.U8Pix {
		if v != 0 && v != 255 {
			t.Fatalf("non-binary output %d at %d", v, i)
		}
	}
}

func TestCannyErrors(t *testing.T) {
	o := NewOps(ISAScalar, nil)
	u := image.NewMat(8, 8, image.U8)
	f := image.NewMat(8, 8, image.F32)
	if err := o.Canny(f, u, 1, 2); err == nil {
		t.Error("F32 src should fail")
	}
	if err := o.Canny(u, f, 1, 2); err == nil {
		t.Error("F32 dst should fail")
	}
	if err := o.Canny(u, image.NewMat(4, 4, image.U8), 1, 2); err == nil {
		t.Error("shape mismatch should fail")
	}
	if err := o.Canny(u, u, 5, 2); err == nil {
		t.Error("low > high should fail")
	}
	if err := o.Canny(u, u, -1, 2); err == nil {
		t.Error("negative low should fail")
	}
}

// TestCannyAmdahlStory pins the related-work observation: because NMS and
// hysteresis stay scalar, the SIMD fraction of Canny's instruction stream
// is far smaller than DetectEdges' — which is why the citation reports
// only 1.6x for Canny vs 3.1x for plain Sobel.
func TestCannyAmdahlStory(t *testing.T) {
	res := image.Resolution{Width: 128, Height: 64}
	src := image.Synthetic(res, 5)

	var canny trace.Counter
	o := NewOps(ISANEON, &canny)
	if err := o.Canny(src, image.NewMat(res.Width, res.Height, image.U8), 100, 300); err != nil {
		t.Fatal(err)
	}
	var edges trace.Counter
	o2 := NewOps(ISANEON, &edges)
	if err := o2.DetectEdges(src, image.NewMat(res.Width, res.Height, image.U8), 100); err != nil {
		t.Fatal(err)
	}
	cannySIMDFrac := float64(canny.SIMDTotal()) / float64(canny.Total())
	edgesSIMDFrac := float64(edges.SIMDTotal()) / float64(edges.Total())
	if cannySIMDFrac >= edgesSIMDFrac {
		t.Errorf("Canny SIMD fraction %.2f should trail DetectEdges' %.2f",
			cannySIMDFrac, edgesSIMDFrac)
	}
	if cannySIMDFrac <= 0 {
		t.Error("Canny's gradient stages must still use SIMD")
	}
}
