package cv

import (
	"fmt"

	"simdstudy/internal/image"
	"simdstudy/internal/trace"
)

// BT.601 luma weights in 8.8 fixed point (sum exactly 256), the classic
// coefficients of ARM's own NEON RGB-to-gray example and of OpenCV's
// 8-bit cvtColor path:
//
//	gray = (77*R + 150*G + 29*B + 128) >> 8
const (
	grayR     = 77
	grayG     = 150
	grayB     = 29
	grayShift = 8
)

// RGBToGray converts an interleaved RGB image to 8-bit grayscale — the
// color-conversion workload the paper's related work reports a 9.5x NEON
// speedup for (Pulli et al., the Tegra OpenCV study).
//
// The hand path exists only for NEON: its structured vld3.8 load
// deinterleaves the color planes in one instruction, which SSE2 has no
// counterpart for — OpenCV 2.4 shipped no SSE2 cvtColor(RGB2GRAY) kernel
// either, so on Intel the operation runs scalar, faithfully.
func (o *Ops) RGBToGray(src *image.RGB, dst *image.Mat) (err error) {
	o.beginKernel("RGBToGray")
	defer func() { o.endKernel("RGBToGray", err) }()
	if err := requireKind(dst, image.U8, "RGBToGray dst"); err != nil {
		return err
	}
	if src.Width != dst.Width || src.Height != dst.Height {
		return fmt.Errorf("cv: shape mismatch %dx%d vs %dx%d",
			src.Width, src.Height, dst.Width, dst.Height)
	}
	run := func(op *Ops, d *image.Mat) error {
		if op.UseOptimized() && op.isa == ISANEON {
			op.rgbToGrayNEON(src, d)
			return nil
		}
		op.rgbToGrayScalar(src, d)
		return nil
	}
	if o.UseOptimized() && o.isa == ISANEON {
		return o.guardedRun("RGBToGray", dst, 0,
			func() error { return run(o, dst) }, run)
	}
	return run(o, dst)
}

func grayPixel(r, g, b uint8) uint8 {
	return uint8((uint32(r)*grayR + uint32(g)*grayG + uint32(b)*grayB + 1<<(grayShift-1)) >> grayShift)
}

func (o *Ops) rgbToGrayScalar(src *image.RGB, dst *image.Mat) {
	n := dst.Pixels()
	for i := 0; i < n; i++ {
		dst.U8Pix[i] = grayPixel(src.Pix[3*i], src.Pix[3*i+1], src.Pix[3*i+2])
	}
	if o.T != nil {
		// Per pixel: three byte loads, three multiplies, two adds, a
		// shift-round and a store.
		o.T.RecordN("ldrb(rgb)", trace.ScalarLoad, uint64(3*n), 1)
		o.T.RecordN("mul(luma)", trace.ScalarALU, uint64(3*n), 0)
		o.T.RecordN("add/shr", trace.ScalarALU, uint64(3*n), 0)
		o.T.RecordN("strb", trace.ScalarStore, uint64(n), 1)
		o.scalarOverhead(uint64(n))
	}
}

// rgbToGrayNEON processes 8 pixels per iteration: one vld3.8 deinterleave,
// a widening multiply and two widening multiply-accumulates against the
// luma weights, a rounding narrow, and one store.
func (o *Ops) rgbToGrayNEON(src *image.RGB, dst *image.Mat) {
	u := o.n
	wr := u.VdupNU8(grayR)
	wg := u.VdupNU8(grayG)
	wb := u.VdupNU8(grayB)
	n := dst.Pixels()
	i := 0
	for ; i+8 <= n; i += 8 {
		planes := u.Vld3U8(src.Pix[3*i:])
		acc := u.VmullU8(planes[0], wr)
		acc = u.VmlalU8(acc, planes[1], wg)
		acc = u.VmlalU8(acc, planes[2], wb)
		u.Vst1U8(dst.U8Pix[i:], u.VrshrnNU16(acc, grayShift))
		u.Overhead(2, 1, 0)
	}
	for ; i < n; i++ {
		dst.U8Pix[i] = grayPixel(src.Pix[3*i], src.Pix[3*i+1], src.Pix[3*i+2])
		if o.T != nil {
			o.T.RecordN("gray(tail)", trace.ScalarALU, 9, 0)
			o.scalarOverhead(1)
		}
	}
}
