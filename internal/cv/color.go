package cv

import (
	"fmt"

	"simdstudy/internal/image"
	"simdstudy/internal/trace"
	"simdstudy/internal/vec"
)

// BT.601 luma weights in 8.8 fixed point (sum exactly 256), the classic
// coefficients of ARM's own NEON RGB-to-gray example and of OpenCV's
// 8-bit cvtColor path:
//
//	gray = (77*R + 150*G + 29*B + 128) >> 8
const (
	grayR     = 77
	grayG     = 150
	grayB     = 29
	grayShift = 8
)

// RGBToGray converts an interleaved RGB image to 8-bit grayscale — the
// color-conversion workload the paper's related work reports a 9.5x NEON
// speedup for (Pulli et al., the Tegra OpenCV study).
//
// The hand path exists only for NEON: its structured vld3.8 load
// deinterleaves the color planes in one instruction, which SSE2 has no
// counterpart for — OpenCV 2.4 shipped no SSE2 cvtColor(RGB2GRAY) kernel
// either, so on Intel the operation runs scalar, faithfully.
func (o *Ops) RGBToGray(src *image.RGB, dst *image.Mat) (err error) {
	o.beginKernel("RGBToGray")
	defer o.endKernelP("RGBToGray", &err)
	if err := requireKind(dst, image.U8, "RGBToGray dst"); err != nil {
		return err
	}
	if src.Width != dst.Width || src.Height != dst.Height {
		return fmt.Errorf("cv: shape mismatch %dx%d vs %dx%d",
			src.Width, src.Height, dst.Width, dst.Height)
	}
	run := func(op *Ops, d *image.Mat) error {
		if op.UseOptimized() && op.isa == ISANEON {
			op.rgbToGrayNEON(src, d)
			return nil
		}
		op.rgbToGrayScalar(src, d)
		return nil
	}
	if o.UseOptimized() && o.isa == ISANEON {
		return o.guardedRun("RGBToGray", dst, 0,
			func() error { return run(o, dst) }, run)
	}
	return run(o, dst)
}

func grayPixel(r, g, b uint8) uint8 {
	return uint8((uint32(r)*grayR + uint32(g)*grayG + uint32(b)*grayB + 1<<(grayShift-1)) >> grayShift)
}

// grayArgs bundles the color-conversion planes for the banded chunk bodies,
// with the NEON luma weights hoisted once on the parent unit.
type grayArgs struct {
	rgb        []uint8
	d          []uint8
	wr, wg, wb vec.V64
}

func (o *Ops) rgbToGrayScalar(src *image.RGB, dst *image.Mat) {
	a := grayArgs{rgb: src.Pix, d: dst.U8Pix}
	parFlat(o, dst.Pixels(), a, grayScalarChunk)
}

func grayScalarChunk(b *Ops, a grayArgs, lo, hi int) {
	for i := lo; i < hi; i++ {
		a.d[i] = grayPixel(a.rgb[3*i], a.rgb[3*i+1], a.rgb[3*i+2])
	}
	if b.T != nil {
		// Per pixel: three byte loads, three multiplies, two adds, a
		// shift-round and a store.
		n := uint64(hi - lo)
		b.T.RecordN("ldrb(rgb)", trace.ScalarLoad, 3*n, 1)
		b.T.RecordN("mul(luma)", trace.ScalarALU, 3*n, 0)
		b.T.RecordN("add/shr", trace.ScalarALU, 3*n, 0)
		b.T.RecordN("strb", trace.ScalarStore, n, 1)
		b.scalarOverhead(n)
	}
}

// rgbToGrayNEON processes 8 pixels per iteration: one vld3.8 deinterleave,
// a widening multiply and two widening multiply-accumulates against the
// luma weights, a rounding narrow, and one store.
func (o *Ops) rgbToGrayNEON(src *image.RGB, dst *image.Mat) {
	a := grayArgs{rgb: src.Pix, d: dst.U8Pix}
	a.wr = o.n.VdupNU8(grayR)
	a.wg = o.n.VdupNU8(grayG)
	a.wb = o.n.VdupNU8(grayB)
	parFlat(o, dst.Pixels(), a, grayNEONChunk)
}

func grayNEONChunk(b *Ops, a grayArgs, lo, hi int) {
	u := b.n
	i := lo
	for ; i+8 <= hi; i += 8 {
		planes := u.Vld3U8(a.rgb[3*i:])
		acc := u.VmullU8(planes[0], a.wr)
		acc = u.VmlalU8(acc, planes[1], a.wg)
		acc = u.VmlalU8(acc, planes[2], a.wb)
		u.Vst1U8(a.d[i:], u.VrshrnNU16(acc, grayShift))
		u.Overhead(2, 1, 0)
	}
	for ; i < hi; i++ {
		a.d[i] = grayPixel(a.rgb[3*i], a.rgb[3*i+1], a.rgb[3*i+2])
		if b.T != nil {
			b.T.RecordN("gray(tail)", trace.ScalarALU, 9, 0)
			b.scalarOverhead(1)
		}
	}
}
