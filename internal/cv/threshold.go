package cv

import (
	"fmt"

	"simdstudy/internal/image"
	"simdstudy/internal/trace"
	"simdstudy/internal/vec"
)

// ThreshType selects the thresholding rule, mirroring OpenCV's THRESH_*
// constants.
type ThreshType int

// Threshold types. The paper's benchmark 2 follows its Algorithm 1:
// "if pixel >= threshold then pixel <- threshold", which is ThreshTrunc.
const (
	ThreshBinary    ThreshType = iota // dst = src > thresh ? maxval : 0
	ThreshBinaryInv                   // dst = src > thresh ? 0 : maxval
	ThreshTrunc                       // dst = min(src, thresh)
	ThreshToZero                      // dst = src > thresh ? src : 0
	ThreshToZeroInv                   // dst = src > thresh ? 0 : src
)

// String names the threshold type.
func (t ThreshType) String() string {
	switch t {
	case ThreshBinary:
		return "binary"
	case ThreshBinaryInv:
		return "binary_inv"
	case ThreshTrunc:
		return "trunc"
	case ThreshToZero:
		return "tozero"
	case ThreshToZeroInv:
		return "tozero_inv"
	}
	return fmt.Sprintf("thresh(%d)", int(t))
}

// Threshold applies an element-wise threshold to a U8 image, the paper's
// benchmark 2 (cv::threshold on 8-bit images).
func (o *Ops) Threshold(src, dst *image.Mat, thresh, maxval uint8, typ ThreshType) (err error) {
	o.beginKernel("Threshold")
	defer o.endKernelP("Threshold", &err)
	if err := requireKind(src, image.U8, "Threshold src"); err != nil {
		return err
	}
	if err := requireKind(dst, image.U8, "Threshold dst"); err != nil {
		return err
	}
	if err := sameShape(src, dst); err != nil {
		return err
	}
	if typ < ThreshBinary || typ > ThreshToZeroInv {
		return fmt.Errorf("cv: unknown threshold type %d", int(typ))
	}
	run := func(op *Ops, d *image.Mat) error {
		if op.UseOptimized() {
			switch op.isa {
			case ISANEON:
				op.thresholdNEON(src, d, thresh, maxval, typ)
				return nil
			case ISASSE2:
				op.thresholdSSE2(src, d, thresh, maxval, typ)
				return nil
			}
		}
		op.thresholdScalar(src, d, thresh, maxval, typ)
		return nil
	}
	if o.UseOptimized() {
		return o.guardedRun("Threshold", dst, 0,
			func() error { return run(o, dst) }, run)
	}
	return run(o, dst)
}

func thresholdPixel(v, thresh, maxval uint8, typ ThreshType) uint8 {
	switch typ {
	case ThreshBinary:
		if v > thresh {
			return maxval
		}
		return 0
	case ThreshBinaryInv:
		if v > thresh {
			return 0
		}
		return maxval
	case ThreshTrunc:
		if v > thresh {
			return thresh
		}
		return v
	case ThreshToZero:
		if v > thresh {
			return v
		}
		return 0
	default: // ThreshToZeroInv
		if v > thresh {
			return 0
		}
		return v
	}
}

// threshArgs bundles one threshold pass for the banded chunk bodies; the
// vector constants are hoisted (and their setup instructions recorded) once
// on the parent Ops, then used by every band as plain register values —
// exactly how the compiled loop keeps them live across iterations.
type threshArgs struct {
	s, d           []uint8
	thresh, maxval uint8
	typ            ThreshType
	vthresh, vmax  vec.V128
	bias, vbiased  vec.V128 // SSE2 signed-compare bias trick
}

func (o *Ops) thresholdScalar(src, dst *image.Mat, thresh, maxval uint8, typ ThreshType) {
	a := threshArgs{s: src.U8Pix, d: dst.U8Pix, thresh: thresh, maxval: maxval, typ: typ}
	parFlat(o, len(src.U8Pix), a, threshScalarChunk)
}

func threshScalarChunk(b *Ops, a threshArgs, lo, hi int) {
	s, d := a.s, a.d
	for i := lo; i < hi; i++ {
		d[i] = thresholdPixel(s[i], a.thresh, a.maxval, a.typ)
	}
	if b.T != nil {
		// Per pixel: byte load, compare+conditional select (branchless at
		// -O3), byte store.
		n := uint64(hi - lo)
		b.T.RecordN("ldrb", trace.ScalarLoad, n, 1)
		b.T.RecordN("cmp+sel", trace.ScalarALU, 2*n, 0)
		b.T.RecordN("strb", trace.ScalarStore, n, 1)
		b.scalarOverhead(n)
	}
}

// thresholdNEON processes 16 pixels per iteration. Truncation is a single
// vmin.u8; the masked variants compare and bit-select.
func (o *Ops) thresholdNEON(src, dst *image.Mat, thresh, maxval uint8, typ ThreshType) {
	defer o.n.Session("threshold", o.curSpan()).End()
	a := threshArgs{s: src.U8Pix, d: dst.U8Pix, thresh: thresh, maxval: maxval, typ: typ}
	a.vthresh = o.n.VdupqNU8(thresh)
	if typ == ThreshBinary || typ == ThreshBinaryInv {
		a.vmax = o.n.VdupqNU8(maxval)
	}
	parFlat(o, len(src.U8Pix), a, threshNEONChunk)
}

func threshNEONChunk(b *Ops, a threshArgs, lo, hi int) {
	s, d := a.s, a.d
	u := b.n
	vthresh, vmax := a.vthresh, a.vmax
	x := lo
	for ; x <= hi-16; x += 16 {
		v := u.Vld1qU8(s[x:])
		var r vec.V128
		switch a.typ {
		case ThreshTrunc:
			r = u.VminqU8(v, vthresh)
		case ThreshBinary:
			mask := u.VcgtqU8(v, vthresh)
			r = u.VandqU8(mask, vmax)
		case ThreshBinaryInv:
			mask := u.VcgtqU8(v, vthresh)
			r = u.VbicqU8(vmax, mask)
		case ThreshToZero:
			mask := u.VcgtqU8(v, vthresh)
			r = u.VandqU8(mask, v)
		default: // ThreshToZeroInv
			mask := u.VcgtqU8(v, vthresh)
			r = u.VbicqU8(v, mask)
		}
		u.Vst1qU8(d[x:], r)
		u.Overhead(2, 1, 0)
	}
	for ; x < hi; x++ {
		d[x] = thresholdPixel(s[x], a.thresh, a.maxval, a.typ)
		if b.T != nil {
			b.T.RecordN("ldrb/cmp/strb(tail)", trace.ScalarALU, 3, 0)
			b.scalarOverhead(1)
		}
	}
}

// thresholdSSE2 processes 16 pixels per iteration. SSE2 lacks an unsigned
// byte compare, so the masked variants bias both operands by 0x80 and use
// the signed pcmpgtb — two extra pxor instructions per loop that NEON does
// not pay, one of the micro-architectural asymmetries the paper discusses.
func (o *Ops) thresholdSSE2(src, dst *image.Mat, thresh, maxval uint8, typ ThreshType) {
	defer o.s.Session("threshold", o.curSpan()).End()
	a := threshArgs{s: src.U8Pix, d: dst.U8Pix, thresh: thresh, maxval: maxval, typ: typ}
	a.vthresh = o.s.Set1Epu8(thresh)
	a.bias = o.s.Set1Epu8(0x80)
	a.vbiased = o.s.XorSi128(a.vthresh, a.bias)
	if typ == ThreshBinary || typ == ThreshBinaryInv {
		a.vmax = o.s.Set1Epu8(maxval)
	}
	parFlat(o, len(src.U8Pix), a, threshSSE2Chunk)
}

func threshSSE2Chunk(b *Ops, a threshArgs, lo, hi int) {
	s, d := a.s, a.d
	u := b.s
	vthresh, vmax, bias, vthreshBiased := a.vthresh, a.vmax, a.bias, a.vbiased
	x := lo
	for ; x <= hi-16; x += 16 {
		v := u.LoaduSi128U8(s[x:])
		var r vec.V128
		switch a.typ {
		case ThreshTrunc:
			r = u.MinEpu8(v, vthresh)
		case ThreshBinary:
			mask := u.CmpgtEpi8(u.XorSi128(v, bias), vthreshBiased)
			r = u.AndSi128(mask, vmax)
		case ThreshBinaryInv:
			mask := u.CmpgtEpi8(u.XorSi128(v, bias), vthreshBiased)
			r = u.AndnotSi128(mask, vmax)
		case ThreshToZero:
			mask := u.CmpgtEpi8(u.XorSi128(v, bias), vthreshBiased)
			r = u.AndSi128(mask, v)
		default: // ThreshToZeroInv
			mask := u.CmpgtEpi8(u.XorSi128(v, bias), vthreshBiased)
			r = u.AndnotSi128(mask, v)
		}
		u.StoreuSi128U8(d[x:], r)
		u.Overhead(2, 1, 0)
	}
	for ; x < hi; x++ {
		d[x] = thresholdPixel(s[x], a.thresh, a.maxval, a.typ)
		if b.T != nil {
			b.T.RecordN("mov/cmp/mov(tail)", trace.ScalarALU, 3, 0)
			b.scalarOverhead(1)
		}
	}
}
