package cv

import (
	"sort"
	"testing"
	"testing/quick"

	"simdstudy/internal/image"
	"simdstudy/internal/trace"
)

func TestMedian9Network(t *testing.T) {
	// The exchange network must agree with a sort-based median on every
	// permutation-ish input.
	cases := [][9]uint8{
		{1, 2, 3, 4, 5, 6, 7, 8, 9},
		{9, 8, 7, 6, 5, 4, 3, 2, 1},
		{5, 5, 5, 5, 5, 5, 5, 5, 5},
		{0, 255, 0, 255, 0, 255, 0, 255, 0},
		{1, 1, 1, 2, 2, 2, 3, 3, 3},
		{200, 10, 30, 50, 90, 70, 110, 130, 150},
	}
	for _, c := range cases {
		sorted := make([]uint8, 9)
		copy(sorted, c[:])
		sort.Slice(sorted, func(i, j int) bool { return sorted[i] < sorted[j] })
		in := c
		if got := median9(&in); got != sorted[4] {
			t.Errorf("median9(%v) = %d, want %d", c, got, sorted[4])
		}
	}
}

// Property: the network median equals the sort median for arbitrary bytes.
func TestQuickMedian9(t *testing.T) {
	f := func(c [9]uint8) bool {
		sorted := make([]uint8, 9)
		copy(sorted, c[:])
		sort.Slice(sorted, func(i, j int) bool { return sorted[i] < sorted[j] })
		in := c
		return median9(&in) == sorted[4]
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

func TestMedianBlurAllPathsAgree(t *testing.T) {
	res := image.Resolution{Width: 83, Height: 31} // odd: exercises tails
	src := image.Synthetic(res, 9)
	want := image.NewMat(res.Width, res.Height, image.U8)
	if err := NewOps(ISAScalar, nil).MedianBlur3x3(src, want); err != nil {
		t.Fatal(err)
	}
	for _, isa := range []ISA{ISANEON, ISASSE2} {
		got := image.NewMat(res.Width, res.Height, image.U8)
		if err := NewOps(isa, nil).MedianBlur3x3(src, got); err != nil {
			t.Fatal(err)
		}
		if !want.EqualTo(got) {
			t.Errorf("%v: %d pixels differ", isa, want.DiffCount(got, 0))
		}
	}
}

func TestMedianRemovesImpulseNoise(t *testing.T) {
	res := image.Resolution{Width: 48, Height: 32}
	src := image.NewMat(res.Width, res.Height, image.U8)
	for i := range src.U8Pix {
		src.U8Pix[i] = 100
	}
	// Salt-and-pepper speckles.
	src.U8Pix[10*48+10] = 255
	src.U8Pix[20*48+30] = 0
	dst := image.NewMat(res.Width, res.Height, image.U8)
	if err := NewOps(ISANEON, nil).MedianBlur3x3(src, dst); err != nil {
		t.Fatal(err)
	}
	if dst.U8Pix[10*48+10] != 100 || dst.U8Pix[20*48+30] != 100 {
		t.Error("median must remove isolated speckles")
	}
}

func TestMedianErrors(t *testing.T) {
	o := NewOps(ISAScalar, nil)
	u := image.NewMat(8, 8, image.U8)
	f := image.NewMat(8, 8, image.F32)
	if err := o.MedianBlur3x3(f, u); err == nil {
		t.Error("F32 src should fail")
	}
	if err := o.MedianBlur3x3(u, f); err == nil {
		t.Error("F32 dst should fail")
	}
	if err := o.MedianBlur3x3(u, image.NewMat(4, 4, image.U8)); err == nil {
		t.Error("shape mismatch should fail")
	}
}

func TestMedianVectorizesTo38OpsPerBlock(t *testing.T) {
	res := image.Resolution{Width: 66, Height: 4} // one 16-wide block per row region
	src := image.Synthetic(res, 3)
	dst := image.NewMat(res.Width, res.Height, image.U8)
	var tr trace.Counter
	if err := NewOps(ISANEON, &tr).MedianBlur3x3(src, dst); err != nil {
		t.Fatal(err)
	}
	// Per 16-pixel block: 9 loads + 38 min/max + 1 store.
	if tr.Opcode("vmin.u8") != tr.Opcode("vmax.u8") {
		t.Error("network must pair mins and maxes")
	}
	blocks := tr.Count(trace.SIMDStore)
	if tr.Opcode("vmin.u8") != 19*blocks {
		t.Errorf("19 comparators per block: %d mins for %d blocks",
			tr.Opcode("vmin.u8"), blocks)
	}
}

func TestResizeHalfAllPathsAgree(t *testing.T) {
	res := image.Resolution{Width: 86, Height: 34}
	src := image.Synthetic(res, 10)
	want := image.NewMat(res.Width/2, res.Height/2, image.U8)
	if err := NewOps(ISAScalar, nil).ResizeHalf(src, want); err != nil {
		t.Fatal(err)
	}
	for _, isa := range []ISA{ISANEON, ISASSE2} {
		got := image.NewMat(res.Width/2, res.Height/2, image.U8)
		if err := NewOps(isa, nil).ResizeHalf(src, got); err != nil {
			t.Fatal(err)
		}
		if !want.EqualTo(got) {
			t.Errorf("%v: %d pixels differ", isa, want.DiffCount(got, 0))
		}
	}
}

func TestResizeHalfSemantics(t *testing.T) {
	src := image.NewMat(4, 2, image.U8)
	copy(src.U8Pix, []uint8{
		10, 20, 0, 255,
		30, 40, 255, 0,
	})
	dst := image.NewMat(2, 1, image.U8)
	if err := NewOps(ISAScalar, nil).ResizeHalf(src, dst); err != nil {
		t.Fatal(err)
	}
	if dst.U8Pix[0] != 25 { // (10+20+30+40+2)>>2 = 102>>2
		t.Errorf("box average: %d", dst.U8Pix[0])
	}
	if dst.U8Pix[1] != 128 { // (0+255+255+0+2)>>2 = 512>>2 = 128
		t.Errorf("box average 2: %d", dst.U8Pix[1])
	}
}

func TestResizeHalfPreservesFlat(t *testing.T) {
	src := image.NewMat(32, 32, image.U8)
	for i := range src.U8Pix {
		src.U8Pix[i] = 99
	}
	dst := image.NewMat(16, 16, image.U8)
	if err := NewOps(ISASSE2, nil).ResizeHalf(src, dst); err != nil {
		t.Fatal(err)
	}
	for _, v := range dst.U8Pix {
		if v != 99 {
			t.Fatal("flat image must stay flat")
		}
	}
}

func TestResizeHalfErrors(t *testing.T) {
	o := NewOps(ISAScalar, nil)
	src := image.NewMat(8, 8, image.U8)
	if err := o.ResizeHalf(src, image.NewMat(3, 4, image.U8)); err == nil {
		t.Error("wrong dst shape should fail")
	}
	if err := o.ResizeHalf(image.NewMat(8, 8, image.F32), image.NewMat(4, 4, image.U8)); err == nil {
		t.Error("F32 src should fail")
	}
	if err := o.ResizeHalf(src, image.NewMat(4, 4, image.S16)); err == nil {
		t.Error("S16 dst should fail")
	}
}

// Property: resize then resize preserves the global mean within rounding.
func TestQuickResizePreservesMean(t *testing.T) {
	f := func(seed uint64) bool {
		res := image.Resolution{Width: 32, Height: 16}
		src := image.Synthetic(res, seed)
		dst := image.NewMat(16, 8, image.U8)
		if err := NewOps(ISANEON, nil).ResizeHalf(src, dst); err != nil {
			return false
		}
		var srcSum, dstSum float64
		for _, v := range src.U8Pix {
			srcSum += float64(v)
		}
		for _, v := range dst.U8Pix {
			dstSum += float64(v)
		}
		srcMean := srcSum / float64(src.Pixels())
		dstMean := dstSum / float64(dst.Pixels())
		d := srcMean - dstMean
		if d < 0 {
			d = -d
		}
		return d < 1.0
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 20}); err != nil {
		t.Error(err)
	}
}
