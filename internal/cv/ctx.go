package cv

import (
	"context"

	"simdstudy/internal/image"
	"simdstudy/internal/obs"
	"simdstudy/internal/resilience"
)

// This file is the context plumbing for the kernel library: every public
// entry point gains a Ctx variant that honors deadlines and cancellation at
// row granularity. The row loops of the convolution-style kernels (Gaussian,
// Sobel, median, resize) call rowTick once per row; when the bound context
// is done, the tick unwinds the kernel with a private panic that the Ctx
// wrapper converts into a typed *resilience.DeadlineError carrying how many
// rows completed. Elementwise kernels (threshold, convert) are single-pass
// and run for microseconds per frame, so they check only at entry and at
// guard phase boundaries.
//
// The internal-panic pattern follows encoding/json: the cancellation path
// never escapes the package, and the non-Ctx entry points are completely
// unaffected (o.ctx is nil, rowTick is a single predictable branch).

// ctxCanceled is the private unwind token raised by rowTick.
type ctxCanceled struct{ err error }

// rowTick is called once per completed row by the kernel row loops. With no
// bound context it is a few nil checks; with one, it counts the row and
// unwinds if the context is done. On a parallel band clone it additionally
// beats the band's watchdog heart (when a watchdog is attached) and polls
// the section's shared stop flag, so a sibling band's failure, a stall
// verdict or cancellation unwinds this band at its next row boundary.
func (o *Ops) rowTick() {
	if o.heart != nil {
		o.heart.Beat()
	}
	if o.stop != nil && o.stop.Load() {
		panic(bandStopped{})
	}
	if o.ctx == nil {
		return
	}
	o.ctxRows++
	if err := o.ctx.Err(); err != nil {
		panic(ctxCanceled{err})
	}
}

// flatTick is rowTick for the element-block loops of the flat kernels: it
// polls the stop flag and the context at block granularity but does not
// count rows (flat kernels report no partial-row progress, as before).
func (o *Ops) flatTick() {
	if o.heart != nil {
		o.heart.Beat()
	}
	if o.stop != nil && o.stop.Load() {
		panic(bandStopped{})
	}
	if o.ctx == nil {
		return
	}
	if err := o.ctx.Err(); err != nil {
		panic(ctxCanceled{err})
	}
}

// ctxCheck unwinds immediately when the bound context is done; guardedRun
// calls it at phase boundaries (before the referee, before each retry).
func (o *Ops) ctxCheck() {
	if o.ctx == nil {
		return
	}
	if err := o.ctx.Err(); err != nil {
		panic(ctxCanceled{err})
	}
}

// runCtx binds ctx to the Ops for the duration of fn and converts
// cancellation unwinds into *resilience.DeadlineError. totalRows is the
// planned row count (passes x height) for partial-progress accounting.
// Nested Ctx calls inherit the outermost binding.
func (o *Ops) runCtx(ctx context.Context, op string, totalRows int, fn func() error) (err error) {
	if ctx == nil || o.ctx != nil {
		return fn()
	}
	o.ctx, o.ctxRows = ctx, 0
	o.traceID = obs.TraceID(ctx)
	defer func() {
		rows := o.ctxRows
		o.ctx, o.ctxRows = nil, 0
		o.traceID = ""
		if r := recover(); r != nil {
			c, ok := r.(ctxCanceled)
			if !ok {
				panic(r)
			}
			err = &resilience.DeadlineError{
				Op: op, Cause: c.err, Completed: rows, Total: totalRows, Unit: "rows",
			}
		}
	}()
	if e := ctx.Err(); e != nil {
		return &resilience.DeadlineError{Op: op, Cause: e, Total: totalRows, Unit: "rows"}
	}
	return fn()
}

// ConvertF32ToS16Ctx is ConvertF32ToS16 with deadline/cancellation
// checking at entry and guard phase boundaries.
func (o *Ops) ConvertF32ToS16Ctx(ctx context.Context, src, dst *image.Mat) error {
	return o.runCtx(ctx, "cv.ConvertF32ToS16", dst.Height, func() error {
		return o.ConvertF32ToS16(src, dst)
	})
}

// ThresholdCtx is Threshold with deadline/cancellation checking at entry
// and guard phase boundaries.
func (o *Ops) ThresholdCtx(ctx context.Context, src, dst *image.Mat, thresh, maxval uint8, typ ThreshType) error {
	return o.runCtx(ctx, "cv.Threshold", dst.Height, func() error {
		return o.Threshold(src, dst, thresh, maxval, typ)
	})
}

// GaussianBlurCtx is GaussianBlur with row-granular cancellation across
// both separable passes.
func (o *Ops) GaussianBlurCtx(ctx context.Context, src, dst *image.Mat) error {
	return o.runCtx(ctx, "cv.GaussianBlur", 2*dst.Height, func() error {
		return o.GaussianBlur(src, dst)
	})
}

// SobelFilterCtx is SobelFilter with row-granular cancellation across both
// passes.
func (o *Ops) SobelFilterCtx(ctx context.Context, src, dst *image.Mat, dx, dy int) error {
	return o.runCtx(ctx, "cv.SobelFilter", 2*dst.Height, func() error {
		return o.SobelFilter(src, dst, dx, dy)
	})
}

// DetectEdgesCtx is DetectEdges with row-granular cancellation through the
// nested Sobel passes (2 filters x 2 passes each).
func (o *Ops) DetectEdgesCtx(ctx context.Context, src, dst *image.Mat, thresh int16) error {
	return o.runCtx(ctx, "cv.DetectEdges", 4*dst.Height, func() error {
		return o.DetectEdges(src, dst, thresh)
	})
}

// CannyCtx is Canny with row-granular cancellation through the four Sobel
// passes and the NMS pass (the flat magnitude stage and the hysteresis
// traversal check at block/entry granularity only). Staged and fused
// execution tick the same 5 x height row budget.
func (o *Ops) CannyCtx(ctx context.Context, src, dst *image.Mat, lowThresh, highThresh int16) error {
	return o.runCtx(ctx, "cv.Canny", 5*dst.Height, func() error {
		return o.Canny(src, dst, lowThresh, highThresh)
	})
}

// MedianBlur3x3Ctx is MedianBlur3x3 with row-granular cancellation.
func (o *Ops) MedianBlur3x3Ctx(ctx context.Context, src, dst *image.Mat) error {
	return o.runCtx(ctx, "cv.MedianBlur3x3", dst.Height, func() error {
		return o.MedianBlur3x3(src, dst)
	})
}

// ResizeHalfCtx is ResizeHalf with row-granular cancellation.
func (o *Ops) ResizeHalfCtx(ctx context.Context, src, dst *image.Mat) error {
	return o.runCtx(ctx, "cv.ResizeHalf", dst.Height, func() error {
		return o.ResizeHalf(src, dst)
	})
}
