package cv

import (
	"simdstudy/internal/obs"
	"simdstudy/internal/trace"
)

// This file wires the kernel library into the observability layer: every
// public kernel entry point opens an obs.Span (nested under the enclosing
// kernel for composite pipelines like DetectEdges -> SobelFilter, or under
// a harness-provided parent for grid cells and campaign images), and the
// outermost kernel of each call tree folds its dynamic instruction-class
// deltas into the registry's counter families:
//
//	simd_instructions_total{isa,class}  <-> the paper's Section V
//	    per-class dynamic instruction counts
//	simd_bytes_total{isa,dir}           <-> bytes moved by the load/store
//	    classes, the input to the memory-traffic model
//	kernel_runs_total{kernel,isa}
//	kernel_wall_seconds{kernel,isa}     (histogram)
//
// Guard counters and events are recorded in guard.go.

// SetObserver attaches an observability registry to the Ops and both
// emulation units; nil detaches. Kernel spans, instruction-class counters
// and guard action metrics report there.
func (o *Ops) SetObserver(reg *obs.Registry) {
	o.Obs = reg
	o.n.Obs = reg
	o.s.Obs = reg
}

// Observer returns the attached registry, or nil.
func (o *Ops) Observer() *obs.Registry { return o.Obs }

// SetSpanParent nests subsequently started kernel spans under sp. The
// harness points this at its grid-cell and campaign-image spans so a
// whole run renders as cells -> kernels -> guard actions in the Chrome
// trace. A nil sp restores root spans.
func (o *Ops) SetSpanParent(sp *obs.Span) { o.obsParent = sp }

// kernelFrame tracks one in-flight kernel entry point's span and the
// trace snapshot its instruction delta is computed against.
type kernelFrame struct {
	sp      *obs.Span
	classes [trace.NumClasses]uint64
	loadB   uint64
	storeB  uint64
}

// curSpan returns the innermost open kernel span, or the external parent.
func (o *Ops) curSpan() *obs.Span {
	if n := len(o.frames); n > 0 {
		return o.frames[n-1].sp
	}
	return o.obsParent
}

// beginKernel opens a span for a public kernel entry point and snapshots
// the trace counters. Returns nil (and records nothing) when no registry
// is attached. It also counts call-tree depth and, at the outermost entry
// of a guarded Ops with a breaker set attached, asks the kernel's breaker
// whether the SIMD path may run — runs denied there fall through to the
// scalar path via UseOptimized without consuming the useOptimized latch.
func (o *Ops) beginKernel(name string) *obs.Span {
	if o.brk == nil && o.Obs == nil {
		// Fast path: without a breaker or registry the depth/frame state is
		// never consulted, and skipping it keeps a plain Ops free of
		// unsynchronized writes — the property that makes one Ops shareable
		// across goroutines.
		return nil
	}
	o.depth++
	if o.depth == 1 && o.brk != nil && o.guarded && o.useOptimized && o.isa != ISAScalar {
		// Only consult the breaker when the SIMD path is actually eligible;
		// in half-open state Allow consumes a probe that must be resolved
		// by a guard verdict, so asking on behalf of a call that would run
		// scalar anyway would leak probes.
		if o.brk.Allow(name, o.isa.String()) {
			o.brkPending = name
		} else {
			o.denySIMD = true
		}
	}
	if o.Obs == nil {
		return nil
	}
	isa := obs.L("isa", o.isa.String())
	var sp *obs.Span
	if parent := o.curSpan(); parent != nil {
		sp = parent.Child("kernel."+name, isa)
	} else {
		sp = o.Obs.StartSpan("kernel."+name, isa)
	}
	o.Obs.Counter("kernel_runs_total", obs.L("kernel", name), isa).Inc()
	f := kernelFrame{sp: sp}
	if o.T != nil {
		f.classes = o.T.Classes()
		f.loadB = o.T.BytesLoaded()
		f.storeB = o.T.BytesStored()
	}
	o.frames = append(o.frames, f)
	return sp
}

// endKernel closes the span opened by beginKernel, attributing the
// instruction delta to it; the outermost kernel also folds the per-class
// deltas into the registry counters (inner kernels skip that so composite
// pipelines are not double counted).
func (o *Ops) endKernel(name string, err error) {
	if o.brk == nil && o.Obs == nil {
		return
	}
	if o.depth > 0 {
		o.depth--
	}
	if o.depth == 0 {
		o.denySIMD = false
		if o.brkPending != "" {
			// The call ended without a guard verdict (validation error or
			// cancellation unwind): hand any half-open probe back so the
			// breaker cannot wedge with its budget consumed.
			o.brk.Release(o.brkPending, o.isa.String())
			o.brkPending = ""
		}
	}
	if o.Obs == nil || len(o.frames) == 0 {
		return
	}
	f := o.frames[len(o.frames)-1]
	o.frames = o.frames[:len(o.frames)-1]
	isa := obs.L("isa", o.isa.String())
	var total uint64
	if o.T != nil {
		now := o.T.Classes()
		for c := 0; c < trace.NumClasses; c++ {
			d := now[c] - f.classes[c]
			total += d
			if d > 0 && len(o.frames) == 0 {
				o.Obs.Counter("simd_instructions_total",
					obs.L("class", trace.Class(c).String()), isa).Add(d)
			}
		}
		if len(o.frames) == 0 {
			if d := o.T.BytesLoaded() - f.loadB; d > 0 {
				o.Obs.Counter("simd_bytes_total", obs.L("dir", "load"), isa).Add(d)
			}
			if d := o.T.BytesStored() - f.storeB; d > 0 {
				o.Obs.Counter("simd_bytes_total", obs.L("dir", "store"), isa).Add(d)
			}
		}
	}
	f.sp.AddInstr(total)
	if err != nil {
		f.sp.SetAttr("error", err.Error())
	}
	dur := f.sp.End()
	o.Obs.Histogram("kernel_wall_seconds", nil,
		obs.L("kernel", name), isa).Observe(dur.Seconds())
}
