package cv

import (
	"errors"
	"fmt"

	"simdstudy/internal/obs"
	"simdstudy/internal/super"
	"simdstudy/internal/trace"
)

// This file wires the kernel library into the observability layer: every
// public kernel entry point opens an obs.Span (nested under the enclosing
// kernel for composite pipelines like DetectEdges -> SobelFilter, or under
// a harness-provided parent for grid cells and campaign images), and the
// outermost kernel of each call tree folds its dynamic instruction-class
// deltas into the registry's counter families:
//
//	simd_instructions_total{isa,class}  <-> the paper's Section V
//	    per-class dynamic instruction counts
//	simd_bytes_total{isa,dir}           <-> bytes moved by the load/store
//	    classes, the input to the memory-traffic model
//	kernel_runs_total{kernel,isa}
//	kernel_wall_seconds{kernel,isa}     (histogram)
//
// Guard counters and events are recorded in guard.go.

// SetObserver attaches an observability registry to the Ops and both
// emulation units; nil detaches. Kernel spans, instruction-class counters
// and guard action metrics report there.
func (o *Ops) SetObserver(reg *obs.Registry) {
	o.Obs = reg
	o.n.Obs = reg
	o.s.Obs = reg
}

// Observer returns the attached registry, or nil.
func (o *Ops) Observer() *obs.Registry { return o.Obs }

// SetSpanParent nests subsequently started kernel spans under sp. The
// harness points this at its grid-cell and campaign-image spans so a
// whole run renders as cells -> kernels -> guard actions in the Chrome
// trace. A nil sp restores root spans.
func (o *Ops) SetSpanParent(sp *obs.Span) { o.obsParent = sp }

// kernelFrame tracks one in-flight kernel entry point's span and the
// trace snapshot its instruction delta is computed against.
type kernelFrame struct {
	sp      *obs.Span
	classes [trace.NumClasses]uint64
	loadB   uint64
	storeB  uint64
}

// curSpan returns the innermost open kernel span, or the external parent.
func (o *Ops) curSpan() *obs.Span {
	if n := len(o.frames); n > 0 {
		return o.frames[n-1].sp
	}
	return o.obsParent
}

// beginKernel opens a span for a public kernel entry point and snapshots
// the trace counters. Returns nil (and records nothing) when no registry
// is attached. It also counts call-tree depth and, at the outermost entry
// of a guarded Ops with a breaker set attached, asks the kernel's breaker
// whether the SIMD path may run — runs denied there fall through to the
// scalar path via UseOptimized without consuming the useOptimized latch.
func (o *Ops) beginKernel(name string) *obs.Span {
	if o.instrumentFree() {
		// Fast path: without a breaker, registry, supervisor or watchdog the
		// depth/frame state is never consulted, and skipping it keeps a
		// plain Ops free of unsynchronized writes — the property that makes
		// one Ops shareable across goroutines.
		return nil
	}
	o.depth++
	if o.depth == 1 {
		o.curKernel = name
		if o.sup != nil && o.sup.Quarantined(name, o.isa.String()) {
			// A quarantined pair runs scalar and serial: the supervisor has
			// decided this kernel's SIMD bands are poisonous, so neither the
			// breaker (it is stuck-open anyway) nor the band scheduler is
			// consulted.
			o.denySIMD = true
			o.serialOnly = true
		} else if o.brk != nil && (o.guarded || o.aud != nil) && o.useOptimized && o.isa != ISAScalar {
			// Only consult the breaker when the SIMD path is actually
			// eligible AND something can produce a verdict (the guard referee
			// or a sampled audit); in half-open state Allow consumes a probe
			// that must be resolved by a verdict, so asking on behalf of a
			// call that would run scalar anyway would leak probes. An
			// admitted call whose audit sampling skips resolves the probe via
			// endKernel's Release, leaving the half-open budget intact.
			if o.brk.Allow(name, o.isa.String()) {
				o.brkPending = name
			} else {
				o.denySIMD = true
			}
		}
	}
	if o.Obs == nil {
		return nil
	}
	isa := obs.L("isa", o.isa.String())
	var sp *obs.Span
	if parent := o.curSpan(); parent != nil {
		sp = parent.Child("kernel."+name, isa)
	} else {
		sp = o.Obs.StartSpan("kernel."+name, isa)
	}
	if o.traceID != "" {
		sp.SetAttr("trace_id", o.traceID)
	}
	o.Obs.Counter("kernel_runs_total", obs.L("kernel", name), isa).Inc()
	f := kernelFrame{sp: sp}
	if o.T != nil {
		f.classes = o.T.Classes()
		f.loadB = o.T.BytesLoaded()
		f.storeB = o.T.BytesStored()
	}
	o.frames = append(o.frames, f)
	return sp
}

// endKernel closes the span opened by beginKernel, attributing the
// instruction delta to it; the outermost kernel also folds the per-class
// deltas into the registry counters (inner kernels skip that so composite
// pipelines are not double counted).
func (o *Ops) endKernel(name string, err error) {
	if o.instrumentFree() {
		return
	}
	if o.depth > 0 {
		o.depth--
	}
	if o.depth == 0 {
		o.denySIMD = false
		o.serialOnly = false
		o.curKernel = ""
		if o.brkPending != "" {
			// The call ended without a guard verdict (validation error or
			// cancellation unwind): hand any half-open probe back so the
			// breaker cannot wedge with its budget consumed.
			o.brk.Release(o.brkPending, o.isa.String())
			o.brkPending = ""
		}
	}
	if o.Obs == nil || len(o.frames) == 0 {
		return
	}
	f := o.frames[len(o.frames)-1]
	o.frames = o.frames[:len(o.frames)-1]
	isa := obs.L("isa", o.isa.String())
	var total uint64
	if o.T != nil {
		now := o.T.Classes()
		for c := 0; c < trace.NumClasses; c++ {
			d := now[c] - f.classes[c]
			total += d
			if d > 0 && len(o.frames) == 0 {
				o.Obs.Counter("simd_instructions_total",
					obs.L("class", trace.Class(c).String()), isa).Add(d)
			}
		}
		if len(o.frames) == 0 {
			if d := o.T.BytesLoaded() - f.loadB; d > 0 {
				o.Obs.Counter("simd_bytes_total", obs.L("dir", "load"), isa).Add(d)
			}
			if d := o.T.BytesStored() - f.storeB; d > 0 {
				o.Obs.Counter("simd_bytes_total", obs.L("dir", "store"), isa).Add(d)
			}
		}
	}
	f.sp.AddInstr(total)
	if err != nil {
		f.sp.SetAttr("error", err.Error())
	}
	dur := f.sp.End()
	h := o.Obs.Histogram("kernel_wall_seconds", nil, obs.L("kernel", name), isa)
	if o.traceID != "" {
		// The wall-clock observation carries the request's trace ID as an
		// OpenMetrics exemplar: a bad latency bucket points straight at a
		// request whose span tree explains it.
		h.ObserveExemplar(dur.Seconds(), o.traceID, o.Obs.Now())
	} else {
		h.Observe(dur.Seconds())
	}
}

// instrumentFree reports that no per-call state (depth, frames, breaker,
// supervision) needs maintaining for this Ops; begin/endKernel are no-ops.
func (o *Ops) instrumentFree() bool {
	return o.brk == nil && o.Obs == nil && o.sup == nil && o.wd == nil
}

// endKernelP is the deferred epilogue of every public kernel entry point.
// On a clean return it behaves as endKernel; on an unwind it applies the
// supervision policy:
//
//   - a cancellation unwind (ctxCanceled) passes through untouched for
//     runCtx to convert, exactly as before;
//   - a stalled parallel section (stallUnwind, raised by the dispatcher in
//     par.go when the watchdog cancelled a pass) is converted into the entry
//     point's error return — a typed *super.StallError — and, at the
//     outermost entry, recorded with the breaker as a failure so repeated
//     stalls demote the pair to scalar like repeated guard fallbacks;
//   - any other panic is recorded with the supervisor at the outermost
//     entry (quarantining pairs that exceed the policy and latching their
//     breaker stuck-open) and then resumes unwinding. In every unwind case
//     endKernel still runs, so spans close and an admitted-but-unresolved
//     breaker probe is always Released — a panicking probe can never leak
//     the half-open budget.
func (o *Ops) endKernelP(name string, errp *error) {
	r := recover()
	if r == nil {
		if o.depth == 1 && errp != nil && *errp != nil {
			var se *super.StallError
			if errors.As(*errp, &se) {
				// A nested kernel stalled and surfaced it as an error; the
				// verdict belongs to this call tree's breaker entry.
				o.recordBreaker(name, false)
			}
		}
		var err error
		if errp != nil {
			err = *errp
		}
		o.endKernel(name, err)
		return
	}
	if _, ok := r.(ctxCanceled); ok {
		o.endKernel(name, nil)
		panic(r)
	}
	if su, ok := r.(stallUnwind); ok {
		if o.depth == 1 {
			o.recordBreaker(name, false)
		}
		o.endKernel(name, su.err)
		*errp = su.err
		return
	}
	if o.depth == 1 && o.sup != nil {
		if o.sup.RecordPanic(name, o.isa.String(), r) && o.brk != nil {
			o.brk.ForceStuckOpen(name, o.isa.String())
		}
	}
	o.endKernel(name, fmt.Errorf("panic: %v", r))
	panic(r)
}
