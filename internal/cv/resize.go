package cv

import (
	"fmt"

	"simdstudy/internal/image"
	"simdstudy/internal/trace"
	"simdstudy/internal/vec"
)

// ResizeHalf downsamples a U8 image by 2x in each dimension with a
// rounding 2x2 box filter:
//
//	dst[x,y] = (s[2x,2y] + s[2x+1,2y] + s[2x,2y+1] + s[2x+1,2y+1] + 2) >> 2
//
// Image resizing is another kernel from the paper's related work (7.6x
// NEON speedup on Tegra 3). The NEON path showcases the structured vld2
// load: one instruction splits each row into even and odd pixel columns,
// so 8 output pixels cost two loads, three widening adds and a rounding
// shift-narrow. Each output row reads exactly two source rows that no
// other output row touches, so the kernel bands over destination rows
// with no halo at all.
func (o *Ops) ResizeHalf(src, dst *image.Mat) (err error) {
	o.beginKernel("ResizeHalf")
	defer o.endKernelP("ResizeHalf", &err)
	if err := requireKind(src, image.U8, "ResizeHalf src"); err != nil {
		return err
	}
	if err := requireKind(dst, image.U8, "ResizeHalf dst"); err != nil {
		return err
	}
	if dst.Width != src.Width/2 || dst.Height != src.Height/2 {
		return fmt.Errorf("cv: ResizeHalf dst must be %dx%d, got %dx%d",
			src.Width/2, src.Height/2, dst.Width, dst.Height)
	}
	if dst.Width == 0 || dst.Height == 0 {
		return fmt.Errorf("cv: ResizeHalf source %dx%d too small", src.Width, src.Height)
	}
	run := func(op *Ops, d *image.Mat) error {
		if op.UseOptimized() {
			switch op.isa {
			case ISANEON:
				op.resizeHalfNEON(src, d)
				return nil
			case ISASSE2:
				op.resizeHalfSSE2(src, d)
				return nil
			}
		}
		op.resizeHalfScalar(src, d)
		return nil
	}
	if o.UseOptimized() {
		return o.guardedRun("ResizeHalf", dst, 0,
			func() error { return run(o, dst) }, run)
	}
	return run(o, dst)
}

func resizePixel(pix []uint8, w, x, y int) uint8 {
	r0 := 2 * y * w
	r1 := r0 + w
	s := uint16(pix[r0+2*x]) + uint16(pix[r0+2*x+1]) + uint16(pix[r1+2*x]) + uint16(pix[r1+2*x+1])
	return uint8((s + 2) >> 2)
}

// resizeArgs bundles the downsample pass for the banded row bodies, with
// the SSE2 deinterleave constants hoisted once on the parent unit.
type resizeArgs struct {
	src, dst     []uint8
	sw, dw       int
	lowMask, two vec.V128
}

func (o *Ops) resizeHalfScalar(src, dst *image.Mat) {
	a := resizeArgs{src: src.U8Pix, dst: dst.U8Pix, sw: src.Width, dw: dst.Width}
	parRows(o, dst.Height, a, resizeScalarRow)
}

func resizeScalarRow(b *Ops, a resizeArgs, y int) {
	for x := 0; x < a.dw; x++ {
		a.dst[y*a.dw+x] = resizePixel(a.src, a.sw, x, y)
	}
	if b.T != nil {
		px := uint64(a.dw)
		b.T.RecordN("ldrb(4)", trace.ScalarLoad, 4*px, 1)
		b.T.RecordN("add/shr", trace.ScalarALU, 4*px, 0)
		b.T.RecordN("strb", trace.ScalarStore, px, 1)
		b.scalarOverhead(px)
	}
}

func (o *Ops) resizeHalfNEON(src, dst *image.Mat) {
	a := resizeArgs{src: src.U8Pix, dst: dst.U8Pix, sw: src.Width, dw: dst.Width}
	parRows(o, dst.Height, a, resizeNEONRow)
}

func resizeNEONRow(b *Ops, a resizeArgs, y int) {
	u := b.n
	row0 := a.src[2*y*a.sw:]
	row1 := a.src[(2*y+1)*a.sw:]
	out := a.dst[y*a.dw : (y+1)*a.dw]
	edge := 0
	x := 0
	for ; x+8 <= a.dw; x += 8 {
		// vld2 splits 16 source bytes into even/odd columns.
		p0 := u.Vld2U8(row0[2*x:])
		p1 := u.Vld2U8(row1[2*x:])
		acc := u.VaddlU8(p0[0], p0[1])
		acc = u.VaddwU8(acc, p1[0])
		acc = u.VaddwU8(acc, p1[1])
		u.Vst1U8(out[x:], u.VrshrnNU16(acc, 2))
		u.Overhead(2, 1, 0)
	}
	for ; x < a.dw; x++ {
		out[x] = resizePixel(a.src, a.sw, x, y)
		edge++
	}
	b.resizeTailCost(uint64(edge))
}

func (o *Ops) resizeTailCost(pixels uint64) {
	if o.T == nil || pixels == 0 {
		return
	}
	o.T.RecordN("resize(tail)", trace.ScalarALU, 8*pixels, 0)
	o.scalarOverhead(pixels)
}

func (o *Ops) resizeHalfSSE2(src, dst *image.Mat) {
	a := resizeArgs{src: src.U8Pix, dst: dst.U8Pix, sw: src.Width, dw: dst.Width}
	a.lowMask = o.s.Set1Epi16(0x00FF)
	a.two = o.s.Set1Epi16(2)
	parRows(o, dst.Height, a, resizeSSE2Row)
}

func resizeSSE2Row(b *Ops, a resizeArgs, y int) {
	u := b.s
	row0 := a.src[2*y*a.sw:]
	row1 := a.src[(2*y+1)*a.sw:]
	out := a.dst[y*a.dw : (y+1)*a.dw]
	edge := 0
	x := 0
	for ; x+8 <= a.dw; x += 8 {
		// SSE2 has no deinterleaving load: split even/odd columns
		// with a mask and a 16-bit shift — two extra ops per load
		// that vld2 gets for free, the asymmetry behind NEON's edge
		// on this kernel.
		v0 := u.LoaduSi128U8(row0[2*x:])
		v1 := u.LoaduSi128U8(row1[2*x:])
		even0 := u.AndSi128(v0, a.lowMask)
		odd0 := u.SrliEpi16(v0, 8)
		even1 := u.AndSi128(v1, a.lowMask)
		odd1 := u.SrliEpi16(v1, 8)
		acc := u.AddEpi16(u.AddEpi16(even0, odd0), u.AddEpi16(even1, odd1))
		acc = u.SrliEpi16(u.AddEpi16(acc, a.two), 2)
		u.StorelEpi64U8(out[x:], u.PackusEpi16(acc, acc))
		u.Overhead(2, 1, 0)
	}
	for ; x < a.dw; x++ {
		out[x] = resizePixel(a.src, a.sw, x, y)
		edge++
	}
	b.resizeTailCost(uint64(edge))
}
