package cv

import (
	"fmt"

	"simdstudy/internal/image"
	"simdstudy/internal/trace"
)

// ResizeHalf downsamples a U8 image by 2x in each dimension with a
// rounding 2x2 box filter:
//
//	dst[x,y] = (s[2x,2y] + s[2x+1,2y] + s[2x,2y+1] + s[2x+1,2y+1] + 2) >> 2
//
// Image resizing is another kernel from the paper's related work (7.6x
// NEON speedup on Tegra 3). The NEON path showcases the structured vld2
// load: one instruction splits each row into even and odd pixel columns,
// so 8 output pixels cost two loads, three widening adds and a rounding
// shift-narrow.
func (o *Ops) ResizeHalf(src, dst *image.Mat) (err error) {
	o.beginKernel("ResizeHalf")
	defer func() { o.endKernel("ResizeHalf", err) }()
	if err := requireKind(src, image.U8, "ResizeHalf src"); err != nil {
		return err
	}
	if err := requireKind(dst, image.U8, "ResizeHalf dst"); err != nil {
		return err
	}
	if dst.Width != src.Width/2 || dst.Height != src.Height/2 {
		return fmt.Errorf("cv: ResizeHalf dst must be %dx%d, got %dx%d",
			src.Width/2, src.Height/2, dst.Width, dst.Height)
	}
	if dst.Width == 0 || dst.Height == 0 {
		return fmt.Errorf("cv: ResizeHalf source %dx%d too small", src.Width, src.Height)
	}
	run := func(op *Ops, d *image.Mat) error {
		if op.UseOptimized() {
			switch op.isa {
			case ISANEON:
				op.resizeHalfNEON(src, d)
				return nil
			case ISASSE2:
				op.resizeHalfSSE2(src, d)
				return nil
			}
		}
		op.resizeHalfScalar(src, d)
		return nil
	}
	if o.UseOptimized() {
		return o.guardedRun("ResizeHalf", dst, 0,
			func() error { return run(o, dst) }, run)
	}
	return run(o, dst)
}

func resizePixel(pix []uint8, w, x, y int) uint8 {
	r0 := 2 * y * w
	r1 := r0 + w
	s := uint16(pix[r0+2*x]) + uint16(pix[r0+2*x+1]) + uint16(pix[r1+2*x]) + uint16(pix[r1+2*x+1])
	return uint8((s + 2) >> 2)
}

func (o *Ops) resizeHalfScalar(src, dst *image.Mat) {
	w := src.Width
	for y := 0; y < dst.Height; y++ {
		for x := 0; x < dst.Width; x++ {
			dst.U8Pix[y*dst.Width+x] = resizePixel(src.U8Pix, w, x, y)
		}
		o.rowTick()
	}
	if o.T != nil {
		px := uint64(dst.Pixels())
		o.T.RecordN("ldrb(4)", trace.ScalarLoad, 4*px, 1)
		o.T.RecordN("add/shr", trace.ScalarALU, 4*px, 0)
		o.T.RecordN("strb", trace.ScalarStore, px, 1)
		o.scalarOverhead(px)
	}
}

func (o *Ops) resizeHalfNEON(src, dst *image.Mat) {
	u := o.n
	w := src.Width
	edge := 0
	for y := 0; y < dst.Height; y++ {
		row0 := src.U8Pix[2*y*w:]
		row1 := src.U8Pix[(2*y+1)*w:]
		out := dst.U8Pix[y*dst.Width : (y+1)*dst.Width]
		x := 0
		for ; x+8 <= dst.Width; x += 8 {
			// vld2 splits 16 source bytes into even/odd columns.
			p0 := u.Vld2U8(row0[2*x:])
			p1 := u.Vld2U8(row1[2*x:])
			acc := u.VaddlU8(p0[0], p0[1])
			acc = u.VaddwU8(acc, p1[0])
			acc = u.VaddwU8(acc, p1[1])
			u.Vst1U8(out[x:], u.VrshrnNU16(acc, 2))
			u.Overhead(2, 1, 0)
		}
		for ; x < dst.Width; x++ {
			out[x] = resizePixel(src.U8Pix, w, x, y)
			edge++
		}
		o.rowTick()
	}
	if o.T != nil && edge > 0 {
		o.T.RecordN("resize(tail)", trace.ScalarALU, 8*uint64(edge), 0)
		o.scalarOverhead(uint64(edge))
	}
}

func (o *Ops) resizeHalfSSE2(src, dst *image.Mat) {
	u := o.s
	w := src.Width
	lowMask := u.Set1Epi16(0x00FF)
	two := u.Set1Epi16(2)
	edge := 0
	for y := 0; y < dst.Height; y++ {
		row0 := src.U8Pix[2*y*w:]
		row1 := src.U8Pix[(2*y+1)*w:]
		out := dst.U8Pix[y*dst.Width : (y+1)*dst.Width]
		x := 0
		for ; x+8 <= dst.Width; x += 8 {
			// SSE2 has no deinterleaving load: split even/odd columns
			// with a mask and a 16-bit shift — two extra ops per load
			// that vld2 gets for free, the asymmetry behind NEON's edge
			// on this kernel.
			v0 := u.LoaduSi128U8(row0[2*x:])
			v1 := u.LoaduSi128U8(row1[2*x:])
			even0 := u.AndSi128(v0, lowMask)
			odd0 := u.SrliEpi16(v0, 8)
			even1 := u.AndSi128(v1, lowMask)
			odd1 := u.SrliEpi16(v1, 8)
			acc := u.AddEpi16(u.AddEpi16(even0, odd0), u.AddEpi16(even1, odd1))
			acc = u.SrliEpi16(u.AddEpi16(acc, two), 2)
			u.StorelEpi64U8(out[x:], u.PackusEpi16(acc, acc))
			u.Overhead(2, 1, 0)
		}
		for ; x < dst.Width; x++ {
			out[x] = resizePixel(src.U8Pix, w, x, y)
			edge++
		}
		o.rowTick()
	}
	if o.T != nil && edge > 0 {
		o.T.RecordN("resize(tail)", trace.ScalarALU, 8*uint64(edge), 0)
		o.scalarOverhead(uint64(edge))
	}
}
