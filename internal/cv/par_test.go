package cv

import (
	"context"
	"errors"
	"reflect"
	"sync"
	"sync/atomic"
	"testing"

	"simdstudy/internal/image"
	"simdstudy/internal/resilience"
	"simdstudy/internal/trace"
)

// parCase runs one kernel end to end on the given Ops and returns its
// output plane. Inputs are synthesized deterministically from the
// resolution, so two runs of the same case see identical data.
type parCase struct {
	name string
	run  func(o *Ops, res image.Resolution) (*image.Mat, error)
}

func synthS16(res image.Resolution, seed uint64) *image.Mat {
	u8 := image.Synthetic(res, seed)
	m := image.NewMat(res.Width, res.Height, image.S16)
	for i, p := range u8.U8Pix {
		m.S16Pix[i] = int16(p)*7 - 512 // signed, both polarities
	}
	return m
}

func parCases() []parCase {
	return []parCase{
		{"convert", func(o *Ops, res image.Resolution) (*image.Mat, error) {
			src := image.SyntheticF32(res, 3)
			dst := image.NewMat(res.Width, res.Height, image.S16)
			return dst, o.ConvertF32ToS16(src, dst)
		}},
		{"threshold", func(o *Ops, res image.Resolution) (*image.Mat, error) {
			src := image.Synthetic(res, 4)
			dst := image.NewMat(res.Width, res.Height, image.U8)
			return dst, o.Threshold(src, dst, 97, 255, ThreshBinary)
		}},
		{"gaussian", func(o *Ops, res image.Resolution) (*image.Mat, error) {
			src := image.Synthetic(res, 5)
			dst := image.NewMat(res.Width, res.Height, image.U8)
			return dst, o.GaussianBlur(src, dst)
		}},
		{"sobelH", func(o *Ops, res image.Resolution) (*image.Mat, error) {
			src := image.Synthetic(res, 6)
			dst := image.NewMat(res.Width, res.Height, image.S16)
			return dst, o.SobelFilter(src, dst, 1, 0)
		}},
		{"sobelV", func(o *Ops, res image.Resolution) (*image.Mat, error) {
			src := image.Synthetic(res, 7)
			dst := image.NewMat(res.Width, res.Height, image.S16)
			return dst, o.SobelFilter(src, dst, 0, 1)
		}},
		{"edges", func(o *Ops, res image.Resolution) (*image.Mat, error) {
			src := image.Synthetic(res, 8)
			dst := image.NewMat(res.Width, res.Height, image.U8)
			return dst, o.DetectEdges(src, dst, 60)
		}},
		{"median", func(o *Ops, res image.Resolution) (*image.Mat, error) {
			src := image.Synthetic(res, 9)
			dst := image.NewMat(res.Width, res.Height, image.U8)
			return dst, o.MedianBlur3x3(src, dst)
		}},
		{"resize", func(o *Ops, res image.Resolution) (*image.Mat, error) {
			src := image.Synthetic(res, 10)
			dst := image.NewMat(res.Width/2, res.Height/2, image.U8)
			return dst, o.ResizeHalf(src, dst)
		}},
		{"rgb2gray", func(o *Ops, res image.Resolution) (*image.Mat, error) {
			src := image.SyntheticRGB(res, 11)
			dst := image.NewMat(res.Width, res.Height, image.U8)
			return dst, o.RGBToGray(src, dst)
		}},
		{"canny", func(o *Ops, res image.Resolution) (*image.Mat, error) {
			src := image.Synthetic(res, 12)
			dst := image.NewMat(res.Width, res.Height, image.U8)
			return dst, o.Canny(src, dst, 20, 60)
		}},
		{"gradmag", func(o *Ops, res image.Resolution) (*image.Mat, error) {
			gx := synthS16(res, 13)
			gy := synthS16(res, 14)
			dst := image.NewMat(res.Width, res.Height, image.S16)
			return dst, o.GradientMagnitude(gx, gy, dst)
		}},
	}
}

// parResolutions: odd dimensions exercise SIMD tails; the tall one spans
// multiple flatQuantum blocks so flat kernels band for real; the tiny one
// forces single-row bands at high worker counts.
var parResolutions = []image.Resolution{
	{Width: 67, Height: 61, Name: "67x61"},
	{Width: 34, Height: 7, Name: "34x7"},
	{Width: 129, Height: 97, Name: "129x97"},
}

// TestParallelBitExactAndCountIdentical: for every kernel, ISA, resolution
// and worker count, the parallel run must produce the same pixels, the same
// per-class instruction counts and the same named-event counts as the
// serial run. This is the central banding invariant: parallelism is a
// scheduling change, never a semantic one.
func TestParallelBitExactAndCountIdentical(t *testing.T) {
	for _, isa := range []ISA{ISANEON, ISASSE2} {
		for _, res := range parResolutions {
			for _, tc := range parCases() {
				baseTr := &trace.Counter{}
				base := NewOps(isa, baseTr)
				want, err := tc.run(base, res)
				if err != nil {
					t.Fatalf("%v/%s/%s serial: %v", isa, res.Name, tc.name, err)
				}
				wantClasses := baseTr.Classes()
				wantEvents := baseTr.Events()
				wantLd, wantSt := baseTr.BytesLoaded(), baseTr.BytesStored()

				for _, workers := range []int{2, 4, 7} {
					tr := &trace.Counter{}
					o := NewOps(isa, tr)
					o.SetParallel(ParallelConfig{Workers: workers, MinRowsPerBand: 1})
					got, err := tc.run(o, res)
					if err != nil {
						t.Fatalf("%v/%s/%s w=%d: %v", isa, res.Name, tc.name, workers, err)
					}
					if !want.EqualTo(got) {
						t.Errorf("%v/%s/%s w=%d: output differs in %d pixels",
							isa, res.Name, tc.name, workers, want.DiffCount(got, 0))
					}
					if c := tr.Classes(); c != wantClasses {
						t.Errorf("%v/%s/%s w=%d: class counts differ\nserial:   %v\nparallel: %v",
							isa, res.Name, tc.name, workers, wantClasses, c)
					}
					if ev := tr.Events(); !reflect.DeepEqual(ev, wantEvents) {
						t.Errorf("%v/%s/%s w=%d: event counts differ\nserial:   %v\nparallel: %v",
							isa, res.Name, tc.name, workers, wantEvents, ev)
					}
					if ld, st := tr.BytesLoaded(), tr.BytesStored(); ld != wantLd || st != wantSt {
						t.Errorf("%v/%s/%s w=%d: byte traffic differs: %d/%d vs %d/%d",
							isa, res.Name, tc.name, workers, ld, st, wantLd, wantSt)
					}
				}
			}
		}
	}
}

// TestParallelScalarISA: banding must also hold on the scalar reference
// paths (useOptimized off), which the guard referee depends on.
func TestParallelScalarISA(t *testing.T) {
	res := image.Resolution{Width: 53, Height: 37, Name: "53x37"}
	for _, tc := range parCases() {
		base := NewOps(ISANEON, nil)
		base.SetUseOptimized(false)
		want, err := tc.run(base, res)
		if err != nil {
			t.Fatalf("%s serial: %v", tc.name, err)
		}
		o := NewOps(ISANEON, nil)
		o.SetUseOptimized(false)
		o.SetParallel(ParallelConfig{Workers: 4, MinRowsPerBand: 1})
		got, err := tc.run(o, res)
		if err != nil {
			t.Fatalf("%s parallel: %v", tc.name, err)
		}
		if !want.EqualTo(got) {
			t.Errorf("%s: scalar-path parallel output differs in %d pixels",
				tc.name, want.DiffCount(got, 0))
		}
	}
}

// TestSetParallelSemantics: zero config and Workers=1 mean serial;
// negative Workers means one band per core; MinRowsPerBand defaults.
func TestSetParallelSemantics(t *testing.T) {
	o := NewOps(ISANEON, nil)
	if p := o.Parallel(); p.Workers != 0 {
		t.Fatalf("fresh Ops should be serial, got %+v", p)
	}
	o.SetParallel(ParallelConfig{})
	if p := o.Parallel(); p.Workers != 1 {
		t.Fatalf("zero config should normalize to serial, got %+v", p)
	}
	o.SetParallel(ParallelConfig{Workers: 3})
	if p := o.Parallel(); p.Workers != 3 || p.MinRowsPerBand <= 0 {
		t.Fatalf("explicit workers lost: %+v", p)
	}
	o.SetParallel(ParallelConfig{Workers: -1})
	if p := o.Parallel(); p.Workers < 1 {
		t.Fatalf("negative workers should become per-core count, got %+v", p)
	}
}

// countdownCtx reports cancellation after a fixed number of Err polls, so a
// parallel kernel call gets cancelled deterministically mid-flight (after
// some rows have completed) rather than at entry.
type countdownCtx struct {
	context.Context
	left atomic.Int64
}

func (c *countdownCtx) Err() error {
	if c.left.Add(-1) < 0 {
		return context.Canceled
	}
	return nil
}

// TestParallelCancellationStopsSiblings: a context that expires mid-kernel
// must unwind a parallel call as a typed DeadlineError with partial row
// accounting, and the sibling bands must stop at their next row boundary
// (the call returns; no band runs to completion).
func TestParallelCancellationStopsSiblings(t *testing.T) {
	res := image.Resolution{Width: 67, Height: 241, Name: "67x241"}
	src := image.Synthetic(res, 21)
	dst := image.NewMat(res.Width, res.Height, image.U8)

	o := NewOps(ISANEON, nil)
	o.SetParallel(ParallelConfig{Workers: 4, MinRowsPerBand: 1})
	ctx := &countdownCtx{Context: context.Background()}
	ctx.left.Store(30) // entry check + ~30 row polls across the bands

	err := o.GaussianBlurCtx(ctx, src, dst)
	var de *resilience.DeadlineError
	if !errors.As(err, &de) {
		t.Fatalf("err = %v, want *resilience.DeadlineError", err)
	}
	if !errors.Is(err, context.Canceled) {
		t.Fatal("DeadlineError must unwrap to context.Canceled")
	}
	if de.Unit != "rows" || de.Completed <= 0 || de.Completed >= de.Total {
		t.Errorf("accounting = %d/%d %s, want partial progress", de.Completed, de.Total, de.Unit)
	}
}

// TestParallelSharedOps: one Ops hammered from 8 goroutines, each running
// parallel kernels on private planes — must be race-clean (run with -race)
// and every output bit-exact against a serial reference.
func TestParallelSharedOps(t *testing.T) {
	res := image.Resolution{Width: 67, Height: 61, Name: "67x61"}
	ref := NewOps(ISANEON, nil)
	wantBlur := image.NewMat(res.Width, res.Height, image.U8)
	wantThr := image.NewMat(res.Width, res.Height, image.U8)
	src := image.Synthetic(res, 30)
	if err := ref.GaussianBlur(src, wantBlur); err != nil {
		t.Fatal(err)
	}
	if err := ref.Threshold(src, wantThr, 97, 255, ThreshBinary); err != nil {
		t.Fatal(err)
	}

	shared := NewOps(ISANEON, &trace.Counter{})
	shared.SetParallel(ParallelConfig{Workers: 4, MinRowsPerBand: 1})
	var wg sync.WaitGroup
	errs := make([]error, 8)
	for g := 0; g < 8; g++ {
		wg.Add(1)
		go func(g int) {
			defer wg.Done()
			blur := image.NewMat(res.Width, res.Height, image.U8)
			thr := image.NewMat(res.Width, res.Height, image.U8)
			for it := 0; it < 5; it++ {
				if err := shared.GaussianBlur(src, blur); err != nil {
					errs[g] = err
					return
				}
				if err := shared.Threshold(src, thr, 97, 255, ThreshBinary); err != nil {
					errs[g] = err
					return
				}
				if !blur.EqualTo(wantBlur) || !thr.EqualTo(wantThr) {
					errs[g] = errors.New("shared-Ops output diverged from serial reference")
					return
				}
			}
		}(g)
	}
	wg.Wait()
	for g, err := range errs {
		if err != nil {
			t.Errorf("goroutine %d: %v", g, err)
		}
	}
}
