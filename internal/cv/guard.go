package cv

import (
	"fmt"
	"time"

	"simdstudy/internal/faults"
	"simdstudy/internal/image"
	"simdstudy/internal/integrity"
	"simdstudy/internal/obs"
	"simdstudy/internal/par"
	"simdstudy/internal/resilience"
)

// This file implements guarded mode: a self-checking dispatch wrapper that
// runs a scalar referee after each hand-SIMD kernel, spot-checks sampled
// rows, and degrades gracefully — detect, retry once, fall back to the
// scalar result, and finally trip the setUseOptimized kill-switch — instead
// of letting a corrupted lane reach the caller as silently wrong pixels.
//
// The referee is a fresh scalar Ops configured for the *same* ISA, because
// rounding conventions are per-platform (cvRound is half-to-even on SSE2 and
// half-away-from-zero on ARM); comparing against the other family's scalar
// code would flag legitimate divergence as faults.

// FaultAction classifies how a guarded kernel resolved a divergence.
type FaultAction int

// Guarded-mode outcomes, in escalation order.
const (
	// ActionDetected: the spot-check saw the SIMD output diverge from the
	// scalar referee beyond tolerance.
	ActionDetected FaultAction = iota
	// ActionRetryRecovered: re-running the SIMD path produced output that
	// matches the referee, so the fault was transient.
	ActionRetryRecovered
	// ActionFallback: retries exhausted; the scalar referee's output was
	// substituted for the SIMD output.
	ActionFallback
	// ActionKillSwitch: repeated fallbacks disabled the optimized paths for
	// this Ops entirely (setUseOptimized(false)).
	ActionKillSwitch
)

var actionNames = [...]string{"detected", "retry-recovered", "fallback", "kill-switch"}

// String names the action.
func (a FaultAction) String() string {
	if a < 0 || int(a) >= len(actionNames) {
		return fmt.Sprintf("action(%d)", int(a))
	}
	return actionNames[a]
}

// KernelFault is a typed record of one guarded-mode intervention.
type KernelFault struct {
	Kernel string      // entry point name, e.g. "GaussianBlur"
	ISA    ISA         // the SIMD family that diverged
	Action FaultAction // how the divergence was resolved
	Rows   []int       // sampled rows that diverged at first detection
	Diffs  int         // differing pixels across those rows
}

// String renders the fault for logs.
func (f KernelFault) String() string {
	return fmt.Sprintf("%s/%v: %v (%d diff pixels in rows %v)",
		f.Kernel, f.ISA, f.Action, f.Diffs, f.Rows)
}

// GuardPolicy tunes the guarded dispatch.
type GuardPolicy struct {
	// SampleRows is how many rows the spot-check compares per image
	// (clamped to the image height). Zero means the default of 8.
	SampleRows int
	// MaxRetries is how many times the SIMD path is re-run after a
	// detection before falling back. Negative means zero retries.
	MaxRetries int
	// KillAfter trips the kill-switch (useOptimized=false) after this many
	// fallbacks. Zero means the default of 3; negative disables the switch.
	// Ignored when a breaker set is attached (SetBreakers): there, the
	// breaker's GiveUpAfter policy owns the terminal demotion.
	KillAfter int
	// Seed drives the deterministic row sampler.
	Seed uint64
	// Backoff spaces SIMD retries after a detection. The zero value keeps
	// the historical immediate retry; waits are interruptible by the
	// context bound through the Ctx kernel variants.
	Backoff resilience.Backoff
}

// DefaultGuardPolicy returns the policy used when none is set.
func DefaultGuardPolicy() GuardPolicy {
	return GuardPolicy{SampleRows: 8, MaxRetries: 1, KillAfter: 3, Seed: 1}
}

func (p GuardPolicy) normalized() GuardPolicy {
	if p.SampleRows <= 0 {
		p.SampleRows = 8
	}
	if p.MaxRetries < 0 {
		p.MaxRetries = 0
	}
	if p.KillAfter == 0 {
		p.KillAfter = 3
	}
	if p.Seed == 0 {
		p.Seed = 1
	}
	return p
}

// SetGuarded toggles guarded mode. While on, every SIMD kernel entry point
// cross-checks its output against a scalar referee before returning.
func (o *Ops) SetGuarded(on bool) {
	o.guarded = on
	if on && o.policy == (GuardPolicy{}) {
		o.policy = DefaultGuardPolicy()
	}
}

// Guarded reports whether guarded mode is on.
func (o *Ops) Guarded() bool { return o.guarded }

// SetGuardPolicy installs a policy and enables guarded mode.
func (o *Ops) SetGuardPolicy(p GuardPolicy) {
	o.policy = p.normalized()
	o.guarded = true
}

// SetFaultInjector attaches (or, with nil, detaches) a fault injector to the
// underlying NEON and SSE2 emulation units. The injector fires at every
// instrumented intrinsic; the scalar paths and the guard referee are never
// subject to injection.
func (o *Ops) SetFaultInjector(inj faults.Injector) {
	o.injector = inj
	o.n.F = inj
	o.s.F = inj
}

// FaultInjector returns the attached injector, or nil.
func (o *Ops) FaultInjector() faults.Injector { return o.injector }

// Faults returns the guarded-mode interventions recorded so far.
func (o *Ops) Faults() []KernelFault { return o.kernelFaults }

// Fallbacks returns how many times a kernel fell back to the scalar result.
func (o *Ops) Fallbacks() int { return o.fallbacks }

// ResetFaults clears recorded interventions and the fallback count, and
// re-arms the kill-switch by re-enabling optimized paths if the ISA has any.
func (o *Ops) ResetFaults() {
	o.kernelFaults = nil
	o.fallbacks = 0
	if o.isa != ISAScalar {
		o.useOptimized = true
	}
}

func (o *Ops) recordFault(f KernelFault) {
	o.kernelFaults = append(o.kernelFaults, f)
	if o.T != nil {
		o.T.Event("fault." + f.Action.String())
	}
	if o.Obs != nil {
		o.Obs.Counter("guard_actions_total",
			obs.L("kernel", f.Kernel), obs.L("isa", f.ISA.String()),
			obs.L("action", f.Action.String())).Inc()
		fields := map[string]any{
			"kernel": f.Kernel,
			"isa":    f.ISA.String(),
			"action": f.Action.String(),
		}
		if len(f.Rows) > 0 {
			fields["rows"] = f.Rows
			fields["diffs"] = f.Diffs
		}
		o.Obs.Emit("guard.fault", fields)
	}
}

// sampleRows picks policy.SampleRows distinct rows of an h-row image
// deterministically from the policy seed. The first and last rows are always
// included: edge handling is where hand kernels historically diverge.
func (o *Ops) sampleRows(h int) []int {
	n := o.policy.SampleRows
	if n >= h {
		rows := make([]int, h)
		for i := range rows {
			rows[i] = i
		}
		return rows
	}
	seen := make(map[int]bool, n)
	rows := make([]int, 0, n)
	add := func(r int) {
		if !seen[r] {
			seen[r] = true
			rows = append(rows, r)
		}
	}
	add(0)
	if n > 1 {
		add(h - 1)
	}
	s := o.policy.Seed
	for len(rows) < n {
		s ^= s >> 12
		s ^= s << 25
		s ^= s >> 27
		add(int((s * 0x2545F4914F6CDD1D) % uint64(h)))
	}
	return rows
}

// diffRows counts pixels in the sampled rows where got and want differ by
// more than tol, and returns the diverging rows alongside the total.
func diffRows(got, want *image.Mat, rows []int, tol int) (bad []int, diffs int) {
	w := got.Width
	absDiff := func(a, b int) int {
		if a > b {
			return a - b
		}
		return b - a
	}
	for _, r := range rows {
		lo, hi := r*w, (r+1)*w
		d := 0
		switch got.Kind {
		case image.U8:
			for i := lo; i < hi; i++ {
				if absDiff(int(got.U8Pix[i]), int(want.U8Pix[i])) > tol {
					d++
				}
			}
		case image.S16:
			for i := lo; i < hi; i++ {
				if absDiff(int(got.S16Pix[i]), int(want.S16Pix[i])) > tol {
					d++
				}
			}
		case image.F32:
			for i := lo; i < hi; i++ {
				a, b := got.F32Pix[i], want.F32Pix[i]
				// NaN anywhere is a divergence: no kernel here produces one.
				if a != a || b != b || absDiff(int(a-b), 0) > tol {
					d++
				}
			}
		}
		if d > 0 {
			bad = append(bad, r)
			diffs += d
		}
	}
	return bad, diffs
}

// copyPixels overwrites dst's pixel data with src's (shapes already match).
func copyPixels(dst, src *image.Mat) {
	copy(dst.U8Pix, src.U8Pix)
	copy(dst.S16Pix, src.S16Pix)
	copy(dst.F32Pix, src.F32Pix)
}

// guardedRun is the guarded dispatch wrapper every SIMD kernel entry point
// routes through. simd runs the hand-optimized path into dst; rerun invokes
// the same public entry point on a referee Ops so the scalar reference lands
// in a scratch Mat. tol is the per-kernel pixel tolerance (nonzero only
// where the SIMD path legitimately rounds differently from scalar code).
//
// Flow: run SIMD → spot-check sampled rows against the scalar referee → on
// divergence record ActionDetected, retry the SIMD path up to MaxRetries →
// still diverging: substitute the referee output (ActionFallback) → after
// KillAfter fallbacks flip useOptimized off (ActionKillSwitch).
func (o *Ops) guardedRun(kernel string, dst *image.Mat, tol int,
	simd func() error, rerun func(ref *Ops, d *image.Mat) error) error {
	if o.inGuard {
		// A nested kernel call (DetectEdges → SobelFilter) already covered
		// by the outer guard or audit.
		return simd()
	}
	if !o.guarded {
		if o.aud != nil && o.aud.Sample() {
			return o.auditedRun(kernel, dst, tol, simd, rerun)
		}
		return simd()
	}
	// In guarded mode a sampled audit piggybacks on the guard's referee (see
	// audit.go): the sampling decision is drawn here, up front, so the
	// sampler stream is positioned identically whether or not the guard
	// later intervenes.
	audit := o.aud != nil && o.aud.Sample()
	o.inGuard = true
	defer func() { o.inGuard = false }()

	if err := simd(); err != nil {
		return err
	}

	// Scalar referee: same ISA (same rounding conventions), optimizations
	// off, no trace (its instructions are bookkeeping, not workload), and
	// crucially no fault injector. Its Ops has no bound context either, so
	// a deadline can never interrupt the reference computation mid-row.
	o.ctxCheck()
	refSpan := o.curSpan().Child("guard.referee")
	ref := NewOps(o.isa, nil)
	ref.SetUseOptimized(false)
	want := par.GetMat(dst.Width, dst.Height, dst.Kind)
	defer par.PutMat(want)
	if err := rerun(ref, want); err != nil {
		refSpan.End()
		return fmt.Errorf("cv: %s guard referee: %w", kernel, err)
	}

	rows := o.sampleRows(dst.Height)
	bad, diffs := diffRows(dst, want, rows, tol)
	refSpan.End()

	// Piggyback audit: compare the first SIMD output against the referee
	// over the audit window (the referee is already paid for, so the audit
	// costs only the compare). The guard keeps sole ownership of the breaker
	// verdict below; the audit contributes the corruption record and, on the
	// guard-clean path, a repair when the spot-check's rows missed a
	// divergence the full-window compare caught.
	var auditCE *integrity.CorruptionError
	if audit {
		cmpStart := time.Now()
		auditCE = o.auditCompare(kernel, dst, want, tol)
		o.aud.Observe(o.Obs, kernel, o.isa.String(), time.Since(cmpStart), o.traceID, auditCE)
	}

	if len(bad) == 0 {
		if auditCE != nil {
			copyPixels(dst, want)
		}
		o.recordBreaker(kernel, true)
		return nil
	}
	o.recordFault(KernelFault{Kernel: kernel, ISA: o.isa, Action: ActionDetected, Rows: bad, Diffs: diffs})

	for try := 0; try < o.policy.MaxRetries; try++ {
		if d := o.policy.Backoff.Delay(try); d > 0 {
			if err := resilience.Sleep(o.ctx, d); err != nil {
				panic(ctxCanceled{err})
			}
		}
		o.ctxCheck()
		retrySpan := o.curSpan().Child("guard.retry")
		if err := simd(); err != nil {
			retrySpan.End()
			return err
		}
		if b, _ := diffRows(dst, want, rows, tol); len(b) == 0 {
			retrySpan.End()
			o.recordFault(KernelFault{Kernel: kernel, ISA: o.isa, Action: ActionRetryRecovered})
			o.recordBreaker(kernel, true)
			return nil
		}
		retrySpan.End()
	}

	// Degrade gracefully: the referee already computed the full scalar
	// image, so the fallback is a copy, not a recompute.
	fbSpan := o.curSpan().Child("guard.fallback")
	copyPixels(dst, want)
	o.fallbacks++
	o.recordFault(KernelFault{Kernel: kernel, ISA: o.isa, Action: ActionFallback})
	if o.brk == nil && o.policy.KillAfter > 0 && o.fallbacks >= o.policy.KillAfter && o.useOptimized {
		// Legacy terminal demotion, only without a breaker: with one, the
		// breaker's open/half-open cycle owns the decision and StuckOpen is
		// the terminal action (see recordBreaker).
		o.useOptimized = false
		o.recordFault(KernelFault{Kernel: kernel, ISA: o.isa, Action: ActionKillSwitch})
	}
	fbSpan.End()
	o.recordBreaker(kernel, false)
	return nil
}

// recordBreaker feeds one guard verdict into the kernel's breaker, when one
// is attached. A breaker that latches StuckOpen maps onto the legacy
// kill-switch: optimized paths are disabled for this Ops and the terminal
// action is recorded in the fault log.
func (o *Ops) recordBreaker(kernel string, success bool) {
	if o.brk == nil {
		return
	}
	o.brkPending = ""
	st := o.brk.Record(kernel, o.isa.String(), success)
	if st == resilience.StateStuckOpen && o.useOptimized {
		o.useOptimized = false
		o.recordFault(KernelFault{Kernel: kernel, ISA: o.isa, Action: ActionKillSwitch})
	}
}
