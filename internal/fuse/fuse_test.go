package fuse

import (
	"testing"

	"simdstudy/internal/cache"
)

// cannyPlan mirrors the shape internal/cv fuses: two separable smoothing
// pairs feeding a magnitude stage feeding a halo-1 NMS stage.
func cannyPlan() Plan {
	return Plan{
		Name: "canny",
		Stages: []Stage{
			{Name: "diffH", Inputs: []Input{{Stage: External, Halo: 0}}, Elem: 2},
			{Name: "smoothV", Inputs: []Input{{Stage: 0, Halo: 1}}, Elem: 2},
			{Name: "smoothH", Inputs: []Input{{Stage: External, Halo: 0}}, Elem: 2},
			{Name: "diffV", Inputs: []Input{{Stage: 2, Halo: 1}}, Elem: 2},
			{Name: "mag", Inputs: []Input{{Stage: 1, Halo: 0}, {Stage: 3, Halo: 0}}, Elem: 2},
			{Name: "nms", Inputs: []Input{{Stage: 4, Halo: 1}, {Stage: 1, Halo: 0}, {Stage: 3, Halo: 0}}, Elem: 1, Full: true},
		},
	}
}

func TestLeads(t *testing.T) {
	lead := cannyPlan().leads()
	want := []int{2, 1, 2, 1, 1, 0}
	for i := range want {
		if lead[i] != want[i] {
			t.Fatalf("lead[%d] = %d, want %d (all %v)", i, lead[i], want[i], lead)
		}
	}
}

func TestStageRowsCoverEachRowOnce(t *testing.T) {
	p := cannyPlan()
	for _, h := range []int{1, 2, 3, 7, 8, 9, 40, 53} {
		for _, s := range []int{1, 3, 8, 17, h} {
			g, err := p.Geometry(h, s)
			if err != nil {
				t.Fatal(err)
			}
			for i := range p.Stages {
				next := 0
				for k := 0; k < g.Strips; k++ {
					y0, y1 := g.StageRows(i, k)
					if y0 != next {
						t.Fatalf("h=%d s=%d stage %d strip %d: rows start %d, want %d", h, s, i, k, y0, next)
					}
					if y1 < y0 || y1 > h {
						t.Fatalf("h=%d s=%d stage %d strip %d: rows [%d,%d)", h, s, i, k, y0, y1)
					}
					next = y1
				}
				if next != h {
					t.Fatalf("h=%d s=%d stage %d: covered %d of %d rows", h, s, i, next, h)
				}
			}
		}
	}
}

// TestSweepSimulation drives Strip windows through a full sweep and
// checks that every input row a stage needs is live in its producer's
// window, that values survive the halo-carry slides, and that windows
// never exceed their planned capacity.
func TestSweepSimulation(t *testing.T) {
	p := cannyPlan()
	const w = 5
	for _, h := range []int{1, 3, 8, 9, 40, 53} {
		for _, s := range []int{1, 3, 8, 17, h} {
			g, err := p.Geometry(h, s)
			if err != nil {
				t.Fatal(err)
			}
			wins := make([]Strip[int], len(p.Stages))
			for i := range p.Stages {
				if p.Stages[i].Full {
					continue
				}
				wins[i].Bind(make([]int, g.Cap[i]*w), w, g.Cap[i])
			}
			for k := 0; k < g.Strips; k++ {
				for i, st := range p.Stages {
					if !st.Full {
						wins[i].Slide(g.Keep(i, k))
					}
					y0, y1 := g.StageRows(i, k)
					if y1 == y0 {
						continue
					}
					if !st.Full {
						wins[i].Produce(y1 - 1)
					}
					for y := y0; y < y1; y++ {
						sum := 0
						for _, in := range st.Inputs {
							if in.Stage == External {
								continue
							}
							for d := -in.Halo; d <= in.Halo; d++ {
								yy := y + d
								if yy < 0 {
									yy = 0
								}
								if yy > h-1 {
									yy = h - 1
								}
								row := wins[in.Stage].Row(yy) // panics if not live
								if row[0] != stamp(in.Stage, yy) {
									t.Fatalf("h=%d s=%d stage %d strip %d row %d: input %d row %d holds %d, want %d",
										h, s, i, k, y, in.Stage, yy, row[0], stamp(in.Stage, yy))
								}
								sum += row[0]
							}
						}
						if !st.Full {
							row := wins[i].Row(y)
							for x := range row {
								row[x] = stamp(i, y)
							}
							_ = sum
						}
					}
				}
			}
		}
	}
}

func stamp(stage, y int) int { return stage<<16 | y }

func TestKeepNeverDropsNeededRows(t *testing.T) {
	p := cannyPlan()
	g, err := p.Geometry(40, 8)
	if err != nil {
		t.Fatal(err)
	}
	// Going into strip k, consumer c still needs producer rows down to
	// Frontier(c,k-1)+1-halo; Keep must not exceed that.
	for k := 0; k < g.Strips; k++ {
		for c, st := range p.Stages {
			for _, in := range st.Inputs {
				if in.Stage == External {
					continue
				}
				need := g.Frontier(c, k-1) + 1 - in.Halo
				if need < 0 {
					need = 0
				}
				if keep := g.Keep(in.Stage, k); keep > need {
					t.Fatalf("strip %d: Keep(%d)=%d drops row %d still needed by stage %d", k, in.Stage, keep, need, c)
				}
			}
		}
	}
}

func TestAutoStripRows(t *testing.T) {
	p := cannyPlan()
	caches := []cache.Config{
		{Name: "L1", SizeBytes: 32 << 10, LineBytes: 64, Ways: 4},
		{Name: "L2", SizeBytes: 1 << 20, LineBytes: 64, Ways: 16},
	}
	s := p.AutoStripRows(1920, 2592, caches)
	if s < 4 || s > 1920 {
		t.Fatalf("strip rows %d out of range", s)
	}
	// The resulting rolling buffers must fit the half-L2 budget.
	g, err := p.Geometry(1920, s)
	if err != nil {
		t.Fatal(err)
	}
	bytes := 0
	for i, st := range p.Stages {
		bytes += g.Cap[i] * 2592 * st.Elem
	}
	if budget := (1 << 20) / 2; bytes > budget+2592*2*len(p.Stages) {
		t.Fatalf("buffers %d bytes exceed budget %d at strip %d", bytes, budget, s)
	}
	// Tiny image: clamps to h.
	if s := p.AutoStripRows(3, 16, caches); s != 3 {
		t.Fatalf("tiny image strip rows %d, want 3", s)
	}
	// No cache model: default budget still yields a sane strip.
	if s := p.AutoStripRows(1920, 2592, nil); s < 4 || s > 1920 {
		t.Fatalf("default-budget strip rows %d out of range", s)
	}
}

func TestPlanValidate(t *testing.T) {
	bad := []Plan{
		{Name: "empty"},
		{Name: "fwd", Stages: []Stage{{Name: "a", Inputs: []Input{{Stage: 1}}, Elem: 2}, {Name: "b", Elem: 2}}},
		{Name: "self", Stages: []Stage{{Name: "a", Inputs: []Input{{Stage: 0}}, Elem: 2}}},
		{Name: "halo", Stages: []Stage{{Name: "a", Inputs: []Input{{Stage: External, Halo: -1}}, Elem: 2}}},
		{Name: "elem", Stages: []Stage{{Name: "a", Elem: 0}}},
	}
	for _, p := range bad {
		if err := p.Validate(); err == nil {
			t.Fatalf("plan %q: want error", p.Name)
		}
	}
	if err := cannyPlan().Validate(); err != nil {
		t.Fatal(err)
	}
}

func TestStripSlide(t *testing.T) {
	var s Strip[int]
	s.Bind(make([]int, 4*3), 3, 4)
	s.Produce(3)
	for y := 0; y <= 3; y++ {
		for x, r := 0, s.Row(y); x < 3; x++ {
			r[x] = 10*y + x
		}
	}
	s.Slide(2)
	if s.Lo() != 2 || s.Hi() != 3 {
		t.Fatalf("window [%d,%d], want [2,3]", s.Lo(), s.Hi())
	}
	for y := 2; y <= 3; y++ {
		for x, r := 0, s.Row(y); x < 3; x++ {
			if r[x] != 10*y+x {
				t.Fatalf("row %d col %d = %d after slide", y, x, r[x])
			}
		}
	}
	s.Produce(5)
	if s.Hi() != 5 {
		t.Fatalf("hi %d after produce", s.Hi())
	}
	// Sliding past the produced range empties the window.
	s.Slide(9)
	if s.Lo() != 9 || s.Hi() != 8 {
		t.Fatalf("window [%d,%d] after far slide", s.Lo(), s.Hi())
	}
}
