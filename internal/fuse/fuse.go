// Package fuse plans cache-blocked fusion of multi-stage image pipelines.
//
// A staged pipeline (gaussian → sobel → magnitude → NMS) materializes a
// full intermediate plane between stages, paying a DRAM round trip per
// stage once the plane outgrows the last-level cache. Fusion instead
// streams the image through the pipeline in horizontal strips small
// enough that every intermediate row is still cache-resident when its
// consumer reads it: each strip advances every stage a few rows, and
// intermediates live in rolling strip buffers that hold only the rows
// downstream stages still need.
//
// The package is pure geometry and bookkeeping — it decides which rows
// each stage computes per strip (Geometry) and manages the sliding
// windows that hold them (Strip). It runs no kernels; internal/cv
// supplies the row bodies and internal/par the workers.
//
// # Leads and frontiers
//
// A stage with a vertical halo h needs its producer h rows ahead of it:
// sobel's vertical pass at row y reads rows y-1..y+1 of the smoothed
// plane. Propagating that requirement from the last stage backwards
// gives each stage a lead — how many rows past the sweep frontier it
// must have produced. With strip height S, after strip k stage i has
// produced rows [0, Frontier(i,k)] where
//
//	Frontier(i, k) = min(h-1, (k+1)·S - 1 + lead_i)
//
// so per strip each stage computes the half-open row interval
// (Frontier(i,k-1), Frontier(i,k)] — every plane row exactly once
// across the sweep, in the same top-to-bottom order as the staged path.
//
// # Halo-row carry
//
// Between strips, the rows a consumer still needs (its halo above the
// next strip's first row) are carried: Slide copies them to the front
// of the rolling buffer so the live window stays contiguous — vector
// loads and flat chunks never straddle a wrap seam, which a modular
// ring could not guarantee. The carry is a plain copy of already-traced
// rows; it executes no kernel ops, which is why fused trace counters
// stay bit-identical to staged execution.
package fuse

import (
	"fmt"

	"simdstudy/internal/cache"
)

// External marks a stage input that is a caller-supplied full plane
// (the source image) rather than another stage's rolling buffer.
const External = -1

// Input is one plane a stage reads: the producing stage (or External)
// and the vertical halo — how many rows above and below the output row
// the stage reads from it.
type Input struct {
	Stage int
	Halo  int
}

// Stage is one pass of the pipeline. Elem is the element size in bytes
// of its output plane (sizing the rolling buffer). Full marks a stage
// whose output must be materialized as a whole plane anyway (e.g. the
// NMS label plane that hysteresis later walks non-locally); Full stages
// still run strip-by-strip but get no rolling buffer.
type Stage struct {
	Name   string
	Inputs []Input
	Elem   int
	Full   bool
}

// Plan is a declarative pipeline: stages in topological order, each
// reading only earlier stages or External planes.
type Plan struct {
	Name   string
	Stages []Stage
}

// Validate checks topological order, halo and element sanity.
func (p Plan) Validate() error {
	if len(p.Stages) == 0 {
		return fmt.Errorf("fuse: plan %q has no stages", p.Name)
	}
	for i, st := range p.Stages {
		if st.Elem <= 0 {
			return fmt.Errorf("fuse: plan %q stage %d (%s): elem %d", p.Name, i, st.Name, st.Elem)
		}
		for _, in := range st.Inputs {
			if in.Stage != External && (in.Stage < 0 || in.Stage >= i) {
				return fmt.Errorf("fuse: plan %q stage %d (%s) reads stage %d: not topological",
					p.Name, i, st.Name, in.Stage)
			}
			if in.Halo < 0 {
				return fmt.Errorf("fuse: plan %q stage %d (%s): negative halo %d",
					p.Name, i, st.Name, in.Halo)
			}
		}
	}
	return nil
}

// leads propagates halo requirements from consumers to producers:
// lead_i = max over consumers c of (lead_c + halo_{c←i}), with the
// last stage at lead 0 unless something downstream reads it.
func (p Plan) leads() []int {
	lead := make([]int, len(p.Stages))
	for i := len(p.Stages) - 1; i >= 0; i-- {
		for _, in := range p.Stages[i].Inputs {
			if in.Stage == External {
				continue
			}
			if l := lead[i] + in.Halo; l > lead[in.Stage] {
				lead[in.Stage] = l
			}
		}
	}
	return lead
}

// slack returns, per stage, the extra rows beyond its lead that its
// rolling buffer must hold: a consumer c with halo h reaching h rows
// above its own frontier pins rows the producer would otherwise drop
// when the consumer lags the producer by less than h.
func (p Plan) slack(lead []int) []int {
	extra := make([]int, len(p.Stages))
	for c, st := range p.Stages {
		for _, in := range st.Inputs {
			if in.Stage == External {
				continue
			}
			if e := in.Halo - lead[c]; e > extra[in.Stage] {
				extra[in.Stage] = e
			}
		}
	}
	for i := range extra {
		if extra[i] < 0 {
			extra[i] = 0
		}
	}
	return extra
}

// Geometry is a planned sweep over an h-row image in strips of
// StripRows rows, with per-stage leads and rolling-buffer capacities.
type Geometry struct {
	H         int
	StripRows int
	Strips    int
	Lead      []int // rows past the sweep frontier each stage runs ahead
	Cap       []int // rolling-buffer rows per stage (0 for Full stages)

	plan Plan
}

// Geometry plans a sweep. stripRows is the nominal rows per strip.
func (p Plan) Geometry(h, stripRows int) (Geometry, error) {
	if err := p.Validate(); err != nil {
		return Geometry{}, err
	}
	if h < 1 {
		return Geometry{}, fmt.Errorf("fuse: plan %q: height %d", p.Name, h)
	}
	if stripRows < 1 {
		return Geometry{}, fmt.Errorf("fuse: plan %q: strip rows %d", p.Name, stripRows)
	}
	lead := p.leads()
	extra := p.slack(lead)
	caps := make([]int, len(p.Stages))
	for i, st := range p.Stages {
		if st.Full {
			continue
		}
		c := stripRows + lead[i] + extra[i]
		if c > h {
			c = h
		}
		caps[i] = c
	}
	return Geometry{
		H: h, StripRows: stripRows,
		Strips: (h + stripRows - 1) / stripRows,
		Lead:   lead, Cap: caps,
		plan: p,
	}, nil
}

// Frontier is the last row stage i has produced after strip k
// (-1 for k < 0: nothing produced yet).
func (g Geometry) Frontier(i, k int) int {
	if k < 0 {
		return -1
	}
	f := (k+1)*g.StripRows - 1 + g.Lead[i]
	if f > g.H-1 {
		f = g.H - 1
	}
	return f
}

// StageRows is the half-open row interval stage i computes during
// strip k. It may be empty for late strips once the stage's lead has
// carried it to the bottom of the plane.
func (g Geometry) StageRows(i, k int) (y0, y1 int) {
	return g.Frontier(i, k-1) + 1, g.Frontier(i, k) + 1
}

// Keep is the first row of stage i's output still needed going into
// strip k: the lowest row any consumer's halo reaches during strips
// ≥ k. Rows above it are dropped by the halo-carry slide.
func (g Geometry) Keep(i, k int) int {
	keep := g.Frontier(i, k-1) + 1 // no consumer: drop all produced rows
	for c := i + 1; c < len(g.plan.Stages); c++ {
		for _, in := range g.plan.Stages[c].Inputs {
			if in.Stage != i {
				continue
			}
			if need := g.Frontier(c, k-1) + 1 - in.Halo; need < keep {
				keep = need
			}
		}
	}
	if keep < 0 {
		keep = 0
	}
	return keep
}

// AutoStripRows picks the strip height whose rolling buffers for a
// w-wide image fit the fusion budget — half the last (largest) modeled
// cache level, so the strips' working set coexists with the source and
// output streams. Defaults to a 256 KiB budget with no cache model and
// clamps to [4, h].
func (p Plan) AutoStripRows(h, w int, caches []cache.Config) int {
	budget := 256 << 10
	if len(caches) > 0 {
		budget = caches[len(caches)-1].SizeBytes / 2
	}
	if p.Validate() != nil {
		return clampStrip(8, h)
	}
	lead := p.leads()
	extra := p.slack(lead)
	perRow, fixed := 0, 0
	for i, st := range p.Stages {
		if st.Full {
			continue
		}
		perRow += w * st.Elem
		fixed += w * st.Elem * (lead[i] + extra[i])
	}
	if perRow == 0 {
		return h
	}
	return clampStrip((budget-fixed)/perRow, h)
}

func clampStrip(s, h int) int {
	if s < 4 {
		s = 4
	}
	if s > h {
		s = h
	}
	return s
}

// Strip is a rolling window over one stage's output plane: rows
// [Lo, Lo+live) stored contiguously at the front of a pooled buffer.
// Keeping the window contiguous (rather than addressing rows modulo
// the capacity) means row slices and multi-row vector loads never
// cross a wrap seam.
type Strip[T any] struct {
	buf  []T
	w    int
	rows int
	lo   int
	hi   int // last produced row, lo-1 when empty
}

// Bind points the window at a pooled backing buffer of at least
// rows·w elements and resets it to empty at row 0.
func (s *Strip[T]) Bind(buf []T, w, rows int) {
	if len(buf) < w*rows {
		panic(fmt.Sprintf("fuse: strip backing %d < %d rows × %d", len(buf), rows, w))
	}
	s.buf, s.w, s.rows = buf[:w*rows], w, rows
	s.lo, s.hi = 0, -1
}

// Lo is the first live row.
func (s *Strip[T]) Lo() int { return s.lo }

// Hi is the last produced row (Lo-1 when the window is empty).
func (s *Strip[T]) Hi() int { return s.hi }

// Buf is the backing slice; Buf()[0:] is row Lo. Kernel bodies that
// span several rows index it directly with (y-Lo)·w.
func (s *Strip[T]) Buf() []T { return s.buf }

// Row is the w-element slice for plane row y, which must be live.
func (s *Strip[T]) Row(y int) []T {
	if y < s.lo || y > s.hi {
		panic(fmt.Sprintf("fuse: row %d outside live window [%d,%d]", y, s.lo, s.hi))
	}
	r := y - s.lo
	return s.buf[r*s.w : (r+1)*s.w]
}

// Produce extends the live window through row hi, checking capacity.
// The caller then writes rows (old Hi, hi] via Buf or Row.
func (s *Strip[T]) Produce(hi int) {
	if hi <= s.hi {
		return
	}
	if hi-s.lo+1 > s.rows {
		panic(fmt.Sprintf("fuse: window [%d,%d] exceeds %d-row capacity", s.lo, hi, s.rows))
	}
	s.hi = hi
}

// Slide is the halo-row carry: it drops rows above keep and copies the
// surviving rows to the front of the buffer so the window stays
// contiguous. A plain memmove of already-computed rows — it executes
// no kernel ops, so it leaves trace counters untouched.
func (s *Strip[T]) Slide(keep int) {
	if keep <= s.lo {
		return
	}
	if keep > s.hi {
		s.lo, s.hi = keep, keep-1
		return
	}
	live := (s.hi - keep + 1) * s.w
	copy(s.buf[:live], s.buf[(keep-s.lo)*s.w:(s.hi-s.lo+1)*s.w])
	s.lo = keep
}
