package checkpoint

import (
	"encoding/json"
	"errors"
	"os"
	"path/filepath"
	"strings"
	"testing"
)

type payload struct {
	Name  string `json:"name"`
	Value int    `json:"value"`
}

func tempJournal(t *testing.T) string {
	t.Helper()
	return filepath.Join(t.TempDir(), "test.journal")
}

func TestRoundTrip(t *testing.T) {
	path := tempJournal(t)
	j, err := Create(path, "grid", "fp-1")
	if err != nil {
		t.Fatalf("Create: %v", err)
	}
	want := []payload{{"a", 1}, {"b", 2}, {"c", 3}}
	for _, p := range want {
		if err := j.Append(p); err != nil {
			t.Fatalf("Append(%v): %v", p, err)
		}
	}
	if j.Len() != len(want) {
		t.Fatalf("Len = %d, want %d", j.Len(), len(want))
	}

	// Reopen from disk and replay.
	j2, err := Open(path, "grid", "fp-1")
	if err != nil {
		t.Fatalf("Open: %v", err)
	}
	recs := j2.Records()
	if len(recs) != len(want) {
		t.Fatalf("reopened Len = %d, want %d", len(recs), len(want))
	}
	for i, rec := range recs {
		if rec.Seq != i {
			t.Errorf("record %d: Seq = %d", i, rec.Seq)
		}
		var p payload
		if err := json.Unmarshal(rec.Data, &p); err != nil {
			t.Fatalf("record %d: unmarshal: %v", i, err)
		}
		if p != want[i] {
			t.Errorf("record %d = %+v, want %+v", i, p, want[i])
		}
	}
	if m := j2.Meta(); m.Kind != "grid" || m.Fingerprint != "fp-1" || m.Version != Version {
		t.Errorf("Meta = %+v", m)
	}
}

func TestAppendAfterReopen(t *testing.T) {
	path := tempJournal(t)
	j, err := Create(path, "campaign", "fp")
	if err != nil {
		t.Fatalf("Create: %v", err)
	}
	if err := j.Append(payload{"a", 1}); err != nil {
		t.Fatalf("Append: %v", err)
	}
	j2, err := Open(path, "campaign", "fp")
	if err != nil {
		t.Fatalf("Open: %v", err)
	}
	if err := j2.Append(payload{"b", 2}); err != nil {
		t.Fatalf("Append after reopen: %v", err)
	}
	j3, err := Open(path, "campaign", "fp")
	if err != nil {
		t.Fatalf("re-Open: %v", err)
	}
	if j3.Len() != 2 {
		t.Fatalf("Len after reopen+append = %d, want 2", j3.Len())
	}
}

func TestOpenMissing(t *testing.T) {
	_, err := Open(filepath.Join(t.TempDir(), "nope.journal"), "grid", "fp")
	if !os.IsNotExist(err) {
		t.Fatalf("Open(missing) = %v, want os.IsNotExist", err)
	}
}

func TestMismatch(t *testing.T) {
	path := tempJournal(t)
	if _, err := Create(path, "grid", "fp-1"); err != nil {
		t.Fatalf("Create: %v", err)
	}
	var me *MismatchError
	if _, err := Open(path, "campaign", "fp-1"); !errors.As(err, &me) || me.Field != "kind" {
		t.Fatalf("Open(wrong kind) = %v, want *MismatchError{Field: kind}", err)
	}
	if _, err := Open(path, "grid", "fp-2"); !errors.As(err, &me) || me.Field != "fingerprint" {
		t.Fatalf("Open(wrong fp) = %v, want *MismatchError{Field: fingerprint}", err)
	}
	// Mismatch is a hard error for OpenOrCreate too: never clobber a
	// different run's journal.
	if _, _, _, err := OpenOrCreate(path, "grid", "fp-2"); !errors.As(err, &me) {
		t.Fatalf("OpenOrCreate(wrong fp) = %v, want *MismatchError", err)
	}
	if _, err := Open(path, "grid", "fp-1"); err != nil {
		t.Fatalf("journal should be untouched after mismatch: %v", err)
	}
}

func TestOpenOrCreatePolicy(t *testing.T) {
	path := tempJournal(t)

	// Missing: cold start, no warning.
	j, resumed, warn, err := OpenOrCreate(path, "grid", "fp")
	if err != nil || resumed || warn != nil {
		t.Fatalf("cold OpenOrCreate = (%v, %v, %v)", resumed, warn, err)
	}
	if err := j.Append(payload{"a", 1}); err != nil {
		t.Fatalf("Append: %v", err)
	}

	// Existing and matching: resume.
	j, resumed, warn, err = OpenOrCreate(path, "grid", "fp")
	if err != nil || !resumed || warn != nil {
		t.Fatalf("resume OpenOrCreate = (%v, %v, %v)", resumed, warn, err)
	}
	if j.Len() != 1 {
		t.Fatalf("resumed Len = %d, want 1", j.Len())
	}

	// Corrupt: recreate cold, surface the decode failure as warn.
	if err := os.WriteFile(path, []byte("garbage\n"), 0o644); err != nil {
		t.Fatal(err)
	}
	j, resumed, warn, err = OpenOrCreate(path, "grid", "fp")
	if err != nil || resumed {
		t.Fatalf("corrupt OpenOrCreate = (%v, %v)", resumed, err)
	}
	var ce *CorruptJournalError
	if !errors.As(warn, &ce) {
		t.Fatalf("warn = %v, want *CorruptJournalError", warn)
	}
	if j.Len() != 0 {
		t.Fatalf("recreated Len = %d, want 0", j.Len())
	}
	if _, err := Open(path, "grid", "fp"); err != nil {
		t.Fatalf("recreated journal should be valid: %v", err)
	}
}

// corruptions enumerates the damage classes the decoder must reject with a
// typed error.
func corruptions(t *testing.T, valid []byte) map[string][]byte {
	t.Helper()
	lines := strings.SplitAfter(string(valid), "\n")
	if len(lines) < 3 {
		t.Fatalf("need at least header + 2 records, got %d lines", len(lines))
	}
	flip := make([]byte, len(valid))
	copy(flip, valid)
	// Flip a bit inside the last record's data, away from any newline.
	flip[len(flip)-10] ^= 0x01

	skew := strings.Replace(string(valid), `"version":1`, `"version":99`, 1)

	return map[string][]byte{
		"empty":             nil,
		"unterminated":      valid[:len(valid)-1],
		"truncated record":  []byte(lines[0] + lines[1][:len(lines[1])/2]),
		"bit flip":          flip,
		"bad magic":         []byte(strings.Replace(string(valid), magic, "other.format", 1)),
		"version skew":      []byte(skew),
		"missing header":    []byte(strings.Join(lines[1:], "")),
		"reordered records": []byte(lines[0] + lines[2] + lines[1]),
		"duplicated record": []byte(lines[0] + lines[1] + lines[1]),
		"garbage line":      append(append([]byte{}, valid...), []byte("not json\n")...),
		"trailing data":     []byte(strings.TrimSuffix(string(valid), "\n") + " {}\n"),
	}
}

func TestDecodeRejectsCorruption(t *testing.T) {
	path := tempJournal(t)
	j, err := Create(path, "grid", "fp")
	if err != nil {
		t.Fatalf("Create: %v", err)
	}
	for i := 0; i < 3; i++ {
		if err := j.Append(payload{"rec", i}); err != nil {
			t.Fatalf("Append: %v", err)
		}
	}
	valid, err := os.ReadFile(path)
	if err != nil {
		t.Fatal(err)
	}
	if _, _, err := Decode(valid); err != nil {
		t.Fatalf("Decode(valid) = %v", err)
	}

	for name, data := range corruptions(t, valid) {
		t.Run(name, func(t *testing.T) {
			_, _, err := Decode(data)
			var ce *CorruptJournalError
			if !errors.As(err, &ce) {
				t.Fatalf("Decode = %v, want *CorruptJournalError", err)
			}
			if ce.Line < 1 {
				t.Errorf("Line = %d, want >= 1", ce.Line)
			}
			// The corrupt file must also refuse to resume through Open.
			if err := os.WriteFile(path+".bad", data, 0o644); err != nil {
				t.Fatal(err)
			}
			if _, err := Open(path+".bad", "grid", "fp"); !errors.As(err, &ce) {
				t.Fatalf("Open(corrupt) = %v, want *CorruptJournalError", err)
			}
		})
	}
}

func TestAppendUnmarshalableRollsBack(t *testing.T) {
	path := tempJournal(t)
	j, err := Create(path, "grid", "fp")
	if err != nil {
		t.Fatalf("Create: %v", err)
	}
	if err := j.Append(func() {}); err == nil {
		t.Fatal("Append(func) should fail")
	}
	if j.Len() != 0 {
		t.Fatalf("failed Append must roll back; Len = %d", j.Len())
	}
	if err := j.Append(payload{"ok", 1}); err != nil {
		t.Fatalf("Append after rollback: %v", err)
	}
}
