package checkpoint

import (
	"errors"
	"os"
	"path/filepath"
	"testing"
)

// FuzzJournalDecode asserts the decoder's core safety contract: arbitrary
// bytes never panic, every rejection is a typed *CorruptJournalError, and an
// accepted journal is internally consistent (contiguous sequence numbers,
// checksummed records) — a damaged file can never silently resume.
func FuzzJournalDecode(f *testing.F) {
	// Seed with a valid journal and its characteristic damage classes.
	path := filepath.Join(f.TempDir(), "seed.journal")
	j, err := Create(path, "campaign", "deadbeef")
	if err != nil {
		f.Fatal(err)
	}
	for i := 0; i < 3; i++ {
		if err := j.Append(map[string]int{"image": i}); err != nil {
			f.Fatal(err)
		}
	}
	valid, err := os.ReadFile(path)
	if err != nil {
		f.Fatal(err)
	}
	f.Add(valid)
	f.Add(valid[:len(valid)-1])                                                                        // unterminated
	f.Add(valid[:len(valid)/2])                                                                        // truncated
	f.Add([]byte{})                                                                                    // empty
	f.Add([]byte("\n"))                                                                                // blank header
	f.Add([]byte(`{"journal":"simdstudy.checkpoint","version":2,"kind":"x","fp":"y","crc":0}` + "\n")) // skew
	flipped := append([]byte{}, valid...)
	flipped[len(flipped)/2] ^= 0x40
	f.Add(flipped)

	f.Fuzz(func(t *testing.T, data []byte) {
		meta, records, err := Decode(data)
		if err != nil {
			var ce *CorruptJournalError
			if !errors.As(err, &ce) {
				t.Fatalf("Decode error is %T (%v), want *CorruptJournalError", err, err)
			}
			if ce.Line < 1 {
				t.Fatalf("corrupt line = %d, want >= 1", ce.Line)
			}
			return
		}
		// Accepted input: the invariants resume logic relies on must hold.
		if meta.Journal != magic || meta.Version != Version {
			t.Fatalf("accepted journal with bad identity: %+v", meta)
		}
		if meta.CRC != metaCRC(meta.Version, meta.Kind, meta.Fingerprint) {
			t.Fatal("accepted journal with bad header checksum")
		}
		for i, rec := range records {
			if rec.Seq != i {
				t.Fatalf("accepted journal with sequence gap at %d", i)
			}
			if len(rec.Data) == 0 {
				t.Fatalf("accepted record %d without data", i)
			}
			if rec.CRC != recordCRC(rec.Seq, rec.Data) {
				t.Fatalf("accepted record %d with bad checksum", i)
			}
		}
	})
}
