// Package checkpoint is the crash-safety journal behind resumable long
// runs: a versioned, checksummed, line-oriented record log that is replaced
// atomically (write-temp, fsync, rename) on every append, so a SIGKILL at
// any instant leaves either the previous complete journal or the next one —
// never a torn file.
//
// The harness journals one record per completed grid cell or campaign
// image; a restarted process replays the journal and recomputes only the
// remainder. Because the workload itself is deterministic (per-(pass, row)
// fault reseeding, worker-count-invariant counters — see DESIGN.md §12),
// replay + remainder is bit-identical to an uninterrupted run; the tests in
// internal/harness prove it.
//
// The decoder is strict: a truncated, bit-flipped, version-skewed or
// otherwise damaged journal yields a typed *CorruptJournalError (never a
// panic, never a silent partial resume), and a journal written by a
// different configuration — detected by a caller-supplied fingerprint —
// yields a typed *MismatchError. Callers treat corruption as a cold start
// and mismatch as an operator error.
package checkpoint

import (
	"bytes"
	"encoding/json"
	"errors"
	"fmt"
	"hash/crc32"
	"os"
	"path/filepath"
	"sync"
)

// Version is the journal format version this package writes and accepts.
const Version = 1

// magic identifies a journal header line.
const magic = "simdstudy.checkpoint"

// Meta is a journal's identity: the format version, what kind of run wrote
// it ("grid", "campaign", "quarantine", ...) and a fingerprint of the
// configuration whose results it holds.
type Meta struct {
	Journal     string `json:"journal"`
	Version     int    `json:"version"`
	Kind        string `json:"kind"`
	Fingerprint string `json:"fp"`
	CRC         uint32 `json:"crc"`
}

// Record is one journaled unit of completed work. Seq numbers are assigned
// by Append and must be contiguous from zero; Data is the caller's payload,
// exactly as marshaled.
type Record struct {
	Seq  int             `json:"seq"`
	Data json.RawMessage `json:"data"`
	CRC  uint32          `json:"crc"`
}

// CorruptJournalError reports a journal that failed strict decoding:
// truncated, bit-flipped, version-skewed, or structurally invalid. Callers
// must fall back to a cold start — the journal carries no trustworthy state.
type CorruptJournalError struct {
	Path   string // empty when decoding a byte slice
	Line   int    // 1-based line of the first defect
	Reason string
}

// Error implements error.
func (e *CorruptJournalError) Error() string {
	if e.Path == "" {
		return fmt.Sprintf("checkpoint: corrupt journal: line %d: %s", e.Line, e.Reason)
	}
	return fmt.Sprintf("checkpoint: corrupt journal %s: line %d: %s", e.Path, e.Line, e.Reason)
}

// MismatchError reports a structurally valid journal written by a different
// configuration (kind or fingerprint differs). Resuming from it would mix
// results of two different runs, so callers must refuse rather than cold
// start over someone else's journal.
type MismatchError struct {
	Path  string
	Field string // "kind" or "fingerprint"
	Want  string
	Got   string
}

// Error implements error.
func (e *MismatchError) Error() string {
	return fmt.Sprintf("checkpoint: journal %s was written by a different configuration: %s %q, want %q",
		e.Path, e.Field, e.Got, e.Want)
}

var castagnoli = crc32.MakeTable(crc32.Castagnoli)

func metaCRC(version int, kind, fp string) uint32 {
	return crc32.Checksum([]byte(fmt.Sprintf("%d\x00%s\x00%s", version, kind, fp)), castagnoli)
}

func recordCRC(seq int, data []byte) uint32 {
	h := crc32.New(castagnoli)
	fmt.Fprintf(h, "%d\x00", seq)
	h.Write(data)
	return h.Sum32()
}

// Journal is an append-only checkpoint log bound to one file. All methods
// are safe for concurrent use; Append serializes writers, so concurrent
// grid cells may checkpoint through one Journal.
type Journal struct {
	mu      sync.Mutex
	path    string
	meta    Meta
	records []Record
}

// Create writes a fresh journal (header only) at path, atomically replacing
// anything already there.
func Create(path, kind, fingerprint string) (*Journal, error) {
	j := &Journal{
		path: path,
		meta: Meta{
			Journal: magic, Version: Version, Kind: kind, Fingerprint: fingerprint,
			CRC: metaCRC(Version, kind, fingerprint),
		},
	}
	j.mu.Lock()
	defer j.mu.Unlock()
	if err := j.flushLocked(); err != nil {
		return nil, err
	}
	return j, nil
}

// Open loads and strictly validates an existing journal. It returns a
// *CorruptJournalError for a damaged file, a *MismatchError for a valid
// journal written under a different kind or fingerprint, and the underlying
// fs error (os.IsNotExist-able) when the file is absent.
func Open(path, kind, fingerprint string) (*Journal, error) {
	data, err := os.ReadFile(path)
	if err != nil {
		return nil, err
	}
	meta, records, err := Decode(data)
	if err != nil {
		var ce *CorruptJournalError
		if errors.As(err, &ce) {
			ce.Path = path
		}
		return nil, err
	}
	if meta.Kind != kind {
		return nil, &MismatchError{Path: path, Field: "kind", Want: kind, Got: meta.Kind}
	}
	if meta.Fingerprint != fingerprint {
		return nil, &MismatchError{Path: path, Field: "fingerprint", Want: fingerprint, Got: meta.Fingerprint}
	}
	return &Journal{path: path, meta: meta, records: records}, nil
}

// OpenOrCreate is the resume policy used by the harness and the serving
// layer: an existing matching journal is resumed; a missing journal starts
// cold; a corrupt journal is discarded and restarted cold, with the decode
// failure returned as warn so callers can surface it. Only a fingerprint or
// kind mismatch is a hard error — that journal belongs to a different run.
func OpenOrCreate(path, kind, fingerprint string) (j *Journal, resumed bool, warn error, err error) {
	j, oerr := Open(path, kind, fingerprint)
	switch {
	case oerr == nil:
		return j, true, nil, nil
	case os.IsNotExist(oerr):
		j, err = Create(path, kind, fingerprint)
		return j, false, nil, err
	default:
		var ce *CorruptJournalError
		if errors.As(oerr, &ce) {
			j, err = Create(path, kind, fingerprint)
			return j, false, oerr, err
		}
		return nil, false, nil, oerr
	}
}

// Decode strictly parses journal bytes into metadata and records. It is the
// pure decoder behind Open and the fuzz target: every failure is a typed
// *CorruptJournalError and no input panics.
func Decode(data []byte) (Meta, []Record, error) {
	var meta Meta
	if len(data) == 0 {
		return meta, nil, &CorruptJournalError{Line: 1, Reason: "empty journal"}
	}
	if data[len(data)-1] != '\n' {
		// Journals are replaced atomically, so a complete file always ends in
		// a newline; anything else is a damaged copy.
		return meta, nil, &CorruptJournalError{Line: bytes.Count(data, []byte("\n")) + 1,
			Reason: "unterminated final line"}
	}
	lines := bytes.Split(data[:len(data)-1], []byte("\n"))
	if err := strictUnmarshal(lines[0], &meta); err != nil {
		return meta, nil, &CorruptJournalError{Line: 1, Reason: "bad header: " + err.Error()}
	}
	if meta.Journal != magic {
		return meta, nil, &CorruptJournalError{Line: 1, Reason: fmt.Sprintf("bad magic %q", meta.Journal)}
	}
	if meta.Version != Version {
		return meta, nil, &CorruptJournalError{Line: 1,
			Reason: fmt.Sprintf("version skew: journal v%d, decoder v%d", meta.Version, Version)}
	}
	if meta.CRC != metaCRC(meta.Version, meta.Kind, meta.Fingerprint) {
		return meta, nil, &CorruptJournalError{Line: 1, Reason: "header checksum mismatch"}
	}
	records := make([]Record, 0, len(lines)-1)
	for i, line := range lines[1:] {
		var rec Record
		if err := strictUnmarshal(line, &rec); err != nil {
			return meta, nil, &CorruptJournalError{Line: i + 2, Reason: "bad record: " + err.Error()}
		}
		if rec.Seq != i {
			return meta, nil, &CorruptJournalError{Line: i + 2,
				Reason: fmt.Sprintf("sequence gap: record %d, want %d", rec.Seq, i)}
		}
		if len(rec.Data) == 0 {
			return meta, nil, &CorruptJournalError{Line: i + 2, Reason: "record without data"}
		}
		if rec.CRC != recordCRC(rec.Seq, rec.Data) {
			return meta, nil, &CorruptJournalError{Line: i + 2, Reason: "record checksum mismatch"}
		}
		records = append(records, rec)
	}
	return meta, records, nil
}

// strictUnmarshal decodes one JSON value rejecting unknown fields and
// trailing garbage, so a corrupted line cannot alias a valid one.
func strictUnmarshal(line []byte, v any) error {
	dec := json.NewDecoder(bytes.NewReader(line))
	dec.DisallowUnknownFields()
	if err := dec.Decode(v); err != nil {
		return err
	}
	if dec.More() {
		return errors.New("trailing data after value")
	}
	return nil
}

// Append marshals v, appends it as the next record and atomically replaces
// the journal file. When Append returns, the record is durable: a kill at
// any later instant resumes past it.
func (j *Journal) Append(v any) error {
	data, err := json.Marshal(v)
	if err != nil {
		return fmt.Errorf("checkpoint: marshal record: %w", err)
	}
	j.mu.Lock()
	defer j.mu.Unlock()
	seq := len(j.records)
	j.records = append(j.records, Record{Seq: seq, Data: data, CRC: recordCRC(seq, data)})
	if err := j.flushLocked(); err != nil {
		j.records = j.records[:seq]
		return err
	}
	return nil
}

// flushLocked writes header+records to a temp file, fsyncs and renames it
// over the journal path. Callers hold mu.
func (j *Journal) flushLocked() error {
	var buf bytes.Buffer
	enc := json.NewEncoder(&buf)
	if err := enc.Encode(j.meta); err != nil {
		return err
	}
	for _, rec := range j.records {
		if err := enc.Encode(rec); err != nil {
			return err
		}
	}
	tmp := j.path + ".tmp"
	f, err := os.OpenFile(tmp, os.O_WRONLY|os.O_CREATE|os.O_TRUNC, 0o644)
	if err != nil {
		return err
	}
	if _, err := f.Write(buf.Bytes()); err != nil {
		f.Close()
		os.Remove(tmp)
		return err
	}
	if err := f.Sync(); err != nil {
		f.Close()
		os.Remove(tmp)
		return err
	}
	if err := f.Close(); err != nil {
		os.Remove(tmp)
		return err
	}
	if err := os.Rename(tmp, j.path); err != nil {
		os.Remove(tmp)
		return err
	}
	// Best-effort directory sync so the rename itself is durable.
	if d, err := os.Open(filepath.Dir(j.path)); err == nil {
		d.Sync()
		d.Close()
	}
	return nil
}

// Len returns the number of durable records.
func (j *Journal) Len() int {
	j.mu.Lock()
	defer j.mu.Unlock()
	return len(j.records)
}

// Records returns a copy of the journal's records in sequence order.
func (j *Journal) Records() []Record {
	j.mu.Lock()
	defer j.mu.Unlock()
	out := make([]Record, len(j.records))
	copy(out, j.records)
	return out
}

// Path returns the journal's file path.
func (j *Journal) Path() string { return j.path }

// Meta returns the journal's identity header.
func (j *Journal) Meta() Meta {
	j.mu.Lock()
	defer j.mu.Unlock()
	return j.meta
}
