// Package trace records dynamic instruction streams emitted by the NEON and
// SSE2 emulation layers and by the IR executor.
//
// The paper's central quantity is instructions retired per output pixel:
// its Section V shows the hand-written NEON loop retiring 14 instructions
// per 8 pixels while the auto-vectorized build needs many more because gcc
// fails to block the loop. Every emulated intrinsic call and every IR
// interpreter step reports into a Counter so those counts are measured, not
// assumed.
package trace

import (
	"fmt"
	"sort"
	"strings"
	"sync"
)

// Class buckets instructions by the execution resource they occupy. The
// timing model prices each class per microarchitecture.
type Class int

// Instruction classes. SIMD classes occupy the vector pipe(s); scalar
// classes occupy the integer or scalar-FP pipes. Branch, Call and AddrCalc
// model loop and call overhead, which the paper's assembly analysis shows
// dominating the auto-vectorized builds.
const (
	SIMDLoad Class = iota
	SIMDStore
	SIMDALU     // vector integer add/sub/logic/compare/min/max
	SIMDMul     // vector multiplies and multiply-accumulate
	SIMDCvt     // vector conversions and saturating narrows/packs
	SIMDShuffle // shuffles, unpacks, combines, lane moves
	ScalarLoad
	ScalarStore
	ScalarALU // scalar integer ops, address arithmetic folded separately
	ScalarFP  // scalar floating point (VFP on ARM, x87/SSE-scalar on Intel)
	ScalarCvt // scalar int<->float conversion
	Branch
	Call // function call + return pair (e.g. the lrint fallback)
	AddrCalc
	Move // register-to-register moves
	numClasses
)

// NumClasses is the number of distinct instruction classes.
const NumClasses = int(numClasses)

var classNames = [...]string{
	"simd.load", "simd.store", "simd.alu", "simd.mul", "simd.cvt",
	"simd.shuffle", "scalar.load", "scalar.store", "scalar.alu",
	"scalar.fp", "scalar.cvt", "branch", "call", "addr", "move",
}

// String returns the class mnemonic.
func (c Class) String() string {
	if c < 0 || int(c) >= NumClasses {
		return fmt.Sprintf("class(%d)", int(c))
	}
	return classNames[c]
}

// IsSIMD reports whether the class executes on the vector pipeline.
func (c Class) IsSIMD() bool {
	switch c {
	case SIMDLoad, SIMDStore, SIMDALU, SIMDMul, SIMDCvt, SIMDShuffle:
		return true
	}
	return false
}

// IsMemory reports whether the class touches memory.
func (c Class) IsMemory() bool {
	switch c {
	case SIMDLoad, SIMDStore, ScalarLoad, ScalarStore:
		return true
	}
	return false
}

// Op is a single recorded instruction occurrence.
type Op struct {
	Name  string // mnemonic, e.g. "vld1.32" or "cvtps2dq"
	Class Class
	Bytes int // memory bytes moved, zero for non-memory ops
}

// Counter accumulates a dynamic instruction trace. The zero value is ready
// to use. All methods are safe for concurrent use: the harness's per-cell
// goroutines may record into a shared Counter directly, though the cheaper
// fan-in pattern is one private Counter per goroutine folded into a shared
// one with Merge (with Snapshot to publish a consistent copy). SeqCap must
// be set before the first Record.
type Counter struct {
	mu          sync.Mutex
	counts      [numClasses]uint64
	bytesLoaded uint64
	bytesStored uint64
	opcodes     map[string]uint64

	// seq captures the first SeqCap recorded ops for listing generation
	// (Section V style analysis). Disabled unless SeqCap > 0.
	SeqCap int
	seq    []Op

	// events counts named out-of-band occurrences that are not
	// instructions — fault detections, scalar fallbacks, kill-switch
	// trips — so robustness telemetry rides the same Counter plumbing
	// (Add/Reset/Summary) as the instruction stream.
	events map[string]uint64
}

// Record notes one occurrence of op.
func (t *Counter) Record(op Op) {
	if t == nil {
		return
	}
	t.mu.Lock()
	defer t.mu.Unlock()
	t.counts[op.Class]++
	switch op.Class {
	case SIMDLoad, ScalarLoad:
		t.bytesLoaded += uint64(op.Bytes)
	case SIMDStore, ScalarStore:
		t.bytesStored += uint64(op.Bytes)
	}
	if t.opcodes == nil {
		t.opcodes = make(map[string]uint64)
	}
	t.opcodes[op.Name]++
	if t.SeqCap > 0 && len(t.seq) < t.SeqCap {
		t.seq = append(t.seq, op)
	}
}

// RecordN notes n occurrences of an op with no sequence capture. It is the
// fast path used for bulk accounting (e.g. loop overhead per iteration).
func (t *Counter) RecordN(name string, class Class, n uint64, bytesEach int) {
	if t == nil || n == 0 {
		return
	}
	t.mu.Lock()
	defer t.mu.Unlock()
	t.counts[class] += n
	switch class {
	case SIMDLoad, ScalarLoad:
		t.bytesLoaded += n * uint64(bytesEach)
	case SIMDStore, ScalarStore:
		t.bytesStored += n * uint64(bytesEach)
	}
	if t.opcodes == nil {
		t.opcodes = make(map[string]uint64)
	}
	t.opcodes[name] += n
}

// Event notes one occurrence of a named non-instruction event.
func (t *Counter) Event(name string) {
	t.EventN(name, 1)
}

// EventN notes n occurrences of a named non-instruction event.
func (t *Counter) EventN(name string, n uint64) {
	if t == nil || n == 0 {
		return
	}
	t.mu.Lock()
	defer t.mu.Unlock()
	if t.events == nil {
		t.events = make(map[string]uint64)
	}
	t.events[name] += n
}

// EventCount returns the count for a named event.
func (t *Counter) EventCount(name string) uint64 {
	if t == nil {
		return 0
	}
	t.mu.Lock()
	defer t.mu.Unlock()
	return t.events[name]
}

// Events returns a copy of the event counters.
func (t *Counter) Events() map[string]uint64 {
	if t == nil {
		return nil
	}
	t.mu.Lock()
	defer t.mu.Unlock()
	if len(t.events) == 0 {
		return nil
	}
	m := make(map[string]uint64, len(t.events))
	for k, v := range t.events {
		m[k] = v
	}
	return m
}

// Count returns the number of instructions recorded in class c.
func (t *Counter) Count(c Class) uint64 {
	if t == nil {
		return 0
	}
	t.mu.Lock()
	defer t.mu.Unlock()
	return t.counts[c]
}

// Opcode returns the dynamic count for a specific mnemonic.
func (t *Counter) Opcode(name string) uint64 {
	if t == nil {
		return 0
	}
	t.mu.Lock()
	defer t.mu.Unlock()
	return t.opcodes[name]
}

// Total returns the total dynamic instruction count.
func (t *Counter) Total() uint64 {
	if t == nil {
		return 0
	}
	t.mu.Lock()
	defer t.mu.Unlock()
	return t.totalLocked()
}

func (t *Counter) totalLocked() uint64 {
	var s uint64
	for _, c := range t.counts {
		s += c
	}
	return s
}

// SIMDTotal returns the count of vector-pipe instructions.
func (t *Counter) SIMDTotal() uint64 {
	if t == nil {
		return 0
	}
	t.mu.Lock()
	defer t.mu.Unlock()
	return t.simdTotalLocked()
}

func (t *Counter) simdTotalLocked() uint64 {
	var s uint64
	for c := Class(0); c < numClasses; c++ {
		if c.IsSIMD() {
			s += t.counts[c]
		}
	}
	return s
}

// BytesLoaded returns total bytes read from memory.
func (t *Counter) BytesLoaded() uint64 {
	if t == nil {
		return 0
	}
	t.mu.Lock()
	defer t.mu.Unlock()
	return t.bytesLoaded
}

// BytesStored returns total bytes written to memory.
func (t *Counter) BytesStored() uint64 {
	if t == nil {
		return 0
	}
	t.mu.Lock()
	defer t.mu.Unlock()
	return t.bytesStored
}

// Sequence returns the captured instruction prefix (up to SeqCap ops).
func (t *Counter) Sequence() []Op {
	if t == nil {
		return nil
	}
	t.mu.Lock()
	defer t.mu.Unlock()
	out := make([]Op, len(t.seq))
	copy(out, t.seq)
	return out
}

// Reset zeroes the counter, retaining SeqCap.
func (t *Counter) Reset() {
	if t == nil {
		return
	}
	t.mu.Lock()
	defer t.mu.Unlock()
	t.counts = [numClasses]uint64{}
	t.bytesLoaded = 0
	t.bytesStored = 0
	t.opcodes = nil
	t.seq = nil
	t.events = nil
}

// Add accumulates other into t. It locks each counter in turn (never
// both at once), so concurrent cross-merges cannot deadlock.
func (t *Counter) Add(other *Counter) {
	if t == nil || other == nil || t == other {
		return
	}
	snap := other.Snapshot()
	t.mu.Lock()
	defer t.mu.Unlock()
	for i := range t.counts {
		t.counts[i] += snap.counts[i]
	}
	t.bytesLoaded += snap.bytesLoaded
	t.bytesStored += snap.bytesStored
	if snap.opcodes != nil {
		if t.opcodes == nil {
			t.opcodes = make(map[string]uint64, len(snap.opcodes))
		}
		for k, v := range snap.opcodes {
			t.opcodes[k] += v
		}
	}
	if snap.events != nil {
		if t.events == nil {
			t.events = make(map[string]uint64, len(snap.events))
		}
		for k, v := range snap.events {
			t.events[k] += v
		}
	}
}

// Merge is Add under the name the fan-in pattern reads naturally as: each
// harness grid-cell goroutine records into its own Counter and merges it
// into the shared one when the cell completes.
func (t *Counter) Merge(other *Counter) { t.Add(other) }

// Snapshot returns a consistent copy of the counter, safe to read without
// synchronization while the original keeps recording.
func (t *Counter) Snapshot() *Counter {
	if t == nil {
		return nil
	}
	t.mu.Lock()
	defer t.mu.Unlock()
	n := &Counter{
		counts:      t.counts,
		bytesLoaded: t.bytesLoaded,
		bytesStored: t.bytesStored,
		SeqCap:      t.SeqCap,
	}
	if t.opcodes != nil {
		n.opcodes = make(map[string]uint64, len(t.opcodes))
		for k, v := range t.opcodes {
			n.opcodes[k] = v
		}
	}
	if t.events != nil {
		n.events = make(map[string]uint64, len(t.events))
		for k, v := range t.events {
			n.events[k] = v
		}
	}
	if t.seq != nil {
		n.seq = make([]Op, len(t.seq))
		copy(n.seq, t.seq)
	}
	return n
}

// Classes returns a snapshot of per-class counts indexed by Class.
func (t *Counter) Classes() [NumClasses]uint64 {
	if t == nil {
		return [NumClasses]uint64{}
	}
	t.mu.Lock()
	defer t.mu.Unlock()
	return t.counts
}

// PerPixel divides every count by pixels, returning instructions per output
// element — the unit used throughout the paper's Section V discussion.
func (t *Counter) PerPixel(pixels int) map[Class]float64 {
	m := make(map[Class]float64, NumClasses)
	if t == nil || pixels <= 0 {
		return m
	}
	t.mu.Lock()
	defer t.mu.Unlock()
	for c := Class(0); c < numClasses; c++ {
		if t.counts[c] > 0 {
			m[c] = float64(t.counts[c]) / float64(pixels)
		}
	}
	return m
}

// Summary renders a sorted per-opcode and per-class report.
func (t *Counter) Summary() string {
	if t == nil {
		return "(nil trace)"
	}
	t.mu.Lock()
	defer t.mu.Unlock()
	var sb strings.Builder
	fmt.Fprintf(&sb, "total=%d simd=%d loadB=%d storeB=%d\n",
		t.totalLocked(), t.simdTotalLocked(), t.bytesLoaded, t.bytesStored)
	for c := Class(0); c < numClasses; c++ {
		if t.counts[c] > 0 {
			fmt.Fprintf(&sb, "  %-12s %d\n", c, t.counts[c])
		}
	}
	names := make([]string, 0, len(t.opcodes))
	for k := range t.opcodes {
		names = append(names, k)
	}
	sort.Strings(names)
	for _, k := range names {
		fmt.Fprintf(&sb, "    %-16s %d\n", k, t.opcodes[k])
	}
	if len(t.events) > 0 {
		evs := make([]string, 0, len(t.events))
		for k := range t.events {
			evs = append(evs, k)
		}
		sort.Strings(evs)
		for _, k := range evs {
			fmt.Fprintf(&sb, "  event %-12s %d\n", k, t.events[k])
		}
	}
	return sb.String()
}
