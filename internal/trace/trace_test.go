package trace

import (
	"strings"
	"sync"
	"testing"
)

func TestRecordAndCount(t *testing.T) {
	var c Counter
	c.Record(Op{Name: "vadd.i16", Class: SIMDALU})
	c.Record(Op{Name: "vadd.i16", Class: SIMDALU})
	c.Record(Op{Name: "vld1.32", Class: SIMDLoad, Bytes: 16})
	c.Record(Op{Name: "vst1.16", Class: SIMDStore, Bytes: 16})
	c.Record(Op{Name: "ldr", Class: ScalarLoad, Bytes: 4})
	if c.Count(SIMDALU) != 2 {
		t.Errorf("SIMDALU: %d", c.Count(SIMDALU))
	}
	if c.Opcode("vadd.i16") != 2 {
		t.Errorf("opcode count: %d", c.Opcode("vadd.i16"))
	}
	if c.Total() != 5 {
		t.Errorf("total: %d", c.Total())
	}
	if c.SIMDTotal() != 4 {
		t.Errorf("simd total: %d", c.SIMDTotal())
	}
	if c.BytesLoaded() != 20 {
		t.Errorf("bytes loaded: %d", c.BytesLoaded())
	}
	if c.BytesStored() != 16 {
		t.Errorf("bytes stored: %d", c.BytesStored())
	}
}

func TestRecordN(t *testing.T) {
	var c Counter
	c.RecordN("add", ScalarALU, 100, 0)
	c.RecordN("ldrh", ScalarLoad, 50, 2)
	if c.Count(ScalarALU) != 100 || c.Count(ScalarLoad) != 50 {
		t.Fatalf("counts: %d %d", c.Count(ScalarALU), c.Count(ScalarLoad))
	}
	if c.BytesLoaded() != 100 {
		t.Fatalf("bytes: %d", c.BytesLoaded())
	}
	c.RecordN("nop", Move, 0, 0)
	if c.Opcode("nop") != 0 {
		t.Fatal("zero RecordN should not create opcode entry")
	}
}

func TestNilCounterSafe(t *testing.T) {
	var c *Counter
	c.Record(Op{Name: "x", Class: SIMDALU}) // must not panic
	c.RecordN("y", Branch, 3, 0)
	c.Add(nil)
	c.Reset()
	if c.Total() != 0 || c.Count(Branch) != 0 || c.Opcode("y") != 0 {
		t.Fatal("nil counter should read as zero")
	}
	if c.SIMDTotal() != 0 || c.BytesLoaded() != 0 || c.BytesStored() != 0 {
		t.Fatal("nil counter aggregate reads")
	}
	if got := c.Summary(); got != "(nil trace)" {
		t.Fatalf("nil summary: %q", got)
	}
	if len(c.PerPixel(10)) != 0 {
		t.Fatal("nil PerPixel")
	}
}

func TestAdd(t *testing.T) {
	var a, b Counter
	a.Record(Op{Name: "vmul", Class: SIMDMul})
	b.Record(Op{Name: "vmul", Class: SIMDMul})
	b.Record(Op{Name: "b.ne", Class: Branch})
	b.RecordN("vld1", SIMDLoad, 2, 16)
	a.Add(&b)
	if a.Count(SIMDMul) != 2 || a.Count(Branch) != 1 || a.Count(SIMDLoad) != 2 {
		t.Fatalf("after add: %v", a.Classes())
	}
	if a.Opcode("vmul") != 2 {
		t.Fatalf("opcode merge: %d", a.Opcode("vmul"))
	}
	if a.BytesLoaded() != 32 {
		t.Fatalf("bytes merge: %d", a.BytesLoaded())
	}
}

func TestSequenceCapture(t *testing.T) {
	c := Counter{SeqCap: 3}
	for i := 0; i < 10; i++ {
		c.Record(Op{Name: "vadd", Class: SIMDALU})
	}
	if len(c.Sequence()) != 3 {
		t.Fatalf("sequence len: %d", len(c.Sequence()))
	}
	if c.Total() != 10 {
		t.Fatalf("total unaffected by cap: %d", c.Total())
	}
}

func TestReset(t *testing.T) {
	c := Counter{SeqCap: 5}
	c.Record(Op{Name: "x", Class: SIMDALU, Bytes: 0})
	c.Record(Op{Name: "ld", Class: ScalarLoad, Bytes: 8})
	c.Reset()
	if c.Total() != 0 || c.BytesLoaded() != 0 || len(c.Sequence()) != 0 {
		t.Fatal("reset did not clear")
	}
	if c.SeqCap != 5 {
		t.Fatal("reset should retain SeqCap")
	}
}

func TestPerPixel(t *testing.T) {
	var c Counter
	c.RecordN("vadd", SIMDALU, 14, 0)
	m := c.PerPixel(8)
	if m[SIMDALU] != 1.75 {
		t.Fatalf("per pixel: %v", m[SIMDALU])
	}
	if len(c.PerPixel(0)) != 0 {
		t.Fatal("PerPixel(0) should be empty")
	}
}

func TestClassPredicatesAndNames(t *testing.T) {
	simd := []Class{SIMDLoad, SIMDStore, SIMDALU, SIMDMul, SIMDCvt, SIMDShuffle}
	for _, c := range simd {
		if !c.IsSIMD() {
			t.Errorf("%v should be SIMD", c)
		}
	}
	scalar := []Class{ScalarLoad, ScalarStore, ScalarALU, ScalarFP, ScalarCvt, Branch, Call, AddrCalc, Move}
	for _, c := range scalar {
		if c.IsSIMD() {
			t.Errorf("%v should not be SIMD", c)
		}
	}
	mem := []Class{SIMDLoad, SIMDStore, ScalarLoad, ScalarStore}
	for _, c := range mem {
		if !c.IsMemory() {
			t.Errorf("%v should be memory", c)
		}
	}
	if SIMDALU.IsMemory() || Branch.IsMemory() {
		t.Error("non-memory classes misclassified")
	}
	for c := Class(0); c < Class(NumClasses); c++ {
		if strings.Contains(c.String(), "class(") {
			t.Errorf("class %d missing name", int(c))
		}
	}
	if Class(99).String() != "class(99)" {
		t.Error("out of range class name")
	}
}

func TestSummary(t *testing.T) {
	var c Counter
	c.Record(Op{Name: "vcvt.s32.f32", Class: SIMDCvt})
	c.Record(Op{Name: "vqmovn.s32", Class: SIMDCvt})
	s := c.Summary()
	if !strings.Contains(s, "vcvt.s32.f32") || !strings.Contains(s, "simd.cvt") {
		t.Fatalf("summary missing entries: %s", s)
	}
}

// TestCounterConcurrent exercises the concurrent-use guarantee: multiple
// goroutines record into one shared Counter while others merge private
// counters in and read snapshots. Run with -race this is the regression
// test for the harness's per-cell fan-in.
func TestCounterConcurrent(t *testing.T) {
	var shared Counter
	const workers = 8
	const iters = 300
	var wg sync.WaitGroup
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			var local Counter
			for i := 0; i < iters; i++ {
				shared.Record(Op{Name: "vadd.i16", Class: SIMDALU})
				shared.RecordN("vld1.8", SIMDLoad, 1, 16)
				shared.Event("fault.detected")
				local.Record(Op{Name: "vmul.i16", Class: SIMDMul})
			}
			shared.Merge(&local)
		}()
	}
	done := make(chan struct{})
	go func() {
		for {
			select {
			case <-done:
				return
			default:
				_ = shared.Snapshot().Total()
				_ = shared.Summary()
			}
		}
	}()
	wg.Wait()
	close(done)
	const n = workers * iters
	if got := shared.Count(SIMDALU); got != n {
		t.Fatalf("SIMDALU = %d, want %d", got, n)
	}
	if got := shared.Count(SIMDMul); got != n {
		t.Fatalf("merged SIMDMul = %d, want %d", got, n)
	}
	if got := shared.EventCount("fault.detected"); got != n {
		t.Fatalf("events = %d, want %d", got, n)
	}
	if got := shared.BytesLoaded(); got != n*16 {
		t.Fatalf("bytesLoaded = %d, want %d", got, n*16)
	}
}

func TestSnapshotIsolation(t *testing.T) {
	var c Counter
	c.Record(Op{Name: "vadd.i16", Class: SIMDALU})
	snap := c.Snapshot()
	c.Record(Op{Name: "vadd.i16", Class: SIMDALU})
	if snap.Total() != 1 || c.Total() != 2 {
		t.Fatalf("snapshot not isolated: snap=%d live=%d", snap.Total(), c.Total())
	}
}
