package super

import (
	"errors"
	"path/filepath"
	"strings"
	"testing"
	"time"

	"simdstudy/internal/checkpoint"
	"simdstudy/internal/obs"
)

func TestProtect(t *testing.T) {
	if err := Protect("ok", func() error { return nil }); err != nil {
		t.Fatalf("Protect(nil-returning fn) = %v", err)
	}
	sentinel := errors.New("boom")
	if err := Protect("err", func() error { return sentinel }); err != sentinel {
		t.Fatalf("Protect(erroring fn) = %v, want passthrough", err)
	}
	err := Protect("panics", func() error { panic("kaboom") })
	var pe *PanicError
	if !errors.As(err, &pe) {
		t.Fatalf("Protect(panicking fn) = %v, want *PanicError", err)
	}
	if pe.Op != "panics" || pe.Value != "kaboom" || pe.Stack == "" {
		t.Errorf("PanicError = %+v", pe)
	}
	if !strings.Contains(pe.Error(), "kaboom") {
		t.Errorf("Error() = %q", pe.Error())
	}
}

func TestSupervisorQuarantine(t *testing.T) {
	reg := obs.NewRegistry()
	s := NewSupervisor(QuarantinePolicy{MaxPanics: 3}, reg)

	for i := 1; i <= 2; i++ {
		if s.RecordPanic("Canny", "neon", "bad") {
			t.Fatalf("panic %d should not quarantine", i)
		}
		if s.Quarantined("Canny", "neon") {
			t.Fatalf("quarantined after %d panics", i)
		}
	}
	if !s.RecordPanic("Canny", "neon", "bad") {
		t.Fatal("third panic must newly quarantine")
	}
	if !s.Quarantined("Canny", "neon") {
		t.Fatal("pair not quarantined")
	}
	// Only the quarantining record returns true.
	if s.RecordPanic("Canny", "neon", "bad") {
		t.Fatal("already-quarantined pair must not report newly")
	}
	if s.PanicCount("Canny", "neon") != 4 {
		t.Fatalf("PanicCount = %d, want 4", s.PanicCount("Canny", "neon"))
	}
	// Other pairs are unaffected.
	if s.Quarantined("Canny", "sse2") || s.Quarantined("SobelFilter", "neon") {
		t.Fatal("quarantine leaked to other pairs")
	}

	snap := reg.Snapshot()
	if got := snap[`quarantine_total{isa="neon",kernel="Canny"}`]; got != 1 {
		t.Errorf("quarantine_total = %v, want 1", got)
	}
	if got := snap[`worker_panics_total{isa="neon",kernel="Canny"}`]; got != 4 {
		t.Errorf("worker_panics_total = %v, want 4", got)
	}
	if got := snap[`quarantined{isa="neon",kernel="Canny"}`]; got != 1 {
		t.Errorf("quarantined gauge = %v, want 1", got)
	}

	qs := s.Quarantines()
	if len(qs) != 1 || qs[0].Kernel != "Canny" || qs[0].ISA != "neon" || qs[0].Panics != 3 {
		t.Errorf("Quarantines = %+v", qs)
	}
}

func TestQuarantineJournalPersistence(t *testing.T) {
	path := filepath.Join(t.TempDir(), "quarantine.journal")
	j, err := checkpoint.Create(path, "quarantine", "fp")
	if err != nil {
		t.Fatal(err)
	}

	s := NewSupervisor(QuarantinePolicy{MaxPanics: 1}, nil)
	s.SetClock(func() time.Time { return time.Unix(100, 0) })
	if _, err := s.AttachJournal(j); err != nil {
		t.Fatalf("AttachJournal(empty) = %v", err)
	}
	if !s.RecordPanic("MedianBlur3x3", "sse2", "index out of range") {
		t.Fatal("MaxPanics=1 must quarantine on first panic")
	}

	// A "restarted process": fresh supervisor, reopened journal.
	j2, err := checkpoint.Open(path, "quarantine", "fp")
	if err != nil {
		t.Fatalf("reopen journal: %v", err)
	}
	s2 := NewSupervisor(QuarantinePolicy{}, nil)
	replayed, err := s2.AttachJournal(j2)
	if err != nil {
		t.Fatalf("AttachJournal(replay) = %v", err)
	}
	if len(replayed) != 1 {
		t.Fatalf("replayed %d records, want 1", len(replayed))
	}
	qr := replayed[0]
	if qr.Kernel != "MedianBlur3x3" || qr.ISA != "sse2" || qr.Panics != 1 ||
		qr.UnixNano != time.Unix(100, 0).UnixNano() {
		t.Errorf("replayed record = %+v", qr)
	}
	if !strings.Contains(qr.Reason, "index out of range") {
		t.Errorf("Reason = %q", qr.Reason)
	}
	if !s2.Quarantined("MedianBlur3x3", "sse2") {
		t.Fatal("restarted supervisor lost the quarantine")
	}
}

func TestWatchdogDetectsStall(t *testing.T) {
	reg := obs.NewRegistry()
	w := NewWatchdog(WatchdogConfig{Deadline: time.Hour}, reg)
	defer w.Stop()

	stopped := false
	sec := w.Section("GaussianBlur", "neon", 3, func() { stopped = true })
	defer sec.Close()

	// All hearts fresh: no stall.
	w.Check(time.Now())
	if sec.Stalled() != nil || stopped {
		t.Fatal("fresh section declared stalled")
	}

	// Bands 0 and 2 keep beating; band 1 goes silent past the deadline.
	future := time.Now().Add(2 * time.Hour)
	sec.Heart(0).last.Store(future.UnixNano())
	sec.Heart(2).last.Store(future.UnixNano())
	w.Check(future)
	se := sec.Stalled()
	if se == nil {
		t.Fatal("stall not detected")
	}
	if !stopped {
		t.Fatal("onStall not fired")
	}
	if se.Band != 1 || se.Op != "GaussianBlur" || se.ISA != "neon" || se.Deadline != time.Hour {
		t.Errorf("StallError = %+v", se)
	}
	if w.Stalls() != 1 {
		t.Errorf("Stalls = %d, want 1", w.Stalls())
	}

	// A second scan must not re-declare.
	w.Check(future.Add(time.Hour))
	if w.Stalls() != 1 {
		t.Errorf("stall re-declared; Stalls = %d", w.Stalls())
	}

	snap := reg.Snapshot()
	if got := snap[`stall_total{isa="neon",kernel="GaussianBlur"}`]; got != 1 {
		t.Errorf("stall_total = %v, want 1", got)
	}
}

func TestWatchdogBeatsPreventStall(t *testing.T) {
	w := NewWatchdog(WatchdogConfig{Deadline: 50 * time.Millisecond, Poll: time.Millisecond}, nil)
	defer w.Stop()
	sec := w.Section("ResizeHalf", "sse2", 1, nil)
	defer sec.Close()
	// Keep beating for several deadlines; the live monitor must stay quiet.
	deadline := time.Now().Add(200 * time.Millisecond)
	for time.Now().Before(deadline) {
		sec.Heart(0).Beat()
		time.Sleep(5 * time.Millisecond)
	}
	if se := sec.Stalled(); se != nil {
		t.Fatalf("beating section declared stalled: %v", se)
	}
}

func TestWatchdogClosedSectionNotScanned(t *testing.T) {
	w := NewWatchdog(WatchdogConfig{Deadline: time.Hour}, nil)
	defer w.Stop()
	sec := w.Section("Threshold", "neon", 1, nil)
	sec.Close()
	w.Check(time.Now().Add(48 * time.Hour))
	if sec.Stalled() != nil {
		t.Fatal("closed section declared stalled")
	}
	if w.Stalls() != 0 {
		t.Errorf("Stalls = %d, want 0", w.Stalls())
	}
}

func TestWatchdogSnapshot(t *testing.T) {
	w := NewWatchdog(WatchdogConfig{Deadline: time.Hour}, nil)
	defer w.Stop()
	s1 := w.Section("Canny", "neon", 2, nil)
	defer s1.Close()
	s2 := w.Section("Canny", "sse2", 4, nil)
	defer s2.Close()
	st := w.Snapshot(time.Now())
	if len(st) != 2 {
		t.Fatalf("Snapshot len = %d, want 2", len(st))
	}
	if st[0].ISA != "neon" || st[1].ISA != "sse2" {
		t.Errorf("Snapshot order = %s, %s", st[0].ISA, st[1].ISA)
	}
	if st[0].Bands != 2 || st[1].Bands != 4 {
		t.Errorf("Bands = %d, %d", st[0].Bands, st[1].Bands)
	}
}

func TestWatchdogConfigDefaults(t *testing.T) {
	c := WatchdogConfig{}.normalized()
	if c.Deadline != time.Second {
		t.Errorf("default Deadline = %v", c.Deadline)
	}
	if c.Poll != c.Deadline/8 {
		t.Errorf("default Poll = %v", c.Poll)
	}
	if p := (WatchdogConfig{Deadline: time.Microsecond}).normalized().Poll; p != time.Millisecond {
		t.Errorf("Poll floor = %v, want 1ms", p)
	}
	if p := (WatchdogConfig{Deadline: time.Hour}).normalized().Poll; p != 250*time.Millisecond {
		t.Errorf("Poll ceiling = %v, want 250ms", p)
	}
	if q := (QuarantinePolicy{}).normalized(); q.MaxPanics != 3 {
		t.Errorf("default MaxPanics = %d", q.MaxPanics)
	}
}
