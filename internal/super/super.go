// Package super is the supervision layer above the kernel library's
// parallel bands and the serving front-end's workers: a heartbeat watchdog
// that detects wedged bands and cancels their siblings (watchdog.go), and a
// panic supervisor that promotes "rethrow the lowest band panic" into a
// policy — a (kernel, ISA) pair that panics repeatedly is quarantined to
// the scalar, serial path and its circuit breaker is latched terminally
// open, with the quarantine decision journaled (internal/checkpoint) so a
// restarted process does not re-probe a known-poisonous path.
//
// The split of responsibilities with internal/resilience: breakers answer
// "should this call use SIMD right now?" from guard verdicts; the
// supervisor answers "should this pair ever run SIMD again in this
// process?" from crashes and stalls — and enforces its answer through the
// breaker's terminal StuckOpen state.
package super

import (
	"encoding/json"
	"fmt"
	"runtime/debug"
	"sort"
	"sync"
	"time"

	"simdstudy/internal/checkpoint"
	"simdstudy/internal/obs"
)

// PanicError is a recovered panic promoted to an error by Protect, carrying
// the operation name, the original panic value and the stack at recovery.
type PanicError struct {
	Op    string
	Value any
	Stack string
}

// Error implements error.
func (e *PanicError) Error() string {
	return fmt.Sprintf("super: panic in %s: %v", e.Op, e.Value)
}

// Protect runs fn, converting a panic into a *PanicError instead of
// unwinding the caller. It is the supervisor's recover path for code that
// must not take its goroutine down — breaker probes, request handlers,
// campaign cells.
func Protect(op string, fn func() error) (err error) {
	defer func() {
		if r := recover(); r != nil {
			err = &PanicError{Op: op, Value: r, Stack: string(debug.Stack())}
		}
	}()
	return fn()
}

// QuarantinePolicy tunes the panic supervisor. The zero value selects the
// defaults noted per field.
type QuarantinePolicy struct {
	// MaxPanics is how many recorded panics a (kernel, ISA) pair survives
	// before it is quarantined. Default 3.
	MaxPanics int
}

func (p QuarantinePolicy) normalized() QuarantinePolicy {
	if p.MaxPanics <= 0 {
		p.MaxPanics = 3
	}
	return p
}

// QuarantineRecord is one quarantine decision: the pair, how many panics it
// took, and the last panic value. It is the journal payload for persistent
// quarantine, so the fields are JSON-stable.
type QuarantineRecord struct {
	Kernel   string `json:"kernel"`
	ISA      string `json:"isa"`
	Panics   int    `json:"panics"`
	Reason   string `json:"reason"`
	UnixNano int64  `json:"unix_nano"`
}

// Supervisor tracks panics per (kernel, ISA) pair and quarantines repeat
// offenders. All methods are safe for concurrent use.
type Supervisor struct {
	mu      sync.Mutex
	policy  QuarantinePolicy
	reg     *obs.Registry
	panics  map[string]int
	q       map[string]QuarantineRecord
	journal *checkpoint.Journal
	clock   func() time.Time
}

// NewSupervisor builds a supervisor with the given policy, reporting into
// reg (which may be nil).
func NewSupervisor(policy QuarantinePolicy, reg *obs.Registry) *Supervisor {
	return &Supervisor{
		policy: policy.normalized(),
		reg:    reg,
		panics: map[string]int{},
		q:      map[string]QuarantineRecord{},
		clock:  time.Now,
	}
}

// SetClock injects a time source for tests; nil restores time.Now.
func (s *Supervisor) SetClock(clock func() time.Time) {
	s.mu.Lock()
	defer s.mu.Unlock()
	if clock == nil {
		clock = time.Now
	}
	s.clock = clock
}

func key(kernel, isa string) string { return kernel + "/" + isa }

// AttachJournal binds a checkpoint journal to the supervisor: existing
// records are replayed into the quarantine set (so a restarted process
// keeps its quarantines) and future quarantine decisions are appended to
// it. It returns the replayed records so the caller can mirror them into
// other subsystems (the serving layer latches the matching breakers
// stuck-open).
func (s *Supervisor) AttachJournal(j *checkpoint.Journal) ([]QuarantineRecord, error) {
	replayed := make([]QuarantineRecord, 0, j.Len())
	for _, rec := range j.Records() {
		var qr QuarantineRecord
		if err := checkpointUnmarshal(rec, &qr); err != nil {
			return nil, fmt.Errorf("super: quarantine journal record %d: %w", rec.Seq, err)
		}
		replayed = append(replayed, qr)
	}
	s.mu.Lock()
	defer s.mu.Unlock()
	s.journal = j
	for _, qr := range replayed {
		k := key(qr.Kernel, qr.ISA)
		if _, ok := s.q[k]; ok {
			continue
		}
		s.q[k] = qr
		if s.panics[k] < qr.Panics {
			s.panics[k] = qr.Panics
		}
		s.gaugeLocked(qr.Kernel, qr.ISA)
	}
	return replayed, nil
}

func checkpointUnmarshal(rec checkpoint.Record, v any) error {
	return json.Unmarshal(rec.Data, v)
}

// RecordPanic counts one panic for the pair and reports whether this very
// record pushed it into quarantine (so the caller can take the one-time
// enforcement action, e.g. latch the breaker stuck-open). Already-
// quarantined pairs return false.
func (s *Supervisor) RecordPanic(kernel, isa string, value any) bool {
	s.mu.Lock()
	k := key(kernel, isa)
	s.panics[k]++
	n := s.panics[k]
	_, already := s.q[k]
	newly := !already && n >= s.policy.MaxPanics
	var rec QuarantineRecord
	if newly {
		rec = QuarantineRecord{
			Kernel: kernel, ISA: isa, Panics: n,
			Reason:   fmt.Sprintf("panic: %v", value),
			UnixNano: s.clock().UnixNano(),
		}
		s.q[k] = rec
	}
	j := s.journal
	reg := s.reg
	if reg != nil {
		s.gaugeLocked(kernel, isa)
	}
	s.mu.Unlock()

	if reg != nil {
		lk, li := obs.L("kernel", kernel), obs.L("isa", isa)
		reg.Counter("worker_panics_total", lk, li).Inc()
		reg.Emit("supervisor.panic", map[string]any{
			"kernel": kernel, "isa": isa, "count": n,
			"panic": fmt.Sprint(value), "quarantined": newly || already,
		})
		if newly {
			reg.Counter("quarantine_total", lk, li).Inc()
			reg.Emit("supervisor.quarantine", map[string]any{
				"kernel": kernel, "isa": isa, "panics": n, "reason": rec.Reason,
			})
		}
	}
	if newly && j != nil {
		if err := j.Append(rec); err != nil && reg != nil {
			reg.Emit("supervisor.journal_error", map[string]any{"error": err.Error()})
		}
	}
	return newly
}

// gaugeLocked publishes the pair's quarantine flag. Callers hold mu.
func (s *Supervisor) gaugeLocked(kernel, isa string) {
	if s.reg == nil {
		return
	}
	v := 0.0
	if _, ok := s.q[key(kernel, isa)]; ok {
		v = 1.0
	}
	s.reg.Gauge("quarantined", obs.L("kernel", kernel), obs.L("isa", isa)).Set(v)
}

// Quarantined reports whether the pair is quarantined.
func (s *Supervisor) Quarantined(kernel, isa string) bool {
	s.mu.Lock()
	defer s.mu.Unlock()
	_, ok := s.q[key(kernel, isa)]
	return ok
}

// PanicCount returns how many panics have been recorded for the pair.
func (s *Supervisor) PanicCount(kernel, isa string) int {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.panics[key(kernel, isa)]
}

// Quarantines returns every quarantine decision, sorted by (kernel, ISA),
// for the /livez view and logs.
func (s *Supervisor) Quarantines() []QuarantineRecord {
	s.mu.Lock()
	defer s.mu.Unlock()
	out := make([]QuarantineRecord, 0, len(s.q))
	for _, rec := range s.q {
		out = append(out, rec)
	}
	sort.Slice(out, func(i, j int) bool {
		if out[i].Kernel != out[j].Kernel {
			return out[i].Kernel < out[j].Kernel
		}
		return out[i].ISA < out[j].ISA
	})
	return out
}
