package super

import (
	"fmt"
	"sort"
	"sync"
	"sync/atomic"
	"time"

	"simdstudy/internal/obs"
)

// StallError reports a parallel section (or serial watched loop) whose band
// stopped making row progress for longer than the watchdog deadline. The
// kernel library converts it into the error return of the stalled entry
// point and feeds it to the pair's circuit breaker as a failure, so
// repeated stalls demote the pair to scalar exactly like repeated guard
// fallbacks.
type StallError struct {
	// Op is the kernel entry point that stalled, e.g. "GaussianBlur".
	Op string
	// ISA is the instruction set the stalled section was running.
	ISA string
	// Band is the index of the band whose heartbeat went silent.
	Band int
	// LastBeat is when that band last reported progress.
	LastBeat time.Time
	// Deadline is the heartbeat silence that counts as a stall.
	Deadline time.Duration
}

// Error implements error.
func (e *StallError) Error() string {
	return fmt.Sprintf("super: %s [%s] stalled: band %d silent since %s (deadline %s)",
		e.Op, e.ISA, e.Band, e.LastBeat.Format(time.RFC3339Nano), e.Deadline)
}

// WatchdogConfig tunes a Watchdog. The zero value selects the defaults
// noted per field.
type WatchdogConfig struct {
	// Deadline is how long a band's heartbeat may stay silent before the
	// section is declared stalled. Default 1s.
	Deadline time.Duration
	// Poll is the monitor's scan interval. Default Deadline/8, clamped to
	// [1ms, 250ms].
	Poll time.Duration
}

func (c WatchdogConfig) normalized() WatchdogConfig {
	if c.Deadline <= 0 {
		c.Deadline = time.Second
	}
	if c.Poll <= 0 {
		c.Poll = c.Deadline / 8
	}
	if c.Poll < time.Millisecond {
		c.Poll = time.Millisecond
	}
	if c.Poll > 250*time.Millisecond {
		c.Poll = 250 * time.Millisecond
	}
	return c
}

// Heart is one band's heartbeat slot. Beat is called from the band's row
// loop (cv's rowTick/flatTick), so it must stay a single atomic store.
type Heart struct {
	last atomic.Int64 // unix nanos of the latest beat
}

// Beat records progress now.
func (h *Heart) Beat() { h.last.Store(time.Now().UnixNano()) }

// LastBeat returns the time of the latest beat (section registration time
// if the band never beat).
func (h *Heart) LastBeat() time.Time { return time.Unix(0, h.last.Load()) }

// Section is one watched unit of work: a kernel's parallel pass (one heart
// per band) or a serving request (one heart). Sections register with the
// watchdog at creation and must be Closed when the work completes, stalled
// or not.
type Section struct {
	w       *Watchdog
	op, isa string
	started time.Time
	hearts  []Heart
	onStall func()
	stalled atomic.Pointer[StallError]
}

// Heart returns band i's heartbeat slot.
func (s *Section) Heart(i int) *Heart { return &s.hearts[i] }

// Stalled returns the section's stall verdict, or nil.
func (s *Section) Stalled() *StallError { return s.stalled.Load() }

// Close unregisters the section from the watchdog.
func (s *Section) Close() {
	s.w.mu.Lock()
	delete(s.w.secs, s)
	s.w.mu.Unlock()
}

// markStalled records the stall verdict (first band wins) and fires the
// section's cancellation callback. The verdict is published before the
// callback runs, so siblings that unwind on the stop flag always observe a
// non-nil Stalled().
func (s *Section) markStalled(e *StallError) {
	if !s.stalled.CompareAndSwap(nil, e) {
		return
	}
	if s.onStall != nil {
		s.onStall()
	}
	s.w.stalls.Add(1)
	if s.w.reg != nil {
		s.w.reg.Counter("stall_total",
			obs.L("kernel", s.op), obs.L("isa", s.isa)).Inc()
		s.w.reg.Emit("watchdog.stall", map[string]any{
			"kernel": s.op, "isa": s.isa, "band": e.Band,
			"silent_for": time.Since(e.LastBeat).String(),
			"deadline":   e.Deadline.String(),
		})
	}
}

// SectionStatus is one live section's view for /livez and logs.
type SectionStatus struct {
	Op      string        `json:"op"`
	ISA     string        `json:"isa"`
	Bands   int           `json:"bands"`
	Age     time.Duration `json:"age_ns"`
	Oldest  time.Duration `json:"oldest_beat_age_ns"`
	Stalled *StallError   `json:"stalled,omitempty"`
}

// Watchdog owns the heartbeat registry and the background monitor that
// scans it. One watchdog serves many sections (all kernels of an Ops, all
// requests of a server).
type Watchdog struct {
	cfg    WatchdogConfig
	reg    *obs.Registry
	mu     sync.Mutex
	secs   map[*Section]struct{}
	stop   chan struct{}
	once   sync.Once
	stalls atomic.Uint64
}

// NewWatchdog builds a watchdog and starts its monitor goroutine; Stop it
// when done. reg may be nil.
func NewWatchdog(cfg WatchdogConfig, reg *obs.Registry) *Watchdog {
	w := &Watchdog{
		cfg:  cfg.normalized(),
		reg:  reg,
		secs: map[*Section]struct{}{},
		stop: make(chan struct{}),
	}
	go w.monitor()
	return w
}

// Stop terminates the monitor goroutine. Live sections keep their hearts
// (Beat stays valid) but no further stalls are declared.
func (w *Watchdog) Stop() {
	w.once.Do(func() { close(w.stop) })
}

// Deadline returns the configured heartbeat deadline.
func (w *Watchdog) Deadline() time.Duration { return w.cfg.Deadline }

// Stalls returns how many stalls this watchdog has declared.
func (w *Watchdog) Stalls() uint64 { return w.stalls.Load() }

// Section registers a watched unit of work with bands heartbeat slots, all
// initialized to now. onStall, which may be nil, runs once if the section
// stalls — the kernel library points it at the parallel section's stop
// flag, the serving layer at the request's cancel.
func (w *Watchdog) Section(op, isa string, bands int, onStall func()) *Section {
	now := time.Now()
	s := &Section{w: w, op: op, isa: isa, started: now, hearts: make([]Heart, bands), onStall: onStall}
	for i := range s.hearts {
		s.hearts[i].last.Store(now.UnixNano())
	}
	w.mu.Lock()
	w.secs[s] = struct{}{}
	w.mu.Unlock()
	return s
}

// monitor scans every poll interval until Stop.
func (w *Watchdog) monitor() {
	t := time.NewTicker(w.cfg.Poll)
	defer t.Stop()
	for {
		select {
		case <-w.stop:
			return
		case now := <-t.C:
			w.Check(now)
		}
	}
}

// Check runs one scan at the given instant, declaring a stall for every
// live, not-yet-stalled section with a band silent past the deadline. It is
// what the monitor calls on each tick; tests call it directly with a
// crafted clock for deterministic verdicts.
func (w *Watchdog) Check(now time.Time) {
	w.mu.Lock()
	secs := make([]*Section, 0, len(w.secs))
	for s := range w.secs {
		secs = append(secs, s)
	}
	w.mu.Unlock()
	for _, s := range secs {
		if s.stalled.Load() != nil {
			continue
		}
		for i := range s.hearts {
			last := s.hearts[i].LastBeat()
			if now.Sub(last) > w.cfg.Deadline {
				s.markStalled(&StallError{
					Op: s.op, ISA: s.isa, Band: i, LastBeat: last, Deadline: w.cfg.Deadline,
				})
				break
			}
		}
	}
}

// Snapshot returns the live sections' status for /livez.
func (w *Watchdog) Snapshot(now time.Time) []SectionStatus {
	w.mu.Lock()
	secs := make([]*Section, 0, len(w.secs))
	for s := range w.secs {
		secs = append(secs, s)
	}
	w.mu.Unlock()
	out := make([]SectionStatus, 0, len(secs))
	for _, s := range secs {
		st := SectionStatus{
			Op: s.op, ISA: s.isa, Bands: len(s.hearts),
			Age: now.Sub(s.started), Stalled: s.Stalled(),
		}
		for i := range s.hearts {
			if age := now.Sub(s.hearts[i].LastBeat()); age > st.Oldest {
				st.Oldest = age
			}
		}
		out = append(out, st)
	}
	sort.Slice(out, func(i, j int) bool {
		if out[i].Op != out[j].Op {
			return out[i].Op < out[j].Op
		}
		return out[i].ISA < out[j].ISA
	})
	return out
}
