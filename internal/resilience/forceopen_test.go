package resilience

import (
	"testing"
	"time"
)

// TestForceStuckOpen: the supervisor's quarantine enforcement latches a
// breaker terminally from any state, and no cooldown or verdict re-arms it.
func TestForceStuckOpen(t *testing.T) {
	now := time.Unix(0, 0)
	cfg := BreakerConfig{OpenFor: time.Second, Clock: func() time.Time { return now }}

	t.Run("from closed", func(t *testing.T) {
		b := NewBreaker("k", "neon", cfg, nil)
		b.ForceStuckOpen()
		if st := b.State(); st != StateStuckOpen {
			t.Fatalf("state = %v", st)
		}
		if b.Allow() {
			t.Fatal("stuck-open breaker allowed a call")
		}
		// Neither cooldown nor a success verdict re-arms it.
		now = now.Add(time.Hour)
		b.Record(true)
		if st := b.State(); st != StateStuckOpen {
			t.Fatalf("state after cooldown+success = %v", st)
		}
	})

	t.Run("from half-open with probe out", func(t *testing.T) {
		b := NewBreaker("k", "neon", BreakerConfig{
			MinSamples: 1, FailureRate: 1, OpenFor: time.Second,
			Clock: func() time.Time { return now },
		}, nil)
		b.Record(false)
		now = now.Add(2 * time.Second)
		if !b.Allow() {
			t.Fatal("half-open breaker refused the probe")
		}
		b.ForceStuckOpen()
		if st := b.State(); st != StateStuckOpen {
			t.Fatalf("state = %v", st)
		}
		// The outstanding probe's late verdict is ignored.
		b.Record(true)
		if st := b.State(); st != StateStuckOpen {
			t.Fatalf("state after late probe verdict = %v", st)
		}
	})

	t.Run("set-level", func(t *testing.T) {
		s := NewBreakerSet(BreakerConfig{}, nil)
		s.ForceStuckOpen("GaussianBlur", "neon")
		if st := s.State("GaussianBlur", "neon"); st != StateStuckOpen {
			t.Fatalf("state = %v", st)
		}
		if st := s.State("GaussianBlur", "sse2"); st != StateClosed {
			t.Fatalf("sibling pair state = %v", st)
		}
	})
}
