// Package resilience is the runtime policy layer that turns the cv guard's
// one-shot fault outcomes into long-horizon robustness: per-(kernel, ISA)
// circuit breakers that demote a flaky SIMD unit to scalar code before users
// see retries and re-arm it with half-open probes, exponential backoff with
// deterministic jitter for the guard's retry loop, and a typed deadline
// error carrying partial-progress accounting for cancelled work.
//
// The paper's headline speedups only matter if the hand-SIMD fast path can
// be trusted under sustained use. Boivin & Legaux show intrinsic speedups
// are configuration-fragile, and the SIMD-everywhere work shows portability
// layers need a safe demotion story; this package is the runtime answer to
// "when should we stop trusting the SIMD path?" — a question the one-shot
// guard in internal/cv cannot ask, because it only sees single calls.
//
// Everything here is dependency-free (stdlib + internal/obs), safe for
// concurrent use, and deterministic under an injected clock and seed, so
// the serving front-end (cmd/simdserved), the harness and the tests all
// share one policy implementation.
package resilience

import (
	"fmt"
)

// DeadlineError reports work cancelled by a context deadline or explicit
// cancellation, with partial-progress accounting so callers (and the
// serving layer's shed responses) can say how far the work got.
type DeadlineError struct {
	// Op names the cancelled operation, e.g. "cv.GaussianBlur" or
	// "harness.grid.GauBlu".
	Op string
	// Cause is the context error (context.Canceled or
	// context.DeadlineExceeded); Unwrap exposes it so errors.Is works.
	Cause error
	// Completed counts the units of work finished before cancellation.
	Completed int
	// Total is the planned unit count, 0 when unknown.
	Total int
	// Unit names what was counted: "rows", "cells", "images", "trips".
	Unit string
}

// Error implements error.
func (e *DeadlineError) Error() string {
	if e.Total > 0 {
		return fmt.Sprintf("resilience: %s: %v after %d/%d %s",
			e.Op, e.Cause, e.Completed, e.Total, e.Unit)
	}
	return fmt.Sprintf("resilience: %s: %v after %d %s",
		e.Op, e.Cause, e.Completed, e.Unit)
}

// Unwrap ties the error to its context cause, so
// errors.Is(err, context.DeadlineExceeded) keeps working through the wrap.
func (e *DeadlineError) Unwrap() error { return e.Cause }
