package resilience

import (
	"fmt"
	"sort"
	"sync"
	"time"

	"simdstudy/internal/obs"
)

// State is a circuit breaker's position.
type State int

// Breaker states. The happy path is Closed; repeated guard fallbacks open
// the breaker (SIMD demoted to scalar); after a cooldown the breaker goes
// half-open and admits a bounded number of probe calls; clean probes close
// it again. StuckOpen is the terminal state after the configured number of
// failed re-arm cycles — the breaker-layer equivalent of the old
// setUseOptimized(false) kill-switch, except it is reached by policy, not
// by the third fallback ever seen.
const (
	StateClosed State = iota
	StateOpen
	StateHalfOpen
	StateStuckOpen
)

var stateNames = [...]string{"closed", "open", "half-open", "stuck-open"}

// String names the state.
func (s State) String() string {
	if s < 0 || int(s) >= len(stateNames) {
		return fmt.Sprintf("state(%d)", int(s))
	}
	return stateNames[s]
}

// BreakerConfig tunes a Breaker. The zero value selects the defaults noted
// per field.
type BreakerConfig struct {
	// Window is how many recent outcomes the failure rate is computed
	// over (a sliding ring). Default 16.
	Window int
	// WindowAge, when positive, additionally expires outcomes older than
	// this from the window, so a burst of ancient failures cannot trip a
	// breaker that has been idle. Zero disables age-based expiry.
	WindowAge time.Duration
	// MinSamples is the minimum number of live outcomes in the window
	// before the breaker may trip. Default 4.
	MinSamples int
	// FailureRate opens the breaker when failures/samples reaches this
	// fraction. Default 0.5.
	FailureRate float64
	// OpenFor is the cooldown an open breaker waits before going
	// half-open. Default 5s.
	OpenFor time.Duration
	// ProbeBudget is the maximum number of outstanding half-open probe
	// calls. Default 1.
	ProbeBudget int
	// ProbeSuccesses is how many clean probes close a half-open breaker.
	// Default 1.
	ProbeSuccesses int
	// GiveUpAfter, when positive, is how many consecutive open trips the
	// breaker tolerates without managing to close; the next trip latches
	// StuckOpen — the terminal action that maps onto the cv kill-switch.
	// Zero means the breaker re-arms forever.
	GiveUpAfter int
	// Clock is the time source; nil means time.Now. Tests and the
	// integration harness inject a manual clock for deterministic
	// cooldown expiry.
	Clock func() time.Time
}

func (c BreakerConfig) normalized() BreakerConfig {
	if c.Window <= 0 {
		c.Window = 16
	}
	if c.MinSamples <= 0 {
		c.MinSamples = 4
	}
	if c.FailureRate <= 0 {
		c.FailureRate = 0.5
	}
	if c.OpenFor <= 0 {
		c.OpenFor = 5 * time.Second
	}
	if c.ProbeBudget <= 0 {
		c.ProbeBudget = 1
	}
	if c.ProbeSuccesses <= 0 {
		c.ProbeSuccesses = 1
	}
	if c.Clock == nil {
		c.Clock = time.Now
	}
	return c
}

// outcome is one recorded guard verdict in the sliding window.
type outcome struct {
	at time.Time
	ok bool
}

// Breaker is one per-(kernel, ISA) circuit breaker. All methods are safe
// for concurrent use.
type Breaker struct {
	mu     sync.Mutex
	cfg    BreakerConfig
	kernel string
	isa    string

	state    State
	ring     []outcome
	next     int // ring write cursor
	filled   int // live entries in ring
	openedAt time.Time
	opens    int // consecutive open transitions without a close
	probes   int // outstanding half-open probes
	probeOK  int // clean probes this half-open cycle

	reg      *obs.Registry
	openSpan *obs.Span // measures the outage from first open to close
}

// NewBreaker builds a breaker for one (kernel, isa) pair, reporting into
// reg (which may be nil).
func NewBreaker(kernel, isa string, cfg BreakerConfig, reg *obs.Registry) *Breaker {
	c := cfg.normalized()
	b := &Breaker{cfg: c, kernel: kernel, isa: isa, ring: make([]outcome, c.Window), reg: reg}
	b.setStateGauge()
	return b
}

// State returns the current state, applying cooldown expiry first so an
// open breaker whose cooldown has lapsed reports half-open.
func (b *Breaker) State() State {
	b.mu.Lock()
	defer b.mu.Unlock()
	b.maybeHalfOpen()
	return b.state
}

// Allow reports whether the SIMD path may run. In the half-open state each
// positive answer consumes one probe from the budget; the caller must
// resolve it with Record.
func (b *Breaker) Allow() bool {
	b.mu.Lock()
	defer b.mu.Unlock()
	b.maybeHalfOpen()
	switch b.state {
	case StateClosed:
		return true
	case StateHalfOpen:
		if b.probes < b.cfg.ProbeBudget {
			b.probes++
			return true
		}
		return false
	default: // StateOpen, StateStuckOpen
		return false
	}
}

// Release returns an admitted-but-unresolved call's probe to the half-open
// budget. Callers that were cancelled (or failed validation) after Allow but
// before producing a verdict must call it, or the probe would stay consumed
// and the breaker could never leave half-open.
func (b *Breaker) Release() {
	b.mu.Lock()
	defer b.mu.Unlock()
	if b.state == StateHalfOpen && b.probes > 0 {
		b.probes--
	}
}

// Record feeds one guard verdict (success = the spot-check came back clean
// or a retry recovered; failure = scalar fallback) into the breaker and
// returns the resulting state.
func (b *Breaker) Record(success bool) State {
	b.mu.Lock()
	defer b.mu.Unlock()
	now := b.cfg.Clock()
	switch b.state {
	case StateClosed:
		b.push(now, success)
		if b.tripped(now) {
			b.toOpen(now)
		}
	case StateHalfOpen:
		if b.probes > 0 {
			b.probes--
		}
		if success {
			b.probeOK++
			if b.probeOK >= b.cfg.ProbeSuccesses {
				b.transition(StateClosed, now)
			}
		} else {
			b.toOpen(now)
		}
	default:
		// A verdict from a call admitted before the trip landed late;
		// open and stuck-open states ignore it.
	}
	return b.state
}

// push appends an outcome to the sliding window. Callers hold mu.
func (b *Breaker) push(now time.Time, ok bool) {
	b.ring[b.next] = outcome{at: now, ok: ok}
	b.next = (b.next + 1) % len(b.ring)
	if b.filled < len(b.ring) {
		b.filled++
	}
}

// tripped reports whether the live window crosses the failure rate.
// Callers hold mu.
func (b *Breaker) tripped(now time.Time) bool {
	var samples, failures int
	for i := 0; i < b.filled; i++ {
		o := b.ring[(b.next-1-i+2*len(b.ring))%len(b.ring)]
		if b.cfg.WindowAge > 0 && now.Sub(o.at) > b.cfg.WindowAge {
			continue // expired
		}
		samples++
		if !o.ok {
			failures++
		}
	}
	return samples >= b.cfg.MinSamples &&
		float64(failures) >= b.cfg.FailureRate*float64(samples)
}

// maybeHalfOpen promotes an open breaker whose cooldown has lapsed.
// Callers hold mu.
func (b *Breaker) maybeHalfOpen() {
	if b.state == StateOpen {
		if now := b.cfg.Clock(); now.Sub(b.openedAt) >= b.cfg.OpenFor {
			b.transition(StateHalfOpen, now)
		}
	}
}

// toOpen handles both the closed->open trip and a failed half-open probe,
// latching StuckOpen once the re-arm budget is spent. Callers hold mu.
func (b *Breaker) toOpen(now time.Time) {
	b.opens++
	if b.cfg.GiveUpAfter > 0 && b.opens > b.cfg.GiveUpAfter {
		b.transition(StateStuckOpen, now)
		return
	}
	b.transition(StateOpen, now)
}

// transition moves to a new state, resetting per-state bookkeeping and
// recording the observability trail: a transition counter, a state gauge,
// an event, and a "breaker.open" span covering each outage (first open to
// close or stuck-open). Callers hold mu.
func (b *Breaker) transition(to State, now time.Time) {
	from := b.state
	if from == to {
		return
	}
	b.state = to
	switch to {
	case StateOpen:
		b.openedAt = now
		b.probes, b.probeOK = 0, 0
	case StateHalfOpen:
		b.probes, b.probeOK = 0, 0
	case StateClosed:
		b.opens = 0
		b.filled, b.next = 0, 0
	}
	if b.reg != nil {
		lk, li := obs.L("kernel", b.kernel), obs.L("isa", b.isa)
		b.reg.Counter("breaker_transitions_total", lk, li,
			obs.L("from", from.String()), obs.L("to", to.String())).Inc()
		b.setStateGauge()
		b.reg.Emit("breaker.transition", map[string]any{
			"kernel": b.kernel, "isa": b.isa,
			"from": from.String(), "to": to.String(),
		})
		if from == StateClosed && b.openSpan == nil {
			b.openSpan = b.reg.StartSpan("breaker.open", lk, li)
		}
		if to == StateClosed || to == StateStuckOpen {
			if b.openSpan != nil {
				b.openSpan.SetAttr("resolution", to.String())
				b.openSpan.End()
				b.openSpan = nil
			}
		}
	}
}

// setStateGauge publishes the numeric state. Callers hold mu (or the
// breaker is not yet shared).
func (b *Breaker) setStateGauge() {
	if b.reg != nil {
		b.reg.Gauge("breaker_state",
			obs.L("kernel", b.kernel), obs.L("isa", b.isa)).Set(float64(b.state))
	}
}

// ForceStuckOpen latches the breaker terminally open regardless of its
// window state — the supervisor's quarantine enforcement. Unlike a trip
// reached through GiveUpAfter, it can land in any state; only a fresh
// breaker (process restart with a clean quarantine journal) re-arms the
// pair.
func (b *Breaker) ForceStuckOpen() {
	b.mu.Lock()
	defer b.mu.Unlock()
	b.transition(StateStuckOpen, b.cfg.Clock())
}

// BreakerSet is a lazily populated family of breakers keyed by
// (kernel, ISA), sharing one config and registry. It is what cv.Ops
// dispatch consults and what the serving front-end reports from /readyz.
type BreakerSet struct {
	mu      sync.Mutex
	cfg     BreakerConfig
	reg     *obs.Registry
	m       map[string]*Breaker
	onForce func(kernel, isa string)
}

// NewBreakerSet builds an empty set; reg may be nil.
func NewBreakerSet(cfg BreakerConfig, reg *obs.Registry) *BreakerSet {
	return &BreakerSet{cfg: cfg, reg: reg, m: map[string]*Breaker{}}
}

func (s *BreakerSet) key(kernel, isa string) string { return kernel + "/" + isa }

// For returns (creating on first use) the breaker for one pair.
func (s *BreakerSet) For(kernel, isa string) *Breaker {
	s.mu.Lock()
	defer s.mu.Unlock()
	k := s.key(kernel, isa)
	b, ok := s.m[k]
	if !ok {
		b = NewBreaker(kernel, isa, s.cfg, s.reg)
		s.m[k] = b
	}
	return b
}

// Allow is For(kernel, isa).Allow().
func (s *BreakerSet) Allow(kernel, isa string) bool { return s.For(kernel, isa).Allow() }

// Record is For(kernel, isa).Record(success).
func (s *BreakerSet) Record(kernel, isa string, success bool) State {
	return s.For(kernel, isa).Record(success)
}

// Release is For(kernel, isa).Release().
func (s *BreakerSet) Release(kernel, isa string) { s.For(kernel, isa).Release() }

// State is For(kernel, isa).State().
func (s *BreakerSet) State(kernel, isa string) State { return s.For(kernel, isa).State() }

// ForceStuckOpen is For(kernel, isa).ForceStuckOpen(), then fires the
// OnForceStuckOpen hook. Every quarantine path in the tree — integrity
// scoreboard trips, panic-quarantine enforcement, journal replay — lands
// here, so the hook is the one place to observe "this pair is terminally
// demoted".
func (s *BreakerSet) ForceStuckOpen(kernel, isa string) {
	s.For(kernel, isa).ForceStuckOpen()
	s.mu.Lock()
	fn := s.onForce
	s.mu.Unlock()
	if fn != nil {
		fn(kernel, isa)
	}
}

// OnForceStuckOpen registers fn to run after every set-level
// ForceStuckOpen. The result-memoization layer hangs cache invalidation
// off it: a (kernel, ISA) pair caught corrupting must not keep serving
// its cached history. fn must not call back into the set's ForceStuckOpen.
func (s *BreakerSet) OnForceStuckOpen(fn func(kernel, isa string)) {
	s.mu.Lock()
	s.onForce = fn
	s.mu.Unlock()
}

// Snapshot returns every breaker's state keyed "kernel/isa", for readiness
// endpoints and logs. Iteration order of the returned map is undefined;
// Keys gives a sorted view.
func (s *BreakerSet) Snapshot() map[string]State {
	s.mu.Lock()
	breakers := make(map[string]*Breaker, len(s.m))
	for k, b := range s.m {
		breakers[k] = b
	}
	s.mu.Unlock()
	out := make(map[string]State, len(breakers))
	for k, b := range breakers {
		out[k] = b.State()
	}
	return out
}

// Keys returns the sorted "kernel/isa" keys of every breaker created so
// far.
func (s *BreakerSet) Keys() []string {
	s.mu.Lock()
	defer s.mu.Unlock()
	keys := make([]string, 0, len(s.m))
	for k := range s.m {
		keys = append(keys, k)
	}
	sort.Strings(keys)
	return keys
}
