package resilience

import (
	"context"
	"time"
)

// Backoff computes exponential retry delays with deterministic jitter: the
// delay for a given attempt is a pure function of (config, seed, attempt),
// so a retry schedule can be replayed exactly — the property every other
// reproducibility knob in this repo (fault plans, image synthesis, row
// sampling) already has. The zero value disables waiting entirely, which
// keeps the guard's historical no-sleep retry behavior when no backoff is
// configured.
type Backoff struct {
	// Base is the delay before the first retry; zero disables all waits.
	Base time.Duration
	// Max caps the grown delay; zero means no cap.
	Max time.Duration
	// Factor is the per-attempt growth multiplier; values < 1 (including
	// the zero value) mean the conventional doubling.
	Factor float64
	// Jitter is the fraction of the delay randomized, in [0, 1]: the
	// delay is scaled by a factor drawn uniformly from [1-Jitter, 1].
	// Jittering downward only keeps Max an actual upper bound.
	Jitter float64
	// Seed drives the jitter stream. Zero is replaced with a fixed
	// constant so the zero Backoff still behaves sanely.
	Seed uint64
}

// Delay returns the wait before retry number attempt (0-based). It is
// deterministic: identical (Backoff, attempt) pairs yield identical delays.
func (b Backoff) Delay(attempt int) time.Duration {
	if b.Base <= 0 {
		return 0
	}
	factor := b.Factor
	if factor < 1 {
		factor = 2
	}
	d := float64(b.Base)
	for i := 0; i < attempt; i++ {
		d *= factor
		if b.Max > 0 && d >= float64(b.Max) {
			d = float64(b.Max)
			break
		}
	}
	if b.Max > 0 && d > float64(b.Max) {
		d = float64(b.Max)
	}
	if j := b.Jitter; j > 0 {
		if j > 1 {
			j = 1
		}
		// Stateless xorshift64* hash of (seed, attempt): jitter needs no
		// shared state, so concurrent retriers never contend or diverge.
		s := b.Seed
		if s == 0 {
			s = 0x9E3779B97F4A7C15
		}
		s ^= uint64(attempt+1) * 0xBF58476D1CE4E5B9
		s ^= s >> 12
		s ^= s << 25
		s ^= s >> 27
		u := float64((s*0x2545F4914F6CDD1D)>>11) / (1 << 53) // [0,1)
		d *= 1 - j*u
	}
	return time.Duration(d)
}

// Sleep waits for d or until ctx is done, whichever comes first, returning
// the context error in the latter case. A nil ctx never cancels.
func Sleep(ctx context.Context, d time.Duration) error {
	if d <= 0 {
		if ctx != nil {
			return ctx.Err()
		}
		return nil
	}
	var done <-chan struct{}
	if ctx != nil {
		done = ctx.Done()
	}
	t := time.NewTimer(d)
	defer t.Stop()
	select {
	case <-t.C:
		return nil
	case <-done:
		return ctx.Err()
	}
}
