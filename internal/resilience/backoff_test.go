package resilience

import (
	"context"
	"errors"
	"testing"
	"time"
)

// TestBackoffGrowth: no jitter means pure exponential growth capped at Max.
func TestBackoffGrowth(t *testing.T) {
	b := Backoff{Base: 10 * time.Millisecond, Max: 60 * time.Millisecond}
	want := []time.Duration{
		10 * time.Millisecond, 20 * time.Millisecond,
		40 * time.Millisecond, 60 * time.Millisecond, 60 * time.Millisecond,
	}
	for i, w := range want {
		if got := b.Delay(i); got != w {
			t.Errorf("Delay(%d) = %v, want %v", i, got, w)
		}
	}
}

// TestBackoffZeroValue: the zero Backoff never waits, preserving the
// guard's historical immediate-retry behavior.
func TestBackoffZeroValue(t *testing.T) {
	var b Backoff
	for i := 0; i < 4; i++ {
		if d := b.Delay(i); d != 0 {
			t.Fatalf("zero Backoff Delay(%d) = %v, want 0", i, d)
		}
	}
}

// TestBackoffJitterDeterministic: jitter from a fixed seed is a pure
// function of (config, attempt) — equal across calls and instances — and
// different seeds give different schedules.
func TestBackoffJitterDeterministic(t *testing.T) {
	a := Backoff{Base: 100 * time.Millisecond, Factor: 2, Jitter: 0.5, Seed: 42}
	b := Backoff{Base: 100 * time.Millisecond, Factor: 2, Jitter: 0.5, Seed: 42}
	other := Backoff{Base: 100 * time.Millisecond, Factor: 2, Jitter: 0.5, Seed: 43}
	var differs bool
	for i := 0; i < 6; i++ {
		d1, d2 := a.Delay(i), b.Delay(i)
		if d1 != d2 {
			t.Fatalf("attempt %d: same seed diverged: %v vs %v", i, d1, d2)
		}
		if d1 != a.Delay(i) {
			t.Fatalf("attempt %d: Delay is not idempotent", i)
		}
		unjittered := Backoff{Base: a.Base, Factor: a.Factor}.Delay(i)
		if d1 > unjittered || d1 < unjittered/2 {
			t.Fatalf("attempt %d: jittered delay %v outside [%v, %v]",
				i, d1, unjittered/2, unjittered)
		}
		if other.Delay(i) != d1 {
			differs = true
		}
	}
	if !differs {
		t.Fatal("different seeds produced identical schedules")
	}
}

// TestSleepHonorsContext: Sleep must return promptly with the context
// error when cancelled mid-wait.
func TestSleepHonorsContext(t *testing.T) {
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	if err := Sleep(ctx, time.Minute); err != context.Canceled {
		t.Fatalf("Sleep = %v, want context.Canceled", err)
	}
	if err := Sleep(nil, 0); err != nil {
		t.Fatalf("Sleep(nil, 0) = %v", err)
	}
	if err := Sleep(context.Background(), time.Microsecond); err != nil {
		t.Fatalf("Sleep = %v", err)
	}
}

// TestDeadlineError: formatting and errors.Is through the wrap.
func TestDeadlineError(t *testing.T) {
	e := &DeadlineError{Op: "cv.GaussianBlur", Cause: context.DeadlineExceeded,
		Completed: 37, Total: 960, Unit: "rows"}
	if got := e.Error(); got != "resilience: cv.GaussianBlur: context deadline exceeded after 37/960 rows" {
		t.Errorf("Error() = %q", got)
	}
	if !errors.Is(e, context.DeadlineExceeded) {
		t.Error("errors.Is failed through DeadlineError")
	}
}
