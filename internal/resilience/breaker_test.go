package resilience

import (
	"sync"
	"testing"
	"time"

	"simdstudy/internal/obs"
)

// manualClock is a settable time source shared by breaker tests.
type manualClock struct {
	mu sync.Mutex
	t  time.Time
}

func newManualClock() *manualClock {
	return &manualClock{t: time.Unix(1000, 0)}
}

func (c *manualClock) Now() time.Time {
	c.mu.Lock()
	defer c.mu.Unlock()
	return c.t
}

func (c *manualClock) Advance(d time.Duration) {
	c.mu.Lock()
	defer c.mu.Unlock()
	c.t = c.t.Add(d)
}

// step is one scripted interaction with the breaker under test.
type step struct {
	record  *bool         // non-nil: Record(*record)
	allow   *bool         // non-nil: Allow() must return *allow
	advance time.Duration // non-zero: advance the clock first
	want    State         // state after the step
}

func rec(ok bool, want State) step       { return step{record: &ok, want: want} }
func allow(want bool, s State) step      { b := want; return step{allow: &b, want: s} }
func tick(d time.Duration, s State) step { return step{advance: d, want: s} }

// TestBreakerTransitions drives the state machine through its scripted
// transitions: trip on failure rate, cooldown to half-open, probe success
// and failure, window expiry, and the stuck-open latch.
func TestBreakerTransitions(t *testing.T) {
	base := BreakerConfig{
		Window: 8, MinSamples: 4, FailureRate: 0.5,
		OpenFor: time.Second, ProbeBudget: 1, ProbeSuccesses: 1,
	}
	cases := []struct {
		name  string
		cfg   BreakerConfig
		steps []step
	}{
		{
			name: "stays closed below failure rate",
			cfg:  base,
			steps: []step{
				rec(true, StateClosed), rec(true, StateClosed), rec(true, StateClosed),
				rec(false, StateClosed), rec(true, StateClosed), rec(false, StateClosed),
				allow(true, StateClosed),
			},
		},
		{
			name: "trips at failure rate once MinSamples seen",
			cfg:  base,
			steps: []step{
				rec(false, StateClosed), // 1 sample: below MinSamples
				rec(false, StateClosed),
				rec(false, StateClosed),
				rec(false, StateOpen), // 4/4 failures
				allow(false, StateOpen),
			},
		},
		{
			name: "cooldown promotes to half-open and a clean probe closes",
			cfg:  base,
			steps: []step{
				rec(false, StateClosed), rec(false, StateClosed),
				rec(false, StateClosed), rec(false, StateOpen),
				allow(false, StateOpen),
				tick(time.Second, StateHalfOpen),
				allow(true, StateHalfOpen),  // the probe
				allow(false, StateHalfOpen), // budget of 1 exhausted
				rec(true, StateClosed),
				allow(true, StateClosed),
			},
		},
		{
			name: "failed probe re-opens and a later probe still closes",
			cfg:  base,
			steps: []step{
				rec(false, StateClosed), rec(false, StateClosed),
				rec(false, StateClosed), rec(false, StateOpen),
				tick(time.Second, StateHalfOpen),
				allow(true, StateHalfOpen),
				rec(false, StateOpen), // probe diverged
				allow(false, StateOpen),
				tick(time.Second, StateHalfOpen),
				allow(true, StateHalfOpen),
				rec(true, StateClosed),
			},
		},
		{
			name: "window expiry forgets ancient failures",
			cfg: func() BreakerConfig {
				c := base
				c.WindowAge = 10 * time.Second
				return c
			}(),
			steps: []step{
				rec(false, StateClosed), rec(false, StateClosed), rec(false, StateClosed),
				// The three failures above age out before the fourth
				// arrives, so the live window holds one sample — below
				// MinSamples, no trip.
				tick(11*time.Second, StateClosed),
				rec(false, StateClosed),
				allow(true, StateClosed),
			},
		},
		{
			name: "two clean probes required when ProbeSuccesses is 2",
			cfg: func() BreakerConfig {
				c := base
				c.ProbeSuccesses = 2
				c.ProbeBudget = 2
				return c
			}(),
			steps: []step{
				rec(false, StateClosed), rec(false, StateClosed),
				rec(false, StateClosed), rec(false, StateOpen),
				tick(time.Second, StateHalfOpen),
				allow(true, StateHalfOpen),
				rec(true, StateHalfOpen), // one of two
				allow(true, StateHalfOpen),
				rec(true, StateClosed),
			},
		},
		{
			name: "stuck-open after the re-arm budget",
			cfg: func() BreakerConfig {
				c := base
				c.GiveUpAfter = 1
				return c
			}(),
			steps: []step{
				rec(false, StateClosed), rec(false, StateClosed),
				rec(false, StateClosed), rec(false, StateOpen), // open #1: tolerated
				tick(time.Second, StateHalfOpen),
				allow(true, StateHalfOpen),
				rec(false, StateStuckOpen), // open #2: latched
				tick(time.Hour, StateStuckOpen),
				allow(false, StateStuckOpen),
			},
		},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			clk := newManualClock()
			cfg := tc.cfg
			cfg.Clock = clk.Now
			b := NewBreaker("GaussianBlur", "neon", cfg, nil)
			for i, s := range tc.steps {
				if s.advance > 0 {
					clk.Advance(s.advance)
				}
				switch {
				case s.record != nil:
					b.Record(*s.record)
				case s.allow != nil:
					if got := b.Allow(); got != *s.allow {
						t.Fatalf("step %d: Allow() = %v, want %v", i, got, *s.allow)
					}
				}
				if got := b.State(); got != s.want {
					t.Fatalf("step %d: state = %v, want %v", i, got, s.want)
				}
			}
		})
	}
}

// TestBreakerClosingClearsWindow: after a close, the pre-trip failures must
// not count against the fresh window.
func TestBreakerClosingClearsWindow(t *testing.T) {
	clk := newManualClock()
	b := NewBreaker("k", "i", BreakerConfig{
		Window: 8, MinSamples: 2, FailureRate: 0.5, OpenFor: time.Second, Clock: clk.Now,
	}, nil)
	b.Record(false)
	b.Record(false)
	if b.State() != StateOpen {
		t.Fatal("breaker should have tripped")
	}
	clk.Advance(time.Second)
	if !b.Allow() {
		t.Fatal("probe denied")
	}
	b.Record(true)
	if b.State() != StateClosed {
		t.Fatal("clean probe should close")
	}
	// One failure in a fresh window: 1/1 = 100% but below MinSamples... so
	// add one success first; 1 failure / 2 samples = 50% would re-trip.
	// The point: the two pre-trip failures must be gone, so one success +
	// one failure is exactly at the rate and trips — but three successes
	// then one failure (1/4 = 25%) must not.
	b.Record(true)
	b.Record(true)
	b.Record(true)
	b.Record(false)
	if got := b.State(); got != StateClosed {
		t.Fatalf("stale failures leaked into the new window: %v", got)
	}
}

// TestBreakerMetrics: transitions must surface in the registry counters,
// the state gauge, and an outage span.
func TestBreakerMetrics(t *testing.T) {
	clk := newManualClock()
	reg := obs.NewRegistry()
	b := NewBreaker("GaussianBlur", "neon", BreakerConfig{
		Window: 4, MinSamples: 2, FailureRate: 0.5, OpenFor: time.Second, Clock: clk.Now,
	}, reg)
	b.Record(false)
	b.Record(false)
	clk.Advance(time.Second)
	if !b.Allow() {
		t.Fatal("probe denied")
	}
	b.Record(true)

	snap := reg.Snapshot()
	for _, series := range []string{
		`breaker_transitions_total{from="closed",isa="neon",kernel="GaussianBlur",to="open"}`,
		`breaker_transitions_total{from="open",isa="neon",kernel="GaussianBlur",to="half-open"}`,
		`breaker_transitions_total{from="half-open",isa="neon",kernel="GaussianBlur",to="closed"}`,
	} {
		if snap[series] != 1 {
			t.Errorf("%s = %v, want 1\nsnapshot: %v", series, snap[series], snap)
		}
	}
	if g := snap[`breaker_state{isa="neon",kernel="GaussianBlur"}`]; g != float64(StateClosed) {
		t.Errorf("breaker_state gauge = %v, want %v", g, float64(StateClosed))
	}
	var outage bool
	for _, sp := range reg.Spans() {
		if sp.Name == "breaker.open" {
			outage = true
			if res := sp.Attrs["resolution"]; res != "closed" {
				t.Errorf("outage span resolution = %v, want closed", res)
			}
		}
	}
	if !outage {
		t.Error("no breaker.open span recorded")
	}
}

// TestBreakerSetConcurrent hammers one set from many goroutines under
// -race: Allow/Record/State/Snapshot must be data-race free and the
// breaker must end in a legal state.
func TestBreakerSetConcurrent(t *testing.T) {
	clk := newManualClock()
	s := NewBreakerSet(BreakerConfig{
		Window: 16, MinSamples: 4, FailureRate: 0.5,
		OpenFor: time.Millisecond, Clock: clk.Now,
	}, obs.NewRegistry())
	var wg sync.WaitGroup
	for g := 0; g < 8; g++ {
		wg.Add(1)
		go func(g int) {
			defer wg.Done()
			kernel := "GaussianBlur"
			if g%2 == 1 {
				kernel = "Threshold"
			}
			for i := 0; i < 500; i++ {
				if s.Allow(kernel, "neon") {
					s.Record(kernel, "neon", i%3 != 0)
				}
				if i%50 == 0 {
					clk.Advance(time.Millisecond)
					s.Snapshot()
				}
			}
		}(g)
	}
	wg.Wait()
	for k, st := range s.Snapshot() {
		if st < StateClosed || st > StateStuckOpen {
			t.Errorf("%s: illegal state %d", k, st)
		}
	}
	if keys := s.Keys(); len(keys) != 2 {
		t.Errorf("Keys() = %v, want 2 entries", keys)
	}
}
