// Package cache implements a set-associative, multi-level, write-back
// write-allocate cache hierarchy simulator with LRU replacement.
//
// The timing model replays each benchmark pass's memory access streams
// through a hierarchy configured from Table I's cache columns to estimate
// DRAM traffic per pixel — which is what separates compute-bound from
// bandwidth-bound kernels and underlies the paper's observation that the
// same NEON code speeds up very differently across SoCs (ODROID-X vs
// Tegra 3).
package cache

import "fmt"

// Config describes one cache level.
type Config struct {
	Name      string
	SizeBytes int
	LineBytes int
	Ways      int
}

// Validate checks geometric consistency.
func (c Config) Validate() error {
	if c.SizeBytes <= 0 || c.LineBytes <= 0 || c.Ways <= 0 {
		return fmt.Errorf("cache: non-positive geometry %+v", c)
	}
	if c.LineBytes&(c.LineBytes-1) != 0 {
		return fmt.Errorf("cache: line size %d not a power of two", c.LineBytes)
	}
	lines := c.SizeBytes / c.LineBytes
	if lines*c.LineBytes != c.SizeBytes {
		return fmt.Errorf("cache: size %d not a multiple of line %d", c.SizeBytes, c.LineBytes)
	}
	if lines%c.Ways != 0 {
		return fmt.Errorf("cache: %d lines not divisible by %d ways", lines, c.Ways)
	}
	sets := lines / c.Ways
	if sets&(sets-1) != 0 {
		return fmt.Errorf("cache: set count %d not a power of two", sets)
	}
	return nil
}

type line struct {
	tag   uint64
	valid bool
	dirty bool
	lru   uint64
}

// Level is one cache level.
type Level struct {
	cfg     Config
	sets    [][]line
	setMask uint64
	shift   uint
	tick    uint64

	Hits   uint64
	Misses uint64
}

func newLevel(cfg Config) (*Level, error) {
	if err := cfg.Validate(); err != nil {
		return nil, err
	}
	nsets := cfg.SizeBytes / cfg.LineBytes / cfg.Ways
	l := &Level{cfg: cfg, setMask: uint64(nsets - 1)}
	for s := 1; s < cfg.LineBytes; s <<= 1 {
		l.shift++
	}
	l.sets = make([][]line, nsets)
	for i := range l.sets {
		l.sets[i] = make([]line, cfg.Ways)
	}
	return l, nil
}

// access looks up a line address; on miss it allocates with LRU eviction
// and reports whether a dirty victim was written back.
func (l *Level) access(lineAddr uint64, write bool) (hit, writeback bool, victim uint64) {
	l.tick++
	set := l.sets[lineAddr&l.setMask]
	tag := lineAddr >> 0 // full line address as tag; set index implicit
	for i := range set {
		if set[i].valid && set[i].tag == tag {
			set[i].lru = l.tick
			if write {
				set[i].dirty = true
			}
			l.Hits++
			return true, false, 0
		}
	}
	l.Misses++
	// Choose victim: invalid first, else least recently used.
	vi := 0
	for i := range set {
		if !set[i].valid {
			vi = i
			break
		}
		if set[i].lru < set[vi].lru {
			vi = i
		}
	}
	wb := set[vi].valid && set[vi].dirty
	victimAddr := set[vi].tag
	set[vi] = line{tag: tag, valid: true, dirty: write, lru: l.tick}
	return false, wb, victimAddr
}

// Hierarchy is an ordered list of levels backed by memory.
type Hierarchy struct {
	levels []*Level

	// DRAM traffic in lines.
	MemReads  uint64 // lines fetched from memory
	MemWrites uint64 // dirty lines written back to memory
}

// NewHierarchy builds a hierarchy, L1 first.
func NewHierarchy(cfgs ...Config) (*Hierarchy, error) {
	if len(cfgs) == 0 {
		return nil, fmt.Errorf("cache: empty hierarchy")
	}
	h := &Hierarchy{}
	lineBytes := cfgs[0].LineBytes
	for _, c := range cfgs {
		if c.LineBytes != lineBytes {
			return nil, fmt.Errorf("cache: mixed line sizes unsupported (%d vs %d)", c.LineBytes, lineBytes)
		}
		l, err := newLevel(c)
		if err != nil {
			return nil, err
		}
		h.levels = append(h.levels, l)
	}
	return h, nil
}

// LineBytes returns the hierarchy's line size.
func (h *Hierarchy) LineBytes() int { return h.levels[0].cfg.LineBytes }

// Levels returns the cache levels, L1 first.
func (h *Hierarchy) Levels() []*Level { return h.levels }

// Access performs a byte-granular access of the given size, touching every
// line it spans. It returns the deepest level index that had to be
// consulted (0 for an L1 hit, len(levels) for memory).
func (h *Hierarchy) Access(addr uint64, size int, write bool) int {
	if size <= 0 {
		size = 1
	}
	lb := uint64(h.LineBytes())
	first := addr / lb
	last := (addr + uint64(size) - 1) / lb
	deepest := 0
	for la := first; la <= last; la++ {
		d := h.accessLine(la, write)
		if d > deepest {
			deepest = d
		}
	}
	return deepest
}

func (h *Hierarchy) accessLine(lineAddr uint64, write bool) int {
	for i, l := range h.levels {
		hit, wb, victim := l.access(lineAddr, write && i == 0)
		if wb {
			// Dirty victim propagates to the next level down (or memory).
			h.writebackFrom(i+1, victim)
		}
		if hit {
			return i
		}
	}
	h.MemReads++
	return len(h.levels)
}

func (h *Hierarchy) writebackFrom(level int, lineAddr uint64) {
	if level >= len(h.levels) {
		h.MemWrites++
		return
	}
	l := h.levels[level]
	_, wb, victim := l.access(lineAddr, true)
	if wb {
		h.writebackFrom(level+1, victim)
	}
}

// DRAMBytes returns total bytes exchanged with memory.
func (h *Hierarchy) DRAMBytes() uint64 {
	return (h.MemReads + h.MemWrites) * uint64(h.LineBytes())
}

// Reset clears all state and counters.
func (h *Hierarchy) Reset() {
	for _, l := range h.levels {
		for i := range l.sets {
			for j := range l.sets[i] {
				l.sets[i][j] = line{}
			}
		}
		l.Hits, l.Misses, l.tick = 0, 0, 0
	}
	h.MemReads, h.MemWrites = 0, 0
}
