package cache

import "testing"

func benchHierarchy(b *testing.B) *Hierarchy {
	h, err := NewHierarchy(
		Config{Name: "L1", SizeBytes: 32 * 1024, LineBytes: 64, Ways: 4},
		Config{Name: "L2", SizeBytes: 1024 * 1024, LineBytes: 64, Ways: 8},
	)
	if err != nil {
		b.Fatal(err)
	}
	return h
}

// BenchmarkStreamingAccess measures the simulator on the benchmark
// harness's dominant pattern: sequential byte-granular streaming.
func BenchmarkStreamingAccess(b *testing.B) {
	h := benchHierarchy(b)
	b.SetBytes(1)
	for i := 0; i < b.N; i++ {
		h.Access(uint64(i), 1, false)
	}
}

// BenchmarkSevenTapRowAccess replays the Gaussian vertical pass pattern:
// seven row streams touched per output pixel.
func BenchmarkSevenTapRowAccess(b *testing.B) {
	h := benchHierarchy(b)
	const w = 3264
	for i := 0; i < b.N; i++ {
		x := i % w
		for k := 0; k < 7; k++ {
			h.Access(uint64(k*w+x), 1, false)
		}
		h.Access(uint64(1<<24+x), 1, true)
	}
}
