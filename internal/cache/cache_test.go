package cache

import (
	"testing"
	"testing/quick"
)

func small() Config { return Config{Name: "L1", SizeBytes: 1024, LineBytes: 64, Ways: 2} }

func TestConfigValidation(t *testing.T) {
	bad := []Config{
		{SizeBytes: 0, LineBytes: 64, Ways: 1},
		{SizeBytes: 1024, LineBytes: 0, Ways: 1},
		{SizeBytes: 1024, LineBytes: 64, Ways: 0},
		{SizeBytes: 1024, LineBytes: 48, Ways: 1},   // non power-of-two line
		{SizeBytes: 1000, LineBytes: 64, Ways: 1},   // size not multiple of line
		{SizeBytes: 1024, LineBytes: 64, Ways: 5},   // lines not divisible by ways
		{SizeBytes: 64 * 3, LineBytes: 64, Ways: 1}, // sets not power of two
	}
	for i, c := range bad {
		if c.Validate() == nil {
			t.Errorf("case %d should fail: %+v", i, c)
		}
	}
	if err := small().Validate(); err != nil {
		t.Fatal(err)
	}
	if _, err := NewHierarchy(); err == nil {
		t.Error("empty hierarchy should fail")
	}
	if _, err := NewHierarchy(small(), Config{Name: "L2", SizeBytes: 4096, LineBytes: 32, Ways: 4}); err == nil {
		t.Error("mixed line sizes should fail")
	}
	if _, err := NewHierarchy(Config{SizeBytes: 1000, LineBytes: 64, Ways: 1}); err == nil {
		t.Error("invalid level should fail")
	}
}

func TestColdMissThenHit(t *testing.T) {
	h, err := NewHierarchy(small())
	if err != nil {
		t.Fatal(err)
	}
	if d := h.Access(0, 4, false); d != 1 {
		t.Fatalf("cold access should go to memory, got level %d", d)
	}
	if d := h.Access(4, 4, false); d != 0 {
		t.Fatalf("same-line access should hit L1, got level %d", d)
	}
	if h.MemReads != 1 {
		t.Fatalf("mem reads: %d", h.MemReads)
	}
	l1 := h.Levels()[0]
	if l1.Hits != 1 || l1.Misses != 1 {
		t.Fatalf("hits/misses: %d/%d", l1.Hits, l1.Misses)
	}
}

func TestAccessSpanningLines(t *testing.T) {
	h, _ := NewHierarchy(small())
	// A 16-byte access at offset 56 spans two 64-byte lines.
	h.Access(56, 16, false)
	if h.MemReads != 2 {
		t.Fatalf("spanning access should fetch 2 lines, got %d", h.MemReads)
	}
	if h.Access(0, 0, false) != 0 { // size 0 clamps to 1, same line hits
		t.Fatal("zero-size access handling")
	}
}

func TestLRUEviction(t *testing.T) {
	// 2-way, 8 sets of 64B lines. Three lines mapping to the same set:
	// set index = lineAddr & 7, so addresses 0, 8*64, 16*64 share set 0.
	h, _ := NewHierarchy(small())
	a, b, c := uint64(0), uint64(8*64), uint64(16*64)
	h.Access(a, 1, false) // miss
	h.Access(b, 1, false) // miss
	h.Access(a, 1, false) // hit, a is MRU
	h.Access(c, 1, false) // miss, evicts b (LRU)
	if d := h.Access(a, 1, false); d != 0 {
		t.Error("a should still be resident")
	}
	if d := h.Access(b, 1, false); d != 1 {
		t.Error("b should have been evicted")
	}
}

func TestWritebackPropagation(t *testing.T) {
	h, _ := NewHierarchy(small())
	// Dirty a line, then evict it by filling its set.
	h.Access(0, 4, true)
	h.Access(8*64, 1, false)
	h.Access(16*64, 1, false) // evicts line 0 (dirty) -> memory writeback
	if h.MemWrites != 1 {
		t.Fatalf("writebacks: %d", h.MemWrites)
	}
	if h.DRAMBytes() != (h.MemReads+h.MemWrites)*64 {
		t.Fatal("DRAMBytes accounting")
	}
}

func TestTwoLevelHierarchy(t *testing.T) {
	l1 := Config{Name: "L1", SizeBytes: 512, LineBytes: 64, Ways: 1}
	l2 := Config{Name: "L2", SizeBytes: 4096, LineBytes: 64, Ways: 4}
	h, err := NewHierarchy(l1, l2)
	if err != nil {
		t.Fatal(err)
	}
	// Touch 16 distinct lines: more than L1 (8 lines) but within L2 (64).
	for i := 0; i < 16; i++ {
		h.Access(uint64(i*64), 1, false)
	}
	if h.MemReads != 16 {
		t.Fatalf("compulsory misses: %d", h.MemReads)
	}
	// Second sweep: L1 capacity-misses but L2 hits; no new memory reads.
	for i := 0; i < 16; i++ {
		if d := h.Access(uint64(i*64), 1, false); d == 2 {
			t.Fatalf("line %d went to memory on re-walk", i)
		}
	}
	if h.MemReads != 16 {
		t.Fatalf("re-walk should not add memory reads: %d", h.MemReads)
	}
}

func TestStreamingTrafficMatchesFootprint(t *testing.T) {
	// Streaming a large buffer once: DRAM read bytes == footprint.
	h, _ := NewHierarchy(small())
	const n = 1 << 16
	for a := 0; a < n; a += 4 {
		h.Access(uint64(a), 4, false)
	}
	if got := h.MemReads * 64; got != n {
		t.Fatalf("streamed %d bytes, fetched %d", n, got)
	}
}

func TestReset(t *testing.T) {
	h, _ := NewHierarchy(small())
	h.Access(0, 4, true)
	h.Reset()
	if h.MemReads != 0 || h.MemWrites != 0 || h.Levels()[0].Hits != 0 || h.Levels()[0].Misses != 0 {
		t.Fatal("reset did not clear counters")
	}
	if d := h.Access(0, 4, false); d != 1 {
		t.Fatal("reset did not clear contents")
	}
	if h.LineBytes() != 64 {
		t.Fatal("line bytes")
	}
}

// Property: hits + misses == total line touches, and memory reads never
// exceed misses of the last level.
func TestQuickAccountingInvariants(t *testing.T) {
	f := func(addrs []uint16, writes []bool) bool {
		h, _ := NewHierarchy(small(), Config{Name: "L2", SizeBytes: 8192, LineBytes: 64, Ways: 4})
		var touches uint64
		for i, a := range addrs {
			w := i < len(writes) && writes[i]
			h.Access(uint64(a), 1, w)
			touches++
		}
		l1 := h.Levels()[0]
		l2 := h.Levels()[1]
		if l1.Hits+l1.Misses < touches { // >= because writebacks touch L2 only
			return false
		}
		return h.MemReads <= l2.Misses
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 50}); err != nil {
		t.Error(err)
	}
}

// Property: re-running any access trace after Reset gives identical
// counters (determinism).
func TestQuickDeterminism(t *testing.T) {
	f := func(addrs []uint16) bool {
		h, _ := NewHierarchy(small())
		run := func() (uint64, uint64) {
			for _, a := range addrs {
				h.Access(uint64(a), 2, a%3 == 0)
			}
			return h.MemReads, h.MemWrites
		}
		r1, w1 := run()
		h.Reset()
		r2, w2 := run()
		return r1 == r2 && w1 == w2
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 50}); err != nil {
		t.Error(err)
	}
}
