package vec

import (
	"math"
	"testing"
	"testing/quick"
)

func TestLaneRoundTripsV128(t *testing.T) {
	var v V128
	for i := 0; i < 16; i++ {
		v.SetU8(i, uint8(i*7+3))
	}
	for i := 0; i < 16; i++ {
		if v.U8(i) != uint8(i*7+3) {
			t.Fatalf("u8 lane %d: got %d", i, v.U8(i))
		}
	}
	for i := 0; i < 8; i++ {
		v.SetI16(i, int16(-1000*i+5))
	}
	for i := 0; i < 8; i++ {
		if v.I16(i) != int16(-1000*i+5) {
			t.Fatalf("i16 lane %d: got %d", i, v.I16(i))
		}
	}
	for i := 0; i < 4; i++ {
		v.SetF32(i, float32(i)*1.5-2)
	}
	for i := 0; i < 4; i++ {
		if v.F32(i) != float32(i)*1.5-2 {
			t.Fatalf("f32 lane %d: got %v", i, v.F32(i))
		}
	}
	for i := 0; i < 2; i++ {
		v.SetF64(i, float64(i)+0.25)
	}
	for i := 0; i < 2; i++ {
		if v.F64(i) != float64(i)+0.25 {
			t.Fatalf("f64 lane %d: got %v", i, v.F64(i))
		}
	}
	v.SetI64(0, -42)
	v.SetU64(1, 1<<40)
	if v.I64(0) != -42 || v.U64(1) != 1<<40 {
		t.Fatalf("64-bit lanes: got %d %d", v.I64(0), v.U64(1))
	}
}

func TestLaneRoundTripsV64(t *testing.T) {
	var d V64
	for i := 0; i < 8; i++ {
		d.SetI8(i, int8(-i*3))
	}
	for i := 0; i < 8; i++ {
		if d.I8(i) != int8(-i*3) {
			t.Fatalf("i8 lane %d: got %d", i, d.I8(i))
		}
	}
	for i := 0; i < 4; i++ {
		d.SetU16(i, uint16(i*1000))
	}
	for i := 0; i < 4; i++ {
		if d.U16(i) != uint16(i*1000) {
			t.Fatalf("u16 lane %d: got %d", i, d.U16(i))
		}
	}
	d.SetF32(0, 3.5)
	d.SetF32(1, -7.25)
	if d.F32(0) != 3.5 || d.F32(1) != -7.25 {
		t.Fatalf("f32 lanes: %v %v", d.F32(0), d.F32(1))
	}
	d.SetI64(-99)
	if d.I64() != -99 {
		t.Fatalf("i64: %d", d.I64())
	}
}

func TestLittleEndianLayout(t *testing.T) {
	// Writing a 32-bit lane must land its least-significant byte at the
	// lowest address, as on real ARM/x86.
	var v V128
	v.SetU32(0, 0x04030201)
	for i := 0; i < 4; i++ {
		if v.U8(i) != uint8(i+1) {
			t.Fatalf("byte %d: got %#x", i, v.U8(i))
		}
	}
	// Reinterpreting lanes must match hardware semantics: two u16 lanes
	// read from one u32 write.
	if v.U16(0) != 0x0201 || v.U16(1) != 0x0403 {
		t.Fatalf("u16 reinterpret: %#x %#x", v.U16(0), v.U16(1))
	}
}

func TestCombineLowHigh(t *testing.T) {
	lo := FromI16x4([4]int16{1, 2, 3, 4})
	hi := FromI16x4([4]int16{5, 6, 7, 8})
	q := Combine(lo, hi)
	want := [8]int16{1, 2, 3, 4, 5, 6, 7, 8}
	if q.ToI16x8() != want {
		t.Fatalf("combine: got %v", q.ToI16x8())
	}
	if q.Low() != lo || q.High() != hi {
		t.Fatalf("low/high roundtrip failed")
	}
}

func TestConstructorsExtractors(t *testing.T) {
	u8 := [16]uint8{0, 1, 2, 3, 4, 5, 6, 7, 8, 9, 10, 11, 12, 13, 14, 15}
	if FromU8x16(u8).ToU8x16() != u8 {
		t.Error("u8x16 roundtrip")
	}
	i8 := [16]int8{-8, -7, -6, -5, -4, -3, -2, -1, 0, 1, 2, 3, 4, 5, 6, 7}
	if FromI8x16(i8).ToI8x16() != i8 {
		t.Error("i8x16 roundtrip")
	}
	u16 := [8]uint16{0, 1, 65535, 3, 400, 5000, 60000, 7}
	if FromU16x8(u16).ToU16x8() != u16 {
		t.Error("u16x8 roundtrip")
	}
	i16 := [8]int16{-32768, 32767, 0, -1, 1, 100, -100, 9}
	if FromI16x8(i16).ToI16x8() != i16 {
		t.Error("i16x8 roundtrip")
	}
	u32 := [4]uint32{0, math.MaxUint32, 7, 1 << 31}
	if FromU32x4(u32).ToU32x4() != u32 {
		t.Error("u32x4 roundtrip")
	}
	i32 := [4]int32{math.MinInt32, math.MaxInt32, -1, 1}
	if FromI32x4(i32).ToI32x4() != i32 {
		t.Error("i32x4 roundtrip")
	}
	f32 := [4]float32{1.5, -2.25, 0, 1e20}
	if FromF32x4(f32).ToF32x4() != f32 {
		t.Error("f32x4 roundtrip")
	}
	f64 := [2]float64{math.Pi, -1e-300}
	if FromF64x2(f64).ToF64x2() != f64 {
		t.Error("f64x2 roundtrip")
	}
	i64 := [2]int64{math.MinInt64, math.MaxInt64}
	if FromI64x2(i64).ToI64x2() != i64 {
		t.Error("i64x2 roundtrip")
	}
	u64 := [2]uint64{0, math.MaxUint64}
	if FromU64x2(u64).ToU32x4() == ([4]uint32{}) {
		_ = u64 // layout checked below
	}
	d16 := [4]int16{-1, 2, -3, 4}
	if FromI16x4(d16).ToI16x4() != d16 {
		t.Error("i16x4 roundtrip")
	}
	d8 := [8]int8{-1, 2, -3, 4, -5, 6, -7, 8}
	if FromI8x8(d8).ToI8x8() != d8 {
		t.Error("i8x8 roundtrip")
	}
	du8 := [8]uint8{1, 2, 3, 4, 5, 6, 7, 8}
	if FromU8x8(du8).ToU8x8() != du8 {
		t.Error("u8x8 roundtrip")
	}
	du16 := [4]uint16{1, 2, 3, 65535}
	if FromU16x4(du16).ToU16x4() != du16 {
		t.Error("u16x4 roundtrip")
	}
	di32 := [2]int32{math.MinInt32, 77}
	if FromI32x2(di32).ToI32x2() != di32 {
		t.Error("i32x2 roundtrip")
	}
	du32 := [2]uint32{4e9, 1}
	if FromU32x2(du32).ToU32x2() != du32 {
		t.Error("u32x2 roundtrip")
	}
	df32 := [2]float32{-1.5, 2.5}
	if FromF32x2(df32).ToF32x2() != df32 {
		t.Error("f32x2 roundtrip")
	}
}

func TestLoadStore(t *testing.T) {
	buf := make([]byte, 32)
	for i := range buf {
		buf[i] = byte(i)
	}
	v := LoadV128(buf[4:])
	if v.U8(0) != 4 || v.U8(15) != 19 {
		t.Fatalf("LoadV128: %v", v)
	}
	out := make([]byte, 16)
	StoreV128(out, v)
	for i := range out {
		if out[i] != byte(i+4) {
			t.Fatalf("StoreV128 byte %d: %d", i, out[i])
		}
	}
	d := LoadV64(buf[8:])
	if d.U8(0) != 8 || d.U8(7) != 15 {
		t.Fatalf("LoadV64: %v", d)
	}
	out8 := make([]byte, 8)
	StoreV64(out8, d)
	for i := range out8 {
		if out8[i] != byte(i+8) {
			t.Fatalf("StoreV64 byte %d: %d", i, out8[i])
		}
	}
}

func TestLoadPanicsOnShortBuffer(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("expected panic on short buffer")
		}
	}()
	LoadV128(make([]byte, 15))
}

func TestBitwise(t *testing.T) {
	a := FromU32x4([4]uint32{0xFF00FF00, 0x0F0F0F0F, 0, 0xFFFFFFFF})
	b := FromU32x4([4]uint32{0x00FF00FF, 0xF0F0F0F0, 0xFFFFFFFF, 0xFFFFFFFF})
	if And(a, b).ToU32x4() != ([4]uint32{0, 0, 0, 0xFFFFFFFF}) {
		t.Error("And")
	}
	if Or(a, b).ToU32x4() != ([4]uint32{0xFFFFFFFF, 0xFFFFFFFF, 0xFFFFFFFF, 0xFFFFFFFF}) {
		t.Error("Or")
	}
	if Xor(a, b).ToU32x4() != ([4]uint32{0xFFFFFFFF, 0xFFFFFFFF, 0xFFFFFFFF, 0}) {
		t.Error("Xor")
	}
	if AndNot(a, b).ToU32x4() != ([4]uint32{0x00FF00FF, 0xF0F0F0F0, 0xFFFFFFFF, 0}) {
		t.Error("AndNot")
	}
	if Not(Zero()) != Ones() {
		t.Error("Not(0) != ones")
	}
}

func TestSelect(t *testing.T) {
	mask := FromU32x4([4]uint32{0xFFFFFFFF, 0, 0xFFFF0000, 0})
	a := FromU32x4([4]uint32{1, 2, 0xAAAA5555, 4})
	b := FromU32x4([4]uint32{10, 20, 0x1111BBBB, 40})
	got := Select(mask, a, b)
	want := [4]uint32{1, 20, 0xAAAABBBB, 40}
	if got.ToU32x4() != want {
		t.Fatalf("Select: got %v want %v", got.ToU32x4(), want)
	}
}

func TestString(t *testing.T) {
	v := Zero()
	v.SetU8(0, 0xAB)
	s := v.String()
	if len(s) == 0 || s[:5] != "V128{" {
		t.Fatalf("String: %q", s)
	}
	d := V64{}
	if d.String()[:4] != "V64{" {
		t.Fatalf("V64 String: %q", d.String())
	}
}

// Property: bitwise identities hold for arbitrary registers.
func TestQuickBitwiseIdentities(t *testing.T) {
	f := func(ab, bb [16]byte) bool {
		a, b := V128(ab), V128(bb)
		if Xor(a, a) != Zero() {
			return false
		}
		if And(a, Ones()) != a || Or(a, Zero()) != a {
			return false
		}
		// De Morgan.
		if Not(And(a, b)) != Or(Not(a), Not(b)) {
			return false
		}
		// vbsl with all-ones mask selects a; all-zeroes selects b.
		return Select(Ones(), a, b) == a && Select(Zero(), a, b) == b
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

// Property: Combine/Low/High are inverse bijections.
func TestQuickCombineRoundTrip(t *testing.T) {
	f := func(lo, hi [8]byte) bool {
		q := Combine(V64(lo), V64(hi))
		return q.Low() == V64(lo) && q.High() == V64(hi)
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

// Property: store then load is the identity.
func TestQuickLoadStoreRoundTrip(t *testing.T) {
	f := func(b [16]byte) bool {
		buf := make([]byte, 16)
		StoreV128(buf, V128(b))
		return LoadV128(buf) == V128(b)
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}
