// Package vec provides the register value model shared by the NEON and SSE2
// intrinsic emulation layers.
//
// A V128 corresponds to an SSE XMM register or a NEON quad-word Q register;
// a V64 corresponds to an MMX register or a NEON double-word D register.
// Lanes are stored little-endian, exactly as on both target architectures,
// so reinterpreting bit patterns between element types behaves as it does in
// hardware (e.g. NEON vreinterpret, SSE2 casts).
package vec

import (
	"encoding/binary"
	"fmt"
	"math"
	"strings"
)

// V128 is a 128-bit SIMD register value (XMM / NEON Q register).
type V128 [16]byte

// V64 is a 64-bit SIMD register value (MMX / NEON D register).
type V64 [8]byte

// --- V128 lane accessors ---

// U8 returns unsigned byte lane i (0..15).
func (v V128) U8(i int) uint8 { return v[i] }

// SetU8 sets unsigned byte lane i.
func (v *V128) SetU8(i int, x uint8) { v[i] = x }

// I8 returns signed byte lane i.
func (v V128) I8(i int) int8 { return int8(v[i]) }

// SetI8 sets signed byte lane i.
func (v *V128) SetI8(i int, x int8) { v[i] = byte(x) }

// U16 returns unsigned 16-bit lane i (0..7).
func (v V128) U16(i int) uint16 { return binary.LittleEndian.Uint16(v[2*i:]) }

// SetU16 sets unsigned 16-bit lane i.
func (v *V128) SetU16(i int, x uint16) { binary.LittleEndian.PutUint16(v[2*i:], x) }

// I16 returns signed 16-bit lane i.
func (v V128) I16(i int) int16 { return int16(v.U16(i)) }

// SetI16 sets signed 16-bit lane i.
func (v *V128) SetI16(i int, x int16) { v.SetU16(i, uint16(x)) }

// U32 returns unsigned 32-bit lane i (0..3).
func (v V128) U32(i int) uint32 { return binary.LittleEndian.Uint32(v[4*i:]) }

// SetU32 sets unsigned 32-bit lane i.
func (v *V128) SetU32(i int, x uint32) { binary.LittleEndian.PutUint32(v[4*i:], x) }

// I32 returns signed 32-bit lane i.
func (v V128) I32(i int) int32 { return int32(v.U32(i)) }

// SetI32 sets signed 32-bit lane i.
func (v *V128) SetI32(i int, x int32) { v.SetU32(i, uint32(x)) }

// U64 returns unsigned 64-bit lane i (0..1).
func (v V128) U64(i int) uint64 { return binary.LittleEndian.Uint64(v[8*i:]) }

// SetU64 sets unsigned 64-bit lane i.
func (v *V128) SetU64(i int, x uint64) { binary.LittleEndian.PutUint64(v[8*i:], x) }

// I64 returns signed 64-bit lane i.
func (v V128) I64(i int) int64 { return int64(v.U64(i)) }

// SetI64 sets signed 64-bit lane i.
func (v *V128) SetI64(i int, x int64) { v.SetU64(i, uint64(x)) }

// F32 returns 32-bit float lane i (0..3).
func (v V128) F32(i int) float32 { return math.Float32frombits(v.U32(i)) }

// SetF32 sets 32-bit float lane i.
func (v *V128) SetF32(i int, x float32) { v.SetU32(i, math.Float32bits(x)) }

// F64 returns 64-bit float lane i (0..1).
func (v V128) F64(i int) float64 { return math.Float64frombits(v.U64(i)) }

// SetF64 sets 64-bit float lane i.
func (v *V128) SetF64(i int, x float64) { v.SetU64(i, math.Float64bits(x)) }

// Low returns the low 64 bits as a V64 (NEON: the D register aliasing the
// low half of a Q register).
func (v V128) Low() V64 {
	var d V64
	copy(d[:], v[:8])
	return d
}

// High returns the high 64 bits as a V64.
func (v V128) High() V64 {
	var d V64
	copy(d[:], v[8:])
	return d
}

// Combine builds a V128 from two V64 halves (NEON vcombine).
func Combine(lo, hi V64) V128 {
	var q V128
	copy(q[:8], lo[:])
	copy(q[8:], hi[:])
	return q
}

// --- V64 lane accessors ---

// U8 returns unsigned byte lane i (0..7).
func (v V64) U8(i int) uint8 { return v[i] }

// SetU8 sets unsigned byte lane i.
func (v *V64) SetU8(i int, x uint8) { v[i] = x }

// I8 returns signed byte lane i.
func (v V64) I8(i int) int8 { return int8(v[i]) }

// SetI8 sets signed byte lane i.
func (v *V64) SetI8(i int, x int8) { v[i] = byte(x) }

// U16 returns unsigned 16-bit lane i (0..3).
func (v V64) U16(i int) uint16 { return binary.LittleEndian.Uint16(v[2*i:]) }

// SetU16 sets unsigned 16-bit lane i.
func (v *V64) SetU16(i int, x uint16) { binary.LittleEndian.PutUint16(v[2*i:], x) }

// I16 returns signed 16-bit lane i.
func (v V64) I16(i int) int16 { return int16(v.U16(i)) }

// SetI16 sets signed 16-bit lane i.
func (v *V64) SetI16(i int, x int16) { v.SetU16(i, uint16(x)) }

// U32 returns unsigned 32-bit lane i (0..1).
func (v V64) U32(i int) uint32 { return binary.LittleEndian.Uint32(v[4*i:]) }

// SetU32 sets unsigned 32-bit lane i.
func (v *V64) SetU32(i int, x uint32) { binary.LittleEndian.PutUint32(v[4*i:], x) }

// I32 returns signed 32-bit lane i.
func (v V64) I32(i int) int32 { return int32(v.U32(i)) }

// SetI32 sets signed 32-bit lane i.
func (v *V64) SetI32(i int, x int32) { v.SetU32(i, uint32(x)) }

// U64 returns the whole register as an unsigned 64-bit value.
func (v V64) U64() uint64 { return binary.LittleEndian.Uint64(v[:]) }

// SetU64 sets the whole register.
func (v *V64) SetU64(x uint64) { binary.LittleEndian.PutUint64(v[:], x) }

// I64 returns the whole register as a signed 64-bit value.
func (v V64) I64() int64 { return int64(v.U64()) }

// SetI64 sets the whole register from a signed value.
func (v *V64) SetI64(x int64) { v.SetU64(uint64(x)) }

// F32 returns 32-bit float lane i (0..1).
func (v V64) F32(i int) float32 { return math.Float32frombits(v.U32(i)) }

// SetF32 sets 32-bit float lane i.
func (v *V64) SetF32(i int, x float32) { v.SetU32(i, math.Float32bits(x)) }

// --- constructors / extractors ---

// FromU8x16 packs sixteen bytes into a V128.
func FromU8x16(x [16]uint8) V128 { return V128(x) }

// FromI8x16 packs sixteen signed bytes into a V128.
func FromI8x16(x [16]int8) V128 {
	var v V128
	for i, e := range x {
		v.SetI8(i, e)
	}
	return v
}

// FromU16x8 packs eight uint16 lanes into a V128.
func FromU16x8(x [8]uint16) V128 {
	var v V128
	for i, e := range x {
		v.SetU16(i, e)
	}
	return v
}

// FromI16x8 packs eight int16 lanes into a V128.
func FromI16x8(x [8]int16) V128 {
	var v V128
	for i, e := range x {
		v.SetI16(i, e)
	}
	return v
}

// FromU32x4 packs four uint32 lanes into a V128.
func FromU32x4(x [4]uint32) V128 {
	var v V128
	for i, e := range x {
		v.SetU32(i, e)
	}
	return v
}

// FromI32x4 packs four int32 lanes into a V128.
func FromI32x4(x [4]int32) V128 {
	var v V128
	for i, e := range x {
		v.SetI32(i, e)
	}
	return v
}

// FromU64x2 packs two uint64 lanes into a V128.
func FromU64x2(x [2]uint64) V128 {
	var v V128
	for i, e := range x {
		v.SetU64(i, e)
	}
	return v
}

// FromI64x2 packs two int64 lanes into a V128.
func FromI64x2(x [2]int64) V128 {
	var v V128
	for i, e := range x {
		v.SetI64(i, e)
	}
	return v
}

// FromF32x4 packs four float32 lanes into a V128.
func FromF32x4(x [4]float32) V128 {
	var v V128
	for i, e := range x {
		v.SetF32(i, e)
	}
	return v
}

// FromF64x2 packs two float64 lanes into a V128.
func FromF64x2(x [2]float64) V128 {
	var v V128
	for i, e := range x {
		v.SetF64(i, e)
	}
	return v
}

// ToU8x16 extracts all byte lanes.
func (v V128) ToU8x16() [16]uint8 { return [16]uint8(v) }

// ToI8x16 extracts all signed byte lanes.
func (v V128) ToI8x16() [16]int8 {
	var x [16]int8
	for i := range x {
		x[i] = v.I8(i)
	}
	return x
}

// ToU16x8 extracts all uint16 lanes.
func (v V128) ToU16x8() [8]uint16 {
	var x [8]uint16
	for i := range x {
		x[i] = v.U16(i)
	}
	return x
}

// ToI16x8 extracts all int16 lanes.
func (v V128) ToI16x8() [8]int16 {
	var x [8]int16
	for i := range x {
		x[i] = v.I16(i)
	}
	return x
}

// ToU32x4 extracts all uint32 lanes.
func (v V128) ToU32x4() [4]uint32 {
	var x [4]uint32
	for i := range x {
		x[i] = v.U32(i)
	}
	return x
}

// ToI32x4 extracts all int32 lanes.
func (v V128) ToI32x4() [4]int32 {
	var x [4]int32
	for i := range x {
		x[i] = v.I32(i)
	}
	return x
}

// ToF32x4 extracts all float32 lanes.
func (v V128) ToF32x4() [4]float32 {
	var x [4]float32
	for i := range x {
		x[i] = v.F32(i)
	}
	return x
}

// ToF64x2 extracts both float64 lanes.
func (v V128) ToF64x2() [2]float64 {
	return [2]float64{v.F64(0), v.F64(1)}
}

// ToI64x2 extracts both int64 lanes.
func (v V128) ToI64x2() [2]int64 {
	return [2]int64{v.I64(0), v.I64(1)}
}

// FromU8x8 packs eight bytes into a V64.
func FromU8x8(x [8]uint8) V64 { return V64(x) }

// FromI8x8 packs eight signed bytes into a V64.
func FromI8x8(x [8]int8) V64 {
	var v V64
	for i, e := range x {
		v.SetI8(i, e)
	}
	return v
}

// FromU16x4 packs four uint16 lanes into a V64.
func FromU16x4(x [4]uint16) V64 {
	var v V64
	for i, e := range x {
		v.SetU16(i, e)
	}
	return v
}

// FromI16x4 packs four int16 lanes into a V64.
func FromI16x4(x [4]int16) V64 {
	var v V64
	for i, e := range x {
		v.SetI16(i, e)
	}
	return v
}

// FromU32x2 packs two uint32 lanes into a V64.
func FromU32x2(x [2]uint32) V64 {
	var v V64
	for i, e := range x {
		v.SetU32(i, e)
	}
	return v
}

// FromI32x2 packs two int32 lanes into a V64.
func FromI32x2(x [2]int32) V64 {
	var v V64
	for i, e := range x {
		v.SetI32(i, e)
	}
	return v
}

// FromF32x2 packs two float32 lanes into a V64.
func FromF32x2(x [2]float32) V64 {
	var v V64
	for i, e := range x {
		v.SetF32(i, e)
	}
	return v
}

// ToU8x8 extracts all byte lanes of a V64.
func (v V64) ToU8x8() [8]uint8 { return [8]uint8(v) }

// ToI8x8 extracts all signed byte lanes of a V64.
func (v V64) ToI8x8() [8]int8 {
	var x [8]int8
	for i := range x {
		x[i] = v.I8(i)
	}
	return x
}

// ToU16x4 extracts all uint16 lanes of a V64.
func (v V64) ToU16x4() [4]uint16 {
	var x [4]uint16
	for i := range x {
		x[i] = v.U16(i)
	}
	return x
}

// ToI16x4 extracts all int16 lanes of a V64.
func (v V64) ToI16x4() [4]int16 {
	var x [4]int16
	for i := range x {
		x[i] = v.I16(i)
	}
	return x
}

// ToI32x2 extracts both int32 lanes of a V64.
func (v V64) ToI32x2() [2]int32 {
	return [2]int32{v.I32(0), v.I32(1)}
}

// ToU32x2 extracts both uint32 lanes of a V64.
func (v V64) ToU32x2() [2]uint32 {
	return [2]uint32{v.U32(0), v.U32(1)}
}

// ToF32x2 extracts both float32 lanes of a V64.
func (v V64) ToF32x2() [2]float32 {
	return [2]float32{v.F32(0), v.F32(1)}
}

// --- memory transfers ---

// LoadV128 reads 16 bytes from b (little-endian lane order, as on both ISAs).
// It panics if b is shorter than 16 bytes, like a hardware fault on a bad
// address.
func LoadV128(b []byte) V128 {
	var v V128
	copy(v[:], b[:16])
	return v
}

// StoreV128 writes 16 bytes to b.
func StoreV128(b []byte, v V128) { copy(b[:16], v[:]) }

// LoadV64 reads 8 bytes from b.
func LoadV64(b []byte) V64 {
	var v V64
	copy(v[:], b[:8])
	return v
}

// StoreV64 writes 8 bytes to b.
func StoreV64(b []byte, v V64) { copy(b[:8], v[:]) }

// --- bitwise helpers shared by both ISAs ---

// And returns a & b.
func And(a, b V128) V128 {
	var r V128
	for i := range r {
		r[i] = a[i] & b[i]
	}
	return r
}

// Or returns a | b.
func Or(a, b V128) V128 {
	var r V128
	for i := range r {
		r[i] = a[i] | b[i]
	}
	return r
}

// Xor returns a ^ b.
func Xor(a, b V128) V128 {
	var r V128
	for i := range r {
		r[i] = a[i] ^ b[i]
	}
	return r
}

// AndNot returns ^a & b (SSE2 pandn operand order).
func AndNot(a, b V128) V128 {
	var r V128
	for i := range r {
		r[i] = ^a[i] & b[i]
	}
	return r
}

// Not returns ^a (NEON vmvn).
func Not(a V128) V128 {
	var r V128
	for i := range r {
		r[i] = ^a[i]
	}
	return r
}

// Select returns (mask & a) | (^mask & b), the NEON vbsl primitive.
func Select(mask, a, b V128) V128 {
	var r V128
	for i := range r {
		r[i] = (mask[i] & a[i]) | (^mask[i] & b[i])
	}
	return r
}

// Zero is the all-zeroes register value.
func Zero() V128 { return V128{} }

// Ones is the all-ones register value.
func Ones() V128 {
	var v V128
	for i := range v {
		v[i] = 0xFF
	}
	return v
}

// String renders the register as hex bytes, low lane first, matching
// debugger output conventions for little-endian SIMD registers.
func (v V128) String() string {
	var sb strings.Builder
	sb.WriteString("V128{")
	for i, b := range v {
		if i > 0 {
			sb.WriteByte(' ')
		}
		fmt.Fprintf(&sb, "%02x", b)
	}
	sb.WriteByte('}')
	return sb.String()
}

// String renders the register as hex bytes, low lane first.
func (v V64) String() string {
	var sb strings.Builder
	sb.WriteString("V64{")
	for i, b := range v {
		if i > 0 {
			sb.WriteByte(' ')
		}
		fmt.Fprintf(&sb, "%02x", b)
	}
	sb.WriteByte('}')
	return sb.String()
}
