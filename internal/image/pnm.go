package image

import (
	"bufio"
	"fmt"
	"io"
)

// WritePGM encodes a U8 Mat as a binary PGM (P5) image, the uncompressed
// format our tooling uses in place of the paper's bitmaps.
func WritePGM(w io.Writer, m *Mat) error {
	if m.Kind != U8 {
		return fmt.Errorf("image: WritePGM requires U8, got %v", m.Kind)
	}
	bw := bufio.NewWriter(w)
	if _, err := fmt.Fprintf(bw, "P5\n%d %d\n255\n", m.Width, m.Height); err != nil {
		return err
	}
	if _, err := bw.Write(m.U8Pix); err != nil {
		return err
	}
	return bw.Flush()
}

// ReadPGM decodes a binary PGM (P5) image into a U8 Mat.
func ReadPGM(r io.Reader) (*Mat, error) {
	br := bufio.NewReader(r)
	var magic string
	if _, err := fmt.Fscan(br, &magic); err != nil {
		return nil, fmt.Errorf("image: bad PGM header: %w", err)
	}
	if magic != "P5" {
		return nil, fmt.Errorf("image: not a binary PGM (magic %q)", magic)
	}
	width, err := readPNMInt(br)
	if err != nil {
		return nil, err
	}
	height, err := readPNMInt(br)
	if err != nil {
		return nil, err
	}
	maxval, err := readPNMInt(br)
	if err != nil {
		return nil, err
	}
	if maxval != 255 {
		return nil, fmt.Errorf("image: unsupported PGM maxval %d", maxval)
	}
	if width <= 0 || height <= 0 || width > 1<<16 || height > 1<<16 {
		return nil, fmt.Errorf("image: unreasonable PGM dimensions %dx%d", width, height)
	}
	m := NewMat(width, height, U8)
	if _, err := io.ReadFull(br, m.U8Pix); err != nil {
		return nil, fmt.Errorf("image: short PGM pixel data: %w", err)
	}
	return m, nil
}

// readPNMInt reads the next whitespace-delimited integer, skipping
// '#'-comments, and consumes the single whitespace byte that terminates the
// header per the PNM specification.
func readPNMInt(br *bufio.Reader) (int, error) {
	// Skip whitespace and comments.
	for {
		b, err := br.ReadByte()
		if err != nil {
			return 0, err
		}
		if b == '#' {
			if _, err := br.ReadString('\n'); err != nil {
				return 0, err
			}
			continue
		}
		if b == ' ' || b == '\t' || b == '\n' || b == '\r' {
			continue
		}
		if err := br.UnreadByte(); err != nil {
			return 0, err
		}
		break
	}
	n := 0
	seen := false
	for {
		b, err := br.ReadByte()
		if err == io.EOF && seen {
			return n, nil
		}
		if err != nil {
			return 0, err
		}
		if b >= '0' && b <= '9' {
			n = n*10 + int(b-'0')
			seen = true
			continue
		}
		if !seen {
			return 0, fmt.Errorf("image: expected integer, got %q", b)
		}
		// The terminating whitespace byte is consumed, as the spec requires.
		return n, nil
	}
}
