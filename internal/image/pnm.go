package image

import (
	"bufio"
	"fmt"
	"io"
)

// WritePGM encodes a U8 Mat as a binary PGM (P5) image, the uncompressed
// format our tooling uses in place of the paper's bitmaps.
func WritePGM(w io.Writer, m *Mat) error {
	if m.Kind != U8 {
		return fmt.Errorf("image: WritePGM requires U8, got %v", m.Kind)
	}
	bw := bufio.NewWriter(w)
	if _, err := fmt.Fprintf(bw, "P5\n%d %d\n255\n", m.Width, m.Height); err != nil {
		return err
	}
	if _, err := bw.Write(m.U8Pix); err != nil {
		return err
	}
	return bw.Flush()
}

// maxPNMPixels caps the allocation a decoded header can demand. 1<<26
// pixels (64 Mpx) is 8x the paper's largest resolution; a 65535x65535
// header would otherwise commit 4 GiB before a single pixel byte is read.
const maxPNMPixels = 1 << 26

// readPNMHeader parses "<magic> <width> <height> <maxval>" with bounded
// reads: the magic is exactly two bytes (never an unbounded token), header
// integers are value-capped, and the width*height product is checked
// against maxPNMPixels before any allocation.
func readPNMHeader(br *bufio.Reader, wantMagic, format string) (width, height int, err error) {
	var magic [2]byte
	if _, err := io.ReadFull(br, magic[:]); err != nil {
		return 0, 0, fmt.Errorf("image: bad %s header: %w", format, err)
	}
	if string(magic[:]) != wantMagic {
		return 0, 0, fmt.Errorf("image: not a binary %s (magic %q)", format, magic[:])
	}
	width, err = readPNMInt(br)
	if err != nil {
		return 0, 0, err
	}
	height, err = readPNMInt(br)
	if err != nil {
		return 0, 0, err
	}
	maxval, err := readPNMInt(br)
	if err != nil {
		return 0, 0, err
	}
	if maxval != 255 {
		return 0, 0, fmt.Errorf("image: unsupported %s maxval %d", format, maxval)
	}
	if width <= 0 || height <= 0 || width > 1<<16 || height > 1<<16 {
		return 0, 0, fmt.Errorf("image: unreasonable %s dimensions %dx%d", format, width, height)
	}
	if width*height > maxPNMPixels {
		return 0, 0, fmt.Errorf("image: %s dimensions %dx%d exceed the %d-pixel limit",
			format, width, height, maxPNMPixels)
	}
	return width, height, nil
}

// ReadPGM decodes a binary PGM (P5) image into a U8 Mat. Truncated or
// hostile headers return errors; allocation is bounded by maxPNMPixels.
func ReadPGM(r io.Reader) (*Mat, error) {
	br := bufio.NewReader(r)
	width, height, err := readPNMHeader(br, "P5", "PGM")
	if err != nil {
		return nil, err
	}
	m, err := TryNewMat(width, height, U8)
	if err != nil {
		return nil, err
	}
	if _, err := io.ReadFull(br, m.U8Pix); err != nil {
		return nil, fmt.Errorf("image: short PGM pixel data: %w", err)
	}
	return m, nil
}

// readPNMInt reads the next whitespace-delimited integer, skipping
// '#'-comments, and consumes the single whitespace byte that terminates the
// header per the PNM specification.
func readPNMInt(br *bufio.Reader) (int, error) {
	// Skip whitespace and comments.
	for {
		b, err := br.ReadByte()
		if err != nil {
			return 0, err
		}
		if b == '#' {
			if _, err := br.ReadString('\n'); err != nil {
				return 0, err
			}
			continue
		}
		if b == ' ' || b == '\t' || b == '\n' || b == '\r' {
			continue
		}
		if err := br.UnreadByte(); err != nil {
			return 0, err
		}
		break
	}
	n := 0
	seen := false
	for {
		b, err := br.ReadByte()
		if err == io.EOF && seen {
			return n, nil
		}
		if err != nil {
			return 0, err
		}
		if b >= '0' && b <= '9' {
			n = n*10 + int(b-'0')
			seen = true
			// No PNM header field is this large; bail before a long digit
			// run overflows int.
			if n > 1<<30 {
				return 0, fmt.Errorf("image: PNM header value too large")
			}
			continue
		}
		if !seen {
			return 0, fmt.Errorf("image: expected integer, got %q", b)
		}
		// The terminating whitespace byte is consumed, as the spec requires.
		return n, nil
	}
}
