// Package image provides the image container and synthetic workload
// generator for the benchmark suite.
//
// The paper's experiments use uncompressed bitmap photographs at four
// resolutions common to mobile cameras: 640x480 (0.3 Mpx), 1280x960 (1 Mpx),
// 2592x1920 (5 Mpx) and 3264x2448 (8 Mpx), cycling through 5 distinct images
// per resolution to defeat caching. We do not have the authors' photographs,
// so this package generates deterministic synthetic images with
// natural-image statistics (smooth gradients plus correlated noise plus
// edges); the benchmark kernels are control-flow independent of pixel
// values, so only the sizes and memory traffic matter for timing, which the
// sizes preserve exactly.
package image

import (
	"fmt"
)

// Resolution identifies one of the paper's four image sizes.
type Resolution struct {
	Width, Height int
	Name          string // e.g. "640x480"
	Megapixels    float64
}

// The four resolutions of Section III-D.
var (
	Res03MP = Resolution{640, 480, "640x480", 0.3}
	Res1MP  = Resolution{1280, 960, "1280x960", 1.2}
	Res5MP  = Resolution{2592, 1920, "2592x1920", 5.0}
	Res8MP  = Resolution{3264, 2448, "3264x2448", 8.0}
)

// Resolutions lists the paper's image sizes smallest first.
var Resolutions = []Resolution{Res03MP, Res1MP, Res5MP, Res8MP}

// Pixels returns the pixel count.
func (r Resolution) Pixels() int { return r.Width * r.Height }

// ParseResolution parses a "WxH" string (e.g. "640x480") into a
// Resolution, rejecting non-positive or absurd dimensions. It accepts the
// paper's named sizes and arbitrary sizes alike, so CLI size flags flow
// through one validated path.
func ParseResolution(s string) (Resolution, error) {
	for _, r := range Resolutions {
		if r.Name == s {
			return r, nil
		}
	}
	parseInt := func(t string) (int, bool) {
		if t == "" || len(t) > 7 {
			return 0, false
		}
		n := 0
		for _, c := range t {
			if c < '0' || c > '9' {
				return 0, false
			}
			n = n*10 + int(c-'0')
		}
		return n, true
	}
	sep := -1
	for i, c := range s {
		if c == 'x' {
			sep = i
			break
		}
	}
	if sep < 0 {
		return Resolution{}, fmt.Errorf("image: resolution %q is not WxH", s)
	}
	w, okW := parseInt(s[:sep])
	h, okH := parseInt(s[sep+1:])
	if !okW || !okH || w <= 0 || h <= 0 || w > 1<<16 || h > 1<<16 {
		return Resolution{}, fmt.Errorf("image: invalid resolution %q", s)
	}
	return Resolution{
		Width: w, Height: h, Name: s,
		Megapixels: float64(w) * float64(h) / 1e6,
	}, nil
}

// Type is the element type of a Mat, mirroring OpenCV's depth codes.
type Type int

// Element types used by the benchmarks.
const (
	U8  Type = iota // CV_8U: unsigned byte pixels
	S16             // CV_16S: signed short, filter outputs
	F32             // CV_32F: float, intermediate format
)

// Size returns the element size in bytes.
func (t Type) Size() int {
	switch t {
	case U8:
		return 1
	case S16:
		return 2
	case F32:
		return 4
	}
	panic(fmt.Sprintf("image: unknown type %d", int(t)))
}

// String returns the OpenCV-style name.
func (t Type) String() string {
	switch t {
	case U8:
		return "8U"
	case S16:
		return "16S"
	case F32:
		return "32F"
	}
	return fmt.Sprintf("type(%d)", int(t))
}

// Mat is a single-channel 2-D image with row-major storage, the minimal
// analogue of OpenCV's cv::Mat used by the benchmark kernels. Exactly one
// of the typed planes (U8Pix, S16Pix, F32Pix) is non-nil, matching Type.
type Mat struct {
	Width  int
	Height int
	Kind   Type

	U8Pix  []uint8
	S16Pix []int16
	F32Pix []float32
}

// TryNewMat allocates a zeroed image, returning an error for non-positive
// dimensions or an unknown element type. Use it wherever the dimensions
// come from external input (CLI flags, decoded file headers).
func TryNewMat(width, height int, kind Type) (*Mat, error) {
	if width <= 0 || height <= 0 {
		return nil, fmt.Errorf("image: invalid dimensions %dx%d", width, height)
	}
	m := &Mat{Width: width, Height: height, Kind: kind}
	n := width * height
	switch kind {
	case U8:
		m.U8Pix = make([]uint8, n)
	case S16:
		m.S16Pix = make([]int16, n)
	case F32:
		m.F32Pix = make([]float32, n)
	default:
		return nil, fmt.Errorf("image: unknown type %d", int(kind))
	}
	return m, nil
}

// NewMat allocates a zeroed image, panicking on invalid arguments. It is
// the constructor for dimensions the program itself computed; external
// input goes through TryNewMat.
func NewMat(width, height int, kind Type) *Mat {
	m, err := TryNewMat(width, height, kind)
	if err != nil {
		panic(err.Error())
	}
	return m
}

// Pixels returns the number of pixels.
func (m *Mat) Pixels() int { return m.Width * m.Height }

// Bytes returns the storage size in bytes.
func (m *Mat) Bytes() int { return m.Pixels() * m.Kind.Size() }

// Row returns the index of the first element of row y.
func (m *Mat) Row(y int) int { return y * m.Width }

// Clear zeroes every plane in place, restoring the state NewMat
// guarantees. Callers that took a Mat on the overwrite-only fast path
// (par.GetMatForOverwrite) use it before handing the Mat to a kernel
// that assumes zero initialization.
func (m *Mat) Clear() {
	clear(m.U8Pix)
	clear(m.S16Pix)
	clear(m.F32Pix)
}

// Clone returns a deep copy.
func (m *Mat) Clone() *Mat {
	c := NewMat(m.Width, m.Height, m.Kind)
	switch m.Kind {
	case U8:
		copy(c.U8Pix, m.U8Pix)
	case S16:
		copy(c.S16Pix, m.S16Pix)
	case F32:
		copy(c.F32Pix, m.F32Pix)
	}
	return c
}

// EqualTo reports whether two images have identical dimensions, type and
// pixel content.
func (m *Mat) EqualTo(o *Mat) bool {
	if m.Width != o.Width || m.Height != o.Height || m.Kind != o.Kind {
		return false
	}
	switch m.Kind {
	case U8:
		for i := range m.U8Pix {
			if m.U8Pix[i] != o.U8Pix[i] {
				return false
			}
		}
	case S16:
		for i := range m.S16Pix {
			if m.S16Pix[i] != o.S16Pix[i] {
				return false
			}
		}
	case F32:
		for i := range m.F32Pix {
			if m.F32Pix[i] != o.F32Pix[i] {
				return false
			}
		}
	}
	return true
}

// DiffCount returns the number of differing pixels between two images of
// identical shape, useful in tolerance-based comparisons between
// differently-rounded implementations.
func (m *Mat) DiffCount(o *Mat, tol int) int {
	if m.Width != o.Width || m.Height != o.Height || m.Kind != o.Kind {
		return m.Pixels()
	}
	n := 0
	switch m.Kind {
	case U8:
		for i := range m.U8Pix {
			d := int(m.U8Pix[i]) - int(o.U8Pix[i])
			if d < -tol || d > tol {
				n++
			}
		}
	case S16:
		for i := range m.S16Pix {
			d := int(m.S16Pix[i]) - int(o.S16Pix[i])
			if d < -tol || d > tol {
				n++
			}
		}
	case F32:
		for i := range m.F32Pix {
			d := float64(m.F32Pix[i]) - float64(o.F32Pix[i])
			if d < -float64(tol) || d > float64(tol) {
				n++
			}
		}
	}
	return n
}

// rng is a small deterministic PRNG (xorshift64*), used instead of
// math/rand so the synthetic workload is reproducible byte-for-byte across
// Go versions.
type rng struct{ s uint64 }

func newRNG(seed uint64) *rng {
	if seed == 0 {
		seed = 0x9E3779B97F4A7C15
	}
	return &rng{s: seed}
}

func (r *rng) next() uint64 {
	r.s ^= r.s >> 12
	r.s ^= r.s << 25
	r.s ^= r.s >> 27
	return r.s * 0x2545F4914F6CDD1D
}

// byteVal returns a uniform byte.
func (r *rng) byteVal() uint8 { return uint8(r.next() >> 56) }

// Synthetic generates the i-th deterministic synthetic photograph at a
// resolution. Images combine a smooth illumination gradient, low-frequency
// texture, and hard edges, approximating the statistics of the paper's
// camera photographs. Distinct seeds give the 5 distinct images the paper
// cycles through.
func Synthetic(res Resolution, seed uint64) *Mat {
	m := NewMat(res.Width, res.Height, U8)
	r := newRNG(seed*0x9E3779B9 + 1)
	// Random parameters for gradients and edge placement.
	gx := int(r.next()%5) + 1
	gy := int(r.next()%5) + 1
	edgePeriod := int(r.next()%97) + 32
	noiseAmp := int(r.next()%24) + 8
	prev := 0
	for y := 0; y < res.Height; y++ {
		rowBase := (y * gy * 255) / (res.Height * gy)
		for x := 0; x < res.Width; x++ {
			v := rowBase + (x*gx*255)/(res.Width*gx)
			v /= 2
			// Hard vertical edges every edgePeriod columns.
			if (x/edgePeriod)%2 == 1 {
				v += 64
			}
			// First-order correlated noise.
			n := int(r.byteVal()%uint8(noiseAmp)) - noiseAmp/2
			prev = (prev + n) / 2
			v += prev
			if v < 0 {
				v = 0
			}
			if v > 255 {
				v = 255
			}
			m.U8Pix[y*res.Width+x] = uint8(v)
		}
	}
	return m
}

// SyntheticF32 generates a float-typed synthetic image with values spanning
// a range that exercises the saturating float-to-short conversion, including
// out-of-short-range magnitudes as OpenCV's filtering intermediates can
// produce.
func SyntheticF32(res Resolution, seed uint64) *Mat {
	m := NewMat(res.Width, res.Height, F32)
	r := newRNG(seed*0x85EBCA6B + 7)
	for i := range m.F32Pix {
		u := r.next()
		// Mostly in-range pixel-like values, with a sprinkle of large
		// magnitudes (~1/64 of pixels) to exercise saturation.
		switch u % 64 {
		case 0:
			m.F32Pix[i] = float32(int32(u >> 32)) // huge, either sign
		default:
			m.F32Pix[i] = float32(u%51200)/100.0 - 256.0 // [-256, 256)
		}
	}
	return m
}

// Burst generates the paper's workload for one resolution: n distinct
// images cycled in succession to minimize cache reuse between runs.
func Burst(res Resolution, n int) []*Mat {
	out := make([]*Mat, n)
	for i := range out {
		out[i] = Synthetic(res, uint64(i+1))
	}
	return out
}

// BurstF32 is Burst for float-typed source images.
func BurstF32(res Resolution, n int) []*Mat {
	out := make([]*Mat, n)
	for i := range out {
		out[i] = SyntheticF32(res, uint64(i+1))
	}
	return out
}
