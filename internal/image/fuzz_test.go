package image

import (
	"bytes"
	"testing"
)

// validPGM returns a well-formed P5 file for the seed corpus.
func validPGM() []byte {
	m := Synthetic(Resolution{Width: 8, Height: 6, Name: "8x6"}, 1)
	var buf bytes.Buffer
	if err := WritePGM(&buf, m); err != nil {
		panic(err)
	}
	return buf.Bytes()
}

func validPPM() []byte {
	m := SyntheticRGB(Resolution{Width: 8, Height: 6, Name: "8x6"}, 1)
	var buf bytes.Buffer
	if err := WritePPM(&buf, m); err != nil {
		panic(err)
	}
	return buf.Bytes()
}

// FuzzReadPGM: hostile, truncated, or giant-header inputs must return an
// error, never panic, and never allocate beyond the declared-pixel cap.
func FuzzReadPGM(f *testing.F) {
	f.Add(validPGM())
	f.Add([]byte("P5\n2 2\n255\nabcd"))
	f.Add([]byte("P5"))
	f.Add([]byte("P5\n# comment\n3 1\n255\nxyz"))
	f.Add([]byte("P5\n65535 65535\n255\n"))         // giant product, tiny body
	f.Add([]byte("P5\n99999999999999999 1\n255\n")) // digit-run overflow
	f.Add([]byte("P5\n-1 4\n255\n"))
	f.Add([]byte("P6\n2 2\n255\nabcdabcdabcd")) // wrong magic
	f.Add([]byte("P5\n2 2\n65535\nabcd"))       // unsupported maxval
	f.Add([]byte{})
	f.Fuzz(func(t *testing.T, data []byte) {
		m, err := ReadPGM(bytes.NewReader(data))
		if err != nil {
			return
		}
		if m == nil {
			t.Fatal("nil Mat with nil error")
		}
		if m.Width <= 0 || m.Height <= 0 || m.Width*m.Height > maxPNMPixels {
			t.Fatalf("accepted unreasonable dimensions %dx%d", m.Width, m.Height)
		}
		if len(m.U8Pix) != m.Width*m.Height {
			t.Fatalf("pixel buffer %d for %dx%d", len(m.U8Pix), m.Width, m.Height)
		}
		// A decoded image must round-trip.
		var buf bytes.Buffer
		if err := WritePGM(&buf, m); err != nil {
			t.Fatalf("re-encode: %v", err)
		}
		m2, err := ReadPGM(&buf)
		if err != nil || !m.EqualTo(m2) {
			t.Fatalf("round-trip failed: %v", err)
		}
	})
}

// FuzzReadPPM is FuzzReadPGM for the 3-channel decoder.
func FuzzReadPPM(f *testing.F) {
	f.Add(validPPM())
	f.Add([]byte("P6\n1 1\n255\nrgb"))
	f.Add([]byte("P6"))
	f.Add([]byte("P6\n65535 65535\n255\n"))
	f.Add([]byte("P6\n0 5\n255\n"))
	f.Add([]byte("P5\n1 1\n255\nx")) // wrong magic
	f.Add([]byte{})
	f.Fuzz(func(t *testing.T, data []byte) {
		m, err := ReadPPM(bytes.NewReader(data))
		if err != nil {
			return
		}
		if m == nil {
			t.Fatal("nil RGB with nil error")
		}
		if m.Width <= 0 || m.Height <= 0 || m.Width*m.Height > maxPNMPixels {
			t.Fatalf("accepted unreasonable dimensions %dx%d", m.Width, m.Height)
		}
		if len(m.Pix) != 3*m.Width*m.Height {
			t.Fatalf("pixel buffer %d for %dx%d", len(m.Pix), m.Width, m.Height)
		}
		var buf bytes.Buffer
		if err := WritePPM(&buf, m); err != nil {
			t.Fatalf("re-encode: %v", err)
		}
		m2, err := ReadPPM(&buf)
		if err != nil || !m.EqualTo(m2) {
			t.Fatalf("round-trip failed: %v", err)
		}
	})
}

// TestTryConstructors covers the error-returning constructors directly.
func TestTryConstructors(t *testing.T) {
	if _, err := TryNewMat(0, 5, U8); err == nil {
		t.Error("TryNewMat(0,5) should error")
	}
	if _, err := TryNewMat(5, -2, S16); err == nil {
		t.Error("TryNewMat(5,-2) should error")
	}
	if _, err := TryNewMat(4, 4, Type(99)); err == nil {
		t.Error("TryNewMat with unknown type should error")
	}
	m, err := TryNewMat(4, 3, F32)
	if err != nil || len(m.F32Pix) != 12 {
		t.Fatalf("TryNewMat(4,3,F32) = %v, %v", m, err)
	}
	if _, err := TryNewRGB(-1, 1); err == nil {
		t.Error("TryNewRGB(-1,1) should error")
	}
	rgb, err := TryNewRGB(2, 2)
	if err != nil || len(rgb.Pix) != 12 {
		t.Fatalf("TryNewRGB(2,2) = %v, %v", rgb, err)
	}

	// The panicking wrappers must still panic for internal misuse.
	defer func() {
		if recover() == nil {
			t.Error("NewMat(0,0) should panic")
		}
	}()
	NewMat(0, 0, U8)
}
