package image

import (
	"bufio"
	"fmt"
	"io"
)

// RGB is a 3-channel interleaved color image (R,G,B byte triplets in
// row-major order), the layout camera pipelines hand to color-conversion
// kernels. It exists to exercise NEON's structured vld3/vst3 loads, which
// the paper's Section II-C singles out as a NEON capability SSE2 lacks.
type RGB struct {
	Width  int
	Height int
	Pix    []uint8 // len = 3*Width*Height
}

// TryNewRGB allocates a zeroed color image, returning an error for
// non-positive dimensions.
func TryNewRGB(width, height int) (*RGB, error) {
	if width <= 0 || height <= 0 {
		return nil, fmt.Errorf("image: invalid dimensions %dx%d", width, height)
	}
	return &RGB{Width: width, Height: height, Pix: make([]uint8, 3*width*height)}, nil
}

// NewRGB allocates a zeroed color image, panicking on invalid dimensions;
// external input goes through TryNewRGB.
func NewRGB(width, height int) *RGB {
	m, err := TryNewRGB(width, height)
	if err != nil {
		panic(err.Error())
	}
	return m
}

// Pixels returns the pixel count.
func (m *RGB) Pixels() int { return m.Width * m.Height }

// At returns the (r,g,b) triplet at (x,y).
func (m *RGB) At(x, y int) (r, g, b uint8) {
	i := 3 * (y*m.Width + x)
	return m.Pix[i], m.Pix[i+1], m.Pix[i+2]
}

// Set stores the (r,g,b) triplet at (x,y).
func (m *RGB) Set(x, y int, r, g, b uint8) {
	i := 3 * (y*m.Width + x)
	m.Pix[i], m.Pix[i+1], m.Pix[i+2] = r, g, b
}

// EqualTo reports pixel-exact equality.
func (m *RGB) EqualTo(o *RGB) bool {
	if m.Width != o.Width || m.Height != o.Height {
		return false
	}
	for i := range m.Pix {
		if m.Pix[i] != o.Pix[i] {
			return false
		}
	}
	return true
}

// SyntheticRGB generates a deterministic color image whose channels carry
// distinct structure (so color-conversion kernels cannot pass tests by
// reading just one channel).
func SyntheticRGB(res Resolution, seed uint64) *RGB {
	m := NewRGB(res.Width, res.Height)
	r := newRNG(seed*0xC2B2AE35 + 3)
	for y := 0; y < res.Height; y++ {
		for x := 0; x < res.Width; x++ {
			base := uint8((x*255)/res.Width) >> 1
			red := base + r.byteVal()%64
			green := uint8((y*255)/res.Height)>>1 + r.byteVal()%64
			blue := 255 - base - r.byteVal()%32
			m.Set(x, y, red, green, blue)
		}
	}
	return m
}

// WritePPM encodes as binary PPM (P6).
func WritePPM(w io.Writer, m *RGB) error {
	bw := bufio.NewWriter(w)
	if _, err := fmt.Fprintf(bw, "P6\n%d %d\n255\n", m.Width, m.Height); err != nil {
		return err
	}
	if _, err := bw.Write(m.Pix); err != nil {
		return err
	}
	return bw.Flush()
}

// ReadPPM decodes a binary PPM (P6). Truncated or hostile headers return
// errors; allocation is bounded the same way as ReadPGM.
func ReadPPM(r io.Reader) (*RGB, error) {
	br := bufio.NewReader(r)
	width, height, err := readPNMHeader(br, "P6", "PPM")
	if err != nil {
		return nil, err
	}
	m, err := TryNewRGB(width, height)
	if err != nil {
		return nil, err
	}
	if _, err := io.ReadFull(br, m.Pix); err != nil {
		return nil, fmt.Errorf("image: short PPM pixel data: %w", err)
	}
	return m, nil
}
