package image

import (
	"bytes"
	"strings"
	"testing"
	"testing/quick"
)

func TestResolutions(t *testing.T) {
	if Res8MP.Pixels() != 3264*2448 {
		t.Errorf("8MP pixels: %d", Res8MP.Pixels())
	}
	if len(Resolutions) != 4 {
		t.Fatal("expected four paper resolutions")
	}
	for i := 1; i < len(Resolutions); i++ {
		if Resolutions[i].Pixels() <= Resolutions[i-1].Pixels() {
			t.Error("resolutions must be sorted ascending")
		}
	}
	if Res03MP.Name != "640x480" {
		t.Errorf("name: %s", Res03MP.Name)
	}
}

func TestTypeSizes(t *testing.T) {
	if U8.Size() != 1 || S16.Size() != 2 || F32.Size() != 4 {
		t.Fatal("type sizes")
	}
	if U8.String() != "8U" || S16.String() != "16S" || F32.String() != "32F" {
		t.Fatal("type names")
	}
	if !strings.Contains(Type(99).String(), "99") {
		t.Fatal("unknown type string")
	}
	defer func() {
		if recover() == nil {
			t.Fatal("Size of unknown type should panic")
		}
	}()
	Type(99).Size()
}

func TestNewMat(t *testing.T) {
	m := NewMat(10, 5, S16)
	if m.Pixels() != 50 || m.Bytes() != 100 {
		t.Fatalf("pixels/bytes: %d/%d", m.Pixels(), m.Bytes())
	}
	if len(m.S16Pix) != 50 || m.U8Pix != nil || m.F32Pix != nil {
		t.Fatal("plane allocation")
	}
	if m.Row(3) != 30 {
		t.Fatal("Row")
	}
	for _, k := range []Type{U8, F32} {
		mm := NewMat(2, 2, k)
		if mm.Bytes() != 4*k.Size() {
			t.Fatal("bytes")
		}
	}
	defer func() {
		if recover() == nil {
			t.Fatal("invalid dims should panic")
		}
	}()
	NewMat(0, 5, U8)
}

func TestCloneAndEqual(t *testing.T) {
	m := Synthetic(Resolution{64, 48, "64x48", 0}, 1)
	c := m.Clone()
	if !m.EqualTo(c) {
		t.Fatal("clone should be equal")
	}
	c.U8Pix[100]++
	if m.EqualTo(c) {
		t.Fatal("mutated clone should differ")
	}
	if m.DiffCount(c, 0) != 1 {
		t.Fatalf("diff count: %d", m.DiffCount(c, 0))
	}
	if m.DiffCount(c, 1) != 0 {
		t.Fatal("tolerance should absorb +-1")
	}
	other := NewMat(64, 48, S16)
	if m.EqualTo(other) {
		t.Fatal("different kinds are unequal")
	}
	if m.DiffCount(other, 0) != m.Pixels() {
		t.Fatal("shape mismatch diff count")
	}

	s := NewMat(4, 4, S16)
	s2 := s.Clone()
	s2.S16Pix[0] = 5
	if s.EqualTo(s2) || s.DiffCount(s2, 4) != 1 {
		t.Fatal("s16 equality")
	}
	f := NewMat(4, 4, F32)
	f2 := f.Clone()
	f2.F32Pix[0] = 100
	if f.EqualTo(f2) || f.DiffCount(f2, 1) != 1 {
		t.Fatal("f32 equality")
	}
	if !f.EqualTo(f.Clone()) || !s.EqualTo(s.Clone()) {
		t.Fatal("self equality")
	}
}

func TestSyntheticDeterministicAndDistinct(t *testing.T) {
	res := Resolution{128, 96, "128x96", 0}
	a1 := Synthetic(res, 3)
	a2 := Synthetic(res, 3)
	if !a1.EqualTo(a2) {
		t.Fatal("same seed must give identical images")
	}
	b := Synthetic(res, 4)
	if a1.EqualTo(b) {
		t.Fatal("different seeds must differ")
	}
	// Natural-statistics sanity: pixel histogram should not be flat or
	// constant; check we use a reasonable value spread.
	var hist [256]int
	for _, p := range a1.U8Pix {
		hist[p]++
	}
	nonzero := 0
	for _, h := range hist {
		if h > 0 {
			nonzero++
		}
	}
	if nonzero < 32 {
		t.Fatalf("synthetic image uses only %d distinct values", nonzero)
	}
}

func TestSyntheticF32HasSaturatingValues(t *testing.T) {
	m := SyntheticF32(Resolution{256, 128, "", 0}, 2)
	huge, inRange := 0, 0
	for _, v := range m.F32Pix {
		if v > 32767 || v < -32768 {
			huge++
		} else {
			inRange++
		}
	}
	if huge == 0 {
		t.Fatal("float workload must include values that saturate int16")
	}
	if inRange < huge {
		t.Fatal("most values should be in pixel range")
	}
}

func TestBurst(t *testing.T) {
	res := Resolution{32, 32, "", 0}
	b := Burst(res, 5)
	if len(b) != 5 {
		t.Fatal("burst length")
	}
	for i := 0; i < len(b); i++ {
		for j := i + 1; j < len(b); j++ {
			if b[i].EqualTo(b[j]) {
				t.Fatalf("burst images %d and %d identical", i, j)
			}
		}
	}
	fb := BurstF32(res, 3)
	if len(fb) != 3 || fb[0].Kind != F32 {
		t.Fatal("f32 burst")
	}
	if fb[0].EqualTo(fb[1]) {
		t.Fatal("f32 burst images identical")
	}
}

func TestPGMRoundTrip(t *testing.T) {
	m := Synthetic(Resolution{33, 17, "", 0}, 9) // odd sizes exercise header parsing
	var buf bytes.Buffer
	if err := WritePGM(&buf, m); err != nil {
		t.Fatal(err)
	}
	back, err := ReadPGM(&buf)
	if err != nil {
		t.Fatal(err)
	}
	if !m.EqualTo(back) {
		t.Fatal("PGM roundtrip altered pixels")
	}
}

func TestPGMRejectsNonU8(t *testing.T) {
	var buf bytes.Buffer
	if err := WritePGM(&buf, NewMat(2, 2, F32)); err == nil {
		t.Fatal("expected error for F32")
	}
}

func TestPGMHeaderEdgeCases(t *testing.T) {
	// Comments and arbitrary whitespace are legal.
	data := "P5 # comment\n# another comment\n 3\t2 \n255\n" + "abcdef"
	m, err := ReadPGM(strings.NewReader(data))
	if err != nil {
		t.Fatal(err)
	}
	if m.Width != 3 || m.Height != 2 || string(m.U8Pix) != "abcdef" {
		t.Fatalf("parsed %dx%d %q", m.Width, m.Height, m.U8Pix)
	}

	bad := []string{
		"P6\n3 2\n255\nabcdef",   // wrong magic
		"P5\n3 2\n128\nabcdef",   // unsupported maxval
		"P5\n3 2\n255\nabc",      // short pixel data
		"P5\nx 2\n255\nabcdef",   // non-numeric width
		"P5\n3 2\n",              // truncated header
		"P5\n0 2\n255\n",         // zero dimension
		"P5\n99999999 2\n255\n ", // unreasonable dimension
	}
	for i, s := range bad {
		if _, err := ReadPGM(strings.NewReader(s)); err == nil {
			t.Errorf("case %d: expected error", i)
		}
	}
}

// Property: PGM roundtrip is the identity for arbitrary small images.
func TestQuickPGMRoundTrip(t *testing.T) {
	f := func(pix []byte, w8 uint8) bool {
		w := int(w8%16) + 1
		h := len(pix) / w
		if h == 0 {
			return true
		}
		m := NewMat(w, h, U8)
		copy(m.U8Pix, pix)
		var buf bytes.Buffer
		if err := WritePGM(&buf, m); err != nil {
			return false
		}
		back, err := ReadPGM(&buf)
		if err != nil {
			return false
		}
		return m.EqualTo(back)
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

func TestRNGZeroSeed(t *testing.T) {
	r := newRNG(0)
	if r.next() == 0 && r.next() == 0 {
		t.Fatal("zero seed must still produce values")
	}
}

func TestRGBBasics(t *testing.T) {
	m := NewRGB(4, 3)
	if m.Pixels() != 12 || len(m.Pix) != 36 {
		t.Fatal("rgb allocation")
	}
	m.Set(2, 1, 10, 20, 30)
	r, g, b := m.At(2, 1)
	if r != 10 || g != 20 || b != 30 {
		t.Fatal("at/set")
	}
	c := NewRGB(4, 3)
	c.Set(2, 1, 10, 20, 30)
	if !m.EqualTo(c) {
		t.Fatal("equal")
	}
	c.Set(0, 0, 1, 0, 0)
	if m.EqualTo(c) {
		t.Fatal("unequal after mutation")
	}
	if m.EqualTo(NewRGB(3, 4)) {
		t.Fatal("shape mismatch")
	}
	defer func() {
		if recover() == nil {
			t.Fatal("invalid dims should panic")
		}
	}()
	NewRGB(0, 1)
}

func TestSyntheticRGBChannelsDiffer(t *testing.T) {
	res := Resolution{Width: 64, Height: 48}
	m := SyntheticRGB(res, 1)
	if m.EqualTo(SyntheticRGB(res, 2)) {
		t.Fatal("seeds must differ")
	}
	if !m.EqualTo(SyntheticRGB(res, 1)) {
		t.Fatal("same seed must repeat")
	}
	// Channels must carry distinct content.
	var dRG, dGB int
	for i := 0; i < len(m.Pix); i += 3 {
		if m.Pix[i] != m.Pix[i+1] {
			dRG++
		}
		if m.Pix[i+1] != m.Pix[i+2] {
			dGB++
		}
	}
	if dRG < m.Pixels()/2 || dGB < m.Pixels()/2 {
		t.Fatal("synthetic RGB channels too similar")
	}
}

func TestPPMRoundTrip(t *testing.T) {
	m := SyntheticRGB(Resolution{Width: 19, Height: 7}, 5)
	var buf bytes.Buffer
	if err := WritePPM(&buf, m); err != nil {
		t.Fatal(err)
	}
	back, err := ReadPPM(&buf)
	if err != nil {
		t.Fatal(err)
	}
	if !m.EqualTo(back) {
		t.Fatal("PPM roundtrip altered pixels")
	}
	bad := []string{
		"P5\n2 2\n255\n" + strings.Repeat("x", 12), // wrong magic
		"P6\n2 2\n128\n" + strings.Repeat("x", 12), // maxval
		"P6\n2 2\n255\nxx",                         // short data
		"P6\n0 2\n255\n",                           // zero dim
	}
	for i, s := range bad {
		if _, err := ReadPPM(strings.NewReader(s)); err == nil {
			t.Errorf("bad PPM %d accepted", i)
		}
	}
}
