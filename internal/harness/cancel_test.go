package harness

import (
	"context"
	"errors"
	"runtime"
	"sync/atomic"
	"testing"
	"time"

	"simdstudy/internal/obs"
	"simdstudy/internal/platform"
	"simdstudy/internal/resilience"
)

// TestRunGridCtxCancelMidGrid cancels a concurrent grid after the third
// cell starts and asserts the resilience contract: a typed DeadlineError
// with cell-granular accounting, completed cells keeping their Metrics
// snapshots in the partial grid, and no leaked worker goroutines.
func TestRunGridCtxCancelMidGrid(t *testing.T) {
	before := runtime.NumGoroutine()
	ctx, cancel := context.WithCancel(context.Background())
	defer cancel()
	var starts atomic.Int32
	testCellStart = func() {
		if starts.Add(1) == 3 {
			cancel()
		}
	}
	defer func() { testCellStart = nil }()

	g, err := RunGridCtx(ctx, "BinThr", platform.Paper(), smallSizes,
		GridOptions{Obs: obs.NewRegistry(), Concurrency: 2})

	var de *resilience.DeadlineError
	if !errors.As(err, &de) {
		t.Fatalf("err = %v, want *resilience.DeadlineError", err)
	}
	if !errors.Is(err, context.Canceled) {
		t.Fatal("DeadlineError must unwrap to context.Canceled")
	}
	total := len(smallSizes) * len(platform.Paper())
	if de.Unit != "cells" || de.Total != total {
		t.Errorf("accounting = %d/%d %s, want total %d cells", de.Completed, de.Total, de.Unit, total)
	}
	if de.Completed <= 0 || de.Completed >= total {
		t.Errorf("Completed = %d, want mid-grid (0 < n < %d)", de.Completed, total)
	}

	// The partial grid must be returned, with exactly the completed cells
	// carrying their per-cell Metrics snapshots.
	if g == nil {
		t.Fatal("cancellation must return the partial grid")
	}
	withMetrics := 0
	for _, row := range g.Cells {
		for _, c := range row {
			if c.Metrics != nil {
				withMetrics++
			}
		}
	}
	if withMetrics != de.Completed {
		t.Errorf("%d cells carry Metrics, DeadlineError reports %d completed", withMetrics, de.Completed)
	}

	// No worker goroutines may outlive the call.
	deadline := time.Now().Add(2 * time.Second)
	for runtime.NumGoroutine() > before && time.Now().Before(deadline) {
		time.Sleep(5 * time.Millisecond)
	}
	if after := runtime.NumGoroutine(); after > before {
		t.Errorf("goroutine leak: %d before grid, %d after", before, after)
	}
}
