package harness

import (
	"bytes"
	"strings"
	"testing"

	"simdstudy/internal/image"
	"simdstudy/internal/platform"
	"simdstudy/internal/timing"
)

var smallSizes = []image.Resolution{{Width: 640, Height: 480, Name: "640x480"}}

func TestRunGrid(t *testing.T) {
	g, err := RunGrid("BinThr", platform.Paper(), smallSizes)
	if err != nil {
		t.Fatal(err)
	}
	if len(g.Cells) != 1 || len(g.Cells[0]) != 10 {
		t.Fatalf("grid shape %dx%d", len(g.Cells), len(g.Cells[0]))
	}
	for pi, c := range g.Cells[0] {
		if c.AutoSeconds <= 0 || c.HandSeconds <= 0 {
			t.Errorf("platform %d: non-positive times", pi)
		}
		if c.Speedup() < 1 {
			t.Errorf("platform %d: speedup %.2f < 1", pi, c.Speedup())
		}
	}
	if _, err := RunGrid("NoSuch", platform.Paper(), smallSizes); err == nil {
		t.Error("unknown benchmark should error")
	}
}

func TestCellSpeedupZeroGuard(t *testing.T) {
	if (Cell{AutoSeconds: 1}).Speedup() != 0 {
		t.Error("zero HAND time should not divide")
	}
	if Runs != 100 {
		t.Error("the paper averages 100 runs")
	}
}

func TestVerifyAllBenchmarks(t *testing.T) {
	res := image.Resolution{Width: 96, Height: 64, Name: "96x64"}
	for _, bench := range timing.BenchNames {
		n, err := Verify(bench, res)
		if err != nil {
			t.Fatalf("%s: %v", bench, err)
		}
		if n != 5 {
			t.Fatalf("%s: checked %d images, want the 5-image burst", bench, n)
		}
	}
	if _, err := Verify("NoSuch", res); err == nil {
		t.Error("unknown benchmark should error")
	}
}

func TestRenderTable1(t *testing.T) {
	var buf bytes.Buffer
	RenderTable1(&buf, platform.Paper())
	out := buf.String()
	for _, want := range []string{"INTEL", "ARM", "Pineview", "Kal-El", "VFPv3/NEON", "SSE2/SSE3", "Q1'12"} {
		if !strings.Contains(out, want) {
			t.Errorf("Table I missing %q", want)
		}
	}
}

func TestRenderTable2(t *testing.T) {
	g, err := RunGrid("ConvertFloatShort", platform.Paper(), image.Resolutions)
	if err != nil {
		t.Fatal(err)
	}
	var buf bytes.Buffer
	g.RenderTable2(&buf)
	out := buf.String()
	for _, want := range []string{"Table II", "640x480", "3264x2448", "AUTO", "HAND", "Speed-up"} {
		if !strings.Contains(out, want) {
			t.Errorf("Table II missing %q", want)
		}
	}
	// Four size groups, each with three rows.
	if got := strings.Count(out, "Speed-up"); got != 4 {
		t.Errorf("expected 4 speed-up rows, got %d", got)
	}
}

func TestRenderTable3(t *testing.T) {
	sizes := []image.Resolution{image.Res8MP}
	var grids []*Grid
	for _, b := range []string{"BinThr", "GauBlu", "SobFil", "EdgDet"} {
		g, err := RunGrid(b, platform.Paper(), sizes)
		if err != nil {
			t.Fatal(err)
		}
		grids = append(grids, g)
	}
	var buf bytes.Buffer
	RenderTable3(&buf, grids)
	out := buf.String()
	for _, want := range []string{"Table III", "BinThr", "GauBlu", "SobFil", "EdgDet", "3264x2448"} {
		if !strings.Contains(out, want) {
			t.Errorf("Table III missing %q", want)
		}
	}
	RenderTable3(&buf, nil) // must not panic
}

func TestRenderCSV(t *testing.T) {
	g, err := RunGrid("SobFil", []platform.Platform{platform.AtomD510()}, smallSizes)
	if err != nil {
		t.Fatal(err)
	}
	var buf bytes.Buffer
	g.RenderCSV(&buf)
	lines := strings.Split(strings.TrimSpace(buf.String()), "\n")
	if len(lines) != 2 {
		t.Fatalf("CSV lines: %d", len(lines))
	}
	if !strings.HasPrefix(lines[0], "benchmark,size,platform") {
		t.Error("CSV header")
	}
	if !strings.Contains(lines[1], "SobFil,640x480,Intel Atom D510") {
		t.Errorf("CSV row: %s", lines[1])
	}
}

func TestRenderFigure(t *testing.T) {
	g, err := RunGrid("GauBlu", platform.Paper(), image.Resolutions)
	if err != nil {
		t.Fatal(err)
	}
	var buf bytes.Buffer
	g.RenderFigure(&buf, 4)
	out := buf.String()
	if !strings.Contains(out, "Figure 4") || !strings.Contains(out, "Gaussian Blur") {
		t.Error("figure header")
	}
	if !strings.Contains(out, "#") {
		t.Error("figure should contain bars")
	}
	if !strings.Contains(out, "Tegra") {
		t.Error("figure should list all platforms")
	}
}

func TestFigureBenchMapping(t *testing.T) {
	if len(FigureForBench) != 5 {
		t.Fatal("figures 2-6")
	}
	for n := 2; n <= 6; n++ {
		if FigureForBench[n] == "" {
			t.Errorf("figure %d unmapped", n)
		}
	}
	if FigureForBench[2] != "ConvertFloatShort" || FigureForBench[6] != "EdgDet" {
		t.Error("figure mapping wrong")
	}
}

func TestSpeedupRangesAndAbstract(t *testing.T) {
	var grids []*Grid
	for _, bench := range timing.BenchNames {
		g, err := RunGrid(bench, platform.Paper(), image.Resolutions)
		if err != nil {
			t.Fatal(err)
		}
		grids = append(grids, g)
	}
	ranges := SpeedupRanges(grids)
	if len(ranges) != 2 {
		t.Fatalf("want ARM and Intel ranges, got %d", len(ranges))
	}
	if ranges[0].Family != platform.ARM || ranges[1].Family != platform.Intel {
		t.Fatal("range order: ARM then Intel, as in the abstract")
	}
	// The abstract's bands: ARM 1.05-13.88, Intel 1.34-5.54 — our shape
	// reproduction must stay in the same neighbourhoods.
	arm, intel := ranges[0], ranges[1]
	if arm.Min < 1.0 || arm.Max < 12 || arm.Max > 15 {
		t.Errorf("ARM range %.2f-%.2f out of band", arm.Min, arm.Max)
	}
	if intel.Min < 1.0 || intel.Max < 4.5 || intel.Max > 6.0 {
		t.Errorf("Intel range %.2f-%.2f out of band", intel.Min, intel.Max)
	}
	if arm.Max <= intel.Max {
		t.Error("ARM max speedup must exceed Intel's (the A8 convert anomaly)")
	}

	var buf bytes.Buffer
	RenderAbstractSummary(&buf, grids)
	out := buf.String()
	if !strings.Contains(out, "NEON") || !strings.Contains(out, "SSE") {
		t.Errorf("abstract summary: %s", out)
	}
	if strings.Count(out, "\n") != 2 {
		t.Error("two sentences expected")
	}
	if len(SpeedupRanges(nil)) != 0 {
		t.Error("empty grids give no ranges")
	}
}
