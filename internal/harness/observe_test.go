package harness

import (
	"bytes"
	"context"
	"strings"
	"testing"

	"simdstudy/internal/cv"
	"simdstudy/internal/obs"
	"simdstudy/internal/platform"
)

// TestGridObservability runs a full grid concurrently against one shared
// registry: every cell must land a span on its own track, carry a private
// metrics snapshot, and the merged registry must account for every attempt.
// Run under -race this also exercises concurrent cells merging into one
// registry.
func TestGridObservability(t *testing.T) {
	reg := obs.NewRegistry()
	plats := platform.Paper()
	g, err := RunGridCtx(context.Background(), "BinThr", plats, smallSizes,
		GridOptions{Obs: reg, Concurrency: 8})
	if err != nil {
		t.Fatal(err)
	}
	cells := len(plats) * len(smallSizes)

	tracks := map[int]bool{}
	cellSpans := 0
	for _, sr := range reg.Spans() {
		if strings.HasPrefix(sr.Name, "cell.") {
			cellSpans++
			if tracks[sr.Track] {
				t.Errorf("track %d reused across cell spans", sr.Track)
			}
			tracks[sr.Track] = true
			if sr.Attrs["hand_seconds"] == nil {
				t.Errorf("cell span %v missing hand_seconds attr", sr.Attrs)
			}
			if sr.Cycles <= 0 {
				t.Errorf("cell span has no modeled cycles")
			}
		}
	}
	if cellSpans != cells {
		t.Errorf("cell spans = %d, want %d", cellSpans, cells)
	}

	snap := reg.Snapshot()
	var attempts float64
	for series, v := range snap {
		if strings.HasPrefix(series, "grid_cell_attempts_total") {
			attempts += v
		}
	}
	if attempts != float64(cells) {
		t.Errorf("merged attempts = %v, want %d", attempts, cells)
	}

	for si := range g.Cells {
		for pi := range g.Cells[si] {
			m := g.Cells[si][pi].Metrics
			if m == nil {
				t.Fatalf("cell [%d][%d] has no metrics snapshot", si, pi)
			}
			var n float64
			for series, v := range m {
				if strings.HasPrefix(series, "grid_cell_attempts_total") {
					n += v
				}
			}
			if n != 1 {
				t.Errorf("cell [%d][%d] attempts = %v, want 1", si, pi, n)
			}
		}
	}

	// Without a registry the grid must stay metric-free.
	g2, err := RunGridCtx(context.Background(), "BinThr", plats[:1], smallSizes, GridOptions{})
	if err != nil {
		t.Fatal(err)
	}
	if g2.Cells[0][0].Metrics != nil {
		t.Error("registry-less grid produced a metrics snapshot")
	}
}

// TestFaultCampaignObservability checks the acceptance-criterion span
// nesting (campaign -> isa -> image cell -> kernel -> guard action) and the
// fault counter families.
func TestFaultCampaignObservability(t *testing.T) {
	reg := obs.NewRegistry()
	rep, err := RunFaultCampaign(context.Background(), "GauBlu", testRes, CampaignConfig{
		Rate:   1e-4,
		Seed:   7,
		Policy: cv.GuardPolicy{SampleRows: 64, MaxRetries: 0, KillAfter: -1},
		Obs:    reg,
	})
	if err != nil {
		t.Fatal(err)
	}

	byID := map[int]obs.SpanRecord{}
	byName := map[string]int{}
	for _, sr := range reg.Spans() {
		byID[sr.ID] = sr
		byName[sr.Name]++
	}
	for _, want := range []string{"campaign.GauBlu", "campaign.isa", "cell.GauBlu", "kernel.GaussianBlur", "guard.referee"} {
		if byName[want] == 0 {
			t.Errorf("no %q span recorded (have %v)", want, byName)
		}
	}
	// Walk one guard span up: guard -> kernel -> cell -> isa -> campaign.
	for _, sr := range reg.Spans() {
		if sr.Name != "guard.referee" {
			continue
		}
		chain := []string{}
		for cur := sr; ; cur = byID[cur.Parent] {
			chain = append(chain, cur.Name)
			if cur.Parent == 0 {
				break
			}
		}
		want := []string{"guard.referee", "kernel.GaussianBlur", "cell.GauBlu", "campaign.isa", "campaign.GauBlu"}
		if len(chain) != len(want) {
			t.Fatalf("guard span chain = %v, want %v", chain, want)
		}
		for i := range want {
			if chain[i] != want[i] {
				t.Fatalf("guard span chain = %v, want %v", chain, want)
			}
		}
		break
	}

	snap := reg.Snapshot()
	var injected, classified float64
	for series, v := range snap {
		if strings.HasPrefix(series, "fault_injected_total") {
			injected += v
		}
		if strings.HasPrefix(series, "fault_classified_total") {
			classified += v
		}
	}
	var wantInjected uint64
	for _, ir := range rep.PerISA {
		wantInjected += ir.Injected
	}
	if injected != float64(wantInjected) {
		t.Errorf("fault_injected_total = %v, want %d", injected, wantInjected)
	}
	if classified == 0 {
		t.Error("fault_classified_total is empty")
	}
	if v := snap[`fault_classified_total{isa="neon",outcome="detected"}`]; v != float64(rep.PerISA[0].Detected) {
		t.Errorf("neon detected counter = %v, want %d", v, rep.PerISA[0].Detected)
	}

	// The three acceptance-criterion families must render with non-zero
	// samples in the Prometheus exposition.
	var buf bytes.Buffer
	if err := reg.WritePrometheus(&buf); err != nil {
		t.Fatal(err)
	}
	out := buf.String()
	for _, fam := range []string{"simd_instructions_total{", "guard_actions_total{", "fault_classified_total{"} {
		if !strings.Contains(out, fam) {
			t.Errorf("prometheus output missing family %q", fam)
		}
	}
}
