package harness

import (
	"bytes"
	"context"
	"errors"
	"reflect"
	"strings"
	"testing"
	"time"

	"simdstudy/internal/cv"
	"simdstudy/internal/faults"
	"simdstudy/internal/image"
	"simdstudy/internal/platform"
	"simdstudy/internal/timing"
)

var testRes = image.Resolution{Width: 96, Height: 64, Name: "96x64"}

func TestVerifyErrorPaths(t *testing.T) {
	if _, err := Verify("NoSuchBench", testRes); err == nil ||
		!strings.Contains(err.Error(), "unknown benchmark") {
		t.Errorf("unknown benchmark: got %v", err)
	}
	for _, res := range []image.Resolution{
		{Width: 0, Height: 64, Name: "0x64"},
		{Width: 96, Height: -1, Name: "96x-1"},
	} {
		if _, err := Verify("GauBlu", res); !errors.Is(err, ErrBadResolution) {
			t.Errorf("%s: want ErrBadResolution, got %v", res.Name, err)
		}
	}
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	if _, err := VerifyCtx(ctx, "GauBlu", testRes); !errors.Is(err, context.Canceled) {
		t.Errorf("cancelled verify: got %v", err)
	}
}

func TestRunGridCtxDeadline(t *testing.T) {
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	if _, err := RunGridCtx(ctx, "BinThr", platform.Paper(), smallSizes, GridOptions{}); !errors.Is(err, context.Canceled) {
		t.Errorf("cancelled grid: got %v", err)
	}
	if _, err := RunGridCtx(context.Background(), "BinThr", platform.Paper(),
		[]image.Resolution{{Width: -3, Height: 2}}, GridOptions{}); !errors.Is(err, ErrBadResolution) {
		t.Errorf("bad resolution: got %v", err)
	}
}

func TestRunGridCtxRetriesExhaust(t *testing.T) {
	// An unknown benchmark fails deterministically; retries must exhaust
	// and surface the underlying error, not mask it.
	start := time.Now()
	_, err := RunGridCtx(context.Background(), "NoSuch", platform.Paper()[:1], smallSizes,
		GridOptions{Retries: 2, Backoff: time.Millisecond})
	if err == nil {
		t.Fatal("want error from unknown benchmark")
	}
	// Backoff 1ms + 2ms must actually have been waited.
	if elapsed := time.Since(start); elapsed < 3*time.Millisecond {
		t.Errorf("retries returned after %v; backoff not applied", elapsed)
	}
}

// TestFaultCampaignDetectsCorruption is the acceptance check: injected lane
// corruption must trigger guard detection and scalar fallback, and the
// final report must classify every injected fault.
func TestFaultCampaignDetectsCorruption(t *testing.T) {
	rep, err := RunFaultCampaign(context.Background(), "GauBlu", testRes, CampaignConfig{
		Rate: 1e-4,
		Seed: 7,
		// Retries off and kill-switch disabled so every detection becomes a
		// fallback and injection continues across the whole burst.
		Policy: cv.GuardPolicy{SampleRows: 64, MaxRetries: 0, KillAfter: -1},
	})
	if err != nil {
		t.Fatal(err)
	}
	if len(rep.PerISA) != 2 {
		t.Fatalf("want NEON+SSE2 reports, got %d", len(rep.PerISA))
	}
	for _, ir := range rep.PerISA {
		if ir.Injected == 0 {
			t.Errorf("%v: nothing injected at rate 1e-4 (opportunities=%d)", ir.ISA, ir.Opportunities)
		}
		if ir.Detected == 0 {
			t.Errorf("%v: corruption never detected (injected=%d)", ir.ISA, ir.Injected)
		}
		if ir.Fallbacks == 0 {
			t.Errorf("%v: no scalar fallback recorded", ir.ISA)
		}
		if ir.Detected != ir.Fallbacks {
			t.Errorf("%v: with retries off every detection must fall back: detected=%d fallbacks=%d",
				ir.ISA, ir.Detected, ir.Fallbacks)
		}
	}

	var out bytes.Buffer
	rep.Render(&out)
	for _, want := range []string{"injected", "detected", "masked", "rate=0.0001 seed=7"} {
		if !strings.Contains(out.String(), want) {
			t.Errorf("report missing %q:\n%s", want, out.String())
		}
	}
}

// TestFaultCampaignDeterministic: identical config must yield identical
// reports — the whole point of a seeded plan.
func TestFaultCampaignDeterministic(t *testing.T) {
	cfg := CampaignConfig{Rate: 5e-5, Seed: 11}
	a, err := RunFaultCampaign(context.Background(), "BinThr", testRes, cfg)
	if err != nil {
		t.Fatal(err)
	}
	b, err := RunFaultCampaign(context.Background(), "BinThr", testRes, cfg)
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(a, b) {
		t.Fatalf("campaigns differ:\n%+v\nvs\n%+v", a, b)
	}
}

// TestFaultCampaignZeroRate: with no faults the guard must stay silent for
// every benchmark — guarded mode changes nothing when injection is off.
func TestFaultCampaignZeroRate(t *testing.T) {
	for _, bench := range timing.BenchNames {
		rep, err := RunFaultCampaign(context.Background(), bench, testRes, CampaignConfig{Rate: 0, Seed: 1})
		if err != nil {
			t.Fatalf("%s: %v", bench, err)
		}
		for _, ir := range rep.PerISA {
			if ir.Injected != 0 || ir.Detected != 0 || ir.Fallbacks != 0 || ir.Masked != 0 {
				t.Errorf("%s/%v: spurious activity at rate 0: %+v", bench, ir.ISA, ir)
			}
			if ir.Opportunities == 0 {
				t.Errorf("%s/%v: no fault opportunities counted — hooks not wired?", bench, ir.ISA)
			}
		}
	}
	if _, err := RunFaultCampaign(context.Background(), "NoSuch", testRes, CampaignConfig{}); err == nil {
		t.Error("unknown benchmark should error")
	}
}

// TestFaultCampaignSiteRestriction: restricting the plan to store sites
// must keep all injections at stores.
func TestFaultCampaignSiteRestriction(t *testing.T) {
	rep, err := RunFaultCampaign(context.Background(), "BinThr", testRes, CampaignConfig{
		Rate:  1e-3,
		Seed:  3,
		Sites: []faults.Site{faults.SiteStore},
		Kinds: []faults.Kind{faults.KindBitFlip},
	})
	if err != nil {
		t.Fatal(err)
	}
	for _, ir := range rep.PerISA {
		if ir.Injected == 0 {
			t.Errorf("%v: store-site restriction injected nothing", ir.ISA)
		}
	}
}
