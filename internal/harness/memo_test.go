package harness

import (
	"context"
	"strings"
	"testing"

	"simdstudy/internal/image"
	"simdstudy/internal/memo"
)

// TestCampaignMemoWarmColdIdentity: a clean campaign run against a cold
// cache computes and stores every image; the identical rerun is served
// entirely from the cache and produces bit-identical outputs — same
// chained OutputSum per ISA.
func TestCampaignMemoWarmColdIdentity(t *testing.T) {
	cache := memo.New(memo.Config{MaxBytes: 64 << 20})
	cfg := CampaignConfig{Burst: 3, Memo: cache}
	res := image.Resolution{Width: 160, Height: 120, Name: "160x120"}

	cold, err := RunFaultCampaign(context.Background(), "GauBlu", res, cfg)
	if err != nil {
		t.Fatalf("cold campaign: %v", err)
	}
	warm, err := RunFaultCampaign(context.Background(), "GauBlu", res, cfg)
	if err != nil {
		t.Fatalf("warm campaign: %v", err)
	}
	for i, ir := range cold.PerISA {
		if ir.MemoMisses != 3 || ir.MemoHits != 0 {
			t.Errorf("cold %v: hits=%d misses=%d; want 0/3", ir.ISA, ir.MemoHits, ir.MemoMisses)
		}
		wr := warm.PerISA[i]
		if wr.MemoHits != 3 || wr.MemoMisses != 0 {
			t.Errorf("warm %v: hits=%d misses=%d; want 3/0", wr.ISA, wr.MemoHits, wr.MemoMisses)
		}
		if ir.OutputSum == 0 || ir.OutputSum != wr.OutputSum {
			t.Errorf("%v: warm output sum %016x != cold %016x", ir.ISA, wr.OutputSum, ir.OutputSum)
		}
	}

	var sb strings.Builder
	warm.Render(&sb)
	if !strings.Contains(sb.String(), "memo[neon]: 3 hits, 0 misses") {
		t.Errorf("render missing memo line:\n%s", sb.String())
	}
}

// TestCampaignMemoExclusions: memoization refuses to combine with fault
// injection or checkpointed resume, both of which assume every image is
// actually executed.
func TestCampaignMemoExclusions(t *testing.T) {
	cache := memo.New(memo.Config{MaxBytes: 1 << 20})
	res := image.Resolution{Width: 64, Height: 48, Name: "64x48"}

	_, err := RunFaultCampaign(context.Background(), "BinThr", res,
		CampaignConfig{Memo: cache, Rate: 0.5})
	if err == nil || !strings.Contains(err.Error(), "fault injection") {
		t.Errorf("memo+injection error = %v; want fault-injection rejection", err)
	}
	_, err = RunFaultCampaign(context.Background(), "BinThr", res,
		CampaignConfig{Memo: cache, CheckpointPath: t.TempDir() + "/j.ckpt"})
	if err == nil || !strings.Contains(err.Error(), "checkpoint") {
		t.Errorf("memo+checkpoint error = %v; want checkpoint rejection", err)
	}
}

// TestRunMemoBenchSpeedupFloor pins the acceptance bar: at 5 Mpx a
// verified cache hit must be at least 5x faster than recomputing the
// kernel, and byte-identical to it.
func TestRunMemoBenchSpeedupFloor(t *testing.T) {
	if testing.Short() {
		t.Skip("5 Mpx timing run")
	}
	r, err := RunMemoBench("ConvertFloatShort", image.Res5MP)
	if err != nil {
		t.Fatal(err)
	}
	if !r.Identical {
		t.Fatal("cache hit served a plane that differs from direct computation")
	}
	if r.Speedup < 5 {
		t.Errorf("hit speedup %.1fx (cold %.2fms, hit %.2fms); want >= 5x",
			r.Speedup, r.ColdSeconds*1e3, r.HitSeconds*1e3)
	}
}

// TestRunMemoBenchSmall keeps the helper itself covered in -short runs.
func TestRunMemoBenchSmall(t *testing.T) {
	r, err := RunMemoBench("BinThr", image.Resolution{Width: 128, Height: 96, Name: "128x96"})
	if err != nil {
		t.Fatal(err)
	}
	if !r.Identical {
		t.Error("hit plane differs from computed plane")
	}
	if r.ColdSeconds <= 0 || r.HitSeconds <= 0 {
		t.Errorf("non-positive timings: cold %v hit %v", r.ColdSeconds, r.HitSeconds)
	}
	if _, err := RunMemoBench("NoSuchBench", image.Res03MP); err == nil {
		t.Error("unknown bench accepted")
	}
}
