package harness

import (
	"context"
	"errors"
	"fmt"
	"os"
	"path/filepath"
	"reflect"
	"testing"
	"time"

	"simdstudy/internal/checkpoint"
	"simdstudy/internal/cv"
	"simdstudy/internal/image"
	"simdstudy/internal/obs"
	"simdstudy/internal/platform"
	"simdstudy/internal/resilience"
)

// runCampaignToCompletion runs the campaign with a journal at path,
// returning the report and the fault_* counter families of its registry.
func runCampaignToCompletion(t *testing.T, path string, cfg CampaignConfig) (*FaultReport, obs.Snapshot) {
	t.Helper()
	cfg.Obs = obs.NewRegistry()
	cfg.CheckpointPath = path
	rep, err := RunFaultCampaign(context.Background(), "GauBlu", testRes, cfg)
	if err != nil {
		t.Fatalf("campaign: %v", err)
	}
	return rep, cfg.Obs.Snapshot().Filter("fault_")
}

// TestCampaignKillAndResume is the tentpole determinism proof: a campaign
// interrupted at an image boundary (simulating a SIGKILL after the journal
// append) and resumed — possibly at a different worker count — produces a
// report and fault counters bit-identical to an uninterrupted run.
func TestCampaignKillAndResume(t *testing.T) {
	base := CampaignConfig{Rate: 1e-3, Seed: 17, Burst: 3}

	// Uninterrupted reference, no journal.
	refReg := obs.NewRegistry()
	refCfg := base
	refCfg.Obs = refReg
	ref, err := RunFaultCampaign(context.Background(), "GauBlu", testRes, refCfg)
	if err != nil {
		t.Fatalf("reference campaign: %v", err)
	}
	refFault := refReg.Snapshot().Filter("fault_")
	total := 2 * base.Burst // images across both ISAs

	for _, w := range []struct{ killed, resumed int }{
		{1, 1}, {4, 4}, {1, 4}, {4, 1},
	} {
		for killAt := 1; killAt < total; killAt++ {
			name := fmt.Sprintf("w%d-w%d/kill=%d", w.killed, w.resumed, killAt)
			t.Run(name, func(t *testing.T) {
				path := filepath.Join(t.TempDir(), "campaign.journal")

				// The killed run: cancel at the killAt-th journal append; the
				// campaign aborts at the next image boundary, exactly like a
				// process killed right after a durable append.
				ctx, cancel := context.WithCancel(context.Background())
				cfg := base
				cfg.Parallel = cv.ParallelConfig{Workers: w.killed, MinRowsPerBand: 1}
				cfg.Obs = obs.NewRegistry()
				cfg.CheckpointPath = path
				cfg.CheckpointHook = func(records int) {
					if records >= killAt {
						cancel()
					}
				}
				_, err := RunFaultCampaign(ctx, "GauBlu", testRes, cfg)
				var de *resilience.DeadlineError
				if !errors.As(err, &de) {
					t.Fatalf("killed run = %v, want *resilience.DeadlineError", err)
				}

				// The resumed run replays the journaled prefix and recomputes
				// the remainder — at its own worker count.
				cfg2 := base
				cfg2.Parallel = cv.ParallelConfig{Workers: w.resumed, MinRowsPerBand: 1}
				rep, fault := runCampaignToCompletion(t, path, cfg2)

				if !reflect.DeepEqual(rep, ref) {
					t.Errorf("resumed report differs from uninterrupted run:\n got %+v\nwant %+v", rep, ref)
				}
				if !reflect.DeepEqual(fault, refFault) {
					t.Errorf("resumed fault counters differ:\n got %v\nwant %v", fault, refFault)
				}
			})
		}
	}
}

// TestCampaignResumeNoRecompute: resuming a fully completed campaign
// recomputes nothing — every image is served from the journal.
func TestCampaignResumeComplete(t *testing.T) {
	path := filepath.Join(t.TempDir(), "campaign.journal")
	cfg := CampaignConfig{Rate: 1e-3, Seed: 17, Burst: 2}
	ref, refFault := runCampaignToCompletion(t, path, cfg)

	appends := 0
	cfg2 := cfg
	cfg2.CheckpointHook = func(int) { appends++ }
	rep, fault := runCampaignToCompletion(t, path, cfg2)
	if appends != 0 {
		t.Errorf("complete journal still appended %d records", appends)
	}
	if !reflect.DeepEqual(rep, ref) {
		t.Errorf("fully replayed report differs:\n got %+v\nwant %+v", rep, ref)
	}
	if !reflect.DeepEqual(fault, refFault) {
		t.Errorf("fully replayed fault counters differ:\n got %v\nwant %v", fault, refFault)
	}
}

// TestCampaignJournalMismatch: a journal written under a different
// configuration must refuse to resume with a typed error, not silently mix
// two runs' results.
func TestCampaignJournalMismatch(t *testing.T) {
	path := filepath.Join(t.TempDir(), "campaign.journal")
	cfg := CampaignConfig{Rate: 1e-3, Seed: 17, Burst: 2, CheckpointPath: path}
	if _, err := RunFaultCampaign(context.Background(), "GauBlu", testRes, cfg); err != nil {
		t.Fatal(err)
	}
	cfg.Seed = 18
	_, err := RunFaultCampaign(context.Background(), "GauBlu", testRes, cfg)
	var me *checkpoint.MismatchError
	if !errors.As(err, &me) {
		t.Fatalf("seed-changed resume = %v, want *checkpoint.MismatchError", err)
	}
}

// TestCampaignCorruptJournalColdStarts: a damaged journal is discarded with
// a warning event and the campaign runs cold to the correct result.
func TestCampaignCorruptJournalColdStarts(t *testing.T) {
	dir := t.TempDir()
	refPath := filepath.Join(dir, "ref.journal")
	cfg := CampaignConfig{Rate: 1e-3, Seed: 17, Burst: 2}
	ref, _ := runCampaignToCompletion(t, refPath, cfg)

	path := filepath.Join(dir, "campaign.journal")
	if err := os.WriteFile(path, []byte("not a journal\n"), 0o644); err != nil {
		t.Fatal(err)
	}
	reg := obs.NewRegistry()
	cfg2 := cfg
	cfg2.Obs = reg
	cfg2.CheckpointPath = path
	rep, err := RunFaultCampaign(context.Background(), "GauBlu", testRes, cfg2)
	if err != nil {
		t.Fatalf("cold start over corrupt journal: %v", err)
	}
	if !reflect.DeepEqual(rep, ref) {
		t.Errorf("cold-start report differs from reference")
	}
	found := false
	for _, ev := range reg.Events() {
		if ev.Name == "checkpoint.corrupt" {
			found = true
		}
	}
	if !found {
		t.Error("no checkpoint.corrupt event emitted")
	}
	// The recreated journal must now be resumable.
	if _, err := checkpoint.Open(path, "campaign",
		campaignFingerprint("GauBlu", testRes, cfg2, 2)); err != nil {
		t.Fatalf("recreated journal unreadable: %v", err)
	}
}

// TestCampaignStallDeadlineClean: a generous stall deadline changes nothing
// about a healthy campaign's results.
func TestCampaignStallDeadlineClean(t *testing.T) {
	cfg := CampaignConfig{Rate: 1e-3, Seed: 17, Burst: 2}
	ref, err := RunFaultCampaign(context.Background(), "GauBlu", testRes, cfg)
	if err != nil {
		t.Fatal(err)
	}
	cfg.StallDeadline = time.Hour
	cfg.Parallel = cv.ParallelConfig{Workers: 4, MinRowsPerBand: 1}
	rep, err := RunFaultCampaign(context.Background(), "GauBlu", testRes, cfg)
	if err != nil {
		t.Fatalf("watched campaign: %v", err)
	}
	if !reflect.DeepEqual(rep, ref) {
		t.Errorf("watched report differs:\n got %+v\nwant %+v", rep, ref)
	}
}

// gridEnv is the small grid the resume tests run: 2 platforms x 2 sizes.
func gridEnv() ([]platform.Platform, []image.Resolution) {
	return []platform.Platform{platform.AtomD510(), platform.TIDM3730()},
		[]image.Resolution{
			{Width: 640, Height: 480, Name: "640x480"},
			{Width: 1280, Height: 720, Name: "1280x720"},
		}
}

// TestGridKillAndResume: a grid interrupted after k journaled cells resumes
// to the same cells as an uninterrupted run, recomputing only the remainder.
func TestGridKillAndResume(t *testing.T) {
	plats, sizes := gridEnv()
	ref, err := RunGridCtx(context.Background(), "GauBlu", plats, sizes, GridOptions{})
	if err != nil {
		t.Fatal(err)
	}
	total := len(plats) * len(sizes)
	for killAt := 1; killAt < total; killAt++ {
		t.Run(fmt.Sprintf("kill=%d", killAt), func(t *testing.T) {
			path := filepath.Join(t.TempDir(), "grid.journal")
			ctx, cancel := context.WithCancel(context.Background())
			_, err := RunGridCtx(ctx, "GauBlu", plats, sizes, GridOptions{
				CheckpointPath: path,
				CheckpointHook: func(records int) {
					if records >= killAt {
						cancel()
					}
				},
			})
			var de *resilience.DeadlineError
			if !errors.As(err, &de) {
				t.Fatalf("killed grid = %v, want *resilience.DeadlineError", err)
			}

			recomputed := 0
			g, err := RunGridCtx(context.Background(), "GauBlu", plats, sizes, GridOptions{
				CheckpointPath: path,
				CheckpointHook: func(int) { recomputed++ },
			})
			if err != nil {
				t.Fatalf("resumed grid: %v", err)
			}
			if !reflect.DeepEqual(g.Cells, ref.Cells) {
				t.Errorf("resumed cells differ from uninterrupted run")
			}
			if recomputed > total-killAt {
				t.Errorf("resume recomputed %d cells; at most %d were outstanding", recomputed, total-killAt)
			}
		})
	}
}

// TestGridJournalMismatch: a grid journal from different axes refuses resume.
func TestGridJournalMismatch(t *testing.T) {
	plats, sizes := gridEnv()
	path := filepath.Join(t.TempDir(), "grid.journal")
	if _, err := RunGridCtx(context.Background(), "GauBlu", plats, sizes,
		GridOptions{CheckpointPath: path}); err != nil {
		t.Fatal(err)
	}
	_, err := RunGridCtx(context.Background(), "SobFil", plats, sizes,
		GridOptions{CheckpointPath: path})
	var me *checkpoint.MismatchError
	if !errors.As(err, &me) {
		t.Fatalf("bench-changed resume = %v, want *checkpoint.MismatchError", err)
	}
}

// TestDecodeCampaignJournalOrder: records that violate execution order are
// rejected (treated as corruption) rather than replayed out of place.
func TestDecodeCampaignJournalOrder(t *testing.T) {
	isas := []cv.ISA{cv.ISANEON, cv.ISASSE2}
	mk := func(t *testing.T, recs []campaignCellRecord) *checkpoint.Journal {
		t.Helper()
		j, err := checkpoint.Create(filepath.Join(t.TempDir(), "j"), "campaign", "fp")
		if err != nil {
			t.Fatal(err)
		}
		for _, r := range recs {
			if err := j.Append(r); err != nil {
				t.Fatal(err)
			}
		}
		return j
	}
	ok := func(recs ...campaignCellRecord) bool {
		_, valid := decodeCampaignJournal(mk(t, recs), isas, 2)
		return valid
	}
	if !ok() {
		t.Error("empty journal rejected")
	}
	if !ok(campaignCellRecord{ISA: "neon", Image: 0}, campaignCellRecord{ISA: "neon", Image: 1},
		campaignCellRecord{ISA: "sse2", Image: 0}) {
		t.Error("valid execution order rejected")
	}
	if ok(campaignCellRecord{ISA: "neon", Image: 1}) {
		t.Error("gap at image 0 accepted")
	}
	if ok(campaignCellRecord{ISA: "sse2", Image: 0}) {
		t.Error("second ISA before first accepted")
	}
	if ok(campaignCellRecord{ISA: "neon", Image: 0}, campaignCellRecord{ISA: "neon", Image: 0}) {
		t.Error("duplicate image accepted")
	}
	if ok(campaignCellRecord{ISA: "scalar", Image: 0}) {
		t.Error("unknown ISA accepted")
	}
}
