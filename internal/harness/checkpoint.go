package harness

import (
	"crypto/sha256"
	"encoding/hex"
	"encoding/json"
	"fmt"
	"strings"

	"simdstudy/internal/checkpoint"
	"simdstudy/internal/cv"
	"simdstudy/internal/faults"
	"simdstudy/internal/image"
	"simdstudy/internal/integrity"
	"simdstudy/internal/obs"
	"simdstudy/internal/platform"
)

// This file is the harness's crash-safety layer: the journal records,
// fingerprints and replay logic that make RunGridCtx and RunFaultCampaign
// resumable after a SIGKILL. The workload itself is deterministic (per-
// (pass, row) fault reseeding, worker-count-invariant counters), so replay
// of journaled per-cell results plus recomputation of the remainder is
// bit-identical to an uninterrupted run; checkpoint_test.go proves it at
// several interrupt points and worker counts.

// gridCellRecord journals one completed grid cell. Indices are positions in
// the run's (sizes, platforms) axes — safe because the journal fingerprint
// pins both axes — and the names ride along for human inspection.
type gridCellRecord struct {
	Size     int          `json:"size"`
	Plat     int          `json:"plat"`
	SizeName string       `json:"size_name"`
	PlatName string       `json:"plat_name"`
	Auto     float64      `json:"auto_seconds"`
	Hand     float64      `json:"hand_seconds"`
	Metrics  obs.Snapshot `json:"metrics,omitempty"`
}

// campaignCellRecord journals one completed campaign image: the per-image
// classification deltas (replayed into the report and the fault counters),
// plus the cumulative plan counters and Ops resume state needed to restart
// computation at the next image.
type campaignCellRecord struct {
	ISA            string         `json:"isa"`
	Image          int            `json:"image"`
	Detected       int            `json:"detected"`
	RetryRecovered int            `json:"retry_recovered"`
	Fallbacks      int            `json:"fallbacks"`
	KillSwitch     int            `json:"kill_switch"`
	InjectedDelta  uint64         `json:"injected_delta"`
	MaskedDelta    uint64         `json:"masked_delta"`
	PlanCalls      uint64         `json:"plan_calls"`
	PlanInjected   uint64         `json:"plan_injected"`
	Resume         cv.ResumeState `json:"resume"`
	// Audit fields are present only when the campaign runs with AuditRate >
	// 0, so journals written before (or without) auditing keep their exact
	// byte encoding.
	AuditsDelta uint64                 `json:"audits_delta,omitempty"`
	AuditCaught uint64                 `json:"audit_caught_delta,omitempty"`
	AuditResume *integrity.AuditResume `json:"audit_resume,omitempty"`
}

// fingerprint hashes the canonical description of a run's result-affecting
// configuration. Anything deliberately absent (grid concurrency, campaign
// worker count, retry/backoff tuning) may differ between the killed process
// and the resuming one without changing results — resuming a campaign at a
// different worker count is exactly the PR 4 invariance this layer builds
// on.
func fingerprint(parts ...string) string {
	h := sha256.Sum256([]byte(strings.Join(parts, "|")))
	return hex.EncodeToString(h[:16])
}

func gridFingerprint(bench string, platforms []platform.Platform, sizes []image.Resolution) string {
	parts := []string{"grid", bench}
	for _, p := range platforms {
		parts = append(parts, p.Name)
	}
	for _, r := range sizes {
		parts = append(parts, fmt.Sprintf("%s=%dx%d", r.Name, r.Width, r.Height))
	}
	return fingerprint(parts...)
}

func campaignFingerprint(bench string, res image.Resolution, cfg CampaignConfig, burst int) string {
	pol := cfg.Policy
	if pol == (cv.GuardPolicy{}) {
		pol = cv.DefaultGuardPolicy()
	}
	parts := []string{
		"campaign", bench,
		fmt.Sprintf("%s=%dx%d", res.Name, res.Width, res.Height),
		fmt.Sprintf("rate=%g", cfg.Rate),
		fmt.Sprintf("seed=%d", cfg.Seed),
		fmt.Sprintf("sites=%v", cfg.Sites),
		fmt.Sprintf("kinds=%v", cfg.Kinds),
		fmt.Sprintf("burst=%d", burst),
		fmt.Sprintf("policy=%+v", pol),
	}
	// Audit and guard-disable parts are appended only when set, so journals
	// from pre-audit builds keep their fingerprints.
	if cfg.AuditRate > 0 || cfg.GuardDisabled {
		parts = append(parts,
			fmt.Sprintf("audit=%g/%d", cfg.AuditRate, cfg.AuditSeed),
			fmt.Sprintf("noguard=%t", cfg.GuardDisabled),
		)
	}
	// Appended only when fusion is on, for the same reason: the fused path
	// is bit-identical, but a journal should still name the config that
	// produced it.
	if cfg.Fuse.Enabled {
		parts = append(parts, fmt.Sprintf("fuse=%d", cfg.Fuse.StripRows))
	}
	return fingerprint(parts...)
}

// openJournal applies the resume policy shared by both runners: resume a
// matching journal, start cold on a missing one, discard and warn on a
// corrupt one (surfaced as a checkpoint.corrupt event), and refuse a journal
// written by a different configuration.
func openJournal(path, kind, fp string, reg *obs.Registry) (*checkpoint.Journal, error) {
	j, resumed, warn, err := checkpoint.OpenOrCreate(path, kind, fp)
	if err != nil {
		return nil, err
	}
	if warn != nil && reg != nil {
		reg.Emit("checkpoint.corrupt", map[string]any{
			"path": path, "error": warn.Error(),
		})
	}
	if reg != nil {
		reg.Emit("checkpoint.open", map[string]any{
			"path": path, "kind": kind, "resumed": resumed, "records": j.Len(),
		})
	}
	return j, nil
}

// decodeGridJournal replays a grid journal into completed-cell records. A
// record with out-of-range indices or a duplicate cell means the file was
// tampered with past its checksums; it is treated like corruption (cold
// start) rather than trusted.
func decodeGridJournal(j *checkpoint.Journal, nSizes, nPlats int) ([]gridCellRecord, bool) {
	recs := j.Records()
	out := make([]gridCellRecord, 0, len(recs))
	seen := make(map[[2]int]bool, len(recs))
	for _, rec := range recs {
		var r gridCellRecord
		if err := json.Unmarshal(rec.Data, &r); err != nil {
			return nil, false
		}
		if r.Size < 0 || r.Size >= nSizes || r.Plat < 0 || r.Plat >= nPlats {
			return nil, false
		}
		k := [2]int{r.Size, r.Plat}
		if seen[k] {
			return nil, false
		}
		seen[k] = true
		out = append(out, r)
	}
	return out, true
}

// decodeCampaignJournal replays a campaign journal into per-ISA completed-
// image groups. Records must follow execution order — each ISA's images
// contiguous from zero, an ISA starting only after its predecessor finished
// all burst images — anything else is treated like corruption (cold start).
func decodeCampaignJournal(j *checkpoint.Journal, isas []cv.ISA, burst int) (map[string][]campaignCellRecord, bool) {
	groups := make(map[string][]campaignCellRecord, len(isas))
	cur := 0
	for _, rec := range j.Records() {
		var r campaignCellRecord
		if err := json.Unmarshal(rec.Data, &r); err != nil {
			return nil, false
		}
		// Advance past ISAs whose groups are complete.
		for cur < len(isas) && len(groups[isas[cur].String()]) == burst {
			cur++
		}
		if cur >= len(isas) || r.ISA != isas[cur].String() {
			return nil, false
		}
		if r.Image != len(groups[r.ISA]) {
			return nil, false
		}
		groups[r.ISA] = append(groups[r.ISA], r)
	}
	return groups, true
}

// replayCampaignRecord folds one journaled image back into the in-progress
// per-ISA report and re-increments the observable fault counters (and the
// fault.masked event) exactly as the live classification loop would have.
// Kernel spans and wall-clock series are process-local telemetry and are
// not replayed.
func replayCampaignRecord(rec campaignCellRecord, ir *ISAFaultReport,
	reg *obs.Registry, bench string, lISA obs.Label) {
	ir.Detected += rec.Detected
	ir.RetryRecovered += rec.RetryRecovered
	ir.Fallbacks += rec.Fallbacks
	ir.KillSwitch += rec.KillSwitch
	ir.Masked += rec.MaskedDelta
	ir.Audits += rec.AuditsDelta
	ir.AuditCaught += rec.AuditCaught
	reg.Counter("fault_injected_total", lISA).Add(rec.InjectedDelta)
	for _, oc := range []struct {
		name string
		n    int
	}{
		{cv.ActionDetected.String(), rec.Detected},
		{cv.ActionRetryRecovered.String(), rec.RetryRecovered},
		{cv.ActionFallback.String(), rec.Fallbacks},
		{cv.ActionKillSwitch.String(), rec.KillSwitch},
	} {
		if oc.n > 0 {
			reg.Counter("fault_classified_total", lISA,
				obs.L("outcome", oc.name)).Add(uint64(oc.n))
		}
	}
	if rec.MaskedDelta > 0 {
		reg.Counter("fault_classified_total", lISA,
			obs.L("outcome", "masked")).Add(rec.MaskedDelta)
		reg.Emit("fault.masked", map[string]any{
			"bench": bench, "isa": rec.ISA,
			"image": rec.Image, "count": rec.MaskedDelta,
		})
	}
}

// restoreCampaignState positions a fresh plan and Ops where the journaled
// prefix left them: cumulative plan counters (the decision stream needs no
// restoration — it is reseeded per (pass, row)), the pass sequence that
// derives those salts, the guard's fallback/kill-switch state, and — when
// both the caller and the journal carry one — the auditor's sampler stream
// position and tallies.
func restoreCampaignState(done []campaignCellRecord, plan *faults.Plan, o *cv.Ops, aud *integrity.Auditor) (prevInjected uint64) {
	if len(done) == 0 {
		return 0
	}
	last := done[len(done)-1]
	plan.RestoreCounters(last.PlanCalls, last.PlanInjected)
	o.SetResumeState(last.Resume)
	if aud != nil && last.AuditResume != nil {
		aud.SetResume(*last.AuditResume)
	}
	return last.PlanInjected
}

// auditResumePtr snapshots an auditor's resume state for journaling, nil
// when auditing is off so pre-audit journal bytes are unchanged.
func auditResumePtr(aud *integrity.Auditor) *integrity.AuditResume {
	if aud == nil {
		return nil
	}
	r := aud.Resume()
	return &r
}
