package harness

import (
	"context"
	"errors"
	"fmt"
	"io"
	"sync"
	"sync/atomic"
	"time"

	"simdstudy/internal/checkpoint"
	"simdstudy/internal/cv"
	"simdstudy/internal/faults"
	"simdstudy/internal/image"
	"simdstudy/internal/integrity"
	"simdstudy/internal/memo"
	"simdstudy/internal/obs"
	"simdstudy/internal/platform"
	"simdstudy/internal/resilience"
	"simdstudy/internal/super"
	"simdstudy/internal/timing"
	"simdstudy/internal/trace"
)

// This file is the harness's robustness layer: context-aware variants of
// RunGrid and Verify (deadlines, per-cell retry with backoff) and the fault
// campaign — run every hand-SIMD kernel under a seeded fault plan with the
// cv guard enabled and report injected vs. detected vs. masked faults.

// ErrBadResolution rejects non-positive image dimensions before any Mat is
// allocated.
var ErrBadResolution = errors.New("harness: invalid resolution")

func validateResolution(res image.Resolution) error {
	if res.Width <= 0 || res.Height <= 0 {
		return fmt.Errorf("%w: %dx%d", ErrBadResolution, res.Width, res.Height)
	}
	return nil
}

// benchSpec describes how to execute one benchmark's kernel directly: the
// source/destination pixel kinds, the per-ISA comparison tolerance, the
// fixed-parameter signature the memoization key folds in, and the entry
// point. Verify and RunFaultCampaign share it so both exercise the exact
// same code paths.
type benchSpec struct {
	f32Src  bool
	dstKind image.Type
	sig     string // parameters baked into run; part of the memo content key
	tol     func(isa cv.ISA) int
	run     func(o *cv.Ops, src, dst *image.Mat) error
}

func exactTol(cv.ISA) int { return 0 }

func benchSpecFor(bench string) (benchSpec, error) {
	switch bench {
	case "ConvertFloatShort":
		return benchSpec{
			f32Src:  true,
			dstKind: image.S16,
			sig:     "f32s16",
			// vcvt truncates where the ARM scalar referee rounds: 1 LSB.
			tol: func(isa cv.ISA) int {
				if isa == cv.ISANEON {
					return 1
				}
				return 0
			},
			run: func(o *cv.Ops, src, dst *image.Mat) error {
				return o.ConvertF32ToS16(src, dst)
			},
		}, nil
	case "BinThr":
		return benchSpec{
			dstKind: image.U8,
			sig:     "t128m255trunc",
			tol:     exactTol,
			run: func(o *cv.Ops, src, dst *image.Mat) error {
				return o.Threshold(src, dst, 128, 255, cv.ThreshTrunc)
			},
		}, nil
	case "GauBlu":
		return benchSpec{
			dstKind: image.U8,
			sig:     "g5x5",
			tol:     exactTol,
			run: func(o *cv.Ops, src, dst *image.Mat) error {
				return o.GaussianBlur(src, dst)
			},
		}, nil
	case "SobFil":
		return benchSpec{
			dstKind: image.S16,
			sig:     "dx1dy0",
			tol:     exactTol,
			run: func(o *cv.Ops, src, dst *image.Mat) error {
				return o.SobelFilter(src, dst, 1, 0)
			},
		}, nil
	case "EdgDet":
		return benchSpec{
			dstKind: image.U8,
			sig:     "t100",
			tol:     exactTol,
			run: func(o *cv.Ops, src, dst *image.Mat) error {
				return o.DetectEdges(src, dst, 100)
			},
		}, nil
	case "Canny":
		return benchSpec{
			dstKind: image.U8,
			sig:     "lo60hi200",
			tol:     exactTol,
			run: func(o *cv.Ops, src, dst *image.Mat) error {
				return o.Canny(src, dst, 60, 200)
			},
		}, nil
	}
	return benchSpec{}, fmt.Errorf("harness: unknown benchmark %q", bench)
}

func (s benchSpec) burst(res image.Resolution, n int) []*image.Mat {
	if s.f32Src {
		return image.BurstF32(res, n)
	}
	return image.Burst(res, n)
}

// GridOptions tunes RunGridCtx.
type GridOptions struct {
	// Retries is how many extra attempts each grid cell gets after a
	// failure before the grid run is abandoned.
	Retries int
	// Backoff is the wait before the first retry; it doubles per attempt.
	// Zero means no wait.
	Backoff time.Duration
	// Obs, when non-nil, receives grid observability: a root span per
	// grid, one span per cell (on its own Chrome-trace track, carrying the
	// modeled seconds and cycles), attempt/retry counters and per-cell
	// modeled-seconds gauges. Each cell records into a private registry
	// that is merged in at cell completion, so concurrent cells contend
	// only at the merge.
	Obs *obs.Registry
	// Concurrency is the number of cells evaluated in flight at once.
	// Values below 2 run the grid sequentially.
	Concurrency int
	// CheckpointPath, when non-empty, journals every completed cell to this
	// file (versioned, checksummed, atomically replaced — see
	// internal/checkpoint) and replays already-journaled cells on a later
	// run with the same configuration, so a killed grid resumes bit-
	// identically instead of starting over. A corrupt journal falls back to
	// a cold start; a journal written by a different (bench, platforms,
	// sizes) configuration is a *checkpoint.MismatchError.
	CheckpointPath string
	// CheckpointHook, when non-nil, runs after every durable journal append
	// with the journal's record count. The chaos CI job and the resume
	// tests use it to interrupt a run at a deterministic cell boundary.
	CheckpointHook func(records int)
}

// testCellStart, when non-nil, is invoked at the start of every grid cell
// evaluation. Tests use it to cancel a context deterministically mid-grid;
// cells are analytic estimates that complete in microseconds, so wall-clock
// deadlines cannot land between two specific cells reliably.
var testCellStart func()

// RunGridCtx is RunGrid with a context deadline and per-cell retry with
// exponential backoff. The context is checked before every cell and while
// backing off, so a deadline cancels mid-grid instead of after the fact.
// With opt.Concurrency > 1 cells are evaluated by a bounded worker pool;
// the first cell error cancels the remaining work.
//
// When the caller's context expires mid-grid, the partially filled grid is
// returned alongside a *resilience.DeadlineError accounting for the cells
// that completed (each keeps its Metrics snapshot); callers may render what
// finished or discard it.
func RunGridCtx(ctx context.Context, bench string, platforms []platform.Platform,
	sizes []image.Resolution, opt GridOptions) (*Grid, error) {
	for _, res := range sizes {
		if err := validateResolution(res); err != nil {
			return nil, err
		}
	}
	g := &Grid{Bench: bench, Platforms: platforms, Sizes: sizes,
		Cells: make([][]Cell, len(sizes))}
	for i := range g.Cells {
		g.Cells[i] = make([]Cell, len(platforms))
	}
	gridSpan := opt.Obs.StartSpan("grid." + bench)
	defer gridSpan.End()

	// Checkpointed resume: replay journaled cells into the grid and skip
	// recomputing them; every newly completed cell is appended durably
	// before the next one may finish the run.
	var journal *checkpoint.Journal
	var done map[[2]int]bool
	replayed := 0
	if opt.CheckpointPath != "" {
		j, err := openJournal(opt.CheckpointPath, "grid",
			gridFingerprint(bench, platforms, sizes), opt.Obs)
		if err != nil {
			return nil, err
		}
		recs, ok := decodeGridJournal(j, len(sizes), len(platforms))
		if !ok {
			// Checksummed but semantically invalid (tampering past the CRCs):
			// same policy as corruption — discard and start cold.
			if opt.Obs != nil {
				opt.Obs.Emit("checkpoint.corrupt", map[string]any{
					"path": opt.CheckpointPath, "error": "grid journal records inconsistent",
				})
			}
			if j, err = checkpoint.Create(opt.CheckpointPath, "grid",
				gridFingerprint(bench, platforms, sizes)); err != nil {
				return nil, err
			}
			recs = nil
		}
		done = make(map[[2]int]bool, len(recs))
		for _, r := range recs {
			g.Cells[r.Size][r.Plat] = Cell{
				AutoSeconds: r.Auto, HandSeconds: r.Hand, Metrics: r.Metrics,
			}
			done[[2]int{r.Size, r.Plat}] = true
		}
		replayed = len(recs)
		journal = j
	}

	conc := opt.Concurrency
	if conc < 1 {
		conc = 1
	}
	cctx, cancel := context.WithCancel(ctx)
	defer cancel()
	sem := make(chan struct{}, conc)
	var (
		wg        sync.WaitGroup
		errMu     sync.Mutex
		firstErr  error
		completed atomic.Int64
	)
	fail := func(err error) {
		errMu.Lock()
		if firstErr == nil {
			firstErr = err
		}
		errMu.Unlock()
		cancel()
	}
	completed.Add(int64(replayed))
	track := 1
launch:
	for si := range sizes {
		for pi := range platforms {
			track++
			if done != nil && done[[2]int{si, pi}] {
				continue
			}
			select {
			case <-cctx.Done():
				break launch
			case sem <- struct{}{}:
			}
			wg.Add(1)
			go func(si, pi, track int) {
				defer wg.Done()
				defer func() { <-sem }()
				cell, err := runCell(cctx, bench, platforms[pi], sizes[si], opt, track)
				if err != nil {
					fail(err)
					return
				}
				g.Cells[si][pi] = cell
				completed.Add(1)
				if journal != nil {
					if err := journal.Append(gridCellRecord{
						Size: si, Plat: pi,
						SizeName: sizes[si].Name, PlatName: platforms[pi].Name,
						Auto: cell.AutoSeconds, Hand: cell.HandSeconds,
						Metrics: cell.Metrics,
					}); err != nil {
						fail(fmt.Errorf("harness: grid checkpoint: %w", err))
						return
					}
					if opt.CheckpointHook != nil {
						opt.CheckpointHook(journal.Len())
					}
				}
			}(si, pi, track)
		}
	}
	wg.Wait()
	if err := ctx.Err(); err != nil {
		return g, &resilience.DeadlineError{
			Op: "harness.grid." + bench, Cause: err,
			Completed: int(completed.Load()),
			Total:     len(sizes) * len(platforms),
			Unit:      "cells",
		}
	}
	if firstErr != nil {
		return nil, firstErr
	}
	return g, nil
}

// runCell evaluates one (platform, size) cell, retrying per GridOptions.
// track is the Chrome-trace timeline row the cell's span renders on.
func runCell(ctx context.Context, bench string, p platform.Platform,
	res image.Resolution, opt GridOptions, track int) (Cell, error) {
	if testCellStart != nil {
		testCellStart()
	}
	var reg *obs.Registry
	var sp *obs.Span
	if opt.Obs != nil {
		reg = obs.NewRegistry()
		sp = reg.StartSpan("cell."+bench,
			obs.L("platform", p.Name), obs.L("size", res.Name))
		sp.SetTrack(track)
	}
	lBench := obs.L("bench", bench)
	lPlat := obs.L("platform", p.Name)
	finish := func(cell Cell, err error) (Cell, error) {
		if err != nil {
			sp.SetAttr("error", err.Error())
		}
		sp.End()
		cell.Metrics = reg.Snapshot()
		opt.Obs.Merge(reg)
		return cell, err
	}

	backoff := opt.Backoff
	var lastErr error
	for attempt := 0; attempt <= opt.Retries; attempt++ {
		if attempt > 0 {
			reg.Counter("grid_cell_retries_total", lBench, lPlat).Inc()
			if backoff > 0 {
				select {
				case <-ctx.Done():
					return finish(Cell{}, fmt.Errorf("harness: grid cell retry: %w", ctx.Err()))
				case <-time.After(backoff):
				}
				backoff *= 2
			}
		}
		reg.Counter("grid_cell_attempts_total", lBench, lPlat).Inc()
		auto, err := timing.EstimateRun(p, bench, res, timing.Auto)
		if err != nil {
			lastErr = err
			continue
		}
		hand, err := timing.EstimateRun(p, bench, res, timing.Hand)
		if err != nil {
			lastErr = err
			continue
		}
		lSize := obs.L("size", res.Name)
		reg.Gauge("cell_auto_seconds", lBench, lPlat, lSize).Set(auto.Seconds)
		reg.Gauge("cell_hand_seconds", lBench, lPlat, lSize).Set(hand.Seconds)
		sp.SetAttr("auto_seconds", auto.Seconds)
		sp.SetAttr("hand_seconds", hand.Seconds)
		sp.SetCycles(hand.CyclesPerPixel * float64(res.Width) * float64(res.Height))
		return finish(Cell{AutoSeconds: auto.Seconds, HandSeconds: hand.Seconds}, nil)
	}
	return finish(Cell{}, lastErr)
}

// VerifyCtx is Verify with a context deadline, checked between images so a
// cancellation lands promptly even on large resolutions. Every hand-SIMD
// output is compared against a same-ISA scalar reference (the rounding
// conventions are per-platform) within the benchmark's tolerance.
func VerifyCtx(ctx context.Context, bench string, res image.Resolution) (int, error) {
	if err := validateResolution(res); err != nil {
		return 0, err
	}
	spec, err := benchSpecFor(bench)
	if err != nil {
		return 0, err
	}
	const burst = 5
	for i, src := range spec.burst(res, burst) {
		if err := ctx.Err(); err != nil {
			return 0, &resilience.DeadlineError{
				Op: "harness.verify." + bench, Cause: err,
				Completed: i, Total: burst, Unit: "images",
			}
		}
		for _, isa := range []cv.ISA{cv.ISANEON, cv.ISASSE2} {
			ref := cv.NewOps(isa, nil)
			ref.SetUseOptimized(false)
			want := image.NewMat(res.Width, res.Height, spec.dstKind)
			if err := spec.run(ref, src, want); err != nil {
				return 0, err
			}
			got := image.NewMat(res.Width, res.Height, spec.dstKind)
			if err := spec.run(cv.NewOps(isa, nil), src, got); err != nil {
				return 0, err
			}
			if d := want.DiffCount(got, spec.tol(isa)); d != 0 {
				return 0, fmt.Errorf("harness: %s: %v output differs from scalar beyond tolerance in %d pixels",
					bench, isa, d)
			}
		}
	}
	return burst, nil
}

// CampaignConfig parameterizes RunFaultCampaign.
type CampaignConfig struct {
	// Rate and Seed feed the faults.Plan (see faults.Config).
	Rate float64
	Seed uint64
	// Sites and Kinds optionally restrict the plan; empty means all.
	Sites []faults.Site
	Kinds []faults.Kind
	// Burst is the number of images per ISA (default 5, the paper's burst).
	Burst int
	// Policy is the guard policy; the zero value selects the default.
	Policy cv.GuardPolicy
	// Parallel configures intra-kernel row banding for the campaign Ops.
	// The injection schedule is seeded per row, so the classified totals
	// are identical for every worker count (tested); the zero value runs
	// serially.
	Parallel cv.ParallelConfig
	// Obs, when non-nil, receives campaign observability: a span per
	// campaign, ISA, and image (kernels and guard actions nest under the
	// image spans), fault_injected_total{isa} and
	// fault_classified_total{isa,outcome} counters, and a "fault.masked"
	// event per image whose injected faults never reached a sampled pixel.
	Obs *obs.Registry
	// CheckpointPath, when non-empty, journals every completed image's
	// classification deltas and resume state, so a killed campaign
	// restarted with the same configuration replays the journaled prefix
	// and recomputes only the remaining images — bit-identically, at any
	// worker count (the injection schedule is per-(pass, row), not
	// per-goroutine). A corrupt journal cold-starts; one written by a
	// different configuration is a *checkpoint.MismatchError.
	CheckpointPath string
	// CheckpointHook, when non-nil, runs after every durable journal
	// append with the journal's record count; chaos tests interrupt here.
	CheckpointHook func(records int)
	// StallDeadline, when positive, runs the campaign under a stall
	// watchdog: a kernel band silent for longer than this cancels its
	// siblings and fails the campaign with a typed *super.StallError.
	StallDeadline time.Duration
	// AuditRate, when positive, attaches a sampled redundant-execution
	// auditor (internal/integrity) to each campaign Ops at this rate, with
	// AuditSeed driving the deterministic sampler. Audited calls re-run on
	// the scalar reference; mismatches count as caught corruption in the
	// report and land in the audit_* metric families.
	AuditRate float64
	AuditSeed uint64
	// Fuse, when enabled, runs multi-stage kernels (Canny, EdgDet) as
	// cache-blocked fused sweeps instead of staged full-plane passes. Clean
	// fused runs are byte- and count-identical to staged runs; under
	// injection the per-(pass, row) fault schedule lands on the fused pass
	// structure, so individual fault placements (not the mechanism) differ
	// from a staged campaign. The fingerprint records the fusion config so
	// staged and fused journals never mix.
	Fuse cv.FuseConfig
	// GuardDisabled runs the campaign without the guard referee, so
	// injected corruption reaches outputs silently except where an audit
	// samples the call — the configuration that turns the injection plan
	// into ground truth for measured audit detection rates (at rate 1.0
	// every corrupted output is caught; at rate r the caught count is a
	// Bernoulli(r) thinning of that set).
	GuardDisabled bool
	// Memo, when non-nil, serves repeated identical (bench, ISA, input)
	// images from the content-addressed result cache instead of executing
	// the kernel. Memoization is mutually exclusive with fault injection
	// (Rate must be 0: a cached plane would silently replay a pre-fault
	// result and falsify the masking statistics) and with checkpointed
	// resume (CheckpointPath must be empty: replay accounting assumes every
	// image actually executed). With Memo set each ISA report carries
	// MemoHits/MemoMisses and OutputSum — a chained fold of every output
	// plane's checksum — so a warm rerun is provably byte-identical to the
	// cold run that populated the cache.
	Memo *memo.Cache
}

// ISAFaultReport is the per-ISA outcome of a fault campaign.
type ISAFaultReport struct {
	ISA            cv.ISA
	Images         int
	Opportunities  uint64 // instrumented intrinsics executed
	Injected       uint64 // faults the plan fired
	Detected       int    // guard detections (images with divergence)
	RetryRecovered int    // detections resolved by re-running the SIMD path
	Fallbacks      int    // images resolved by substituting the scalar result
	KillSwitch     int    // kill-switch trips (optimized paths disabled)
	Masked         uint64 // faults injected into images neither guard nor audit flagged
	Audits         uint64 // sampled redundant-execution audits performed
	AuditCaught    uint64 // audits that observed silent corruption
	MemoHits       uint64 // images served from the result cache (memo campaigns)
	MemoMisses     uint64 // images executed and stored (memo campaigns)
	// OutputSum chains every output plane's integrity checksum in image
	// order (memo campaigns only). Two campaigns with equal OutputSum
	// produced byte-identical outputs, whether computed or cache-served.
	OutputSum uint64
}

// FaultReport summarizes a reproducible fault campaign.
type FaultReport struct {
	Bench  string
	Res    image.Resolution
	Rate   float64
	Seed   uint64
	PerISA []ISAFaultReport
}

// RunFaultCampaign executes bench's kernel over an image burst per ISA with
// a seeded fault plan injected into the emulation units and the cv guard
// enabled, and classifies every injected fault as detected (the guard saw
// the divergence) or masked (the corruption never reached a sampled output
// pixel — absorbed by saturation, thresholding, or an untouched lane).
// Identical (bench, res, cfg) produce identical reports.
func RunFaultCampaign(ctx context.Context, bench string, res image.Resolution, cfg CampaignConfig) (*FaultReport, error) {
	if err := validateResolution(res); err != nil {
		return nil, err
	}
	if cfg.Memo != nil {
		if cfg.Rate != 0 {
			return nil, errors.New("harness: memoization is incompatible with fault injection (Rate must be 0)")
		}
		if cfg.CheckpointPath != "" {
			return nil, errors.New("harness: memoization is incompatible with checkpointed resume (CheckpointPath must be empty)")
		}
	}
	spec, err := benchSpecFor(bench)
	if err != nil {
		return nil, err
	}
	burst := cfg.Burst
	if burst <= 0 {
		burst = 5
	}
	isas := []cv.ISA{cv.ISANEON, cv.ISASSE2}

	// Checkpointed resume: load (or create) the journal and split each
	// ISA's burst into a replayed prefix and a live remainder.
	var journal *checkpoint.Journal
	groups := map[string][]campaignCellRecord{}
	if cfg.CheckpointPath != "" {
		fp := campaignFingerprint(bench, res, cfg, burst)
		j, err := openJournal(cfg.CheckpointPath, "campaign", fp, cfg.Obs)
		if err != nil {
			return nil, err
		}
		g, ok := decodeCampaignJournal(j, isas, burst)
		if !ok {
			if cfg.Obs != nil {
				cfg.Obs.Emit("checkpoint.corrupt", map[string]any{
					"path": cfg.CheckpointPath, "error": "campaign journal records inconsistent",
				})
			}
			if j, err = checkpoint.Create(cfg.CheckpointPath, "campaign", fp); err != nil {
				return nil, err
			}
			g = map[string][]campaignCellRecord{}
		}
		journal, groups = j, g
	}

	var wd *super.Watchdog
	if cfg.StallDeadline > 0 {
		wd = super.NewWatchdog(super.WatchdogConfig{Deadline: cfg.StallDeadline}, cfg.Obs)
		defer wd.Stop()
	}

	rep := &FaultReport{Bench: bench, Res: res, Rate: cfg.Rate, Seed: cfg.Seed}
	campSpan := cfg.Obs.StartSpan("campaign."+bench, obs.L("size", res.Name))
	defer campSpan.End()
	imagesDone := 0
	for _, isa := range isas {
		plan := faults.NewPlan(faults.Config{
			Rate: cfg.Rate, Seed: cfg.Seed, Sites: cfg.Sites, Kinds: cfg.Kinds,
		})
		o := cv.NewOps(isa, &trace.Counter{})
		switch {
		case cfg.GuardDisabled:
			// No referee: wrong bytes flow downstream unless audited.
		case cfg.Policy == (cv.GuardPolicy{}):
			o.SetGuarded(true)
		default:
			o.SetGuardPolicy(cfg.Policy)
		}
		var aud *integrity.Auditor
		if cfg.AuditRate > 0 {
			// A fresh auditor per ISA so the sampler stream and tallies are
			// per-ISA deterministic, plus a scoreboard so campaign corruption
			// shows up in the corruption_score gauges.
			aud = integrity.NewAuditor(integrity.AuditConfig{Rate: cfg.AuditRate, Seed: cfg.AuditSeed})
			aud.SetScoreboard(integrity.NewScoreboard(integrity.ScoreboardConfig{}, cfg.Obs))
			o.SetAuditor(aud)
		}
		o.SetParallel(cfg.Parallel)
		o.SetFuse(cfg.Fuse)
		o.SetFaultInjector(plan)
		o.SetObserver(cfg.Obs)
		if wd != nil {
			o.SetWatchdog(wd)
		}
		lISA := obs.L("isa", isa.String())
		isaSpan := campSpan.Child("campaign.isa", lISA)

		ir := ISAFaultReport{ISA: isa, Images: burst}
		done := groups[isa.String()]
		for _, rec := range done {
			replayCampaignRecord(rec, &ir, cfg.Obs, bench, lISA)
			imagesDone++
		}
		prevInjected := restoreCampaignState(done, plan, o, aud)
		prevFaults := 0
		var prevAudits, prevCaught uint64
		if aud != nil {
			prevAudits, prevCaught = aud.Sampled(), aud.Mismatches()
			ir.Audits, ir.AuditCaught = prevAudits, prevCaught
		}
		images := spec.burst(res, burst)
		for imgIdx := len(done); imgIdx < burst; imgIdx++ {
			src := images[imgIdx]
			if err := ctx.Err(); err != nil {
				isaSpan.End()
				return nil, &resilience.DeadlineError{
					Op: "harness.campaign." + bench, Cause: err,
					Completed: imagesDone, Total: 2 * burst, Unit: "images",
				}
			}
			imgSpan := isaSpan.Child("cell."+bench, lISA, obs.L("size", res.Name))
			imgSpan.SetAttr("image", imgIdx)
			o.SetSpanParent(imgSpan)
			dst := image.NewMat(res.Width, res.Height, spec.dstKind)
			runImage := func() error { return spec.run(o, src, dst) }
			if cfg.Memo != nil {
				runImage = func() error {
					key := memo.KeyFor(bench, isa.String(), spec.sig+","+cfg.Fuse.Signature(), src)
					outcome, err := cfg.Memo.Do(ctx, key, dst, func(context.Context) error {
						return spec.run(o, src, dst)
					})
					if err != nil {
						return err
					}
					if outcome == memo.Miss {
						ir.MemoMisses++
					} else {
						ir.MemoHits++
					}
					ir.OutputSum = (ir.OutputSum ^ integrity.SumMat(dst, 0).Fold64()) * 1099511628211
					return nil
				}
			}
			if err := runImage(); err != nil {
				o.SetSpanParent(nil)
				imgSpan.End()
				isaSpan.End()
				return nil, fmt.Errorf("harness: fault campaign %s/%v: %w", bench, isa, err)
			}
			o.SetSpanParent(nil)
			delta := plan.Injected() - prevInjected
			prevInjected = plan.Injected()
			cfg.Obs.Counter("fault_injected_total", lISA).Add(delta)
			d0, r0, f0, k0 := ir.Detected, ir.RetryRecovered, ir.Fallbacks, ir.KillSwitch
			var auditsDelta, caughtDelta uint64
			if aud != nil {
				auditsDelta = aud.Sampled() - prevAudits
				caughtDelta = aud.Mismatches() - prevCaught
				prevAudits, prevCaught = aud.Sampled(), aud.Mismatches()
				ir.Audits += auditsDelta
				ir.AuditCaught += caughtDelta
			}
			// An audit catch counts as detection for masking purposes: the
			// corruption was flagged even if no guard ran.
			detectedThisImage := caughtDelta > 0
			for _, f := range o.Faults()[prevFaults:] {
				switch f.Action {
				case cv.ActionDetected:
					ir.Detected++
					detectedThisImage = true
				case cv.ActionRetryRecovered:
					ir.RetryRecovered++
				case cv.ActionFallback:
					ir.Fallbacks++
				case cv.ActionKillSwitch:
					ir.KillSwitch++
				}
				cfg.Obs.Counter("fault_classified_total", lISA,
					obs.L("outcome", f.Action.String())).Inc()
			}
			prevFaults = len(o.Faults())
			var maskedDelta uint64
			if !detectedThisImage {
				maskedDelta = delta
				ir.Masked += delta
				if delta > 0 {
					cfg.Obs.Counter("fault_classified_total", lISA,
						obs.L("outcome", "masked")).Add(delta)
					cfg.Obs.Emit("fault.masked", map[string]any{
						"bench": bench, "isa": isa.String(),
						"image": imgIdx, "count": delta,
					})
				}
			}
			imgSpan.End()
			imagesDone++
			if journal != nil {
				if err := journal.Append(campaignCellRecord{
					ISA: isa.String(), Image: imgIdx,
					Detected:       ir.Detected - d0,
					RetryRecovered: ir.RetryRecovered - r0,
					Fallbacks:      ir.Fallbacks - f0,
					KillSwitch:     ir.KillSwitch - k0,
					InjectedDelta:  delta,
					MaskedDelta:    maskedDelta,
					PlanCalls:      plan.Calls(),
					PlanInjected:   plan.Injected(),
					Resume:         o.ResumeState(),
					AuditsDelta:    auditsDelta,
					AuditCaught:    caughtDelta,
					AuditResume:    auditResumePtr(aud),
				}); err != nil {
					isaSpan.End()
					return nil, fmt.Errorf("harness: campaign checkpoint: %w", err)
				}
				if cfg.CheckpointHook != nil {
					cfg.CheckpointHook(journal.Len())
				}
			}
		}
		isaSpan.End()
		st := plan.Snapshot()
		ir.Opportunities = st.Calls
		ir.Injected = st.Injected
		rep.PerISA = append(rep.PerISA, ir)
	}
	return rep, nil
}

// Render prints the report as a fixed-width table.
func (r *FaultReport) Render(w io.Writer) {
	fmt.Fprintf(w, "Fault campaign: bench=%s size=%s rate=%g seed=%d\n\n",
		r.Bench, r.Res.Name, r.Rate, r.Seed)
	fmt.Fprintf(w, "%-8s %7s %14s %9s %9s %9s %9s %11s %7s\n",
		"ISA", "images", "opportunities", "injected", "detected", "retry-ok", "fallback", "kill-switch", "masked")
	for _, ir := range r.PerISA {
		fmt.Fprintf(w, "%-8s %7d %14d %9d %9d %9d %9d %11d %7d\n",
			ir.ISA, ir.Images, ir.Opportunities, ir.Injected, ir.Detected,
			ir.RetryRecovered, ir.Fallbacks, ir.KillSwitch, ir.Masked)
	}
	var inj, masked uint64
	for _, ir := range r.PerISA {
		inj += ir.Injected
		masked += ir.Masked
	}
	if inj > 0 {
		fmt.Fprintf(w, "\n%d/%d injected faults landed in images the guard flagged (%.1f%% flagged, %.1f%% masked)\n",
			inj-masked, inj,
			100*float64(inj-masked)/float64(inj),
			100*float64(masked)/float64(inj))
	} else {
		fmt.Fprintf(w, "\nno faults injected (rate=%g over %d opportunities)\n", r.Rate, r.totalOpportunities())
	}
	for _, ir := range r.PerISA {
		if ir.Audits > 0 {
			fmt.Fprintf(w, "audit[%s]: sampled %d calls, caught %d corrupted outputs\n",
				ir.ISA, ir.Audits, ir.AuditCaught)
		}
	}
	for _, ir := range r.PerISA {
		if ir.MemoHits+ir.MemoMisses > 0 {
			fmt.Fprintf(w, "memo[%s]: %d hits, %d misses, output sum %016x\n",
				ir.ISA, ir.MemoHits, ir.MemoMisses, ir.OutputSum)
		}
	}
}

func (r *FaultReport) totalOpportunities() uint64 {
	var n uint64
	for _, ir := range r.PerISA {
		n += ir.Opportunities
	}
	return n
}
