package harness

import (
	"context"
	"reflect"
	"testing"

	"simdstudy/internal/cv"
)

// TestFaultCampaignParallelMatchesSerial: the fault-injection schedule is
// seeded per row/block, so a campaign must classify exactly the same totals
// (injected/detected/masked/fallbacks/opportunities) for every worker
// count. This is the end-to-end check that banding does not perturb the
// reproduction's fault statistics.
func TestFaultCampaignParallelMatchesSerial(t *testing.T) {
	for _, bench := range []string{"BinThr", "GauBlu", "SobFil"} {
		serial, err := RunFaultCampaign(context.Background(), bench, testRes,
			CampaignConfig{Rate: 1e-4, Seed: 17})
		if err != nil {
			t.Fatalf("%s serial: %v", bench, err)
		}
		for _, workers := range []int{2, 4} {
			parl, err := RunFaultCampaign(context.Background(), bench, testRes,
				CampaignConfig{
					Rate:     1e-4,
					Seed:     17,
					Parallel: cv.ParallelConfig{Workers: workers, MinRowsPerBand: 1},
				})
			if err != nil {
				t.Fatalf("%s w=%d: %v", bench, workers, err)
			}
			if !reflect.DeepEqual(serial.PerISA, parl.PerISA) {
				t.Errorf("%s w=%d: classified totals differ from serial\nserial:   %+v\nparallel: %+v",
					bench, workers, serial.PerISA, parl.PerISA)
			}
		}
	}
}
