package harness

import (
	"context"
	"fmt"
	"time"

	"simdstudy/internal/cv"
	"simdstudy/internal/image"
	"simdstudy/internal/memo"
)

// This file measures the result cache against direct execution: how much a
// verified cache hit (checksum the stored plane, copy it out) saves over
// recomputing the kernel on the same input. cmd/simdbench -memo renders
// these numbers per benchmark, and the acceptance test pins the 5 Mpx
// speedup floor.

// MemoBenchResult is one benchmark's hit-versus-compute comparison.
type MemoBenchResult struct {
	Bench string
	Res   image.Resolution
	// ColdSeconds is the best-of-N direct kernel execution time; HitSeconds
	// is the best-of-N verified cache hit. Best-of-N because both paths are
	// deterministic — variance is scheduler noise, and the minimum is the
	// least-perturbed observation.
	ColdSeconds float64
	HitSeconds  float64
	Speedup     float64 // ColdSeconds / HitSeconds
	// Identical reports whether the cache-served plane was byte-identical
	// to a freshly computed one. Anything but true is a cache defect.
	Identical bool
}

// RunMemoBench times bench on the NEON path at res, cold versus cached.
// The cache is private to the call, so the measurement is not perturbed by
// (and does not perturb) any other cache.
func RunMemoBench(bench string, res image.Resolution) (MemoBenchResult, error) {
	r := MemoBenchResult{Bench: bench, Res: res}
	if err := validateResolution(res); err != nil {
		return r, err
	}
	spec, err := benchSpecFor(bench)
	if err != nil {
		return r, err
	}
	src := spec.burst(res, 1)[0]
	o := cv.NewOps(cv.ISANEON, nil)

	computed := image.NewMat(res.Width, res.Height, spec.dstKind)
	const coldRuns = 3
	for i := 0; i < coldRuns; i++ {
		start := time.Now()
		if err := spec.run(o, src, computed); err != nil {
			return r, fmt.Errorf("harness: memo bench %s compute: %w", bench, err)
		}
		if sec := time.Since(start).Seconds(); i == 0 || sec < r.ColdSeconds {
			r.ColdSeconds = sec
		}
	}

	// One shard: the cache holds a single entry, and a sharded budget split
	// could otherwise leave every shard too small for one large plane.
	cache := memo.New(memo.Config{MaxBytes: 256 << 20, Shards: 1})
	key := memo.KeyFor(bench, cv.ISANEON.String(), spec.sig+","+cv.FuseConfig{}.Signature(), src)
	ctx := context.Background()
	dst := image.NewMat(res.Width, res.Height, spec.dstKind)
	if _, err := cache.Do(ctx, key, dst, func(context.Context) error {
		return spec.run(o, src, dst)
	}); err != nil {
		return r, fmt.Errorf("harness: memo bench %s populate: %w", bench, err)
	}

	const hitRuns = 10
	for i := 0; i < hitRuns; i++ {
		start := time.Now()
		outcome, err := cache.Do(ctx, key, dst, func(context.Context) error {
			return spec.run(o, src, dst)
		})
		if err != nil {
			return r, fmt.Errorf("harness: memo bench %s hit: %w", bench, err)
		}
		if outcome != memo.Hit {
			return r, fmt.Errorf("harness: memo bench %s: expected a hit, got %v", bench, outcome)
		}
		if sec := time.Since(start).Seconds(); i == 0 || sec < r.HitSeconds {
			r.HitSeconds = sec
		}
	}
	if r.HitSeconds > 0 {
		r.Speedup = r.ColdSeconds / r.HitSeconds
	}
	r.Identical = computed.DiffCount(dst, 0) == 0
	return r, nil
}
