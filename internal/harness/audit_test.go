package harness

import (
	"bytes"
	"context"
	"errors"
	"math"
	"path/filepath"
	"reflect"
	"strings"
	"testing"

	"simdstudy/internal/cv"
	"simdstudy/internal/resilience"
)

// TestAuditFullRateMatchesGuardGroundTruth is the rate-1.0 acceptance check.
// A full-row-sampling guard campaign sees every corrupted output, so its
// per-ISA detection counts are ground truth; the same fault plan replayed
// with the guard disabled and every call audited must catch exactly that
// set — same caught count, same masked count — because the injection
// schedule is independent of both interventions.
func TestAuditFullRateMatchesGuardGroundTruth(t *testing.T) {
	guarded, err := RunFaultCampaign(context.Background(), "GauBlu", testRes, CampaignConfig{
		Rate: 1e-3, Seed: 17, Burst: 12,
		Policy: cv.GuardPolicy{SampleRows: testRes.Height, MaxRetries: 0, KillAfter: -1},
	})
	if err != nil {
		t.Fatal(err)
	}
	audited, err := RunFaultCampaign(context.Background(), "GauBlu", testRes, CampaignConfig{
		Rate: 1e-3, Seed: 17, Burst: 12,
		GuardDisabled: true, AuditRate: 1.0, AuditSeed: 3,
	})
	if err != nil {
		t.Fatal(err)
	}
	for i, g := range guarded.PerISA {
		a := audited.PerISA[i]
		if g.Injected != a.Injected {
			t.Fatalf("%v: injection schedule drifted: guard %d vs audit %d",
				g.ISA, g.Injected, a.Injected)
		}
		if a.Audits != uint64(a.Images) {
			t.Errorf("%v: rate 1.0 audited %d of %d calls", a.ISA, a.Audits, a.Images)
		}
		if a.AuditCaught == 0 {
			t.Errorf("%v: no corruption caught (injected=%d)", a.ISA, a.Injected)
		}
		if uint64(g.Detected) != a.AuditCaught {
			t.Errorf("%v: guard detected %d corrupted calls, audit 1.0 caught %d — not 100%%",
				g.ISA, g.Detected, a.AuditCaught)
		}
		if g.Masked != a.Masked {
			t.Errorf("%v: masked sets differ: guard %d vs audit %d", g.ISA, g.Masked, a.Masked)
		}
	}
	var buf bytes.Buffer
	audited.Render(&buf)
	if !strings.Contains(buf.String(), "audit[neon]: sampled 12 calls") {
		t.Errorf("rendered report missing audit lines:\n%s", buf.String())
	}
}

// TestAuditQuarterRateBinomialFloor pins the sampling math: the calls a
// rate-0.25 auditor samples are a Bernoulli(0.25) thinning of the rate-1.0
// set (the draw sequence depends only on seed and draw count), so the caught
// count at 0.25 must sit inside a 4-sigma binomial band of 0.25 x the
// rate-1.0 caught count, and can never exceed it.
func TestAuditQuarterRateBinomialFloor(t *testing.T) {
	base := CampaignConfig{Rate: 1e-3, Seed: 17, Burst: 60, GuardDisabled: true, AuditSeed: 3}

	full := base
	full.AuditRate = 1.0
	ref, err := RunFaultCampaign(context.Background(), "GauBlu", testRes, full)
	if err != nil {
		t.Fatal(err)
	}
	quarter := base
	quarter.AuditRate = 0.25
	rep, err := RunFaultCampaign(context.Background(), "GauBlu", testRes, quarter)
	if err != nil {
		t.Fatal(err)
	}

	var c1, c2 uint64
	for _, ir := range ref.PerISA {
		c1 += ir.AuditCaught
	}
	for _, ir := range rep.PerISA {
		c2 += ir.AuditCaught
	}
	if c1 < 40 {
		t.Fatalf("rate-1.0 ground truth too thin for a binomial bound: %d corrupted calls", c1)
	}
	floor := uint64(math.Floor(0.25*float64(c1) - 4*math.Sqrt(float64(c1)*0.25*0.75)))
	if c2 > c1 {
		t.Errorf("rate 0.25 caught %d > rate 1.0 ground truth %d", c2, c1)
	}
	if c2 < floor {
		t.Errorf("rate 0.25 caught %d, below binomial floor %d (ground truth %d)", c2, floor, c1)
	}

	// Identical configuration replays bit-identically: sampling is seeded,
	// not wall-clock or map-order dependent.
	again, err := RunFaultCampaign(context.Background(), "GauBlu", testRes, quarter)
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(rep, again) {
		t.Errorf("audited campaign not deterministic:\n got %+v\nwant %+v", again, rep)
	}
}

// TestAuditCampaignKillAndResume extends the PR 7 resume proof to audited
// campaigns: the journaled sampler stream position must restore so the
// resumed remainder draws the same sampling decisions an uninterrupted run
// would have.
func TestAuditCampaignKillAndResume(t *testing.T) {
	base := CampaignConfig{Rate: 1e-3, Seed: 17, Burst: 3, GuardDisabled: true,
		AuditRate: 0.5, AuditSeed: 9}
	ref, err := RunFaultCampaign(context.Background(), "GauBlu", testRes, base)
	if err != nil {
		t.Fatal(err)
	}
	total := 2 * base.Burst
	for killAt := 1; killAt < total; killAt++ {
		path := filepath.Join(t.TempDir(), "audit.journal")
		ctx, cancel := context.WithCancel(context.Background())
		cfg := base
		cfg.CheckpointPath = path
		cfg.CheckpointHook = func(records int) {
			if records >= killAt {
				cancel()
			}
		}
		_, err := RunFaultCampaign(ctx, "GauBlu", testRes, cfg)
		var de *resilience.DeadlineError
		if !errors.As(err, &de) {
			t.Fatalf("kill=%d: killed run = %v, want *resilience.DeadlineError", killAt, err)
		}
		cfg2 := base
		cfg2.CheckpointPath = path
		rep, err := RunFaultCampaign(context.Background(), "GauBlu", testRes, cfg2)
		if err != nil {
			t.Fatalf("kill=%d: resume: %v", killAt, err)
		}
		if !reflect.DeepEqual(rep, ref) {
			t.Errorf("kill=%d: resumed audited report differs:\n got %+v\nwant %+v", killAt, rep, ref)
		}
	}
}
