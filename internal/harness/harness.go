// Package harness orchestrates the paper's experiments: it runs the AUTO
// and HAND builds of every benchmark across the Table I platforms and the
// four image resolutions, and renders Table II, Table III and Figures 2-6
// in the paper's layout (plus CSV for external plotting).
//
// Timing comes from the internal/timing model; functional verification
// optionally executes the real emulated kernels over the synthetic image
// burst (5 distinct images cycled, as in Section III-D) and cross-checks
// the AUTO (scalar) and HAND (intrinsic) outputs against each other.
package harness

import (
	"context"
	"fmt"
	"io"
	"strings"

	"simdstudy/internal/image"
	"simdstudy/internal/obs"
	"simdstudy/internal/platform"
)

// Cell is one AUTO/HAND measurement pair.
type Cell struct {
	AutoSeconds float64
	HandSeconds float64
	// Metrics is the cell's private observability snapshot (attempt and
	// retry counters, modeled-seconds gauges), taken just before the
	// per-cell registry is merged into GridOptions.Obs. Nil when the grid
	// ran without a registry.
	Metrics obs.Snapshot
}

// Speedup returns HAND-over-AUTO gain.
func (c Cell) Speedup() float64 {
	if c.HandSeconds == 0 {
		return 0
	}
	return c.AutoSeconds / c.HandSeconds
}

// Runs is the paper's repetition count: 5 images cycled 25 times.
const Runs = 100

// Grid holds results for one benchmark over sizes x platforms.
type Grid struct {
	Bench     string
	Platforms []platform.Platform
	Sizes     []image.Resolution
	// Cells[sizeIdx][platformIdx]
	Cells [][]Cell
}

// RunGrid evaluates a benchmark for every platform and size. Reported
// seconds are per single image run (the paper reports the average of 100
// runs; the model is deterministic so mean == single run). It is RunGridCtx
// with no deadline and no retries.
func RunGrid(bench string, platforms []platform.Platform, sizes []image.Resolution) (*Grid, error) {
	return RunGridCtx(context.Background(), bench, platforms, sizes, GridOptions{})
}

// Verify executes the real emulated kernels for a benchmark over the
// 5-image burst at the given resolution on both ISAs, checking that the
// hand-optimized output matches the scalar output (exactly for all integer
// kernels; within 1 LSB for the NEON convert, whose vcvt truncates where
// scalar code rounds). It returns the number of images checked. It is
// VerifyCtx with no deadline.
func Verify(bench string, res image.Resolution) (int, error) {
	return VerifyCtx(context.Background(), bench, res)
}

// --- Table rendering ---

func fmtSecs(s float64) string {
	switch {
	case s >= 0.1:
		return fmt.Sprintf("%.3f", s)
	case s >= 0.001:
		return fmt.Sprintf("%.4f", s)
	default:
		return fmt.Sprintf("%.5f", s)
	}
}

// RenderTable1 prints the platform catalogue in Table I's layout.
func RenderTable1(w io.Writer, platforms []platform.Platform) {
	fmt.Fprintf(w, "%-26s %-16s %-8s %-22s %-22s %-12s %s\n",
		"PROCESSOR", "CODENAME", "Launched", "Threads/Cores/GHz", "Cache L1/L2/L3 (KB)", "Memory", "SIMD Extensions")
	family := platform.Family(-1)
	for _, p := range platforms {
		if p.Family != family {
			family = p.Family
			fmt.Fprintf(w, "%s\n", family)
		}
		fmt.Fprintf(w, "%-26s %-16s %-8s %-22s %-22s %-12s %s\n",
			p.Name, p.Codename, p.Launched,
			fmt.Sprintf("%d/%d/%.2f", p.Threads, p.Cores, p.ClockGHz),
			p.CacheStr, p.Memory, p.SIMD)
	}
}

// RenderTable2 prints the convert benchmark grid in Table II's layout:
// sizes as row groups, platforms as columns, AUTO/HAND/Speed-up rows.
func (g *Grid) RenderTable2(w io.Writer) {
	fmt.Fprintf(w, "Table II: Time (in seconds) to perform conversion of Float to Short Int\n\n")
	g.renderGrouped(w, func(i int) string { return g.Sizes[i].Name })
}

// RenderTable3 prints benchmarks 2-5 at a fixed size in Table III's
// layout. It expects one Grid per benchmark, all with a single size.
func RenderTable3(w io.Writer, grids []*Grid) {
	if len(grids) == 0 {
		return
	}
	fmt.Fprintf(w, "Table III: Time (in seconds) to perform %s benchmarks on %s images\n\n",
		strings.Join(benchNames(grids), ", "), grids[0].Sizes[0].Name)
	writeHeader(w, grids[0].Platforms)
	for _, g := range grids {
		g.renderGroup(w, 0, g.Bench)
	}
}

func benchNames(grids []*Grid) []string {
	out := make([]string, len(grids))
	for i, g := range grids {
		out[i] = g.Bench
	}
	return out
}

func writeHeader(w io.Writer, platforms []platform.Platform) {
	fmt.Fprintf(w, "%-12s %-9s", "Benchmark", "SIMD")
	for _, p := range platforms {
		fmt.Fprintf(w, " %12s", shortName(p))
	}
	fmt.Fprintln(w)
}

func (g *Grid) renderGrouped(w io.Writer, label func(int) string) {
	writeHeader(w, g.Platforms)
	for i := range g.Sizes {
		g.renderGroup(w, i, label(i))
	}
}

func (g *Grid) renderGroup(w io.Writer, sizeIdx int, label string) {
	fmt.Fprintf(w, "%-12s %-9s", label, "AUTO")
	for _, c := range g.Cells[sizeIdx] {
		fmt.Fprintf(w, " %12s", fmtSecs(c.AutoSeconds))
	}
	fmt.Fprintln(w)
	fmt.Fprintf(w, "%-12s %-9s", "", "HAND")
	for _, c := range g.Cells[sizeIdx] {
		fmt.Fprintf(w, " %12s", fmtSecs(c.HandSeconds))
	}
	fmt.Fprintln(w)
	fmt.Fprintf(w, "%-12s %-9s", "", "Speed-up")
	for _, c := range g.Cells[sizeIdx] {
		fmt.Fprintf(w, " %12.2f", c.Speedup())
	}
	fmt.Fprintln(w)
}

// shortName compresses platform names to fit table columns.
func shortName(p platform.Platform) string {
	r := strings.NewReplacer(
		"Intel ", "", "Samsung ", "", "Nvidia ", "", "ARM ", "",
		"Core 2 Quad ", "Core2 ", "Odroid-X Exynos 4412", "Odroid-X",
	)
	s := r.Replace(p.Name)
	if len(s) > 12 {
		s = s[:12]
	}
	return s
}

// RenderCSV writes the grid as CSV (size,platform,auto,hand,speedup).
func (g *Grid) RenderCSV(w io.Writer) {
	fmt.Fprintln(w, "benchmark,size,platform,auto_seconds,hand_seconds,speedup")
	for si, res := range g.Sizes {
		for pi, p := range g.Platforms {
			c := g.Cells[si][pi]
			fmt.Fprintf(w, "%s,%s,%s,%.6g,%.6g,%.3f\n",
				g.Bench, res.Name, p.Name, c.AutoSeconds, c.HandSeconds, c.Speedup())
		}
	}
}

// --- Figure rendering ---

// FigureForBench maps the paper's figure numbers to benchmarks.
var FigureForBench = map[int]string{
	2: "ConvertFloatShort",
	3: "BinThr",
	4: "GauBlu",
	5: "SobFil",
	6: "EdgDet",
}

var figureTitles = map[int]string{
	2: "Convert Float to Short relative speed-up factor",
	3: "Binary Image Thresholding relative speed-up",
	4: "Gaussian Blur relative speed-up factor",
	5: "Sobel Filter relative speed-up factor",
	6: "Edge Detection relative speed-up factor",
}

// RenderFigure prints a speedup-per-size series for every platform as an
// ASCII chart, reproducing the figure's content (series of speedups over
// the four image sizes per platform).
func (g *Grid) RenderFigure(w io.Writer, number int) {
	fmt.Fprintf(w, "Figure %d: %s\n\n", number, figureTitles[number])
	// Scale for bars.
	maxS := 1.0
	for si := range g.Sizes {
		for pi := range g.Platforms {
			if s := g.Cells[si][pi].Speedup(); s > maxS {
				maxS = s
			}
		}
	}
	fmt.Fprintf(w, "%-26s", "Platform")
	for _, res := range g.Sizes {
		fmt.Fprintf(w, " %10s", res.Name)
	}
	fmt.Fprintln(w)
	const barWidth = 40
	for pi, p := range g.Platforms {
		fmt.Fprintf(w, "%-26s", p.Name)
		for si := range g.Sizes {
			fmt.Fprintf(w, " %9.2fx", g.Cells[si][pi].Speedup())
		}
		fmt.Fprintln(w)
		// Bar for the largest size.
		s := g.Cells[len(g.Sizes)-1][pi].Speedup()
		n := int(s / maxS * barWidth)
		if n < 1 {
			n = 1
		}
		fmt.Fprintf(w, "%-26s %s %.2fx\n", "", strings.Repeat("#", n), s)
	}
}

// FamilyRange is the min/max HAND:AUTO speedup observed for one processor
// family across a set of grids — the quantity in the paper's abstract
// ("between 1.05 and 13.88 on ARM, between 1.34 and 5.54 on Intel").
type FamilyRange struct {
	Family   platform.Family
	Min, Max float64
}

// SpeedupRanges computes per-family speedup ranges over the given grids.
func SpeedupRanges(grids []*Grid) []FamilyRange {
	ranges := map[platform.Family]*FamilyRange{}
	for _, g := range grids {
		for si := range g.Sizes {
			for pi, p := range g.Platforms {
				s := g.Cells[si][pi].Speedup()
				r, ok := ranges[p.Family]
				if !ok {
					r = &FamilyRange{Family: p.Family, Min: s, Max: s}
					ranges[p.Family] = r
					continue
				}
				if s < r.Min {
					r.Min = s
				}
				if s > r.Max {
					r.Max = s
				}
			}
		}
	}
	out := make([]FamilyRange, 0, len(ranges))
	for _, f := range []platform.Family{platform.ARM, platform.Intel} {
		if r, ok := ranges[f]; ok {
			out = append(out, *r)
		}
	}
	return out
}

// RenderAbstractSummary prints the paper's abstract sentence with the
// measured numbers.
func RenderAbstractSummary(w io.Writer, grids []*Grid) {
	ranges := SpeedupRanges(grids)
	for _, r := range ranges {
		name := "NEON"
		if r.Family == platform.Intel {
			name = "SSE"
		}
		fmt.Fprintf(w, "On the %s platforms the hand-tuned %s benchmarks were between %.2f and %.2f faster than the auto-vectorized code.\n",
			r.Family, name, r.Min, r.Max)
	}
}
