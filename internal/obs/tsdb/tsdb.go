// Package tsdb is an in-process time-series store over an obs.Registry:
// a fixed-size ring of clock-stamped structured samples, fed by a periodic
// sampler, serving windowed rollups — counter rates and histogram-derived
// quantiles — without any external dependency.
//
// The paper's artifact model (PR 2) is per-run: one registry, one export,
// one table. A serving process needs the same quantities *over time*:
// requests per second by kernel, p99 latency over the last minute, burn
// rate against an error budget. The store closes that gap with the
// smallest machinery that is still correct: every sample is a full
// obs.Sample (monotone series, gauges, per-bucket histogram state), and a
// rollup is the pure function of two samples — Snapshot.Delta over the
// monotone series for rates, bucket-count deltas fed through the standard
// histogram-quantile interpolation for percentiles. Nothing is
// incremental, so a rollup can never drift from the registry: drop the
// ring and the next two samples rebuild the same answers.
//
// Determinism: samples are stamped with the registry clock (obs.SetClock),
// so a test that injects a clock and calls Sample directly gets exactly
// reproducible rollups; the background ticker is only a convenience for
// production use.
package tsdb

import (
	"sort"
	"sync"
	"time"

	"simdstudy/internal/obs"
)

// Config sizes a Store.
type Config struct {
	// Interval is the background sampling cadence of Start. Default 1s.
	Interval time.Duration
	// Capacity is how many samples the ring holds. Default 300 — five
	// minutes of history at the default cadence, a few hundred kilobytes
	// for a serving registry's series count.
	Capacity int
	// Runtime, when true, scrapes Go runtime health (goroutines, heap, GC
	// pauses) into the registry immediately before every sample, so the
	// ring carries process health alongside the kernel metrics.
	Runtime bool
}

func (c Config) normalized() Config {
	if c.Interval <= 0 {
		c.Interval = time.Second
	}
	if c.Capacity <= 0 {
		c.Capacity = 300
	}
	return c
}

// Store is the ring of samples plus the sampler. Safe for concurrent use.
type Store struct {
	cfg Config
	reg *obs.Registry
	rc  *obs.RuntimeCollector

	mu   sync.Mutex
	ring []obs.Sample
	head int // next write position
	n    int // live samples

	stopOnce sync.Once
	stopc    chan struct{}
	done     chan struct{}
}

// New builds a store over reg. Call Start for background sampling, or
// drive Sample directly (tests, scrape-coupled sampling).
func New(reg *obs.Registry, cfg Config) *Store {
	cfg = cfg.normalized()
	s := &Store{
		cfg:   cfg,
		reg:   reg,
		ring:  make([]obs.Sample, cfg.Capacity),
		stopc: make(chan struct{}),
		done:  make(chan struct{}),
	}
	if cfg.Runtime {
		s.rc = obs.NewRuntimeCollector(reg)
	}
	return s
}

// Sample takes one sample now (registry clock) and appends it to the ring,
// evicting the oldest when full. Returns the sample taken.
func (s *Store) Sample() obs.Sample {
	if s == nil || s.reg == nil {
		return obs.Sample{}
	}
	s.rc.Collect()
	sm := s.reg.Sample()
	s.mu.Lock()
	s.ring[s.head] = sm
	s.head = (s.head + 1) % len(s.ring)
	if s.n < len(s.ring) {
		s.n++
	}
	s.mu.Unlock()
	return sm
}

// Start launches the background sampler at the configured interval. Stop
// releases it; Start after Stop is not supported.
func (s *Store) Start() {
	go func() {
		defer close(s.done)
		t := time.NewTicker(s.cfg.Interval)
		defer t.Stop()
		for {
			select {
			case <-t.C:
				s.Sample()
			case <-s.stopc:
				return
			}
		}
	}()
}

// Stop halts the background sampler (idempotent; a never-Started store
// stops trivially).
func (s *Store) Stop() {
	if s == nil {
		return
	}
	s.stopOnce.Do(func() {
		close(s.stopc)
	})
}

// Len returns how many samples the ring currently holds.
func (s *Store) Len() int {
	if s == nil {
		return 0
	}
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.n
}

// at returns the i-th newest sample (0 = newest). Caller holds s.mu.
func (s *Store) at(i int) obs.Sample {
	return s.ring[((s.head-1-i)%len(s.ring)+len(s.ring))%len(s.ring)]
}

// Last returns the newest sample, if any.
func (s *Store) Last() (obs.Sample, bool) {
	if s == nil {
		return obs.Sample{}, false
	}
	s.mu.Lock()
	defer s.mu.Unlock()
	if s.n == 0 {
		return obs.Sample{}, false
	}
	return s.at(0), true
}

// bounds returns the newest sample and the oldest sample still inside
// window (the sample closest to newest.Time-window without being older,
// falling back to the oldest held when the ring does not reach back that
// far). ok is false with fewer than two samples.
func (s *Store) bounds(window time.Duration) (oldest, newest obs.Sample, ok bool) {
	s.mu.Lock()
	defer s.mu.Unlock()
	if s.n < 2 {
		return obs.Sample{}, obs.Sample{}, false
	}
	newest = s.at(0)
	cutoff := newest.Time.Add(-window)
	oldest = s.at(1)
	for i := 2; i < s.n; i++ {
		cand := s.at(i)
		if cand.Time.Before(cutoff) {
			break
		}
		oldest = cand
	}
	return oldest, newest, true
}

// Quantiles are the standard latency percentiles of one histogram window.
type Quantiles struct {
	P50, P95, P99 float64
}

// Rollup is the windowed view of the registry between two ring samples.
type Rollup struct {
	// Start and End are the sample timestamps the rollup spans; Window is
	// their difference (it can be shorter than asked if the ring is young).
	Start, End time.Time
	Window     time.Duration
	// Rates maps every monotone series (counters, histogram _count/_sum)
	// to its per-second rate over the window. Series that did not move are
	// present with rate 0.
	Rates map[string]float64
	// Deltas maps the same series to their raw advance over the window.
	Deltas obs.Snapshot
	// Quantiles maps each histogram series (rendered name{labels}) to
	// p50/p95/p99 derived from its bucket-count deltas over the window.
	// Histograms with no samples in the window are absent.
	Quantiles map[string]Quantiles
	// Gauges is the newest sample's gauge view, for completeness.
	Gauges obs.Snapshot
}

// Rollup computes the windowed rollup ending at the newest sample. ok is
// false when the ring holds fewer than two samples or the two chosen
// samples carry the same timestamp (an injected clock that never advanced).
func (s *Store) Rollup(window time.Duration) (Rollup, bool) {
	if s == nil {
		return Rollup{}, false
	}
	old, nw, ok := s.bounds(window)
	if !ok {
		return Rollup{}, false
	}
	dt := nw.Time.Sub(old.Time)
	if dt <= 0 {
		return Rollup{}, false
	}
	sec := dt.Seconds()
	deltas := nw.Counters.Delta(old.Counters)
	r := Rollup{
		Start:     old.Time,
		End:       nw.Time,
		Window:    dt,
		Rates:     make(map[string]float64, len(deltas)),
		Deltas:    deltas,
		Quantiles: make(map[string]Quantiles, len(nw.Hists)),
		Gauges:    nw.Gauges,
	}
	for k, d := range deltas {
		if d < 0 {
			// A monotone series can only go backward if the registry was
			// swapped out from under the store; surface a zero rate rather
			// than a negative one.
			d = 0
		}
		r.Rates[k] = d / sec
	}
	for k, hn := range nw.Hists {
		ho := old.Hists[k] // zero value = histogram born inside the window
		dc := bucketDelta(hn, ho)
		if dc == nil {
			continue
		}
		r.Quantiles[k] = Quantiles{
			P50: Quantile(0.50, hn.Bounds, dc),
			P95: Quantile(0.95, hn.Bounds, dc),
			P99: Quantile(0.99, hn.Bounds, dc),
		}
	}
	return r, true
}

// bucketDelta returns newer.Counts - older.Counts, or nil when the window
// saw no samples (or the bucket layouts differ, which means the histogram
// was re-created — treat as no data rather than inventing negatives).
func bucketDelta(newer, older obs.HistSample) []uint64 {
	if newer.Count == older.Count {
		return nil
	}
	if older.Counts == nil {
		out := make([]uint64, len(newer.Counts))
		copy(out, newer.Counts)
		return out
	}
	if len(older.Counts) != len(newer.Counts) {
		return nil
	}
	out := make([]uint64, len(newer.Counts))
	for i := range out {
		if newer.Counts[i] < older.Counts[i] {
			return nil
		}
		out[i] = newer.Counts[i] - older.Counts[i]
	}
	return out
}

// Quantile derives the q-quantile (0 < q < 1) from per-bucket counts over
// the given upper bounds (counts has one extra +Inf slot), using the same
// linear interpolation as Prometheus histogram_quantile: the rank is
// located in its bucket, then interpolated between the bucket's lower and
// upper bound assuming uniform distribution within the bucket. A rank in
// the +Inf bucket returns the highest finite bound (there is nothing to
// interpolate toward). Zero total returns 0.
func Quantile(q float64, bounds []float64, counts []uint64) float64 {
	var total uint64
	for _, c := range counts {
		total += c
	}
	if total == 0 || len(bounds) == 0 {
		return 0
	}
	rank := q * float64(total)
	var cum float64
	for i, b := range bounds {
		prev := cum
		cum += float64(counts[i])
		if cum >= rank {
			lower := 0.0
			if i > 0 {
				lower = bounds[i-1]
			}
			if counts[i] == 0 {
				return b
			}
			return lower + (b-lower)*(rank-prev)/float64(counts[i])
		}
	}
	return bounds[len(bounds)-1]
}

// SeriesMatching returns the rollup's rate series whose name starts with
// prefix, sorted by series key — a convenience for building per-label
// views (per-kernel QPS) without re-parsing the registry.
func (r Rollup) SeriesMatching(prefix string) []string {
	var out []string
	for k := range r.Rates {
		if len(k) >= len(prefix) && k[:len(prefix)] == prefix {
			out = append(out, k)
		}
	}
	sort.Strings(out)
	return out
}
