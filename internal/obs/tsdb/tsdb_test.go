package tsdb

import (
	"math"
	"testing"
	"time"

	"simdstudy/internal/obs"
)

// clockAt builds a registry pinned to an adjustable fake clock, so every
// sample timestamp — and therefore every rollup — is exactly reproducible.
func clockAt(start time.Time) (*obs.Registry, *time.Time) {
	reg := obs.NewRegistry()
	now := start
	reg.SetClock(func() time.Time { return now })
	return reg, &now
}

func almost(t *testing.T, name string, got, want float64) {
	t.Helper()
	if math.Abs(got-want) > 1e-9 {
		t.Errorf("%s = %v, want %v", name, got, want)
	}
}

// TestRollupRates hand-computes counter rates over a deterministic window.
func TestRollupRates(t *testing.T) {
	reg, now := clockAt(time.Unix(1000, 0))
	st := New(reg, Config{Capacity: 16})

	c := reg.Counter("requests_total", obs.L("code", "200"))
	st.Sample()

	c.Add(50)
	*now = now.Add(10 * time.Second)
	st.Sample()

	ru, ok := st.Rollup(time.Minute)
	if !ok {
		t.Fatal("Rollup not ok with two samples")
	}
	if ru.Window != 10*time.Second {
		t.Fatalf("Window = %v, want 10s", ru.Window)
	}
	key := `requests_total{code="200"}`
	almost(t, "rate", ru.Rates[key], 5.0)
	almost(t, "delta", ru.Deltas[key], 50)
}

// TestRollupWindowSelection checks the window picks the oldest sample still
// inside it, not simply the oldest held: three samples 10s apart must give
// different rates for a 10s window (last segment only) and a 60s window
// (the whole span).
func TestRollupWindowSelection(t *testing.T) {
	reg, now := clockAt(time.Unix(2000, 0))
	st := New(reg, Config{Capacity: 16})
	c := reg.Counter("ticks_total")

	st.Sample() // t=0, v=0
	c.Add(10)
	*now = now.Add(10 * time.Second)
	st.Sample() // t=10, v=10
	c.Add(30)
	*now = now.Add(10 * time.Second)
	st.Sample() // t=20, v=40

	ru, ok := st.Rollup(10 * time.Second)
	if !ok {
		t.Fatal("short rollup not ok")
	}
	almost(t, "short-window rate", ru.Rates["ticks_total"], 3.0)

	ru, ok = st.Rollup(time.Minute)
	if !ok {
		t.Fatal("long rollup not ok")
	}
	almost(t, "long-window rate", ru.Rates["ticks_total"], 2.0)
}

// TestRollupQuantiles hand-computes the interpolated percentiles of a known
// bucket distribution: 100 observations split 40/40/20 across bounds
// {0.01, 0.1, 1}. The expected values follow the Prometheus
// histogram_quantile linear interpolation exactly.
func TestRollupQuantiles(t *testing.T) {
	reg, now := clockAt(time.Unix(3000, 0))
	st := New(reg, Config{Capacity: 16})
	h := reg.Histogram("lat_seconds", []float64{0.01, 0.1, 1}, obs.L("kernel", "sobel"))

	st.Sample()
	for i := 0; i < 40; i++ {
		h.Observe(0.005) // bucket le=0.01
	}
	for i := 0; i < 40; i++ {
		h.Observe(0.05) // bucket le=0.1
	}
	for i := 0; i < 20; i++ {
		h.Observe(0.5) // bucket le=1
	}
	*now = now.Add(10 * time.Second)
	st.Sample()

	ru, ok := st.Rollup(time.Minute)
	if !ok {
		t.Fatal("Rollup not ok")
	}
	key := `lat_seconds{kernel="sobel"}`
	q, ok := ru.Quantiles[key]
	if !ok {
		t.Fatalf("no quantiles for %s; have %v", key, ru.Quantiles)
	}
	// p50: rank 50 lands in the second bucket (cumulative 40 then 80):
	// 0.01 + (0.1-0.01) * (50-40)/40 = 0.0325
	almost(t, "P50", q.P50, 0.0325)
	// p95: rank 95 in the third bucket (cumulative 80 then 100):
	// 0.1 + (1-0.1) * (95-80)/20 = 0.775
	almost(t, "P95", q.P95, 0.775)
	// p99: 0.1 + 0.9 * (99-80)/20 = 0.955
	almost(t, "P99", q.P99, 0.955)

	// The histogram's derived _count series must roll up as a rate too.
	almost(t, "count rate", ru.Rates[`lat_seconds_count{kernel="sobel"}`], 10.0)
}

// TestRollupQuantileWindowIsolation checks quantiles come from the window's
// bucket deltas, not lifetime counts: a first window full of fast samples
// must not drag down the p99 of a later window full of slow ones.
func TestRollupQuantileWindowIsolation(t *testing.T) {
	reg, now := clockAt(time.Unix(4000, 0))
	st := New(reg, Config{Capacity: 16})
	h := reg.Histogram("lat_seconds", []float64{0.01, 0.1, 1})

	for i := 0; i < 1000; i++ {
		h.Observe(0.001) // ancient fast history
	}
	st.Sample()
	*now = now.Add(5 * time.Second)
	for i := 0; i < 10; i++ {
		h.Observe(0.5) // the window only has slow samples
	}
	*now = now.Add(5 * time.Second)
	st.Sample()

	ru, ok := st.Rollup(5 * time.Second)
	if !ok {
		t.Fatal("Rollup not ok")
	}
	q := ru.Quantiles["lat_seconds"]
	if q.P50 <= 0.1 {
		t.Errorf("P50 = %v: lifetime counts leaked into the window", q.P50)
	}
}

// TestRollupNeedsTwoSamples: a fresh or single-sample store has no window.
func TestRollupNeedsTwoSamples(t *testing.T) {
	reg, _ := clockAt(time.Unix(5000, 0))
	st := New(reg, Config{Capacity: 4})
	if _, ok := st.Rollup(time.Minute); ok {
		t.Error("Rollup ok with zero samples")
	}
	st.Sample()
	if _, ok := st.Rollup(time.Minute); ok {
		t.Error("Rollup ok with one sample")
	}
}

// TestRollupFrozenClock: two samples with the same timestamp (an injected
// clock that never advanced) must refuse to divide by zero.
func TestRollupFrozenClock(t *testing.T) {
	reg, _ := clockAt(time.Unix(6000, 0))
	st := New(reg, Config{Capacity: 4})
	st.Sample()
	st.Sample()
	if _, ok := st.Rollup(time.Minute); ok {
		t.Error("Rollup ok across a zero-width window")
	}
}

// TestRingEviction: a full ring drops the oldest samples but keeps rolling.
func TestRingEviction(t *testing.T) {
	reg, now := clockAt(time.Unix(7000, 0))
	st := New(reg, Config{Capacity: 3})
	c := reg.Counter("ticks_total")
	for i := 0; i < 10; i++ {
		c.Inc()
		*now = now.Add(time.Second)
		st.Sample()
	}
	if st.Len() != 3 {
		t.Fatalf("Len = %d, want 3", st.Len())
	}
	ru, ok := st.Rollup(time.Hour)
	if !ok {
		t.Fatal("Rollup not ok")
	}
	// Oldest held sample is #8 (v=8), newest #10 (v=10), 2s apart.
	almost(t, "rate", ru.Rates["ticks_total"], 1.0)
	almost(t, "delta", ru.Deltas["ticks_total"], 2)
}

// TestQuantileEdges pins the Quantile helper's boundary behavior.
func TestQuantileEdges(t *testing.T) {
	bounds := []float64{1, 2, 4}
	if got := Quantile(0.5, bounds, []uint64{0, 0, 0, 0}); got != 0 {
		t.Errorf("empty histogram quantile = %v, want 0", got)
	}
	// All mass in the +Inf bucket: nothing to interpolate toward, so the
	// highest finite bound is the answer.
	if got := Quantile(0.99, bounds, []uint64{0, 0, 0, 5}); got != 4 {
		t.Errorf("+Inf-bucket quantile = %v, want 4", got)
	}
	// All mass in the first bucket interpolates from zero.
	almost(t, "first-bucket median", Quantile(0.5, bounds, []uint64{10, 0, 0, 0}), 0.5)
}

// TestSampleDeterminism: with a pinned clock and identical registry
// mutations, two stores produce identical rollups — the property that makes
// telemetry assertions in CI stable.
func TestSampleDeterminism(t *testing.T) {
	run := func() Rollup {
		reg, now := clockAt(time.Unix(8000, 0))
		st := New(reg, Config{Capacity: 8})
		h := reg.Histogram("lat_seconds", []float64{0.01, 0.1})
		c := reg.Counter("requests_total")
		st.Sample()
		for i := 0; i < 7; i++ {
			h.Observe(float64(i) * 0.02)
			c.Inc()
		}
		*now = now.Add(3 * time.Second)
		st.Sample()
		ru, ok := st.Rollup(time.Minute)
		if !ok {
			t.Fatal("Rollup not ok")
		}
		return ru
	}
	a, b := run(), run()
	if a.Window != b.Window || a.Rates["requests_total"] != b.Rates["requests_total"] {
		t.Fatalf("rollups differ: %+v vs %+v", a, b)
	}
	if a.Quantiles["lat_seconds"] != b.Quantiles["lat_seconds"] {
		t.Fatalf("quantiles differ: %+v vs %+v",
			a.Quantiles["lat_seconds"], b.Quantiles["lat_seconds"])
	}
}

// TestSnapshotDelta pins the Delta semantics the rollups are built on:
// missing keys in the earlier snapshot count from zero, and keys only in
// the earlier snapshot are dropped (the newer view drives).
func TestSnapshotDelta(t *testing.T) {
	prev := obs.Snapshot{"a": 10, "gone": 5}
	cur := obs.Snapshot{"a": 25, "born": 3}
	d := cur.Delta(prev)
	if d["a"] != 15 {
		t.Errorf(`d["a"] = %v, want 15`, d["a"])
	}
	if d["born"] != 3 {
		t.Errorf(`d["born"] = %v, want 3`, d["born"])
	}
	if _, ok := d["gone"]; ok {
		t.Error(`d["gone"] present; keys absent from the newer snapshot must drop`)
	}
}
