package obs

import (
	"sync"
	"time"
)

// SpanRecord is one completed span as stored in the registry: the unit of
// the Chrome trace export. IDs are registry-unique and Parent is 0 for
// roots.
type SpanRecord struct {
	ID     int
	Parent int
	// Track is the Chrome trace "tid" the span renders on. Children
	// inherit it; concurrent workers (grid cells) set distinct tracks so
	// their spans do not interleave on one timeline row.
	Track  int
	Name   string
	Start  time.Time
	End    time.Time
	Cycles float64 // modeled cycles attributed to the span, 0 if none
	Instr  uint64  // dynamic instruction delta attributed to the span
	Attrs  map[string]any
}

// Span is an in-flight interval of work. Spans form a hierarchy via
// Child; ending a span appends its record to the registry. All methods
// are nil-safe so instrumentation costs nothing when observability is
// off. A single span is not safe for concurrent mutation, but different
// spans of one registry may run on different goroutines.
type Span struct {
	r      *Registry
	mu     sync.Mutex
	rec    SpanRecord
	instr0 uint64
	instr  func() uint64
	ended  bool
}

// StartSpan opens a root span. labels become string attributes.
func (r *Registry) StartSpan(name string, labels ...Label) *Span {
	if r == nil {
		return nil
	}
	r.mu.Lock()
	r.nextSpanID++
	id := r.nextSpanID
	start := r.clock()
	r.mu.Unlock()
	s := &Span{r: r, rec: SpanRecord{ID: id, Track: 1, Name: name, Start: start}}
	for _, l := range labels {
		s.SetAttr(l.Key, l.Value)
	}
	return s
}

// Child opens a span nested under s, inheriting its track.
func (s *Span) Child(name string, labels ...Label) *Span {
	if s == nil || s.r == nil {
		return nil
	}
	c := s.r.StartSpan(name, labels...)
	s.mu.Lock()
	c.rec.Parent = s.rec.ID
	c.rec.Track = s.rec.Track
	s.mu.Unlock()
	return c
}

// SetAttr attaches one JSON-encodable attribute.
func (s *Span) SetAttr(key string, v any) {
	if s == nil {
		return
	}
	s.mu.Lock()
	defer s.mu.Unlock()
	if s.rec.Attrs == nil {
		s.rec.Attrs = map[string]any{}
	}
	s.rec.Attrs[key] = v
}

// SetCycles attributes modeled cycles (the timing model's currency) to
// the span.
func (s *Span) SetCycles(c float64) {
	if s == nil {
		return
	}
	s.mu.Lock()
	defer s.mu.Unlock()
	s.rec.Cycles = c
}

// SetTrack moves the span (and subsequently created children) to a
// distinct Chrome trace timeline row.
func (s *Span) SetTrack(track int) {
	if s == nil {
		return
	}
	s.mu.Lock()
	defer s.mu.Unlock()
	s.rec.Track = track
}

// SampleInstr installs a cumulative instruction sampler (typically
// trace.Counter.Total of the unit the span observes) and snapshots it;
// End attributes the delta to the span.
func (s *Span) SampleInstr(total func() uint64) {
	if s == nil || total == nil {
		return
	}
	s.mu.Lock()
	defer s.mu.Unlock()
	s.instr = total
	s.instr0 = total()
}

// AddInstr attributes n instructions to the span directly.
func (s *Span) AddInstr(n uint64) {
	if s == nil {
		return
	}
	s.mu.Lock()
	defer s.mu.Unlock()
	s.rec.Instr += n
}

// End closes the span, folds in the instruction sampler delta, appends
// the record to the registry and returns the wall-clock duration. Ending
// twice is a no-op.
func (s *Span) End() time.Duration {
	if s == nil || s.r == nil {
		return 0
	}
	s.mu.Lock()
	if s.ended {
		s.mu.Unlock()
		return s.rec.End.Sub(s.rec.Start)
	}
	s.ended = true
	if s.instr != nil {
		if now := s.instr(); now > s.instr0 {
			s.rec.Instr += now - s.instr0
		}
	}
	rec := s.rec
	s.mu.Unlock()

	s.r.mu.Lock()
	rec.End = s.r.clock()
	s.r.spans = append(s.r.spans, rec)
	s.r.mu.Unlock()

	s.mu.Lock()
	s.rec.End = rec.End
	s.mu.Unlock()
	return rec.End.Sub(rec.Start)
}
