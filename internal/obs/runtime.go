package obs

import (
	"runtime"
	"sync"
)

// GCPauseBuckets are the gc_pause_seconds histogram bounds: GC pauses on
// the paper's low-powered targets run tens of microseconds to low
// milliseconds; anything beyond 100ms is a pathology worth its own bucket.
var GCPauseBuckets = []float64{1e-5, 5e-5, 1e-4, 5e-4, 1e-3, 5e-3, 1e-2, 5e-2, 0.1}

// RuntimeCollector scrapes Go runtime health — goroutine count, heap
// stats, GC activity — into a registry, so the process's own dynamics sit
// next to the kernel metrics in one export. The time-series sampler calls
// Collect once per tick; it is also safe to call ad hoc (e.g. on scrape).
//
// Families written:
//
//	go_goroutines                 gauge    runtime.NumGoroutine
//	go_heap_alloc_bytes           gauge    live heap
//	go_heap_sys_bytes             gauge    heap from the OS
//	go_heap_objects               gauge    live objects
//	go_next_gc_bytes              gauge    GC target
//	go_gc_cycles_total            counter  completed GC cycles
//	gc_pause_seconds              histogram of individual GC pauses
type RuntimeCollector struct {
	reg *Registry

	mu       sync.Mutex
	lastGC   uint32 // NumGC at the previous Collect
	lastCyc  uint32 // cycles already added to go_gc_cycles_total
	memStats runtime.MemStats
}

// NewRuntimeCollector builds a collector reporting into reg (nil yields a
// collector whose Collect is a no-op).
func NewRuntimeCollector(reg *Registry) *RuntimeCollector {
	return &RuntimeCollector{reg: reg}
}

// Collect takes one runtime sample. ReadMemStats stops the world for on
// the order of tens of microseconds; at the sampler's 1 Hz default cadence
// that is noise, but Collect should not be called from a kernel hot path.
func (c *RuntimeCollector) Collect() {
	if c == nil || c.reg == nil {
		return
	}
	c.mu.Lock()
	defer c.mu.Unlock()
	ms := &c.memStats
	runtime.ReadMemStats(ms)

	c.reg.Gauge("go_goroutines").Set(float64(runtime.NumGoroutine()))
	c.reg.Gauge("go_heap_alloc_bytes").Set(float64(ms.HeapAlloc))
	c.reg.Gauge("go_heap_sys_bytes").Set(float64(ms.HeapSys))
	c.reg.Gauge("go_heap_objects").Set(float64(ms.HeapObjects))
	c.reg.Gauge("go_next_gc_bytes").Set(float64(ms.NextGC))

	if d := ms.NumGC - c.lastCyc; d > 0 {
		c.reg.Counter("go_gc_cycles_total").Add(uint64(d))
		c.lastCyc = ms.NumGC
	}

	// PauseNs is a ring of the last 256 pause durations indexed by cycle
	// number; observe each cycle completed since the previous Collect
	// exactly once (capped at the ring size if we fell far behind).
	h := c.reg.Histogram("gc_pause_seconds", GCPauseBuckets)
	since := ms.NumGC - c.lastGC
	if since > uint32(len(ms.PauseNs)) {
		since = uint32(len(ms.PauseNs))
	}
	for i := uint32(0); i < since; i++ {
		cycle := ms.NumGC - i
		h.Observe(float64(ms.PauseNs[(cycle+255)%256]) / 1e9)
	}
	c.lastGC = ms.NumGC
}
