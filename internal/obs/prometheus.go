package obs

import (
	"fmt"
	"io"
	"math"
	"sort"
	"strconv"
)

// WritePrometheus renders every metric family in the Prometheus text
// exposition format (version 0.0.4): families sorted by name, one # TYPE
// line each, series sorted by label set, histograms as cumulative
// _bucket{le=...}/_sum/_count. The output is deterministic, so it is
// golden-testable and diffable across runs.
func (r *Registry) WritePrometheus(w io.Writer) error {
	if r == nil {
		return nil
	}
	r.mu.Lock()
	counters := make([]counterEntry, 0, len(r.counters))
	for _, e := range r.counters {
		counters = append(counters, *e)
	}
	gauges := make([]gaugeEntry, 0, len(r.gauges))
	for _, e := range r.gauges {
		gauges = append(gauges, *e)
	}
	hists := make([]histEntry, 0, len(r.hists))
	for _, e := range r.hists {
		hists = append(hists, *e)
	}
	r.mu.Unlock()

	type family struct {
		name string
		typ  string
		rows []string
	}
	fams := map[string]*family{}
	get := func(name, typ string) *family {
		f, ok := fams[name]
		if !ok {
			f = &family{name: name, typ: typ}
			fams[name] = f
		}
		return f
	}

	for _, e := range counters {
		f := get(e.name, "counter")
		f.rows = append(f.rows, fmt.Sprintf("%s %s",
			renderSeries(e.name, e.labels), strconv.FormatUint(e.c.Value(), 10)))
	}
	for _, e := range gauges {
		f := get(e.name, "gauge")
		f.rows = append(f.rows, fmt.Sprintf("%s %s",
			renderSeries(e.name, e.labels), formatFloat(e.g.Value())))
	}
	for _, e := range hists {
		f := get(e.name, "histogram")
		bounds := e.h.Bounds()
		buckets := e.h.Buckets()
		count, sum := e.h.CountSum()
		var cum uint64
		for i, b := range bounds {
			cum += buckets[i]
			le := append(append([]Label{}, e.labels...), L("le", formatFloat(b)))
			f.rows = append(f.rows, fmt.Sprintf("%s %d",
				renderSeries(e.name+"_bucket", sortLabels(le)), cum))
		}
		inf := append(append([]Label{}, e.labels...), L("le", "+Inf"))
		f.rows = append(f.rows, fmt.Sprintf("%s %d",
			renderSeries(e.name+"_bucket", sortLabels(inf)), count))
		f.rows = append(f.rows, fmt.Sprintf("%s %s",
			renderSeries(e.name+"_sum", e.labels), formatFloat(sum)))
		f.rows = append(f.rows, fmt.Sprintf("%s %d",
			renderSeries(e.name+"_count", e.labels), count))
	}

	names := make([]string, 0, len(fams))
	for n := range fams {
		names = append(names, n)
	}
	sort.Strings(names)
	for _, n := range names {
		f := fams[n]
		if _, err := fmt.Fprintf(w, "# TYPE %s %s\n", f.name, f.typ); err != nil {
			return err
		}
		sort.Strings(f.rows)
		for _, row := range f.rows {
			if _, err := fmt.Fprintln(w, row); err != nil {
				return err
			}
		}
	}
	return nil
}

// formatFloat renders a float the way Prometheus clients expect: shortest
// representation that round-trips, +Inf/-Inf/NaN spelled out.
func formatFloat(v float64) string {
	switch {
	case math.IsInf(v, +1):
		return "+Inf"
	case math.IsInf(v, -1):
		return "-Inf"
	case math.IsNaN(v):
		return "NaN"
	}
	return strconv.FormatFloat(v, 'g', -1, 64)
}
