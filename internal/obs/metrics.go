package obs

import (
	"math"
	"sort"
	"sync"
	"sync/atomic"
	"time"
)

// Counter is a monotonically increasing count. All methods are safe for
// concurrent use and nil-safe, so instrumentation can be left in place
// when no registry is attached.
type Counter struct {
	v atomic.Uint64
}

// Inc adds one.
func (c *Counter) Inc() { c.Add(1) }

// Add adds n.
func (c *Counter) Add(n uint64) {
	if c == nil {
		return
	}
	c.v.Add(n)
}

// Value returns the current count.
func (c *Counter) Value() uint64 {
	if c == nil {
		return 0
	}
	return c.v.Load()
}

// Gauge is a value that can go up and down (e.g. modeled seconds of the
// latest run). Safe for concurrent use; nil-safe.
type Gauge struct {
	bits atomic.Uint64
}

// Set replaces the gauge value.
func (g *Gauge) Set(v float64) {
	if g == nil {
		return
	}
	g.bits.Store(math.Float64bits(v))
}

// Add increments the gauge by d.
func (g *Gauge) Add(d float64) {
	if g == nil {
		return
	}
	for {
		old := g.bits.Load()
		v := math.Float64frombits(old) + d
		if g.bits.CompareAndSwap(old, math.Float64bits(v)) {
			return
		}
	}
}

// Value returns the current gauge value.
func (g *Gauge) Value() float64 {
	if g == nil {
		return 0
	}
	return math.Float64frombits(g.bits.Load())
}

// DefBuckets are the default histogram bucket upper bounds, spanning
// microsecond kernels to multi-second grid runs.
var DefBuckets = []float64{1e-6, 1e-5, 1e-4, 1e-3, 1e-2, 0.1, 1, 10}

// Exemplar ties one concrete observation to the trace that produced it, in
// the OpenMetrics sense: a histogram bucket can carry the trace ID of a
// recent sample that landed in it, so an operator can go from a bad latency
// bucket straight to the offending request's span tree. The zero value
// means "no exemplar recorded".
type Exemplar struct {
	TraceID string
	Value   float64
	Time    time.Time
}

// Histogram is a fixed-bucket histogram with Prometheus cumulative-export
// semantics: a sample lands in the first bucket whose upper bound is >= v
// (bounds are inclusive, matching the `le` label). Safe for concurrent
// use; nil-safe.
type Histogram struct {
	mu     sync.Mutex
	upper  []float64 // ascending; +Inf bucket is implicit at the end
	counts []uint64  // len(upper)+1, the last one is the +Inf bucket
	sum    float64
	count  uint64
	// exemplars is lazily allocated (len(counts)) on the first
	// ObserveExemplar; each slot keeps the latest exemplar for its bucket.
	exemplars []Exemplar
}

func newHistogram(buckets []float64) *Histogram {
	if len(buckets) == 0 {
		buckets = DefBuckets
	}
	upper := make([]float64, len(buckets))
	copy(upper, buckets)
	sort.Float64s(upper)
	return &Histogram{upper: upper, counts: make([]uint64, len(upper)+1)}
}

// Observe records one sample.
func (h *Histogram) Observe(v float64) {
	if h == nil {
		return
	}
	h.mu.Lock()
	defer h.mu.Unlock()
	i := sort.SearchFloat64s(h.upper, v) // first bound >= v: inclusive le
	h.counts[i]++
	h.sum += v
	h.count++
}

// ObserveExemplar records one sample and, when traceID is non-empty,
// stamps the sample's bucket with an exemplar carrying the trace ID and
// observation time. The latest exemplar per bucket wins — exemplars are a
// sampling aid, not a log, and OpenMetrics exposes at most one per bucket.
func (h *Histogram) ObserveExemplar(v float64, traceID string, at time.Time) {
	if h == nil {
		return
	}
	if traceID == "" {
		h.Observe(v)
		return
	}
	h.mu.Lock()
	defer h.mu.Unlock()
	i := sort.SearchFloat64s(h.upper, v)
	h.counts[i]++
	h.sum += v
	h.count++
	if h.exemplars == nil {
		h.exemplars = make([]Exemplar, len(h.counts))
	}
	h.exemplars[i] = Exemplar{TraceID: traceID, Value: v, Time: at}
}

// Exemplars returns a copy of the per-bucket exemplars (the final element
// is the +Inf bucket), or nil when none were ever recorded. Slots with an
// empty TraceID have no exemplar.
func (h *Histogram) Exemplars() []Exemplar {
	if h == nil {
		return nil
	}
	h.mu.Lock()
	defer h.mu.Unlock()
	if h.exemplars == nil {
		return nil
	}
	out := make([]Exemplar, len(h.exemplars))
	copy(out, h.exemplars)
	return out
}

// Bounds returns a copy of the bucket upper bounds (excluding +Inf).
func (h *Histogram) Bounds() []float64 {
	if h == nil {
		return nil
	}
	h.mu.Lock()
	defer h.mu.Unlock()
	out := make([]float64, len(h.upper))
	copy(out, h.upper)
	return out
}

// Buckets returns a copy of the per-bucket counts; the final element is
// the +Inf bucket.
func (h *Histogram) Buckets() []uint64 {
	if h == nil {
		return nil
	}
	h.mu.Lock()
	defer h.mu.Unlock()
	out := make([]uint64, len(h.counts))
	copy(out, h.counts)
	return out
}

// CountSum returns the total sample count and sum.
func (h *Histogram) CountSum() (uint64, float64) {
	if h == nil {
		return 0, 0
	}
	h.mu.Lock()
	defer h.mu.Unlock()
	return h.count, h.sum
}

// merge folds other into h when the bucket layouts match; mismatched
// layouts fold into count/sum only (the samples are not recoverable).
func (h *Histogram) merge(other *Histogram) {
	if h == nil || other == nil || h == other {
		return
	}
	other.mu.Lock()
	counts := make([]uint64, len(other.counts))
	copy(counts, other.counts)
	upper := make([]float64, len(other.upper))
	copy(upper, other.upper)
	count, sum := other.count, other.sum
	var ex []Exemplar
	if other.exemplars != nil {
		ex = make([]Exemplar, len(other.exemplars))
		copy(ex, other.exemplars)
	}
	other.mu.Unlock()

	h.mu.Lock()
	defer h.mu.Unlock()
	same := len(upper) == len(h.upper)
	for i := 0; same && i < len(upper); i++ {
		same = upper[i] == h.upper[i]
	}
	if same {
		for i := range counts {
			h.counts[i] += counts[i]
		}
		// Newest exemplar per bucket wins across the merge, matching the
		// latest-wins policy of ObserveExemplar itself.
		if ex != nil {
			if h.exemplars == nil {
				h.exemplars = make([]Exemplar, len(h.counts))
			}
			for i, e := range ex {
				if e.TraceID != "" && e.Time.After(h.exemplars[i].Time) {
					h.exemplars[i] = e
				}
			}
		}
	} else {
		h.counts[len(h.counts)-1] += count
	}
	h.count += count
	h.sum += sum
}
