package obs

import (
	"bytes"
	"context"
	"fmt"
	"strings"
	"sync"
	"testing"
	"time"
)

// TestObserveExemplarBuckets checks exemplars land in the bucket their
// observation does, latest-wins within a bucket, and that an empty trace ID
// degrades to a plain observation.
func TestObserveExemplarBuckets(t *testing.T) {
	h := newHistogram([]float64{0.01, 0.1, 1})
	base := time.Unix(100, 0)

	h.ObserveExemplar(0.005, "fast-1", base)
	h.ObserveExemplar(0.5, "slow-1", base.Add(time.Second))
	h.ObserveExemplar(0.5, "slow-2", base.Add(2*time.Second))
	h.ObserveExemplar(99, "inf-1", base.Add(3*time.Second))
	h.ObserveExemplar(0.005, "", base.Add(4*time.Second)) // no trace: plain

	ex := h.Exemplars()
	if len(ex) != 4 {
		t.Fatalf("len(Exemplars) = %d, want 4 (3 finite + Inf)", len(ex))
	}
	if ex[0].TraceID != "fast-1" {
		t.Errorf("bucket 0 exemplar = %q, want fast-1", ex[0].TraceID)
	}
	if ex[1].TraceID != "" {
		t.Errorf("bucket 1 exemplar = %q, want empty", ex[1].TraceID)
	}
	if ex[2].TraceID != "slow-2" {
		t.Errorf("bucket 2 exemplar = %q, want slow-2 (latest wins)", ex[2].TraceID)
	}
	if ex[3].TraceID != "inf-1" {
		t.Errorf("+Inf exemplar = %q, want inf-1", ex[3].TraceID)
	}
	if count, _ := h.CountSum(); count != 5 {
		t.Errorf("count = %d, want 5 (exemplar path must still count)", count)
	}
}

// TestExemplarConcurrency hammers one histogram from writers (with and
// without trace IDs) while readers snapshot exemplars and render
// OpenMetrics; run under -race this is the data-race proof for the
// exemplar path.
func TestExemplarConcurrency(t *testing.T) {
	reg := NewRegistry()
	h := reg.Histogram("lat_seconds", []float64{0.01, 0.1, 1})
	const writers, perWriter = 8, 500

	var wg sync.WaitGroup
	for g := 0; g < writers; g++ {
		wg.Add(1)
		go func(g int) {
			defer wg.Done()
			for i := 0; i < perWriter; i++ {
				v := float64(i%3) * 0.05
				if i%2 == 0 {
					h.ObserveExemplar(v, fmt.Sprintf("t-%d-%d", g, i), reg.Now())
				} else {
					h.Observe(v)
				}
			}
		}(g)
	}
	stop := make(chan struct{})
	var readers sync.WaitGroup
	for r := 0; r < 4; r++ {
		readers.Add(1)
		go func() {
			defer readers.Done()
			for {
				select {
				case <-stop:
					return
				default:
				}
				h.Exemplars()
				reg.WriteOpenMetrics(&bytes.Buffer{})
			}
		}()
	}
	wg.Wait()
	close(stop)
	readers.Wait()

	if count, _ := h.CountSum(); count != writers*perWriter {
		t.Fatalf("count = %d, want %d", count, writers*perWriter)
	}
	ex := h.Exemplars()
	if ex == nil {
		t.Fatal("no exemplars recorded")
	}
	seen := false
	for _, e := range ex {
		if e.TraceID != "" {
			seen = true
			if !strings.HasPrefix(e.TraceID, "t-") {
				t.Errorf("unexpected exemplar trace ID %q", e.TraceID)
			}
		}
	}
	if !seen {
		t.Error("no bucket retained an exemplar")
	}
}

// TestWriteOpenMetrics pins the exposition: exemplars appear on the bucket
// rows that hold one, plain rows are untouched, and the output ends with
// the mandatory # EOF.
func TestWriteOpenMetrics(t *testing.T) {
	reg := NewRegistry()
	clock := time.Unix(1700000000, 500000000)
	reg.SetClock(func() time.Time { return clock })

	reg.Counter("requests_total", L("code", "200")).Add(3)
	h := reg.Histogram("lat_seconds", []float64{0.01, 0.1}, L("kernel", "sobel"))
	h.ObserveExemplar(0.05, "abc123", reg.Now())
	h.Observe(0.002)

	var buf bytes.Buffer
	if err := reg.WriteOpenMetrics(&buf); err != nil {
		t.Fatal(err)
	}
	out := buf.String()

	if !strings.HasSuffix(out, "# EOF\n") {
		t.Errorf("output does not end with # EOF:\n%s", out)
	}
	wantRow := `lat_seconds_bucket{kernel="sobel",le="0.1"} 2 # {trace_id="abc123"} 0.05 1700000000.500000000`
	if !strings.Contains(out, wantRow+"\n") {
		t.Errorf("missing exemplar row %q in:\n%s", wantRow, out)
	}
	if !strings.Contains(out, `requests_total{code="200"} 3`+"\n") {
		t.Errorf("missing counter row in:\n%s", out)
	}
	// The fast bucket got no exemplar, so its row must be bare.
	if !strings.Contains(out, `lat_seconds_bucket{kernel="sobel",le="0.01"} 1`+"\n") {
		t.Errorf("fast bucket row malformed in:\n%s", out)
	}
	// The classic exposition must stay exemplar-free (golden compatibility).
	var classic bytes.Buffer
	reg.WritePrometheus(&classic)
	if strings.Contains(classic.String(), "trace_id") {
		t.Error("WritePrometheus leaked exemplars into the 0.0.4 format")
	}
}

// TestMergeKeepsNewestExemplar: registry fan-in keeps the newest exemplar
// per bucket, matching the latest-wins policy of ObserveExemplar.
func TestMergeKeepsNewestExemplar(t *testing.T) {
	a, b := NewRegistry(), NewRegistry()
	base := time.Unix(200, 0)
	a.Histogram("lat_seconds", []float64{1}).ObserveExemplar(0.5, "old", base)
	b.Histogram("lat_seconds", []float64{1}).ObserveExemplar(0.5, "new", base.Add(time.Minute))

	a.Merge(b)
	ex := a.Histogram("lat_seconds", []float64{1}).Exemplars()
	if len(ex) == 0 || ex[0].TraceID != "new" {
		t.Fatalf("merged exemplar = %+v, want trace new", ex)
	}

	// And the reverse: merging an older exemplar must not clobber a newer.
	c := NewRegistry()
	c.Histogram("lat_seconds", []float64{1}).ObserveExemplar(0.5, "older", base.Add(-time.Minute))
	a.Merge(c)
	ex = a.Histogram("lat_seconds", []float64{1}).Exemplars()
	if ex[0].TraceID != "new" {
		t.Fatalf("merge regressed exemplar to %q, want new", ex[0].TraceID)
	}
}

// TestTraceContext pins the context helpers: round-trip, nil-safety, and
// the empty-ID no-op.
func TestTraceContext(t *testing.T) {
	if got := TraceID(nil); got != "" {
		t.Errorf("TraceID(nil) = %q", got)
	}
	ctx := WithTrace(context.Background(), "req-9")
	if got := TraceID(ctx); got != "req-9" {
		t.Errorf("TraceID = %q, want req-9", got)
	}
	if ctx2 := WithTrace(ctx, ""); TraceID(ctx2) != "req-9" {
		t.Error("WithTrace with empty ID must leave the context unchanged")
	}
}
