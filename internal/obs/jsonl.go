package obs

import (
	"encoding/json"
	"io"
)

// jsonlRecord is the wire form of one event stream line.
type jsonlRecord struct {
	TS     string         `json:"ts"`
	Event  string         `json:"event"`
	Fields map[string]any `json:"fields,omitempty"`
}

// WriteJSONL renders the event stream as JSON Lines: one object per
// event, in emission order, with an RFC3339Nano timestamp. Every line is
// independently parseable, so partial files (a run killed mid-campaign)
// remain machine-readable up to the cut.
func (r *Registry) WriteJSONL(w io.Writer) error {
	if r == nil {
		return nil
	}
	enc := json.NewEncoder(w)
	for _, ev := range r.Events() {
		rec := jsonlRecord{
			TS:     ev.Time.UTC().Format("2006-01-02T15:04:05.000000000Z07:00"),
			Event:  ev.Name,
			Fields: ev.Fields,
		}
		if err := enc.Encode(rec); err != nil {
			return err
		}
	}
	return nil
}
