package obs

import (
	"bytes"
	"encoding/json"
	"flag"
	"os"
	"path/filepath"
	"strings"
	"testing"
	"time"
)

var update = flag.Bool("update", false, "rewrite the exporter golden files")

// goldenRegistry builds a deterministic registry: fake clock, a slice of
// every metric kind, a three-level span tree and two events — the same
// shapes a real fault-campaign run produces.
func goldenRegistry() *Registry {
	r := NewRegistry()
	base := time.Date(2026, 1, 2, 3, 4, 5, 0, time.UTC)
	tick := 0
	r.SetClock(func() time.Time {
		tick++
		return base.Add(time.Duration(tick) * 100 * time.Microsecond)
	})

	r.Counter("simd_instructions_total", L("isa", "neon"), L("class", "simd.cvt")).Add(9600)
	r.Counter("simd_instructions_total", L("isa", "neon"), L("class", "simd.load")).Add(19200)
	r.Counter("guard_actions_total", L("kernel", "ConvertF32ToS16"), L("isa", "neon"), L("action", "detected")).Add(2)
	r.Counter("guard_actions_total", L("kernel", "ConvertF32ToS16"), L("isa", "neon"), L("action", "fallback")).Inc()
	r.Counter("fault_classified_total", L("isa", "neon"), L("outcome", "masked")).Add(3)
	r.Gauge("speedup", L("bench", "BinThr"), L("platform", "Intel Atom N2800")).Set(2.25)
	h := r.Histogram("kernel_wall_seconds", []float64{1e-4, 1e-3, 1e-2}, L("kernel", "GauBlu"))
	h.Observe(5e-5)
	h.Observe(1e-3)
	h.Observe(0.5)

	cell := r.StartSpan("cell", L("platform", "atom"), L("size", "VGA"))
	cell.SetCycles(1234.5)
	kern := cell.Child("kernel.ConvertF32ToS16", L("isa", "neon"))
	kern.AddInstr(16800)
	guard := kern.Child("guard.referee")
	guard.End()
	kern.End()
	cell.End()

	r.Emit("guard.fault", map[string]any{
		"kernel": "ConvertF32ToS16", "isa": "neon", "action": "detected", "diffs": 12,
	})
	r.Emit("fault.masked", map[string]any{"isa": "neon", "count": 3})
	return r
}

func checkGolden(t *testing.T, name string, got []byte) {
	t.Helper()
	path := filepath.Join("testdata", name)
	if *update {
		if err := os.MkdirAll("testdata", 0o755); err != nil {
			t.Fatal(err)
		}
		if err := os.WriteFile(path, got, 0o644); err != nil {
			t.Fatal(err)
		}
		return
	}
	want, err := os.ReadFile(path)
	if err != nil {
		t.Fatalf("missing golden (run go test -update): %v", err)
	}
	if !bytes.Equal(got, want) {
		t.Errorf("%s mismatch:\n--- got ---\n%s\n--- want ---\n%s", name, got, want)
	}
}

func TestPrometheusGolden(t *testing.T) {
	var buf bytes.Buffer
	if err := goldenRegistry().WritePrometheus(&buf); err != nil {
		t.Fatal(err)
	}
	out := buf.String()
	// Sanity beyond the byte-compare: the acceptance families are present
	// with non-zero samples and the cumulative +Inf bucket equals _count.
	for _, want := range []string{
		`simd_instructions_total{class="simd.cvt",isa="neon"} 9600`,
		`guard_actions_total{action="detected",isa="neon",kernel="ConvertF32ToS16"} 2`,
		`fault_classified_total{isa="neon",outcome="masked"} 3`,
		`kernel_wall_seconds_bucket{kernel="GauBlu",le="+Inf"} 3`,
		`kernel_wall_seconds_count{kernel="GauBlu"} 3`,
		"# TYPE speedup gauge",
	} {
		if !strings.Contains(out, want) {
			t.Errorf("prometheus output missing %q:\n%s", want, out)
		}
	}
	checkGolden(t, "metrics.prom.golden", buf.Bytes())
}

func TestChromeTraceGolden(t *testing.T) {
	var buf bytes.Buffer
	if err := goldenRegistry().WriteChromeTrace(&buf); err != nil {
		t.Fatal(err)
	}
	// The document must be valid JSON with nested complete events.
	var doc struct {
		TraceEvents []struct {
			Name string  `json:"name"`
			Ph   string  `json:"ph"`
			TS   float64 `json:"ts"`
			Dur  float64 `json:"dur"`
		} `json:"traceEvents"`
	}
	if err := json.Unmarshal(buf.Bytes(), &doc); err != nil {
		t.Fatalf("chrome trace is not valid JSON: %v", err)
	}
	byName := map[string]int{}
	for i, ev := range doc.TraceEvents {
		byName[ev.Name] = i
	}
	for _, name := range []string{"cell", "kernel.ConvertF32ToS16", "guard.referee", "guard.fault"} {
		if _, ok := byName[name]; !ok {
			t.Fatalf("trace missing event %q", name)
		}
	}
	cell := doc.TraceEvents[byName["cell"]]
	kern := doc.TraceEvents[byName["kernel.ConvertF32ToS16"]]
	guard := doc.TraceEvents[byName["guard.referee"]]
	if !(cell.TS <= kern.TS && kern.TS+kern.Dur <= cell.TS+cell.Dur) {
		t.Errorf("kernel span not nested in cell: %+v vs %+v", kern, cell)
	}
	if !(kern.TS <= guard.TS && guard.TS+guard.Dur <= kern.TS+kern.Dur) {
		t.Errorf("guard span not nested in kernel: %+v vs %+v", guard, kern)
	}
	checkGolden(t, "trace.json.golden", buf.Bytes())
}

func TestJSONLGolden(t *testing.T) {
	var buf bytes.Buffer
	if err := goldenRegistry().WriteJSONL(&buf); err != nil {
		t.Fatal(err)
	}
	lines := strings.Split(strings.TrimRight(buf.String(), "\n"), "\n")
	if len(lines) != 2 {
		t.Fatalf("jsonl lines = %d, want 2:\n%s", len(lines), buf.String())
	}
	for _, line := range lines {
		var rec map[string]any
		if err := json.Unmarshal([]byte(line), &rec); err != nil {
			t.Fatalf("line %q is not valid JSON: %v", line, err)
		}
		for _, k := range []string{"ts", "event"} {
			if _, ok := rec[k]; !ok {
				t.Fatalf("line %q missing key %q", line, k)
			}
		}
	}
	checkGolden(t, "events.jsonl.golden", buf.Bytes())
}
