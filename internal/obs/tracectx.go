package obs

import "context"

// This file is the trace-ID plumbing shared by every layer that touches a
// request: the serve front-end mints one ID per request (echoed in the
// X-Request-ID header), binds it to the request context with WithTrace,
// and everything downstream — kernel spans, the IR executor, histogram
// exemplars, panic events — reads it back with TraceID. One ID, one
// format, end to end: the string in a 500 body is the same string an
// operator finds on the latency histogram's exemplar and in the span
// tree's trace_id attribute.

// traceKey is the context key carrying the request's trace ID.
type traceKey struct{}

// WithTrace returns a context carrying id as the trace ID. An empty id
// returns ctx unchanged.
func WithTrace(ctx context.Context, id string) context.Context {
	if id == "" {
		return ctx
	}
	return context.WithValue(ctx, traceKey{}, id)
}

// TraceID returns the trace ID bound to ctx, or "". A nil ctx is allowed.
func TraceID(ctx context.Context) string {
	if ctx == nil {
		return ""
	}
	id, _ := ctx.Value(traceKey{}).(string)
	return id
}
