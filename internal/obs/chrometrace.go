package obs

import (
	"encoding/json"
	"io"
	"sort"
)

// chromeEvent is one entry of the Chrome trace_event format (the JSON
// understood by chrome://tracing and Perfetto). Spans export as complete
// ("X") events; registry events export as instant ("i") events.
type chromeEvent struct {
	Name string         `json:"name"`
	Cat  string         `json:"cat"`
	Ph   string         `json:"ph"`
	TS   float64        `json:"ts"` // microseconds since trace start
	Dur  float64        `json:"dur,omitempty"`
	PID  int            `json:"pid"`
	TID  int            `json:"tid"`
	S    string         `json:"s,omitempty"` // instant scope
	Args map[string]any `json:"args,omitempty"`
}

type chromeTrace struct {
	TraceEvents     []chromeEvent `json:"traceEvents"`
	DisplayTimeUnit string        `json:"displayTimeUnit"`
}

// WriteChromeTrace renders every completed span and emitted event as a
// Chrome trace_event JSON document. Load the file in chrome://tracing or
// https://ui.perfetto.dev to see a whole RunGrid or RunFaultCampaign as a
// nested timeline: grid cells on their own tracks, kernels inside cells,
// guard actions inside kernels. Span attrs, instruction deltas and
// modeled cycles land in each slice's args pane.
func (r *Registry) WriteChromeTrace(w io.Writer) error {
	if r == nil {
		return nil
	}
	r.mu.Lock()
	start := r.start
	spans := make([]SpanRecord, len(r.spans))
	copy(spans, r.spans)
	events := make([]Event, len(r.events))
	copy(events, r.events)
	r.mu.Unlock()

	out := chromeTrace{DisplayTimeUnit: "ms", TraceEvents: []chromeEvent{}}
	micros := func(ns int64) float64 { return float64(ns) / 1e3 }
	for _, sp := range spans {
		args := map[string]any{}
		for k, v := range sp.Attrs {
			args[k] = v
		}
		if sp.Instr > 0 {
			args["instructions"] = sp.Instr
		}
		if sp.Cycles > 0 {
			args["modeled_cycles"] = sp.Cycles
		}
		if len(args) == 0 {
			args = nil
		}
		out.TraceEvents = append(out.TraceEvents, chromeEvent{
			Name: sp.Name,
			Cat:  "span",
			Ph:   "X",
			TS:   micros(sp.Start.Sub(start).Nanoseconds()),
			Dur:  micros(sp.End.Sub(sp.Start).Nanoseconds()),
			PID:  1,
			TID:  sp.Track,
			Args: args,
		})
	}
	for _, ev := range events {
		var args map[string]any
		if len(ev.Fields) > 0 {
			args = ev.Fields
		}
		out.TraceEvents = append(out.TraceEvents, chromeEvent{
			Name: ev.Name,
			Cat:  "event",
			Ph:   "i",
			TS:   micros(ev.Time.Sub(start).Nanoseconds()),
			PID:  1,
			TID:  1,
			S:    "g",
			Args: args,
		})
	}
	// Stable order: by timestamp, then enclosing-first (longer duration
	// first) so viewers nest slices correctly.
	sort.SliceStable(out.TraceEvents, func(i, j int) bool {
		a, b := out.TraceEvents[i], out.TraceEvents[j]
		if a.TS != b.TS {
			return a.TS < b.TS
		}
		return a.Dur > b.Dur
	})
	enc := json.NewEncoder(w)
	enc.SetIndent("", " ")
	return enc.Encode(out)
}
