package obs

import (
	"fmt"
	"io"
	"sort"
	"strconv"
)

// WriteOpenMetrics renders every metric family in the OpenMetrics text
// format: the same families, series and ordering as WritePrometheus, plus
// per-bucket exemplars on histogram series that carry one
// (`# {trace_id="..."} value timestamp` after the bucket sample) and the
// mandatory `# EOF` terminator. Exemplars are the one thing the classic
// 0.0.4 exposition cannot express, and the reason this exporter exists:
// they are the pointer from a bad latency bucket to the request trace that
// landed there.
//
// Like WritePrometheus, the output is deterministic for a given registry
// state (exemplar timestamps come from the registry clock at observation
// time), so it is golden-testable.
func (r *Registry) WriteOpenMetrics(w io.Writer) error {
	if r == nil {
		return nil
	}
	r.mu.Lock()
	counters := make([]counterEntry, 0, len(r.counters))
	for _, e := range r.counters {
		counters = append(counters, *e)
	}
	gauges := make([]gaugeEntry, 0, len(r.gauges))
	for _, e := range r.gauges {
		gauges = append(gauges, *e)
	}
	hists := make([]histEntry, 0, len(r.hists))
	for _, e := range r.hists {
		hists = append(hists, *e)
	}
	r.mu.Unlock()

	type family struct {
		name string
		typ  string
		rows []string
	}
	fams := map[string]*family{}
	get := func(name, typ string) *family {
		f, ok := fams[name]
		if !ok {
			f = &family{name: name, typ: typ}
			fams[name] = f
		}
		return f
	}

	for _, e := range counters {
		f := get(e.name, "counter")
		f.rows = append(f.rows, fmt.Sprintf("%s %s",
			renderSeries(e.name, e.labels), strconv.FormatUint(e.c.Value(), 10)))
	}
	for _, e := range gauges {
		f := get(e.name, "gauge")
		f.rows = append(f.rows, fmt.Sprintf("%s %s",
			renderSeries(e.name, e.labels), formatFloat(e.g.Value())))
	}
	for _, e := range hists {
		f := get(e.name, "histogram")
		bounds := e.h.Bounds()
		buckets := e.h.Buckets()
		count, sum := e.h.CountSum()
		ex := e.h.Exemplars()
		var cum uint64
		for i, b := range bounds {
			cum += buckets[i]
			le := append(append([]Label{}, e.labels...), L("le", formatFloat(b)))
			row := fmt.Sprintf("%s %d",
				renderSeries(e.name+"_bucket", sortLabels(le)), cum)
			if i < len(ex) {
				row += renderExemplar(ex[i])
			}
			f.rows = append(f.rows, row)
		}
		inf := append(append([]Label{}, e.labels...), L("le", "+Inf"))
		row := fmt.Sprintf("%s %d",
			renderSeries(e.name+"_bucket", sortLabels(inf)), count)
		if len(ex) == len(buckets) && len(ex) > 0 {
			row += renderExemplar(ex[len(ex)-1])
		}
		f.rows = append(f.rows, row)
		f.rows = append(f.rows, fmt.Sprintf("%s %s",
			renderSeries(e.name+"_sum", e.labels), formatFloat(sum)))
		f.rows = append(f.rows, fmt.Sprintf("%s %d",
			renderSeries(e.name+"_count", e.labels), count))
	}

	names := make([]string, 0, len(fams))
	for n := range fams {
		names = append(names, n)
	}
	sort.Strings(names)
	for _, n := range names {
		f := fams[n]
		if _, err := fmt.Fprintf(w, "# TYPE %s %s\n", f.name, f.typ); err != nil {
			return err
		}
		sort.Strings(f.rows)
		for _, row := range f.rows {
			if _, err := fmt.Fprintln(w, row); err != nil {
				return err
			}
		}
	}
	_, err := fmt.Fprintln(w, "# EOF")
	return err
}

// renderExemplar prints one OpenMetrics exemplar suffix, or "" for an
// empty slot. Timestamps are seconds since the epoch with nanosecond
// precision, per the OpenMetrics ABNF; they are assembled from the integer
// second and nanosecond parts because epoch nanoseconds overflow float64
// precision.
func renderExemplar(e Exemplar) string {
	if e.TraceID == "" {
		return ""
	}
	return fmt.Sprintf(" # {trace_id=%q} %s %d.%09d",
		e.TraceID, formatFloat(e.Value), e.Time.Unix(), e.Time.Nanosecond())
}
