// Package obs is the repo's dependency-free observability core: a
// thread-safe metrics registry (counters, gauges, fixed-bucket histograms,
// all with label families), hierarchical spans with wall-clock,
// modeled-cycle and instruction-delta attribution, and machine-readable
// exporters (Prometheus text exposition, JSONL event stream, Chrome
// trace_event JSON for chrome://tracing / Perfetto).
//
// The paper's argument rests on measured dynamic quantities — instructions
// retired per pixel, per-class pipe occupancy, AUTO/HAND timing ratios —
// and the guard/fault machinery adds detections, retries, fallbacks and
// kill-switch trips on top. This package turns all of them into a single
// queryable artifact per run instead of ad-hoc text tables: the emulation
// units, the cv kernels, the IR executor and the harness all report here.
//
// Everything is safe for concurrent use. Counters are lock-free atomics;
// histograms, the event log and the span log are mutex-guarded. A Registry
// built in one goroutine per worker can be folded into a shared one with
// Merge, mirroring the trace.Counter fan-in pattern.
package obs

import (
	"fmt"
	"sort"
	"strings"
	"sync"
	"time"
)

// Label is one name=value pair of a metric family or span attribute.
type Label struct {
	Key, Value string
}

// L builds a Label; it keeps call sites short.
func L(key, value string) Label { return Label{Key: key, Value: value} }

// sortLabels returns a copy of labels sorted by key. Prometheus series
// identity ignores label order, so the registry canonicalizes eagerly.
func sortLabels(labels []Label) []Label {
	out := make([]Label, len(labels))
	copy(out, labels)
	sort.Slice(out, func(i, j int) bool { return out[i].Key < out[j].Key })
	return out
}

// seriesKey renders the canonical identity of one labeled series.
func seriesKey(name string, labels []Label) string {
	if len(labels) == 0 {
		return name
	}
	var sb strings.Builder
	sb.WriteString(name)
	for _, l := range labels {
		sb.WriteByte(0xff)
		sb.WriteString(l.Key)
		sb.WriteByte(0xfe)
		sb.WriteString(l.Value)
	}
	return sb.String()
}

// Event is one out-of-band occurrence in the event stream: a fault
// detection, a retry, a grid-cell failure. Fields hold arbitrary
// JSON-encodable payload.
type Event struct {
	Time   time.Time
	Name   string
	Fields map[string]any
}

// Registry holds every metric family, completed span and emitted event of
// one observed run. The zero value is not usable; call NewRegistry.
type Registry struct {
	mu    sync.Mutex
	clock func() time.Time
	start time.Time

	counters map[string]*counterEntry
	gauges   map[string]*gaugeEntry
	hists    map[string]*histEntry

	events []Event
	spans  []SpanRecord

	nextSpanID int
}

type counterEntry struct {
	name   string
	labels []Label
	c      *Counter
}

type gaugeEntry struct {
	name   string
	labels []Label
	g      *Gauge
}

type histEntry struct {
	name   string
	labels []Label
	h      *Histogram
}

// NewRegistry returns an empty registry stamped with the current time.
func NewRegistry() *Registry {
	r := &Registry{
		clock:    time.Now,
		counters: map[string]*counterEntry{},
		gauges:   map[string]*gaugeEntry{},
		hists:    map[string]*histEntry{},
	}
	r.start = r.clock()
	return r
}

// SetClock replaces the registry's time source and re-stamps the start
// time; call it before recording anything. Tests use it for deterministic
// golden output.
func (r *Registry) SetClock(now func() time.Time) {
	r.mu.Lock()
	defer r.mu.Unlock()
	r.clock = now
	r.start = now()
}

func (r *Registry) now() time.Time {
	r.mu.Lock()
	defer r.mu.Unlock()
	return r.clock()
}

// Now returns the registry clock's current time: wall clock by default,
// the injected clock under SetClock. Exemplar timestamps and time-series
// samples read it so everything timestamped against one registry is
// mutually consistent — and deterministic in tests.
func (r *Registry) Now() time.Time {
	if r == nil {
		return time.Time{}
	}
	return r.now()
}

// Counter returns (creating on first use) the counter for name and labels.
func (r *Registry) Counter(name string, labels ...Label) *Counter {
	if r == nil {
		return nil
	}
	labels = sortLabels(labels)
	key := seriesKey(name, labels)
	r.mu.Lock()
	defer r.mu.Unlock()
	e, ok := r.counters[key]
	if !ok {
		e = &counterEntry{name: name, labels: labels, c: &Counter{}}
		r.counters[key] = e
	}
	return e.c
}

// Gauge returns (creating on first use) the gauge for name and labels.
func (r *Registry) Gauge(name string, labels ...Label) *Gauge {
	if r == nil {
		return nil
	}
	labels = sortLabels(labels)
	key := seriesKey(name, labels)
	r.mu.Lock()
	defer r.mu.Unlock()
	e, ok := r.gauges[key]
	if !ok {
		e = &gaugeEntry{name: name, labels: labels, g: &Gauge{}}
		r.gauges[key] = e
	}
	return e.g
}

// Histogram returns (creating on first use) the histogram for name and
// labels. buckets are inclusive upper bounds in ascending order; nil
// selects DefBuckets. The bucket layout is fixed by the first caller.
func (r *Registry) Histogram(name string, buckets []float64, labels ...Label) *Histogram {
	if r == nil {
		return nil
	}
	labels = sortLabels(labels)
	key := seriesKey(name, labels)
	r.mu.Lock()
	defer r.mu.Unlock()
	e, ok := r.hists[key]
	if !ok {
		e = &histEntry{name: name, labels: labels, h: newHistogram(buckets)}
		r.hists[key] = e
	}
	return e.h
}

// Emit appends one event to the JSONL stream. Fields must be
// JSON-encodable; nil is allowed.
func (r *Registry) Emit(name string, fields map[string]any) {
	if r == nil {
		return
	}
	r.mu.Lock()
	defer r.mu.Unlock()
	r.events = append(r.events, Event{Time: r.clock(), Name: name, Fields: fields})
}

// Events returns a copy of the emitted events in emission order.
func (r *Registry) Events() []Event {
	if r == nil {
		return nil
	}
	r.mu.Lock()
	defer r.mu.Unlock()
	out := make([]Event, len(r.events))
	copy(out, r.events)
	return out
}

// Spans returns a copy of the completed span records.
func (r *Registry) Spans() []SpanRecord {
	if r == nil {
		return nil
	}
	r.mu.Lock()
	defer r.mu.Unlock()
	out := make([]SpanRecord, len(r.spans))
	copy(out, r.spans)
	return out
}

// Snapshot is a flat view of the registry's scalar samples, keyed by the
// rendered series id (name{label="value",...}). Histograms contribute
// their _count and _sum. Grid cells carry one of these per cell.
type Snapshot map[string]float64

// Snapshot captures the current value of every counter, gauge and
// histogram aggregate.
func (r *Registry) Snapshot() Snapshot {
	if r == nil {
		return nil
	}
	r.mu.Lock()
	defer r.mu.Unlock()
	s := make(Snapshot, len(r.counters)+len(r.gauges)+2*len(r.hists))
	for _, e := range r.counters {
		s[renderSeries(e.name, e.labels)] = float64(e.c.Value())
	}
	for _, e := range r.gauges {
		s[renderSeries(e.name, e.labels)] = e.g.Value()
	}
	for _, e := range r.hists {
		count, sum := e.h.CountSum()
		s[renderSeries(e.name+"_count", e.labels)] = float64(count)
		s[renderSeries(e.name+"_sum", e.labels)] = sum
	}
	return s
}

// Delta returns the per-series difference s - prev: the amount every
// series advanced between two snapshots. Series missing from prev are
// treated as starting at zero (they were created inside the window);
// series present only in prev are dropped (registries never delete
// series, so that can only mean prev came from a different registry).
// Counter deltas divided by the wall-clock gap between the snapshots are
// the windowed rates the time-series store serves.
func (s Snapshot) Delta(prev Snapshot) Snapshot {
	out := make(Snapshot, len(s))
	for k, v := range s {
		out[k] = v - prev[k]
	}
	return out
}

// Filter returns the subset of the snapshot whose series names start with
// prefix. Determinism checks use it to compare the replay-stable families
// (fault_*, guard_*) of two runs while ignoring wall-clock series.
func (s Snapshot) Filter(prefix string) Snapshot {
	out := make(Snapshot)
	for k, v := range s {
		if strings.HasPrefix(k, prefix) {
			out[k] = v
		}
	}
	return out
}

// HistSample is a point-in-time copy of one histogram: per-bucket counts
// (non-cumulative, final element the +Inf bucket), the bucket upper
// bounds, and the count/sum aggregates. The time-series store diffs two of
// these to derive windowed quantiles.
type HistSample struct {
	Bounds []float64
	Counts []uint64
	Count  uint64
	Sum    float64
}

// Sample is one clock-stamped structured snapshot of a registry, the unit
// the time-series store rings: monotone series (counters plus histogram
// _count/_sum) separated from gauges so rate computation never sees a
// value that may legally decrease, and full per-bucket histogram state for
// quantile derivation.
type Sample struct {
	Time     time.Time
	Counters Snapshot
	Gauges   Snapshot
	Hists    map[string]HistSample
}

// Sample captures a structured snapshot stamped with the registry clock.
func (r *Registry) Sample() Sample {
	if r == nil {
		return Sample{}
	}
	r.mu.Lock()
	defer r.mu.Unlock()
	s := Sample{
		Time:     r.clock(),
		Counters: make(Snapshot, len(r.counters)+2*len(r.hists)),
		Gauges:   make(Snapshot, len(r.gauges)),
		Hists:    make(map[string]HistSample, len(r.hists)),
	}
	for _, e := range r.counters {
		s.Counters[renderSeries(e.name, e.labels)] = float64(e.c.Value())
	}
	for _, e := range r.gauges {
		s.Gauges[renderSeries(e.name, e.labels)] = e.g.Value()
	}
	for _, e := range r.hists {
		key := renderSeries(e.name, e.labels)
		count, sum := e.h.CountSum()
		s.Counters[renderSeries(e.name+"_count", e.labels)] = float64(count)
		s.Counters[renderSeries(e.name+"_sum", e.labels)] = sum
		s.Hists[key] = HistSample{
			Bounds: e.h.Bounds(),
			Counts: e.h.Buckets(),
			Count:  count,
			Sum:    sum,
		}
	}
	return s
}

// renderSeries prints name{k="v",...} with Prometheus escaping.
func renderSeries(name string, labels []Label) string {
	if len(labels) == 0 {
		return name
	}
	var sb strings.Builder
	sb.WriteString(name)
	sb.WriteByte('{')
	for i, l := range labels {
		if i > 0 {
			sb.WriteByte(',')
		}
		fmt.Fprintf(&sb, "%s=%q", l.Key, l.Value)
	}
	sb.WriteByte('}')
	return sb.String()
}

// Merge folds other's metrics, events and spans into r: counters and
// histogram buckets add, gauges take other's latest value, events append,
// spans append with their ids re-based so they stay unique. Workers build
// a private Registry each and merge into a shared one; Merge locks the
// source only long enough to snapshot it, so concurrent merges into one
// destination are safe.
func (r *Registry) Merge(other *Registry) {
	if r == nil || other == nil || r == other {
		return
	}
	// Snapshot the source without holding r's lock (no nested locking, so
	// no lock-order deadlock between two registries).
	other.mu.Lock()
	counters := make([]counterEntry, 0, len(other.counters))
	for _, e := range other.counters {
		counters = append(counters, counterEntry{name: e.name, labels: e.labels, c: e.c})
	}
	gauges := make([]gaugeEntry, 0, len(other.gauges))
	for _, e := range other.gauges {
		gauges = append(gauges, gaugeEntry{name: e.name, labels: e.labels, g: e.g})
	}
	hists := make([]histEntry, 0, len(other.hists))
	for _, e := range other.hists {
		hists = append(hists, histEntry{name: e.name, labels: e.labels, h: e.h})
	}
	events := make([]Event, len(other.events))
	copy(events, other.events)
	spans := make([]SpanRecord, len(other.spans))
	copy(spans, other.spans)
	other.mu.Unlock()

	for _, e := range counters {
		r.Counter(e.name, e.labels...).Add(e.c.Value())
	}
	for _, e := range gauges {
		r.Gauge(e.name, e.labels...).Set(e.g.Value())
	}
	for _, e := range hists {
		r.Histogram(e.name, e.h.Bounds(), e.labels...).merge(e.h)
	}

	r.mu.Lock()
	defer r.mu.Unlock()
	base := r.nextSpanID
	for _, sr := range spans {
		sr.ID += base
		if sr.Parent != 0 {
			sr.Parent += base
		}
		if sr.ID >= r.nextSpanID {
			r.nextSpanID = sr.ID + 1
		}
		r.spans = append(r.spans, sr)
	}
	r.events = append(r.events, events...)
}
