package obs

import (
	"strings"
	"sync"
	"testing"
	"time"
)

func TestCounterGaugeBasics(t *testing.T) {
	r := NewRegistry()
	c := r.Counter("requests_total", L("isa", "neon"))
	c.Inc()
	c.Add(4)
	if got := c.Value(); got != 5 {
		t.Fatalf("counter = %d, want 5", got)
	}
	// Same name+labels in any order returns the same series.
	if r.Counter("requests_total", L("isa", "neon")) != c {
		t.Fatal("counter lookup did not dedupe")
	}
	g := r.Gauge("speedup", L("bench", "BinThr"), L("size", "VGA"))
	g.Set(3.5)
	g.Add(0.5)
	if got := g.Value(); got != 4.0 {
		t.Fatalf("gauge = %v, want 4.0", got)
	}
	if r.Gauge("speedup", L("size", "VGA"), L("bench", "BinThr")) != g {
		t.Fatal("gauge lookup is label-order sensitive")
	}
}

func TestNilSafety(t *testing.T) {
	var r *Registry
	r.Counter("x").Inc()
	r.Gauge("y").Set(1)
	r.Histogram("z", nil).Observe(1)
	r.Emit("e", nil)
	var s *Span
	s.SetAttr("k", 1)
	s.AddInstr(3)
	s.SetCycles(1)
	s.SampleInstr(func() uint64 { return 0 })
	if d := s.End(); d != 0 {
		t.Fatalf("nil span End = %v", d)
	}
	if c := s.Child("c"); c != nil {
		t.Fatalf("nil span Child = %v", c)
	}
}

// TestHistogramBucketBoundaries pins the inclusive-upper-bound (`le`)
// semantics: a sample exactly on a bound lands in that bound's bucket.
func TestHistogramBucketBoundaries(t *testing.T) {
	r := NewRegistry()
	h := r.Histogram("lat", []float64{1, 2, 4})
	for _, v := range []float64{0.5, 1, 1.0000001, 2, 4, 4.5, 100} {
		h.Observe(v)
	}
	got := h.Buckets()
	want := []uint64{2, 2, 1, 2} // le=1: {0.5,1}, le=2: {1.0000001,2}, le=4: {4}, +Inf: {4.5,100}
	if len(got) != len(want) {
		t.Fatalf("bucket count = %d, want %d", len(got), len(want))
	}
	for i := range want {
		if got[i] != want[i] {
			t.Fatalf("bucket[%d] = %d, want %d (all %v)", i, got[i], want[i], got)
		}
	}
	count, sum := h.CountSum()
	if count != 7 {
		t.Fatalf("count = %d, want 7", count)
	}
	if sum < 113 || sum > 113.1 {
		t.Fatalf("sum = %v", sum)
	}
	// Unsorted bucket bounds are sorted at creation.
	h2 := r.Histogram("lat2", []float64{4, 1, 2})
	h2.Observe(3)
	if b := h2.Buckets(); b[2] != 1 {
		t.Fatalf("unsorted bounds not normalized: %v", b)
	}
}

// TestRegistryConcurrency hammers one registry from 8 goroutines; run
// with -race this is the satellite's concurrency check for the whole
// metrics path (counters, gauges, histograms, events, spans, export).
func TestRegistryConcurrency(t *testing.T) {
	r := NewRegistry()
	const workers = 8
	const iters = 500
	var wg sync.WaitGroup
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			lbl := L("worker", string(rune('a'+w)))
			for i := 0; i < iters; i++ {
				r.Counter("ops_total", lbl).Inc()
				r.Counter("shared_total").Inc()
				r.Gauge("last", lbl).Set(float64(i))
				r.Histogram("lat", nil, lbl).Observe(float64(i) * 1e-6)
				if i%50 == 0 {
					r.Emit("tick", map[string]any{"worker": w, "i": i})
				}
				sp := r.StartSpan("work", lbl)
				sp.Child("inner").End()
				sp.End()
			}
		}(w)
	}
	wg.Wait()
	if got := r.Counter("shared_total").Value(); got != workers*iters {
		t.Fatalf("shared_total = %d, want %d", got, workers*iters)
	}
	if got := len(r.Spans()); got != workers*iters*2 {
		t.Fatalf("spans = %d, want %d", got, workers*iters*2)
	}
	var sb strings.Builder
	if err := r.WritePrometheus(&sb); err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(sb.String(), "# TYPE ops_total counter") {
		t.Fatal("export missing ops_total family")
	}
}

func TestMerge(t *testing.T) {
	main := NewRegistry()
	main.Counter("runs_total").Add(2)
	sp := main.StartSpan("grid")
	sp.End()

	cell := NewRegistry()
	cell.Counter("runs_total").Add(3)
	cell.Counter("retries_total", L("platform", "atom")).Inc()
	cell.Gauge("speedup").Set(2.5)
	cell.Histogram("sec", []float64{1, 2}).Observe(1.5)
	cell.Emit("cell.done", map[string]any{"platform": "atom"})
	cs := cell.StartSpan("cell")
	cs.Child("kernel").End()
	cs.End()

	main.Merge(cell)
	if got := main.Counter("runs_total").Value(); got != 5 {
		t.Fatalf("merged counter = %d, want 5", got)
	}
	if got := main.Counter("retries_total", L("platform", "atom")).Value(); got != 1 {
		t.Fatalf("merged labeled counter = %d, want 1", got)
	}
	if got := main.Gauge("speedup").Value(); got != 2.5 {
		t.Fatalf("merged gauge = %v", got)
	}
	if c, _ := main.Histogram("sec", []float64{1, 2}).CountSum(); c != 1 {
		t.Fatalf("merged histogram count = %d", c)
	}
	spans := main.Spans()
	if len(spans) != 3 {
		t.Fatalf("merged spans = %d, want 3", len(spans))
	}
	// Span IDs must stay unique and parent links intact after the remap.
	seen := map[int]bool{}
	var kernel, cellSpan SpanRecord
	for _, s := range spans {
		if seen[s.ID] {
			t.Fatalf("duplicate span id %d after merge", s.ID)
		}
		seen[s.ID] = true
		switch s.Name {
		case "kernel":
			kernel = s
		case "cell":
			cellSpan = s
		}
	}
	if kernel.Parent != cellSpan.ID {
		t.Fatalf("kernel parent = %d, want %d", kernel.Parent, cellSpan.ID)
	}
	if len(main.Events()) != 1 {
		t.Fatalf("merged events = %d, want 1", len(main.Events()))
	}
}

func TestSnapshot(t *testing.T) {
	r := NewRegistry()
	r.Counter("a_total", L("k", "v")).Add(7)
	r.Gauge("g").Set(1.25)
	r.Histogram("h", []float64{1}).Observe(0.5)
	s := r.Snapshot()
	if s[`a_total{k="v"}`] != 7 {
		t.Fatalf("snapshot counter: %v", s)
	}
	if s["g"] != 1.25 {
		t.Fatalf("snapshot gauge: %v", s)
	}
	if s["h_count"] != 1 || s["h_sum"] != 0.5 {
		t.Fatalf("snapshot histogram: %v", s)
	}
}

func TestSpanInstrAttribution(t *testing.T) {
	r := NewRegistry()
	base := time.Unix(0, 0)
	tick := 0
	r.SetClock(func() time.Time {
		tick++
		return base.Add(time.Duration(tick) * time.Millisecond)
	})
	var retired uint64
	sp := r.StartSpan("kernel")
	sp.SampleInstr(func() uint64 { return retired })
	retired = 1234
	sp.AddInstr(10)
	if d := sp.End(); d <= 0 {
		t.Fatalf("duration = %v", d)
	}
	recs := r.Spans()
	if len(recs) != 1 || recs[0].Instr != 1244 {
		t.Fatalf("instr attribution = %+v", recs)
	}
	// Double End is a no-op.
	sp.End()
	if len(r.Spans()) != 1 {
		t.Fatal("double End appended a second record")
	}
}
