package neon

import (
	"testing"

	"simdstudy/internal/trace"
	"simdstudy/internal/vec"
)

// Microbenchmarks of the emulation layer itself (host cost, not modeled
// device time). These bound the harness's own overhead.

func BenchmarkVaddqF32(b *testing.B) {
	u := New(nil)
	x := vec.FromF32x4([4]float32{1, 2, 3, 4})
	y := vec.FromF32x4([4]float32{4, 3, 2, 1})
	for i := 0; i < b.N; i++ {
		x = u.VaddqF32(x, y)
	}
	_ = x
}

func BenchmarkVmlalU8(b *testing.B) {
	u := New(nil)
	acc := vec.V128{}
	d := vec.FromU8x8([8]uint8{1, 2, 3, 4, 5, 6, 7, 8})
	w := u.VdupNU8(77)
	for i := 0; i < b.N; i++ {
		acc = u.VmlalU8(acc, d, w)
	}
	_ = acc
}

func BenchmarkConvertLoopBody(b *testing.B) {
	u := New(nil)
	src := make([]float32, 8)
	dst := make([]int16, 8)
	b.SetBytes(32)
	for i := 0; i < b.N; i++ {
		a := u.VcvtqS32F32(u.Vld1qF32(src))
		lo := u.VqmovnS32(a)
		c := u.VcvtqS32F32(u.Vld1qF32(src[4:]))
		hi := u.VqmovnS32(c)
		u.Vst1qS16(dst, u.VcombineS16(lo, hi))
	}
}

func BenchmarkConvertLoopBodyTraced(b *testing.B) {
	var tr trace.Counter
	u := New(&tr)
	src := make([]float32, 8)
	dst := make([]int16, 8)
	b.SetBytes(32)
	for i := 0; i < b.N; i++ {
		a := u.VcvtqS32F32(u.Vld1qF32(src))
		lo := u.VqmovnS32(a)
		c := u.VcvtqS32F32(u.Vld1qF32(src[4:]))
		hi := u.VqmovnS32(c)
		u.Vst1qS16(dst, u.VcombineS16(lo, hi))
	}
}

func BenchmarkVld3U8(b *testing.B) {
	u := New(nil)
	rgb := make([]uint8, 24)
	for i := 0; i < b.N; i++ {
		_ = u.Vld3U8(rgb)
	}
}
