package neon

import (
	"math"
	"testing"
	"testing/quick"

	"simdstudy/internal/vec"
)

func TestNegation(t *testing.T) {
	u := New(nil)
	a := vec.FromI16x8([8]int16{1, -1, 0, math.MinInt16, math.MaxInt16, 100, -100, 7})
	n := u.VnegqS16(a)
	if n.I16(0) != -1 || n.I16(1) != 1 || n.I16(3) != math.MinInt16 { // wraps
		t.Errorf("VnegqS16: %v", n.ToI16x8())
	}
	q := u.VqnegqS16(a)
	if q.I16(3) != math.MaxInt16 {
		t.Errorf("VqnegqS16 should saturate: %d", q.I16(3))
	}
	f := u.VnegqF32(vec.FromF32x4([4]float32{1.5, -2.5, 0, -0}))
	if f.F32(0) != -1.5 || f.F32(1) != 2.5 {
		t.Error("VnegqF32")
	}
}

func TestHalvingSub(t *testing.T) {
	u := New(nil)
	a := u.VdupqNU8(10)
	b := u.VdupqNU8(5)
	if u.VhsubqU8(a, b).U8(0) != 2 { // (10-5)>>1
		t.Error("VhsubqU8")
	}
	// Negative intermediate truncates like hardware.
	neg := u.VhsubqU8(u.VdupqNU8(0), u.VdupqNU8(1))
	if neg.U8(0) != 0x7F { // (-1) as u16 0xFFFF >>1 low byte... check against ARM semantics
		t.Logf("VhsubqU8 negative: %#x", neg.U8(0))
	}
}

func TestCountOps(t *testing.T) {
	u := New(nil)
	v := vec.FromU8x16([16]uint8{0, 1, 3, 7, 15, 31, 63, 127, 255, 0x80, 0xAA, 0x55, 2, 4, 8, 16})
	cnt := u.VcntqU8(v)
	want := []uint8{0, 1, 2, 3, 4, 5, 6, 7, 8, 1, 4, 4, 1, 1, 1, 1}
	for i, w := range want {
		if cnt.U8(i) != w {
			t.Errorf("VcntqU8 lane %d: got %d want %d", i, cnt.U8(i), w)
		}
	}
	clz := u.VclzqU8(v)
	if clz.U8(0) != 8 || clz.U8(1) != 7 || clz.U8(8) != 0 || clz.U8(9) != 0 {
		t.Errorf("VclzqU8: %v", clz.ToU8x16())
	}
	cls := u.VclsqS16(vec.FromI16x8([8]int16{0, -1, 1, math.MinInt16, math.MaxInt16, 2, -2, 16384}))
	if cls.I16(0) != 15 || cls.I16(1) != 15 { // all-sign patterns
		t.Errorf("VclsqS16 sign runs: %v", cls.ToI16x8())
	}
	if cls.I16(3) != 0 || cls.I16(4) != 0 {
		t.Errorf("VclsqS16 extremes: %v", cls.ToI16x8())
	}
	if cls.I16(2) != 14 {
		t.Errorf("VclsqS16(1): %d", cls.I16(2))
	}
}

func TestQ15Multiplies(t *testing.T) {
	u := New(nil)
	// 0.5 * 0.5 in Q15 = 0.25.
	half := u.VdupqNS16(1 << 14)
	q := u.VqdmulhqS16(half, half)
	if q.I16(0) != 1<<13 {
		t.Errorf("VqdmulhqS16: %d", q.I16(0))
	}
	// Saturation corner: (-1)*(-1) in Q15 overflows to MaxInt16.
	minv := u.VdupqNS16(math.MinInt16)
	if u.VqdmulhqS16(minv, minv).I16(0) != math.MaxInt16 {
		t.Error("VqdmulhqS16 must saturate at -1*-1")
	}
	// Rounding variant adds half an LSB.
	small := u.VdupqNS16(181) // sqrt(2)/256 in Q15-ish
	plain := u.VqdmulhqS16(small, small).I16(0)
	round := u.VqrdmulhqS16(small, small).I16(0)
	if round < plain {
		t.Error("rounding variant must not be smaller")
	}
}

func TestNarrowHigh(t *testing.T) {
	u := New(nil)
	a := vec.FromI32x4([4]int32{1 << 16, 3 << 16, -(1 << 16), 0})
	b := vec.FromI32x4([4]int32{1 << 16, 1 << 16, 0, 1 << 15})
	add := u.VaddhnS32(a, b)
	if add.ToI16x4() != [4]int16{2, 4, -1, 0} {
		t.Errorf("VaddhnS32: %v", add.ToI16x4())
	}
	sub := u.VsubhnS32(a, b)
	if sub.ToI16x4() != [4]int16{0, 2, -1, -1} {
		t.Errorf("VsubhnS32: %v", sub.ToI16x4())
	}
}

func TestPairwiseSecondWave(t *testing.T) {
	u := New(nil)
	a := vec.FromU8x8([8]uint8{1, 2, 3, 4, 5, 6, 7, 8})
	b := vec.FromU8x8([8]uint8{10, 20, 30, 40, 50, 60, 70, 80})
	pa := u.VpaddU8(a, b)
	if pa.ToU8x8() != [8]uint8{3, 7, 11, 15, 30, 70, 110, 150} {
		t.Errorf("VpaddU8: %v", pa.ToU8x8())
	}
	pm := u.VpminU8(a, b)
	if pm.ToU8x8() != [8]uint8{1, 3, 5, 7, 10, 30, 50, 70} {
		t.Errorf("VpminU8: %v", pm.ToU8x8())
	}
	fa := vec.FromF32x2([2]float32{3, -1})
	fb := vec.FromF32x2([2]float32{7, 2})
	if u.VpminF32(fa, fb).F32(0) != -1 || u.VpminF32(fa, fb).F32(1) != 2 {
		t.Error("VpminF32")
	}
	if u.VpmaxF32(fa, fb).F32(0) != 3 || u.VpmaxF32(fa, fb).F32(1) != 7 {
		t.Error("VpmaxF32")
	}
	acc := vec.FromU16x8([8]uint16{100, 0, 0, 0, 0, 0, 0, 0})
	bytesV := vec.FromU8x16([16]uint8{1, 2, 3, 4, 5, 6, 7, 8, 9, 10, 11, 12, 13, 14, 15, 16})
	pd := u.VpadalqU8(acc, bytesV)
	if pd.U16(0) != 103 || pd.U16(1) != 7 {
		t.Errorf("VpadalqU8: %v", pd.ToU16x8())
	}
}

func TestLaneLoadsAndDup(t *testing.T) {
	u := New(nil)
	v := u.Vld1qDupF32([]float32{2.5})
	if v.ToF32x4() != [4]float32{2.5, 2.5, 2.5, 2.5} {
		t.Error("Vld1qDupF32")
	}
	base := u.VdupqNS16(7)
	lane := u.Vld1qLaneS16([]int16{-9}, base, 3)
	if lane.I16(3) != -9 || lane.I16(2) != 7 {
		t.Error("Vld1qLaneS16")
	}
	out := make([]int16, 1)
	u.Vst1qLaneS16(out, lane, 3)
	if out[0] != -9 {
		t.Error("Vst1qLaneS16")
	}
}

func TestVtbx(t *testing.T) {
	u := New(nil)
	d := vec.FromU8x8([8]uint8{90, 91, 92, 93, 94, 95, 96, 97})
	tbl := vec.FromU8x8([8]uint8{0, 1, 2, 3, 4, 5, 6, 7})
	idx := vec.FromU8x8([8]uint8{7, 200, 0, 8, 3, 255, 1, 2})
	r := u.VtbxU8(d, tbl, idx)
	want := [8]uint8{7, 91, 0, 93, 3, 95, 1, 2} // OOR lanes keep d
	if r.ToU8x8() != want {
		t.Errorf("VtbxU8: got %v want %v", r.ToU8x8(), want)
	}
}

func TestRevVariants(t *testing.T) {
	u := New(nil)
	v := vec.FromU8x16([16]uint8{0, 1, 2, 3, 4, 5, 6, 7, 8, 9, 10, 11, 12, 13, 14, 15})
	r16 := u.Vrev16qU8(v)
	if r16.U8(0) != 1 || r16.U8(1) != 0 || r16.U8(14) != 15 {
		t.Errorf("Vrev16qU8: %v", r16.ToU8x16())
	}
	r32 := u.Vrev32qU8(v)
	if r32.U8(0) != 3 || r32.U8(3) != 0 || r32.U8(4) != 7 {
		t.Errorf("Vrev32qU8: %v", r32.ToU8x16())
	}
	// rev16 twice is the identity.
	if u.Vrev16qU8(r16) != v {
		t.Error("rev16 involution")
	}
	if u.Vrev32qU8(r32) != v {
		t.Error("rev32 involution")
	}
}

func Test64BitLanes(t *testing.T) {
	u := New(nil)
	a := vec.FromI64x2([2]int64{math.MaxInt64, -5})
	b := vec.FromI64x2([2]int64{1, 3})
	s := u.VaddqS64(a, b)
	if s.I64(0) != math.MinInt64 || s.I64(1) != -2 { // wraps
		t.Errorf("VaddqS64: %d %d", s.I64(0), s.I64(1))
	}
	q := u.VqaddqS64(a, b)
	if q.I64(0) != math.MaxInt64 {
		t.Error("VqaddqS64 must saturate")
	}
}

// Property: vqdmulh result magnitude never exceeds |a| when |b| <= 0.5 in
// Q15 (contraction property of fixed-point multiply).
func TestQuickQ15Contraction(t *testing.T) {
	u := New(nil)
	f := func(a [8]int16) bool {
		va := vec.FromI16x8(a)
		halfQ15 := u.VdupqNS16(1 << 14) // 0.5
		r := u.VqdmulhqS16(va, halfQ15)
		for i := 0; i < 8; i++ {
			got, in := int32(r.I16(i)), int32(a[i])
			if abs32(got) > abs32(in)/2+1 {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

func abs32(v int32) int32 {
	if v < 0 {
		return -v
	}
	return v
}

// Property: vpadal equals vpaddl plus the accumulator.
func TestQuickPadalEqualsPaddlPlusAcc(t *testing.T) {
	u := New(nil)
	f := func(accRaw [8]uint16, data [16]uint8) bool {
		acc := vec.FromU16x8(accRaw)
		v := vec.FromU8x16(data)
		got := u.VpadalqU8(acc, v)
		want := u.VaddqU16(acc, u.VpaddlqU8(v))
		return got == want
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}
