package neon

import (
	"math"

	"simdstudy/internal/faults"
	"simdstudy/internal/sat"
	"simdstudy/internal/trace"
	"simdstudy/internal/vec"
)

// --- Addition ---

// VaddqF32 adds four float lanes (vadd.f32).
func (u *Unit) VaddqF32(a, b vec.V128) vec.V128 {
	u.rec("vadd.f32", trace.SIMDALU)
	var r vec.V128
	for i := 0; i < 4; i++ {
		r.SetF32(i, a.F32(i)+b.F32(i))
	}
	return fault(u, faults.SiteALU, r)
}

// VaddqS16 adds eight int16 lanes with wraparound (vadd.i16).
func (u *Unit) VaddqS16(a, b vec.V128) vec.V128 {
	u.rec("vadd.i16", trace.SIMDALU)
	var r vec.V128
	for i := 0; i < 8; i++ {
		r.SetI16(i, a.I16(i)+b.I16(i))
	}
	return fault(u, faults.SiteALU, r)
}

// VaddqS32 adds four int32 lanes with wraparound (vadd.i32).
func (u *Unit) VaddqS32(a, b vec.V128) vec.V128 {
	u.rec("vadd.i32", trace.SIMDALU)
	var r vec.V128
	for i := 0; i < 4; i++ {
		r.SetI32(i, a.I32(i)+b.I32(i))
	}
	return fault(u, faults.SiteALU, r)
}

// VaddqU8 adds sixteen uint8 lanes with wraparound (vadd.i8).
func (u *Unit) VaddqU8(a, b vec.V128) vec.V128 {
	u.rec("vadd.i8", trace.SIMDALU)
	var r vec.V128
	for i := 0; i < 16; i++ {
		r.SetU8(i, a.U8(i)+b.U8(i))
	}
	return fault(u, faults.SiteALU, r)
}

// VaddqU16 adds eight uint16 lanes with wraparound (vadd.i16).
func (u *Unit) VaddqU16(a, b vec.V128) vec.V128 {
	u.rec("vadd.i16", trace.SIMDALU)
	var r vec.V128
	for i := 0; i < 8; i++ {
		r.SetU16(i, a.U16(i)+b.U16(i))
	}
	return fault(u, faults.SiteALU, r)
}

// VqaddqS16 adds with signed saturation (vqadd.s16).
func (u *Unit) VqaddqS16(a, b vec.V128) vec.V128 {
	u.rec("vqadd.s16", trace.SIMDALU)
	var r vec.V128
	for i := 0; i < 8; i++ {
		r.SetI16(i, sat.AddInt16(a.I16(i), b.I16(i)))
	}
	return fault(u, faults.SiteALU, r)
}

// VqaddqU8 adds with unsigned saturation (vqadd.u8).
func (u *Unit) VqaddqU8(a, b vec.V128) vec.V128 {
	u.rec("vqadd.u8", trace.SIMDALU)
	var r vec.V128
	for i := 0; i < 16; i++ {
		r.SetU8(i, sat.AddUint8(a.U8(i), b.U8(i)))
	}
	return fault(u, faults.SiteALU, r)
}

// VaddlU8 widens and adds: sixteen->eight uint16 from the low halves
// (vaddl.u8 q, d, d).
func (u *Unit) VaddlU8(a, b vec.V64) vec.V128 {
	u.rec("vaddl.u8", trace.SIMDALU)
	var r vec.V128
	for i := 0; i < 8; i++ {
		r.SetU16(i, uint16(a.U8(i))+uint16(b.U8(i)))
	}
	return fault(u, faults.SiteALU, r)
}

// VaddlS16 widens and adds int16 pairs into int32 lanes (vaddl.s16).
func (u *Unit) VaddlS16(a, b vec.V64) vec.V128 {
	u.rec("vaddl.s16", trace.SIMDALU)
	var r vec.V128
	for i := 0; i < 4; i++ {
		r.SetI32(i, int32(a.I16(i))+int32(b.I16(i)))
	}
	return fault(u, faults.SiteALU, r)
}

// VaddwU8 adds a widened D register of bytes to a Q register of uint16
// (vaddw.u8).
func (u *Unit) VaddwU8(a vec.V128, b vec.V64) vec.V128 {
	u.rec("vaddw.u8", trace.SIMDALU)
	var r vec.V128
	for i := 0; i < 8; i++ {
		r.SetU16(i, a.U16(i)+uint16(b.U8(i)))
	}
	return fault(u, faults.SiteALU, r)
}

// VhaddqU8 halving add: (a+b)>>1 without overflow (vhadd.u8).
func (u *Unit) VhaddqU8(a, b vec.V128) vec.V128 {
	u.rec("vhadd.u8", trace.SIMDALU)
	var r vec.V128
	for i := 0; i < 16; i++ {
		r.SetU8(i, uint8((uint16(a.U8(i))+uint16(b.U8(i)))>>1))
	}
	return fault(u, faults.SiteALU, r)
}

// VrhaddqU8 rounding halving add: (a+b+1)>>1 (vrhadd.u8).
func (u *Unit) VrhaddqU8(a, b vec.V128) vec.V128 {
	u.rec("vrhadd.u8", trace.SIMDALU)
	var r vec.V128
	for i := 0; i < 16; i++ {
		r.SetU8(i, uint8((uint16(a.U8(i))+uint16(b.U8(i))+1)>>1))
	}
	return fault(u, faults.SiteALU, r)
}

// VpaddlqU8 pairwise long add: adjacent byte pairs summed into uint16 lanes
// (vpaddl.u8).
func (u *Unit) VpaddlqU8(a vec.V128) vec.V128 {
	u.rec("vpaddl.u8", trace.SIMDALU)
	var r vec.V128
	for i := 0; i < 8; i++ {
		r.SetU16(i, uint16(a.U8(2*i))+uint16(a.U8(2*i+1)))
	}
	return fault(u, faults.SiteALU, r)
}

// VpaddlqU16 pairwise long add of uint16 lanes into uint32 (vpaddl.u16).
func (u *Unit) VpaddlqU16(a vec.V128) vec.V128 {
	u.rec("vpaddl.u16", trace.SIMDALU)
	var r vec.V128
	for i := 0; i < 4; i++ {
		r.SetU32(i, uint32(a.U16(2*i))+uint32(a.U16(2*i+1)))
	}
	return fault(u, faults.SiteALU, r)
}

// VpaddF32 pairwise add of two D registers (vpadd.f32).
func (u *Unit) VpaddF32(a, b vec.V64) vec.V64 {
	u.rec("vpadd.f32", trace.SIMDALU)
	var r vec.V64
	r.SetF32(0, a.F32(0)+a.F32(1))
	r.SetF32(1, b.F32(0)+b.F32(1))
	return fault(u, faults.SiteALU, r)
}

// --- Subtraction ---

// VsubqF32 subtracts four float lanes (vsub.f32).
func (u *Unit) VsubqF32(a, b vec.V128) vec.V128 {
	u.rec("vsub.f32", trace.SIMDALU)
	var r vec.V128
	for i := 0; i < 4; i++ {
		r.SetF32(i, a.F32(i)-b.F32(i))
	}
	return fault(u, faults.SiteALU, r)
}

// VsubqS16 subtracts eight int16 lanes with wraparound (vsub.i16).
func (u *Unit) VsubqS16(a, b vec.V128) vec.V128 {
	u.rec("vsub.i16", trace.SIMDALU)
	var r vec.V128
	for i := 0; i < 8; i++ {
		r.SetI16(i, a.I16(i)-b.I16(i))
	}
	return fault(u, faults.SiteALU, r)
}

// VqsubqS16 subtracts with signed saturation (vqsub.s16).
func (u *Unit) VqsubqS16(a, b vec.V128) vec.V128 {
	u.rec("vqsub.s16", trace.SIMDALU)
	var r vec.V128
	for i := 0; i < 8; i++ {
		r.SetI16(i, sat.SubInt16(a.I16(i), b.I16(i)))
	}
	return fault(u, faults.SiteALU, r)
}

// VqsubqU8 subtracts with unsigned saturation (vqsub.u8).
func (u *Unit) VqsubqU8(a, b vec.V128) vec.V128 {
	u.rec("vqsub.u8", trace.SIMDALU)
	var r vec.V128
	for i := 0; i < 16; i++ {
		r.SetU8(i, sat.SubUint8(a.U8(i), b.U8(i)))
	}
	return fault(u, faults.SiteALU, r)
}

// VsublU8 widening subtract of byte D registers into uint16 lanes,
// reinterpreted signed (vsubl.u8). The Sobel horizontal pass uses this to
// form pixel differences without overflow.
func (u *Unit) VsublU8(a, b vec.V64) vec.V128 {
	u.rec("vsubl.u8", trace.SIMDALU)
	var r vec.V128
	for i := 0; i < 8; i++ {
		r.SetI16(i, int16(uint16(a.U8(i)))-int16(uint16(b.U8(i))))
	}
	return fault(u, faults.SiteALU, r)
}

// VsublS16 widening subtract of int16 D registers into int32 lanes.
func (u *Unit) VsublS16(a, b vec.V64) vec.V128 {
	u.rec("vsubl.s16", trace.SIMDALU)
	var r vec.V128
	for i := 0; i < 4; i++ {
		r.SetI32(i, int32(a.I16(i))-int32(b.I16(i)))
	}
	return fault(u, faults.SiteALU, r)
}

// --- Multiplication ---

// VmulqF32 multiplies four float lanes (vmul.f32).
func (u *Unit) VmulqF32(a, b vec.V128) vec.V128 {
	u.rec("vmul.f32", trace.SIMDMul)
	var r vec.V128
	for i := 0; i < 4; i++ {
		r.SetF32(i, a.F32(i)*b.F32(i))
	}
	return fault(u, faults.SiteALU, r)
}

// VmulqS16 multiplies eight int16 lanes, low half kept (vmul.i16).
func (u *Unit) VmulqS16(a, b vec.V128) vec.V128 {
	u.rec("vmul.i16", trace.SIMDMul)
	var r vec.V128
	for i := 0; i < 8; i++ {
		r.SetI16(i, a.I16(i)*b.I16(i))
	}
	return fault(u, faults.SiteALU, r)
}

// VmulqNF32 multiplies by a scalar (vmul.f32 q, q, d[0]).
func (u *Unit) VmulqNF32(a vec.V128, s float32) vec.V128 {
	u.rec("vmul.f32(n)", trace.SIMDMul)
	var r vec.V128
	for i := 0; i < 4; i++ {
		r.SetF32(i, a.F32(i)*s)
	}
	return fault(u, faults.SiteALU, r)
}

// VmulqNS16 multiplies eight int16 lanes by a scalar.
func (u *Unit) VmulqNS16(a vec.V128, s int16) vec.V128 {
	u.rec("vmul.i16(n)", trace.SIMDMul)
	var r vec.V128
	for i := 0; i < 8; i++ {
		r.SetI16(i, a.I16(i)*s)
	}
	return fault(u, faults.SiteALU, r)
}

// VmulqNU16 multiplies eight uint16 lanes by a scalar.
func (u *Unit) VmulqNU16(a vec.V128, s uint16) vec.V128 {
	u.rec("vmul.i16(n)", trace.SIMDMul)
	var r vec.V128
	for i := 0; i < 8; i++ {
		r.SetU16(i, a.U16(i)*s)
	}
	return fault(u, faults.SiteALU, r)
}

// VmlaqF32 fused multiply-accumulate a + b*c (vmla.f32).
func (u *Unit) VmlaqF32(a, b, c vec.V128) vec.V128 {
	u.rec("vmla.f32", trace.SIMDMul)
	var r vec.V128
	for i := 0; i < 4; i++ {
		r.SetF32(i, a.F32(i)+b.F32(i)*c.F32(i))
	}
	return fault(u, faults.SiteALU, r)
}

// VmlaqNF32 multiply-accumulate with scalar: a + b*s (vmla.f32 scalar).
func (u *Unit) VmlaqNF32(a, b vec.V128, s float32) vec.V128 {
	u.rec("vmla.f32(n)", trace.SIMDMul)
	var r vec.V128
	for i := 0; i < 4; i++ {
		r.SetF32(i, a.F32(i)+b.F32(i)*s)
	}
	return fault(u, faults.SiteALU, r)
}

// VmlaqS16 multiply-accumulate a + b*c on int16 lanes (vmla.i16).
func (u *Unit) VmlaqS16(a, b, c vec.V128) vec.V128 {
	u.rec("vmla.i16", trace.SIMDMul)
	var r vec.V128
	for i := 0; i < 8; i++ {
		r.SetI16(i, a.I16(i)+b.I16(i)*c.I16(i))
	}
	return fault(u, faults.SiteALU, r)
}

// VmlaqNU16 multiply-accumulate with scalar on uint16 lanes. The fixed
// point Gaussian row filter accumulates weighted taps with this.
func (u *Unit) VmlaqNU16(a, b vec.V128, s uint16) vec.V128 {
	u.rec("vmla.i16(n)", trace.SIMDMul)
	var r vec.V128
	for i := 0; i < 8; i++ {
		r.SetU16(i, a.U16(i)+b.U16(i)*s)
	}
	return fault(u, faults.SiteALU, r)
}

// VmlaqNS16 multiply-accumulate with scalar on int16 lanes.
func (u *Unit) VmlaqNS16(a, b vec.V128, s int16) vec.V128 {
	u.rec("vmla.i16(n)", trace.SIMDMul)
	var r vec.V128
	for i := 0; i < 8; i++ {
		r.SetI16(i, a.I16(i)+b.I16(i)*s)
	}
	return fault(u, faults.SiteALU, r)
}

// VmlalU8 widening multiply-accumulate: acc + a*b into uint16 lanes
// (vmlal.u8).
func (u *Unit) VmlalU8(acc vec.V128, a, b vec.V64) vec.V128 {
	u.rec("vmlal.u8", trace.SIMDMul)
	var r vec.V128
	for i := 0; i < 8; i++ {
		r.SetU16(i, acc.U16(i)+uint16(a.U8(i))*uint16(b.U8(i)))
	}
	return fault(u, faults.SiteALU, r)
}

// VmlalS16 widening multiply-accumulate into int32 lanes (vmlal.s16).
func (u *Unit) VmlalS16(acc vec.V128, a, b vec.V64) vec.V128 {
	u.rec("vmlal.s16", trace.SIMDMul)
	var r vec.V128
	for i := 0; i < 4; i++ {
		r.SetI32(i, acc.I32(i)+int32(a.I16(i))*int32(b.I16(i)))
	}
	return fault(u, faults.SiteALU, r)
}

// VmullU8 widening multiply of byte D registers into uint16 lanes
// (vmull.u8).
func (u *Unit) VmullU8(a, b vec.V64) vec.V128 {
	u.rec("vmull.u8", trace.SIMDMul)
	var r vec.V128
	for i := 0; i < 8; i++ {
		r.SetU16(i, uint16(a.U8(i))*uint16(b.U8(i)))
	}
	return fault(u, faults.SiteALU, r)
}

// VmullS16 widening multiply of int16 D registers into int32 lanes
// (vmull.s16).
func (u *Unit) VmullS16(a, b vec.V64) vec.V128 {
	u.rec("vmull.s16", trace.SIMDMul)
	var r vec.V128
	for i := 0; i < 4; i++ {
		r.SetI32(i, int32(a.I16(i))*int32(b.I16(i)))
	}
	return fault(u, faults.SiteALU, r)
}

// VmlsqF32 multiply-subtract a - b*c (vmls.f32).
func (u *Unit) VmlsqF32(a, b, c vec.V128) vec.V128 {
	u.rec("vmls.f32", trace.SIMDMul)
	var r vec.V128
	for i := 0; i < 4; i++ {
		r.SetF32(i, a.F32(i)-b.F32(i)*c.F32(i))
	}
	return fault(u, faults.SiteALU, r)
}

// --- Absolute value / difference ---

// VabsqS16 lane-wise absolute value with wraparound at MinInt16 (vabs.s16).
func (u *Unit) VabsqS16(a vec.V128) vec.V128 {
	u.rec("vabs.s16", trace.SIMDALU)
	var r vec.V128
	for i := 0; i < 8; i++ {
		v := a.I16(i)
		if v < 0 {
			v = -v // MinInt16 wraps, matching hardware
		}
		r.SetI16(i, v)
	}
	return fault(u, faults.SiteALU, r)
}

// VqabsqS16 saturating absolute value (vqabs.s16).
func (u *Unit) VqabsqS16(a vec.V128) vec.V128 {
	u.rec("vqabs.s16", trace.SIMDALU)
	var r vec.V128
	for i := 0; i < 8; i++ {
		r.SetI16(i, sat.AbsInt16(a.I16(i)))
	}
	return fault(u, faults.SiteALU, r)
}

// VabsqF32 lane-wise float absolute value (vabs.f32).
func (u *Unit) VabsqF32(a vec.V128) vec.V128 {
	u.rec("vabs.f32", trace.SIMDALU)
	var r vec.V128
	for i := 0; i < 4; i++ {
		r.SetF32(i, float32(math.Abs(float64(a.F32(i)))))
	}
	return fault(u, faults.SiteALU, r)
}

// VabdqU8 absolute difference |a-b| (vabd.u8).
func (u *Unit) VabdqU8(a, b vec.V128) vec.V128 {
	u.rec("vabd.u8", trace.SIMDALU)
	var r vec.V128
	for i := 0; i < 16; i++ {
		x, y := int16(a.U8(i)), int16(b.U8(i))
		d := x - y
		if d < 0 {
			d = -d
		}
		r.SetU8(i, uint8(d))
	}
	return fault(u, faults.SiteALU, r)
}

// VabaqU8 absolute difference and accumulate: acc + |a-b| (vaba.u8).
func (u *Unit) VabaqU8(acc, a, b vec.V128) vec.V128 {
	u.rec("vaba.u8", trace.SIMDALU)
	var r vec.V128
	for i := 0; i < 16; i++ {
		x, y := int16(a.U8(i)), int16(b.U8(i))
		d := x - y
		if d < 0 {
			d = -d
		}
		r.SetU8(i, acc.U8(i)+uint8(d))
	}
	return fault(u, faults.SiteALU, r)
}

// --- Min / Max ---

// VminqU8 lane-wise unsigned byte minimum (vmin.u8). The truncation
// threshold benchmark reduces to exactly this instruction.
func (u *Unit) VminqU8(a, b vec.V128) vec.V128 {
	u.rec("vmin.u8", trace.SIMDALU)
	var r vec.V128
	for i := 0; i < 16; i++ {
		r.SetU8(i, min(a.U8(i), b.U8(i)))
	}
	return fault(u, faults.SiteALU, r)
}

// VmaxqU8 lane-wise unsigned byte maximum (vmax.u8).
func (u *Unit) VmaxqU8(a, b vec.V128) vec.V128 {
	u.rec("vmax.u8", trace.SIMDALU)
	var r vec.V128
	for i := 0; i < 16; i++ {
		r.SetU8(i, max(a.U8(i), b.U8(i)))
	}
	return fault(u, faults.SiteALU, r)
}

// VminqS16 lane-wise int16 minimum (vmin.s16).
func (u *Unit) VminqS16(a, b vec.V128) vec.V128 {
	u.rec("vmin.s16", trace.SIMDALU)
	var r vec.V128
	for i := 0; i < 8; i++ {
		r.SetI16(i, min(a.I16(i), b.I16(i)))
	}
	return fault(u, faults.SiteALU, r)
}

// VmaxqS16 lane-wise int16 maximum (vmax.s16).
func (u *Unit) VmaxqS16(a, b vec.V128) vec.V128 {
	u.rec("vmax.s16", trace.SIMDALU)
	var r vec.V128
	for i := 0; i < 8; i++ {
		r.SetI16(i, max(a.I16(i), b.I16(i)))
	}
	return fault(u, faults.SiteALU, r)
}

// VminqF32 lane-wise float minimum (vmin.f32).
func (u *Unit) VminqF32(a, b vec.V128) vec.V128 {
	u.rec("vmin.f32", trace.SIMDALU)
	var r vec.V128
	for i := 0; i < 4; i++ {
		r.SetF32(i, float32(math.Min(float64(a.F32(i)), float64(b.F32(i)))))
	}
	return fault(u, faults.SiteALU, r)
}

// VmaxqF32 lane-wise float maximum (vmax.f32).
func (u *Unit) VmaxqF32(a, b vec.V128) vec.V128 {
	u.rec("vmax.f32", trace.SIMDALU)
	var r vec.V128
	for i := 0; i < 4; i++ {
		r.SetF32(i, float32(math.Max(float64(a.F32(i)), float64(b.F32(i)))))
	}
	return fault(u, faults.SiteALU, r)
}

// VpmaxU8 pairwise maximum across two D registers (vpmax.u8).
func (u *Unit) VpmaxU8(a, b vec.V64) vec.V64 {
	u.rec("vpmax.u8", trace.SIMDALU)
	var r vec.V64
	for i := 0; i < 4; i++ {
		r.SetU8(i, max(a.U8(2*i), a.U8(2*i+1)))
		r.SetU8(4+i, max(b.U8(2*i), b.U8(2*i+1)))
	}
	return fault(u, faults.SiteALU, r)
}

// --- Reciprocal estimates ---

// VrecpeqF32 reciprocal estimate (vrecpe.f32), ~8 bits of precision like
// hardware; refined with VrecpsqF32 Newton steps.
func (u *Unit) VrecpeqF32(a vec.V128) vec.V128 {
	u.rec("vrecpe.f32", trace.SIMDMul)
	var r vec.V128
	for i := 0; i < 4; i++ {
		est := 1 / a.F32(i)
		// Quantize to ~8 significant bits to model the estimate table.
		r.SetF32(i, quantizeEstimate(est))
	}
	return fault(u, faults.SiteALU, r)
}

// VrecpsqF32 reciprocal refinement step: 2 - a*b (vrecps.f32).
func (u *Unit) VrecpsqF32(a, b vec.V128) vec.V128 {
	u.rec("vrecps.f32", trace.SIMDMul)
	var r vec.V128
	for i := 0; i < 4; i++ {
		r.SetF32(i, 2-a.F32(i)*b.F32(i))
	}
	return fault(u, faults.SiteALU, r)
}

// VrsqrteqF32 reciprocal square root estimate (vrsqrte.f32).
func (u *Unit) VrsqrteqF32(a vec.V128) vec.V128 {
	u.rec("vrsqrte.f32", trace.SIMDMul)
	var r vec.V128
	for i := 0; i < 4; i++ {
		est := float32(1 / math.Sqrt(float64(a.F32(i))))
		r.SetF32(i, quantizeEstimate(est))
	}
	return fault(u, faults.SiteALU, r)
}

// VrsqrtsqF32 reciprocal sqrt refinement step: (3 - a*b)/2 (vrsqrts.f32).
func (u *Unit) VrsqrtsqF32(a, b vec.V128) vec.V128 {
	u.rec("vrsqrts.f32", trace.SIMDMul)
	var r vec.V128
	for i := 0; i < 4; i++ {
		r.SetF32(i, (3-a.F32(i)*b.F32(i))/2)
	}
	return fault(u, faults.SiteALU, r)
}

// quantizeEstimate truncates a float32 mantissa to 8 bits, modeling the
// lookup-table precision of hardware estimate instructions.
func quantizeEstimate(v float32) float32 {
	bits := math.Float32bits(v)
	bits &= 0xFFFF8000 // keep sign, exponent, top 8 mantissa bits
	return math.Float32frombits(bits)
}
