package neon

import (
	"math"
	"testing"
	"testing/quick"

	"simdstudy/internal/sat"
	"simdstudy/internal/trace"
	"simdstudy/internal/vec"
)

func TestLoadStoreRoundTrips(t *testing.T) {
	u := New(nil)

	f := []float32{1.5, -2, 3.25, 4, 5, 6, 7, 8}
	q := u.Vld1qF32(f)
	out := make([]float32, 4)
	u.Vst1qF32(out, q)
	for i := range out {
		if out[i] != f[i] {
			t.Fatalf("f32 lane %d: %v", i, out[i])
		}
	}
	d := u.Vld1F32(f[2:])
	if d.F32(0) != 3.25 || d.F32(1) != 4 {
		t.Fatalf("vld1 f32 d: %v %v", d.F32(0), d.F32(1))
	}

	b := []uint8{1, 2, 3, 4, 5, 6, 7, 8, 9, 10, 11, 12, 13, 14, 15, 16}
	qb := u.Vld1qU8(b)
	outB := make([]uint8, 16)
	u.Vst1qU8(outB, qb)
	for i := range outB {
		if outB[i] != b[i] {
			t.Fatalf("u8 lane %d", i)
		}
	}
	db := u.Vld1U8(b[3:])
	outD := make([]uint8, 8)
	u.Vst1U8(outD, db)
	for i := range outD {
		if outD[i] != b[3+i] {
			t.Fatalf("u8 d lane %d", i)
		}
	}

	s := []int16{-100, 200, -300, 400, -500, 600, -700, 800}
	qs := u.Vld1qS16(s)
	outS := make([]int16, 8)
	u.Vst1qS16(outS, qs)
	for i := range outS {
		if outS[i] != s[i] {
			t.Fatalf("s16 lane %d", i)
		}
	}

	i32 := []int32{-1, 2, -3, 4}
	q32 := u.Vld1qS32(i32)
	out32 := make([]int32, 4)
	u.Vst1qS32(out32, q32)
	for i := range out32 {
		if out32[i] != i32[i] {
			t.Fatalf("s32 lane %d", i)
		}
	}

	u16s := []uint16{1, 2, 3, 4, 5, 6, 7, 65535}
	q16 := u.Vld1qU16(u16s)
	out16 := make([]uint16, 8)
	u.Vst1qU16(out16, q16)
	for i := range out16 {
		if out16[i] != u16s[i] {
			t.Fatalf("u16 lane %d", i)
		}
	}
}

// TestPaperConvertSequence replays the paper's hand-optimized NEON loop body
// for one iteration and checks both the values and the instruction count:
// 8 NEON instructions per 8 pixels (Section V).
func TestPaperConvertSequence(t *testing.T) {
	var tr trace.Counter
	u := New(&tr)
	src := []float32{0.4, 0.6, -0.5, 1e9, -1e9, 32767.7, -32768.9, 123.4}
	dst := make([]int16, 8)

	src128 := u.Vld1qF32(src)
	srcInt128 := u.VcvtqS32F32(src128)
	src0Int64 := u.VqmovnS32(srcInt128)
	src128 = u.Vld1qF32(src[4:])
	srcInt128 = u.VcvtqS32F32(src128)
	src1Int64 := u.VqmovnS32(srcInt128)
	resInt128 := u.VcombineS16(src0Int64, src1Int64)
	u.Vst1qS16(dst, resInt128)

	// vcvt truncates toward zero, then vqmovn saturates to int16.
	want := []int16{0, 0, 0, 32767, -32768, 32767, -32768, 123}
	for i := range want {
		if dst[i] != want[i] {
			t.Errorf("pixel %d: got %d want %d", i, dst[i], want[i])
		}
	}

	// Section V: 8 instructions for the intrinsic body (vcombine lowers to
	// a register move, still one instruction).
	if got := tr.Total(); got != 8 {
		t.Errorf("instruction count: got %d want 8", got)
	}
	if tr.Count(trace.SIMDLoad) != 2 || tr.Count(trace.SIMDStore) != 1 {
		t.Errorf("memory op counts: %d loads %d stores",
			tr.Count(trace.SIMDLoad), tr.Count(trace.SIMDStore))
	}
	if tr.Count(trace.SIMDCvt) != 4 {
		t.Errorf("cvt count: %d", tr.Count(trace.SIMDCvt))
	}
	if tr.BytesLoaded() != 32 || tr.BytesStored() != 16 {
		t.Errorf("bytes: %d/%d", tr.BytesLoaded(), tr.BytesStored())
	}
}

func TestOverheadAccounting(t *testing.T) {
	var tr trace.Counter
	u := New(&tr)
	u.Overhead(3, 2, 1)
	if tr.Count(trace.AddrCalc) != 3 || tr.Count(trace.Branch) != 2 || tr.Count(trace.Move) != 1 {
		t.Fatalf("overhead counts wrong: %v", tr.Classes())
	}
	// Section V totals: 8 intrinsic ops + 6 overhead = 14 per 8 pixels.
	u2 := New(&tr)
	_ = u2
}

func TestDup(t *testing.T) {
	u := New(nil)
	if v := u.VdupqNS16(-7); v.ToI16x8() != [8]int16{-7, -7, -7, -7, -7, -7, -7, -7} {
		t.Error("VdupqNS16")
	}
	if v := u.VdupqNU8(9); v.U8(0) != 9 || v.U8(15) != 9 {
		t.Error("VdupqNU8")
	}
	if v := u.VdupqNF32(1.5); v.ToF32x4() != [4]float32{1.5, 1.5, 1.5, 1.5} {
		t.Error("VdupqNF32")
	}
	if v := u.VdupqNS32(-3); v.ToI32x4() != [4]int32{-3, -3, -3, -3} {
		t.Error("VdupqNS32")
	}
	if v := u.VdupqNU32(7); v.ToU32x4() != [4]uint32{7, 7, 7, 7} {
		t.Error("VdupqNU32")
	}
	if v := u.VdupqNU16(513); v.ToU16x8() != [8]uint16{513, 513, 513, 513, 513, 513, 513, 513} {
		t.Error("VdupqNU16")
	}
	if v := u.VdupNU8(4); v.ToU8x8() != [8]uint8{4, 4, 4, 4, 4, 4, 4, 4} {
		t.Error("VdupNU8")
	}
	if v := u.VdupNS16(-2); v.ToI16x4() != [4]int16{-2, -2, -2, -2} {
		t.Error("VdupNS16")
	}
	if v := u.VmovqNF32(2.5); v.F32(3) != 2.5 {
		t.Error("VmovqNF32")
	}
}

func TestArithmeticBasics(t *testing.T) {
	u := New(nil)
	a := vec.FromI16x8([8]int16{1, 2, 3, 4, 5, 6, 7, 8})
	b := vec.FromI16x8([8]int16{10, 20, 30, 40, 50, 60, 70, 80})
	if u.VaddqS16(a, b).ToI16x8() != [8]int16{11, 22, 33, 44, 55, 66, 77, 88} {
		t.Error("VaddqS16")
	}
	if u.VsubqS16(b, a).ToI16x8() != [8]int16{9, 18, 27, 36, 45, 54, 63, 72} {
		t.Error("VsubqS16")
	}
	if u.VmulqS16(a, a).ToI16x8() != [8]int16{1, 4, 9, 16, 25, 36, 49, 64} {
		t.Error("VmulqS16")
	}
	// Wraparound (non-saturating).
	big := vec.FromI16x8([8]int16{32767, 0, 0, 0, 0, 0, 0, 0})
	one := vec.FromI16x8([8]int16{1, 0, 0, 0, 0, 0, 0, 0})
	if u.VaddqS16(big, one).I16(0) != -32768 {
		t.Error("VaddqS16 should wrap")
	}
	// Saturating.
	if u.VqaddqS16(big, one).I16(0) != 32767 {
		t.Error("VqaddqS16 should saturate")
	}
	neg := vec.FromI16x8([8]int16{-32768, 0, 0, 0, 0, 0, 0, 0})
	if u.VqsubqS16(neg, one).I16(0) != -32768 {
		t.Error("VqsubqS16 should saturate")
	}

	fa := vec.FromF32x4([4]float32{1, 2, 3, 4})
	fb := vec.FromF32x4([4]float32{0.5, 0.25, -1, 2})
	if u.VaddqF32(fa, fb).ToF32x4() != [4]float32{1.5, 2.25, 2, 6} {
		t.Error("VaddqF32")
	}
	if u.VsubqF32(fa, fb).ToF32x4() != [4]float32{0.5, 1.75, 4, 2} {
		t.Error("VsubqF32")
	}
	if u.VmulqF32(fa, fb).ToF32x4() != [4]float32{0.5, 0.5, -3, 8} {
		t.Error("VmulqF32")
	}
	if u.VmlaqF32(fa, fa, fb).ToF32x4() != [4]float32{1.5, 2.5, 0, 12} {
		t.Error("VmlaqF32")
	}
	if u.VmlsqF32(fa, fa, fb).ToF32x4() != [4]float32{0.5, 1.5, 6, -4} {
		t.Error("VmlsqF32")
	}
	if u.VmulqNF32(fa, 2).ToF32x4() != [4]float32{2, 4, 6, 8} {
		t.Error("VmulqNF32")
	}
	if u.VmlaqNF32(fa, fb, 4).ToF32x4() != [4]float32{3, 3, -1, 12} {
		t.Error("VmlaqNF32")
	}
	if u.VmulqNS16(a, 3).ToI16x8() != [8]int16{3, 6, 9, 12, 15, 18, 21, 24} {
		t.Error("VmulqNS16")
	}
	if u.VmlaqNS16(a, a, 2).ToI16x8() != [8]int16{3, 6, 9, 12, 15, 18, 21, 24} {
		t.Error("VmlaqNS16")
	}
	if u.VmlaqS16(a, a, b).I16(1) != 42 {
		t.Error("VmlaqS16")
	}
	u16a := vec.FromU16x8([8]uint16{1, 2, 3, 4, 5, 6, 7, 8})
	if u.VmulqNU16(u16a, 5).ToU16x8() != [8]uint16{5, 10, 15, 20, 25, 30, 35, 40} {
		t.Error("VmulqNU16")
	}
	if u.VmlaqNU16(u16a, u16a, 2).ToU16x8() != [8]uint16{3, 6, 9, 12, 15, 18, 21, 24} {
		t.Error("VmlaqNU16")
	}
	if u.VaddqU16(u16a, u16a).U16(7) != 16 {
		t.Error("VaddqU16")
	}
	if u.VaddqU8(u.VdupqNU8(200), u.VdupqNU8(100)).U8(0) != 44 {
		t.Error("VaddqU8 should wrap")
	}
	if u.VqaddqU8(u.VdupqNU8(200), u.VdupqNU8(100)).U8(0) != 255 {
		t.Error("VqaddqU8 should saturate")
	}
	if u.VqsubqU8(u.VdupqNU8(10), u.VdupqNU8(20)).U8(0) != 0 {
		t.Error("VqsubqU8 should floor")
	}
	if u.VaddqS32(vec.FromI32x4([4]int32{1, 2, 3, 4}), vec.FromI32x4([4]int32{10, 20, 30, 40})).ToI32x4() != [4]int32{11, 22, 33, 44} {
		t.Error("VaddqS32")
	}
}

func TestWideningArithmetic(t *testing.T) {
	u := New(nil)
	a := vec.FromU8x8([8]uint8{255, 1, 2, 3, 4, 5, 6, 7})
	b := vec.FromU8x8([8]uint8{255, 10, 20, 30, 40, 50, 60, 70})
	if u.VaddlU8(a, b).ToU16x8() != [8]uint16{510, 11, 22, 33, 44, 55, 66, 77} {
		t.Error("VaddlU8")
	}
	if u.VsublU8(a, b).ToI16x8() != [8]int16{0, -9, -18, -27, -36, -45, -54, -63} {
		t.Error("VsublU8")
	}
	if u.VmullU8(a, b).U16(0) != 255*255 {
		t.Error("VmullU8")
	}
	acc := vec.FromU16x8([8]uint16{1, 1, 1, 1, 1, 1, 1, 1})
	if u.VmlalU8(acc, a, b).U16(1) != 11 {
		t.Error("VmlalU8")
	}
	wide := vec.FromU16x8([8]uint16{100, 100, 100, 100, 100, 100, 100, 100})
	if u.VaddwU8(wide, a).U16(0) != 355 {
		t.Error("VaddwU8")
	}
	s16a := vec.FromI16x4([4]int16{-100, 200, -300, 32767})
	s16b := vec.FromI16x4([4]int16{100, -200, 300, 32767})
	if u.VaddlS16(s16a, s16b).ToI32x4() != [4]int32{0, 0, 0, 65534} {
		t.Error("VaddlS16")
	}
	if u.VsublS16(s16a, s16b).ToI32x4() != [4]int32{-200, 400, -600, 0} {
		t.Error("VsublS16")
	}
	if u.VmullS16(s16a, s16b).I32(3) != 32767*32767 {
		t.Error("VmullS16")
	}
	acc32 := vec.FromI32x4([4]int32{5, 5, 5, 5})
	if u.VmlalS16(acc32, s16a, s16b).I32(0) != 5-10000 {
		t.Error("VmlalS16")
	}
}

func TestHalvingAndPairwise(t *testing.T) {
	u := New(nil)
	a := u.VdupqNU8(201)
	b := u.VdupqNU8(100)
	if u.VhaddqU8(a, b).U8(0) != 150 {
		t.Error("VhaddqU8")
	}
	if u.VrhaddqU8(a, b).U8(0) != 151 {
		t.Error("VrhaddqU8")
	}
	bytes := vec.FromU8x16([16]uint8{1, 2, 3, 4, 5, 6, 7, 8, 9, 10, 11, 12, 13, 14, 15, 16})
	if u.VpaddlqU8(bytes).ToU16x8() != [8]uint16{3, 7, 11, 15, 19, 23, 27, 31} {
		t.Error("VpaddlqU8")
	}
	w := vec.FromU16x8([8]uint16{1, 2, 3, 4, 5, 6, 7, 8})
	if u.VpaddlqU16(w).ToU32x4() != [4]uint32{3, 7, 11, 15} {
		t.Error("VpaddlqU16")
	}
	fa := vec.FromF32x2([2]float32{1, 2})
	fb := vec.FromF32x2([2]float32{3, 4})
	p := u.VpaddF32(fa, fb)
	if p.F32(0) != 3 || p.F32(1) != 7 {
		t.Error("VpaddF32")
	}
	da := vec.FromU8x8([8]uint8{1, 9, 2, 8, 3, 7, 4, 6})
	db := vec.FromU8x8([8]uint8{10, 20, 30, 5, 1, 2, 3, 99})
	pm := u.VpmaxU8(da, db)
	if pm.ToU8x8() != [8]uint8{9, 8, 7, 6, 20, 30, 2, 99} {
		t.Errorf("VpmaxU8: %v", pm.ToU8x8())
	}
}

func TestAbsAndDiff(t *testing.T) {
	u := New(nil)
	a := vec.FromI16x8([8]int16{-5, 5, -32768, 32767, 0, -1, 100, -100})
	abs := u.VabsqS16(a)
	if abs.I16(0) != 5 || abs.I16(2) != -32768 { // wraps like hardware
		t.Errorf("VabsqS16: %d %d", abs.I16(0), abs.I16(2))
	}
	qabs := u.VqabsqS16(a)
	if qabs.I16(2) != 32767 {
		t.Errorf("VqabsqS16: %d", qabs.I16(2))
	}
	f := vec.FromF32x4([4]float32{-1.5, 2.5, -0, 3})
	if u.VabsqF32(f).ToF32x4() != [4]float32{1.5, 2.5, 0, 3} {
		t.Error("VabsqF32")
	}
	x := u.VdupqNU8(10)
	y := u.VdupqNU8(250)
	if u.VabdqU8(x, y).U8(0) != 240 {
		t.Error("VabdqU8")
	}
	acc := u.VdupqNU8(5)
	if u.VabaqU8(acc, x, y).U8(0) != 245 {
		t.Error("VabaqU8")
	}
}

func TestMinMax(t *testing.T) {
	u := New(nil)
	a := vec.FromU8x16([16]uint8{0, 255, 100, 50, 1, 2, 3, 4, 5, 6, 7, 8, 9, 10, 11, 12})
	b := u.VdupqNU8(100)
	mn := u.VminqU8(a, b)
	if mn.U8(0) != 0 || mn.U8(1) != 100 || mn.U8(2) != 100 || mn.U8(3) != 50 {
		t.Error("VminqU8")
	}
	mx := u.VmaxqU8(a, b)
	if mx.U8(0) != 100 || mx.U8(1) != 255 {
		t.Error("VmaxqU8")
	}
	sa := vec.FromI16x8([8]int16{-5, 5, 0, 7, -7, 3, -3, 1})
	sb := u.VdupqNS16(0)
	if u.VminqS16(sa, sb).ToI16x8() != [8]int16{-5, 0, 0, 0, -7, 0, -3, 0} {
		t.Error("VminqS16")
	}
	if u.VmaxqS16(sa, sb).ToI16x8() != [8]int16{0, 5, 0, 7, 0, 3, 0, 1} {
		t.Error("VmaxqS16")
	}
	fa := vec.FromF32x4([4]float32{1, -2, 3, -4})
	fb := vec.FromF32x4([4]float32{-1, 2, -3, 4})
	if u.VminqF32(fa, fb).ToF32x4() != [4]float32{-1, -2, -3, -4} {
		t.Error("VminqF32")
	}
	if u.VmaxqF32(fa, fb).ToF32x4() != [4]float32{1, 2, 3, 4} {
		t.Error("VmaxqF32")
	}
}

func TestLogicAndSelect(t *testing.T) {
	u := New(nil)
	a := u.VdupqNU8(0xF0)
	b := u.VdupqNU8(0x0F)
	if u.VandqU8(a, b) != vec.Zero() {
		t.Error("VandqU8")
	}
	if u.VorrqU8(a, b) != vec.Ones() {
		t.Error("VorrqU8")
	}
	if u.VeorqU8(a, a) != vec.Zero() {
		t.Error("VeorqU8")
	}
	if u.VmvnqU8(a).U8(0) != 0x0F {
		t.Error("VmvnqU8")
	}
	if u.VbicqU8(a, a) != vec.Zero() {
		t.Error("VbicqU8")
	}
	if u.VornqU8(a, b).U8(0) != 0xF0 {
		t.Error("VornqU8")
	}
	mask := u.VdupqNU8(0xFF)
	if u.VbslqU8(mask, a, b) != a {
		t.Error("VbslqU8 ones mask")
	}
	if u.VbslqU8(vec.Zero(), a, b) != b {
		t.Error("VbslqU8 zero mask")
	}
	if u.VandqS16(a, b) != vec.Zero() || u.VandqU16(a, b) != vec.Zero() {
		t.Error("typed vand aliases")
	}
	if u.VorrqS16(a, b) != vec.Ones() {
		t.Error("VorrqS16")
	}
	if u.VbslqS16(mask, a, b) != a || u.VbslqF32(mask, a, b) != a {
		t.Error("typed vbsl aliases")
	}
}

func TestCompares(t *testing.T) {
	u := New(nil)
	a := vec.FromU8x16([16]uint8{5, 10, 15, 20, 0, 0, 0, 0, 0, 0, 0, 0, 0, 0, 0, 0})
	th := u.VdupqNU8(10)
	gt := u.VcgtqU8(a, th)
	if gt.U8(0) != 0 || gt.U8(1) != 0 || gt.U8(2) != 0xFF {
		t.Error("VcgtqU8")
	}
	ge := u.VcgeqU8(a, th)
	if ge.U8(1) != 0xFF || ge.U8(0) != 0 {
		t.Error("VcgeqU8")
	}
	lt := u.VcltqU8(a, th)
	if lt.U8(0) != 0xFF || lt.U8(1) != 0 {
		t.Error("VcltqU8")
	}
	eq := u.VceqqU8(a, th)
	if eq.U8(1) != 0xFF || eq.U8(2) != 0 {
		t.Error("VceqqU8")
	}

	s := vec.FromI16x8([8]int16{-10, 0, 10, 20, -20, 5, -5, 15})
	z := u.VdupqNS16(0)
	if u.VcgtqS16(s, z).U16(0) != 0 || u.VcgtqS16(s, z).U16(2) != 0xFFFF {
		t.Error("VcgtqS16")
	}
	if u.VcgeqS16(s, z).U16(1) != 0xFFFF {
		t.Error("VcgeqS16")
	}
	if u.VcltqS16(s, z).U16(0) != 0xFFFF {
		t.Error("VcltqS16")
	}
	if u.VceqqS16(s, z).U16(1) != 0xFFFF || u.VceqqS16(s, z).U16(0) != 0 {
		t.Error("VceqqS16")
	}

	f := vec.FromF32x4([4]float32{-1, 0, 1, 2})
	fz := u.VdupqNF32(0)
	if u.VcgtqF32(f, fz).U32(2) != 0xFFFFFFFF || u.VcgtqF32(f, fz).U32(0) != 0 {
		t.Error("VcgtqF32")
	}
	if u.VcgeqF32(f, fz).U32(1) != 0xFFFFFFFF {
		t.Error("VcgeqF32")
	}
	if u.VcltqF32(f, fz).U32(0) != 0xFFFFFFFF {
		t.Error("VcltqF32")
	}
	if u.VceqqF32(f, fz).U32(1) != 0xFFFFFFFF {
		t.Error("VceqqF32")
	}
	fabs := vec.FromF32x4([4]float32{-5, 1, -1, 0})
	if u.VcagtqF32(fabs, u.VdupqNF32(2)).U32(0) != 0xFFFFFFFF {
		t.Error("VcagtqF32")
	}
	if u.VcagtqF32(fabs, u.VdupqNF32(2)).U32(1) != 0 {
		t.Error("VcagtqF32 lane1")
	}
	bits := u.VdupqNU8(0x01)
	if u.VtstqU8(bits, u.VdupqNU8(0x03)).U8(0) != 0xFF {
		t.Error("VtstqU8 set")
	}
	if u.VtstqU8(bits, u.VdupqNU8(0x02)).U8(0) != 0 {
		t.Error("VtstqU8 clear")
	}
}

func TestConversions(t *testing.T) {
	u := New(nil)
	f := vec.FromF32x4([4]float32{1.9, -1.9, 2.5e9, -2.5e9})
	s := u.VcvtqS32F32(f)
	if s.ToI32x4() != [4]int32{1, -1, math.MaxInt32, math.MinInt32} {
		t.Errorf("VcvtqS32F32: %v", s.ToI32x4())
	}
	back := u.VcvtqF32S32(vec.FromI32x4([4]int32{1, -1, 100, -100}))
	if back.ToF32x4() != [4]float32{1, -1, 100, -100} {
		t.Error("VcvtqF32S32")
	}
	uu := u.VcvtqU32F32(vec.FromF32x4([4]float32{-1, 2.7, 5e9, float32(math.NaN())}))
	if uu.U32(0) != 0 || uu.U32(1) != 2 || uu.U32(2) != 0xFFFFFFFF || uu.U32(3) != 0 {
		t.Errorf("VcvtqU32F32: %v", uu.ToU32x4())
	}
	fu := u.VcvtqF32U32(vec.FromU32x4([4]uint32{0, 1, 1000, 4000000000}))
	if fu.F32(3) != 4e9 {
		t.Error("VcvtqF32U32")
	}
	fx := u.VcvtqNS32F32(vec.FromF32x4([4]float32{1.5, -1.5, 0.25, 0}), 8)
	if fx.ToI32x4() != [4]int32{384, -384, 64, 0} {
		t.Errorf("VcvtqNS32F32: %v", fx.ToI32x4())
	}
}

func TestNarrowWiden(t *testing.T) {
	u := New(nil)
	w := vec.FromI32x4([4]int32{100000, -100000, 1234, -1234})
	n := u.VqmovnS32(w)
	if n.ToI16x4() != [4]int16{32767, -32768, 1234, -1234} {
		t.Errorf("VqmovnS32: %v", n.ToI16x4())
	}
	s16 := vec.FromI16x8([8]int16{300, -300, 100, -100, 127, -128, 128, -129})
	n8 := u.VqmovnS16(s16)
	if n8.ToI8x8() != [8]int8{127, -128, 100, -100, 127, -128, 127, -128} {
		t.Errorf("VqmovnS16: %v", n8.ToI8x8())
	}
	un8 := u.VqmovunS16(s16)
	if un8.ToU8x8() != [8]uint8{255, 0, 100, 0, 127, 0, 128, 0} {
		t.Errorf("VqmovunS16: %v", un8.ToU8x8())
	}
	u16 := vec.FromU16x8([8]uint16{256, 255, 1000, 0, 1, 2, 3, 4})
	if u.VqmovnU16(u16).ToU8x8() != [8]uint8{255, 255, 255, 0, 1, 2, 3, 4} {
		t.Error("VqmovnU16")
	}
	trunc := u.VmovnS32(w)
	wide := int32(100000)
	wantTrunc := int16(wide) // low 16 bits of 100000
	if trunc.I16(0) != wantTrunc || trunc.I16(2) != 1234 || trunc.I16(3) != -1234 {
		t.Error("VmovnS32 truncating")
	}
	if u.VmovnU16(u16).U8(0) != 0 || u.VmovnU16(u16).U8(1) != 255 {
		t.Error("VmovnU16 truncating")
	}

	b := vec.FromU8x8([8]uint8{0, 1, 255, 128, 2, 3, 4, 5})
	if u.VmovlU8(b).ToU16x8() != [8]uint16{0, 1, 255, 128, 2, 3, 4, 5} {
		t.Error("VmovlU8")
	}
	sb := vec.FromI8x8([8]int8{-1, 1, -128, 127, 0, 2, -2, 3})
	if u.VmovlS8(sb).ToI16x8() != [8]int16{-1, 1, -128, 127, 0, 2, -2, 3} {
		t.Error("VmovlS8")
	}
	s4 := vec.FromI16x4([4]int16{-1, 32767, -32768, 5})
	if u.VmovlS16(s4).ToI32x4() != [4]int32{-1, 32767, -32768, 5} {
		t.Error("VmovlS16")
	}
	u4 := vec.FromU16x4([4]uint16{65535, 0, 1, 2})
	if u.VmovlU16(u4).ToU32x4() != [4]uint32{65535, 0, 1, 2} {
		t.Error("VmovlU16")
	}
}

func TestShifts(t *testing.T) {
	u := New(nil)
	a := vec.FromI16x8([8]int16{1, -1, 4, -4, 100, -100, 16384, -16384})
	if u.VshlqNS16(a, 2).ToI16x8() != [8]int16{4, -4, 16, -16, 400, -400, 0, 0} {
		t.Error("VshlqNS16")
	}
	if u.VshrqNS16(a, 1).ToI16x8() != [8]int16{0, -1, 2, -2, 50, -50, 8192, -8192} {
		t.Error("VshrqNS16")
	}
	ua := vec.FromU16x8([8]uint16{2, 4, 8, 16, 32, 64, 128, 65535})
	if u.VshrqNU16(ua, 1).ToU16x8() != [8]uint16{1, 2, 4, 8, 16, 32, 64, 32767} {
		t.Error("VshrqNU16")
	}
	if u.VrshrqNU16(vec.FromU16x8([8]uint16{3, 2, 1, 0, 5, 6, 7, 8}), 1).ToU16x8() != [8]uint16{2, 1, 1, 0, 3, 3, 4, 4} {
		t.Error("VrshrqNU16")
	}
	if u.VrshrqNS32(vec.FromI32x4([4]int32{3, -3, 5, -5}), 1).ToI32x4() != [4]int32{2, -1, 3, -2} {
		t.Error("VrshrqNS32")
	}
	nb := u.VrshrnNU16(vec.FromU16x8([8]uint16{511, 512, 513, 0, 255, 256, 257, 1}), 8)
	if nb.ToU8x8() != [8]uint8{2, 2, 2, 0, 1, 1, 1, 0} {
		t.Errorf("VrshrnNU16: %v", nb.ToU8x8())
	}
	qn := u.VqrshrnNS32(vec.FromI32x4([4]int32{1 << 20, -(1 << 20), 256, -256}), 4)
	if qn.ToI16x4() != [4]int16{32767, -32768, 16, -16} {
		t.Errorf("VqrshrnNS32: %v", qn.ToI16x4())
	}
	if u.VqshlqNS16(vec.FromI16x8([8]int16{16384, -16384, 1, 0, 0, 0, 0, 0}), 2).ToI16x8()[0] != 32767 {
		t.Error("VqshlqNS16 saturate")
	}
	if u.VshrqNU8(u.VdupqNU8(255), 4).U8(0) != 15 {
		t.Error("VshrqNU8")
	}
	shifts := vec.FromI16x8([8]int16{2, -2, 0, 16, -16, 1, -1, 3})
	in := vec.FromI16x8([8]int16{1, 8, 5, 1, -1, 2, 4, -8})
	got := u.VshlqS16(in, shifts)
	want := [8]int16{4, 2, 5, 0, -1, 4, 2, -64}
	if got.ToI16x8() != want {
		t.Errorf("VshlqS16: got %v want %v", got.ToI16x8(), want)
	}
	acc := vec.FromI16x8([8]int16{10, 10, 10, 10, 10, 10, 10, 10})
	if u.VsraqNS16(acc, vec.FromI16x8([8]int16{8, -8, 16, 0, 4, 2, 32, 64}), 2).ToI16x8() != [8]int16{12, 8, 14, 10, 11, 10, 18, 26} {
		t.Error("VsraqNS16")
	}
}

func TestShuffles(t *testing.T) {
	u := New(nil)
	lo := vec.FromI16x4([4]int16{1, 2, 3, 4})
	hi := vec.FromI16x4([4]int16{5, 6, 7, 8})
	q := u.VcombineS16(lo, hi)
	if q.ToI16x8() != [8]int16{1, 2, 3, 4, 5, 6, 7, 8} {
		t.Error("VcombineS16")
	}
	if u.VgetLowS16(q) != lo || u.VgetHighS16(q) != hi {
		t.Error("VgetLow/High S16")
	}
	if u.VgetLaneS16(lo, 2) != 3 {
		t.Error("VgetLaneS16")
	}
	if u.VgetqLaneS32(vec.FromI32x4([4]int32{9, 8, 7, 6}), 1) != 8 {
		t.Error("VgetqLaneS32")
	}
	if u.VgetqLaneF32(vec.FromF32x4([4]float32{1, 2, 3, 4}), 3) != 4 {
		t.Error("VgetqLaneF32")
	}
	set := u.VsetqLaneS16(-9, q, 0)
	if set.I16(0) != -9 || set.I16(1) != 2 {
		t.Error("VsetqLaneS16")
	}

	a := vec.FromU8x16([16]uint8{0, 1, 2, 3, 4, 5, 6, 7, 8, 9, 10, 11, 12, 13, 14, 15})
	b := vec.FromU8x16([16]uint8{16, 17, 18, 19, 20, 21, 22, 23, 24, 25, 26, 27, 28, 29, 30, 31})
	e := u.VextU8(a, b, 3)
	if e.U8(0) != 3 || e.U8(12) != 15 || e.U8(13) != 16 || e.U8(15) != 18 {
		t.Errorf("VextU8: %v", e.ToU8x16())
	}
	e16 := u.VextS16(vec.FromI16x8([8]int16{0, 1, 2, 3, 4, 5, 6, 7}), vec.FromI16x8([8]int16{8, 9, 10, 11, 12, 13, 14, 15}), 2)
	if e16.ToI16x8() != [8]int16{2, 3, 4, 5, 6, 7, 8, 9} {
		t.Errorf("VextS16: %v", e16.ToI16x8())
	}
	r := u.Vrev64U8(a)
	if r.U8(0) != 7 || r.U8(7) != 0 || r.U8(8) != 15 || r.U8(15) != 8 {
		t.Errorf("Vrev64U8: %v", r.ToU8x16())
	}
	ta, tb := u.VtrnqS16(vec.FromI16x8([8]int16{0, 1, 2, 3, 4, 5, 6, 7}), vec.FromI16x8([8]int16{10, 11, 12, 13, 14, 15, 16, 17}))
	if ta.ToI16x8() != [8]int16{0, 10, 2, 12, 4, 14, 6, 16} {
		t.Errorf("VtrnqS16 a: %v", ta.ToI16x8())
	}
	if tb.ToI16x8() != [8]int16{1, 11, 3, 13, 5, 15, 7, 17} {
		t.Errorf("VtrnqS16 b: %v", tb.ToI16x8())
	}
	zlo, zhi := u.VzipqU8(a, b)
	if zlo.U8(0) != 0 || zlo.U8(1) != 16 || zhi.U8(0) != 8 || zhi.U8(1) != 24 {
		t.Error("VzipqU8")
	}
	uev, uod := u.VuzpqU8(zlo, zhi)
	if uev != a || uod != b {
		t.Error("VuzpqU8 should invert VzipqU8")
	}
	tbl := vec.FromU8x8([8]uint8{100, 101, 102, 103, 104, 105, 106, 107})
	idx := vec.FromU8x8([8]uint8{7, 0, 3, 200, 1, 1, 6, 8})
	lk := u.VtblU8(tbl, idx)
	if lk.ToU8x8() != [8]uint8{107, 100, 103, 0, 101, 101, 106, 0} {
		t.Errorf("VtblU8: %v", lk.ToU8x8())
	}
	if u.VreinterpretqS16U8(a) != a || u.VreinterpretqU8S16(a) != a ||
		u.VreinterpretqU16S16(a) != a || u.VreinterpretqS16U16(a) != a {
		t.Error("reinterpret must be identity")
	}
	if u.VcombineU8(vec.FromU8x8([8]uint8{1, 2, 3, 4, 5, 6, 7, 8}), vec.FromU8x8([8]uint8{9, 10, 11, 12, 13, 14, 15, 16})).U8(15) != 16 {
		t.Error("VcombineU8")
	}
	if u.VcombineU16(vec.FromU16x4([4]uint16{1, 2, 3, 4}), vec.FromU16x4([4]uint16{5, 6, 7, 8})).U16(7) != 8 {
		t.Error("VcombineU16")
	}
	if u.VcombineF32(vec.FromF32x2([2]float32{1, 2}), vec.FromF32x2([2]float32{3, 4})).F32(3) != 4 {
		t.Error("VcombineF32")
	}
	if u.VgetLowU8(a).U8(0) != 0 || u.VgetHighU8(a).U8(0) != 8 {
		t.Error("VgetLow/HighU8")
	}
}

func TestReciprocalEstimates(t *testing.T) {
	u := New(nil)
	x := vec.FromF32x4([4]float32{2, 4, 0.5, 8})
	est := u.VrecpeqF32(x)
	// One Newton refinement step should get close to the true reciprocal.
	ref := u.VmulqF32(est, u.VrecpsqF32(x, est))
	for i := 0; i < 4; i++ {
		want := 1 / x.F32(i)
		if math.Abs(float64(ref.F32(i)-want)) > 1e-3*float64(want) {
			t.Errorf("recip lane %d: got %v want %v", i, ref.F32(i), want)
		}
	}
	rs := u.VrsqrteqF32(x)
	refined := u.VmulqF32(rs, u.VrsqrtsqF32(u.VmulqF32(x, rs), rs))
	for i := 0; i < 4; i++ {
		want := 1 / float32(math.Sqrt(float64(x.F32(i))))
		if math.Abs(float64(refined.F32(i)-want)) > 2e-3*float64(want) {
			t.Errorf("rsqrt lane %d: got %v want %v", i, refined.F32(i), want)
		}
	}
}

// Property: VqmovnS32 agrees with the scalar saturation library lane-wise.
func TestQuickQmovnMatchesScalar(t *testing.T) {
	u := New(nil)
	f := func(a [4]int32) bool {
		n := u.VqmovnS32(vec.FromI32x4(a))
		for i := 0; i < 4; i++ {
			if n.I16(i) != sat.NarrowInt32ToInt16(a[i]) {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

// Property: the full paper convert sequence equals the scalar
// truncate-then-saturate reference for arbitrary inputs.
func TestQuickConvertSequenceMatchesScalar(t *testing.T) {
	u := New(nil)
	f := func(in [8]float32) bool {
		src := in[:]
		dst := make([]int16, 8)
		a := u.VcvtqS32F32(u.Vld1qF32(src))
		lo := u.VqmovnS32(a)
		b := u.VcvtqS32F32(u.Vld1qF32(src[4:]))
		hi := u.VqmovnS32(b)
		u.Vst1qS16(dst, u.VcombineS16(lo, hi))
		for i := 0; i < 8; i++ {
			want := sat.NarrowInt32ToInt16(sat.Float32ToInt32Truncate(src[i]))
			if dst[i] != want {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

// Property: vmin/vmax form a lattice: min(a,b)+max(a,b) == a+b lane-wise.
func TestQuickMinMaxLattice(t *testing.T) {
	u := New(nil)
	f := func(a, b [16]uint8) bool {
		va, vb := vec.FromU8x16(a), vec.FromU8x16(b)
		mn := u.VminqU8(va, vb)
		mx := u.VmaxqU8(va, vb)
		for i := 0; i < 16; i++ {
			if int(mn.U8(i))+int(mx.U8(i)) != int(a[i])+int(b[i]) {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

// Property: zip then unzip is the identity.
func TestQuickZipUnzipRoundTrip(t *testing.T) {
	u := New(nil)
	f := func(a, b [16]uint8) bool {
		va, vb := vec.FromU8x16(a), vec.FromU8x16(b)
		lo, hi := u.VzipqU8(va, vb)
		ra, rb := u.VuzpqU8(lo, hi)
		return ra == va && rb == vb
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

func TestStructuredLoads(t *testing.T) {
	u := New(nil)
	// 8 RGB pixels: R=10k+0, G=10k+1, B=10k+2 pattern mod 256.
	rgb := make([]uint8, 24)
	for k := 0; k < 8; k++ {
		rgb[3*k] = uint8(10*k + 1)
		rgb[3*k+1] = uint8(10*k + 2)
		rgb[3*k+2] = uint8(10*k + 3)
	}
	planes := u.Vld3U8(rgb)
	for k := 0; k < 8; k++ {
		if planes[0].U8(k) != uint8(10*k+1) || planes[1].U8(k) != uint8(10*k+2) || planes[2].U8(k) != uint8(10*k+3) {
			t.Fatalf("vld3 lane %d: %d %d %d", k, planes[0].U8(k), planes[1].U8(k), planes[2].U8(k))
		}
	}
	out := make([]uint8, 24)
	u.Vst3U8(out, planes)
	for i := range rgb {
		if out[i] != rgb[i] {
			t.Fatalf("vst3 byte %d", i)
		}
	}

	two := make([]uint8, 16)
	for i := range two {
		two[i] = uint8(i)
	}
	pair := u.Vld2U8(two)
	if pair[0].U8(0) != 0 || pair[1].U8(0) != 1 || pair[0].U8(7) != 14 || pair[1].U8(7) != 15 {
		t.Fatal("vld2 deinterleave")
	}
	out2 := make([]uint8, 16)
	u.Vst2U8(out2, pair)
	for i := range two {
		if out2[i] != two[i] {
			t.Fatalf("vst2 byte %d", i)
		}
	}

	four := make([]uint8, 32)
	for i := range four {
		four[i] = uint8(i * 3)
	}
	quad := u.Vld4U8(four)
	if quad[0].U8(1) != four[4] || quad[3].U8(0) != four[3] {
		t.Fatal("vld4 deinterleave")
	}
	out4 := make([]uint8, 32)
	u.Vst4U8(out4, quad)
	for i := range four {
		if out4[i] != four[i] {
			t.Fatalf("vst4 byte %d", i)
		}
	}

	wide := make([]uint8, 32)
	for i := range wide {
		wide[i] = uint8(255 - i)
	}
	qpair := u.Vld2qU8(wide)
	if qpair[0].U8(0) != 255 || qpair[1].U8(0) != 254 || qpair[0].U8(15) != 225 {
		t.Fatal("vld2q deinterleave")
	}
	outQ := make([]uint8, 32)
	u.Vst2qU8(outQ, qpair)
	for i := range wide {
		if outQ[i] != wide[i] {
			t.Fatalf("vst2q byte %d", i)
		}
	}
}

// Property: vld3 then vst3 is the identity on any 24-byte block.
func TestQuickStructuredRoundTrip(t *testing.T) {
	u := New(nil)
	f := func(data [24]uint8) bool {
		out := make([]uint8, 24)
		u.Vst3U8(out, u.Vld3U8(data[:]))
		for i := range data {
			if out[i] != data[i] {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

func TestStructuredLoadTraceBytes(t *testing.T) {
	var tr trace.Counter
	u := New(&tr)
	buf := make([]uint8, 64)
	u.Vld3U8(buf)
	u.Vst3U8(buf, [3]vec.V64{})
	if tr.BytesLoaded() != 24 || tr.BytesStored() != 24 {
		t.Fatalf("vld3/vst3 bytes: %d/%d", tr.BytesLoaded(), tr.BytesStored())
	}
	if tr.Opcode("vld3.8") != 1 || tr.Opcode("vst3.8") != 1 {
		t.Fatal("structured opcodes not recorded")
	}
}
