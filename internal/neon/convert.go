package neon

import (
	"simdstudy/internal/faults"
	"simdstudy/internal/sat"
	"simdstudy/internal/trace"
	"simdstudy/internal/vec"
)

// --- Conversions ---

// VcvtqS32F32 converts four float lanes to int32, truncating toward zero
// with saturation (vcvt.s32.f32). Core of the convert benchmark.
func (u *Unit) VcvtqS32F32(a vec.V128) vec.V128 {
	u.rec("vcvt.s32.f32", trace.SIMDCvt)
	var r vec.V128
	for i := 0; i < 4; i++ {
		r.SetI32(i, sat.Float32ToInt32Truncate(a.F32(i)))
	}
	return fault(u, faults.SiteConvert, r)
}

// VcvtqF32S32 converts four int32 lanes to float (vcvt.f32.s32).
func (u *Unit) VcvtqF32S32(a vec.V128) vec.V128 {
	u.rec("vcvt.f32.s32", trace.SIMDCvt)
	var r vec.V128
	for i := 0; i < 4; i++ {
		r.SetF32(i, float32(a.I32(i)))
	}
	return fault(u, faults.SiteConvert, r)
}

// VcvtqU32F32 converts float lanes to uint32 with saturation at zero
// (vcvt.u32.f32).
func (u *Unit) VcvtqU32F32(a vec.V128) vec.V128 {
	u.rec("vcvt.u32.f32", trace.SIMDCvt)
	var r vec.V128
	for i := 0; i < 4; i++ {
		f := a.F32(i)
		switch {
		case f != f || f <= 0: // NaN or negative
			r.SetU32(i, 0)
		case float64(f) >= 4294967295:
			r.SetU32(i, 0xFFFFFFFF)
		default:
			r.SetU32(i, uint32(f))
		}
	}
	return fault(u, faults.SiteConvert, r)
}

// VcvtqF32U32 converts uint32 lanes to float (vcvt.f32.u32).
func (u *Unit) VcvtqF32U32(a vec.V128) vec.V128 {
	u.rec("vcvt.f32.u32", trace.SIMDCvt)
	var r vec.V128
	for i := 0; i < 4; i++ {
		r.SetF32(i, float32(a.U32(i)))
	}
	return fault(u, faults.SiteConvert, r)
}

// VcvtqNS32F32 converts float to fixed-point S32 with n fractional bits
// (vcvt.s32.f32 #n).
func (u *Unit) VcvtqNS32F32(a vec.V128, n uint) vec.V128 {
	u.rec("vcvt.s32.f32(fx)", trace.SIMDCvt)
	var r vec.V128
	scale := float64(int64(1) << n)
	for i := 0; i < 4; i++ {
		r.SetI32(i, sat.Float64ToInt32(float64(a.F32(i))*scale))
	}
	return fault(u, faults.SiteConvert, r)
}

// --- Narrowing moves ---

// VqmovnS32 saturating narrow: four int32 lanes to four int16 lanes in a D
// register (vqmovn.s32). The paper's convert loop uses two of these.
func (u *Unit) VqmovnS32(a vec.V128) vec.V64 {
	u.rec("vqmovn.s32", trace.SIMDCvt)
	var r vec.V64
	for i := 0; i < 4; i++ {
		r.SetI16(i, sat.NarrowInt32ToInt16(a.I32(i)))
	}
	return fault(u, faults.SiteConvert, r)
}

// VqmovnS16 saturating narrow: eight int16 lanes to eight int8 lanes
// (vqmovn.s16).
func (u *Unit) VqmovnS16(a vec.V128) vec.V64 {
	u.rec("vqmovn.s16", trace.SIMDCvt)
	var r vec.V64
	for i := 0; i < 8; i++ {
		r.SetI8(i, sat.NarrowInt16ToInt8(a.I16(i)))
	}
	return fault(u, faults.SiteConvert, r)
}

// VqmovunS16 saturating narrow signed to unsigned: int16 lanes to uint8
// (vqmovun.s16). Used when converting filtered results back to pixels.
func (u *Unit) VqmovunS16(a vec.V128) vec.V64 {
	u.rec("vqmovun.s16", trace.SIMDCvt)
	var r vec.V64
	for i := 0; i < 8; i++ {
		r.SetU8(i, sat.NarrowInt16ToUint8(a.I16(i)))
	}
	return fault(u, faults.SiteConvert, r)
}

// VqmovnU16 saturating narrow: uint16 lanes to uint8 (vqmovn.u16).
func (u *Unit) VqmovnU16(a vec.V128) vec.V64 {
	u.rec("vqmovn.u16", trace.SIMDCvt)
	var r vec.V64
	for i := 0; i < 8; i++ {
		r.SetU8(i, sat.NarrowUint16ToUint8(a.U16(i)))
	}
	return fault(u, faults.SiteConvert, r)
}

// VmovnS32 truncating narrow: low halves of int32 lanes (vmovn.i32).
func (u *Unit) VmovnS32(a vec.V128) vec.V64 {
	u.rec("vmovn.i32", trace.SIMDCvt)
	var r vec.V64
	for i := 0; i < 4; i++ {
		r.SetI16(i, int16(a.I32(i)))
	}
	return fault(u, faults.SiteConvert, r)
}

// VmovnU16 truncating narrow: low bytes of uint16 lanes (vmovn.i16).
func (u *Unit) VmovnU16(a vec.V128) vec.V64 {
	u.rec("vmovn.i16", trace.SIMDCvt)
	var r vec.V64
	for i := 0; i < 8; i++ {
		r.SetU8(i, uint8(a.U16(i)))
	}
	return fault(u, faults.SiteConvert, r)
}

// --- Widening moves ---

// VmovlU8 widens eight bytes to eight uint16 lanes (vmovl.u8).
func (u *Unit) VmovlU8(a vec.V64) vec.V128 {
	u.rec("vmovl.u8", trace.SIMDCvt)
	var r vec.V128
	for i := 0; i < 8; i++ {
		r.SetU16(i, uint16(a.U8(i)))
	}
	return fault(u, faults.SiteConvert, r)
}

// VmovlS8 widens eight signed bytes to int16 lanes (vmovl.s8).
func (u *Unit) VmovlS8(a vec.V64) vec.V128 {
	u.rec("vmovl.s8", trace.SIMDCvt)
	var r vec.V128
	for i := 0; i < 8; i++ {
		r.SetI16(i, int16(a.I8(i)))
	}
	return fault(u, faults.SiteConvert, r)
}

// VmovlS16 widens four int16 lanes to int32 (vmovl.s16).
func (u *Unit) VmovlS16(a vec.V64) vec.V128 {
	u.rec("vmovl.s16", trace.SIMDCvt)
	var r vec.V128
	for i := 0; i < 4; i++ {
		r.SetI32(i, int32(a.I16(i)))
	}
	return fault(u, faults.SiteConvert, r)
}

// VmovlU16 widens four uint16 lanes to uint32 (vmovl.u16).
func (u *Unit) VmovlU16(a vec.V64) vec.V128 {
	u.rec("vmovl.u16", trace.SIMDCvt)
	var r vec.V128
	for i := 0; i < 4; i++ {
		r.SetU32(i, uint32(a.U16(i)))
	}
	return fault(u, faults.SiteConvert, r)
}

// --- Shifts ---

// VshlqNS16 shift left by constant (vshl.i16 #n).
func (u *Unit) VshlqNS16(a vec.V128, n uint) vec.V128 {
	u.rec("vshl.i16", trace.SIMDALU)
	var r vec.V128
	for i := 0; i < 8; i++ {
		r.SetI16(i, a.I16(i)<<n)
	}
	return fault(u, faults.SiteConvert, r)
}

// VshrqNS16 arithmetic shift right by constant (vshr.s16 #n).
func (u *Unit) VshrqNS16(a vec.V128, n uint) vec.V128 {
	u.rec("vshr.s16", trace.SIMDALU)
	var r vec.V128
	for i := 0; i < 8; i++ {
		r.SetI16(i, a.I16(i)>>n)
	}
	return fault(u, faults.SiteConvert, r)
}

// VshrqNU16 logical shift right by constant (vshr.u16 #n).
func (u *Unit) VshrqNU16(a vec.V128, n uint) vec.V128 {
	u.rec("vshr.u16", trace.SIMDALU)
	var r vec.V128
	for i := 0; i < 8; i++ {
		r.SetU16(i, a.U16(i)>>n)
	}
	return fault(u, faults.SiteConvert, r)
}

// VshrqNU8 logical shift right bytes by constant (vshr.u8 #n).
func (u *Unit) VshrqNU8(a vec.V128, n uint) vec.V128 {
	u.rec("vshr.u8", trace.SIMDALU)
	var r vec.V128
	for i := 0; i < 16; i++ {
		r.SetU8(i, a.U8(i)>>n)
	}
	return fault(u, faults.SiteConvert, r)
}

// VrshrqNU16 rounding shift right: (a + (1<<(n-1))) >> n (vrshr.u16 #n).
func (u *Unit) VrshrqNU16(a vec.V128, n uint) vec.V128 {
	u.rec("vrshr.u16", trace.SIMDALU)
	var r vec.V128
	for i := 0; i < 8; i++ {
		r.SetU16(i, uint16((uint32(a.U16(i))+(1<<(n-1)))>>n))
	}
	return fault(u, faults.SiteConvert, r)
}

// VrshrqNS32 rounding arithmetic shift right on int32 lanes (vrshr.s32 #n).
func (u *Unit) VrshrqNS32(a vec.V128, n uint) vec.V128 {
	u.rec("vrshr.s32", trace.SIMDALU)
	var r vec.V128
	for i := 0; i < 4; i++ {
		r.SetI32(i, int32((int64(a.I32(i))+(1<<(n-1)))>>n))
	}
	return fault(u, faults.SiteConvert, r)
}

// VrshrnNU16 rounding shift right and narrow: uint16 lanes to uint8 D
// register (vrshrn.u16 #n). The fixed-point Gaussian uses this to rescale.
func (u *Unit) VrshrnNU16(a vec.V128, n uint) vec.V64 {
	u.rec("vrshrn.u16", trace.SIMDCvt)
	var r vec.V64
	for i := 0; i < 8; i++ {
		v := (uint32(a.U16(i)) + (1 << (n - 1))) >> n
		r.SetU8(i, uint8(v)) // vrshrn truncates; callers keep values in range
	}
	return fault(u, faults.SiteConvert, r)
}

// VqrshrnNS32 saturating rounding shift right narrow: int32 to int16
// (vqrshrn.s32 #n).
func (u *Unit) VqrshrnNS32(a vec.V128, n uint) vec.V64 {
	u.rec("vqrshrn.s32", trace.SIMDCvt)
	var r vec.V64
	for i := 0; i < 4; i++ {
		v := (int64(a.I32(i)) + (1 << (n - 1))) >> n
		r.SetI16(i, sat.Int16(v))
	}
	return fault(u, faults.SiteConvert, r)
}

// VqshlqNS16 saturating shift left by constant (vqshl.s16 #n).
func (u *Unit) VqshlqNS16(a vec.V128, n uint) vec.V128 {
	u.rec("vqshl.s16", trace.SIMDALU)
	var r vec.V128
	for i := 0; i < 8; i++ {
		r.SetI16(i, sat.ShiftLeftInt16(a.I16(i), n))
	}
	return fault(u, faults.SiteConvert, r)
}

// VshlqS16 shift left by signed per-lane variable; negative shifts right
// (vshl.s16 with register operand).
func (u *Unit) VshlqS16(a, shifts vec.V128) vec.V128 {
	u.rec("vshl.s16(reg)", trace.SIMDALU)
	var r vec.V128
	for i := 0; i < 8; i++ {
		s := int8(shifts.I16(i)) // low byte of shift lane, per ARM ARM
		switch {
		case s >= 16 || s <= -16:
			r.SetI16(i, 0)
			if s <= -16 && a.I16(i) < 0 {
				r.SetI16(i, -1)
			}
		case s >= 0:
			r.SetI16(i, a.I16(i)<<uint(s))
		default:
			r.SetI16(i, a.I16(i)>>uint(-s))
		}
	}
	return fault(u, faults.SiteConvert, r)
}

// VsraqNS16 shift right and accumulate (vsra.s16 #n).
func (u *Unit) VsraqNS16(acc, a vec.V128, n uint) vec.V128 {
	u.rec("vsra.s16", trace.SIMDALU)
	var r vec.V128
	for i := 0; i < 8; i++ {
		r.SetI16(i, acc.I16(i)+(a.I16(i)>>n))
	}
	return fault(u, faults.SiteConvert, r)
}
