package neon

import (
	"math"
	"math/bits"

	"simdstudy/internal/faults"
	"simdstudy/internal/sat"
	"simdstudy/internal/trace"
	"simdstudy/internal/vec"
)

// Second tranche of NEON operations: negation, halving subtract, counting,
// saturating doubling multiplies (the DSP workhorses), add/sub-narrow-high,
// pairwise forms, lane loads and table lookups with fallback. These round
// out the categories of the paper's Section II-C beyond what the five
// benchmarks strictly need.

// VnegqS16 lane-wise negate with wraparound (vneg.s16).
func (u *Unit) VnegqS16(a vec.V128) vec.V128 {
	u.rec("vneg.s16", trace.SIMDALU)
	var r vec.V128
	for i := 0; i < 8; i++ {
		r.SetI16(i, -a.I16(i))
	}
	return fault(u, faults.SiteALU, r)
}

// VqnegqS16 saturating negate (vqneg.s16): -MinInt16 -> MaxInt16.
func (u *Unit) VqnegqS16(a vec.V128) vec.V128 {
	u.rec("vqneg.s16", trace.SIMDALU)
	var r vec.V128
	for i := 0; i < 8; i++ {
		r.SetI16(i, sat.NegInt16(a.I16(i)))
	}
	return fault(u, faults.SiteALU, r)
}

// VnegqF32 float negate (vneg.f32).
func (u *Unit) VnegqF32(a vec.V128) vec.V128 {
	u.rec("vneg.f32", trace.SIMDALU)
	var r vec.V128
	for i := 0; i < 4; i++ {
		r.SetF32(i, -a.F32(i))
	}
	return fault(u, faults.SiteALU, r)
}

// VhsubqU8 halving subtract: (a-b)>>1 with the intermediate kept wide
// (vhsub.u8).
func (u *Unit) VhsubqU8(a, b vec.V128) vec.V128 {
	u.rec("vhsub.u8", trace.SIMDALU)
	var r vec.V128
	for i := 0; i < 16; i++ {
		d := int16(a.U8(i)) - int16(b.U8(i))
		r.SetU8(i, uint8(uint16(d)>>1)) // arithmetic shift of the wide value, truncated
	}
	return fault(u, faults.SiteALU, r)
}

// VcntqU8 per-byte population count (vcnt.8).
func (u *Unit) VcntqU8(a vec.V128) vec.V128 {
	u.rec("vcnt.8", trace.SIMDALU)
	var r vec.V128
	for i := 0; i < 16; i++ {
		r.SetU8(i, uint8(bits.OnesCount8(a.U8(i))))
	}
	return fault(u, faults.SiteALU, r)
}

// VclzqU8 per-byte count leading zeros (vclz.i8).
func (u *Unit) VclzqU8(a vec.V128) vec.V128 {
	u.rec("vclz.i8", trace.SIMDALU)
	var r vec.V128
	for i := 0; i < 16; i++ {
		r.SetU8(i, uint8(bits.LeadingZeros8(a.U8(i))))
	}
	return fault(u, faults.SiteALU, r)
}

// VclsqS16 count leading sign bits, excluding the sign bit itself
// (vcls.s16).
func (u *Unit) VclsqS16(a vec.V128) vec.V128 {
	u.rec("vcls.s16", trace.SIMDALU)
	var r vec.V128
	for i := 0; i < 8; i++ {
		v := a.I16(i)
		if v < 0 {
			v = ^v
		}
		// Leading zeros of the magnitude pattern minus the sign position.
		r.SetI16(i, int16(bits.LeadingZeros16(uint16(v))-1))
	}
	return fault(u, faults.SiteALU, r)
}

// VqdmulhqS16 saturating doubling multiply returning the high half
// (vqdmulh.s16): (2*a*b)>>16 with saturation, the fixed-point Q15
// multiply every DSP kernel leans on.
func (u *Unit) VqdmulhqS16(a, b vec.V128) vec.V128 {
	u.rec("vqdmulh.s16", trace.SIMDMul)
	var r vec.V128
	for i := 0; i < 8; i++ {
		// The doubled product saturates to 32 bits before the high half
		// is taken: (-1)*(-1) in Q15 gives 0x7FFFFFFF, not wraparound.
		p := sat.Int32(2 * int64(a.I16(i)) * int64(b.I16(i)))
		r.SetI16(i, int16(p>>16))
	}
	return fault(u, faults.SiteALU, r)
}

// VqrdmulhqS16 rounding variant of VqdmulhqS16 (vqrdmulh.s16).
func (u *Unit) VqrdmulhqS16(a, b vec.V128) vec.V128 {
	u.rec("vqrdmulh.s16", trace.SIMDMul)
	var r vec.V128
	for i := 0; i < 8; i++ {
		p := sat.Int32(2*int64(a.I16(i))*int64(b.I16(i)) + (1 << 15))
		r.SetI16(i, int16(p>>16))
	}
	return fault(u, faults.SiteALU, r)
}

// VaddhnS32 add and narrow, keeping the high halves (vaddhn.i32): the
// cheap "divide by 65536 after accumulate" idiom.
func (u *Unit) VaddhnS32(a, b vec.V128) vec.V64 {
	u.rec("vaddhn.i32", trace.SIMDCvt)
	var r vec.V64
	for i := 0; i < 4; i++ {
		r.SetI16(i, int16((a.I32(i)+b.I32(i))>>16))
	}
	return fault(u, faults.SiteALU, r)
}

// VsubhnS32 subtract and narrow high halves (vsubhn.i32).
func (u *Unit) VsubhnS32(a, b vec.V128) vec.V64 {
	u.rec("vsubhn.i32", trace.SIMDCvt)
	var r vec.V64
	for i := 0; i < 4; i++ {
		r.SetI16(i, int16((a.I32(i)-b.I32(i))>>16))
	}
	return fault(u, faults.SiteALU, r)
}

// VpaddU8 pairwise add of two byte D registers (vpadd.u8).
func (u *Unit) VpaddU8(a, b vec.V64) vec.V64 {
	u.rec("vpadd.u8", trace.SIMDALU)
	var r vec.V64
	for i := 0; i < 4; i++ {
		r.SetU8(i, a.U8(2*i)+a.U8(2*i+1))
		r.SetU8(4+i, b.U8(2*i)+b.U8(2*i+1))
	}
	return fault(u, faults.SiteALU, r)
}

// VpminU8 pairwise minimum (vpmin.u8).
func (u *Unit) VpminU8(a, b vec.V64) vec.V64 {
	u.rec("vpmin.u8", trace.SIMDALU)
	var r vec.V64
	for i := 0; i < 4; i++ {
		r.SetU8(i, min(a.U8(2*i), a.U8(2*i+1)))
		r.SetU8(4+i, min(b.U8(2*i), b.U8(2*i+1)))
	}
	return fault(u, faults.SiteALU, r)
}

// VpminF32 pairwise float minimum (vpmin.f32).
func (u *Unit) VpminF32(a, b vec.V64) vec.V64 {
	u.rec("vpmin.f32", trace.SIMDALU)
	var r vec.V64
	r.SetF32(0, float32(math.Min(float64(a.F32(0)), float64(a.F32(1)))))
	r.SetF32(1, float32(math.Min(float64(b.F32(0)), float64(b.F32(1)))))
	return fault(u, faults.SiteALU, r)
}

// VpmaxF32 pairwise float maximum (vpmax.f32).
func (u *Unit) VpmaxF32(a, b vec.V64) vec.V64 {
	u.rec("vpmax.f32", trace.SIMDALU)
	var r vec.V64
	r.SetF32(0, float32(math.Max(float64(a.F32(0)), float64(a.F32(1)))))
	r.SetF32(1, float32(math.Max(float64(b.F32(0)), float64(b.F32(1)))))
	return fault(u, faults.SiteALU, r)
}

// Vld1qDupF32 loads one float and broadcasts it to all lanes
// (vld1.32 {d0[],d1[]}).
func (u *Unit) Vld1qDupF32(p []float32) vec.V128 {
	u.recMem("vld1.32(dup)", trace.SIMDLoad, 4)
	return vec.FromF32x4([4]float32{p[0], p[0], p[0], p[0]})
}

// Vld1qLaneS16 loads one int16 into the given lane, keeping the rest
// (vld1.16 {d0[lane]}).
func (u *Unit) Vld1qLaneS16(p []int16, v vec.V128, lane int) vec.V128 {
	u.recMem("vld1.16(lane)", trace.SIMDLoad, 2)
	v.SetI16(lane, p[0])
	return v
}

// Vst1qLaneS16 stores one lane (vst1.16 {d0[lane]}).
func (u *Unit) Vst1qLaneS16(p []int16, v vec.V128, lane int) {
	u.recMem("vst1.16(lane)", trace.SIMDStore, 2)
	p[0] = v.I16(lane)
}

// VtbxU8 table lookup with fallback (vtbx.8): out-of-range indexes keep
// the destination's prior lane instead of zeroing.
func (u *Unit) VtbxU8(d, t vec.V64, idx vec.V64) vec.V64 {
	u.rec("vtbx.8", trace.SIMDShuffle)
	r := d
	for i := 0; i < 8; i++ {
		j := int(idx.U8(i))
		if j < 8 {
			r.SetU8(i, t.U8(j))
		}
	}
	return fault(u, faults.SiteALU, r)
}

// Vrev16qU8 reverses bytes within each 16-bit halfword (vrev16.8), the
// endianness-swap instruction the paper's miscellaneous category lists.
func (u *Unit) Vrev16qU8(a vec.V128) vec.V128 {
	u.rec("vrev16.8", trace.SIMDShuffle)
	var r vec.V128
	for i := 0; i < 16; i += 2 {
		r.SetU8(i, a.U8(i+1))
		r.SetU8(i+1, a.U8(i))
	}
	return fault(u, faults.SiteALU, r)
}

// Vrev32qU8 reverses bytes within each 32-bit word (vrev32.8).
func (u *Unit) Vrev32qU8(a vec.V128) vec.V128 {
	u.rec("vrev32.8", trace.SIMDShuffle)
	var r vec.V128
	for i := 0; i < 16; i += 4 {
		r.SetU8(i, a.U8(i+3))
		r.SetU8(i+1, a.U8(i+2))
		r.SetU8(i+2, a.U8(i+1))
		r.SetU8(i+3, a.U8(i))
	}
	return fault(u, faults.SiteALU, r)
}

// VaddqS64 adds the two 64-bit lanes (vadd.i64).
func (u *Unit) VaddqS64(a, b vec.V128) vec.V128 {
	u.rec("vadd.i64", trace.SIMDALU)
	var r vec.V128
	r.SetI64(0, a.I64(0)+b.I64(0))
	r.SetI64(1, a.I64(1)+b.I64(1))
	return fault(u, faults.SiteALU, r)
}

// VqaddqS64 saturating 64-bit add (vqadd.s64).
func (u *Unit) VqaddqS64(a, b vec.V128) vec.V128 {
	u.rec("vqadd.s64", trace.SIMDALU)
	var r vec.V128
	r.SetI64(0, sat.AddInt64(a.I64(0), b.I64(0)))
	r.SetI64(1, sat.AddInt64(a.I64(1), b.I64(1)))
	return fault(u, faults.SiteALU, r)
}

// VpadalqU8 pairwise add and accumulate long: adjacent byte pairs summed
// into u16 accumulator lanes (vpadal.u8).
func (u *Unit) VpadalqU8(acc, a vec.V128) vec.V128 {
	u.rec("vpadal.u8", trace.SIMDALU)
	var r vec.V128
	for i := 0; i < 8; i++ {
		r.SetU16(i, acc.U16(i)+uint16(a.U8(2*i))+uint16(a.U8(2*i+1)))
	}
	return fault(u, faults.SiteALU, r)
}
