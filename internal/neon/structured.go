package neon

import (
	"simdstudy/internal/faults"
	"simdstudy/internal/trace"
	"simdstudy/internal/vec"
)

// Structured (interleaved) loads and stores. NEON's vld2/vld3/vld4 family
// deinterleaves array-of-structure data in a single instruction — the
// paper's Section II-C highlights these "load/stores between arrays of
// vectors" as a NEON capability SSE2 lacks, and they are what make NEON
// color-conversion kernels so effective (the related-work Tegra study's
// 9.5x color conversion).

// Vld2U8 loads 16 bytes of 2-way interleaved data into two D registers
// (vld2.8): out[0] gets even-indexed bytes, out[1] odd-indexed.
func (u *Unit) Vld2U8(p []uint8) [2]vec.V64 {
	u.recMem("vld2.8", trace.SIMDLoad, 16)
	p = skewed(u, faults.SiteLoad, p, 16)
	var out [2]vec.V64
	for i := 0; i < 8; i++ {
		out[0].SetU8(i, p[2*i])
		out[1].SetU8(i, p[2*i+1])
	}
	out[0] = fault(u, faults.SiteLoad, out[0])
	return out
}

// Vld3U8 loads 24 bytes of 3-way interleaved data (e.g. RGB pixels) into
// three D registers (vld3.8).
func (u *Unit) Vld3U8(p []uint8) [3]vec.V64 {
	u.recMem("vld3.8", trace.SIMDLoad, 24)
	p = skewed(u, faults.SiteLoad, p, 24)
	var out [3]vec.V64
	for i := 0; i < 8; i++ {
		out[0].SetU8(i, p[3*i])
		out[1].SetU8(i, p[3*i+1])
		out[2].SetU8(i, p[3*i+2])
	}
	out[0] = fault(u, faults.SiteLoad, out[0])
	return out
}

// Vld4U8 loads 32 bytes of 4-way interleaved data (e.g. RGBA pixels) into
// four D registers (vld4.8).
func (u *Unit) Vld4U8(p []uint8) [4]vec.V64 {
	u.recMem("vld4.8", trace.SIMDLoad, 32)
	p = skewed(u, faults.SiteLoad, p, 32)
	var out [4]vec.V64
	for i := 0; i < 8; i++ {
		out[0].SetU8(i, p[4*i])
		out[1].SetU8(i, p[4*i+1])
		out[2].SetU8(i, p[4*i+2])
		out[3].SetU8(i, p[4*i+3])
	}
	out[0] = fault(u, faults.SiteLoad, out[0])
	return out
}

// Vst2U8 stores two D registers as 2-way interleaved bytes (vst2.8).
func (u *Unit) Vst2U8(p []uint8, v [2]vec.V64) {
	u.recMem("vst2.8", trace.SIMDStore, 16)
	p = skewed(u, faults.SiteStore, p, 16)
	v[0] = fault(u, faults.SiteStore, v[0])
	for i := 0; i < 8; i++ {
		p[2*i] = v[0].U8(i)
		p[2*i+1] = v[1].U8(i)
	}
}

// Vst3U8 stores three D registers as 3-way interleaved bytes (vst3.8).
func (u *Unit) Vst3U8(p []uint8, v [3]vec.V64) {
	u.recMem("vst3.8", trace.SIMDStore, 24)
	p = skewed(u, faults.SiteStore, p, 24)
	v[0] = fault(u, faults.SiteStore, v[0])
	for i := 0; i < 8; i++ {
		p[3*i] = v[0].U8(i)
		p[3*i+1] = v[1].U8(i)
		p[3*i+2] = v[2].U8(i)
	}
}

// Vst4U8 stores four D registers as 4-way interleaved bytes (vst4.8).
func (u *Unit) Vst4U8(p []uint8, v [4]vec.V64) {
	u.recMem("vst4.8", trace.SIMDStore, 32)
	p = skewed(u, faults.SiteStore, p, 32)
	v[0] = fault(u, faults.SiteStore, v[0])
	for i := 0; i < 8; i++ {
		p[4*i] = v[0].U8(i)
		p[4*i+1] = v[1].U8(i)
		p[4*i+2] = v[2].U8(i)
		p[4*i+3] = v[3].U8(i)
	}
}

// Vld2qU8 loads 32 bytes of 2-way interleaved data into two Q registers
// (vld2.8 with quad registers).
func (u *Unit) Vld2qU8(p []uint8) [2]vec.V128 {
	u.recMem("vld2.8", trace.SIMDLoad, 32)
	p = skewed(u, faults.SiteLoad, p, 32)
	var out [2]vec.V128
	for i := 0; i < 16; i++ {
		out[0].SetU8(i, p[2*i])
		out[1].SetU8(i, p[2*i+1])
	}
	out[0] = fault(u, faults.SiteLoad, out[0])
	return out
}

// Vst2qU8 stores two Q registers as 2-way interleaved bytes.
func (u *Unit) Vst2qU8(p []uint8, v [2]vec.V128) {
	u.recMem("vst2.8", trace.SIMDStore, 32)
	p = skewed(u, faults.SiteStore, p, 32)
	v[0] = fault(u, faults.SiteStore, v[0])
	for i := 0; i < 16; i++ {
		p[2*i] = v[0].U8(i)
		p[2*i+1] = v[1].U8(i)
	}
}
