// Package neon is a bit-exact software emulation of the ARMv7 Advanced SIMD
// (NEON) intrinsic functions used by the paper, together with dynamic
// instruction accounting.
//
// Intrinsics are methods on a Unit. Each call both computes the exact NEON
// result on vec.V64 (D register) / vec.V128 (Q register) values and records
// the retired instruction into the Unit's trace.Counter, so kernels written
// against this package yield real instruction-per-pixel counts for the
// timing model. A Unit with a nil counter skips accounting and is safe to
// use as a pure functional SIMD library.
//
// Method names follow the ARM intrinsic naming convention from the paper's
// Section II-C ([intrin_op][flags]_[type]): vld1q_f32 becomes Vld1qF32,
// vqmovn_s32 becomes VqmovnS32, and so on. The q flag denotes quad-word
// (128-bit) Q-register forms.
package neon

import (
	"simdstudy/internal/faults"
	"simdstudy/internal/obs"
	"simdstudy/internal/trace"
	"simdstudy/internal/vec"
)

// Unit is an emulated NEON execution unit. The zero value performs no
// instruction accounting.
type Unit struct {
	T *trace.Counter

	// F, when non-nil, is consulted at every instrumented intrinsic and may
	// corrupt the value produced (or the address used), turning the unit
	// into a fault-injection target. See internal/faults.
	F faults.Injector

	// Obs, when non-nil, receives Session spans so stretches of intrinsic
	// work appear as slices in the exported Chrome trace.
	Obs *obs.Registry
}

// New returns a Unit recording into t (which may be nil).
func New(t *trace.Counter) *Unit { return &Unit{T: t} }

// Session opens an observability span named "neon.<name>" covering a
// stretch of intrinsic work (one SIMD pass of a kernel, a custom-kernel
// run). The span samples the unit's trace counter so its instruction
// delta is attributed on End. Nested under parent when given; returns nil
// (all methods of which are no-ops) when no registry is attached.
func (u *Unit) Session(name string, parent *obs.Span) *obs.Span {
	if u.Obs == nil {
		return nil
	}
	var sp *obs.Span
	if parent != nil {
		sp = parent.Child("neon." + name)
	} else {
		sp = u.Obs.StartSpan("neon." + name)
	}
	if t := u.T; t != nil {
		sp.SampleInstr(t.Total)
	}
	return sp
}

// fault routes an intrinsic result (or store operand) through the unit's
// fault hook, if any. It is the single choke point fault injection uses, so
// every instrumented intrinsic is a potential fault site.
func fault[V vec.V128 | vec.V64](u *Unit, site faults.Site, r V) V {
	if u.F == nil {
		return r
	}
	switch v := any(r).(type) {
	case vec.V128:
		return any(u.F.V128(site, v)).(V)
	case vec.V64:
		return any(u.F.V64(site, v)).(V)
	}
	return r
}

// skewed gives the fault hook a chance to slip a load/store base address by
// one element, provided the slice has slack beyond the need elements the
// intrinsic will touch (a real address slip would fault otherwise).
func skewed[T any](u *Unit, site faults.Site, p []T, need int) []T {
	if u.F == nil {
		return p
	}
	if off := u.F.Skew(site, len(p)-need); off > 0 {
		return p[off:]
	}
	return p
}

func (u *Unit) rec(name string, class trace.Class) {
	if u.T != nil {
		u.T.Record(trace.Op{Name: name, Class: class})
	}
}

func (u *Unit) recMem(name string, class trace.Class, bytes int) {
	if u.T != nil {
		u.T.Record(trace.Op{Name: name, Class: class, Bytes: bytes})
	}
}

// Overhead records loop/address bookkeeping instructions that surround the
// intrinsic body in compiled code: the paper's Section V counts 6 such
// instructions (address adds, compare, branch, moves) per 8-pixel iteration.
func (u *Unit) Overhead(addrCalcs, branches, moves int) {
	if u.T == nil {
		return
	}
	u.T.RecordN("add/mov(addr)", trace.AddrCalc, uint64(addrCalcs), 0)
	u.T.RecordN("cmp+b", trace.Branch, uint64(branches), 0)
	u.T.RecordN("mov", trace.Move, uint64(moves), 0)
}

// --- Data movement: loads ---

// Vld1qF32 loads four consecutive float32 (vld1.32 {dN-dN+1}).
func (u *Unit) Vld1qF32(p []float32) vec.V128 {
	u.recMem("vld1.32", trace.SIMDLoad, 16)
	p = skewed(u, faults.SiteLoad, p, 4)
	return fault(u, faults.SiteLoad, vec.FromF32x4([4]float32{p[0], p[1], p[2], p[3]}))
}

// Vld1F32 loads two consecutive float32 into a D register.
func (u *Unit) Vld1F32(p []float32) vec.V64 {
	u.recMem("vld1.32", trace.SIMDLoad, 8)
	p = skewed(u, faults.SiteLoad, p, 2)
	return fault(u, faults.SiteLoad, vec.FromF32x2([2]float32{p[0], p[1]}))
}

// Vld1qU8 loads sixteen consecutive uint8.
func (u *Unit) Vld1qU8(p []uint8) vec.V128 {
	u.recMem("vld1.8", trace.SIMDLoad, 16)
	p = skewed(u, faults.SiteLoad, p, 16)
	var a [16]uint8
	copy(a[:], p[:16])
	return fault(u, faults.SiteLoad, vec.FromU8x16(a))
}

// Vld1U8 loads eight consecutive uint8 into a D register.
func (u *Unit) Vld1U8(p []uint8) vec.V64 {
	u.recMem("vld1.8", trace.SIMDLoad, 8)
	p = skewed(u, faults.SiteLoad, p, 8)
	var a [8]uint8
	copy(a[:], p[:8])
	return fault(u, faults.SiteLoad, vec.FromU8x8(a))
}

// Vld1qS8 loads sixteen consecutive int8.
func (u *Unit) Vld1qS8(p []int8) vec.V128 {
	u.recMem("vld1.8", trace.SIMDLoad, 16)
	p = skewed(u, faults.SiteLoad, p, 16)
	var a [16]int8
	copy(a[:], p[:16])
	return fault(u, faults.SiteLoad, vec.FromI8x16(a))
}

// Vld1qS16 loads eight consecutive int16.
func (u *Unit) Vld1qS16(p []int16) vec.V128 {
	u.recMem("vld1.16", trace.SIMDLoad, 16)
	p = skewed(u, faults.SiteLoad, p, 8)
	var a [8]int16
	copy(a[:], p[:8])
	return fault(u, faults.SiteLoad, vec.FromI16x8(a))
}

// Vld1S16 loads four consecutive int16 into a D register.
func (u *Unit) Vld1S16(p []int16) vec.V64 {
	u.recMem("vld1.16", trace.SIMDLoad, 8)
	p = skewed(u, faults.SiteLoad, p, 4)
	var a [4]int16
	copy(a[:], p[:4])
	return fault(u, faults.SiteLoad, vec.FromI16x4(a))
}

// Vld1qU16 loads eight consecutive uint16.
func (u *Unit) Vld1qU16(p []uint16) vec.V128 {
	u.recMem("vld1.16", trace.SIMDLoad, 16)
	p = skewed(u, faults.SiteLoad, p, 8)
	var a [8]uint16
	copy(a[:], p[:8])
	return fault(u, faults.SiteLoad, vec.FromU16x8(a))
}

// Vld1qS32 loads four consecutive int32.
func (u *Unit) Vld1qS32(p []int32) vec.V128 {
	u.recMem("vld1.32", trace.SIMDLoad, 16)
	p = skewed(u, faults.SiteLoad, p, 4)
	var a [4]int32
	copy(a[:], p[:4])
	return fault(u, faults.SiteLoad, vec.FromI32x4(a))
}

// Vld1qU32 loads four consecutive uint32.
func (u *Unit) Vld1qU32(p []uint32) vec.V128 {
	u.recMem("vld1.32", trace.SIMDLoad, 16)
	p = skewed(u, faults.SiteLoad, p, 4)
	var a [4]uint32
	copy(a[:], p[:4])
	return fault(u, faults.SiteLoad, vec.FromU32x4(a))
}

// --- Data movement: stores ---

// Vst1qF32 stores four float32 (vst1.32).
func (u *Unit) Vst1qF32(p []float32, v vec.V128) {
	u.recMem("vst1.32", trace.SIMDStore, 16)
	p = skewed(u, faults.SiteStore, p, 4)
	v = fault(u, faults.SiteStore, v)
	f := v.ToF32x4()
	copy(p[:4], f[:])
}

// Vst1qS16 stores eight int16 (vst1.16). This is the final instruction of
// the paper's hand-optimized convert loop.
func (u *Unit) Vst1qS16(p []int16, v vec.V128) {
	u.recMem("vst1.16", trace.SIMDStore, 16)
	p = skewed(u, faults.SiteStore, p, 8)
	v = fault(u, faults.SiteStore, v)
	x := v.ToI16x8()
	copy(p[:8], x[:])
}

// Vst1S16 stores four int16 from a D register.
func (u *Unit) Vst1S16(p []int16, v vec.V64) {
	u.recMem("vst1.16", trace.SIMDStore, 8)
	p = skewed(u, faults.SiteStore, p, 4)
	v = fault(u, faults.SiteStore, v)
	x := v.ToI16x4()
	copy(p[:4], x[:])
}

// Vst1qU8 stores sixteen uint8.
func (u *Unit) Vst1qU8(p []uint8, v vec.V128) {
	u.recMem("vst1.8", trace.SIMDStore, 16)
	p = skewed(u, faults.SiteStore, p, 16)
	v = fault(u, faults.SiteStore, v)
	x := v.ToU8x16()
	copy(p[:16], x[:])
}

// Vst1U8 stores eight uint8 from a D register.
func (u *Unit) Vst1U8(p []uint8, v vec.V64) {
	u.recMem("vst1.8", trace.SIMDStore, 8)
	p = skewed(u, faults.SiteStore, p, 8)
	v = fault(u, faults.SiteStore, v)
	x := v.ToU8x8()
	copy(p[:8], x[:])
}

// Vst1qU16 stores eight uint16.
func (u *Unit) Vst1qU16(p []uint16, v vec.V128) {
	u.recMem("vst1.16", trace.SIMDStore, 16)
	p = skewed(u, faults.SiteStore, p, 8)
	v = fault(u, faults.SiteStore, v)
	x := v.ToU16x8()
	copy(p[:8], x[:])
}

// Vst1qS32 stores four int32.
func (u *Unit) Vst1qS32(p []int32, v vec.V128) {
	u.recMem("vst1.32", trace.SIMDStore, 16)
	p = skewed(u, faults.SiteStore, p, 4)
	v = fault(u, faults.SiteStore, v)
	x := v.ToI32x4()
	copy(p[:4], x[:])
}

// Vst1qU32 stores four uint32.
func (u *Unit) Vst1qU32(p []uint32, v vec.V128) {
	u.recMem("vst1.32", trace.SIMDStore, 16)
	p = skewed(u, faults.SiteStore, p, 4)
	v = fault(u, faults.SiteStore, v)
	x := v.ToU32x4()
	copy(p[:4], x[:])
}

// --- Duplication / set ---

// VdupqNF32 broadcasts a scalar float into all four lanes (vdup.32).
func (u *Unit) VdupqNF32(x float32) vec.V128 {
	u.rec("vdup.32", trace.SIMDShuffle)
	return vec.FromF32x4([4]float32{x, x, x, x})
}

// VdupqNS16 broadcasts a scalar int16 into all eight lanes.
func (u *Unit) VdupqNS16(x int16) vec.V128 {
	u.rec("vdup.16", trace.SIMDShuffle)
	return vec.FromI16x8([8]int16{x, x, x, x, x, x, x, x})
}

// VdupqNU16 broadcasts a scalar uint16 into all eight lanes.
func (u *Unit) VdupqNU16(x uint16) vec.V128 {
	u.rec("vdup.16", trace.SIMDShuffle)
	return vec.FromU16x8([8]uint16{x, x, x, x, x, x, x, x})
}

// VdupqNU8 broadcasts a scalar uint8 into all sixteen lanes.
func (u *Unit) VdupqNU8(x uint8) vec.V128 {
	u.rec("vdup.8", trace.SIMDShuffle)
	var a [16]uint8
	for i := range a {
		a[i] = x
	}
	return vec.FromU8x16(a)
}

// VdupqNS32 broadcasts a scalar int32 into all four lanes.
func (u *Unit) VdupqNS32(x int32) vec.V128 {
	u.rec("vdup.32", trace.SIMDShuffle)
	return vec.FromI32x4([4]int32{x, x, x, x})
}

// VdupqNU32 broadcasts a scalar uint32 into all four lanes.
func (u *Unit) VdupqNU32(x uint32) vec.V128 {
	u.rec("vdup.32", trace.SIMDShuffle)
	return vec.FromU32x4([4]uint32{x, x, x, x})
}

// VdupNU8 broadcasts a scalar uint8 into all eight D-register lanes.
func (u *Unit) VdupNU8(x uint8) vec.V64 {
	u.rec("vdup.8", trace.SIMDShuffle)
	var a [8]uint8
	for i := range a {
		a[i] = x
	}
	return vec.FromU8x8(a)
}

// VdupNS16 broadcasts a scalar int16 into all four D-register lanes.
func (u *Unit) VdupNS16(x int16) vec.V64 {
	u.rec("vdup.16", trace.SIMDShuffle)
	return vec.FromI16x4([4]int16{x, x, x, x})
}

// VmovqNF32 is an alias of VdupqNF32 (the vmovq_n_f32 intrinsic).
func (u *Unit) VmovqNF32(x float32) vec.V128 { return u.VdupqNF32(x) }

// --- Register rearrangement ---

// VcombineS16 concatenates two D registers into one Q register
// (vcombine_s16). The paper observes gcc lowering this to a vorr/vmov.
func (u *Unit) VcombineS16(lo, hi vec.V64) vec.V128 {
	u.rec("vorr", trace.Move) // lowered to a register move, per Section V
	return vec.Combine(lo, hi)
}

// VcombineU8 concatenates two D registers of bytes.
func (u *Unit) VcombineU8(lo, hi vec.V64) vec.V128 {
	u.rec("vorr", trace.Move)
	return vec.Combine(lo, hi)
}

// VcombineU16 concatenates two D registers of uint16.
func (u *Unit) VcombineU16(lo, hi vec.V64) vec.V128 {
	u.rec("vorr", trace.Move)
	return vec.Combine(lo, hi)
}

// VcombineF32 concatenates two D registers of float32.
func (u *Unit) VcombineF32(lo, hi vec.V64) vec.V128 {
	u.rec("vorr", trace.Move)
	return vec.Combine(lo, hi)
}

// VgetLowS16 extracts the low D register of a Q register. This is free in
// hardware (D registers alias Q registers) so no instruction is recorded.
func (u *Unit) VgetLowS16(v vec.V128) vec.V64 { return v.Low() }

// VgetHighS16 extracts the high D register of a Q register (free alias).
func (u *Unit) VgetHighS16(v vec.V128) vec.V64 { return v.High() }

// VgetLowU8 extracts the low D register (free alias).
func (u *Unit) VgetLowU8(v vec.V128) vec.V64 { return v.Low() }

// VgetHighU8 extracts the high D register (free alias).
func (u *Unit) VgetHighU8(v vec.V128) vec.V64 { return v.High() }

// VgetLaneS16 extracts lane i to a core register (vmov.s16 rN, dM[i]).
func (u *Unit) VgetLaneS16(v vec.V64, lane int) int16 {
	u.rec("vmov.s16", trace.Move)
	return v.I16(lane)
}

// VgetqLaneS32 extracts lane i of a Q register to a core register.
func (u *Unit) VgetqLaneS32(v vec.V128, lane int) int32 {
	u.rec("vmov.s32", trace.Move)
	return v.I32(lane)
}

// VgetqLaneF32 extracts float lane i of a Q register.
func (u *Unit) VgetqLaneF32(v vec.V128, lane int) float32 {
	u.rec("vmov.f32", trace.Move)
	return v.F32(lane)
}

// VsetqLaneS16 inserts a scalar into lane i (vmov.16 dM[i], rN).
func (u *Unit) VsetqLaneS16(x int16, v vec.V128, lane int) vec.V128 {
	u.rec("vmov.16", trace.Move)
	v.SetI16(lane, x)
	return v
}

// VextU8 extracts a 16-byte window starting n bytes into the pair (a,b)
// (vext.8 qd, qa, qb, #n): lanes a[n..15], b[0..n-1].
func (u *Unit) VextU8(a, b vec.V128, n int) vec.V128 {
	u.rec("vext.8", trace.SIMDShuffle)
	var r vec.V128
	for i := 0; i < 16; i++ {
		if n+i < 16 {
			r.SetU8(i, a.U8(n+i))
		} else {
			r.SetU8(i, b.U8(n+i-16))
		}
	}
	return r
}

// VextS16 shifts the (a,b) pair by n 16-bit lanes (vext.16).
func (u *Unit) VextS16(a, b vec.V128, n int) vec.V128 {
	u.rec("vext.16", trace.SIMDShuffle)
	var r vec.V128
	for i := 0; i < 8; i++ {
		if n+i < 8 {
			r.SetI16(i, a.I16(n+i))
		} else {
			r.SetI16(i, b.I16(n+i-8))
		}
	}
	return r
}

// Vrev64U8 reverses bytes within each 64-bit doubleword (vrev64.8).
func (u *Unit) Vrev64U8(a vec.V128) vec.V128 {
	u.rec("vrev64.8", trace.SIMDShuffle)
	var r vec.V128
	for d := 0; d < 2; d++ {
		for i := 0; i < 8; i++ {
			r.SetU8(d*8+i, a.U8(d*8+7-i))
		}
	}
	return r
}

// VtrnqS16 transposes pairs of 16-bit lanes between two registers
// (vtrn.16), the building block of NEON matrix transposes.
func (u *Unit) VtrnqS16(a, b vec.V128) (vec.V128, vec.V128) {
	u.rec("vtrn.16", trace.SIMDShuffle)
	var ra, rb vec.V128
	for i := 0; i < 8; i += 2 {
		ra.SetI16(i, a.I16(i))
		ra.SetI16(i+1, b.I16(i))
		rb.SetI16(i, a.I16(i+1))
		rb.SetI16(i+1, b.I16(i+1))
	}
	return ra, rb
}

// VzipqU8 interleaves the lanes of two byte registers (vzip.8).
func (u *Unit) VzipqU8(a, b vec.V128) (vec.V128, vec.V128) {
	u.rec("vzip.8", trace.SIMDShuffle)
	var lo, hi vec.V128
	for i := 0; i < 8; i++ {
		lo.SetU8(2*i, a.U8(i))
		lo.SetU8(2*i+1, b.U8(i))
		hi.SetU8(2*i, a.U8(8+i))
		hi.SetU8(2*i+1, b.U8(8+i))
	}
	return lo, hi
}

// VuzpqU8 deinterleaves lanes of two byte registers (vuzp.8).
func (u *Unit) VuzpqU8(a, b vec.V128) (vec.V128, vec.V128) {
	u.rec("vuzp.8", trace.SIMDShuffle)
	var ev, od vec.V128
	var all [32]uint8
	aa, bb := a.ToU8x16(), b.ToU8x16()
	copy(all[:16], aa[:])
	copy(all[16:], bb[:])
	for i := 0; i < 16; i++ {
		ev.SetU8(i, all[2*i])
		od.SetU8(i, all[2*i+1])
	}
	return ev, od
}

// VtblU8 performs a table lookup (vtbl.8): each index lane of idx selects a
// byte from table t; out-of-range indexes produce zero.
func (u *Unit) VtblU8(t vec.V64, idx vec.V64) vec.V64 {
	u.rec("vtbl.8", trace.SIMDShuffle)
	var r vec.V64
	for i := 0; i < 8; i++ {
		j := int(idx.U8(i))
		if j < 8 {
			r.SetU8(i, t.U8(j))
		}
	}
	return r
}

// VreinterpretqS16U8 reinterprets bits with no instruction cost, like the
// hardware register aliasing it models.
func (u *Unit) VreinterpretqS16U8(v vec.V128) vec.V128 { return v }

// VreinterpretqU8S16 reinterprets bits (free).
func (u *Unit) VreinterpretqU8S16(v vec.V128) vec.V128 { return v }

// VreinterpretqU16S16 reinterprets bits (free).
func (u *Unit) VreinterpretqU16S16(v vec.V128) vec.V128 { return v }

// VreinterpretqS16U16 reinterprets bits (free).
func (u *Unit) VreinterpretqS16U16(v vec.V128) vec.V128 { return v }
