package neon

import (
	"simdstudy/internal/faults"
	"simdstudy/internal/trace"
	"simdstudy/internal/vec"
)

// --- Bitwise logical ---

// VandqU8 bitwise AND (vand).
func (u *Unit) VandqU8(a, b vec.V128) vec.V128 {
	u.rec("vand", trace.SIMDALU)
	return vec.And(a, b)
}

// VandqU16 bitwise AND (vand); NEON bitwise ops are type-blind.
func (u *Unit) VandqU16(a, b vec.V128) vec.V128 {
	u.rec("vand", trace.SIMDALU)
	return vec.And(a, b)
}

// VandqS16 bitwise AND (vand).
func (u *Unit) VandqS16(a, b vec.V128) vec.V128 {
	u.rec("vand", trace.SIMDALU)
	return vec.And(a, b)
}

// VorrqU8 bitwise OR (vorr).
func (u *Unit) VorrqU8(a, b vec.V128) vec.V128 {
	u.rec("vorr", trace.SIMDALU)
	return vec.Or(a, b)
}

// VorrqS16 bitwise OR (vorr).
func (u *Unit) VorrqS16(a, b vec.V128) vec.V128 {
	u.rec("vorr", trace.SIMDALU)
	return vec.Or(a, b)
}

// VeorqU8 bitwise XOR (veor).
func (u *Unit) VeorqU8(a, b vec.V128) vec.V128 {
	u.rec("veor", trace.SIMDALU)
	return vec.Xor(a, b)
}

// VmvnqU8 bitwise NOT (vmvn).
func (u *Unit) VmvnqU8(a vec.V128) vec.V128 {
	u.rec("vmvn", trace.SIMDALU)
	return vec.Not(a)
}

// VbicqU8 bit clear: a & ^b (vbic).
func (u *Unit) VbicqU8(a, b vec.V128) vec.V128 {
	u.rec("vbic", trace.SIMDALU)
	return vec.And(a, vec.Not(b))
}

// VornqU8 OR complement: a | ^b (vorn).
func (u *Unit) VornqU8(a, b vec.V128) vec.V128 {
	u.rec("vorn", trace.SIMDALU)
	return vec.Or(a, vec.Not(b))
}

// VbslqU8 bitwise select: mask bits choose a, clear bits choose b (vbsl).
func (u *Unit) VbslqU8(mask, a, b vec.V128) vec.V128 {
	u.rec("vbsl", trace.SIMDALU)
	return vec.Select(mask, a, b)
}

// VbslqS16 bitwise select on int16-typed registers (vbsl is type-blind).
func (u *Unit) VbslqS16(mask, a, b vec.V128) vec.V128 {
	u.rec("vbsl", trace.SIMDALU)
	return vec.Select(mask, a, b)
}

// VbslqF32 bitwise select on float-typed registers.
func (u *Unit) VbslqF32(mask, a, b vec.V128) vec.V128 {
	u.rec("vbsl", trace.SIMDALU)
	return vec.Select(mask, a, b)
}

// --- Comparisons (all produce all-ones / all-zero lane masks) ---

func boolMask16(c bool) uint16 {
	if c {
		return 0xFFFF
	}
	return 0
}

func boolMask8(c bool) uint8 {
	if c {
		return 0xFF
	}
	return 0
}

func boolMask32(c bool) uint32 {
	if c {
		return 0xFFFFFFFF
	}
	return 0
}

// VcgtqU8 compare greater-than, unsigned bytes (vcgt.u8).
func (u *Unit) VcgtqU8(a, b vec.V128) vec.V128 {
	u.rec("vcgt.u8", trace.SIMDALU)
	var r vec.V128
	for i := 0; i < 16; i++ {
		r.SetU8(i, boolMask8(a.U8(i) > b.U8(i)))
	}
	return fault(u, faults.SiteALU, r)
}

// VcgeqU8 compare greater-or-equal, unsigned bytes (vcge.u8).
func (u *Unit) VcgeqU8(a, b vec.V128) vec.V128 {
	u.rec("vcge.u8", trace.SIMDALU)
	var r vec.V128
	for i := 0; i < 16; i++ {
		r.SetU8(i, boolMask8(a.U8(i) >= b.U8(i)))
	}
	return fault(u, faults.SiteALU, r)
}

// VcltqU8 compare less-than, unsigned bytes (vclt.u8).
func (u *Unit) VcltqU8(a, b vec.V128) vec.V128 {
	u.rec("vclt.u8", trace.SIMDALU)
	var r vec.V128
	for i := 0; i < 16; i++ {
		r.SetU8(i, boolMask8(a.U8(i) < b.U8(i)))
	}
	return fault(u, faults.SiteALU, r)
}

// VceqqU8 compare equal, bytes (vceq.i8).
func (u *Unit) VceqqU8(a, b vec.V128) vec.V128 {
	u.rec("vceq.i8", trace.SIMDALU)
	var r vec.V128
	for i := 0; i < 16; i++ {
		r.SetU8(i, boolMask8(a.U8(i) == b.U8(i)))
	}
	return fault(u, faults.SiteALU, r)
}

// VcgtqS16 compare greater-than, int16 (vcgt.s16).
func (u *Unit) VcgtqS16(a, b vec.V128) vec.V128 {
	u.rec("vcgt.s16", trace.SIMDALU)
	var r vec.V128
	for i := 0; i < 8; i++ {
		r.SetU16(i, boolMask16(a.I16(i) > b.I16(i)))
	}
	return fault(u, faults.SiteALU, r)
}

// VcgeqS16 compare greater-or-equal, int16 (vcge.s16).
func (u *Unit) VcgeqS16(a, b vec.V128) vec.V128 {
	u.rec("vcge.s16", trace.SIMDALU)
	var r vec.V128
	for i := 0; i < 8; i++ {
		r.SetU16(i, boolMask16(a.I16(i) >= b.I16(i)))
	}
	return fault(u, faults.SiteALU, r)
}

// VcltqS16 compare less-than, int16 (vclt.s16).
func (u *Unit) VcltqS16(a, b vec.V128) vec.V128 {
	u.rec("vclt.s16", trace.SIMDALU)
	var r vec.V128
	for i := 0; i < 8; i++ {
		r.SetU16(i, boolMask16(a.I16(i) < b.I16(i)))
	}
	return fault(u, faults.SiteALU, r)
}

// VceqqS16 compare equal, int16 (vceq.i16).
func (u *Unit) VceqqS16(a, b vec.V128) vec.V128 {
	u.rec("vceq.i16", trace.SIMDALU)
	var r vec.V128
	for i := 0; i < 8; i++ {
		r.SetU16(i, boolMask16(a.I16(i) == b.I16(i)))
	}
	return fault(u, faults.SiteALU, r)
}

// VcgtqF32 compare greater-than, float (vcgt.f32).
func (u *Unit) VcgtqF32(a, b vec.V128) vec.V128 {
	u.rec("vcgt.f32", trace.SIMDALU)
	var r vec.V128
	for i := 0; i < 4; i++ {
		r.SetU32(i, boolMask32(a.F32(i) > b.F32(i)))
	}
	return fault(u, faults.SiteALU, r)
}

// VcgeqF32 compare greater-or-equal, float (vcge.f32).
func (u *Unit) VcgeqF32(a, b vec.V128) vec.V128 {
	u.rec("vcge.f32", trace.SIMDALU)
	var r vec.V128
	for i := 0; i < 4; i++ {
		r.SetU32(i, boolMask32(a.F32(i) >= b.F32(i)))
	}
	return fault(u, faults.SiteALU, r)
}

// VcltqF32 compare less-than, float (vclt.f32).
func (u *Unit) VcltqF32(a, b vec.V128) vec.V128 {
	u.rec("vclt.f32", trace.SIMDALU)
	var r vec.V128
	for i := 0; i < 4; i++ {
		r.SetU32(i, boolMask32(a.F32(i) < b.F32(i)))
	}
	return fault(u, faults.SiteALU, r)
}

// VceqqF32 compare equal, float (vceq.f32).
func (u *Unit) VceqqF32(a, b vec.V128) vec.V128 {
	u.rec("vceq.f32", trace.SIMDALU)
	var r vec.V128
	for i := 0; i < 4; i++ {
		r.SetU32(i, boolMask32(a.F32(i) == b.F32(i)))
	}
	return fault(u, faults.SiteALU, r)
}

// VcagtqF32 compare absolute greater-than |a| > |b| (vacgt.f32).
func (u *Unit) VcagtqF32(a, b vec.V128) vec.V128 {
	u.rec("vacgt.f32", trace.SIMDALU)
	var r vec.V128
	for i := 0; i < 4; i++ {
		x, y := a.F32(i), b.F32(i)
		if x < 0 {
			x = -x
		}
		if y < 0 {
			y = -y
		}
		r.SetU32(i, boolMask32(x > y))
	}
	return fault(u, faults.SiteALU, r)
}

// VtstqU8 test bits: lane mask set where a&b is nonzero (vtst.8).
func (u *Unit) VtstqU8(a, b vec.V128) vec.V128 {
	u.rec("vtst.8", trace.SIMDALU)
	var r vec.V128
	for i := 0; i < 16; i++ {
		r.SetU8(i, boolMask8(a.U8(i)&b.U8(i) != 0))
	}
	return fault(u, faults.SiteALU, r)
}
