package serve

import (
	"net/url"
	"testing"
	"time"
)

// FuzzParseRequest hammers the request decoder with arbitrary query
// strings: malformed input must come back as an error (the handler's 400),
// never a panic, and every accepted request must sit inside the configured
// resource bounds so no request-controlled size reaches an allocation.
func FuzzParseRequest(f *testing.F) {
	f.Add("kernel=gaussian&width=64&height=48")
	f.Add("kernel=resize&width=640&height=480&isa=sse2&seed=9&deadline_ms=100")
	f.Add("kernel=convert&width=1&height=1&isa=scalar")
	f.Add("kernel=warp&width=64&height=48")
	f.Add("width=-1&height=99999999999999999999")
	f.Add("kernel=gaussian&width=1048576&height=1048576")
	f.Add("kernel=gaussian&width=64&height=48&deadline_ms=-5")
	f.Add("%gh&%ij=%zz")
	f.Add("kernel=gaussian&kernel=sobel&width=64&width=2&height=48")

	lim := Limits{MaxPixels: 1 << 22, DefaultDeadline: 2 * time.Second, MaxDeadline: 10 * time.Second}
	f.Fuzz(func(t *testing.T, raw string) {
		vals, err := url.ParseQuery(raw)
		if err != nil {
			return // transport-level reject; the decoder never sees it
		}
		req, err := ParseRequest(vals, lim)
		if err != nil {
			return // 400: any error is acceptable, panics are not
		}
		if req.Width < 1 || req.Height < 1 || req.Width > maxDim || req.Height > maxDim {
			t.Fatalf("accepted out-of-range dims %dx%d from %q", req.Width, req.Height, raw)
		}
		if int64(req.Width)*int64(req.Height) > int64(lim.MaxPixels) {
			t.Fatalf("accepted %dx%d over the pixel limit from %q", req.Width, req.Height, raw)
		}
		if req.Deadline <= 0 || req.Deadline > lim.MaxDeadline {
			t.Fatalf("accepted deadline %v outside (0, %v] from %q", req.Deadline, lim.MaxDeadline, raw)
		}
		if _, ok := kernels[req.Kernel]; !ok {
			t.Fatalf("accepted unknown kernel %q from %q", req.Kernel, raw)
		}
	})
}
