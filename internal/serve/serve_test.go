package serve

import (
	"encoding/json"
	"io"
	"net/http"
	"net/http/httptest"
	"net/url"
	"strings"
	"sync"
	"testing"
	"time"

	"simdstudy/internal/cv"
	"simdstudy/internal/faults"
	"simdstudy/internal/vec"
)

// saboteur is a stateless injector that corrupts every ALU intrinsic
// result; stateless so it is trivially safe for concurrent Ops.
type saboteur struct{}

func (saboteur) V128(site faults.Site, v vec.V128) vec.V128 {
	if site == faults.SiteALU {
		v[0] ^= 0x40
	}
	return v
}
func (saboteur) V64(_ faults.Site, v vec.V64) vec.V64 { return v }
func (saboteur) Skew(faults.Site, int) int            { return 0 }

// testClock is a settable time source for deterministic breaker cooldowns.
type testClock struct {
	mu sync.Mutex
	t  time.Time
}

func (c *testClock) Now() time.Time {
	c.mu.Lock()
	defer c.mu.Unlock()
	return c.t
}

func (c *testClock) Advance(d time.Duration) {
	c.mu.Lock()
	defer c.mu.Unlock()
	c.t = c.t.Add(d)
}

// get fetches a URL and decodes the JSON body.
func get(t *testing.T, url string) (int, map[string]any) {
	t.Helper()
	resp, err := http.Get(url)
	if err != nil {
		t.Fatalf("GET %s: %v", url, err)
	}
	defer resp.Body.Close()
	var body map[string]any
	if err := json.NewDecoder(resp.Body).Decode(&body); err != nil {
		t.Fatalf("GET %s: bad JSON: %v", url, err)
	}
	return resp.StatusCode, body
}

func TestParseRequest(t *testing.T) {
	lim := Limits{MaxPixels: 1 << 20, DefaultDeadline: 2 * time.Second, MaxDeadline: 10 * time.Second}
	cases := []struct {
		name  string
		query string
		ok    bool
	}{
		{"valid minimal", "kernel=gaussian&width=64&height=48", true},
		{"valid full", "kernel=sobel&width=64&height=48&isa=sse2&seed=7&deadline_ms=100", true},
		{"missing kernel", "width=64&height=48", false},
		{"unknown kernel", "kernel=warp&width=64&height=48", false},
		{"missing width", "kernel=gaussian&height=48", false},
		{"zero height", "kernel=gaussian&width=64&height=0", false},
		{"negative width", "kernel=gaussian&width=-3&height=48", false},
		{"dim not a number", "kernel=gaussian&width=abc&height=48", false},
		{"pixel bomb", "kernel=gaussian&width=1048576&height=1048576", false},
		{"bad isa", "kernel=gaussian&width=64&height=48&isa=avx512", false},
		{"bad seed", "kernel=gaussian&width=64&height=48&seed=-1", false},
		{"zero deadline", "kernel=gaussian&width=64&height=48&deadline_ms=0", false},
		{"bad deadline", "kernel=gaussian&width=64&height=48&deadline_ms=soon", false},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			vals, err := url.ParseQuery(tc.query)
			if err != nil {
				t.Fatal(err)
			}
			req, err := ParseRequest(vals, lim)
			if (err == nil) != tc.ok {
				t.Fatalf("err = %v, want ok=%v", err, tc.ok)
			}
			if err == nil && int64(req.Width)*int64(req.Height) > int64(lim.MaxPixels) {
				t.Errorf("accepted %dx%d over the pixel limit", req.Width, req.Height)
			}
		})
	}

	t.Run("defaults and capping", func(t *testing.T) {
		vals, _ := url.ParseQuery("kernel=gaussian&width=64&height=48")
		req, err := ParseRequest(vals, lim)
		if err != nil {
			t.Fatal(err)
		}
		if req.Deadline != lim.DefaultDeadline || req.Seed != 1 {
			t.Errorf("defaults: deadline %v seed %d", req.Deadline, req.Seed)
		}
		vals, _ = url.ParseQuery("kernel=gaussian&width=64&height=48&deadline_ms=99999999")
		req, err = ParseRequest(vals, lim)
		if err != nil {
			t.Fatal(err)
		}
		if req.Deadline != lim.MaxDeadline {
			t.Errorf("deadline %v not capped to %v", req.Deadline, lim.MaxDeadline)
		}
	})
}

func TestProcessSuccessAndDeterminism(t *testing.T) {
	s := NewServer(Config{})
	ts := httptest.NewServer(s.Handler())
	defer ts.Close()

	code, body := get(t, ts.URL+"/process?kernel=gaussian&width=64&height=48&isa=neon")
	if code != http.StatusOK {
		t.Fatalf("status %d body %v", code, body)
	}
	if body["kernel"] != "GaussianBlur" || body["isa"] != "neon" || body["breaker"] != "closed" {
		t.Errorf("body = %v", body)
	}

	// Identical requests must produce identical checksums, and with no
	// faults the SIMD path must equal the scalar path bit-for-bit.
	_, again := get(t, ts.URL+"/process?kernel=gaussian&width=64&height=48&isa=neon")
	_, scalar := get(t, ts.URL+"/process?kernel=gaussian&width=64&height=48&isa=scalar")
	if body["checksum"] != again["checksum"] {
		t.Errorf("nondeterministic checksum: %v vs %v", body["checksum"], again["checksum"])
	}
	if body["checksum"] != scalar["checksum"] {
		t.Errorf("neon checksum %v != scalar checksum %v", body["checksum"], scalar["checksum"])
	}
}

func TestProcessBadRequests(t *testing.T) {
	s := NewServer(Config{})
	ts := httptest.NewServer(s.Handler())
	defer ts.Close()
	for _, q := range []string{
		"kernel=warp&width=64&height=48",
		"kernel=gaussian&width=0&height=48",
		"kernel=resize&width=1&height=1", // half-size destination collapses to 0x0
	} {
		if code, _ := get(t, ts.URL+"/process?"+q); code != http.StatusBadRequest {
			t.Errorf("%s: status %d, want 400", q, code)
		}
	}
}

func TestHealthMetricsAndDrain(t *testing.T) {
	s := NewServer(Config{})
	ts := httptest.NewServer(s.Handler())
	defer ts.Close()

	if code, _ := get(t, ts.URL+"/healthz"); code != http.StatusOK {
		t.Errorf("/healthz = %d", code)
	}
	if code, body := get(t, ts.URL+"/readyz"); code != http.StatusOK || body["status"] != "ok" {
		t.Errorf("/readyz = %d %v", code, body)
	}

	resp, err := http.Get(ts.URL + "/metrics")
	if err != nil {
		t.Fatal(err)
	}
	prom, _ := io.ReadAll(resp.Body)
	resp.Body.Close()
	if !strings.Contains(string(prom), "requests_total") {
		t.Errorf("/metrics missing requests_total:\n%s", prom)
	}

	s.StartDrain()
	if code, body := get(t, ts.URL+"/readyz"); code != http.StatusServiceUnavailable || body["status"] != "draining" {
		t.Errorf("draining /readyz = %d %v", code, body)
	}
	// Draining rejects new routing but keeps serving accepted work.
	if code, _ := get(t, ts.URL+"/process?kernel=threshold&width=64&height=48"); code != http.StatusOK {
		t.Errorf("in-flight during drain = %d, want 200", code)
	}
}

// TestShedWhenQueueFull saturates a 1-slot, 1-deep server and asserts the
// overflow request is shed with 429 + Retry-After while admitted requests
// still complete.
func TestShedWhenQueueFull(t *testing.T) {
	s := NewServer(Config{MaxConcurrent: 1, QueueDepth: 1})
	gate := make(chan struct{})
	testProcessStart = func() { <-gate }
	defer func() { testProcessStart = nil }()
	ts := httptest.NewServer(s.Handler())
	defer ts.Close()

	url := ts.URL + "/process?kernel=threshold&width=64&height=48"
	type result struct {
		code  int
		retry string
	}
	results := make(chan result, 2)
	do := func() {
		resp, err := http.Get(url)
		if err != nil {
			results <- result{code: -1}
			return
		}
		io.Copy(io.Discard, resp.Body)
		resp.Body.Close()
		results <- result{code: resp.StatusCode, retry: resp.Header.Get("Retry-After")}
	}

	go do() // A: takes the slot, parks on the gate
	waitFor(t, func() bool { return len(s.adm.sem) == 1 })
	go do() // B: queues
	waitFor(t, func() bool { return s.adm.waiting.Load() == 1 })

	// C: queue full — must be shed synchronously.
	resp, err := http.Get(url)
	if err != nil {
		t.Fatal(err)
	}
	io.Copy(io.Discard, resp.Body)
	resp.Body.Close()
	if resp.StatusCode != http.StatusTooManyRequests {
		t.Fatalf("overflow request = %d, want 429", resp.StatusCode)
	}
	if resp.Header.Get("Retry-After") == "" {
		t.Error("429 missing Retry-After")
	}

	close(gate) // let A finish, then B
	for i := 0; i < 2; i++ {
		if r := <-results; r.code != http.StatusOK {
			t.Errorf("admitted request = %d, want 200", r.code)
		}
	}
	if n := s.reg.Snapshot()[`requests_shed_total{reason="queue"}`]; n != 1 {
		t.Errorf("requests_shed_total{reason=queue} = %v, want 1", n)
	}
}

// TestDeadlineWhileQueued parks the only slot and sends a request with a
// millisecond budget: it must be shed as a deadline, not left queued.
func TestDeadlineWhileQueued(t *testing.T) {
	s := NewServer(Config{MaxConcurrent: 1, QueueDepth: 4})
	gate := make(chan struct{})
	testProcessStart = func() { <-gate }
	defer func() { testProcessStart = nil }()
	ts := httptest.NewServer(s.Handler())
	defer ts.Close()

	done := make(chan int, 1)
	go func() {
		resp, err := http.Get(ts.URL + "/process?kernel=threshold&width=64&height=48")
		if err != nil {
			done <- -1
			return
		}
		io.Copy(io.Discard, resp.Body)
		resp.Body.Close()
		done <- resp.StatusCode
	}()
	waitFor(t, func() bool { return len(s.adm.sem) == 1 })

	code, body := get(t, ts.URL+"/process?kernel=threshold&width=64&height=48&deadline_ms=1")
	if code != http.StatusTooManyRequests || body["reason"] != "deadline" {
		t.Errorf("queued past deadline = %d %v, want 429/deadline", code, body)
	}
	close(gate)
	if c := <-done; c != http.StatusOK {
		t.Errorf("parked request = %d, want 200", c)
	}
	if n := s.reg.Snapshot()[`requests_shed_total{reason="deadline"}`]; n != 1 {
		t.Errorf("requests_shed_total{reason=deadline} = %v, want 1", n)
	}
}

// TestPanicRecovery: a handler panic must become a 500 and a panics_total
// sample, not a dead process.
func TestPanicRecovery(t *testing.T) {
	s := NewServer(Config{})
	testProcessStart = func() { panic("boom") }
	defer func() { testProcessStart = nil }()
	ts := httptest.NewServer(s.Handler())
	defer ts.Close()

	code, _ := get(t, ts.URL+"/process?kernel=threshold&width=64&height=48")
	if code != http.StatusInternalServerError {
		t.Fatalf("panicking request = %d, want 500", code)
	}
	if n := s.reg.Snapshot()["panics_total"]; n != 1 {
		t.Errorf("panics_total = %v, want 1", n)
	}
	// The server keeps serving afterwards.
	testProcessStart = nil
	if code, _ := get(t, ts.URL+"/process?kernel=threshold&width=64&height=48"); code != http.StatusOK {
		t.Errorf("request after panic = %d, want 200", code)
	}
}

// waitFor polls cond for up to 2 seconds.
func waitFor(t *testing.T, cond func() bool) {
	t.Helper()
	deadline := time.Now().Add(2 * time.Second)
	for !cond() {
		if time.Now().After(deadline) {
			t.Fatal("condition not reached within 2s")
		}
		time.Sleep(time.Millisecond)
	}
}

// TestFusedServing: with fusion enabled, the multi-stage kernels must
// return the same checksums as a staged server — byte-identical responses
// — and the /metrics endpoint must carry a growing
// fused_plane_bytes_saved_total.
func TestFusedServing(t *testing.T) {
	staged := NewServer(Config{})
	tsStaged := httptest.NewServer(staged.Handler())
	defer tsStaged.Close()
	fused := NewServer(Config{Fuse: cv.FuseConfig{Enabled: true, StripRows: 17}})
	tsFused := httptest.NewServer(fused.Handler())
	defer tsFused.Close()

	for _, q := range []string{
		"kernel=canny&width=130&height=97&isa=neon",
		"kernel=canny&width=130&height=97&isa=sse2",
		"kernel=edges&width=130&height=97&isa=neon",
		"kernel=gaussian&width=64&height=48&isa=neon", // unfused kernel unaffected
	} {
		code, want := get(t, tsStaged.URL+"/process?"+q)
		if code != http.StatusOK {
			t.Fatalf("staged %s: status %d body %v", q, code, want)
		}
		code, got := get(t, tsFused.URL+"/process?"+q)
		if code != http.StatusOK {
			t.Fatalf("fused %s: status %d body %v", q, code, got)
		}
		if got["checksum"] != want["checksum"] {
			t.Errorf("%s: fused checksum %v != staged %v", q, got["checksum"], want["checksum"])
		}
	}

	resp, err := http.Get(tsFused.URL + "/metrics")
	if err != nil {
		t.Fatal(err)
	}
	b, _ := io.ReadAll(resp.Body)
	resp.Body.Close()
	if !strings.Contains(string(b), "fused_plane_bytes_saved_total") {
		t.Errorf("fused server metrics lack fused_plane_bytes_saved_total:\n%s", b)
	}
	if strings.Contains(string(b), `fused_plane_bytes_saved_total{isa="neon",kernel="Canny"} 0`) {
		t.Errorf("fused Canny bytes-saved counter is zero")
	}
}
