package serve

import (
	"sync"
	"time"

	"simdstudy/internal/obs"
)

// SLOConfig declares the serving objectives the front-end tracks burn
// rates against. The zero value selects the noted defaults; Disabled
// turns SLO tracking off entirely.
type SLOConfig struct {
	// Disabled turns SLO tracking off (no gauges, no ring).
	Disabled bool
	// LatencyObjective is the per-request latency threshold: a /process
	// request slower than this (measured from admission attempt to
	// response, queue wait included) is latency-bad. Default 250ms.
	LatencyObjective time.Duration
	// LatencyTarget is the fraction of requests that must meet the
	// latency objective. Default 0.99 (a 1% latency budget).
	LatencyTarget float64
	// AvailabilityTarget is the fraction of requests that must succeed.
	// Shed requests (429) and server errors (5xx) spend availability
	// budget — a shed request is a correct server decision but still a
	// client that got no image back. Default 0.999.
	AvailabilityTarget float64
	// Windows are the burn-rate windows exported per objective, shortest
	// first. Default {1m, 5m} — the short window catches a fast burn, the
	// long one confirms it is sustained (multi-window alerting).
	Windows []time.Duration
}

func (c SLOConfig) normalized() SLOConfig {
	if c.LatencyObjective <= 0 {
		c.LatencyObjective = 250 * time.Millisecond
	}
	if c.LatencyTarget <= 0 || c.LatencyTarget >= 1 {
		c.LatencyTarget = 0.99
	}
	if c.AvailabilityTarget <= 0 || c.AvailabilityTarget >= 1 {
		c.AvailabilityTarget = 0.999
	}
	if len(c.Windows) == 0 {
		c.Windows = []time.Duration{time.Minute, 5 * time.Minute}
	}
	return c
}

// sloPoint is one cumulative tally snapshot in the tracker's ring.
type sloPoint struct {
	t          time.Time
	total      uint64
	latencyBad uint64
	availBad   uint64
}

// sloTracker turns the stream of per-request verdicts into burn-rate
// gauges. It keeps cumulative tallies plus a ring of timestamped
// snapshots (one per second of traffic at most), so burn over a window is
// the pure delta between two snapshots — the same rollup-from-deltas
// discipline the tsdb store uses, small enough to sit on the request path.
//
// Burn rate is the SRE textbook quantity: the observed bad fraction over
// the window divided by the budget fraction (1 - target). Burn 1.0 means
// spending the error budget exactly as fast as it refills; burn >= 2 on a
// short window is the classic page-worthy signal.
type sloTracker struct {
	cfg   SLOConfig
	clock func() time.Time

	mu   sync.Mutex
	cur  sloPoint
	ring []sloPoint
	head int
	n    int
}

// newSLOTracker sizes the ring to cover the longest window at 1 Hz and
// seeds it with the zero point, so a process younger than its windows
// burns against true zero instead of losing the first request to the
// baseline snapshot.
func newSLOTracker(cfg SLOConfig, clock func() time.Time) *sloTracker {
	cfg = cfg.normalized()
	longest := cfg.Windows[len(cfg.Windows)-1]
	cap := int(longest/time.Second) + 2
	t := &sloTracker{cfg: cfg, clock: clock, ring: make([]sloPoint, cap)}
	t.ring[0] = sloPoint{t: clock()}
	t.head, t.n = 1, 1
	return t
}

// record tallies one finished /process request: its response code and its
// latency measured queue-inclusive. 429 and 5xx spend availability
// budget; anything slower than the latency objective spends latency
// budget (a shed request has no meaningful latency and is not counted
// against the latency objective — its budget is the availability one).
func (t *sloTracker) record(code int, elapsed time.Duration) {
	if t == nil {
		return
	}
	now := t.clock()
	t.mu.Lock()
	defer t.mu.Unlock()
	t.cur.total++
	shed := code == 429
	if shed || code >= 500 {
		t.cur.availBad++
	}
	if !shed && elapsed > t.cfg.LatencyObjective {
		t.cur.latencyBad++
	}
	t.cur.t = now
	// Snapshot at most once per second: the newest ring entry is always
	// at least a second older than cur, bounding ring churn under load.
	newest := t.ring[((t.head-1)%len(t.ring)+len(t.ring))%len(t.ring)]
	if t.n == 0 || now.Sub(newest.t) >= time.Second {
		t.ring[t.head] = t.cur
		t.head = (t.head + 1) % len(t.ring)
		if t.n < len(t.ring) {
			t.n++
		}
	}
}

// at returns the i-th newest snapshot (0 = newest). Caller holds t.mu.
func (t *sloTracker) at(i int) sloPoint {
	return t.ring[((t.head-1-i)%len(t.ring)+len(t.ring))%len(t.ring)]
}

// sloBurn is the burn state of both objectives over one window.
type sloBurn struct {
	Window       time.Duration
	Latency      float64
	Availability float64
	Requests     uint64
}

// burnRates computes the burn rate of both objectives over every
// configured window, ending now. A window with no traffic burns 0.
func (t *sloTracker) burnRates() []sloBurn {
	if t == nil {
		return nil
	}
	now := t.clock()
	t.mu.Lock()
	defer t.mu.Unlock()
	out := make([]sloBurn, 0, len(t.cfg.Windows))
	for _, w := range t.cfg.Windows {
		cutoff := now.Add(-w)
		if !t.cur.t.After(cutoff) {
			// The last recorded request predates the whole window: no
			// traffic, no burn. (Without this, the up-to-a-second of
			// requests newer than the newest snapshot would linger in every
			// window forever once traffic stops.)
			out = append(out, sloBurn{Window: w})
			continue
		}
		// The baseline is the newest snapshot at or before the cutoff (the
		// tightest tally outside the window). If the ring does not reach
		// back that far, the oldest snapshot held stands in — which is the
		// zero point seeded at construction until the ring wraps.
		var base sloPoint
		for i := 0; i < t.n; i++ {
			cand := t.at(i)
			base = cand
			if !cand.t.After(cutoff) {
				break
			}
		}
		total := t.cur.total - base.total
		b := sloBurn{Window: w, Requests: total}
		if total > 0 {
			latBad := float64(t.cur.latencyBad-base.latencyBad) / float64(total)
			avBad := float64(t.cur.availBad-base.availBad) / float64(total)
			b.Latency = latBad / (1 - t.cfg.LatencyTarget)
			b.Availability = avBad / (1 - t.cfg.AvailabilityTarget)
		}
		out = append(out, b)
	}
	return out
}

// publish refreshes the slo_* gauges in reg from the current ring state;
// the server calls it on every /metrics scrape and stream frame so the
// exported burn is never stale, and computing on scrape keeps the request
// path free of gauge writes.
func (t *sloTracker) publish(reg *obs.Registry) {
	if t == nil {
		return
	}
	for _, b := range t.burnRates() {
		w := b.Window.String()
		reg.Gauge("slo_burn_rate",
			obs.L("slo", "latency"), obs.L("window", w)).Set(b.Latency)
		reg.Gauge("slo_burn_rate",
			obs.L("slo", "availability"), obs.L("window", w)).Set(b.Availability)
		reg.Gauge("slo_window_requests", obs.L("window", w)).Set(float64(b.Requests))
	}
	reg.Gauge("slo_latency_objective_seconds").Set(t.cfg.LatencyObjective.Seconds())
}
