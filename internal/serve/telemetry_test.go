package serve

import (
	"bufio"
	"encoding/json"
	"io"
	"net/http"
	"net/http/httptest"
	"strings"
	"testing"
	"time"
)

// telemetryServer builds a small server + test listener for the live
// telemetry tests. SampleInterval stays zero: frames sample on demand, so
// no background goroutine outlives the test.
func telemetryServer(t *testing.T) (*Server, *httptest.Server) {
	t.Helper()
	s := NewServer(Config{MaxConcurrent: 2, QueueDepth: 4})
	ts := httptest.NewServer(s.Handler())
	t.Cleanup(func() { ts.Close(); s.Close() })
	return s, ts
}

func fetch(t *testing.T, url string, header map[string]string) (*http.Response, string) {
	t.Helper()
	req, err := http.NewRequest(http.MethodGet, url, nil)
	if err != nil {
		t.Fatal(err)
	}
	for k, v := range header {
		req.Header.Set(k, v)
	}
	resp, err := http.DefaultClient.Do(req)
	if err != nil {
		t.Fatalf("GET %s: %v", url, err)
	}
	defer resp.Body.Close()
	raw, err := io.ReadAll(resp.Body)
	if err != nil {
		t.Fatalf("GET %s: read: %v", url, err)
	}
	return resp, string(raw)
}

// TestTraceIDExemplarEndToEnd is the tentpole integration check: the trace
// ID a client sends rides the request context through admission, kernel
// dispatch and the cv observation layer, and comes back out of the
// OpenMetrics endpoint as an exemplar on both the request latency histogram
// and the kernel wall-time histogram.
func TestTraceIDExemplarEndToEnd(t *testing.T) {
	_, ts := telemetryServer(t)
	const trace = "it-trace-42"

	resp, _ := fetch(t, ts.URL+"/process?kernel=sobel&width=64&height=48&isa=scalar",
		map[string]string{"X-Request-ID": trace})
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("process: HTTP %d", resp.StatusCode)
	}
	if got := resp.Header.Get("X-Request-ID"); got != trace {
		t.Fatalf("X-Request-ID echoed %q, want %q", got, trace)
	}

	mresp, body := fetch(t, ts.URL+"/metrics?format=openmetrics", nil)
	if ct := mresp.Header.Get("Content-Type"); !strings.HasPrefix(ct, "application/openmetrics-text") {
		t.Errorf("Content-Type = %q, want openmetrics", ct)
	}
	if !strings.HasSuffix(body, "# EOF\n") {
		t.Error("OpenMetrics body does not end with # EOF")
	}
	want := `trace_id="` + trace + `"`
	assertFamilyExemplar := func(family string) {
		t.Helper()
		for _, line := range strings.Split(body, "\n") {
			if strings.HasPrefix(line, family+"_bucket") && strings.Contains(line, want) {
				return
			}
		}
		t.Errorf("no %s bucket carries exemplar %s in:\n%s", family, want, body)
	}
	assertFamilyExemplar("request_seconds")
	assertFamilyExemplar("kernel_wall_seconds")

	// The classic format must stay exemplar-free for existing scrapers.
	_, classic := fetch(t, ts.URL+"/metrics", nil)
	if strings.Contains(classic, "trace_id") {
		t.Error("classic /metrics leaked exemplar syntax")
	}
}

// TestGeneratedTraceID checks the server-minted ID format (16 hex chars)
// and that a malformed inbound X-Request-ID is replaced, not echoed.
func TestGeneratedTraceID(t *testing.T) {
	_, ts := telemetryServer(t)

	resp, _ := fetch(t, ts.URL+"/healthz", nil)
	id := resp.Header.Get("X-Request-ID")
	if len(id) != 16 || !validTraceID(id) {
		t.Errorf("generated ID %q, want 16 hex chars", id)
	}

	resp, _ = fetch(t, ts.URL+"/healthz",
		map[string]string{"X-Request-ID": `evil" id {with spaces}`})
	got := resp.Header.Get("X-Request-ID")
	if strings.Contains(got, " ") || strings.Contains(got, `"`) || len(got) != 16 {
		t.Errorf("malformed inbound ID echoed as %q, want replacement", got)
	}

	resp, _ = fetch(t, ts.URL+"/healthz", map[string]string{"X-Request-ID": "ok_id-1.2"})
	if got := resp.Header.Get("X-Request-ID"); got != "ok_id-1.2" {
		t.Errorf("well-formed inbound ID replaced by %q", got)
	}
}

// TestSLOGaugesPublished: after traffic, the scrape carries burn-rate
// gauges for both objectives and every configured window.
func TestSLOGaugesPublished(t *testing.T) {
	_, ts := telemetryServer(t)
	for i := 0; i < 3; i++ {
		fetch(t, ts.URL+"/process?kernel=gaussian&width=32&height=32&isa=scalar", nil)
	}
	_, body := fetch(t, ts.URL+"/metrics", nil)
	for _, series := range []string{
		`slo_burn_rate{slo="availability",window="1m0s"}`,
		`slo_burn_rate{slo="latency",window="5m0s"}`,
		`slo_window_requests{window="1m0s"}`,
		"slo_latency_objective_seconds 0.25",
	} {
		if !strings.Contains(body, series) {
			t.Errorf("scrape missing %s", series)
		}
	}
}

// TestMetricsStream drives the SSE endpoint to a bounded frame count and
// checks the frames parse as the documented protocol with the traffic the
// test generated visible in the per-kernel stats.
func TestMetricsStream(t *testing.T) {
	_, ts := telemetryServer(t)
	fetch(t, ts.URL+"/process?kernel=sobel&width=64&height=48&isa=scalar", nil)

	resp, err := http.Get(ts.URL + "/metrics/stream?frames=3&interval_ms=100&window_ms=60000")
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	if ct := resp.Header.Get("Content-Type"); ct != "text/event-stream" {
		t.Fatalf("Content-Type = %q", ct)
	}

	var frames []StreamFrame
	sc := bufio.NewScanner(resp.Body)
	for sc.Scan() {
		line := sc.Text()
		if !strings.HasPrefix(line, "data: ") {
			continue
		}
		var f StreamFrame
		if err := json.Unmarshal([]byte(line[len("data: "):]), &f); err != nil {
			t.Fatalf("bad frame %q: %v", line, err)
		}
		frames = append(frames, f)
	}
	if err := sc.Err(); err != nil {
		t.Fatal(err)
	}
	if len(frames) != 3 {
		t.Fatalf("got %d frames, want 3", len(frames))
	}

	last := frames[len(frames)-1]
	if last.Goroutines <= 0 {
		t.Errorf("frame has no goroutine count: %+v", last)
	}
	if len(last.SLO) == 0 {
		t.Errorf("frame has no SLO status: %+v", last)
	}
	found := false
	for _, k := range last.Kernels {
		if k.Kernel == "SobelFilter" {
			found = true
		}
	}
	if !found {
		t.Errorf("last frame kernels = %+v, want SobelFilter present", last.Kernels)
	}
	if _, err := time.Parse(time.RFC3339Nano, last.Time); err != nil {
		t.Errorf("frame time %q: %v", last.Time, err)
	}
}

// TestSLOBurnMath drives the tracker directly with a fake clock and checks
// the burn arithmetic: bad-fraction divided by budget fraction, per window,
// with shed requests burning availability but not latency.
func TestSLOBurnMath(t *testing.T) {
	clk := &testClock{t: time.Unix(10000, 0)}
	tr := newSLOTracker(SLOConfig{
		LatencyObjective:   100 * time.Millisecond,
		LatencyTarget:      0.99,  // 1% latency budget
		AvailabilityTarget: 0.999, // 0.1% availability budget
		Windows:            []time.Duration{time.Minute},
	}, clk.Now)

	// 100 requests over 50s: 90 good-fast, 5 slow (latency-bad), 5 shed
	// (avail-bad; their latency must not count).
	for i := 0; i < 100; i++ {
		clk.Advance(500 * time.Millisecond)
		switch {
		case i%20 == 0: // 5 of them
			tr.record(429, 10*time.Second)
		case i%20 == 1: // 5 of them
			tr.record(200, 200*time.Millisecond)
		default:
			tr.record(200, 5*time.Millisecond)
		}
	}
	burns := tr.burnRates()
	if len(burns) != 1 {
		t.Fatalf("burnRates len = %d", len(burns))
	}
	b := burns[0]
	if b.Requests != 100 {
		t.Fatalf("window requests = %d, want 100", b.Requests)
	}
	// Latency: 5/100 bad over a 1% budget -> burn 5.0. (Shed requests are
	// excluded from the latency objective even at 10s elapsed.)
	if b.Latency < 4.9 || b.Latency > 5.1 {
		t.Errorf("latency burn = %v, want ~5.0", b.Latency)
	}
	// Availability: 5/100 bad over a 0.1% budget -> burn 50.
	if b.Availability < 49 || b.Availability > 51 {
		t.Errorf("availability burn = %v, want ~50", b.Availability)
	}

	// Idle tail: a window that slides past all traffic burns zero.
	clk.Advance(10 * time.Minute)
	b = tr.burnRates()[0]
	if b.Requests != 0 || b.Latency != 0 || b.Availability != 0 {
		t.Errorf("idle burn = %+v, want zeros", b)
	}
}
