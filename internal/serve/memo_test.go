package serve

import (
	"encoding/json"
	"io"
	"net/http"
	"net/http/httptest"
	"sync"
	"testing"
	"time"

	"simdstudy/internal/memo"
)

func newMemoServer(t *testing.T, kernels ...string) (*Server, *httptest.Server) {
	t.Helper()
	s := NewServer(Config{
		Memo: memo.Config{MaxBytes: 64 << 20, Kernels: kernels},
	})
	t.Cleanup(s.Close)
	ts := httptest.NewServer(s.Handler())
	t.Cleanup(ts.Close)
	return s, ts
}

func getMemo(t *testing.T, url string) (string, map[string]any) {
	t.Helper()
	resp, err := http.Get(url)
	if err != nil {
		t.Fatalf("GET %s: %v", url, err)
	}
	defer resp.Body.Close()
	raw, _ := io.ReadAll(resp.Body)
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("GET %s: %d: %s", url, resp.StatusCode, raw)
	}
	var body map[string]any
	if err := json.Unmarshal(raw, &body); err != nil {
		t.Fatalf("GET %s: bad JSON %q: %v", url, raw, err)
	}
	return resp.Header.Get("X-Memo"), body
}

// TestMemoHitMissOverHTTP: the first request computes (X-Memo: miss), an
// identical second request is served from the cache (X-Memo: hit) with a
// byte-identical plane — same checksum — and both carry X-Request-ID from
// the standard response path.
func TestMemoHitMissOverHTTP(t *testing.T) {
	s, ts := newMemoServer(t)
	url := ts.URL + "/process?kernel=gaussian&width=96&height=64&isa=neon&seed=9"

	outcome1, body1 := getMemo(t, url)
	if outcome1 != "miss" || body1["memo"] != "miss" {
		t.Fatalf("first request X-Memo=%q memo=%v; want miss", outcome1, body1["memo"])
	}
	outcome2, body2 := getMemo(t, url)
	if outcome2 != "hit" || body2["memo"] != "hit" {
		t.Fatalf("second request X-Memo=%q memo=%v; want hit", outcome2, body2["memo"])
	}
	if body1["checksum"] != body2["checksum"] {
		t.Fatalf("hit checksum %v != computed checksum %v", body2["checksum"], body1["checksum"])
	}
	if st := s.Memo().Stats(); st.Hits != 1 || st.Misses != 1 {
		t.Fatalf("stats = %+v; want 1 hit, 1 miss", st)
	}

	// A different seed is different content: no false sharing.
	outcome3, body3 := getMemo(t, ts.URL+"/process?kernel=gaussian&width=96&height=64&isa=neon&seed=10")
	if outcome3 != "miss" {
		t.Fatalf("different content served %q", outcome3)
	}
	if body3["checksum"] == body1["checksum"] {
		t.Fatal("different inputs produced the same checksum (suspicious)")
	}
}

// TestMemoHitsCountTowardSLO: hit responses flow through the standard
// handleProcess wrapper, so the SLO tracker sees them exactly like
// computed responses.
func TestMemoHitsCountTowardSLO(t *testing.T) {
	s, ts := newMemoServer(t)
	url := ts.URL + "/process?kernel=threshold&width=64&height=48&isa=neon&seed=2"
	getMemo(t, url) // miss
	getMemo(t, url) // hit

	burns := s.slo.burnRates()
	if len(burns) == 0 {
		t.Fatal("no SLO windows tracked")
	}
	if got := burns[len(burns)-1].Requests; got != 2 {
		t.Fatalf("SLO tracker saw %d requests; want 2 (hits must not bypass it)", got)
	}
}

// TestMemoQuarantineInvalidation: force-opening a (kernel, ISA) breaker —
// the path every quarantine takes — drops that pair's cached entries, so
// the next identical request recomputes on the demoted (scalar) path.
func TestMemoQuarantineInvalidation(t *testing.T) {
	s, ts := newMemoServer(t)
	url := ts.URL + "/process?kernel=gaussian&width=96&height=64&isa=neon&seed=3"

	if outcome, _ := getMemo(t, url); outcome != "miss" {
		t.Fatalf("first = %q", outcome)
	}
	if outcome, _ := getMemo(t, url); outcome != "hit" {
		t.Fatalf("second = %q", outcome)
	}

	s.Breakers().ForceStuckOpen("GaussianBlur", "neon")
	if st := s.Memo().Stats(); st.Invalidations != 1 {
		t.Fatalf("invalidations = %d; want 1", st.Invalidations)
	}
	outcome, body := getMemo(t, url)
	if outcome != "miss" {
		t.Fatalf("post-quarantine request = %q; want miss (entry invalidated)", outcome)
	}
	if body["breaker"] != "stuck-open" {
		t.Fatalf("breaker = %v; want stuck-open", body["breaker"])
	}
}

// TestMemoKernelEnableList: only listed kernels are memoized; the list
// accepts request names. Unmemoized kernels take the classic path with no
// X-Memo header.
func TestMemoKernelEnableList(t *testing.T) {
	_, ts := newMemoServer(t, "gaussian")
	if outcome, _ := getMemo(t, ts.URL+"/process?kernel=gaussian&width=64&height=48&isa=neon"); outcome != "miss" {
		t.Fatalf("enabled kernel = %q; want miss", outcome)
	}
	if outcome, _ := getMemo(t, ts.URL+"/process?kernel=threshold&width=64&height=48&isa=neon"); outcome != "" {
		t.Fatalf("disabled kernel carries X-Memo %q; want none", outcome)
	}
}

// TestMemoCoalescedOverHTTP: two concurrent identical requests execute
// the kernel once; the second is served a copy with X-Memo: coalesced.
// The leader is held inside its dispatch (testProcessStart) until the
// waiter has verifiably joined the flight.
func TestMemoCoalescedOverHTTP(t *testing.T) {
	s, ts := newMemoServer(t)
	gate := make(chan struct{})
	testProcessStart = func() { <-gate }
	defer func() { testProcessStart = nil }()

	url := ts.URL + "/process?kernel=median&width=96&height=64&isa=neon&seed=4"
	outcomes := make([]string, 2)
	var wg sync.WaitGroup
	for i := 0; i < 2; i++ {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			resp, err := http.Get(url)
			if err != nil {
				t.Errorf("request %d: %v", i, err)
				return
			}
			io.Copy(io.Discard, resp.Body)
			resp.Body.Close()
			outcomes[i] = resp.Header.Get("X-Memo")
		}(i)
		// Wait until this request is participating in the flight before
		// starting (or releasing past) the next step, so the roles are
		// deterministic: request 0 leads, request 1 coalesces.
		deadline := time.Now().Add(5 * time.Second)
		for {
			if _, participants := s.Memo().InFlight(); participants > i {
				break
			}
			if time.Now().After(deadline) {
				t.Fatal("request never joined the flight")
			}
			time.Sleep(time.Millisecond)
		}
	}
	close(gate)
	wg.Wait()

	if outcomes[0] != "miss" || outcomes[1] != "coalesced" {
		t.Fatalf("outcomes = %v; want [miss coalesced]", outcomes)
	}
	if st := s.Memo().Stats(); st.Misses != 1 || st.Coalesced != 1 {
		t.Fatalf("stats = %+v; want 1 miss, 1 coalesced", st)
	}
}

// TestMemoDebugView: /memo reports enabled state, stats, and per-pair
// breakdown; a memo-less server reports {"enabled": false}.
func TestMemoDebugView(t *testing.T) {
	_, ts := newMemoServer(t)
	getMemo(t, ts.URL+"/process?kernel=sobel&width=64&height=48&isa=neon")

	_, body := getMemo(t, ts.URL+"/memo")
	if body["enabled"] != true {
		t.Fatalf("/memo enabled = %v", body["enabled"])
	}
	stats, ok := body["stats"].(map[string]any)
	if !ok || stats["misses"].(float64) != 1 || stats["entries"].(float64) != 1 {
		t.Fatalf("/memo stats = %v", body["stats"])
	}
	kv, ok := body["kernels"].(map[string]any)
	if !ok {
		t.Fatalf("/memo kernels = %v", body["kernels"])
	}
	if _, ok := kv["SobelFilter/neon"]; !ok {
		t.Fatalf("/memo kernels missing SobelFilter/neon: %v", kv)
	}

	off := NewServer(Config{})
	defer off.Close()
	tsOff := httptest.NewServer(off.Handler())
	defer tsOff.Close()
	_, body = getMemo(t, tsOff.URL+"/memo")
	if body["enabled"] != false {
		t.Fatalf("memo-less /memo enabled = %v", body["enabled"])
	}
}

// TestMemoStreamFrame: the SSE frame carries the memo block when
// memoization is on, with the lifetime tallies filled in.
func TestMemoStreamFrame(t *testing.T) {
	s, ts := newMemoServer(t)
	url := ts.URL + "/process?kernel=gaussian&width=64&height=48&isa=neon&seed=6"
	getMemo(t, url)
	getMemo(t, url)

	f := s.buildFrame(time.Minute)
	if f.Memo == nil {
		t.Fatal("stream frame missing memo block")
	}
	if f.Memo.Hits != 1 || f.Memo.Misses != 1 || f.Memo.Entries != 1 {
		t.Fatalf("frame memo = %+v; want 1 hit, 1 miss, 1 entry", f.Memo)
	}
	if f.Memo.HitRatePct <= 0 {
		t.Fatalf("frame memo hit rate = %v; want > 0", f.Memo.HitRatePct)
	}

	off := NewServer(Config{})
	defer off.Close()
	if f := off.buildFrame(time.Minute); f.Memo != nil {
		t.Fatal("memo-less frame carries a memo block")
	}
}
