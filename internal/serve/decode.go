// Package serve is the hardened HTTP front-end over the image pipeline:
// a bounded-admission, deadline-aware server that dispatches the guarded
// SIMD kernels and degrades to scalar through the per-(kernel, ISA)
// circuit breakers instead of failing requests.
package serve

import (
	"context"
	"fmt"
	"math"
	"net/url"
	"sort"
	"strconv"
	"time"

	"simdstudy/internal/cv"
	"simdstudy/internal/image"
)

// maxDim bounds a single request dimension before the pixel-count check,
// so width*height cannot overflow and a single hostile parameter cannot
// request a gigabyte-scale allocation.
const maxDim = 1 << 20

// Limits are the decoder-side resource bounds. The zero value is not
// usable; Config.limits fills defaults.
type Limits struct {
	MaxPixels       int           // ceiling on width*height
	DefaultDeadline time.Duration // applied when deadline_ms is absent
	MaxDeadline     time.Duration // ceiling on client-requested deadlines
}

// Request is one decoded kernel-dispatch request.
type Request struct {
	Kernel   string // canonical kernel name, e.g. "GaussianBlur"
	ISA      cv.ISA
	Width    int
	Height   int
	Seed     uint64
	Deadline time.Duration
}

// kernelSpec wires a request kernel name to the pipeline: source and
// destination plane types, destination geometry, the fixed-parameter
// signature the memoization key folds in, and the context-aware entry
// point.
type kernelSpec struct {
	name    string // canonical name; must match the cv beginKernel name
	srcKind image.Type
	dstKind image.Type
	halfDst bool // destination is w/2 x h/2 (ResizeHalf)
	// sig names the parameters baked into run below. It participates in
	// the memo content key, so if a threshold here ever changes, old
	// cached results become unreachable instead of wrong.
	sig string
	run func(ctx context.Context, o *cv.Ops, src, dst *image.Mat) error
}

// dstDims returns the destination geometry for a w x h source.
func (k kernelSpec) dstDims(w, h int) (int, int) {
	if k.halfDst {
		return w / 2, h / 2
	}
	return w, h
}

// dst allocates the destination plane, rejecting degenerate geometry.
func (k kernelSpec) dst(w, h int) (*image.Mat, error) {
	dw, dh := k.dstDims(w, h)
	return image.TryNewMat(dw, dh, k.dstKind)
}

var kernels = map[string]kernelSpec{
	"gaussian": {
		name: "GaussianBlur", srcKind: image.U8, dstKind: image.U8, sig: "g5x5",
		run: func(ctx context.Context, o *cv.Ops, src, dst *image.Mat) error {
			return o.GaussianBlurCtx(ctx, src, dst)
		},
	},
	"sobel": {
		name: "SobelFilter", srcKind: image.U8, dstKind: image.S16, sig: "dx1dy0",
		run: func(ctx context.Context, o *cv.Ops, src, dst *image.Mat) error {
			return o.SobelFilterCtx(ctx, src, dst, 1, 0)
		},
	},
	"edges": {
		name: "DetectEdges", srcKind: image.U8, dstKind: image.U8, sig: "t128",
		run: func(ctx context.Context, o *cv.Ops, src, dst *image.Mat) error {
			return o.DetectEdgesCtx(ctx, src, dst, 128)
		},
	},
	"canny": {
		name: "Canny", srcKind: image.U8, dstKind: image.U8, sig: "lo60hi200",
		run: func(ctx context.Context, o *cv.Ops, src, dst *image.Mat) error {
			return o.CannyCtx(ctx, src, dst, 60, 200)
		},
	},
	"median": {
		name: "MedianBlur3x3", srcKind: image.U8, dstKind: image.U8, sig: "3x3",
		run: func(ctx context.Context, o *cv.Ops, src, dst *image.Mat) error {
			return o.MedianBlur3x3Ctx(ctx, src, dst)
		},
	},
	"resize": {
		name: "ResizeHalf", srcKind: image.U8, dstKind: image.U8, halfDst: true, sig: "half",
		run: func(ctx context.Context, o *cv.Ops, src, dst *image.Mat) error {
			return o.ResizeHalfCtx(ctx, src, dst)
		},
	},
	"threshold": {
		name: "Threshold", srcKind: image.U8, dstKind: image.U8, sig: "t128m255bin",
		run: func(ctx context.Context, o *cv.Ops, src, dst *image.Mat) error {
			return o.ThresholdCtx(ctx, src, dst, 128, 255, cv.ThreshBinary)
		},
	},
	"convert": {
		name: "ConvertF32ToS16", srcKind: image.F32, dstKind: image.S16, sig: "f32s16",
		run: func(ctx context.Context, o *cv.Ops, src, dst *image.Mat) error {
			return o.ConvertF32ToS16Ctx(ctx, src, dst)
		},
	},
}

// KernelNames returns the request kernel names the decoder accepts,
// sorted.
func KernelNames() []string {
	names := make([]string, 0, len(kernels))
	for k := range kernels {
		names = append(names, k)
	}
	sort.Strings(names)
	return names
}

func parseISA(s string) (cv.ISA, error) {
	switch s {
	case "", "neon":
		return cv.ISANEON, nil
	case "sse2":
		return cv.ISASSE2, nil
	case "scalar":
		return cv.ISAScalar, nil
	}
	return 0, fmt.Errorf("unknown isa %q (want scalar, neon, or sse2)", s)
}

func parseDim(q url.Values, key string) (int, error) {
	raw := q.Get(key)
	if raw == "" {
		return 0, fmt.Errorf("missing required parameter %q", key)
	}
	n, err := strconv.Atoi(raw)
	if err != nil {
		return 0, fmt.Errorf("bad %s %q: not an integer", key, raw)
	}
	if n < 1 || n > maxDim {
		return 0, fmt.Errorf("bad %s %d: want 1..%d", key, n, maxDim)
	}
	return n, nil
}

// ParseRequest decodes and bounds one request from URL query parameters.
// Every failure is a client error (HTTP 400); nothing is allocated from
// request-controlled sizes before the bounds checks pass.
func ParseRequest(q url.Values, lim Limits) (Request, error) {
	var r Request

	kernel := q.Get("kernel")
	if _, ok := kernels[kernel]; !ok {
		return r, fmt.Errorf("unknown kernel %q (want one of %v)", kernel, KernelNames())
	}
	r.Kernel = kernel

	w, err := parseDim(q, "width")
	if err != nil {
		return r, err
	}
	h, err := parseDim(q, "height")
	if err != nil {
		return r, err
	}
	if int64(w)*int64(h) > int64(lim.MaxPixels) {
		return r, fmt.Errorf("image %dx%d exceeds the %d pixel limit", w, h, lim.MaxPixels)
	}
	r.Width, r.Height = w, h

	r.ISA, err = parseISA(q.Get("isa"))
	if err != nil {
		return r, err
	}

	r.Seed = 1
	if raw := q.Get("seed"); raw != "" {
		r.Seed, err = strconv.ParseUint(raw, 10, 64)
		if err != nil {
			return r, fmt.Errorf("bad seed %q: not an unsigned integer", raw)
		}
	}

	r.Deadline = lim.DefaultDeadline
	if raw := q.Get("deadline_ms"); raw != "" {
		ms, err := strconv.ParseInt(raw, 10, 64)
		if err != nil || ms <= 0 {
			return r, fmt.Errorf("bad deadline_ms %q: want a positive integer", raw)
		}
		r.Deadline = time.Duration(ms) * time.Millisecond
	}
	if r.Deadline > lim.MaxDeadline {
		r.Deadline = lim.MaxDeadline
	}
	return r, nil
}

// checksum folds a destination plane into one comparable value so clients
// (and the load generator) can spot nondeterminism across ISA paths.
func checksum(m *image.Mat) uint64 {
	const prime = 1099511628211
	sum := uint64(14695981039346656037)
	switch m.Kind {
	case image.U8:
		for _, v := range m.U8Pix {
			sum = (sum ^ uint64(v)) * prime
		}
	case image.S16:
		for _, v := range m.S16Pix {
			sum = (sum ^ uint64(uint16(v))) * prime
		}
	case image.F32:
		for _, v := range m.F32Pix {
			sum = (sum ^ uint64(math.Float32bits(v))) * prime
		}
	}
	return sum
}
