package serve

import (
	"context"
	"errors"
	"sync/atomic"

	"simdstudy/internal/obs"
)

// errShed is returned by acquire when the bounded wait queue is full; the
// handler maps it to 429 + Retry-After (load shedding).
var errShed = errors.New("serve: admission queue full")

// admission is a bounded-concurrency gate with a bounded wait queue. Up to
// `cap(sem)` requests run concurrently; up to `queue` more may wait for a
// slot; anything beyond that is shed immediately so queueing delay stays
// bounded under overload (the server fails fast instead of building an
// unbounded backlog of doomed work).
type admission struct {
	sem     chan struct{}
	queue   int64
	waiting atomic.Int64
	depth   *obs.Gauge // queue_depth: requests currently waiting
}

func newAdmission(slots, queue int, reg *obs.Registry) *admission {
	return &admission{
		sem:   make(chan struct{}, slots),
		queue: int64(queue),
		depth: reg.Gauge("queue_depth"),
	}
}

// acquire takes a run slot, waiting in the bounded queue if none is free.
// It returns errShed when the queue is full and ctx.Err() when the
// request's deadline expires while queued. Callers that get nil back must
// call release.
func (a *admission) acquire(ctx context.Context) error {
	select {
	case a.sem <- struct{}{}:
		return nil // free slot, no queueing
	default:
	}
	if a.waiting.Add(1) > a.queue {
		a.depth.Set(float64(a.waiting.Add(-1)))
		return errShed
	}
	a.depth.Set(float64(a.waiting.Load()))
	defer func() {
		a.depth.Set(float64(a.waiting.Add(-1)))
	}()
	select {
	case a.sem <- struct{}{}:
		return nil
	case <-ctx.Done():
		return ctx.Err()
	}
}

// release frees a slot taken by a successful acquire.
func (a *admission) release() { <-a.sem }

// fill reports wait-queue occupancy in [0, 1] — the load signal the audit
// sampler scales against.
func (a *admission) fill() float64 {
	if a.queue <= 0 {
		return 0
	}
	f := float64(a.waiting.Load()) / float64(a.queue)
	if f < 0 {
		return 0
	}
	if f > 1 {
		return 1
	}
	return f
}
