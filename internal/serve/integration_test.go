package serve

import (
	"io"
	"net/http"
	"net/http/httptest"
	"strings"
	"testing"
	"time"

	"simdstudy/internal/resilience"
)

// TestBreakerLifecycleOverHTTP drives the acceptance scenario end to end:
// a fault campaign against one ISA opens its breaker (visible in
// breaker_transitions_total and /readyz), requests keep getting 200s from
// the transparent scalar fallback, and once the faults clear a half-open
// probe closes the breaker again.
func TestBreakerLifecycleOverHTTP(t *testing.T) {
	clk := &testClock{t: time.Unix(0, 0)}
	s := NewServer(Config{
		MaxConcurrent: 2,
		QueueDepth:    4,
		FaultISA:      "neon",
		Breaker: resilience.BreakerConfig{
			Window: 8, MinSamples: 2, FailureRate: 0.5,
			OpenFor: time.Second, Clock: clk.Now,
		},
	})
	ts := httptest.NewServer(s.Handler())
	defer ts.Close()
	url := ts.URL + "/process?kernel=gaussian&width=64&height=48&isa=neon"

	// Phase 1: persistent NEON faults. The guard absorbs each one (scalar
	// referee substitutes the output, so the client still gets a 200) and
	// the fallbacks trip the breaker.
	s.SetFaultInjector(LockInjector(saboteur{}))
	for i := 0; i < 2; i++ {
		code, body := get(t, url)
		if code != http.StatusOK {
			t.Fatalf("faulted request %d = %d %v, want 200", i, code, body)
		}
		if body["faults"].(float64) < 1 {
			t.Fatalf("faulted request %d recorded no guard intervention: %v", i, body)
		}
	}
	if st := s.Breakers().State("GaussianBlur", "neon"); st != resilience.StateOpen {
		t.Fatalf("breaker = %v after sustained fallbacks, want open", st)
	}
	code, ready := get(t, ts.URL+"/readyz")
	if code != http.StatusOK || ready["status"] != "degraded" {
		t.Fatalf("/readyz = %d %v, want 200/degraded", code, ready)
	}
	if st := ready["breakers"].(map[string]any)["GaussianBlur/neon"]; st != "open" {
		t.Fatalf("/readyz breakers = %v, want GaussianBlur/neon open", ready["breakers"])
	}

	// Phase 2: breaker open, faults still firing. The SIMD path (and its
	// injector) is bypassed entirely: 200, zero faults, output identical
	// to an explicit scalar request.
	code, body := get(t, url)
	if code != http.StatusOK || body["breaker"] != "open" || body["faults"].(float64) != 0 {
		t.Fatalf("open-breaker request = %d %v, want 200/open/0 faults", code, body)
	}
	_, scalar := get(t, ts.URL+"/process?kernel=gaussian&width=64&height=48&isa=scalar")
	if body["checksum"] != scalar["checksum"] {
		t.Fatalf("open-breaker checksum %v != scalar %v", body["checksum"], scalar["checksum"])
	}

	// Phase 3: faults clear, cooldown lapses; the next request is the
	// half-open probe and its clean verdict closes the breaker.
	s.SetFaultInjector(nil)
	clk.Advance(2 * time.Second)
	code, body = get(t, url)
	if code != http.StatusOK || body["breaker"] != "closed" {
		t.Fatalf("probe request = %d %v, want 200/closed", code, body)
	}
	if _, ready := get(t, ts.URL+"/readyz"); ready["status"] != "ok" {
		t.Fatalf("/readyz after recovery = %v, want ok", ready)
	}

	// The whole episode must be visible in the exported metrics.
	resp, err := http.Get(ts.URL + "/metrics")
	if err != nil {
		t.Fatal(err)
	}
	promBytes, _ := io.ReadAll(resp.Body)
	resp.Body.Close()
	prom := string(promBytes)
	for _, want := range []string{
		`breaker_transitions_total{from="closed",isa="neon",kernel="GaussianBlur",to="open"}`,
		`breaker_transitions_total{from="half-open",isa="neon",kernel="GaussianBlur",to="closed"}`,
		"requests_total",
		"queue_depth",
	} {
		if !strings.Contains(prom, want) {
			t.Errorf("/metrics missing %q", want)
		}
	}
}
