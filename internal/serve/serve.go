package serve

import (
	"context"
	"encoding/json"
	"errors"
	"fmt"
	"net/http"
	httppprof "net/http/pprof"
	"runtime"
	"runtime/pprof"
	"sort"
	"strconv"
	"strings"
	"sync"
	"sync/atomic"
	"time"

	"simdstudy/internal/checkpoint"
	"simdstudy/internal/cv"
	"simdstudy/internal/faults"
	"simdstudy/internal/image"
	"simdstudy/internal/integrity"
	"simdstudy/internal/memo"
	"simdstudy/internal/obs"
	"simdstudy/internal/obs/tsdb"
	"simdstudy/internal/par"
	"simdstudy/internal/resilience"
	"simdstudy/internal/super"
	"simdstudy/internal/vec"
)

// Config tunes a Server. The zero value selects the defaults noted per
// field.
type Config struct {
	// MaxConcurrent is how many kernel dispatches run at once. Default 4.
	MaxConcurrent int
	// QueueDepth is how many requests may wait for a slot before the
	// server sheds load with 429. Default 16.
	QueueDepth int
	// DefaultDeadline applies when a request carries no deadline_ms.
	// Default 2s.
	DefaultDeadline time.Duration
	// MaxDeadline caps client-requested deadlines. Default 10s.
	MaxDeadline time.Duration
	// MaxPixels caps width*height per request. Default 1<<22 (4 Mpx).
	MaxPixels int
	// Guard is the guarded-dispatch policy shared by every worker Ops.
	// The zero value takes cv.DefaultGuardPolicy with the kill-switch
	// disabled — terminal demotion belongs to the breaker's GiveUpAfter.
	Guard cv.GuardPolicy
	// Breaker configures the per-(kernel, ISA) circuit breakers.
	Breaker resilience.BreakerConfig
	// FaultISA restricts the attached fault injector to one ISA name
	// ("neon", "sse2"); empty applies it to every SIMD ISA.
	FaultISA string
	// Parallel configures intra-kernel row banding for every worker Ops
	// (see cv.ParallelConfig). The zero value runs kernels serially. With
	// Workers > 1 and MaxConcurrent unset, the admission limit defaults to
	// GOMAXPROCS/Workers so request-level and band-level concurrency
	// compose without oversubscribing cores (the shared band pool bounds
	// true parallelism regardless; this only keeps queue sizing honest).
	Parallel cv.ParallelConfig
	// Fuse, when enabled, runs multi-stage kernels (canny, edges) as
	// cache-blocked fused sweeps: intermediates live in rolling strip
	// windows sized to Fuse.Caches (or StripRows) instead of full planes.
	// Responses are byte-identical to staged execution; the server
	// additionally exports fused_plane_bytes_saved_total.
	Fuse cv.FuseConfig
	// Registry receives all metrics, spans, and events; nil allocates a
	// private one.
	Registry *obs.Registry
	// StallDeadline, when positive, runs every worker Ops under a stall
	// watchdog: a kernel band silent for longer than this cancels its
	// siblings and the request fails with a typed stall response instead of
	// holding its admission slot until the client deadline.
	StallDeadline time.Duration
	// Quarantine tunes the panic supervisor shared by every worker Ops: a
	// (kernel, ISA) pair whose SIMD path panics MaxPanics times is demoted
	// to the scalar, serial path permanently (its breaker latches
	// stuck-open). The zero value selects the supervisor defaults.
	Quarantine super.QuarantinePolicy
	// QuarantineJournal, when non-empty, persists quarantine decisions to
	// this checkpoint journal and replays them at startup, so a restarted
	// simdserved does not re-probe a known-poisonous (kernel, ISA) pair. A
	// corrupt journal is discarded (cold start, warning event); a journal
	// of the wrong kind disables persistence with a
	// quarantine.journal_error event rather than failing startup.
	QuarantineJournal string
	// SLO declares the latency and availability objectives the server
	// tracks burn rates against (exported as slo_burn_rate gauges and on
	// /metrics/stream). The zero value enables tracking with defaults;
	// set SLO.Disabled to turn it off.
	SLO SLOConfig
	// SampleInterval, when positive, runs a background time-series sampler
	// at this cadence so windowed rollups (per-kernel QPS, p99) have
	// history even between /metrics/stream consumers. Zero samples only
	// when a stream frame is built — no background goroutine, which keeps
	// short-lived embedded servers (tests) free of tickers.
	SampleInterval time.Duration
	// TelemetryRing is how many samples the time-series ring holds.
	// Default 300 (five minutes at a 1s cadence).
	TelemetryRing int
	// AuditRate, when positive, re-runs this fraction of SIMD kernel
	// dispatches on the scalar reference path and byte-compares the outputs
	// (internal/integrity): a mismatch is silent corruption — it is counted,
	// repaired from the reference, and fed to a corruption scoreboard whose
	// threshold crossing latches the (kernel, ISA) breaker stuck-open, so a
	// corrupting unit transparently demotes to scalar. The effective rate is
	// scaled by admission-queue headroom: as the wait queue fills, audits
	// shed first (down to zero at a full queue) so redundant recomputation
	// never spends the latency SLO budget. Auditing also installs the pool
	// scrubber that re-verifies parked scratch planes at reuse.
	AuditRate float64
	// AuditSeed drives the deterministic audit sampler; zero means 1.
	AuditSeed uint64
	// Memo configures content-addressed result memoization
	// (internal/memo): requests whose (kernel, parameters, input plane)
	// fingerprint matches a cached result are answered with a verified
	// copy instead of a kernel dispatch, and concurrent identical
	// requests coalesce into one execution. The lookup happens after
	// decode and before admission, so hits and coalesced waiters never
	// consume admission slots; responses carry X-Memo: hit|miss|coalesced
	// and /memo exposes the cache view. Zero MaxBytes disables
	// memoization entirely. Memo.Registry is overridden with the server's
	// registry.
	Memo memo.Config
}

func (c Config) normalized() Config {
	if c.MaxConcurrent <= 0 {
		c.MaxConcurrent = 4
		w := c.Parallel.Workers
		if w < 0 {
			w = runtime.GOMAXPROCS(0)
		}
		if w > 1 {
			c.MaxConcurrent = max(1, runtime.GOMAXPROCS(0)/w)
		}
	}
	if c.QueueDepth <= 0 {
		c.QueueDepth = 16
	}
	if c.DefaultDeadline <= 0 {
		c.DefaultDeadline = 2 * time.Second
	}
	if c.MaxDeadline <= 0 {
		c.MaxDeadline = 10 * time.Second
	}
	if c.MaxPixels <= 0 {
		c.MaxPixels = 1 << 22
	}
	if c.Guard == (cv.GuardPolicy{}) {
		c.Guard = cv.DefaultGuardPolicy()
		c.Guard.KillAfter = -1
	}
	if c.Registry == nil {
		c.Registry = obs.NewRegistry()
	}
	if c.TelemetryRing <= 0 {
		c.TelemetryRing = 300
	}
	return c
}

func (c Config) limits() Limits {
	return Limits{
		MaxPixels:       c.MaxPixels,
		DefaultDeadline: c.DefaultDeadline,
		MaxDeadline:     c.MaxDeadline,
	}
}

// injCell wraps an injector for atomic.Value (which needs a consistent
// concrete type across stores).
type injCell struct{ inj faults.Injector }

// scrubOnce guards installation of the process-wide pool scrubber; the
// scratch pool in internal/par is shared across servers, so the scrubber
// is too.
var scrubOnce sync.Once

// Server is the serving front-end: bounded admission, per-request
// deadlines, breaker-mediated SIMD dispatch, and the observability
// endpoints. Create with NewServer; serve via Handler.
type Server struct {
	cfg Config
	reg *obs.Registry
	brk *resilience.BreakerSet
	adm *admission

	pools    map[cv.ISA]*sync.Pool
	inj      atomic.Value // injCell
	draining atomic.Bool

	sup *super.Supervisor
	wd  *super.Watchdog

	aud   *integrity.Auditor
	board *integrity.Scoreboard

	memo    *memo.Cache
	fuseSig string

	ts    *tsdb.Store
	slo   *sloTracker
	start time.Time

	// traceBase salts generated trace IDs with the process start time, so
	// IDs from two incarnations of the server never collide in a shared
	// trace store; reqSeq makes them unique within one.
	traceBase uint32
	reqSeq    atomic.Uint64
	flightMu  sync.Mutex
	flight    map[string]*inflight
}

// inflight is one admitted /process request's live entry for /livez.
type inflight struct {
	id     string
	kernel string
	isa    string
	start  time.Time
}

// testProcessStart, when non-nil, runs after a request clears admission
// and before its kernel dispatch. Tests use it to hold slots open
// deterministically; production never sets it.
var testProcessStart func()

// NewServer builds a Server from cfg.
func NewServer(cfg Config) *Server {
	cfg = cfg.normalized()
	s := &Server{
		cfg:       cfg,
		reg:       cfg.Registry,
		brk:       resilience.NewBreakerSet(cfg.Breaker, cfg.Registry),
		adm:       newAdmission(cfg.MaxConcurrent, cfg.QueueDepth, cfg.Registry),
		sup:       super.NewSupervisor(cfg.Quarantine, cfg.Registry),
		flight:    map[string]*inflight{},
		start:     time.Now(),
		traceBase: uint32(time.Now().UnixNano()),
	}
	s.fuseSig = cfg.Fuse.Signature()
	mcfg := cfg.Memo
	mcfg.Registry = cfg.Registry
	// The enable list accepts request names ("gaussian") as operators
	// type them; the cache keys on canonical kernel names. Copied, not
	// rewritten in place — the caller owns its slice.
	if len(mcfg.Kernels) > 0 {
		names := make([]string, len(mcfg.Kernels))
		for i, name := range mcfg.Kernels {
			if spec, ok := kernels[name]; ok {
				name = spec.name
			}
			names[i] = name
		}
		mcfg.Kernels = names
	}
	s.memo = memo.New(mcfg)
	if s.memo != nil {
		// Every quarantine path — scoreboard trip, panic quarantine,
		// journal replay — funnels through the set-level ForceStuckOpen,
		// so this one hook keeps the cache honest: a (kernel, ISA) pair
		// caught corrupting loses its cached results along with its
		// dispatch rights. Registered before the quarantine journal is
		// replayed below so replay invalidations are not missed.
		s.brk.OnForceStuckOpen(func(kernel, isa string) {
			s.memo.Invalidate(kernel, isa)
		})
	}
	s.ts = tsdb.New(s.reg, tsdb.Config{
		Interval: cfg.SampleInterval,
		Capacity: cfg.TelemetryRing,
		Runtime:  true,
	})
	if cfg.SampleInterval > 0 {
		s.ts.Start()
	}
	if !cfg.SLO.Disabled {
		s.slo = newSLOTracker(cfg.SLO, time.Now)
	}
	if cfg.QuarantineJournal != "" {
		s.openQuarantineJournal(cfg.QuarantineJournal)
	}
	if cfg.StallDeadline > 0 {
		s.wd = super.NewWatchdog(super.WatchdogConfig{Deadline: cfg.StallDeadline}, cfg.Registry)
	}
	if cfg.AuditRate > 0 {
		s.aud = integrity.NewAuditor(integrity.AuditConfig{Rate: cfg.AuditRate, Seed: cfg.AuditSeed})
		s.board = integrity.NewScoreboard(integrity.ScoreboardConfig{}, s.reg)
		// A scoreboard trip is the quarantine handoff: latch the pair's
		// breaker stuck-open so every subsequent dispatch demotes to the
		// scalar path. Siblings keep their own (closed) breakers.
		s.board.OnTrip(func(kernel, isa string) {
			s.brk.ForceStuckOpen(kernel, isa)
		})
		s.aud.SetScoreboard(s.board)
		// The pool scrubber is process-wide (the scratch pool is shared);
		// the first audited server installs it.
		scrubOnce.Do(func() {
			par.SetScrubber(integrity.NewPoolScrubber(s.reg))
		})
	}
	s.inj.Store(injCell{})
	s.pools = make(map[cv.ISA]*sync.Pool, 3)
	for _, isa := range []cv.ISA{cv.ISAScalar, cv.ISANEON, cv.ISASSE2} {
		isa := isa
		s.pools[isa] = &sync.Pool{New: func() any {
			o := cv.NewOps(isa, nil)
			o.SetGuarded(true)
			o.SetGuardPolicy(cfg.Guard)
			o.SetBreakers(s.brk)
			o.SetObserver(s.reg)
			o.SetParallel(cfg.Parallel)
			o.SetFuse(cfg.Fuse)
			o.SetSupervisor(s.sup)
			if s.wd != nil {
				o.SetWatchdog(s.wd)
			}
			if s.aud != nil && isa != cv.ISAScalar {
				o.SetAuditor(s.aud)
			}
			return o
		}}
	}
	return s
}

// openQuarantineJournal applies the serve-layer resume policy for the
// quarantine journal: replay a matching journal (latching the replayed
// pairs' breakers stuck-open), cold-start over a missing or corrupt one,
// and — uniquely here — degrade to no persistence on a mismatched file
// rather than failing startup: serving traffic beats remembering
// quarantines.
func (s *Server) openQuarantineJournal(path string) {
	j, resumed, warn, err := checkpoint.OpenOrCreate(path, "quarantine", quarantineFingerprint)
	if warn != nil {
		s.reg.Emit("checkpoint.corrupt", map[string]any{
			"path": path, "error": warn.Error(),
		})
	}
	if err != nil {
		s.reg.Emit("quarantine.journal_error", map[string]any{
			"path": path, "error": err.Error(),
		})
		return
	}
	replayed, err := s.sup.AttachJournal(j)
	if err != nil {
		s.reg.Emit("quarantine.journal_error", map[string]any{
			"path": path, "error": err.Error(),
		})
		return
	}
	for _, qr := range replayed {
		s.brk.ForceStuckOpen(qr.Kernel, qr.ISA)
	}
	s.reg.Emit("quarantine.journal_open", map[string]any{
		"path": path, "resumed": resumed, "quarantines": len(replayed),
	})
}

// quarantineFingerprint pins the quarantine journal to the serve layer's
// record schema; quarantine decisions are configuration-independent, so no
// run parameters participate.
const quarantineFingerprint = "serve-quarantine-v1"

// Supervisor returns the server's panic supervisor.
func (s *Server) Supervisor() *super.Supervisor { return s.sup }

// Close releases background resources (the stall watchdog's monitor
// goroutine, the time-series sampler). The HTTP side is unaffected; pair
// with http.Server.Shutdown.
func (s *Server) Close() {
	if s.wd != nil {
		s.wd.Stop()
	}
	s.ts.Stop()
}

// Telemetry returns the server's time-series store (live rollups over the
// registry: rates, quantiles).
func (s *Server) Telemetry() *tsdb.Store { return s.ts }

// Registry returns the server's observability registry.
func (s *Server) Registry() *obs.Registry { return s.reg }

// Breakers returns the server's circuit-breaker set.
func (s *Server) Breakers() *resilience.BreakerSet { return s.brk }

// Memo returns the server's result-memoization cache, or nil when
// Config.Memo left memoization disabled.
func (s *Server) Memo() *memo.Cache { return s.memo }

// SetFaultInjector attaches (or, with nil, detaches) a fault injector
// handed to worker Ops whose ISA matches Config.FaultISA. The injector
// must be safe for concurrent use; wrap single-threaded plans with
// LockInjector.
func (s *Server) SetFaultInjector(inj faults.Injector) { s.inj.Store(injCell{inj: inj}) }

// StartDrain flips the server to draining: /readyz turns 503 so load
// balancers stop routing here, while in-flight requests finish normally.
// The caller then runs http.Server.Shutdown for the connection-level
// drain.
func (s *Server) StartDrain() { s.draining.Store(true) }

// Draining reports whether StartDrain has been called.
func (s *Server) Draining() bool { return s.draining.Load() }

// Handler returns the route table wrapped in panic recovery. The
// /debug/pprof endpoints expose the runtime profiles whose CPU samples
// carry the (kernel, isa, band) labels applied around kernel dispatch —
// continuous profiling is a curl away on any running server.
func (s *Server) Handler() http.Handler {
	mux := http.NewServeMux()
	mux.HandleFunc("/process", s.handleProcess)
	mux.HandleFunc("/healthz", s.handleHealth)
	mux.HandleFunc("/readyz", s.handleReady)
	mux.HandleFunc("/livez", s.handleLive)
	mux.HandleFunc("/metrics", s.handleMetrics)
	mux.HandleFunc("/metrics/stream", s.handleMetricsStream)
	mux.HandleFunc("/integrity", s.handleIntegrity)
	mux.HandleFunc("/memo", s.handleMemo)
	mux.HandleFunc("/debug/pprof/", httppprof.Index)
	mux.HandleFunc("/debug/pprof/profile", httppprof.Profile)
	mux.HandleFunc("/debug/pprof/symbol", httppprof.Symbol)
	mux.HandleFunc("/debug/pprof/trace", httppprof.Trace)
	return s.recoverWrap(mux)
}

// requestID returns the trace ID recoverWrap assigned to this request, or
// "". It is the one ID of the request: the X-Request-ID header, the
// request_id of serve.panic events and error bodies, the trace_id of
// kernel spans and histogram exemplars are all this string.
func requestID(ctx context.Context) string {
	return obs.TraceID(ctx)
}

// traceIDPattern is what an inbound X-Request-ID must look like to be
// adopted as the request's trace ID; anything else (too long, spoofable
// syntax) is replaced with a generated one.
func validTraceID(id string) bool {
	if len(id) == 0 || len(id) > 64 {
		return false
	}
	for i := 0; i < len(id); i++ {
		c := id[i]
		if !('a' <= c && c <= 'z' || 'A' <= c && c <= 'Z' ||
			'0' <= c && c <= '9' || c == '-' || c == '_' || c == '.') {
			return false
		}
	}
	return true
}

// recoverWrap assigns every request one trace ID — an inbound
// X-Request-ID when the client sent a well-formed one (propagation from
// an upstream caller), else a generated process-unique hex ID — echoes it
// in the X-Request-ID response header, binds it to the request context
// for the kernel/exemplar layers, and turns handler panics into 500s and
// a panics_total sample — one bad request must not take down the process.
// The same ID ties the 500 the client sees to the serve.panic event in
// the operator's event stream and to any exemplars the request left on
// the latency histograms.
func (s *Server) recoverWrap(next http.Handler) http.Handler {
	return http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		id := r.Header.Get("X-Request-ID")
		if !validTraceID(id) {
			id = fmt.Sprintf("%08x%08x", s.traceBase, s.reqSeq.Add(1))
		}
		w.Header().Set("X-Request-ID", id)
		r = r.WithContext(obs.WithTrace(r.Context(), id))
		defer func() {
			if rec := recover(); rec != nil {
				s.reg.Counter("panics_total").Inc()
				s.reg.Emit("serve.panic", map[string]any{
					"path": r.URL.Path, "panic": fmt.Sprint(rec), "request_id": id,
				})
				s.writeJSON(w, http.StatusInternalServerError,
					map[string]any{"error": "internal error", "request_id": id})
			}
		}()
		next.ServeHTTP(w, r)
	})
}

// flightStart registers one admitted request for the /livez view.
func (s *Server) flightStart(id, kernel, isa string) *inflight {
	f := &inflight{id: id, kernel: kernel, isa: isa, start: time.Now()}
	s.flightMu.Lock()
	s.flight[id] = f
	s.flightMu.Unlock()
	return f
}

// flightEnd removes a completed request from the /livez view.
func (s *Server) flightEnd(f *inflight) {
	s.flightMu.Lock()
	delete(s.flight, f.id)
	s.flightMu.Unlock()
}

// handleLive is the supervision view: always 200 (the process is alive to
// answer), reporting in-flight requests with their ages, live watchdog
// sections, total stalls declared, and the quarantined (kernel, ISA)
// pairs. Status "degraded" means at least one pair is quarantined.
func (s *Server) handleLive(w http.ResponseWriter, _ *http.Request) {
	now := time.Now()
	s.flightMu.Lock()
	inFlight := make([]map[string]any, 0, len(s.flight))
	for _, f := range s.flight {
		inFlight = append(inFlight, map[string]any{
			"id": f.id, "kernel": f.kernel, "isa": f.isa,
			"age_ms": now.Sub(f.start).Milliseconds(),
		})
	}
	s.flightMu.Unlock()
	sort.Slice(inFlight, func(i, j int) bool {
		return inFlight[i]["id"].(string) < inFlight[j]["id"].(string)
	})

	quarantines := s.sup.Quarantines()
	status := "ok"
	if len(quarantines) > 0 {
		status = "degraded"
	}
	body := map[string]any{
		"status":      status,
		"in_flight":   inFlight,
		"quarantined": quarantines,
	}
	if s.wd != nil {
		body["stalls_total"] = s.wd.Stalls()
		body["watch_sections"] = s.wd.Snapshot(now)
	}
	s.writeJSON(w, http.StatusOK, body)
}

// handleIntegrity is the corruption-defense status view: the audit
// sampler's configured and load-scaled effective rates with its lifetime
// tallies, the scoreboard's per-(kernel, ISA) decayed mismatch scores, and
// which pairs have latched quarantine. With auditing disabled it reports
// {"enabled": false} so dashboards can probe the endpoint unconditionally.
func (s *Server) handleIntegrity(w http.ResponseWriter, _ *http.Request) {
	if s.aud == nil {
		s.writeJSON(w, http.StatusOK, map[string]any{"enabled": false})
		return
	}
	quarantined := []string{}
	for _, p := range s.board.Snapshot() {
		if p.Tripped {
			quarantined = append(quarantined, p.Kernel+"/"+p.ISA)
		}
	}
	s.writeJSON(w, http.StatusOK, map[string]any{
		"enabled":         true,
		"configured_rate": s.aud.Config().Rate,
		"effective_rate":  s.aud.EffectiveRate(),
		"sampled":         s.aud.Sampled(),
		"skipped":         s.aud.Skipped(),
		"mismatches":      s.aud.Mismatches(),
		"pairs":           s.board.Snapshot(),
		"quarantined":     quarantined,
	})
}

// writeJSON emits one JSON response and counts it under requests_total.
func (s *Server) writeJSON(w http.ResponseWriter, code int, body any) {
	s.reg.Counter("requests_total", obs.L("code", strconv.Itoa(code))).Inc()
	w.Header().Set("Content-Type", "application/json")
	w.WriteHeader(code)
	json.NewEncoder(w).Encode(body)
}

// shed emits the load-shedding response: 429 with Retry-After, counted
// under requests_shed_total by reason ("queue" or "deadline").
func (s *Server) shed(w http.ResponseWriter, reason string, detail string) {
	s.reg.Counter("requests_shed_total", obs.L("reason", reason)).Inc()
	w.Header().Set("Retry-After", "1")
	s.writeJSON(w, http.StatusTooManyRequests,
		map[string]any{"error": detail, "reason": reason})
}

func (s *Server) handleHealth(w http.ResponseWriter, _ *http.Request) {
	s.writeJSON(w, http.StatusOK, map[string]any{"status": "ok"})
}

// handleReady reports readiness: 503 while draining, otherwise 200 with
// the full breaker snapshot. Status "degraded" means at least one
// (kernel, ISA) pair is not closed — those calls are being served by the
// scalar path, so the process still accepts traffic.
func (s *Server) handleReady(w http.ResponseWriter, _ *http.Request) {
	if s.Draining() {
		s.writeJSON(w, http.StatusServiceUnavailable, map[string]any{"status": "draining"})
		return
	}
	snap := s.brk.Snapshot()
	states := make(map[string]string, len(snap))
	status := "ok"
	for k, st := range snap {
		states[k] = st.String()
		if st != resilience.StateClosed {
			status = "degraded"
		}
	}
	s.writeJSON(w, http.StatusOK, map[string]any{"status": status, "breakers": states})
}

// handleMetrics serves the registry in classic Prometheus text by
// default; `?format=openmetrics` or an Accept header naming
// application/openmetrics-text selects the OpenMetrics rendering, which
// is the one that carries trace-ID exemplars on histogram buckets. SLO
// burn gauges are recomputed on every scrape so they are never stale.
func (s *Server) handleMetrics(w http.ResponseWriter, r *http.Request) {
	s.slo.publish(s.reg)
	format := r.URL.Query().Get("format")
	if format == "openmetrics" ||
		(format == "" && strings.Contains(r.Header.Get("Accept"), "application/openmetrics-text")) {
		w.Header().Set("Content-Type",
			"application/openmetrics-text; version=1.0.0; charset=utf-8")
		s.reg.WriteOpenMetrics(w)
		return
	}
	w.Header().Set("Content-Type", "text/plain; version=0.0.4")
	s.reg.WritePrometheus(w)
}

// statusWriter captures the response status so the SLO tracker can judge
// the request after the handler body has written it.
type statusWriter struct {
	http.ResponseWriter
	code int
}

func (w *statusWriter) WriteHeader(code int) {
	if w.code == 0 {
		w.code = code
	}
	w.ResponseWriter.WriteHeader(code)
}

// handleProcess times the request from arrival (queue wait included) and
// feeds its verdict — response code plus full latency — to the SLO
// tracker; the dispatch itself lives in processRequest.
func (s *Server) handleProcess(w http.ResponseWriter, r *http.Request) {
	entry := time.Now()
	sw := &statusWriter{ResponseWriter: w}
	s.processRequest(sw, r)
	code := sw.code
	if code == 0 {
		code = http.StatusOK
	}
	s.slo.record(code, time.Since(entry))
}

// processRequest runs one kernel dispatch: decode, admit (or shed),
// synthesize the source frame, run the guarded Ctx kernel under the
// request deadline, and report the outcome with the breaker's view of the
// (kernel, ISA) pair.
func (s *Server) processRequest(w http.ResponseWriter, r *http.Request) {
	if r.Method != http.MethodGet && r.Method != http.MethodPost {
		s.writeJSON(w, http.StatusMethodNotAllowed,
			map[string]any{"error": "use GET or POST"})
		return
	}
	req, err := ParseRequest(r.URL.Query(), s.cfg.limits())
	if err != nil {
		s.writeJSON(w, http.StatusBadRequest, map[string]any{"error": err.Error()})
		return
	}
	ctx, cancel := context.WithTimeout(r.Context(), req.Deadline)
	defer cancel()

	spec := kernels[req.Kernel]
	if s.memo.Enabled(spec.name) {
		s.processMemo(ctx, w, req, spec)
		return
	}

	if err := s.adm.acquire(ctx); err != nil {
		if errors.Is(err, errShed) {
			s.shed(w, "queue", "admission queue full")
		} else {
			s.shed(w, "deadline", "deadline expired while queued")
		}
		return
	}
	defer s.adm.release()

	src := synthesize(spec.srcKind, req.Width, req.Height, req.Seed)
	dst, err := spec.dst(req.Width, req.Height)
	if err != nil {
		s.writeJSON(w, http.StatusBadRequest, map[string]any{"error": err.Error()})
		return
	}

	faults, elapsed, err := s.dispatch(ctx, req, spec, src, dst)
	if err != nil {
		s.writeDispatchError(ctx, w, req, spec, err)
		return
	}
	s.writeResult(w, req, spec, dst, elapsed, faults, "")
}

// dispatch runs one admitted kernel execution end to end: /livez flight
// registration, audit load scaling, worker Ops checkout, the pprof-labeled
// kernel run, and the request_seconds observation. The caller holds an
// admission slot (non-memo path) or acquires one inside compute (memo
// path).
func (s *Server) dispatch(ctx context.Context, req Request, spec kernelSpec, src, dst *image.Mat) (int, time.Duration, error) {
	// Queue headroom drives the effective audit rate: a filling queue
	// down-samples audits before it delays requests.
	if s.aud != nil {
		s.aud.SetLoadFactor(1 - s.adm.fill())
	}

	// Admitted: visible on /livez from here until the dispatch returns.
	fl := s.flightStart(requestID(ctx), spec.name, req.ISA.String())
	defer s.flightEnd(fl)
	if testProcessStart != nil {
		testProcessStart()
	}

	o := s.pools[req.ISA].Get().(*cv.Ops)
	defer s.pools[req.ISA].Put(o)
	o.ResetFaults()
	o.SetFaultInjector(s.injectorFor(req.ISA))

	// The pprof labels make CPU profiles attributable: every sample taken
	// inside the dispatch carries (kernel, isa), so `go tool pprof -tags`
	// splits hot CPU by kernel without any symbol spelunking. Band workers
	// add their own band label on top (see cv.bandProf).
	var err error
	start := time.Now()
	pprof.Do(ctx, pprof.Labels("kernel", spec.name, "isa", req.ISA.String()),
		func(ctx context.Context) {
			err = spec.run(ctx, o, src, dst)
		})
	elapsed := time.Since(start)
	s.reg.Histogram("request_seconds", requestBuckets,
		obs.L("kernel", spec.name)).ObserveExemplar(elapsed.Seconds(), fl.id, s.reg.Now())
	return len(o.Faults()), elapsed, err
}

// processMemo serves one request through the memoization layer. The
// content key is derived after decode and before admission, so hits and
// coalesced waiters never consume admission slots — only the flight
// leader's compute closure acquires one. Hit responses flow through the
// same writeJSON/statusWriter path as compute responses, so they count
// toward the availability and latency SLOs like any other request.
func (s *Server) processMemo(ctx context.Context, w http.ResponseWriter, req Request, spec kernelSpec) {
	dw, dh := spec.dstDims(req.Width, req.Height)
	if dw < 1 || dh < 1 {
		s.writeJSON(w, http.StatusBadRequest, map[string]any{
			"error": fmt.Sprintf("destination %dx%d has no pixels", dw, dh)})
		return
	}
	src := synthesize(spec.srcKind, req.Width, req.Height, req.Seed)
	key := memo.KeyFor(spec.name, req.ISA.String(), spec.sig+","+s.fuseSig, src)

	// The response plane comes from the scratch pool on the overwrite-only
	// fast path: a hit copies a full cached plane over it, so the zeroing
	// sweep GetMat performs would be pure waste. The compute closure
	// restores zero initialization explicitly before running the kernel.
	dst := par.GetMatForOverwrite(dw, dh, spec.dstKind)
	defer par.PutMat(dst)

	var faults int
	start := time.Now()
	outcome, err := s.memo.Do(ctx, key, dst, func(ctx context.Context) error {
		if err := s.adm.acquire(ctx); err != nil {
			return err
		}
		defer s.adm.release()
		dst.Clear()
		f, _, err := s.dispatch(ctx, req, spec, src, dst)
		faults = f
		return err
	})
	elapsed := time.Since(start)
	w.Header().Set("X-Memo", outcome.String())

	if err != nil {
		if errors.Is(err, errShed) {
			s.shed(w, "queue", "admission queue full")
			return
		}
		if errors.Is(err, context.DeadlineExceeded) || errors.Is(err, context.Canceled) {
			s.shed(w, "deadline", "deadline expired while queued")
			return
		}
		s.writeDispatchError(ctx, w, req, spec, err)
		return
	}
	// Hits and coalesced copies count in request_seconds too: the
	// histogram is the per-kernel traffic view, and these are requests the
	// server answered (their sub-millisecond latency is exactly the point;
	// memo_hit_seconds holds the fine-grained copy-path distribution).
	if outcome != memo.Miss {
		s.reg.Histogram("request_seconds", requestBuckets,
			obs.L("kernel", spec.name)).ObserveExemplar(elapsed.Seconds(), requestID(ctx), s.reg.Now())
	}
	s.writeResult(w, req, spec, dst, elapsed, faults, outcome.String())
}

// writeDispatchError maps a kernel-dispatch error to its response: typed
// deadline errors shed, stalls are server faults, anything else is the
// client geometry error it can only be.
func (s *Server) writeDispatchError(ctx context.Context, w http.ResponseWriter, req Request, spec kernelSpec, err error) {
	var de *resilience.DeadlineError
	if errors.As(err, &de) {
		// Mid-kernel deadline expiry is shed like queue overflow: the
		// client's budget is spent, and backing off is the remedy.
		s.shed(w, "deadline", de.Error())
		return
	}
	var se *super.StallError
	if errors.As(err, &se) {
		// A wedged kernel band: the watchdog cancelled the pass and the
		// verdict already reached the pair's breaker. 500, not 429 — the
		// fault is ours, and the client may retry immediately (the retry
		// will run scalar if the breaker opened).
		s.reg.Counter("request_stalls_total",
			obs.L("kernel", spec.name), obs.L("isa", req.ISA.String())).Inc()
		s.writeJSON(w, http.StatusInternalServerError, map[string]any{
			"error": se.Error(), "stall": true, "band": se.Band,
			"request_id": requestID(ctx),
		})
		return
	}
	// Kernels only fail on invalid geometry (faults are absorbed by
	// the guard); report it as the client error it is.
	s.writeJSON(w, http.StatusBadRequest, map[string]any{"error": err.Error()})
}

// writeResult emits the 200 response for a completed request. memo names
// how the memoization layer satisfied it ("" when memoization is off for
// the kernel).
func (s *Server) writeResult(w http.ResponseWriter, req Request, spec kernelSpec, dst *image.Mat, elapsed time.Duration, faults int, memoOutcome string) {
	body := map[string]any{
		"kernel":     spec.name,
		"isa":        req.ISA.String(),
		"width":      req.Width,
		"height":     req.Height,
		"seed":       req.Seed,
		"checksum":   strconv.FormatUint(checksum(dst), 16),
		"elapsed_us": elapsed.Microseconds(),
		"faults":     faults,
		"breaker":    s.brk.State(spec.name, req.ISA.String()).String(),
	}
	if memoOutcome != "" {
		body["memo"] = memoOutcome
	}
	s.writeJSON(w, http.StatusOK, body)
}

// handleMemo is the result-cache status view: occupancy against budget,
// hit/miss/coalesce tallies, and the per-(kernel, ISA) entry breakdown.
// With memoization disabled it reports {"enabled": false} so dashboards
// can probe the endpoint unconditionally.
func (s *Server) handleMemo(w http.ResponseWriter, _ *http.Request) {
	if s.memo == nil {
		s.writeJSON(w, http.StatusOK, map[string]any{"enabled": false})
		return
	}
	flights, participants := s.memo.InFlight()
	s.writeJSON(w, http.StatusOK, map[string]any{
		"enabled":      true,
		"stats":        s.memo.Stats(),
		"kernels":      s.memo.Kernels(),
		"flights":      flights,
		"participants": participants,
	})
}

// requestBuckets are the request_seconds histogram bounds.
var requestBuckets = []float64{
	0.0005, 0.001, 0.0025, 0.005, 0.01, 0.025, 0.05, 0.1, 0.25, 0.5, 1, 2.5, 5,
}

// injectorFor returns the attached injector when it applies to this ISA:
// scalar Ops never get one (the referee must stay trustworthy), and
// Config.FaultISA narrows injection to a single SIMD family.
func (s *Server) injectorFor(isa cv.ISA) faults.Injector {
	cell := s.inj.Load().(injCell)
	if cell.inj == nil || isa == cv.ISAScalar {
		return nil
	}
	if s.cfg.FaultISA != "" && s.cfg.FaultISA != isa.String() {
		return nil
	}
	return cell.inj
}

func synthesize(kind image.Type, w, h int, seed uint64) *image.Mat {
	res := image.Resolution{Width: w, Height: h}
	if kind == image.F32 {
		return image.SyntheticF32(res, seed)
	}
	return image.Synthetic(res, seed)
}

// LockInjector wraps an injector with a mutex so single-threaded fault
// plans (faults.Plan mutates its RNG state on every call) can be shared
// across concurrent worker Ops.
func LockInjector(inner faults.Injector) faults.Injector {
	return &lockedInjector{inner: inner}
}

type lockedInjector struct {
	mu    sync.Mutex
	inner faults.Injector
}

func (l *lockedInjector) V128(site faults.Site, v vec.V128) vec.V128 {
	l.mu.Lock()
	defer l.mu.Unlock()
	return l.inner.V128(site, v)
}

func (l *lockedInjector) V64(site faults.Site, v vec.V64) vec.V64 {
	l.mu.Lock()
	defer l.mu.Unlock()
	return l.inner.V64(site, v)
}

func (l *lockedInjector) Skew(site faults.Site, slack int) int {
	l.mu.Lock()
	defer l.mu.Unlock()
	return l.inner.Skew(site, slack)
}

// BreakerKeys returns the sorted (kernel, ISA) pairs with live breakers —
// the sort is a stable order for logs and tests.
func (s *Server) BreakerKeys() []string {
	keys := s.brk.Keys()
	sort.Strings(keys)
	return keys
}
