package serve

import (
	"encoding/json"
	"fmt"
	"net/http"
	"strconv"
	"strings"
	"time"
)

// This file is the live-telemetry push side of the front-end: /metrics/stream
// serves Server-Sent Events, one JSON StreamFrame per interval, built from
// the time-series store's windowed rollups. It is the protocol cmd/simdtop
// renders; being SSE over plain JSON it is equally consumable with curl.
//
// Each frame forces a fresh sample into the ring first, so a stream works
// even on servers running without the background sampler (SampleInterval 0):
// the act of watching creates the history being watched.

// StreamFrame is one /metrics/stream event payload.
type StreamFrame struct {
	// Time is the frame's sample timestamp (registry clock), RFC3339Nano.
	Time string `json:"time"`
	// UptimeSec is seconds since the server was constructed.
	UptimeSec float64 `json:"uptime_sec"`
	// WindowSec is the rollup window the rates and quantiles span. It can
	// be shorter than requested while the ring is young, and zero (with
	// empty Kernels) before two samples exist.
	WindowSec float64 `json:"window_sec"`
	// Kernels holds per-kernel request throughput and latency quantiles
	// over the window, sorted by kernel name.
	Kernels []KernelStats `json:"kernels"`
	// SLO is the burn state per configured window; absent when SLO
	// tracking is disabled.
	SLO []SLOStatus `json:"slo,omitempty"`
	// Breakers maps "kernel/isa" to breaker state for every live breaker.
	Breakers map[string]string `json:"breakers,omitempty"`
	// Quarantined lists "kernel/isa" pairs the supervisor has demoted.
	Quarantined []string `json:"quarantined,omitempty"`
	// InFlight is the number of admitted /process requests right now.
	InFlight int `json:"in_flight"`
	// Goroutines and HeapAllocBytes are process health from the runtime
	// collector's newest sample.
	Goroutines     int     `json:"goroutines"`
	HeapAllocBytes float64 `json:"heap_alloc_bytes"`
	// ShedPerSec is the load-shedding rate (all reasons) over the window.
	ShedPerSec float64 `json:"shed_per_sec"`
	// Audit is the integrity view — sampler rates, lifetime tallies, and
	// tripped pairs; absent when auditing is disabled.
	Audit *AuditStats `json:"audit,omitempty"`
	// Memo is the result-cache view — occupancy, lifetime tallies, and
	// the windowed hit rate; absent when memoization is disabled.
	Memo *MemoStats `json:"memo,omitempty"`
}

// MemoStats is the /metrics/stream result-cache summary. The lifetime
// tallies come from the cache itself; HitsPerSec and MissesPerSec are
// windowed rates from the rollup ring.
type MemoStats struct {
	Entries      int     `json:"entries"`
	Bytes        int64   `json:"bytes"`
	BudgetBytes  int64   `json:"budget_bytes"`
	Hits         uint64  `json:"hits"`
	Misses       uint64  `json:"misses"`
	Coalesced    uint64  `json:"coalesced"`
	Evictions    uint64  `json:"evictions"`
	HitsPerSec   float64 `json:"hits_per_sec"`
	MissesPerSec float64 `json:"misses_per_sec"`
	// HitRatePct is the windowed hit+coalesce share of lookups, percent;
	// falls back to the lifetime ratio while the ring is young.
	HitRatePct float64 `json:"hit_rate_pct"`
}

// AuditStats is the /metrics/stream integrity summary.
type AuditStats struct {
	// EffectiveRate is the load-scaled sampling rate right now (configured
	// rate x admission-queue headroom).
	EffectiveRate float64 `json:"effective_rate"`
	Sampled       uint64  `json:"sampled"`
	Mismatches    uint64  `json:"mismatches"`
	// Quarantined lists "kernel/isa" pairs the corruption scoreboard has
	// latched stuck-open.
	Quarantined []string `json:"quarantined,omitempty"`
}

// KernelStats is one kernel's windowed view.
type KernelStats struct {
	Kernel string  `json:"kernel"`
	QPS    float64 `json:"qps"`
	P50Ms  float64 `json:"p50_ms"`
	P95Ms  float64 `json:"p95_ms"`
	P99Ms  float64 `json:"p99_ms"`
}

// SLOStatus is one window's burn state for both objectives.
type SLOStatus struct {
	Window           string  `json:"window"`
	LatencyBurn      float64 `json:"latency_burn"`
	AvailabilityBurn float64 `json:"availability_burn"`
	Requests         uint64  `json:"requests"`
}

// labelValue extracts one label's value from a rendered series key
// (`name{k="v",k2="v2"}`), or "" when absent. Registry label values here
// (kernel names, ISA names) never contain quotes, so a plain scan is exact.
func labelValue(series, label string) string {
	i := strings.Index(series, label+`="`)
	if i < 0 {
		return ""
	}
	rest := series[i+len(label)+2:]
	j := strings.IndexByte(rest, '"')
	if j < 0 {
		return ""
	}
	return rest[:j]
}

// buildFrame samples the registry and assembles one frame over window.
func (s *Server) buildFrame(window time.Duration) StreamFrame {
	sm := s.ts.Sample()
	s.slo.publish(s.reg)
	f := StreamFrame{
		Time:      sm.Time.Format(time.RFC3339Nano),
		UptimeSec: time.Since(s.start).Seconds(),
	}
	s.flightMu.Lock()
	f.InFlight = len(s.flight)
	s.flightMu.Unlock()

	f.Goroutines = int(sm.Gauges["go_goroutines"])
	f.HeapAllocBytes = sm.Gauges["go_heap_alloc_bytes"]

	if ru, ok := s.ts.Rollup(window); ok {
		f.WindowSec = ru.Window.Seconds()
		for _, key := range ru.SeriesMatching("request_seconds_count{") {
			k := labelValue(key, "kernel")
			if k == "" {
				continue
			}
			st := KernelStats{Kernel: k, QPS: ru.Rates[key]}
			hk := "request_seconds{kernel=" + strconv.Quote(k) + "}"
			if q, ok := ru.Quantiles[hk]; ok {
				st.P50Ms = q.P50 * 1e3
				st.P95Ms = q.P95 * 1e3
				st.P99Ms = q.P99 * 1e3
			}
			f.Kernels = append(f.Kernels, st)
		}
		for _, key := range ru.SeriesMatching("requests_shed_total{") {
			f.ShedPerSec += ru.Rates[key]
		}
	}

	for _, b := range s.slo.burnRates() {
		f.SLO = append(f.SLO, SLOStatus{
			Window:           b.Window.String(),
			LatencyBurn:      b.Latency,
			AvailabilityBurn: b.Availability,
			Requests:         b.Requests,
		})
	}

	snap := s.brk.Snapshot()
	if len(snap) > 0 {
		f.Breakers = make(map[string]string, len(snap))
		for k, st := range snap {
			f.Breakers[k] = st.String()
		}
	}
	for _, qr := range s.sup.Quarantines() {
		f.Quarantined = append(f.Quarantined, qr.Kernel+"/"+qr.ISA)
	}
	if s.aud != nil {
		a := &AuditStats{
			EffectiveRate: s.aud.EffectiveRate(),
			Sampled:       s.aud.Sampled(),
			Mismatches:    s.aud.Mismatches(),
		}
		for _, p := range s.board.Snapshot() {
			if p.Tripped {
				a.Quarantined = append(a.Quarantined, p.Kernel+"/"+p.ISA)
			}
		}
		f.Audit = a
	}
	if s.memo != nil {
		st := s.memo.Stats()
		m := &MemoStats{
			Entries:     st.Entries,
			Bytes:       st.Bytes,
			BudgetBytes: st.BudgetBytes,
			Hits:        st.Hits,
			Misses:      st.Misses,
			Coalesced:   st.Coalesced,
			Evictions:   st.Evictions,
		}
		if ru, ok := s.ts.Rollup(window); ok {
			m.HitsPerSec = ru.Rates["memo_hits_total"] + ru.Rates["memo_coalesced_total"]
			m.MissesPerSec = ru.Rates["memo_misses_total"]
		}
		if total := m.HitsPerSec + m.MissesPerSec; total > 0 {
			m.HitRatePct = 100 * m.HitsPerSec / total
		} else if lt := st.Hits + st.Coalesced + st.Misses; lt > 0 {
			m.HitRatePct = 100 * float64(st.Hits+st.Coalesced) / float64(lt)
		}
		f.Memo = m
	}
	return f
}

// handleMetricsStream serves frames as Server-Sent Events. Query
// parameters: interval_ms (frame cadence, default 1000, clamped to
// [100, 60000]), frames (stop after N frames; 0 = until the client
// disconnects), window_ms (rollup window, default 60000). The first frame
// is sent immediately so one-shot consumers need not wait an interval.
func (s *Server) handleMetricsStream(w http.ResponseWriter, r *http.Request) {
	fl, ok := w.(http.Flusher)
	if !ok {
		s.writeJSON(w, http.StatusInternalServerError,
			map[string]any{"error": "streaming unsupported"})
		return
	}
	interval := time.Second
	if v, err := strconv.Atoi(r.URL.Query().Get("interval_ms")); err == nil && v > 0 {
		interval = time.Duration(min(max(v, 100), 60000)) * time.Millisecond
	}
	frames := 0
	if v, err := strconv.Atoi(r.URL.Query().Get("frames")); err == nil && v > 0 {
		frames = v
	}
	window := time.Minute
	if v, err := strconv.Atoi(r.URL.Query().Get("window_ms")); err == nil && v > 0 {
		window = time.Duration(v) * time.Millisecond
	}

	w.Header().Set("Content-Type", "text/event-stream")
	w.Header().Set("Cache-Control", "no-store")
	w.WriteHeader(http.StatusOK)

	t := time.NewTicker(interval)
	defer t.Stop()
	for sent := 0; ; {
		frame := s.buildFrame(window)
		data, err := json.Marshal(frame)
		if err != nil {
			return
		}
		fmt.Fprintf(w, "data: %s\n\n", data)
		fl.Flush()
		sent++
		if frames > 0 && sent >= frames {
			return
		}
		select {
		case <-r.Context().Done():
			return
		case <-t.C:
		}
	}
}
