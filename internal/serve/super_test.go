package serve

import (
	"encoding/json"
	"net/http"
	"net/http/httptest"
	"path/filepath"
	"sync/atomic"
	"testing"
	"time"

	"simdstudy/internal/cv"
	"simdstudy/internal/faults"
	"simdstudy/internal/resilience"
	"simdstudy/internal/vec"
)

// panicInjector crashes every SIMD intrinsic — the serve-layer stand-in for
// a poisoned kernel path.
type panicInjector struct{}

func (panicInjector) V128(faults.Site, vec.V128) vec.V128 { panic("poisoned lane") }
func (panicInjector) V64(faults.Site, vec.V64) vec.V64    { panic("poisoned lane") }
func (panicInjector) Skew(faults.Site, int) int           { panic("poisoned lane") }

// serveWedge blocks the first intrinsic call it sees for stallFor —
// simulating a band wedged mid-request — and is a no-op afterwards.
type serveWedge struct {
	stallFor time.Duration
	fired    atomic.Bool
}

func (w *serveWedge) maybeWedge() {
	if w.fired.CompareAndSwap(false, true) {
		time.Sleep(w.stallFor)
	}
}

func (w *serveWedge) V128(_ faults.Site, v vec.V128) vec.V128 { w.maybeWedge(); return v }
func (w *serveWedge) V64(_ faults.Site, v vec.V64) vec.V64    { w.maybeWedge(); return v }
func (w *serveWedge) Skew(faults.Site, int) int               { w.maybeWedge(); return 0 }

// TestPanicResponseCarriesRequestID: a request whose kernel dispatch panics
// must come back as a 500 carrying the X-Request-ID header and the same ID
// in the body and the serve.panic event — the operator can join the
// client's error to the event stream.
func TestPanicResponseCarriesRequestID(t *testing.T) {
	s := NewServer(Config{})
	defer s.Close()
	s.SetFaultInjector(panicInjector{})
	ts := httptest.NewServer(s.Handler())
	defer ts.Close()

	resp, err := http.Get(ts.URL + "/process?kernel=gaussian&isa=neon&width=64&height=48")
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusInternalServerError {
		t.Fatalf("status = %d, want 500", resp.StatusCode)
	}
	id := resp.Header.Get("X-Request-ID")
	if id == "" {
		t.Fatal("panic 500 missing X-Request-ID header")
	}
	var body map[string]any
	if err := json.NewDecoder(resp.Body).Decode(&body); err != nil {
		t.Fatal(err)
	}
	if body["request_id"] != id {
		t.Errorf("body request_id = %v, header %q", body["request_id"], id)
	}

	found := false
	for _, ev := range s.Registry().Events() {
		if ev.Name == "serve.panic" {
			found = true
			if ev.Fields["request_id"] != id {
				t.Errorf("serve.panic request_id = %v, want %q", ev.Fields["request_id"], id)
			}
		}
	}
	if !found {
		t.Error("no serve.panic event emitted")
	}

	// The in-flight entry must not leak after the panic unwind.
	if _, live := get(t, ts.URL+"/livez"); len(live["in_flight"].([]any)) != 0 {
		t.Errorf("in_flight after panic = %v", live["in_flight"])
	}
}

// TestRepeatedPanicsQuarantine: repeated kernel panics quarantine the
// (kernel, ISA) pair, visible on /livez, and later requests for it succeed
// on the scalar path.
func TestRepeatedPanicsQuarantine(t *testing.T) {
	s := NewServer(Config{})
	defer s.Close()
	s.SetFaultInjector(panicInjector{})
	ts := httptest.NewServer(s.Handler())
	defer ts.Close()

	url := ts.URL + "/process?kernel=gaussian&isa=neon&width=64&height=48"
	// The default policy quarantines after 3 panics.
	for i := 0; i < 3; i++ {
		if code, _ := get(t, url); code != http.StatusInternalServerError {
			t.Fatalf("poisoned request %d: status %d, want 500", i, code)
		}
	}
	if !s.Supervisor().Quarantined("GaussianBlur", "neon") {
		t.Fatal("pair not quarantined after 3 panics")
	}
	if st := s.Breakers().State("GaussianBlur", "neon"); st != resilience.StateStuckOpen {
		t.Errorf("breaker state = %v, want stuck-open", st)
	}

	// Quarantined: the SIMD path (and with it the injector) never runs.
	if code, body := get(t, url); code != http.StatusOK {
		t.Fatalf("quarantined request: status %d (%v), want 200", code, body)
	}

	code, body := get(t, ts.URL+"/livez")
	if code != http.StatusOK {
		t.Fatalf("/livez status = %d", code)
	}
	if body["status"] != "degraded" {
		t.Errorf("/livez status = %v, want degraded", body["status"])
	}
	qs, _ := body["quarantined"].([]any)
	if len(qs) != 1 {
		t.Fatalf("/livez quarantined = %v", body["quarantined"])
	}
	q := qs[0].(map[string]any)
	if q["kernel"] != "GaussianBlur" || q["isa"] != "neon" {
		t.Errorf("/livez quarantine entry = %v", q)
	}
}

// TestQuarantineJournalSurvivesRestart: a quarantine decision outlives the
// process — a second server over the same journal starts with the pair
// quarantined and its breaker stuck-open, without re-probing.
func TestQuarantineJournalSurvivesRestart(t *testing.T) {
	path := filepath.Join(t.TempDir(), "quarantine.journal")

	s := NewServer(Config{QuarantineJournal: path})
	defer s.Close()
	s.SetFaultInjector(panicInjector{})
	ts := httptest.NewServer(s.Handler())
	url := ts.URL + "/process?kernel=gaussian&isa=neon&width=64&height=48"
	for i := 0; i < 3; i++ {
		get(t, url)
	}
	ts.Close()
	if !s.Supervisor().Quarantined("GaussianBlur", "neon") {
		t.Fatal("pair not quarantined in first process")
	}

	// "Restart": a fresh server over the same journal, with no injector —
	// the quarantine must hold without any new panics.
	s2 := NewServer(Config{QuarantineJournal: path})
	defer s2.Close()
	if !s2.Supervisor().Quarantined("GaussianBlur", "neon") {
		t.Fatal("restarted server lost the quarantine")
	}
	if st := s2.Breakers().State("GaussianBlur", "neon"); st != resilience.StateStuckOpen {
		t.Errorf("restarted breaker state = %v, want stuck-open", st)
	}
	ts2 := httptest.NewServer(s2.Handler())
	defer ts2.Close()
	if code, _ := get(t, ts2.URL+"/process?kernel=gaussian&isa=neon&width=64&height=48"); code != http.StatusOK {
		t.Fatalf("quarantined request on restarted server: %d, want 200", code)
	}

	// Other pairs are unaffected on the restarted server.
	if code, _ := get(t, ts2.URL+"/process?kernel=gaussian&isa=sse2&width=64&height=48"); code != http.StatusOK {
		t.Fatalf("unrelated pair on restarted server: %d, want 200", code)
	}
}

// TestLivezBaseline: a healthy idle server reports ok with empty
// supervision state.
func TestLivezBaseline(t *testing.T) {
	s := NewServer(Config{StallDeadline: time.Hour})
	defer s.Close()
	ts := httptest.NewServer(s.Handler())
	defer ts.Close()

	code, body := get(t, ts.URL+"/livez")
	if code != http.StatusOK {
		t.Fatalf("/livez status = %d", code)
	}
	if body["status"] != "ok" {
		t.Errorf("status = %v", body["status"])
	}
	if n := len(body["in_flight"].([]any)); n != 0 {
		t.Errorf("in_flight = %d entries", n)
	}
	if body["stalls_total"] != float64(0) {
		t.Errorf("stalls_total = %v", body["stalls_total"])
	}
}

// TestLivezInFlight: an admitted request parked in its dispatch shows up on
// /livez with its kernel, ISA and age, and disappears once it completes.
func TestLivezInFlight(t *testing.T) {
	s := NewServer(Config{})
	defer s.Close()
	gate := make(chan struct{})
	testProcessStart = func() { <-gate } // receives immediately once closed
	defer func() { testProcessStart = nil }()
	ts := httptest.NewServer(s.Handler())
	defer ts.Close()

	done := make(chan int, 1)
	go func() {
		resp, err := http.Get(ts.URL + "/process?kernel=sobel&isa=sse2&width=64&height=48")
		if err != nil {
			done <- -1
			return
		}
		resp.Body.Close()
		done <- resp.StatusCode
	}()
	waitFor(t, func() bool {
		s.flightMu.Lock()
		defer s.flightMu.Unlock()
		return len(s.flight) == 1
	})

	_, body := get(t, ts.URL+"/livez")
	fls := body["in_flight"].([]any)
	if len(fls) != 1 {
		t.Fatalf("in_flight = %v", body["in_flight"])
	}
	fl := fls[0].(map[string]any)
	if fl["kernel"] != "SobelFilter" || fl["isa"] != "sse2" || fl["id"] == "" {
		t.Errorf("in_flight entry = %v", fl)
	}
	if _, ok := fl["age_ms"].(float64); !ok {
		t.Errorf("in_flight entry missing age_ms: %v", fl)
	}

	close(gate)
	if code := <-done; code != http.StatusOK {
		t.Fatalf("parked request = %d, want 200", code)
	}
	if _, body := get(t, ts.URL+"/livez"); len(body["in_flight"].([]any)) != 0 {
		t.Errorf("in_flight after completion = %v", body["in_flight"])
	}
}

// TestStallResponse: a request wedged past Config.StallDeadline fails with
// the typed stall 500 and a request_stalls_total sample rather than holding
// its slot for the whole client deadline.
func TestStallResponse(t *testing.T) {
	s := NewServer(Config{
		StallDeadline: 25 * time.Millisecond,
		Parallel:      cv.ParallelConfig{Workers: 2, MinRowsPerBand: 1},
		Breaker:       resilience.BreakerConfig{MinSamples: 1, FailureRate: 1},
	})
	defer s.Close()
	s.SetFaultInjector(&serveWedge{stallFor: 500 * time.Millisecond})
	ts := httptest.NewServer(s.Handler())
	defer ts.Close()

	code, body := get(t, ts.URL+"/process?kernel=gaussian&isa=neon&width=64&height=48&deadline_ms=10000")
	if code != http.StatusInternalServerError {
		t.Fatalf("stalled request = %d (%v), want 500", code, body)
	}
	if body["stall"] != true {
		t.Errorf("body = %v, want stall:true", body)
	}
	if body["request_id"] == "" || body["request_id"] == nil {
		t.Errorf("stall response missing request_id: %v", body)
	}
	if n := s.Registry().Snapshot()[`request_stalls_total{isa="neon",kernel="GaussianBlur"}`]; n != 1 {
		t.Errorf("request_stalls_total = %v, want 1", n)
	}
	if st := s.Breakers().State("GaussianBlur", "neon"); st != resilience.StateOpen {
		t.Errorf("breaker state = %v, want open", st)
	}
}
