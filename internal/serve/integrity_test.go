package serve

import (
	"math"
	"net/http"
	"net/http/httptest"
	"testing"
	"time"

	"simdstudy/internal/resilience"
)

// TestAuditQuarantineServesScalarByteIdentical is the serving-layer
// acceptance check: a (kernel, ISA) pair whose SIMD unit silently corrupts
// every call must keep answering 200 with scalar-identical bytes the whole
// way — guard repairs before quarantine, breaker-enforced scalar dispatch
// after the corruption scoreboard latches the pair stuck-open.
func TestAuditQuarantineServesScalarByteIdentical(t *testing.T) {
	s := NewServer(Config{
		AuditRate: 1.0, AuditSeed: 5,
		FaultISA: "neon",
		// The natural breaker is configured to never open on its own
		// (window and minimum far beyond the test), so the stuck-open latch
		// below is attributable to the scoreboard alone.
		Breaker: resilience.BreakerConfig{Window: 256, MinSamples: 256, FailureRate: 1.0},
	})
	s.SetFaultInjector(saboteur{})
	ts := httptest.NewServer(s.Handler())
	defer ts.Close()

	q := "/process?kernel=gaussian&width=64&height=48&seed=3"
	_, scalar := get(t, ts.URL+q+"&isa=scalar")

	// Every neon dispatch is corrupted and, at rate 1.0, every one audited:
	// the scoreboard's decayed mismatch rate crosses its threshold at the
	// MinSamples-th audit (default 8) and quarantines the pair.
	var last map[string]any
	for i := 0; i < 8; i++ {
		code, body := get(t, ts.URL+q+"&isa=neon")
		if code != http.StatusOK {
			t.Fatalf("request %d = %d body %v", i, code, body)
		}
		if body["checksum"] != scalar["checksum"] {
			t.Fatalf("request %d checksum %v != scalar %v", i, body["checksum"], scalar["checksum"])
		}
		last = body
	}
	if last["breaker"] != "stuck-open" {
		t.Fatalf("after 8 audited corruptions breaker = %v, want stuck-open", last["breaker"])
	}

	// Quarantined: requests keep flowing, served by the scalar path.
	for i := 0; i < 3; i++ {
		code, body := get(t, ts.URL+q+"&isa=neon")
		if code != http.StatusOK || body["checksum"] != scalar["checksum"] {
			t.Fatalf("post-quarantine request = %d %v, want 200 with scalar checksum %v",
				code, body, scalar["checksum"])
		}
		if body["breaker"] != "stuck-open" {
			t.Fatalf("post-quarantine breaker = %v", body["breaker"])
		}
	}

	// The sibling pair is untouched: sse2 has its own injector-free breaker.
	if code, body := get(t, ts.URL+q+"&isa=sse2"); code != http.StatusOK ||
		body["checksum"] != scalar["checksum"] || body["breaker"] != "closed" {
		t.Fatalf("sibling sse2 = %d %v", code, body)
	}

	// /integrity names the quarantined pair; /readyz degrades but serves.
	if _, body := get(t, ts.URL+"/integrity"); body["enabled"] != true {
		t.Fatalf("/integrity = %v", body)
	} else {
		qs, _ := body["quarantined"].([]any)
		found := false
		for _, v := range qs {
			if v == "GaussianBlur/neon" {
				found = true
			}
		}
		if !found {
			t.Fatalf("/integrity quarantined = %v, want GaussianBlur/neon", body["quarantined"])
		}
	}
	if code, body := get(t, ts.URL+"/readyz"); code != http.StatusOK || body["status"] != "degraded" {
		t.Fatalf("/readyz = %d %v, want 200 degraded", code, body)
	}

	// The metric trail: exactly one trip, mismatches on every audited call.
	snap := s.reg.Snapshot()
	if n := snap[`integrity_trips_total{isa="neon",kernel="GaussianBlur"}`]; n != 1 {
		t.Errorf("integrity_trips_total = %v, want 1", n)
	}
	if n := snap[`corruption_detected_total{isa="neon",kernel="GaussianBlur"}`]; n != 8 {
		t.Errorf("corruption_detected_total = %v, want 8", n)
	}
}

// TestIntegrityEndpointDisabled: with auditing off the endpoint still
// answers, so dashboards can probe it unconditionally.
func TestIntegrityEndpointDisabled(t *testing.T) {
	ts := httptest.NewServer(NewServer(Config{}).Handler())
	defer ts.Close()
	code, body := get(t, ts.URL+"/integrity")
	if code != http.StatusOK || body["enabled"] != false {
		t.Fatalf("/integrity = %d %v, want 200 enabled=false", code, body)
	}
}

// TestAuditAdaptiveDownsampleUnderQueuePressure: the effective audit rate
// must scale with admission-queue headroom — half-full queue halves it —
// and surface on /integrity and the stream frame.
func TestAuditAdaptiveDownsampleUnderQueuePressure(t *testing.T) {
	s := NewServer(Config{AuditRate: 0.8, AuditSeed: 2, QueueDepth: 10})
	ts := httptest.NewServer(s.Handler())
	defer ts.Close()

	// Fake five queued waiters, then serve one request so the dispatch path
	// recomputes the load factor.
	s.adm.waiting.Store(5)
	if code, _ := get(t, ts.URL+"/process?kernel=threshold&width=64&height=48&isa=neon"); code != http.StatusOK {
		t.Fatalf("request under pressure = %d", code)
	}
	_, body := get(t, ts.URL+"/integrity")
	eff, _ := body["effective_rate"].(float64)
	if math.Abs(eff-0.4) > 1e-9 {
		t.Errorf("effective_rate = %v, want 0.8 x (1 - 5/10) = 0.4", eff)
	}
	if cfgRate, _ := body["configured_rate"].(float64); cfgRate != 0.8 {
		t.Errorf("configured_rate = %v, want 0.8", cfgRate)
	}

	frame := s.buildFrame(time.Minute)
	if frame.Audit == nil || math.Abs(frame.Audit.EffectiveRate-0.4) > 1e-9 {
		t.Errorf("stream frame audit = %+v, want effective rate 0.4", frame.Audit)
	}

	// Queue drained: the next dispatch restores the configured rate.
	s.adm.waiting.Store(0)
	if code, _ := get(t, ts.URL+"/process?kernel=threshold&width=64&height=48&isa=neon"); code != http.StatusOK {
		t.Fatalf("request after drain = %d", code)
	}
	_, body = get(t, ts.URL+"/integrity")
	if eff, _ := body["effective_rate"].(float64); math.Abs(eff-0.8) > 1e-9 {
		t.Errorf("drained effective_rate = %v, want 0.8", eff)
	}
}
