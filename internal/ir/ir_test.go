package ir

import (
	"strings"
	"testing"
)

func TestBuilderProducesValidLoop(t *testing.T) {
	b := NewBuilder("demo")
	v := b.Load(U8, "src", 1, 0)
	c := b.ConstInt(U8, 10)
	m := b.Bin(OpMin, U8, v, c)
	b.Store(U8, "dst", 1, 0, m)
	l := b.Done()
	if err := l.Validate(); err != nil {
		t.Fatal(err)
	}
	if len(l.Body) != 4 {
		t.Fatalf("body length %d", len(l.Body))
	}
	loads, stores := l.Arrays()
	if len(loads) != 1 || loads[0] != "src" || len(stores) != 1 || stores[0] != "dst" {
		t.Fatalf("arrays: %v %v", loads, stores)
	}
}

func TestValidateCatchesForwardRefs(t *testing.T) {
	l := &Loop{Name: "bad", Body: []Instr{
		{Op: OpAdd, Type: I16, Args: []Value{1, 2}},
	}}
	if err := l.Validate(); err == nil {
		t.Fatal("forward reference should fail validation")
	}
}

func TestValidateCatchesMalformedMemOps(t *testing.T) {
	cases := []Loop{
		{Name: "noarray", Body: []Instr{{Op: OpLoad, Type: U8, Stride: 1}}},
		{Name: "zerostride", Body: []Instr{{Op: OpLoad, Type: U8, Array: "a"}}},
		{Name: "badstore", Body: []Instr{{Op: OpStore, Type: U8, Array: "a", Stride: 1}}},
		{Name: "badselect", Body: []Instr{{Op: OpConst, Type: U8}, {Op: OpSelect, Type: U8, Args: []Value{0, 0}}}},
		{Name: "badunary", Body: []Instr{{Op: OpConst, Type: U8}, {Op: OpAbs, Type: U8, Args: []Value{0, 0}}}},
		{Name: "badbinary", Body: []Instr{{Op: OpConst, Type: U8}, {Op: OpAdd, Type: U8, Args: []Value{0}}}},
	}
	for _, l := range cases {
		if err := l.Validate(); err == nil {
			t.Errorf("%s: expected validation error", l.Name)
		}
	}
}

func TestTypeProperties(t *testing.T) {
	if U8.Size() != 1 || I16.Size() != 2 || U16.Size() != 2 || I32.Size() != 4 || F32.Size() != 4 {
		t.Fatal("type sizes")
	}
	if Bool.Size() != 0 {
		t.Fatal("bool size")
	}
	for _, tt := range []Type{U8, I16, U16, I32, F32, Bool} {
		if strings.Contains(tt.String(), "type(") {
			t.Errorf("type %d missing name", int(tt))
		}
	}
	if !strings.Contains(Type(99).String(), "99") {
		t.Fatal("unknown type string")
	}
}

func TestOpProperties(t *testing.T) {
	if !OpCvtF2I.CallLike() {
		t.Fatal("cvRound must be call-like")
	}
	if OpCvtF2IT.CallLike() || OpAdd.CallLike() {
		t.Fatal("only cvRound is call-like")
	}
	for _, op := range []Op{OpAbsSat, OpAddSat, OpSatCast} {
		if !op.Saturating() {
			t.Errorf("%v should be saturating", op)
		}
	}
	if OpAdd.Saturating() || OpMin.Saturating() {
		t.Fatal("plain ops are not saturating")
	}
	for o := Op(0); o < numIROps; o++ {
		if strings.Contains(o.String(), "op(") {
			t.Errorf("op %d missing name", int(o))
		}
	}
	if !strings.Contains(Op(99).String(), "99") {
		t.Fatal("unknown op string")
	}
}

func TestNonUnitStrideDetection(t *testing.T) {
	b := NewBuilder("strided")
	v := b.Load(U8, "src", 2, 0)
	b.Store(U8, "dst", 1, 0, v)
	if !b.Done().HasNonUnitStride() {
		t.Fatal("stride 2 load not detected")
	}
	b2 := NewBuilder("unit")
	v2 := b2.Load(U8, "src", 1, 0)
	b2.Store(U8, "dst", 1, 0, v2)
	if b2.Done().HasNonUnitStride() {
		t.Fatal("unit stride misdetected")
	}
}

func TestWidestType(t *testing.T) {
	b := NewBuilder("w")
	v := b.Load(U8, "src", 1, 0)
	w := b.Un(OpWiden, U16, v)
	b.Store(U16, "dst", 1, 0, w)
	if b.Done().WidestType() != U16 {
		t.Fatal("widest should be U16")
	}
	b2 := NewBuilder("f")
	f := b2.Load(F32, "src", 1, 0)
	b2.Store(F32, "dst", 1, 0, f)
	if b2.Done().WidestType() != F32 {
		t.Fatal("widest should be F32")
	}
}
