// Package ir defines a small loop intermediate representation for the
// benchmark kernels' inner loops.
//
// The paper compares hand-written intrinsics against gcc -O3
// auto-vectorization and explains the gap by examining which loops gcc
// vectorizes and how (Section V). To reproduce that mechanism rather than
// hard-code its conclusions, each kernel's inner loop is expressed in this
// IR; internal/vectorizer applies a gcc-4.6-like legality and cost analysis
// to it, and internal/exec interprets it (scalar or lane-blocked) over real
// buffers so the model's semantics stay honest.
//
// The IR is deliberately minimal: a single counted loop over index i, a
// straight-line SSA body, and typed array references with affine addresses
// (base + i*stride + offset).
package ir

import "fmt"

// Type is an IR value type.
type Type int

// IR value types.
const (
	U8 Type = iota
	I16
	U16
	I32
	F32
	Bool // comparison results
)

// Size returns the type width in bytes (Bool is flag-like, width 0).
func (t Type) Size() int {
	switch t {
	case U8:
		return 1
	case I16, U16:
		return 2
	case I32, F32:
		return 4
	}
	return 0
}

// String names the type.
func (t Type) String() string {
	switch t {
	case U8:
		return "u8"
	case I16:
		return "i16"
	case U16:
		return "u16"
	case I32:
		return "i32"
	case F32:
		return "f32"
	case Bool:
		return "bool"
	}
	return fmt.Sprintf("type(%d)", int(t))
}

// Op is an IR operation.
type Op int

// IR operations. The properties that matter to the vectorizer model are
// encoded in the Op tables below (CallLike, Saturating, Widening...).
const (
	OpConst Op = iota
	OpLoad     // from Array at i*Stride+Offset
	OpStore    // Args[0] to Array at i*Stride+Offset
	OpAdd
	OpSub
	OpMul
	OpMin
	OpMax
	OpAnd
	OpOr
	OpXor
	OpShl // Args[0] << ShiftAmount
	OpShr // arithmetic/logical by type
	OpCmpGT
	OpSelect // Args[0] ? Args[1] : Args[2]
	OpAbs
	OpAbsSat  // saturating absolute value (|MinInt16| -> MaxInt16)
	OpAddSat  // saturating add
	OpWiden   // to the instruction's Type
	OpNarrow  // truncating narrow to Type
	OpSatCast // saturating narrow to Type (OpenCV saturate_cast)
	OpCvtF2I  // float to int, rounding per OpenCV cvRound: CALL-LIKE on ARM, opaque builtin on x86
	OpCvtF2IT // float to int, truncate
	OpCvtI2F  // int to float
	numIROps
)

var opNames = [...]string{
	"const", "load", "store", "add", "sub", "mul", "min", "max",
	"and", "or", "xor", "shl", "shr", "cmpgt", "select",
	"abs", "abssat", "addsat", "widen", "narrow", "satcast",
	"cvtf2i", "cvtf2it", "cvti2f",
}

// String names the op.
func (o Op) String() string {
	if o < 0 || int(o) >= len(opNames) {
		return fmt.Sprintf("op(%d)", int(o))
	}
	return opNames[o]
}

// CallLike reports whether the op compiles to a libcall or opaque builtin
// that blocks vectorization (the convert kernel's cvRound: lrint on ARM
// softfp, an SSE2 builtin on x86 — both opaque to the gcc 4.6 vectorizer).
func (o Op) CallLike() bool { return o == OpCvtF2I }

// Saturating reports whether the op is saturating arithmetic, which gcc 4.6
// has no GIMPLE idiom for and therefore cannot vectorize.
func (o Op) Saturating() bool {
	switch o {
	case OpAbsSat, OpAddSat, OpSatCast:
		return true
	}
	return false
}

// Value is a virtual register: the index of the defining instruction in the
// loop body (SSA).
type Value int

// Instr is one IR instruction. Dest is implicit: instruction k defines
// Value(k).
type Instr struct {
	Op   Op
	Type Type    // result type (for stores: the stored element type)
	Args []Value // operand values

	// Memory operands (OpLoad/OpStore).
	Array  string
	Stride int // in elements; 1 is unit stride
	Offset int // constant element offset

	// OpConst payloads.
	IntVal   int64
	FloatVal float64

	// OpShl/OpShr payload.
	ShiftAmount uint
}

// Loop is a counted loop over i in [0, N) where N is supplied at execution
// or analysis time.
type Loop struct {
	Name string
	Body []Instr

	// RuntimeKernelTaps records the filter tap count when the source loop
	// comes from OpenCV's FilterEngine (whose small fixed kernels are
	// specialized and fully unrolled by -O3, so the taps carry no extra
	// scalar cost). It is metadata for reporting tools; the vectorizer's
	// legality analysis works from the unrolled body itself.
	RuntimeKernelTaps int
}

// Validate checks SSA well-formedness: operands must refer to earlier
// instructions, memory ops must name arrays, types must be meaningful.
func (l *Loop) Validate() error {
	for k, ins := range l.Body {
		for _, a := range ins.Args {
			if int(a) >= k || a < 0 {
				return fmt.Errorf("ir: %s: instr %d uses value %d (not yet defined)", l.Name, k, a)
			}
		}
		switch ins.Op {
		case OpLoad:
			if ins.Array == "" {
				return fmt.Errorf("ir: %s: load %d without array", l.Name, k)
			}
			if ins.Stride == 0 {
				return fmt.Errorf("ir: %s: load %d with zero stride", l.Name, k)
			}
		case OpStore:
			if ins.Array == "" || len(ins.Args) != 1 {
				return fmt.Errorf("ir: %s: malformed store %d", l.Name, k)
			}
			if ins.Stride == 0 {
				return fmt.Errorf("ir: %s: store %d with zero stride", l.Name, k)
			}
		case OpSelect:
			if len(ins.Args) != 3 {
				return fmt.Errorf("ir: %s: select %d needs 3 args", l.Name, k)
			}
		case OpConst:
		case OpShl, OpShr, OpAbs, OpAbsSat, OpWiden, OpNarrow, OpSatCast,
			OpCvtF2I, OpCvtF2IT, OpCvtI2F:
			if len(ins.Args) != 1 {
				return fmt.Errorf("ir: %s: unary op %d (%s) needs 1 arg", l.Name, k, ins.Op)
			}
		default:
			if len(ins.Args) != 2 {
				return fmt.Errorf("ir: %s: binary op %d (%s) needs 2 args", l.Name, k, ins.Op)
			}
		}
	}
	return nil
}

// Arrays returns the distinct array names referenced, loads first.
func (l *Loop) Arrays() (loads, stores []string) {
	seenL := map[string]bool{}
	seenS := map[string]bool{}
	for _, ins := range l.Body {
		switch ins.Op {
		case OpLoad:
			if !seenL[ins.Array] {
				seenL[ins.Array] = true
				loads = append(loads, ins.Array)
			}
		case OpStore:
			if !seenS[ins.Array] {
				seenS[ins.Array] = true
				stores = append(stores, ins.Array)
			}
		}
	}
	return loads, stores
}

// HasNonUnitStride reports whether any memory access has stride != 1 — one
// of the three auto-vectorization blockers the paper (citing Maleki et al.)
// calls out.
func (l *Loop) HasNonUnitStride() bool {
	for _, ins := range l.Body {
		if (ins.Op == OpLoad || ins.Op == OpStore) && ins.Stride != 1 {
			return true
		}
	}
	return false
}

// WidestType returns the widest value type in the body, which determines
// the vector factor (VF = vector bytes / widest element bytes).
func (l *Loop) WidestType() Type {
	w := U8
	for _, ins := range l.Body {
		if ins.Type.Size() > w.Size() {
			w = ins.Type
		}
	}
	return w
}

// Builder incrementally constructs a loop body.
type Builder struct {
	loop Loop
}

// NewBuilder starts a named loop.
func NewBuilder(name string) *Builder { return &Builder{loop: Loop{Name: name}} }

func (b *Builder) emit(ins Instr) Value {
	b.loop.Body = append(b.loop.Body, ins)
	return Value(len(b.loop.Body) - 1)
}

// ConstInt emits an integer constant of type t.
func (b *Builder) ConstInt(t Type, v int64) Value {
	return b.emit(Instr{Op: OpConst, Type: t, IntVal: v})
}

// ConstFloat emits a float constant.
func (b *Builder) ConstFloat(v float64) Value {
	return b.emit(Instr{Op: OpConst, Type: F32, FloatVal: v})
}

// Load emits a typed load from array at i*stride+offset.
func (b *Builder) Load(t Type, array string, stride, offset int) Value {
	return b.emit(Instr{Op: OpLoad, Type: t, Array: array, Stride: stride, Offset: offset})
}

// Store emits a store of v to array at i*stride+offset.
func (b *Builder) Store(t Type, array string, stride, offset int, v Value) {
	b.emit(Instr{Op: OpStore, Type: t, Array: array, Stride: stride, Offset: offset, Args: []Value{v}})
}

// Bin emits a binary op.
func (b *Builder) Bin(op Op, t Type, x, y Value) Value {
	return b.emit(Instr{Op: op, Type: t, Args: []Value{x, y}})
}

// Un emits a unary op.
func (b *Builder) Un(op Op, t Type, x Value) Value {
	return b.emit(Instr{Op: op, Type: t, Args: []Value{x}})
}

// Shift emits a shift by constant.
func (b *Builder) Shift(op Op, t Type, x Value, amount uint) Value {
	return b.emit(Instr{Op: op, Type: t, Args: []Value{x}, ShiftAmount: amount})
}

// Select emits cond ? a : c.
func (b *Builder) Select(t Type, cond, a, c Value) Value {
	return b.emit(Instr{Op: OpSelect, Type: t, Args: []Value{cond, a, c}})
}

// SetRuntimeKernelTaps marks the loop as having a runtime-length inner tap
// loop of the given length (see Loop.RuntimeKernelTaps).
func (b *Builder) SetRuntimeKernelTaps(n int) { b.loop.RuntimeKernelTaps = n }

// Done returns the loop.
func (b *Builder) Done() *Loop {
	l := b.loop
	return &l
}
