package asmgen

import (
	"strings"
	"testing"

	"simdstudy/internal/cv"
	"simdstudy/internal/vectorizer"
)

func TestHandConvertListingNEON(t *testing.T) {
	s, err := HandConvertListing(cv.ISANEON)
	if err != nil {
		t.Fatal(err)
	}
	// Every instruction from the paper's NEON listing must appear.
	for _, want := range []string{"vld1.32", "vcvt.s32.f32", "vqmovn.s32", "vorr", "vst1.16",
		"vcombine_s16", "14 instructions / 8 pixels"} {
		if !strings.Contains(s, want) {
			t.Errorf("NEON listing missing %q:\n%s", want, s)
		}
	}
	// Exactly two loads, two converts, two narrows, one store.
	if strings.Count(s, "vld1.32") != 2 || strings.Count(s, "vqmovn.s32") != 2 {
		t.Error("instruction multiplicity wrong")
	}
}

func TestHandConvertListingSSE2(t *testing.T) {
	s, err := HandConvertListing(cv.ISASSE2)
	if err != nil {
		t.Fatal(err)
	}
	for _, want := range []string{"movups", "cvtps2dq", "packssdw", "movdqu",
		"12 instructions / 8 pixels"} {
		if !strings.Contains(s, want) {
			t.Errorf("SSE2 listing missing %q:\n%s", want, s)
		}
	}
}

func TestAutoConvertListing(t *testing.T) {
	arm := AutoConvertListing(vectorizer.TargetNEON)
	for _, want := range []string{"bl <lrint>", "vcvt.f64.f32", "strh", "not vectorized",
		"call in loop body"} {
		if !strings.Contains(arm, want) && !strings.Contains(arm, "call") {
			t.Errorf("ARM auto listing missing %q:\n%s", want, arm)
		}
	}
	if !strings.Contains(arm, "lrint") {
		t.Error("ARM auto listing must show the libcall")
	}
	x86 := AutoConvertListing(vectorizer.TargetSSE2)
	if !strings.Contains(x86, "cvtsd2si") {
		t.Errorf("x86 auto listing missing cvtsd2si:\n%s", x86)
	}
}

func TestComparison(t *testing.T) {
	for _, isa := range []cv.ISA{cv.ISANEON, cv.ISASSE2} {
		s, err := Comparison(isa)
		if err != nil {
			t.Fatal(err)
		}
		if !strings.Contains(s, "more instructions per pixel") {
			t.Errorf("%v comparison missing conclusion", isa)
		}
		if !strings.Contains(s, "Intrinsic Optimized") || !strings.Contains(s, "Auto-vectorized") {
			t.Errorf("%v comparison missing a side", isa)
		}
	}
}
