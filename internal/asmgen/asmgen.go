// Package asmgen regenerates the paper's Section V analysis: annotated
// pseudo-assembly listings of the hand-optimized intrinsic loop versus the
// auto-vectorized (scalar fallback) loop for the float-to-short conversion
// benchmark, together with the instruction-per-pixel accounting that
// explains the observed speedups.
//
// The hand listing is reconstructed from the actual instruction sequence
// recorded by the NEON/SSE2 emulation layers while running the real kernel;
// the AUTO listing is derived from the vectorizer model's scalar profile.
package asmgen

import (
	"fmt"
	"strings"

	"simdstudy/internal/cv"
	"simdstudy/internal/image"
	"simdstudy/internal/kernels"
	"simdstudy/internal/trace"
	"simdstudy/internal/vectorizer"
)

// neonAnnotations maps the recorded convert-loop mnemonics to the intrinsic
// source lines from the paper's listing.
var neonAnnotations = map[string]string{
	"vld1.32":      "float32x4_t src128 = vld1q_f32((const float32_t*)(src + x))",
	"vcvt.s32.f32": "int32x4_t src_int128 = vcvtq_s32_f32(src128)",
	"vqmovn.s32":   "int16x4_t src_int64 = vqmovn_s32(src_int128)",
	"vorr":         "int16x8_t res_int128 = vcombine_s16(src0_int64, src1_int64)  ; lowered to vorr, as the paper observes",
	"vst1.16":      "vst1q_s16((int16_t*)dst + x, res_int128)",
}

var sseAnnotations = map[string]string{
	"movups":   "__m128 src128 = _mm_loadu_ps(src + x)",
	"cvtps2dq": "__m128i src_int128 = _mm_cvtps_epi32(src128)",
	"packssdw": "src1_int128 = _mm_packs_epi32(src_int128, src1_int128)",
	"movdqu":   "_mm_storeu_si128((__m128i*)(dst + x), src1_int128)",
}

// HandConvertListing reconstructs the hand-optimized loop body by running
// one vector iteration of the real kernel under sequence capture.
func HandConvertListing(isa cv.ISA) (string, error) {
	tr := trace.Counter{SeqCap: 64}
	o := cv.NewOps(isa, &tr)
	res := image.Resolution{Width: 8, Height: 1}
	src := image.SyntheticF32(res, 1)
	dst := image.NewMat(8, 1, image.S16)
	if err := o.ConvertF32ToS16(src, dst); err != nil {
		return "", err
	}
	ann := neonAnnotations
	title := "Intrinsic Optimized ARM (NEON) Assembly"
	if isa == cv.ISASSE2 {
		ann = sseAnnotations
		title = "Intrinsic Optimized x86 (SSE2) Assembly"
	}
	var sb strings.Builder
	fmt.Fprintf(&sb, "/* %s — one loop iteration, 8 pixels */\n", title)
	for _, op := range tr.Sequence() {
		if a, ok := ann[op.Name]; ok {
			fmt.Fprintf(&sb, "    %-16s ; %s\n", op.Name, a)
		} else {
			fmt.Fprintf(&sb, "    %-16s ; loop bookkeeping (%s)\n", op.Name, op.Class)
		}
	}
	fmt.Fprintf(&sb, "\n; totals: %d instructions / 8 pixels (%.2f per pixel)\n",
		tr.Total(), float64(tr.Total())/8)
	return sb.String(), nil
}

// autoARMBody is the paper's auto-vectorized ARM listing shape: gcc fails
// to block the loop and emits a single-element VFP load, a promotion to
// double, and a libcall to lrint per pixel.
var autoARMBody = []string{
	"vldmia r6!, {s15}          ; single-element VFP load of src[x]",
	"vcvt.f64.f32 d16, s15      ; promote float to double for lrint",
	"vmov r0, r1, d16           ; move double into core registers (softfp ABI)",
	"bl <lrint>                 ; libcall: round to nearest integer",
	"add.w r2, r0, #32768       ; saturate_cast<short> clamp begins",
	"uxth r3, r0",
	"cmp r2, r8",
	"bls.n <in_range>",
	"cmp r0, #0 ; ite gt / movgt/movle  ; clamp to SHRT_MAX / SHRT_MIN",
	"strh.w r3, [r5], #2        ; store one short",
	"adds r4, #1 / cmp r4, r7 / bne.n <loop>  ; per-pixel loop control",
}

var autoX86Body = []string{
	"movss xmm0, [rsi+rax*4]    ; single-element load of src[x]",
	"cvtss2sd xmm0, xmm0        ; promote to double (cvRound takes double)",
	"cvtsd2si ecx, xmm0         ; _mm_cvtsd_si32: round to nearest-even",
	"lea edx, [rcx+32768]       ; saturate_cast<short> clamp",
	"cmp edx, 65535 / cmova ... ; clamp to SHRT_MAX / SHRT_MIN",
	"mov [rdi+rax*2], cx        ; store one short",
	"add rax, 1 / cmp rax, r8 / jne <loop>  ; per-pixel loop control",
}

// AutoConvertListing renders the AUTO build's loop body for the convert
// benchmark on the given target, with the vectorizer's diagnostic and the
// modeled per-pixel instruction profile.
func AutoConvertListing(target vectorizer.Target) string {
	d := vectorizer.Analyze(kernels.Convert32f16s(), target)
	body := autoARMBody
	title := "Auto-vectorized ARM Assembly (gcc -O3 -mfpu=neon -ftree-vectorize)"
	if target == vectorizer.TargetSSE2 {
		body = autoX86Body
		title = "Auto-vectorized x86 Assembly (gcc -O3 -msse -msse2)"
	}
	var sb strings.Builder
	fmt.Fprintf(&sb, "/* %s */\n", title)
	fmt.Fprintf(&sb, "; vectorizer: %s\n", d.Reason)
	for _, line := range body {
		fmt.Fprintf(&sb, "    %s\n", line)
	}
	fmt.Fprintf(&sb, "\n; modeled cost: %.1f instructions per pixel (vs 14/8 = 1.75 hand)\n",
		d.ScalarIter.Total())
	return sb.String()
}

// Comparison renders the full Section V side-by-side analysis for one
// target ISA.
func Comparison(isa cv.ISA) (string, error) {
	target := vectorizer.TargetNEON
	if isa == cv.ISASSE2 {
		target = vectorizer.TargetSSE2
	}
	hand, err := HandConvertListing(isa)
	if err != nil {
		return "", err
	}
	auto := AutoConvertListing(target)
	var sb strings.Builder
	sb.WriteString(hand)
	sb.WriteString("\n")
	sb.WriteString(auto)
	sb.WriteString("\n")
	d := vectorizer.Analyze(kernels.Convert32f16s(), target)
	ratio := d.ScalarIter.Total() / (14.0 / 8)
	if isa == cv.ISASSE2 {
		ratio = d.ScalarIter.Total() / (12.0 / 8)
	}
	fmt.Fprintf(&sb, "; the auto build retires %.1fx more instructions per pixel before\n", ratio)
	fmt.Fprintf(&sb, "; accounting for the per-pixel libcall and scalar FP latencies —\n")
	fmt.Fprintf(&sb, "; the mechanism behind the large observed speedups (Section V).\n")
	return sb.String(), nil
}
