package platform

import (
	"strings"
	"testing"

	"simdstudy/internal/cache"
	"simdstudy/internal/trace"
)

func TestPaperHasTenPlatforms(t *testing.T) {
	ps := Paper()
	if len(ps) != 10 {
		t.Fatalf("Table I has 10 platforms, got %d", len(ps))
	}
	intel, arm := 0, 0
	for _, p := range ps {
		switch p.Family {
		case Intel:
			intel++
		case ARM:
			arm++
		}
		if p.Extrapolated {
			t.Errorf("%s: paper platforms must not be extrapolated", p.Name)
		}
	}
	if intel != 4 || arm != 6 {
		t.Fatalf("want 4 Intel + 6 ARM, got %d + %d", intel, arm)
	}
	// Paper order: Intel first.
	for i := 0; i < 4; i++ {
		if ps[i].Family != Intel {
			t.Errorf("platform %d should be Intel", i)
		}
	}
}

func TestAllIncludesExtrapolated(t *testing.T) {
	all := All()
	if len(all) != len(Paper())+1 {
		t.Fatalf("All should add the A15: %d", len(all))
	}
	last := all[len(all)-1]
	if !last.Extrapolated || !strings.Contains(last.Name, "A15") {
		t.Fatalf("extrapolated A15 expected, got %+v", last.Name)
	}
}

func TestTableIFields(t *testing.T) {
	for _, p := range Paper() {
		if p.Name == "" || p.Codename == "" || p.Launched == "" {
			t.Errorf("%q: missing identity fields", p.Name)
		}
		if p.Threads <= 0 || p.Cores <= 0 || p.ClockGHz <= 0 {
			t.Errorf("%s: bad topology", p.Name)
		}
		if p.Memory == "" || p.SIMD == "" || p.CacheStr == "" {
			t.Errorf("%s: missing Table I strings", p.Name)
		}
		if p.Family == ARM && !strings.Contains(p.SIMD, "NEON") {
			t.Errorf("%s: ARM platforms have NEON", p.Name)
		}
		if p.Family == Intel && !strings.Contains(p.SIMD, "SSE") {
			t.Errorf("%s: Intel platforms have SSE", p.Name)
		}
	}
}

func TestSpecificTableIEntries(t *testing.T) {
	atom := AtomD510()
	if !atom.InOrder || atom.ClockGHz != 1.66 || atom.Cores != 2 || atom.Threads != 4 {
		t.Error("Atom D510 row wrong")
	}
	ex := Exynos3110()
	if !ex.InOrder || ex.ClockGHz != 1.0 || ex.OS != "Android" {
		t.Error("Exynos 3110 row wrong")
	}
	i7 := CoreI72820QM()
	if i7.InOrder || i7.Threads != 8 || i7.Launched != "Q1'11" {
		t.Error("i7 row wrong")
	}
	s3 := Exynos4412()
	if s3.ClockGHz != 1.4 || s3.Cores != 4 {
		t.Error("Exynos 4412 row wrong")
	}
	od := OdroidX()
	if od.ClockGHz != 1.3 || od.OS == "Android" {
		t.Error("ODROID-X is under-clocked Linux")
	}
	tg := TegraT30()
	if tg.ClockGHz != 1.3 {
		t.Error("Tegra clocked to match ODROID")
	}
	if Intel.String() != "INTEL" || ARM.String() != "ARM" {
		t.Error("family names")
	}
	if AtomD510().String() != "Intel Atom D510" {
		t.Error("String()")
	}
}

func TestMicroarchSanity(t *testing.T) {
	for _, p := range All() {
		m := p.M
		if m.Overlap < 1 {
			t.Errorf("%s: overlap %v < 1", p.Name, m.Overlap)
		}
		if m.Serialization < 0 || m.Serialization > 1 {
			t.Errorf("%s: serialization %v out of [0,1]", p.Name, m.Serialization)
		}
		if m.BandwidthGBps <= 0 {
			t.Errorf("%s: bandwidth %v", p.Name, m.BandwidthGBps)
		}
		for c, v := range m.Cyc {
			if v <= 0 {
				t.Errorf("%s: class %v has non-positive cost", p.Name, trace.Class(c))
			}
		}
		// In-order platforms serialize more and overlap less than OoO.
		if p.InOrder && m.Overlap > 1.5 {
			t.Errorf("%s: in-order with overlap %v", p.Name, m.Overlap)
		}
		if p.InOrder && m.Serialization < 0.5 {
			t.Errorf("%s: in-order should expose memory time", p.Name)
		}
		// Cache configs must be valid and buildable.
		if len(m.Caches) < 2 {
			t.Errorf("%s: expected at least L1+L2", p.Name)
		}
		if _, err := cache.NewHierarchy(m.Caches...); err != nil {
			t.Errorf("%s: caches invalid: %v", p.Name, err)
		}
	}
}

func TestScalarFPPenaltyOnA8(t *testing.T) {
	// The Cortex-A8's VFP-Lite must be priced far above the A9's
	// pipelined VFP and above its own NEON unit — this drives the
	// paper's 13.88x convert anomaly.
	a8 := Exynos3110().M
	a9 := Exynos4412().M
	if a8.Cyc[trace.ScalarFP] <= 2*a9.Cyc[trace.ScalarFP] {
		t.Errorf("A8 scalar FP %v should dwarf A9 %v",
			a8.Cyc[trace.ScalarFP], a9.Cyc[trace.ScalarFP])
	}
	if a8.Cyc[trace.ScalarFP] <= 4*a8.Cyc[trace.SIMDALU] {
		t.Error("A8 VFP-Lite should be far slower than its NEON unit")
	}
	if a8.Cyc[trace.Call] <= a9.Cyc[trace.Call] {
		t.Error("A8 libcall (soft double lrint) should cost more than A9")
	}
}

func TestTegraBandwidthAnomaly(t *testing.T) {
	// The paper: ODROID-X consistently outruns the Tegra 3 on HAND code
	// at the same clock; the model encodes that as effective bandwidth.
	if TegraT30().M.BandwidthGBps >= OdroidX().M.BandwidthGBps/1.5 {
		t.Error("Tegra effective bandwidth should trail the ODROID-X substantially")
	}
}

func TestByName(t *testing.T) {
	p, err := ByName("Intel Atom D510")
	if err != nil || p.Codename != "Pineview" {
		t.Fatalf("exact match: %v %v", p, err)
	}
	p, err = ByName("tegra")
	if err != nil || p.Name != "Nvidia Tegra T30" {
		t.Fatalf("substring match: %v %v", p, err)
	}
	p, err = ByName("yorkfield")
	if err != nil || !strings.Contains(p.Name, "Core 2") {
		t.Fatalf("codename match: %v %v", p, err)
	}
	if _, err := ByName("exynos"); err == nil {
		t.Fatal("ambiguous name should error")
	}
	if _, err := ByName("z80"); err == nil {
		t.Fatal("unknown name should error")
	}
	if _, err := ByName(""); err == nil {
		t.Fatal("empty name should error")
	}
}

func TestWaysProducesValidGeometry(t *testing.T) {
	for _, size := range []int{kb(24), kb(256), kb(512), kb(1024), kb(3072), kb(8192)} {
		w := ways(size, 6)
		cfg := cache.Config{Name: "t", SizeBytes: size, LineBytes: lineBytes, Ways: w}
		if err := cfg.Validate(); err != nil {
			t.Errorf("size %d ways %d: %v", size, w, err)
		}
	}
}

func TestScaleByPreservesRatios(t *testing.T) {
	m := Exynos4412().M
	s := scaleBy(m, 2)
	for i := range m.Cyc {
		if s.Cyc[i] != 2*m.Cyc[i] {
			t.Fatalf("class %d not scaled", i)
		}
	}
	if s.BandwidthGBps != m.BandwidthGBps/2 {
		t.Fatal("bandwidth not scaled")
	}
	if s.Overlap != m.Overlap || s.Serialization != m.Serialization {
		t.Fatal("structure factors must not change")
	}
}
